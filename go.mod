module selnet

go 1.24
