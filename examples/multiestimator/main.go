// Multiestimator: serve three different estimator kinds — KDE, LSH
// sampling, and SelNet — side by side behind one selestd API, then let
// the workload router pick per query. Every kind round-trips through
// the kind-tagged model codec, loads over HTTP, and answers the same
// batched estimate path; requests naming "auto" are routed by the VC
// sampling bound, and an ensemble router blends all three in log space.
//
//	go run ./examples/multiestimator
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"selnet/internal/distance"
	"selnet/internal/kde"
	"selnet/internal/lshsampling"
	"selnet/internal/modelcodec"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// 1. One dataset, three estimators. A 1.5k-vector cosine database is
	// small enough that sampling-backed estimators carry cheap ε-δ
	// guarantees — exactly the regime the router exploits.
	db := vecdata.SyntheticFasttext(rng, 1500, 6, distance.Cosine)
	wl := vecdata.GeometricWorkload(rng, db, 60, 6)
	train, valid, _ := wl.Split(rng)

	fmt.Println("fitting three estimator kinds on the same database...")
	k := kde.FitTuned(rng, db, kde.DefaultConfig(), valid)
	lsh, err := lshsampling.Build(rng, db, lshsampling.DefaultConfig())
	check(err)
	scfg := selnet.DefaultConfig()
	scfg.TMax = wl.TMax
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = 8
	net := selnet.NewNet(rng, db.Dim, scfg)
	net.Fit(tc, db, train, valid)

	// 2. The kind-tagged codec serializes all of them; the daemon (and
	// POST /v1/models) sniffs the kind back out of the file.
	dir, err := os.MkdirTemp("", "multiestimator")
	check(err)
	defer os.RemoveAll(dir)
	paths := map[string]string{}
	for name, est := range map[string]modelcodec.Estimator{
		"kde": k, "lsh": lsh, "selnet": net,
	} {
		paths[name] = filepath.Join(dir, name+".gob")
		check(modelcodec.SaveFile(paths[name], est))
	}

	// 3. Serve all three, with an auto-mode workload router for the
	// virtual names ("default", "auto") — cmd/selestd wires exactly this
	// with -router auto.
	srv := serve.NewServer(serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 2},
		Cache:   serve.CacheConfig{Capacity: 1024},
	})
	defer srv.Close()
	srv.SetRouter(serve.NewRouter(srv.Registry(), serve.RouterConfig{Mode: "auto"}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for name, path := range paths {
		post(ts.URL+"/v1/models/"+name, map[string]string{"path": path})
	}

	// 4. Side by side: the same query through each kind.
	q := db.Vecs[7]
	t := wl.TMax / 2
	fmt.Printf("\nquery #7 at t=%.4f (exact selectivity %.0f):\n", t, db.Selectivity(q, t))
	for _, name := range []string{"kde", "lsh", "selnet", "auto"} {
		var resp struct {
			Estimate float64 `json:"estimate"`
		}
		post(ts.URL+"/v1/estimate", map[string]any{"model": name, "query": q, "t": t}, &resp)
		fmt.Printf("  %-7s -> %8.1f\n", name, resp.Estimate)
	}

	// 5. Why did "auto" pick what it picked? The router section of
	// /stats holds the cached assignment and the decision counters; the
	// VC bound m* = (d+1+ln(1/δ))/(2ε²) says how small a database must
	// be for a sampling estimator to already be an (ε,δ)-approximation.
	rt := srv.Router()
	fmt.Printf("\nVC sampling bound m*(dim=%d) = %d vectors; database holds %d\n",
		db.Dim, rt.SampleBound(db.Dim), db.Size())
	var stats struct {
		Router *serve.RouterStats `json:"router"`
	}
	get(ts.URL+"/stats", &stats)
	for _, a := range stats.Router.Assignments {
		fmt.Printf("router: dim=%d -> %s (%s)\n", a.Dim, a.Backend, a.Reason)
	}
	for _, d := range stats.Router.Decisions {
		fmt.Printf("router: %d request(s) naming %q served by %q\n", d.Count, d.Model, d.Backend)
	}

	// 6. The model listing names each kind and its router assignment —
	// 'selest models -addr ...' prints this same response as a table.
	var list struct {
		Models []struct {
			Name   string   `json:"name"`
			Kind   string   `json:"kind"`
			Router []string `json:"router"`
		} `json:"models"`
	}
	get(ts.URL+"/v1/models", &list)
	fmt.Println()
	for _, m := range list.Models {
		fmt.Printf("model %-7s kind=%-7s router=%v\n", m.Name, m.Kind, m.Router)
	}

	// 7. Ensemble mode fans one query across every dimension-compatible
	// model and blends in log space (geometric mean) — robust when no
	// single estimator dominates.
	ens := serve.NewRouter(srv.Registry(), serve.RouterConfig{Mode: "ensemble"})
	m, err := ens.Route("auto", db.Dim)
	check(err)
	fmt.Printf("\nensemble(%s) -> %.1f (geometric mean of all three)\n",
		m.Name, m.Est.Estimate(q, t))
}

// post sends body as JSON and decodes the response into out[0] if given.
func post(url string, body any, out ...any) {
	raw, err := json.Marshal(body)
	check(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	check(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		check(fmt.Errorf("POST %s: %d %s (%s)", url, resp.StatusCode, e.Error.Message, e.Error.Code))
	}
	if len(out) > 0 {
		check(json.NewDecoder(resp.Body).Decode(out[0]))
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	check(json.NewDecoder(resp.Body).Decode(out))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
