// Outlier detection and density estimation through selectivity curves —
// the paper's first motivating application (Sec. 1: "it enables us to
// estimate key distributional statistics, such as local density and
// outlierness").
//
// The local density of a point is the number of neighbours within a small
// radius: exactly a selectivity query. A consistent estimator gives every
// point an interpretable density curve, and points whose curve stays low
// are outliers. This example plants synthetic outliers, scores all
// candidates with a trained SelNet, and checks the planted outliers rank
// at the bottom.
//
//	go run ./examples/outlierdensity
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"selnet/internal/distance"
	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A clustered dataset plus 10 uniform-noise outliers far from the
	// clusters.
	base := vecdata.SyntheticFace(rng, 1500, 12)
	const numOutliers = 10
	outliers := make([][]float64, numOutliers)
	for i := range outliers {
		v := make([]float64, 12)
		for j := range v {
			v[j] = rng.NormFloat64() * 4
		}
		outliers[i] = distance.Normalize(v)
		base.Insert(outliers[i])
	}
	db := base
	fmt.Printf("database: %d vectors (last %d are planted outliers)\n", db.Size(), numOutliers)

	// Train the estimator on the usual workload, augmented with
	// "background" queries drawn uniformly from the sphere: density
	// queries probe sparse regions that database-sampled queries rarely
	// cover, so the training distribution must include them.
	wl := vecdata.GeometricWorkload(rng, db, 80, 8)
	train, valid, _ := wl.Split(rng)
	background := vecdata.BackgroundWorkload(rng, db, 150, []float64{0.15, 0.3, 0.6, 0.9}, wl.TMax,
		func(r *rand.Rand) []float64 {
			v := make([]float64, 12)
			for j := range v {
				v[j] = r.NormFloat64() * 4
			}
			return distance.Normalize(v)
		})
	train = append(train, background...)
	cfg := selnet.DefaultConfig()
	cfg.TMax = wl.TMax
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = 50
	net := selnet.NewNet(rng, db.Dim, cfg)
	net.Fit(tc, db, train, valid)

	// Density score: the area under the selectivity curve over small
	// radii. A consistent estimator gives a whole interpretable curve per
	// point, and integrating it is more robust than probing one radius.
	// Low score = outlier. Candidates: the planted outliers plus a random
	// sample of inliers (some of which are genuinely isolated too).
	fractions := []float64{0.2, 0.35, 0.5, 0.65}
	score := func(v []float64, f func(x []float64, t float64) float64) float64 {
		var s float64
		for _, fr := range fractions {
			s += f(v, wl.TMax*fr)
		}
		return s
	}
	type scored struct {
		label     string
		estimated float64
		exact     float64
	}
	var all []scored
	for i, v := range outliers {
		all = append(all, scored{fmt.Sprintf("outlier-%d", i),
			score(v, net.Estimate), score(v, db.Selectivity)})
	}
	for i := 0; i < 40; i++ {
		v := db.Vecs[rng.Intn(db.Size()-numOutliers)] // inliers only
		all = append(all, scored{fmt.Sprintf("inlier-%d", i),
			score(v, net.Estimate), score(v, db.Selectivity)})
	}

	// The useful property: the ESTIMATED density ranking agrees with the
	// exact one, so the cheap estimator can stand in for exhaustive counts.
	byEst := append([]scored(nil), all...)
	sort.Slice(byEst, func(i, j int) bool { return byEst[i].estimated < byEst[j].estimated })
	byExact := append([]scored(nil), all...)
	sort.Slice(byExact, func(i, j int) bool { return byExact[i].exact < byExact[j].exact })

	fmt.Println("\nlowest estimated density scores (area under the curve):")
	const bottom = 10
	exactBottom := map[string]bool{}
	for i := 0; i < bottom; i++ {
		exactBottom[byExact[i].label] = true
	}
	overlap, plantedCaught := 0, 0
	for i := 0; i < bottom; i++ {
		s := byEst[i]
		fmt.Printf("  %2d. %-12s estimated %7.1f   exact %4.0f\n", i+1, s.label, s.estimated, s.exact)
		if exactBottom[s.label] {
			overlap++
		}
		if strings.HasPrefix(s.label, "outlier") {
			plantedCaught++
		}
	}
	fmt.Printf("\nbottom-%d agreement between estimated and exact density: %d/%d\n",
		bottom, overlap, bottom)
	fmt.Printf("planted outliers in the estimated bottom-%d: %d of %d\n",
		bottom, plantedCaught, numOutliers)
}
