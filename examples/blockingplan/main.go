// Blocking-rule query planning for entity matching — the paper's database
// motivating application (Sec. 1: hands-off entity matching systems take
// conjunctions of similarity predicates as blocking rules, and "efficient
// blocking can be achieved if we find a good query execution plan").
//
// A blocking rule is a conjunction of per-attribute similarity predicates
// dist(x_attr, r_attr) <= t_attr. The execution engine probes a
// similarity index with ONE predicate (cost roughly proportional to its
// match count) and verifies the remaining predicates on the candidates
// (cost proportional to candidate-set sizes). Choosing the most selective
// predicate as the probe is the classic optimization — and it needs
// selectivity estimates. This example trains one SelNet per attribute
// embedding, plans with the estimates, and compares plan costs computed
// from exact counts.
//
//	go run ./examples/blockingplan
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"selnet/internal/distance"
	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

// attribute is one embedded attribute of the records (e.g. name, address,
// phone embeddings in an entity-matching pipeline).
type attribute struct {
	name string
	db   *vecdata.Database
	est  *selnet.Net
	tmax float64
}

// predicate is one similarity condition of a blocking rule, with its
// estimated and exact selectivity.
type predicate struct {
	attr      *attribute
	threshold float64
	estimated float64
	exact     float64
}

func main() {
	rng := rand.New(rand.NewSource(11))
	const numRecords = 1500

	// Three embedded attributes. Their thresholds differ: the rule author
	// wrote a loose address predicate and tight name/phone predicates.
	attrs := []*attribute{
		buildAttribute(rng, "addr", numRecords, 12, 8),
		buildAttribute(rng, "name", numRecords, 12, 40),
		buildAttribute(rng, "phone", numRecords, 12, 96),
	}
	fractions := map[string]float64{"addr": 0.7, "name": 0.35, "phone": 0.25}

	queryIdx := rng.Intn(numRecords)
	fmt.Println("blocking rule: addr-sim AND name-sim AND phone-sim, query record", queryIdx)
	fmt.Println()
	var preds []predicate
	for _, a := range attrs {
		t := a.tmax * fractions[a.name]
		x := a.db.Vecs[queryIdx]
		preds = append(preds, predicate{
			attr: a, threshold: t,
			estimated: a.est.Estimate(x, t),
			exact:     a.db.Selectivity(x, t),
		})
	}

	fmt.Println("predicate selectivity estimates:")
	for _, p := range preds {
		fmt.Printf("  %-6s t=%.3f  estimated %8.1f   exact %6.0f\n",
			p.attr.name, p.threshold, p.estimated, p.exact)
	}

	// Plan: probe the index with the predicate estimated most selective,
	// verify the rest in increasing estimated selectivity.
	optimized := append([]predicate(nil), preds...)
	sort.Slice(optimized, func(i, j int) bool { return optimized[i].estimated < optimized[j].estimated })
	fmt.Printf("\noptimized order: ")
	for i, p := range optimized {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(p.attr.name)
	}
	fmt.Println("   (rule order: addr -> name -> phone)")

	naiveCost := planCost(numRecords, preds, queryIdx)
	optCost := planCost(numRecords, optimized, queryIdx)
	fmt.Printf("\nplan cost (index probe + candidate verifications):\n")
	fmt.Printf("  rule order:      %8d\n", naiveCost)
	fmt.Printf("  optimized order: %8d  (%.1fx cheaper)\n", optCost, float64(naiveCost)/float64(optCost))
}

func buildAttribute(rng *rand.Rand, name string, n, dim, clusters int) *attribute {
	vecs := vecdata.GenerateMixture(rng, vecdata.MixtureSpec{
		N: n, Dim: dim, Clusters: clusters,
		Spread: 1.0, Sigma: 0.25, Anisotropy: 1.5, Normalize: true,
	})
	db := vecdata.NewDatabase(name, distance.Cosine, vecs)
	wl := vecdata.GeometricWorkload(rng, db, 60, 6)
	train, valid, _ := wl.Split(rng)
	cfg := selnet.DefaultConfig()
	cfg.TMax = wl.TMax
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = 20
	net := selnet.NewNet(rng, db.Dim, cfg)
	net.Fit(tc, db, train, valid)
	return &attribute{name: name, db: db, est: net, tmax: wl.TMax}
}

// planCost models execution: the first predicate is answered by a
// similarity index at cost equal to its match count; every later
// predicate verifies each surviving candidate (cost = candidates seen).
// Counts are exact, so the comparison measures planning quality, not
// estimation error.
func planCost(n int, order []predicate, queryIdx int) int {
	survivors := make([]bool, n)
	cost := 0
	for step, p := range order {
		x := p.attr.db.Vecs[queryIdx]
		if step == 0 {
			matches := 0
			for i := 0; i < n; i++ {
				if p.attr.db.Dist.Distance(x, p.attr.db.Vecs[i]) <= p.threshold {
					survivors[i] = true
					matches++
				}
			}
			cost += matches // index probe
			continue
		}
		for i := 0; i < n; i++ {
			if !survivors[i] {
				continue
			}
			cost++ // one verification
			if p.attr.db.Dist.Distance(x, p.attr.db.Vecs[i]) > p.threshold {
				survivors[i] = false
			}
		}
	}
	return cost
}
