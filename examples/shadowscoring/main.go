// Shadowscoring: stand up the serving stack with live-traffic shadow
// scoring — a fraction of estimate requests is scored against a
// ground-truth oracle off the serving path — then drive in-range
// traffic followed by deliberately shifted traffic and read back what
// /debug/accuracy learned: q-error quantiles by threshold bucket and
// partition, the worst misestimates with their trace IDs, and the
// workload-shift detector tripping.
//
//	go run ./examples/shadowscoring
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"selnet/internal/ingest"
	"selnet/internal/obs"
	"selnet/internal/partition"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 1. Train a small partitioned model — partitioning is what makes
	// per-region error attribution meaningful.
	db := vecdata.SyntheticFace(rng, 600, 4)
	wl := vecdata.GeometricWorkload(rng, db, 24, 4)
	pcfg := selnet.PartitionedConfig{
		Model: selnet.Config{
			L: 4, EmbedDim: 4, AEHidden: []int{8}, AELatent: 4,
			TauHidden: []int{8}, MHidden: []int{8},
			TMax: wl.TMax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
		},
		K: 2, Ratio: 0.2, Method: partition.CoverTree, Beta: 0.1,
	}
	m := selnet.NewPartitioned(rng, db, pcfg)
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = 4
	cut := len(wl.Queries) * 3 / 4
	m.Fit(tc, db, wl.Queries[:cut], wl.Queries[cut:])

	// 2. Wire the accuracy layer the way cmd/selestd does with
	// -shadow-sample: a workload monitor seeded with the training
	// queries, a shadow sampler scoring every request (rate 1 here so
	// the walkthrough is deterministic; production uses ~0.1), and a
	// DBOracle over the same database (600 vectors <= budget, so every
	// truth is an exact scan).
	workload := obs.NewWorkloadMonitor(obs.WorkloadConfig{Threshold: 0.3, MinSamples: 16})
	qs := make([][]float64, len(wl.Queries))
	ts := make([]float64, len(wl.Queries))
	for i, q := range wl.Queries {
		qs[i], ts[i] = q.X, q.T
	}
	workload.SetBaseline("default", qs, ts)
	shadow := obs.NewShadow(obs.ShadowConfig{SampleRate: 1, QueueDepth: 256, Workload: workload})
	shadow.SetOracle("default", ingest.NewDBOracle(db, ingest.OracleConfig{Budget: 2000}))
	defer shadow.Close()

	srv := serve.NewServer(serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 2},
	})
	defer srv.Close()
	srv.SetShadow(shadow) // before Handler(): registers /debug/accuracy
	srv.SetTracer(obs.NewTracer(obs.TracerConfig{}))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	if _, err := srv.Registry().Publish("default", m, "in-memory"); err != nil {
		fail(err)
	}

	// 3. Phase one: traffic drawn from the training workload itself.
	fmt.Println("== phase 1: in-distribution traffic ==")
	for i := 0; i < 64; i++ {
		q := wl.Queries[i%len(wl.Queries)]
		estimate(hs.URL, q.X, q.T)
	}
	report(hs.URL)

	// 4. Phase two: the same database points, but jittered away from
	// the training region — the estimates degrade and the divergence
	// gauge climbs past the threshold.
	fmt.Println("== phase 2: shifted traffic ==")
	for i := 0; i < 128; i++ {
		base := db.Vecs[rng.Intn(db.Size())]
		q := make([]float64, len(base))
		for j := range q {
			q[j] = base[j] + 0.6 + rng.NormFloat64()*0.2
		}
		estimate(hs.URL, q, (0.1+0.8*float64(i%4)/3)*wl.TMax)
	}
	report(hs.URL)
}

func estimate(url string, x []float64, t float64) {
	body, _ := json.Marshal(map[string]any{"query": x, "t": t})
	resp, err := http.Post(url+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	resp.Body.Close()
}

// report polls /debug/accuracy until the async oracle pool has caught
// up with everything offered, then prints the interesting parts.
func report(url string) {
	var acc struct {
		Sampler struct {
			Sampled uint64            `json:"sampled"`
			Dropped uint64            `json:"dropped"`
			Oracles map[string]uint64 `json:"oracle_methods"`
		} `json:"sampler"`
		Models map[string]struct {
			Samples uint64  `json:"samples"`
			P50     float64 `json:"qerror_p50"`
			P95     float64 `json:"qerror_p95"`
			Buckets map[string]struct {
				Count uint64  `json:"count"`
				P95   float64 `json:"qerror_p95"`
			} `json:"buckets"`
			Partitions map[string]struct {
				Count uint64  `json:"count"`
				P95   float64 `json:"qerror_p95"`
			} `json:"partitions"`
			Worst []struct {
				TraceID string  `json:"trace_id"`
				QError  float64 `json:"qerror"`
				T       float64 `json:"t"`
			} `json:"worst"`
		} `json:"models"`
		Workload map[string]struct {
			Divergence   float64 `json:"divergence"`
			Exceeded     uint64  `json:"exceeded"`
			ShiftAdvised bool    `json:"shift_advised"`
		} `json:"workload"`
	}
	for {
		resp, err := http.Get(url + "/debug/accuracy?limit=3")
		if err != nil {
			fail(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			fail(err)
		}
		resp.Body.Close()
		if st := acc.Models["default"]; st.Samples >= acc.Sampler.Sampled-acc.Sampler.Dropped {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := acc.Models["default"]
	fmt.Printf("scored %d samples (oracle: %v), q-error p50=%.2f p95=%.2f\n",
		st.Samples, acc.Sampler.Oracles, st.P50, st.P95)
	buckets := make([]string, 0, len(st.Buckets))
	for b := range st.Buckets {
		buckets = append(buckets, b)
	}
	sort.Strings(buckets)
	for _, b := range buckets {
		fmt.Printf("  t-bucket %-7s  n=%-3d p95=%.2f\n", b, st.Buckets[b].Count, st.Buckets[b].P95)
	}
	parts := make([]string, 0, len(st.Partitions))
	for p := range st.Partitions {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	for _, p := range parts {
		fmt.Printf("  partition %-4s   n=%-3d p95=%.2f\n", p, st.Partitions[p].Count, st.Partitions[p].P95)
	}
	for _, w := range st.Worst {
		fmt.Printf("  worst: q-error %.2f at t=%.3f, trace %s (join against /debug/traces)\n",
			w.QError, w.T, w.TraceID)
	}
	wls := acc.Workload["default"]
	fmt.Printf("workload divergence %.3f, exceeded %d times, shift advised: %v\n\n",
		wls.Divergence, wls.Exceeded, wls.ShiftAdvised)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
