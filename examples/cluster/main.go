// Cluster: run a three-node selestd cluster in one process — the same
// internal/cluster + internal/serve wiring cmd/selestd uses, just on
// loopback listeners. The example trains one small model, forms the
// cluster, ingests acknowledged updates through the leader, proxies a
// write through a follower, prints the shard map, then crashes the
// leader and shows a follower being promoted with zero acknowledged
// loss.
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"selnet/internal/cluster"
	"selnet/internal/ingest"
	"selnet/internal/obs"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

type member struct {
	url  string
	pipe *ingest.Pipeline
	node *cluster.Node
	http *http.Server
}

// crash kills the member the hard way: listener down, loops stopped,
// nothing drained — the in-process equivalent of SIGKILL.
func (m *member) crash() {
	m.http.Close()
	m.node.Close()
	m.pipe.Close()
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// 1. One trained model shared by every node, as `selest train` would
	// produce it.
	db := vecdata.SyntheticFace(rng, 400, 4)
	wl := vecdata.GeometricWorkload(rng, db, 16, 4)
	cfg := selnet.Config{
		L: 4, EmbedDim: 4,
		AEHidden: []int{8}, AELatent: 4,
		TauHidden: []int{8}, MHidden: []int{8},
		TMax: wl.TMax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
	net0 := selnet.NewNet(rng, db.Dim, cfg)
	tc := selnet.TrainConfig{Epochs: 2, Batch: 32, LR: 5e-3, HuberDelta: 1.345, LogEps: 1e-3, Seed: 1}
	cut := len(wl.Queries) * 3 / 4
	net0.Fit(tc, db, wl.Queries[:cut], wl.Queries[cut:])

	dir, err := os.MkdirTemp("", "selestd-cluster")
	check(err)
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model.gob")
	check(net0.SaveFile(modelPath))

	// 2. Three members. Each runs the full single-node stack (server,
	// registry, durable pipeline with its own journal directory) plus a
	// cluster node wired in as the server's updater and router — exactly
	// what `-cluster-self/-cluster-peers` does in cmd/selestd.
	const n = 3
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		listeners[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	members := map[string]*member{} // base URL -> member
	for i := 0; i < n; i++ {
		srv := serve.NewServer(serve.Config{
			Batcher: serve.BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond},
		})
		pipe := ingest.New(ingest.Config{
			Registry: srv.Registry(),
			Train:    tc,
			// A huge δ_U keeps retraining out of the way: this example is
			// about replication, not model refresh.
			Update:  selnet.UpdateConfig{DeltaU: 1e18, Patience: 1, MaxEpochs: 1},
			Journal: ingest.JournalConfig{Dir: filepath.Join(dir, fmt.Sprintf("journal-%d", i))},
		})
		m, err := selnet.LoadNetFile(modelPath)
		check(err)
		_, err = srv.Registry().Publish("m", m, modelPath)
		check(err)
		check(pipe.Attach("m", m, db, wl.Queries[:cut], wl.Queries[cut:]))
		node, err := cluster.NewNode(cluster.Config{
			Self: peers[i], Peers: peers, Replicas: 3, Models: []string{"m"}, Pipe: pipe,
			Heartbeat: 50 * time.Millisecond, FailAfter: 400 * time.Millisecond,
			AckFollowers: 1, AckTimeout: 5 * time.Second,
			Monitor: obs.NewClusterMonitor(),
		})
		check(err)
		srv.SetUpdater(node)
		srv.SetCluster(node)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(listeners[i])
		members[peers[i]] = &member{url: peers[i], pipe: pipe, node: node, http: hs}
	}
	for _, m := range members {
		m.node.Start()
	}
	defer func() {
		for _, m := range members {
			m.crash()
		}
	}()

	client := &http.Client{Timeout: 5 * time.Second}

	// 3. The cluster elects a leader for the model (the consistent-hash
	// home wins the uncontested bootstrap election).
	leader, term := awaitLeader(client, peers[0], members, 0)
	fmt.Printf("leader for model %q: %s (term %d)\n", "m", leader, term)

	// 4. Acknowledged writes through the leader. With -cluster-ack 1
	// semantics, each 202 means a follower has the batch journaled too.
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		lastSeq = postUpdate(client, leader, [][]float64{{float64(i), 0.1, 0.2, 0.3}})
	}
	fmt.Printf("5 updates acknowledged through the leader, last seq %d\n", lastSeq)

	// 5. A write through a follower is transparently proxied to the
	// leader: same journal, continuing sequence.
	var follower string
	for url := range members {
		if url != leader {
			follower = url
			break
		}
	}
	seq := postUpdate(client, follower, [][]float64{{99, 0.1, 0.2, 0.3}})
	fmt.Printf("proxied update via follower %s: seq %d\n", follower, seq)
	lastSeq = seq

	// 6. Reads serve from every replica.
	for url := range members {
		fmt.Printf("estimate on %s: %.2f\n", url, estimate(client, url, db.Vecs[0], wl.TMax/2))
	}

	// 7. The shard map shows placement and leadership.
	fmt.Println("shard map:", getBody(client, leader+"/v1/cluster"))

	// 8. Crash the leader. The most caught-up follower is promoted with a
	// higher term, and its journal holds every acknowledged sequence.
	fmt.Printf("crashing leader %s\n", leader)
	members[leader].crash()
	delete(members, leader)
	newLeader, newTerm := awaitLeader(client, follower, members, term)
	fmt.Printf("promoted: %s (term %d -> %d)\n", newLeader, term, newTerm)
	last, applied, _ := members[newLeader].pipe.Position("m")
	fmt.Printf("new leader journal: last=%d applied=%d (acked through %d — zero loss)\n",
		last, applied, lastSeq)

	// 9. Writes flow again.
	seq = postUpdate(client, newLeader, [][]float64{{7, 7, 7, 7}})
	fmt.Printf("post-failover update: seq %d\n", seq)
}

// awaitLeader polls the shard map until it names a live member with a
// term above prev, retrying through the election window.
func awaitLeader(client *http.Client, via string, members map[string]*member, prev uint64) (string, uint64) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(via + "/v1/cluster")
		if err == nil {
			var sm struct {
				Models []struct {
					Leader string `json:"leader"`
					Term   uint64 `json:"term"`
				} `json:"models"`
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if json.Unmarshal(body, &sm) == nil && len(sm.Models) == 1 {
				lead, term := sm.Models[0].Leader, sm.Models[0].Term
				if _, alive := members[lead]; alive && term > prev {
					return lead, term
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Fprintln(os.Stderr, "no leader elected in time")
	os.Exit(1)
	return "", 0
}

// postUpdate sends one insert batch, retrying 429/503 backpressure.
func postUpdate(client *http.Client, base string, insert [][]float64) uint64 {
	body, _ := json.Marshal(map[string]any{"insert": insert})
	for {
		resp, err := client.Post(base+"/v1/models/m/update", "application/json", bytes.NewReader(body))
		check(err)
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			fmt.Fprintf(os.Stderr, "update on %s: status %d: %s\n", base, resp.StatusCode, b)
			os.Exit(1)
		}
		var ack struct {
			Seq uint64 `json:"seq"`
		}
		check(json.Unmarshal(b, &ack))
		return ack.Seq
	}
}

func estimate(client *http.Client, base string, q []float64, t float64) float64 {
	body, _ := json.Marshal(map[string]any{"model": "m", "query": q, "t": t})
	resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
	check(err)
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "estimate on %s: status %d: %s\n", base, resp.StatusCode, b)
		os.Exit(1)
	}
	var out struct {
		Estimate float64 `json:"estimate"`
	}
	check(json.Unmarshal(b, &out))
	return out.Estimate
}

func getBody(client *http.Client, url string) string {
	resp, err := client.Get(url)
	check(err)
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
