// Incremental learning under database updates (paper Sec. 5.4 and
// Figure 5): a stream of insert/delete operations hits the database, and
// the model decides per operation — via the validation-MAE trigger δ_U —
// whether to retrain incrementally or skip.
//
//	go run ./examples/streamingupdates
package main

import (
	"fmt"
	"math/rand"

	"selnet/internal/metrics"
	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	db := vecdata.SyntheticFace(rng, 1200, 12)
	wl := vecdata.GeometricWorkload(rng, db, 60, 6)
	train, valid, test := wl.Split(rng)

	cfg := selnet.DefaultConfig()
	cfg.TMax = wl.TMax
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = 25
	net := selnet.NewNet(rng, db.Dim, cfg)
	fmt.Println("initial training...")
	net.Fit(tc, db, train, valid)
	e := metrics.Evaluate(net, test)
	fmt.Printf("initial test errors: MSE %.4g  MAE %.4g  MAPE %.3f\n\n", e.MSE, e.MAE, e.MAPE)

	// Drift accumulates across operations; the baseline MAE (recorded at
	// the last retraining) makes the delta_U trigger fire once the
	// accumulated shift is large enough, exactly as Sec. 5.4 describes.
	uc := selnet.UpdateConfig{DeltaU: 0.35, Patience: 3, MaxEpochs: 8}
	uc.BaselineMAE = net.MAE(valid)
	ops := vecdata.UpdateStream(rng, 10, 120, func(r *rand.Rand) []float64 {
		return vecdata.SampleLike(r, db, 0.05)
	})
	fmt.Println("op  kind    size  retrained  epochs   val-MAE        test-MAPE")
	for i, op := range ops {
		kind, size := "insert", len(op.Insert)
		if size == 0 {
			kind, size = "delete", op.Delete
		}
		op.Apply(rng, db)
		res := net.HandleUpdate(tc, uc, db, train, valid)
		if res.Retrained {
			uc.BaselineMAE = res.MAEAfter
		}
		vecdata.Relabel(test, db)
		e := metrics.Evaluate(net, test)
		fmt.Printf("%2d  %-6s %5d  %9v  %6d  %8.3f        %8.3f\n",
			i+1, kind, size, res.Retrained, res.EpochsRun, res.MAEAfter, e.MAPE)
	}
	fmt.Println("\nminor updates are absorbed without retraining; larger label shifts")
	fmt.Println("trigger incremental epochs that restore accuracy (Sec. 5.4).")
}
