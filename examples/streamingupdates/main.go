// Streaming updates over the live serving API (paper Sec. 5.4 behind
// POST /v1/models/{name}/update): a trained model is served by the full
// selestd stack while a stream of insert/delete batches is POSTed at it.
// Each batch is journaled, coalesced, applied to the pipeline's private
// database, and judged by the δ_U trigger on a shadow clone; when the
// trigger fires, the shadow retrains incrementally and is hot-swapped
// into the registry — visible below as the generation bumping while
// estimate traffic keeps flowing. The demo ends by freezing the retrain
// worker and overflowing the journal to show 429 backpressure.
//
//	go run ./examples/streamingupdates
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"selnet/internal/ingest"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	// 1. Train a model, exactly as 'selest train' would.
	db := vecdata.SyntheticFace(rng, 1200, 12)
	wl := vecdata.GeometricWorkload(rng, db, 60, 6)
	cut := len(wl.Queries) * 4 / 5
	train, valid := wl.Queries[:cut], wl.Queries[cut:]
	cfg := selnet.DefaultConfig()
	cfg.TMax = wl.TMax
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = 25
	net := selnet.NewNet(rng, db.Dim, cfg)
	fmt.Println("initial training...")
	net.Fit(tc, db, train, valid)
	fmt.Printf("initial validation MAE: %.3f\n\n", net.MAE(valid))

	// 2. Stand up the serving stack with the ingest pipeline attached —
	// the same wiring as 'selestd -model ... -data ...'.
	srv := serve.NewServer(serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 2},
		Cache:   serve.CacheConfig{Capacity: 1024},
	})
	defer srv.Close()
	if _, err := srv.Registry().Publish("default", net, "in-memory"); err != nil {
		panic(err)
	}

	gate := make(chan struct{})
	hold := false
	pipe := ingest.New(ingest.Config{
		Registry:   srv.Registry(),
		QueueDepth: 4,
		Train:      tc,
		Update:     selnet.UpdateConfig{DeltaU: 0.15, Patience: 3, MaxEpochs: 8},
		BeforeRetrain: func(string) {
			if hold {
				<-gate // frozen by the backpressure demo below
			}
		},
	})
	defer pipe.Close()
	check(pipe.Attach("default", net, db.Clone(), train, valid))
	srv.SetUpdater(pipe)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving on %s\n\n", ts.URL)

	// 3. Stream update operations through the HTTP API. Waiting for each
	// batch keeps the printed table deterministic; real clients would
	// just keep posting and let the journal coalesce.
	probe := append([]float64(nil), db.Vecs[0]...)
	probeT := wl.TMax / 3
	ops := vecdata.UpdateStream(rng, 10, 120, func(r *rand.Rand) []float64 {
		return vecdata.SampleLike(r, db, 0.05)
	})
	fmt.Println("op  kind    size  status  retrained  epochs   val-MAE  gen  estimate(probe)")
	for i, op := range ops {
		kind, size := "insert", len(op.Insert)
		payload := map[string]any{"insert": op.Insert}
		if size == 0 {
			kind, size = "delete", op.Delete
			// Delete by value over the API: sample from the original
			// snapshot — vectors a previous op already removed are simply
			// ignored by the pipeline, which is the point of value-matched
			// deletes.
			del := make([][]float64, op.Delete)
			for j := range del {
				del[j] = append([]float64(nil), db.Vecs[rng.Intn(len(db.Vecs))]...)
			}
			payload = map[string]any{"delete": del}
		}
		var ack struct {
			Seq uint64 `json:"seq"`
		}
		status := post(ts.URL+"/v1/models/default/update", payload, &ack)
		pipe.WaitApplied("default", ack.Seq)
		st := pipe.UpdaterStats()["default"]
		gen, _ := srv.Registry().Get("default")
		est := estimate(ts.URL, probe, probeT)
		fmt.Printf("%2d  %-6s %5d  %6d  %9d  %6d  %8.3f  %3d  %14.1f\n",
			i+1, kind, size, status, st.Retrained, st.LastEpochs, st.LastMAEAfter, gen.Generation, est)
	}

	// 4. Backpressure: freeze the retrain worker and overflow the
	// 4-deep journal; the API answers 429 until the queue drains.
	fmt.Println("\nfreezing the retrain worker and flooding the update queue...")
	hold = true
	vec := [][]float64{vecdata.SampleLike(rng, db, 0.05)}
	var last struct {
		Seq uint64 `json:"seq"`
	}
	statuses := []int{}
	for i := 0; i < 7; i++ {
		var ack struct {
			Seq uint64 `json:"seq"`
		}
		s := post(ts.URL+"/v1/models/default/update", map[string]any{"insert": vec}, &ack)
		if ack.Seq > last.Seq {
			last.Seq = ack.Seq
		}
		statuses = append(statuses, s)
	}
	fmt.Printf("statuses while frozen: %v (202 accepted, 429 journal full)\n", statuses)
	hold = false
	close(gate)
	pipe.WaitApplied("default", last.Seq)
	st := pipe.UpdaterStats()["default"]
	fmt.Printf("after drain: applied_seq=%d lag=%d retrained=%d skipped=%d\n",
		st.AppliedSeq, st.Lag, st.Retrained, st.Skipped)
	fmt.Println("\nminor updates are absorbed without retraining (delta_U); larger label")
	fmt.Println("shifts retrain a shadow copy off the serving path and hot-swap it in.")
}

func estimate(base string, q []float64, t float64) float64 {
	var out struct {
		Estimate float64 `json:"estimate"`
	}
	post(base+"/v1/estimate", map[string]any{"model": "default", "query": q, "t": t}, &out)
	return out.Estimate
}

func post(url string, body any, out any) int {
	raw, err := json.Marshal(body)
	check(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	check(err)
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		check(json.NewDecoder(resp.Body).Decode(out))
	}
	return resp.StatusCode
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
