// Streaming updates over the live serving API (paper Sec. 5.4 behind
// POST /v1/models/{name}/update): a trained model is served by the full
// selestd stack while a stream of insert/delete batches is POSTed at it.
// Each batch is journaled, coalesced, applied to the pipeline's private
// database, and judged by the δ_U trigger on a shadow clone; when the
// trigger fires, the shadow retrains incrementally and is hot-swapped
// into the registry — visible below as the generation bumping while
// estimate traffic keeps flowing. The demo then freezes the retrain
// worker and overflows the journal to show 429 backpressure, and ends
// by crashing the whole stack with acknowledged batches still pending
// and recovering it from the durable journal (the selestd -journal-dir
// path): every 202-acknowledged batch replays, none is lost.
//
//	go run ./examples/streamingupdates
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"selnet/internal/ingest"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	// The durable journal directory shared by the serving stack and, after
	// the simulated crash, its replacement.
	journalDir, err := os.MkdirTemp("", "selestd-journal-")
	check(err)
	defer os.RemoveAll(journalDir)

	// 1. Train a model, exactly as 'selest train' would.
	db := vecdata.SyntheticFace(rng, 1200, 12)
	wl := vecdata.GeometricWorkload(rng, db, 60, 6)
	cut := len(wl.Queries) * 4 / 5
	train, valid := wl.Queries[:cut], wl.Queries[cut:]
	cfg := selnet.DefaultConfig()
	cfg.TMax = wl.TMax
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = 25
	net := selnet.NewNet(rng, db.Dim, cfg)
	fmt.Println("initial training...")
	net.Fit(tc, db, train, valid)
	fmt.Printf("initial validation MAE: %.3f\n\n", net.MAE(valid))

	// 2. Stand up the serving stack with the ingest pipeline attached —
	// the same wiring as 'selestd -model ... -data ... -journal-dir ...'.
	// No defers on this stack: the demo crashes it on purpose below.
	srv := serve.NewServer(serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 2},
		Cache:   serve.CacheConfig{Capacity: 1024},
	})
	if _, err := srv.Registry().Publish("default", net, "in-memory"); err != nil {
		panic(err)
	}

	gate := make(chan struct{})
	hold := false
	pipe := ingest.New(ingest.Config{
		Registry:   srv.Registry(),
		QueueDepth: 4,
		Train:      tc,
		Update:     selnet.UpdateConfig{DeltaU: 0.15, Patience: 3, MaxEpochs: 8},
		Journal:    ingest.JournalConfig{Dir: journalDir},
		BeforeRetrain: func(string) {
			if hold {
				<-gate // frozen by the backpressure and crash demos below
			}
		},
	})
	check(pipe.Attach("default", net, db.Clone(), train, valid))
	srv.SetUpdater(pipe)
	ts := httptest.NewServer(srv.Handler())
	fmt.Printf("serving on %s (journal in %s)\n\n", ts.URL, journalDir)

	// 3. Stream update operations through the HTTP API. Waiting for each
	// batch keeps the printed table deterministic; real clients would
	// just keep posting and let the journal coalesce.
	probe := append([]float64(nil), db.Vecs[0]...)
	probeT := wl.TMax / 3
	ops := vecdata.UpdateStream(rng, 10, 120, func(r *rand.Rand) []float64 {
		return vecdata.SampleLike(r, db, 0.05)
	})
	fmt.Println("op  kind    size  status  retrained  epochs   val-MAE  gen  estimate(probe)")
	for i, op := range ops {
		kind, size := "insert", len(op.Insert)
		payload := map[string]any{"insert": op.Insert}
		if size == 0 {
			kind, size = "delete", op.Delete
			// Delete by value over the API: sample from the original
			// snapshot — vectors a previous op already removed are simply
			// ignored by the pipeline, which is the point of value-matched
			// deletes.
			del := make([][]float64, op.Delete)
			for j := range del {
				del[j] = append([]float64(nil), db.Vecs[rng.Intn(len(db.Vecs))]...)
			}
			payload = map[string]any{"delete": del}
		}
		var ack struct {
			Seq uint64 `json:"seq"`
		}
		status := post(ts.URL+"/v1/models/default/update", payload, &ack)
		pipe.WaitApplied("default", ack.Seq)
		st := pipe.UpdaterStats()["default"]
		gen, _ := srv.Registry().Get("default")
		est := estimate(ts.URL, probe, probeT)
		fmt.Printf("%2d  %-6s %5d  %6d  %9d  %6d  %8.3f  %3d  %14.1f\n",
			i+1, kind, size, status, st.Retrained, st.LastEpochs, st.LastMAEAfter, gen.Generation, est)
	}

	// 4. Backpressure: freeze the retrain worker and overflow the
	// 4-deep journal; the API answers 429 until the queue drains.
	fmt.Println("\nfreezing the retrain worker and flooding the update queue...")
	hold = true
	vec := [][]float64{vecdata.SampleLike(rng, db, 0.05)}
	var last struct {
		Seq uint64 `json:"seq"`
	}
	statuses := []int{}
	for i := 0; i < 7; i++ {
		var ack struct {
			Seq uint64 `json:"seq"`
		}
		s := post(ts.URL+"/v1/models/default/update", map[string]any{"insert": vec}, &ack)
		if ack.Seq > last.Seq {
			last.Seq = ack.Seq
		}
		statuses = append(statuses, s)
	}
	fmt.Printf("statuses while frozen: %v (202 accepted, 429 journal full)\n", statuses)
	hold = false
	close(gate)
	pipe.WaitApplied("default", last.Seq)
	st := pipe.UpdaterStats()["default"]
	fmt.Printf("after drain: applied_seq=%d lag=%d retrained=%d skipped=%d journaled=%d\n",
		st.AppliedSeq, st.Lag, st.Retrained, st.Skipped, st.JournaledBatches)

	// 5. Kill and recover. Freeze the worker again so freshly accepted
	// batches cannot be applied, acknowledge a few more inserts (each 202
	// was fsynced to the journal before the response), then "crash": the
	// whole serving stack is abandoned without any drain — exactly what a
	// SIGKILL leaves behind. A new stack over the same journal directory
	// must replay every acknowledged batch.
	fmt.Println("\nfreezing the worker and crashing with acknowledged batches pending...")
	gate2 := make(chan struct{})
	gate = gate2 // never closed: the old worker stays wedged, like a dead process
	hold = true
	crashSeqs := []uint64{}
	for i := 0; i < 3; i++ {
		var ack struct {
			Seq uint64 `json:"seq"`
		}
		s := post(ts.URL+"/v1/models/default/update", map[string]any{"insert": vec}, &ack)
		if s == http.StatusAccepted {
			crashSeqs = append(crashSeqs, ack.Seq)
		}
	}
	ts.Close() // the "crash": no pipe.Close, no drain, journal left as-is
	fmt.Printf("crashed with acked-but-unapplied seqs %v\n\n", crashSeqs)

	// 6. Recovery, as selestd does on boot with -journal-dir: a fresh
	// stack, the pristine database reloaded, and Attach replaying the
	// journal's surviving records through the normal δ_U pipeline.
	srv2 := serve.NewServer(serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 2},
		Cache:   serve.CacheConfig{Capacity: 1024},
	})
	defer srv2.Close()
	if _, err := srv2.Registry().Publish("default", net, "in-memory"); err != nil {
		panic(err)
	}
	pipe2 := ingest.New(ingest.Config{
		Registry: srv2.Registry(),
		Train:    tc,
		Update:   selnet.UpdateConfig{DeltaU: 0.15, Patience: 3, MaxEpochs: 8},
		Journal: ingest.JournalConfig{
			Dir: journalDir,
			OnRecover: func(model string, r ingest.Recovery) {
				fmt.Printf("recovery %q: snapshot seq %d (model restored=%v), %d entries to replay\n",
					model, r.SnapshotSeq, r.RestoredModel, r.Replayed)
			},
		},
	})
	defer pipe2.Close()
	check(pipe2.Attach("default", net, db.Clone(), cloneQueries(train), cloneQueries(valid)))
	srv2.SetUpdater(pipe2)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	lastAcked := crashSeqs[len(crashSeqs)-1]
	pipe2.WaitApplied("default", lastAcked)
	st2 := pipe2.UpdaterStats()["default"]
	gen2, _ := srv2.Registry().Get("default")
	fmt.Printf("after replay: applied_seq=%d (>= last acked %d), replayed=%d, gen=%d, estimate(probe)=%.1f\n",
		st2.AppliedSeq, lastAcked, st2.ReplayedBatches, gen2.Generation, estimate(ts2.URL, probe, probeT))

	fmt.Println("\nminor updates are absorbed without retraining (delta_U); larger label")
	fmt.Println("shifts retrain a shadow copy off the serving path and hot-swap it in;")
	fmt.Println("and with a journal directory, a 202 means the batch survives a crash.")
}

// cloneQueries deep-copies a labelled query set: the recovered pipeline
// relabels in place, and the crashed stack's wedged worker still holds
// the originals.
func cloneQueries(qs []vecdata.Query) []vecdata.Query {
	out := make([]vecdata.Query, len(qs))
	copy(out, qs)
	return out
}

func estimate(base string, q []float64, t float64) float64 {
	var out struct {
		Estimate float64 `json:"estimate"`
	}
	post(base+"/v1/estimate", map[string]any{"model": "default", "query": q, "t": t}, &out)
	return out.Estimate
}

func post(url string, body any, out any) int {
	raw, err := json.Marshal(body)
	check(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	check(err)
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		check(json.NewDecoder(resp.Body).Decode(out))
	}
	return resp.StatusCode
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
