// Serving: train a small SelNet model, stand up the selestd serving
// stack in-process (registry + coalescer + cache + HTTP API), and drive
// it as a client — single estimates, a batch call, a cache hit, and a
// zero-downtime hot-swap while traffic is in flight.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"selnet/internal/distance"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// 1. Train a small model, exactly as 'selest train' would.
	db := vecdata.SyntheticFasttext(rng, 1000, 8, distance.Cosine)
	wl := vecdata.GeometricWorkload(rng, db, 40, 6)
	train, valid, _ := wl.Split(rng)
	cfg := selnet.DefaultConfig()
	cfg.TMax = wl.TMax
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = 10
	net := selnet.NewNet(rng, db.Dim, cfg)
	net.Fit(tc, db, train, valid)

	dir, err := os.MkdirTemp("", "selestd-example")
	check(err)
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model.gob")
	check(net.SaveFile(modelPath))

	// 2. Start the serving stack — the same serve.Server that cmd/selestd
	// runs behind a real listener.
	srv := serve.NewServer(serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 2},
		Cache:   serve.CacheConfig{Capacity: 1024},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving on %s\n\n", ts.URL)

	// 3. Load the model over the API.
	post(ts.URL+"/v1/models/default", map[string]string{"path": modelPath})

	// 4. Single estimate, then the identical request again: the second is
	// answered from the LRU cache.
	q := db.Vecs[0]
	t := wl.TMax / 2
	for i := 0; i < 2; i++ {
		var resp struct {
			Estimate float64 `json:"estimate"`
			Cached   bool    `json:"cached"`
		}
		post(ts.URL+"/v1/estimate", map[string]any{"query": q, "t": t}, &resp)
		fmt.Printf("estimate(q, %.4f) = %.1f  (cached: %v, exact: %.0f)\n",
			t, resp.Estimate, resp.Cached, db.Selectivity(q, t))
	}

	// 5. Batch endpoint: many queries in one tensor pass.
	var bresp struct {
		Estimates []float64 `json:"estimates"`
	}
	post(ts.URL+"/v1/estimate/batch", map[string]any{
		"queries": db.Vecs[:4], "t": t,
	}, &bresp)
	fmt.Printf("batch of 4: %.1f\n\n", bresp.Estimates)

	// 6. Hot-swap the model while 8 clients hammer the server; no request
	// fails or waits for the swap.
	fmt.Println("hot-swapping under load...")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var served int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				qi := grng.Intn(db.Size())
				post(ts.URL+"/v1/estimate", map[string]any{
					"query": db.Vecs[qi], "t": grng.Float64() * wl.TMax,
				})
				mu.Lock()
				served++
				mu.Unlock()
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		post(ts.URL+"/v1/models/default", map[string]string{"path": modelPath})
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// 7. A concurrent burst against the final model: the coalescer fuses
	// these single-query requests into a few tensor passes. (Each swap
	// installs a fresh coalescer, so these stats cover only the burst.)
	var burst sync.WaitGroup
	for g := 0; g < 8; g++ {
		burst.Add(1)
		go func(g int) {
			defer burst.Done()
			grng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 25; i++ {
				qi := grng.Intn(db.Size())
				post(ts.URL+"/v1/estimate", map[string]any{
					"query": db.Vecs[qi], "t": grng.Float64() * wl.TMax,
				})
			}
		}(g)
	}
	burst.Wait()
	var stats struct {
		Requests uint64 `json:"requests"`
		Cache    struct {
			Hits, Misses uint64
		} `json:"cache"`
		Models []struct {
			Generation uint64 `json:"generation"`
			Batcher    *struct {
				Requests uint64 `json:"requests"`
				Batches  uint64 `json:"batches"`
				MaxFused uint64 `json:"max_fused"`
			} `json:"batcher"`
		} `json:"models"`
	}
	get(ts.URL+"/stats", &stats)
	m := stats.Models[0]
	fmt.Printf("served %d estimates across %d swaps (model generation %d)\n",
		served, 5, m.Generation)
	fmt.Printf("coalescer (burst of 200): %d requests fused into %d batches (largest %d)\n",
		m.Batcher.Requests, m.Batcher.Batches, m.Batcher.MaxFused)
	fmt.Printf("cache: %d hits / %d misses\n", stats.Cache.Hits, stats.Cache.Misses)
}

// post sends body as JSON and decodes the response into out[0] if given.
func post(url string, body any, out ...any) {
	raw, err := json.Marshal(body)
	check(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	check(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		check(fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, e.Error))
	}
	if len(out) > 0 {
		check(json.NewDecoder(resp.Body).Decode(out[0]))
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	check(json.NewDecoder(resp.Body).Decode(out))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
