// Quickstart: train a consistent SelNet selectivity estimator on a
// synthetic embedding dataset and compare its estimates with exact
// counts across a sweep of thresholds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"selnet/internal/distance"
	"selnet/internal/metrics"
	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// 1. A database of 2000 synthetic word-embedding-like vectors under
	// cosine distance.
	db := vecdata.SyntheticFasttext(rng, 2000, 16, distance.Cosine)
	fmt.Printf("database: %d vectors, dim %d, distance %v\n", db.Size(), db.Dim, db.Dist)

	// 2. A labelled workload: 80 query vectors, 8 thresholds each, chosen
	// so selectivities form a geometric sequence (the paper's workload).
	wl := vecdata.GeometricWorkload(rng, db, 80, 8)
	train, valid, test := wl.Split(rng)
	fmt.Printf("workload: %d train / %d valid / %d test queries, t_max %.4f\n\n",
		len(train), len(valid), len(test), wl.TMax)

	// 3. Train a SelNet estimator (the unpartitioned variant for brevity;
	// see selnet.NewPartitioned for the full model).
	cfg := selnet.DefaultConfig()
	cfg.TMax = wl.TMax
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = 30
	net := selnet.NewNet(rng, db.Dim, cfg)
	net.Fit(tc, db, train, valid)

	// 4. Accuracy on held-out queries.
	e := metrics.Evaluate(net, test)
	fmt.Printf("test errors: MSE %.4g  MAE %.4g  MAPE %.3f\n\n", e.MSE, e.MAE, e.MAPE)

	// 5. The estimator is consistent: estimates never decrease as the
	// threshold grows. Sweep one query's curve against the exact counts.
	x := test[0].X
	fmt.Println("  threshold   estimated     exact")
	prev := -1.0
	for i := 0; i <= 8; i++ {
		t := wl.TMax * float64(i) / 8
		est := net.Estimate(x, t)
		exact := db.Selectivity(x, t)
		fmt.Printf("  %9.4f   %9.1f %9.0f\n", t, est, exact)
		if est < prev {
			panic("consistency violated — this cannot happen (Lemma 1)")
		}
		prev = est
	}
	fmt.Println("\nmonotone in t, as guaranteed by construction.")
}
