// Package lshsampling implements the LSH importance-sampling baseline
// (Wu, Charikar, Natchu, "Local density estimation in high dimensions",
// ICML 2018 — reference [38] of the paper). The method applies only to
// cosine distance because it relies on SimHash.
//
// Every database vector receives a b-bit SimHash signature (signs of
// projections on b random hyperplanes). At query time the database is
// stratified by Hamming distance between each vector's signature and the
// query's; a fixed sample budget is allocated across strata, biased toward
// low Hamming distance — the strata that contain the near neighbours
// responsible for small-selectivity queries. Within each stratum the
// estimate |S_j|/m_j * #matches is unbiased, so the total is an unbiased
// stratified estimator with far lower variance than uniform sampling at
// small thresholds.
//
// For a fixed drawn sample the estimate is a count of fixed distances
// below t, hence non-decreasing in t: the estimator is consistent, as the
// paper's Table 5 reports.
package lshsampling

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/bits"
	"math/rand"

	"selnet/internal/distance"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// Config holds the LSH estimator's hyper-parameters.
type Config struct {
	// Bits is the SimHash signature length (max 64).
	Bits int
	// SampleBudget is the total number of distance evaluations per query
	// (the paper uses 2000 samples).
	SampleBudget int
	// DecayRate biases allocation toward low Hamming strata; stratum j
	// receives weight |S_j| * exp(-DecayRate*j) before normalization.
	DecayRate float64
	// Seed fixes the per-query sampling RNG so repeated estimates for the
	// same query are identical (and monotone in t).
	Seed int64
}

// DefaultConfig mirrors the paper's sample budget.
func DefaultConfig() Config {
	return Config{Bits: 16, SampleBudget: 2000, DecayRate: 0.35, Seed: 1}
}

// Estimator is a built LSH importance sampler.
type Estimator struct {
	cfg        Config
	db         *vecdata.Database
	dim        int
	tmax       float64
	planes     [][]float64 // bits random hyperplanes
	signatures []uint64
}

// Build hashes the database. It returns an error for non-cosine distance
// functions, mirroring the paper ("it only works for the cosine distance
// due to the use of the SimHash technique").
func Build(rng *rand.Rand, db *vecdata.Database, cfg Config) (*Estimator, error) {
	if db.Dist != distance.Cosine {
		return nil, fmt.Errorf("lshsampling: SimHash requires cosine distance, got %v", db.Dist)
	}
	if cfg.Bits < 1 || cfg.Bits > 64 {
		return nil, fmt.Errorf("lshsampling: Bits must be in [1, 64], got %d", cfg.Bits)
	}
	// Cosine distance is bounded by 2, so every threshold is answerable.
	e := &Estimator{cfg: cfg, db: db, dim: db.Dim, tmax: 2}
	e.planes = make([][]float64, cfg.Bits)
	for i := range e.planes {
		p := make([]float64, db.Dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		e.planes[i] = p
	}
	e.signatures = make([]uint64, db.Size())
	for i, v := range db.Vecs {
		e.signatures[i] = e.signature(v)
	}
	return e, nil
}

func (e *Estimator) signature(v []float64) uint64 {
	var sig uint64
	for i, p := range e.planes {
		if distance.Dot(v, p) >= 0 {
			sig |= 1 << uint(i)
		}
	}
	return sig
}

// Estimate returns the stratified importance-sampling estimate for (x, t).
func (e *Estimator) Estimate(x []float64, t float64) float64 {
	qsig := e.signature(x)
	// Stratify by Hamming distance.
	strata := make([][]int, e.cfg.Bits+1)
	for i, s := range e.signatures {
		h := bits.OnesCount64(qsig ^ s)
		strata[h] = append(strata[h], i)
	}
	// Allocate the budget: weight_j = |S_j| * exp(-decay*j), at least one
	// sample for every non-empty stratum.
	weights := make([]float64, len(strata))
	var wsum float64
	for j, s := range strata {
		if len(s) == 0 {
			continue
		}
		weights[j] = float64(len(s)) * math.Exp(-e.cfg.DecayRate*float64(j))
		wsum += weights[j]
	}
	if wsum == 0 {
		return 0
	}
	// Deterministic per-query RNG: repeated calls (different t) reuse the
	// same sample, which keeps the estimator consistent in t.
	rng := rand.New(rand.NewSource(e.cfg.Seed ^ int64(qsig*0x9e3779b97f4a7c15)))
	var total float64
	for j, s := range strata {
		if len(s) == 0 {
			continue
		}
		mj := int(math.Round(float64(e.cfg.SampleBudget) * weights[j] / wsum))
		if mj < 1 {
			mj = 1
		}
		if mj > len(s) {
			mj = len(s)
		}
		var matched int
		if mj == len(s) {
			for _, idx := range s {
				if e.db.Dist.Distance(x, e.db.Vecs[idx]) <= t {
					matched++
				}
			}
		} else {
			perm := rng.Perm(len(s))[:mj]
			for _, pi := range perm {
				if e.db.Dist.Distance(x, e.db.Vecs[s[pi]]) <= t {
					matched++
				}
			}
		}
		total += float64(len(s)) * float64(matched) / float64(mj)
	}
	return total
}

// Refresh recomputes the stored signatures from the database's current
// contents, keeping the hyperplanes fixed — the cheap path for reusing
// a built estimator after the database mutated (streaming inserts and
// deletes), costing one O(|D|·bits·dim) hashing pass instead of a full
// rebuild with fresh planes. Not safe concurrently with Estimate.
func (e *Estimator) Refresh() {
	sigs := make([]uint64, e.db.Size())
	for i, v := range e.db.Vecs {
		sigs[i] = e.signature(v)
	}
	e.signatures = sigs
}

// Name returns the paper's model name.
func (e *Estimator) Name() string { return "LSH" }

// ConsistencyGuaranteed reports that the estimator is monotone in t for
// its fixed per-query sample.
func (e *Estimator) ConsistencyGuaranteed() bool { return true }

// EstimateBatch evaluates one query per row of x against the matching
// threshold in ts. Safe for concurrent use as long as nothing calls
// Refresh or BindDB concurrently; serving always works on a clone.
func (e *Estimator) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	out := make([]float64, x.Rows())
	for i := range out {
		out[i] = e.Estimate(x.Row(i), ts[i])
	}
	return out
}

// Dim returns the vector dimensionality the estimator was built on.
func (e *Estimator) Dim() int { return e.dim }

// TMax returns the largest answerable threshold (2, the cosine-distance
// ceiling, unless overridden by SetTMax).
func (e *Estimator) TMax() float64 { return e.tmax }

// SetTMax overrides the advertised threshold ceiling.
func (e *Estimator) SetTMax(t float64) {
	if t > 0 {
		e.tmax = t
	}
}

// DataSize returns the number of database vectors currently backing the
// estimator; the serving router compares it against VC sampling bounds.
func (e *Estimator) DataSize() int { return e.db.Size() }

// Clone returns a copy sharing the immutable hyperplanes but owning its
// signatures and a private copy of the database, so Refresh/BindDB on
// the clone never races with Estimate on the original.
func (e *Estimator) Clone() *Estimator {
	return &Estimator{
		cfg:        e.cfg,
		db:         e.db.Clone(),
		dim:        e.dim,
		tmax:       e.tmax,
		planes:     e.planes,
		signatures: append([]uint64(nil), e.signatures...),
	}
}

// CloneEstimator implements the serving layer's clone capability.
func (e *Estimator) CloneEstimator() any { return e.Clone() }

// BindDB points the estimator at a different database snapshot. The
// caller must Refresh afterwards so signatures match the new contents.
func (e *Estimator) BindDB(db *vecdata.Database) error {
	if db.Dist != distance.Cosine {
		return fmt.Errorf("lshsampling: SimHash requires cosine distance, got %v", db.Dist)
	}
	if db.Dim != e.dim {
		return fmt.Errorf("lshsampling: database dim %d != estimator dim %d", db.Dim, e.dim)
	}
	e.db = db
	return nil
}

// blob is the gob wire form: config, planes, threshold ceiling and the
// backing vectors. Signatures are recomputed on load (one hashing pass)
// rather than stored.
type blob struct {
	Cfg    Config
	Dim    int
	TMax   float64
	Name   string
	Planes [][]float64
	Vecs   [][]float64
}

// Save serializes the estimator, including its backing vectors, to w.
func (e *Estimator) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(blob{
		Cfg:    e.cfg,
		Dim:    e.dim,
		TMax:   e.tmax,
		Name:   e.db.Name,
		Planes: e.planes,
		Vecs:   e.db.Vecs,
	})
}

// Load reads an estimator previously written by Save and recomputes its
// signatures.
func Load(r io.Reader) (*Estimator, error) {
	var b blob
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("lshsampling: decode: %w", err)
	}
	if len(b.Planes) == 0 {
		return nil, fmt.Errorf("lshsampling: corrupt model: no hyperplanes")
	}
	e := &Estimator{
		cfg:    b.Cfg,
		db:     vecdata.NewDatabase(b.Name, distance.Cosine, b.Vecs),
		dim:    b.Dim,
		tmax:   b.TMax,
		planes: b.Planes,
	}
	e.Refresh()
	return e, nil
}
