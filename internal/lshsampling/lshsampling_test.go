package lshsampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/distance"
	"selnet/internal/vecdata"
)

func cosDB(seed int64, n, dim int) *vecdata.Database {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = distance.Normalize(v)
	}
	return vecdata.NewDatabase("cos", distance.Cosine, vecs)
}

func TestBuildRejectsEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs := [][]float64{{1, 2}, {3, 4}}
	db := vecdata.NewDatabase("l2", distance.Euclidean, vecs)
	if _, err := Build(rng, db, DefaultConfig()); err == nil {
		t.Fatalf("expected error for Euclidean distance")
	}
}

func TestBuildRejectsBadBits(t *testing.T) {
	db := cosDB(2, 10, 4)
	rng := rand.New(rand.NewSource(3))
	for _, bad := range []int{0, 65, -1} {
		cfg := DefaultConfig()
		cfg.Bits = bad
		if _, err := Build(rng, db, cfg); err == nil {
			t.Fatalf("expected error for Bits=%d", bad)
		}
	}
}

func TestSignatureSimilarVectorsCollide(t *testing.T) {
	db := cosDB(4, 50, 16)
	rng := rand.New(rand.NewSource(5))
	est, err := Build(rng, db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A vector hashed twice gives the same signature.
	if est.signature(db.Vecs[0]) != est.signature(db.Vecs[0]) {
		t.Fatalf("signature not deterministic")
	}
	// A tiny perturbation rarely flips many bits.
	v := append([]float64(nil), db.Vecs[0]...)
	v[0] += 1e-9
	a, b := est.signature(db.Vecs[0]), est.signature(v)
	if hamming(a, b) > 2 {
		t.Fatalf("near-identical vectors differ in %d bits", hamming(a, b))
	}
}

func hamming(a, b uint64) int {
	x := a ^ b
	n := 0
	for x != 0 {
		n += int(x & 1)
		x >>= 1
	}
	return n
}

func TestEstimateMonotoneInT(t *testing.T) {
	db := cosDB(6, 400, 8)
	rng := rand.New(rand.NewSource(7))
	est, err := Build(rng, db, Config{Bits: 12, SampleBudget: 200, DecayRate: 0.35, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := db.Vecs[r.Intn(db.Size())]
		t1 := r.Float64()
		t2 := t1 + r.Float64()
		return est.Estimate(x, t1) <= est.Estimate(x, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateExactWhenBudgetCoversDatabase(t *testing.T) {
	db := cosDB(8, 150, 6)
	rng := rand.New(rand.NewSource(9))
	// Budget far above n: every stratum is fully enumerated, estimate is exact.
	est, err := Build(rng, db, Config{Bits: 10, SampleBudget: 10000, DecayRate: 0.35, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := db.Vecs[trial]
		threshold := 0.1 + 0.1*float64(trial)
		exact := db.Selectivity(x, threshold)
		got := est.Estimate(x, threshold)
		if math.Abs(got-exact) > 1e-9 {
			t.Fatalf("full-budget estimate %v != exact %v", got, exact)
		}
	}
}

func TestEstimateUnbiasedOnAverage(t *testing.T) {
	db := cosDB(10, 500, 8)
	x := db.Vecs[0]
	const threshold = 0.4
	exact := db.Selectivity(x, threshold)
	// Average over independent samplers (different seeds).
	var sum float64
	const reps = 30
	for s := int64(0); s < reps; s++ {
		rng := rand.New(rand.NewSource(11))
		est, err := Build(rng, db, Config{Bits: 12, SampleBudget: 100, DecayRate: 0.35, Seed: 100 + s})
		if err != nil {
			t.Fatal(err)
		}
		sum += est.Estimate(x, threshold)
	}
	mean := sum / reps
	if math.Abs(mean-exact) > 0.35*exact+10 {
		t.Fatalf("mean estimate %v too far from exact %v", mean, exact)
	}
}

func TestEstimateDeterministicPerQuery(t *testing.T) {
	db := cosDB(12, 200, 8)
	rng := rand.New(rand.NewSource(13))
	est, err := Build(rng, db, Config{Bits: 12, SampleBudget: 150, DecayRate: 0.35, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x := db.Vecs[17]
	if est.Estimate(x, 0.3) != est.Estimate(x, 0.3) {
		t.Fatalf("repeated estimates differ")
	}
}

func TestNameAndConsistency(t *testing.T) {
	db := cosDB(14, 50, 4)
	est, err := Build(rand.New(rand.NewSource(15)), db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if est.Name() != "LSH" {
		t.Fatalf("Name = %q", est.Name())
	}
	if !est.ConsistencyGuaranteed() {
		t.Fatalf("LSH must report guaranteed consistency")
	}
}

func TestRefreshSeesMutations(t *testing.T) {
	db := cosDB(31, 500, 8)
	rng := rand.New(rand.NewSource(32))
	e, err := Build(rng, db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := append([]float64(nil), db.Vecs[0]...)
	before := e.Estimate(x, 0.3)
	// Duplicate a slab of vectors near x; after Refresh the estimator
	// must hash the new rows and the estimate must grow.
	for i := 0; i < 250; i++ {
		db.Vecs = append(db.Vecs, append([]float64(nil), db.Vecs[i%50]...))
	}
	e.Refresh()
	after := e.Estimate(x, 0.3)
	if after <= before {
		t.Fatalf("estimate did not grow after Refresh over duplicated rows: %v -> %v", before, after)
	}
	// Refresh keeps the planes: refreshing an unchanged database is a
	// no-op for estimates.
	again := e.Estimate(x, 0.3)
	e.Refresh()
	if got := e.Estimate(x, 0.3); got != again {
		t.Fatalf("Refresh changed estimates on an unmodified database: %v -> %v", again, got)
	}
}
