package autodiff

import (
	"fmt"

	"selnet/internal/tensor"
)

// RepeatRows tiles the single-row node a (1 x C) into n identical rows.
// The backward pass sums gradients over the tiled rows, which makes it the
// right adapter for sharing one parameter row across a batch (e.g. DLN
// calibrator outputs).
func (t *Tape) RepeatRows(a *Node, n int) *Node {
	same(t, a)
	if a.Rows() != 1 {
		panic(fmt.Sprintf("autodiff: RepeatRows requires a 1-row node, got %dx%d", a.Rows(), a.Cols()))
	}
	v := tensor.New(n, a.Cols())
	for i := 0; i < n; i++ {
		copy(v.Row(i), a.Value.Row(0))
	}
	out := t.node("repeatrows", v)
	out.backward = func() {
		tensor.AddInPlace(a.Grad, tensor.SumRows(out.Grad))
	}
	return out
}

// Reshape returns a view of a with a new shape holding the same elements
// in row-major order. The gradient is reshaped identically.
func (t *Tape) Reshape(a *Node, rows, cols int) *Node {
	same(t, a)
	if rows*cols != a.Value.Size() {
		panic(fmt.Sprintf("autodiff: Reshape %dx%d -> %dx%d", a.Rows(), a.Cols(), rows, cols))
	}
	v := a.Value.Clone().Reshape(rows, cols)
	out := t.node("reshape", v)
	out.backward = func() {
		g, ag := out.Grad.Data(), a.Grad.Data()
		for i, gv := range g {
			ag[i] += gv
		}
	}
	return out
}

// Lattice evaluates a multilinear-interpolation lattice (Garcia & Gupta,
// NIPS'09; the building block of deep lattice networks). x is batch x m
// with entries expected in [0,1]; theta is 1 x 2^m holding one value per
// hypercube vertex, indexed by the bit pattern of the corner. The output
// for a row x is
//
//	sum_{c in {0,1}^m} theta[c] * prod_j (x_j if c_j=1 else 1-x_j).
//
// Gradients flow into both theta and x. The lattice is monotone in input
// dimension j exactly when theta is non-decreasing along every edge of the
// hypercube in direction j — package dln enforces that with projections.
func (t *Tape) Lattice(x, theta *Node) *Node {
	same(t, x, theta)
	m := x.Cols()
	if m > 20 {
		panic("autodiff: Lattice dimension too large")
	}
	verts := 1 << uint(m)
	if theta.Rows() != 1 || theta.Cols() != verts {
		panic(fmt.Sprintf("autodiff: Lattice theta must be 1x%d, got %dx%d", verts, theta.Rows(), theta.Cols()))
	}
	rows := x.Rows()
	v := tensor.New(rows, 1)
	th := theta.Value.Row(0)
	// Cache per-row corner weights for the backward pass.
	weights := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		xr := x.Value.Row(r)
		w := make([]float64, verts)
		var acc float64
		for c := 0; c < verts; c++ {
			p := 1.0
			for j := 0; j < m; j++ {
				if c&(1<<uint(j)) != 0 {
					p *= xr[j]
				} else {
					p *= 1 - xr[j]
				}
			}
			w[c] = p
			acc += th[c] * p
		}
		weights[r] = w
		v.Set(r, 0, acc)
	}
	out := t.node("lattice", v)
	out.backward = func() {
		tg := theta.Grad.Row(0)
		for r := 0; r < rows; r++ {
			g := out.Grad.At(r, 0)
			if g == 0 {
				continue
			}
			xr := x.Value.Row(r)
			xg := x.Grad.Row(r)
			w := weights[r]
			for c := 0; c < verts; c++ {
				tg[c] += g * w[c]
			}
			// d/dx_j = sum_c theta_c * dW_c/dx_j, where dW_c/dx_j flips the
			// j-term of the product to +-1.
			for j := 0; j < m; j++ {
				var s float64
				for c := 0; c < verts; c++ {
					// Recompute the product without the j factor.
					p := 1.0
					for k := 0; k < m; k++ {
						if k == j {
							continue
						}
						if c&(1<<uint(k)) != 0 {
							p *= xr[k]
						} else {
							p *= 1 - xr[k]
						}
					}
					if c&(1<<uint(j)) != 0 {
						s += th[c] * p
					} else {
						s -= th[c] * p
					}
				}
				xg[j] += g * s
			}
		}
	}
	return out
}

// LatticeVertexCount returns 2^m, the number of vertices of an m-dim lattice.
func LatticeVertexCount(m int) int {
	if m < 0 || m > 20 {
		panic("autodiff: lattice dimension out of range")
	}
	return 1 << uint(m)
}

// LatticeEdgePairs enumerates the (lo, hi) vertex index pairs forming the
// hypercube edges along dimension j; a lattice is monotone increasing in
// dimension j when theta[hi] >= theta[lo] for every pair.
func LatticeEdgePairs(m, j int) [][2]int {
	verts := LatticeVertexCount(m)
	pairs := make([][2]int, 0, verts/2)
	for c := 0; c < verts; c++ {
		if c&(1<<uint(j)) == 0 {
			pairs = append(pairs, [2]int{c, c | 1<<uint(j)})
		}
	}
	return pairs
}
