package autodiff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/tensor"
)

// numericalGrad perturbs each element of param and measures the change in
// the scalar produced by eval, giving a finite-difference reference
// gradient for the analytic one.
func numericalGrad(param *tensor.Dense, eval func() float64) *tensor.Dense {
	const h = 1e-6
	g := tensor.New(param.Rows(), param.Cols())
	data := param.Data()
	for i := range data {
		orig := data[i]
		data[i] = orig + h
		fp := eval()
		data[i] = orig - h
		fm := eval()
		data[i] = orig
		g.Data()[i] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGrad builds the graph twice: once to get analytic gradients for the
// listed params, once per perturbation for numerical gradients.
func checkGrad(t *testing.T, name string, params []*tensor.Dense, build func(tp *Tape, leaves []*Node) *Node) {
	t.Helper()
	eval := func() float64 {
		tp := NewTape()
		leaves := make([]*Node, len(params))
		for i, p := range params {
			leaves[i] = tp.Leaf(p, tensor.New(p.Rows(), p.Cols()))
		}
		return build(tp, leaves).Scalar()
	}
	tp := NewTape()
	leaves := make([]*Node, len(params))
	grads := make([]*tensor.Dense, len(params))
	for i, p := range params {
		grads[i] = tensor.New(p.Rows(), p.Cols())
		leaves[i] = tp.Leaf(p, grads[i])
	}
	loss := build(tp, leaves)
	tp.Backward(loss)
	for i, p := range params {
		num := numericalGrad(p, eval)
		if !tensor.EqualApprox(grads[i], num, 2e-4) {
			t.Errorf("%s: param %d analytic grad %v != numerical %v", name, i, grads[i], num)
		}
	}
}

func randDense(rng *rand.Rand, r, c int) *tensor.Dense {
	m := tensor.New(r, c)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func randPositive(rng *rand.Rand, r, c int) *tensor.Dense {
	m := tensor.New(r, c)
	for i := range m.Data() {
		m.Data()[i] = 0.2 + rng.Float64()
	}
	return m
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 3, 4)
	b := randDense(rng, 4, 2)
	checkGrad(t, "matmul", []*tensor.Dense{a, b}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.MatMul(l[0], l[1]))
	})
}

func TestGradAddSubMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 2, 3)
	b := randDense(rng, 2, 3)
	checkGrad(t, "add", []*tensor.Dense{a, b}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.Add(l[0], l[1])))
	})
	checkGrad(t, "sub", []*tensor.Dense{a, b}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.Sub(l[0], l[1])))
	})
	checkGrad(t, "mul", []*tensor.Dense{a, b}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Mul(l[0], l[1]))
	})
}

func TestGradScaleAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 3, 4)
	v := randDense(rng, 1, 4)
	checkGrad(t, "scale", []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Scale(l[0], -2.5))
	})
	checkGrad(t, "addrow", []*tensor.Dense{a, v}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.AddRow(l[0], l[1])))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 3, 3)
	// Shift away from 0 so ReLU's kink doesn't break finite differences.
	for i := range a.Data() {
		if math.Abs(a.Data()[i]) < 0.05 {
			a.Data()[i] = 0.3
		}
	}
	for name, f := range map[string]func(tp *Tape, n *Node) *Node{
		"relu":     func(tp *Tape, n *Node) *Node { return tp.ReLU(n) },
		"tanh":     func(tp *Tape, n *Node) *Node { return tp.Tanh(n) },
		"sigmoid":  func(tp *Tape, n *Node) *Node { return tp.Sigmoid(n) },
		"softplus": func(tp *Tape, n *Node) *Node { return tp.Softplus(n) },
		"elu":      func(tp *Tape, n *Node) *Node { return tp.ELU(n, 1.0) },
		"exp":      func(tp *Tape, n *Node) *Node { return tp.Exp(n) },
		"square":   func(tp *Tape, n *Node) *Node { return tp.Square(n) },
	} {
		f := f
		checkGrad(t, name, []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
			return tp.Sum(f(tp, l[0]))
		})
	}
}

func TestGradLog(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randPositive(rng, 2, 3)
	checkGrad(t, "log", []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Log(l[0], 1e-3))
	})
}

func TestGradConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randDense(rng, 2, 3)
	b := randDense(rng, 2, 2)
	checkGrad(t, "concat+slice", []*tensor.Dense{a, b}, func(tp *Tape, l []*Node) *Node {
		cat := tp.ConcatCols(l[0], l[1])
		return tp.Sum(tp.Square(tp.SliceCols(cat, 1, 4)))
	})
}

func TestGradPrefixSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 3, 5)
	checkGrad(t, "prefixsum", []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.PrefixSumCols(l[0])))
	})
}

func TestGradMeanSumColsKeep(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randDense(rng, 3, 4)
	checkGrad(t, "mean", []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
		return tp.Mean(tp.Square(l[0]))
	})
	checkGrad(t, "sumcolskeep", []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.SumColsKeep(l[0])))
	})
}

func TestGradMulColBroadcastRecip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randDense(rng, 3, 4)
	c := randPositive(rng, 3, 1)
	checkGrad(t, "mulcol", []*tensor.Dense{a, c}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.MulColBroadcast(l[0], l[1])))
	})
	checkGrad(t, "recip", []*tensor.Dense{c}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.RecipCol(l[0], 1e-3))
	})
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randDense(rng, 3, 5)
	checkGrad(t, "softmax", []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.Softmax(l[0])))
	})
}

func TestGradNorml2(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 3, 6)
	checkGrad(t, "norml2", []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.Norml2(l[0], 1e-4)))
	})
}

func TestNorml2RowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := NewTape()
		a := tp.Input(randDense(rng, 2+rng.Intn(3), 2+rng.Intn(8)))
		out := tp.Norml2(a, 1e-6)
		for i := 0; i < out.Rows(); i++ {
			var s float64
			for _, v := range out.Value.Row(i) {
				if v < 0 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGradBlockLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const nb, bw = 3, 4
	a := randDense(rng, 2, nb*bw)
	w := randDense(rng, nb, bw)
	b := randDense(rng, 1, nb)
	checkGrad(t, "blocklinear", []*tensor.Dense{a, w, b}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.BlockLinear(l[0], l[1], l[2], nb, bw)))
	})
}

func TestGradPWLInterp(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const rows, L = 4, 6
	// Build strictly increasing tau rows and arbitrary p rows.
	tau := tensor.New(rows, L)
	p := randDense(rng, rows, L)
	tq := tensor.New(rows, 1)
	for r := 0; r < rows; r++ {
		acc := 0.0
		for j := 0; j < L; j++ {
			acc += 0.3 + rng.Float64()
			tau.Set(r, j, acc)
		}
		// Query strictly inside a segment, away from knots, so the
		// finite-difference perturbation cannot cross a knot.
		seg := 1 + rng.Intn(L-1)
		lo, hi := tau.At(r, seg-1), tau.At(r, seg)
		tq.Set(r, 0, lo+(hi-lo)*(0.3+0.4*rng.Float64()))
	}
	checkGrad(t, "pwl", []*tensor.Dense{tau, p}, func(tp *Tape, l []*Node) *Node {
		q := tp.Input(tq)
		return tp.Sum(tp.Square(tp.PWLInterp(l[0], l[1], q)))
	})
}

func TestPWLInterpClamping(t *testing.T) {
	tp := NewTape()
	tau := tp.Input(tensor.FromRows([][]float64{{0, 1, 2}}))
	p := tp.Input(tensor.FromRows([][]float64{{10, 20, 30}}))
	for _, tc := range []struct {
		q, want float64
	}{
		{-5, 10}, {0, 10}, {0.5, 15}, {1, 20}, {1.5, 25}, {2, 30}, {99, 30},
	} {
		out := tp.PWLInterp(tau, p, tp.Input(tensor.FromRows([][]float64{{tc.q}})))
		if got := out.Value.At(0, 0); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("PWL(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// For any non-decreasing p, the PWL output must be monotone in the query
// threshold (Lemma 1 of the paper).
func TestPWLInterpMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const L = 8
		tau := tensor.New(1, L)
		p := tensor.New(1, L)
		accT, accP := 0.0, 0.0
		for j := 0; j < L; j++ {
			accT += rng.Float64()
			accP += rng.Float64() * 5
			tau.Set(0, j, accT)
			p.Set(0, j, accP)
		}
		tp := NewTape()
		tauN, pN := tp.Input(tau), tp.Input(p)
		prev := math.Inf(-1)
		for q := -0.5; q < accT+0.5; q += 0.05 {
			out := tp.PWLInterp(tauN, pN, tp.Input(tensor.FromRows([][]float64{{q}})))
			v := out.Value.At(0, 0)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGradHuberLogLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	yhat := randPositive(rng, 6, 1)
	y := randPositive(rng, 6, 1)
	// Mix small and large residuals to exercise both Huber branches.
	y.Set(0, 0, yhat.At(0, 0)*50)
	y.Set(1, 0, yhat.At(1, 0)/50)
	checkGrad(t, "huberlog", []*tensor.Dense{yhat}, func(tp *Tape, l []*Node) *Node {
		return tp.HuberLogLoss(l[0], tp.Input(y), 1.345, 1e-3)
	})
}

func TestHuberLogLossValue(t *testing.T) {
	tp := NewTape()
	// y = yhat => zero loss.
	y := tp.Input(tensor.FromRows([][]float64{{5}, {100}}))
	loss := tp.HuberLogLoss(y, y, 1.345, 1e-3)
	if loss.Scalar() != 0 {
		t.Fatalf("identical predictions should give 0 loss, got %v", loss.Scalar())
	}
	// Small residual uses the quadratic branch.
	yhat := tp.Input(tensor.FromRows([][]float64{{math.E - 1e-3}}))
	one := tp.Input(tensor.FromRows([][]float64{{1 - 1e-3}}))
	l2 := tp.HuberLogLoss(yhat, one, 1.345, 1e-3)
	if math.Abs(l2.Scalar()-0.5) > 1e-6 { // r = -1, r²/2 = 0.5
		t.Fatalf("quadratic branch loss = %v, want 0.5", l2.Scalar())
	}
}

func TestGradHuberResidualLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pred := randDense(rng, 6, 1)
	target := randDense(rng, 6, 1)
	// Force both branches: small residual and large residual.
	target.Set(0, 0, pred.At(0, 0)+0.2)
	target.Set(1, 0, pred.At(1, 0)+5)
	target.Set(2, 0, pred.At(2, 0)-5)
	checkGrad(t, "huberres", []*tensor.Dense{pred}, func(tp *Tape, l []*Node) *Node {
		return tp.HuberResidualLoss(l[0], tp.Input(target), 1.345)
	})
}

func TestHuberResidualLossValue(t *testing.T) {
	tp := NewTape()
	pred := tp.Input(tensor.FromRows([][]float64{{0}, {0}}))
	target := tp.Input(tensor.FromRows([][]float64{{0.5}, {3}}))
	const delta = 1.0
	got := tp.HuberResidualLoss(pred, target, delta).Scalar()
	want := (0.5*0.5/2 + (3 - 0.5)) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("huber residual = %v, want %v", got, want)
	}
}

func TestGradMSELoss(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	yhat := randDense(rng, 3, 4)
	y := randDense(rng, 3, 4)
	checkGrad(t, "mse", []*tensor.Dense{yhat}, func(tp *Tape, l []*Node) *Node {
		return tp.MSELoss(l[0], tp.Input(y))
	})
}

func TestGradL1L2LogLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	yhat := randPositive(rng, 5, 1)
	y := randPositive(rng, 5, 1)
	checkGrad(t, "l2log", []*tensor.Dense{yhat}, func(tp *Tape, l []*Node) *Node {
		return tp.L2LogLoss(l[0], tp.Input(y), 1e-3)
	})
	checkGrad(t, "l1log", []*tensor.Dense{yhat}, func(tp *Tape, l []*Node) *Node {
		return tp.L1LogLoss(l[0], tp.Input(y), 1e-3)
	})
}

func TestGradDeepComposite(t *testing.T) {
	// A two-layer network end to end: checks gradient flow through chains.
	rng := rand.New(rand.NewSource(17))
	x := randDense(rng, 4, 3)
	w1 := randDense(rng, 3, 5)
	b1 := randDense(rng, 1, 5)
	w2 := randDense(rng, 5, 1)
	b2 := randDense(rng, 1, 1)
	y := randPositive(rng, 4, 1)
	checkGrad(t, "composite", []*tensor.Dense{w1, b1, w2, b2}, func(tp *Tape, l []*Node) *Node {
		h := tp.Tanh(tp.AddRow(tp.MatMul(tp.Input(x), l[0]), l[1]))
		out := tp.Softplus(tp.AddRow(tp.MatMul(h, l[2]), l[3]))
		return tp.HuberLogLoss(out, tp.Input(y), 1.345, 1e-3)
	})
}

func TestGradAccumulatesOnReuse(t *testing.T) {
	// Using a leaf twice must sum both contributions.
	a := tensor.FromRows([][]float64{{2}})
	g := tensor.New(1, 1)
	tp := NewTape()
	n := tp.Leaf(a, g)
	loss := tp.Sum(tp.Mul(n, n)) // d(a²)/da = 2a = 4
	tp.Backward(loss)
	if math.Abs(g.At(0, 0)-4) > 1e-12 {
		t.Fatalf("grad = %v, want 4", g.At(0, 0))
	}
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	tp := NewTape()
	n := tp.Input(tensor.New(2, 2))
	tp.Backward(n)
}

func TestMixedTapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	t1, t2 := NewTape(), NewTape()
	a := t1.Input(tensor.New(1, 1))
	b := t2.Input(tensor.New(1, 1))
	t1.Add(a, b)
}
