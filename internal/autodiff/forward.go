package autodiff

import (
	"math"

	"selnet/internal/tensor"
)

// This file holds the forward-only kernels of the structured ops
// (softmax, Norml2, PWL interpolation, block-linear). Each computes its
// op's output into a caller-owned buffer with zero allocations, so one
// implementation serves both the gradient tape's forward pass and the
// kernels a recording tape emits into an infer.Program.

// softmaxInto computes the row-wise softmax of a into out. out may
// alias a.
func softmaxInto(out, a *tensor.Dense) {
	for i := 0; i < a.Rows(); i++ {
		row := a.Row(i)
		mx := math.Inf(-1)
		for _, x := range row {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		o := out.Row(i)
		for j, x := range row {
			e := math.Exp(x - mx)
			o[j] = e
			sum += e
		}
		for j := range o {
			o[j] /= sum
		}
	}
}

// norml2Into computes the paper's normalized-square transform of a into
// out: out[i,j] = (a[i,j]² + eps/d) / (Σ_k a[i,k]² + eps). out may
// alias a.
func norml2Into(out, a *tensor.Dense, eps float64) {
	d := float64(a.Cols())
	for i := 0; i < a.Rows(); i++ {
		row := a.Row(i)
		var s float64
		for _, x := range row {
			s += x * x
		}
		s += eps
		o := out.Row(i)
		for j, x := range row {
			o[j] = (x*x + eps/d) / s
		}
	}
}

// rowSquareSum returns Σ_k a[i,k]² + eps for row i — the denominator
// norml2Into used, recomputed for the gradient.
func rowSquareSum(a *tensor.Dense, i int, eps float64) float64 {
	var s float64
	for _, x := range a.Row(i) {
		s += x * x
	}
	return s + eps
}

// pwlInterpInto evaluates Eq. (1)'s piece-wise linear interpolation into
// the column vector out: per row, p linearly interpolated at threshold
// tq over the non-decreasing knots tau, clamped to [tau_0, tau_last].
func pwlInterpInto(out, tau, p, tq *tensor.Dense) {
	rows, L := tau.Rows(), tau.Cols()
	for r := 0; r < rows; r++ {
		trow := tau.Row(r)
		prow := p.Row(r)
		x := tq.At(r, 0)
		switch {
		case x <= trow[0]:
			out.Set(r, 0, prow[0])
		case x >= trow[L-1]:
			out.Set(r, 0, prow[L-1])
		default:
			// Binary search for the first tau >= x.
			lo, hi := 1, L-1
			for lo < hi {
				mid := (lo + hi) / 2
				if trow[mid] >= x {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			i := lo
			den := trow[i] - trow[i-1]
			var w float64
			if den > 0 {
				w = (x - trow[i-1]) / den
			}
			out.Set(r, 0, prow[i-1]+w*(prow[i]-prow[i-1]))
		}
	}
}

// blockLinearInto applies the per-block linear decoder into out:
// out[r, l] = Σ_k a[r, l*bw+k] * w[l, k] + b[0, l].
func blockLinearInto(out, a, w, b *tensor.Dense, nb, bw int) {
	for r := 0; r < a.Rows(); r++ {
		arow := a.Row(r)
		o := out.Row(r)
		for l := 0; l < nb; l++ {
			wrow := w.Row(l)
			blk := arow[l*bw : (l+1)*bw]
			s := b.At(0, l)
			for k, x := range blk {
				s += x * wrow[k]
			}
			o[l] = s
		}
	}
}
