// Package autodiff implements a tape-based reverse-mode automatic
// differentiation engine over dense float64 matrices. It provides the
// standard neural-network operations plus the custom operations SelNet
// needs: the Norml2 normalized-square transform, row-wise prefix sums
// (the paper's Mpsum operator), piece-wise linear interpolation with
// gradients to both control-point vectors, and the Huber-on-log loss.
//
// A Tape records nodes in creation order; Backward walks the record in
// reverse, so no explicit topological sort is necessary. Parameters wrap
// persistent value/gradient storage owned by the caller (see Leaf), which
// lets an optimizer read accumulated gradients after each backward pass.
//
// Beside the gradient tape there is a forward-recording mode
// (NewForwardTape): running a model's forward pass on a recording tape
// emits an infer.Program of forward-only kernels bound to the tape's
// buffers, which the serving layer replays in place with zero
// allocations. The gradient tape is untouched by this mode — training
// uses NewTape exactly as before.
package autodiff

import (
	"fmt"
	"math"

	"selnet/internal/infer"
	"selnet/internal/tensor"
)

// Node is one vertex in the computation graph. Value is the forward
// result; Grad accumulates dLoss/dValue during Backward.
type Node struct {
	Value *tensor.Dense
	Grad  *tensor.Dense

	tape     *Tape
	backward func()
	name     string
}

// Rows returns the row count of the node's value.
func (n *Node) Rows() int { return n.Value.Rows() }

// Cols returns the column count of the node's value.
func (n *Node) Cols() int { return n.Value.Cols() }

// Scalar returns the single element of a 1x1 node.
func (n *Node) Scalar() float64 {
	if n.Value.Size() != 1 {
		panic(fmt.Sprintf("autodiff: Scalar() on %dx%d node %q", n.Rows(), n.Cols(), n.name))
	}
	return n.Value.At(0, 0)
}

// Tape records the sequence of operations of one forward pass.
type Tape struct {
	nodes []*Node

	// prog, when non-nil, puts the tape in forward-recording mode: each
	// supported op also emits a forward kernel into prog, op outputs are
	// allocated from tensor's buffer pool (tracked in bufs), and no
	// gradient storage exists — Backward panics.
	prog *infer.Program
	bufs []*tensor.Dense
}

// NewTape returns an empty gradient tape.
func NewTape() *Tape { return &Tape{} }

// NewForwardTape returns a tape in forward-recording mode: running a
// forward pass on it both computes values (over pooled buffers) and
// records the equivalent forward kernels into prog. Only the inference
// op set (MatMul, AddRow, the activations, Scale, ConcatCols,
// PrefixSumCols, Softmax, Norml2, PWLInterp, BlockLinear) records;
// training-only ops panic. Replaying prog recomputes every op output
// in place from the current input and parameter buffer contents.
func NewForwardTape(prog *infer.Program) *Tape { return &Tape{prog: prog} }

// PooledBuffers returns the pooled op-output buffers a recording tape
// allocated; the compiled plan takes ownership and recycles them when
// it is dropped.
func (t *Tape) PooledBuffers() []*tensor.Dense { return t.bufs }

func (t *Tape) node(name string, v *tensor.Dense) *Node {
	if t.prog != nil {
		pv := tensor.NewPooled(v.Rows(), v.Cols())
		pv.CopyFrom(v)
		t.bufs = append(t.bufs, pv)
		n := &Node{Value: pv, tape: t, name: name}
		t.nodes = append(t.nodes, n)
		return n
	}
	n := &Node{
		Value: v,
		Grad:  tensor.New(v.Rows(), v.Cols()),
		tape:  t,
		name:  name,
	}
	t.nodes = append(t.nodes, n)
	return n
}

// noRecord guards ops that have no forward kernel (training-only ops).
func (t *Tape) noRecord(op string) {
	if t.prog != nil {
		panic("autodiff: op " + op + " is not supported in forward-recording mode")
	}
}

// Input introduces a constant (non-trainable) matrix into the graph.
// Gradients still flow *through* operations on it but the caller never
// reads them. On a recording tape the matrix keeps its identity — it is
// the buffer the plan's caller fills before each replay.
func (t *Tape) Input(v *tensor.Dense) *Node {
	if t.prog != nil {
		n := &Node{Value: v, tape: t, name: "input"}
		t.nodes = append(t.nodes, n)
		return n
	}
	return t.node("input", v)
}

// Leaf introduces a trainable parameter whose value and gradient storage
// are owned by the caller. The gradient is accumulated (+=) into grad, so
// callers must zero it between optimization steps.
func (t *Tape) Leaf(value, grad *tensor.Dense) *Node {
	if value.Rows() != grad.Rows() || value.Cols() != grad.Cols() {
		panic("autodiff: Leaf value/grad shape mismatch")
	}
	if t.prog != nil {
		grad = nil // recorded kernels only read values
	}
	n := &Node{Value: value, Grad: grad, tape: t, name: "leaf"}
	t.nodes = append(t.nodes, n)
	return n
}

// Backward seeds d(loss)/d(loss) = 1 on the given 1x1 loss node and
// propagates gradients to every node recorded before it.
func (t *Tape) Backward(loss *Node) {
	if t.prog != nil {
		panic("autodiff: Backward on a forward-recording tape")
	}
	if loss.Value.Size() != 1 {
		panic("autodiff: Backward requires a scalar (1x1) loss node")
	}
	if loss.tape != t {
		panic("autodiff: loss node belongs to a different tape")
	}
	loss.Grad.Set(0, 0, 1)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i].backward != nil {
			t.nodes[i].backward()
		}
	}
}

func same(t *Tape, ns ...*Node) {
	for _, n := range ns {
		if n.tape != t {
			panic("autodiff: mixing nodes from different tapes")
		}
	}
}

// MatMul returns a*b.
func (t *Tape) MatMul(a, b *Node) *Node {
	same(t, a, b)
	out := t.node("matmul", tensor.MatMul(a.Value, b.Value))
	if t.prog != nil {
		// Kernels capture only the Dense buffers, never the Nodes: once
		// compilation returns, the recording tape and its graph are
		// garbage and the plan retains just the buffers.
		ov, av, bv := out.Value, a.Value, b.Value
		t.prog.AddOp("matmul", infer.OpMatMul, ov, func() { tensor.MatMulInto(ov, av, bv) }, av, bv)
	}
	out.backward = func() {
		// dA += dOut * Bᵀ ; dB += Aᵀ * dOut
		tensor.AddInPlace(a.Grad, tensor.MatMulTransB(out.Grad, b.Value))
		tensor.AddInPlace(b.Grad, tensor.MatMulTransA(a.Value, out.Grad))
	}
	return out
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	same(t, a, b)
	t.noRecord("add")
	out := t.node("add", tensor.Add(a.Value, b.Value))
	out.backward = func() {
		tensor.AddInPlace(a.Grad, out.Grad)
		tensor.AddInPlace(b.Grad, out.Grad)
	}
	return out
}

// Sub returns a-b (same shape).
func (t *Tape) Sub(a, b *Node) *Node {
	same(t, a, b)
	t.noRecord("sub")
	out := t.node("sub", tensor.Sub(a.Value, b.Value))
	out.backward = func() {
		tensor.AddInPlace(a.Grad, out.Grad)
		tensor.AxpyInPlace(b.Grad, -1, out.Grad)
	}
	return out
}

// Mul returns the elementwise product a*b.
func (t *Tape) Mul(a, b *Node) *Node {
	same(t, a, b)
	t.noRecord("mul")
	out := t.node("mul", tensor.Mul(a.Value, b.Value))
	out.backward = func() {
		tensor.AddInPlace(a.Grad, tensor.Mul(out.Grad, b.Value))
		tensor.AddInPlace(b.Grad, tensor.Mul(out.Grad, a.Value))
	}
	return out
}

// Scale returns s*a for a constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	same(t, a)
	out := t.node("scale", tensor.Scale(a.Value, s))
	if t.prog != nil {
		ov, av := out.Value, a.Value
		t.prog.AddOp("scale", infer.OpOther, ov, func() { tensor.ScaleInto(ov, av, s) }, av)
	}
	out.backward = func() {
		tensor.AxpyInPlace(a.Grad, s, out.Grad)
	}
	return out
}

// AddRow broadcasts the 1 x cols row vector v onto every row of a.
func (t *Tape) AddRow(a, v *Node) *Node {
	same(t, a, v)
	out := t.node("addrow", tensor.AddRowVector(a.Value, v.Value))
	if t.prog != nil {
		ov, av, vv := out.Value, a.Value, v.Value
		t.prog.AddOp("addrow", infer.OpAddRow, ov, func() { tensor.AddRowVectorInto(ov, av, vv) }, av, vv)
	}
	out.backward = func() {
		tensor.AddInPlace(a.Grad, out.Grad)
		tensor.AddInPlace(v.Grad, tensor.SumRows(out.Grad))
	}
	return out
}

// Elementwise forward functions, shared by the gradient tape's forward
// pass and the recorded inference kernels.
// reluFn matches tensor.ReluInto / the fused bias+relu epilogue exactly:
// v if v > 0, else 0 (NaN maps to 0) — the same semantics as the SIMD
// VMAXPD-with-zero kernel, so fused and unfused paths agree bitwise.
func reluFn(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

func sigmoidFn(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func softplusFn(v float64) float64 {
	// Numerically stable: log1p(exp(-|v|)) + max(v, 0).
	return math.Log1p(math.Exp(-math.Abs(v))) + math.Max(v, 0)
}

func eluFn(alpha float64) func(float64) float64 {
	return func(v float64) float64 {
		if v >= 0 {
			return v
		}
		return alpha * (math.Exp(v) - 1)
	}
}

// ReLU returns max(0, a) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	same(t, a)
	out := t.node("relu", tensor.Apply(a.Value, reluFn))
	if t.prog != nil {
		ov, av := out.Value, a.Value
		t.prog.AddOp("relu", infer.OpReLU, ov, func() { tensor.ReluInto(ov, av) }, av)
	}
	out.backward = func() {
		av, g, ag := a.Value.Data(), out.Grad.Data(), a.Grad.Data()
		for i, v := range av {
			if v > 0 {
				ag[i] += g[i]
			}
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	same(t, a)
	out := t.node("tanh", tensor.Apply(a.Value, math.Tanh))
	if t.prog != nil {
		ov, av := out.Value, a.Value
		t.prog.AddOp("tanh", infer.OpTanh, ov, func() { tensor.ApplyInto(ov, av, math.Tanh) }, av)
	}
	out.backward = func() {
		ov, g, ag := out.Value.Data(), out.Grad.Data(), a.Grad.Data()
		for i, v := range ov {
			ag[i] += g[i] * (1 - v*v)
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	same(t, a)
	out := t.node("sigmoid", tensor.Apply(a.Value, sigmoidFn))
	if t.prog != nil {
		ov, av := out.Value, a.Value
		t.prog.AddOp("sigmoid", infer.OpSigmoid, ov, func() { tensor.ApplyInto(ov, av, sigmoidFn) }, av)
	}
	out.backward = func() {
		ov, g, ag := out.Value.Data(), out.Grad.Data(), a.Grad.Data()
		for i, v := range ov {
			ag[i] += g[i] * v * (1 - v)
		}
	}
	return out
}

// Softplus returns log(1+exp(a)) elementwise, a smooth positive function
// used for strictly-positive integrands (UMNN).
func (t *Tape) Softplus(a *Node) *Node {
	same(t, a)
	out := t.node("softplus", tensor.Apply(a.Value, softplusFn))
	if t.prog != nil {
		ov, av := out.Value, a.Value
		t.prog.AddOp("softplus", infer.OpOther, ov, func() { tensor.ApplyInto(ov, av, softplusFn) }, av)
	}
	out.backward = func() {
		av, g, ag := a.Value.Data(), out.Grad.Data(), a.Grad.Data()
		for i, v := range av {
			ag[i] += g[i] / (1 + math.Exp(-v))
		}
	}
	return out
}

// ELU returns the exponential linear unit with slope alpha.
func (t *Tape) ELU(a *Node, alpha float64) *Node {
	same(t, a)
	fn := eluFn(alpha)
	out := t.node("elu", tensor.Apply(a.Value, fn))
	if t.prog != nil {
		ov, av := out.Value, a.Value
		t.prog.AddOp("elu", infer.OpOther, ov, func() { tensor.ApplyInto(ov, av, fn) }, av)
	}
	out.backward = func() {
		av, ov, g, ag := a.Value.Data(), out.Value.Data(), out.Grad.Data(), a.Grad.Data()
		for i, v := range av {
			if v >= 0 {
				ag[i] += g[i]
			} else {
				ag[i] += g[i] * (ov[i] + alpha)
			}
		}
	}
	return out
}

// Square returns a² elementwise.
func (t *Tape) Square(a *Node) *Node {
	same(t, a)
	t.noRecord("square")
	out := t.node("square", tensor.Apply(a.Value, func(v float64) float64 { return v * v }))
	out.backward = func() {
		av, g, ag := a.Value.Data(), out.Grad.Data(), a.Grad.Data()
		for i, v := range av {
			ag[i] += 2 * v * g[i]
		}
	}
	return out
}

// Exp returns e^a elementwise.
func (t *Tape) Exp(a *Node) *Node {
	same(t, a)
	t.noRecord("exp")
	out := t.node("exp", tensor.Apply(a.Value, math.Exp))
	out.backward = func() {
		ov, g, ag := out.Value.Data(), out.Grad.Data(), a.Grad.Data()
		for i, v := range ov {
			ag[i] += v * g[i]
		}
	}
	return out
}

// Log returns ln(a+eps) elementwise; eps guards against log(0).
func (t *Tape) Log(a *Node, eps float64) *Node {
	same(t, a)
	t.noRecord("log")
	out := t.node("log", tensor.Apply(a.Value, func(v float64) float64 { return math.Log(v + eps) }))
	out.backward = func() {
		av, g, ag := a.Value.Data(), out.Grad.Data(), a.Grad.Data()
		for i, v := range av {
			ag[i] += g[i] / (v + eps)
		}
	}
	return out
}

// ConcatCols returns [a | b].
func (t *Tape) ConcatCols(a, b *Node) *Node {
	same(t, a, b)
	out := t.node("concat", tensor.ConcatCols(a.Value, b.Value))
	if t.prog != nil {
		ov, av, bv := out.Value, a.Value, b.Value
		t.prog.AddOp("concat", infer.OpOther, ov, func() { tensor.ConcatColsInto(ov, av, bv) }, av, bv)
	}
	out.backward = func() {
		tensor.AddInPlace(a.Grad, tensor.SliceCols(out.Grad, 0, a.Cols()))
		tensor.AddInPlace(b.Grad, tensor.SliceCols(out.Grad, a.Cols(), out.Cols()))
	}
	return out
}

// SliceCols returns columns [from, to) of a.
func (t *Tape) SliceCols(a *Node, from, to int) *Node {
	same(t, a)
	t.noRecord("slicecols")
	out := t.node("slicecols", tensor.SliceCols(a.Value, from, to))
	out.backward = func() {
		for i := 0; i < out.Rows(); i++ {
			g := out.Grad.Row(i)
			ag := a.Grad.Row(i)
			for j, v := range g {
				ag[from+j] += v
			}
		}
	}
	return out
}

// PrefixSumCols returns the row-wise cumulative sum of a; this realizes the
// paper's Mpsum prefix-sum operator. The gradient of a prefix sum is the
// suffix sum of the incoming gradient.
func (t *Tape) PrefixSumCols(a *Node) *Node {
	same(t, a)
	out := t.node("prefixsum", tensor.PrefixSumCols(a.Value))
	if t.prog != nil {
		ov, av := out.Value, a.Value
		t.prog.AddOp("prefixsum", infer.OpOther, ov, func() { tensor.PrefixSumColsInto(ov, av) }, av)
	}
	out.backward = func() {
		for i := 0; i < a.Rows(); i++ {
			g := out.Grad.Row(i)
			ag := a.Grad.Row(i)
			var acc float64
			for j := len(g) - 1; j >= 0; j-- {
				acc += g[j]
				ag[j] += acc
			}
		}
	}
	return out
}

// Sum returns the scalar sum of all elements of a.
func (t *Tape) Sum(a *Node) *Node {
	same(t, a)
	t.noRecord("sum")
	v := tensor.New(1, 1)
	v.Set(0, 0, tensor.Sum(a.Value))
	out := t.node("sum", v)
	out.backward = func() {
		g := out.Grad.At(0, 0)
		ag := a.Grad.Data()
		for i := range ag {
			ag[i] += g
		}
	}
	return out
}

// Mean returns the scalar mean of all elements of a.
func (t *Tape) Mean(a *Node) *Node {
	same(t, a)
	t.noRecord("mean")
	n := float64(a.Value.Size())
	v := tensor.New(1, 1)
	v.Set(0, 0, tensor.Sum(a.Value)/n)
	out := t.node("mean", v)
	out.backward = func() {
		g := out.Grad.At(0, 0) / n
		ag := a.Grad.Data()
		for i := range ag {
			ag[i] += g
		}
	}
	return out
}

// SumColsKeep returns the row sums of a as a column vector (rows x 1).
func (t *Tape) SumColsKeep(a *Node) *Node {
	same(t, a)
	t.noRecord("sumcolskeep")
	v := tensor.New(a.Rows(), 1)
	for i := 0; i < a.Rows(); i++ {
		var s float64
		for _, x := range a.Value.Row(i) {
			s += x
		}
		v.Set(i, 0, s)
	}
	out := t.node("sumcolskeep", v)
	out.backward = func() {
		for i := 0; i < a.Rows(); i++ {
			g := out.Grad.At(i, 0)
			ag := a.Grad.Row(i)
			for j := range ag {
				ag[j] += g
			}
		}
	}
	return out
}

// MulColBroadcast multiplies every row of a elementwise by the column
// vector c (rows x 1): out[i,j] = a[i,j] * c[i,0].
func (t *Tape) MulColBroadcast(a, c *Node) *Node {
	same(t, a, c)
	t.noRecord("mulcol")
	if c.Cols() != 1 || c.Rows() != a.Rows() {
		panic(fmt.Sprintf("autodiff: MulColBroadcast %dx%d * %dx%d", a.Rows(), a.Cols(), c.Rows(), c.Cols()))
	}
	v := tensor.New(a.Rows(), a.Cols())
	for i := 0; i < a.Rows(); i++ {
		cv := c.Value.At(i, 0)
		row, arow := v.Row(i), a.Value.Row(i)
		for j, x := range arow {
			row[j] = x * cv
		}
	}
	out := t.node("mulcol", v)
	out.backward = func() {
		for i := 0; i < a.Rows(); i++ {
			cv := c.Value.At(i, 0)
			g, arow, ag := out.Grad.Row(i), a.Value.Row(i), a.Grad.Row(i)
			var cg float64
			for j, gv := range g {
				ag[j] += gv * cv
				cg += gv * arow[j]
			}
			c.Grad.Set(i, 0, c.Grad.At(i, 0)+cg)
		}
	}
	return out
}

// RecipCol returns 1/(c+eps) for a column vector c.
func (t *Tape) RecipCol(c *Node, eps float64) *Node {
	same(t, c)
	t.noRecord("recip")
	if c.Cols() != 1 {
		panic("autodiff: RecipCol requires a column vector")
	}
	out := t.node("recip", tensor.Apply(c.Value, func(v float64) float64 { return 1 / (v + eps) }))
	out.backward = func() {
		cv, g, cg := c.Value.Data(), out.Grad.Data(), c.Grad.Data()
		for i, v := range cv {
			d := v + eps
			cg[i] -= g[i] / (d * d)
		}
	}
	return out
}

// Softmax applies a row-wise softmax.
func (t *Tape) Softmax(a *Node) *Node {
	same(t, a)
	v := tensor.New(a.Rows(), a.Cols())
	softmaxInto(v, a.Value)
	out := t.node("softmax", v)
	if t.prog != nil {
		ov, av := out.Value, a.Value
		t.prog.AddOp("softmax", infer.OpSoftmax, ov, func() { softmaxInto(ov, av) }, av)
	}
	out.backward = func() {
		for i := 0; i < a.Rows(); i++ {
			o, g, ag := out.Value.Row(i), out.Grad.Row(i), a.Grad.Row(i)
			var dot float64
			for j := range o {
				dot += o[j] * g[j]
			}
			for j := range o {
				ag[j] += o[j] * (g[j] - dot)
			}
		}
	}
	return out
}

// Norml2 implements the paper's normalized-square transform (Sec. 5.2):
//
//	out[i,j] = (a[i,j]² + eps/d) / (Σ_k a[i,k]² + eps)
//
// where d is the number of columns. Each output row is a probability-like
// vector of non-negative entries summing to 1, which is why SelNet uses it
// (scaled by t_max) to produce threshold increments.
func (t *Tape) Norml2(a *Node, eps float64) *Node {
	same(t, a)
	v := tensor.New(a.Rows(), a.Cols())
	norml2Into(v, a.Value, eps)
	out := t.node("norml2", v)
	if t.prog != nil {
		ov, av := out.Value, a.Value
		t.prog.AddOp("norml2", infer.OpOther, ov, func() { norml2Into(ov, av, eps) }, av)
	}
	out.backward = func() {
		for i := 0; i < a.Rows(); i++ {
			arow, orow := a.Value.Row(i), out.Value.Row(i)
			g, ag := out.Grad.Row(i), a.Grad.Row(i)
			sum := rowSquareSum(a.Value, i, eps)
			var dot float64 // Σ_j g_ij * out_ij
			for j := range g {
				dot += g[j] * orow[j]
			}
			for k := range arow {
				ag[k] += (2 * arow[k] / sum) * (g[k] - dot)
			}
		}
	}
	return out
}

// PWLInterp evaluates the continuous piece-wise linear function of Eq. (1)
// in the paper: given per-row control points tau (non-decreasing) and p,
// and a per-row query threshold tq (column vector), it returns the linear
// interpolation of p at tq. Thresholds are clamped to [tau_0, tau_last].
// Gradients flow into both tau and p (not into tq).
func (t *Tape) PWLInterp(tau, p, tq *Node) *Node {
	same(t, tau, p, tq)
	if tau.Rows() != p.Rows() || tau.Cols() != p.Cols() {
		panic(fmt.Sprintf("autodiff: PWLInterp tau %dx%d vs p %dx%d", tau.Rows(), tau.Cols(), p.Rows(), p.Cols()))
	}
	if tq.Cols() != 1 || tq.Rows() != tau.Rows() {
		panic("autodiff: PWLInterp tq must be a column vector matching tau rows")
	}
	rows, L := tau.Rows(), tau.Cols()
	if t.prog != nil {
		v := tensor.New(rows, 1)
		pwlInterpInto(v, tau.Value, p.Value, tq.Value)
		out := t.node("pwl", v)
		ov, tv, pv, qv := out.Value, tau.Value, p.Value, tq.Value
		t.prog.AddOp("pwl", infer.OpOther, ov, func() { pwlInterpInto(ov, tv, pv, qv) }, tv, pv, qv)
		return out
	}
	v := tensor.New(rows, 1)
	segs := make([]int, rows) // chosen segment upper index i (interp between i-1 and i)
	weights := make([]float64, rows)
	for r := 0; r < rows; r++ {
		trow := tau.Value.Row(r)
		prow := p.Value.Row(r)
		x := tq.Value.At(r, 0)
		switch {
		case x <= trow[0]:
			segs[r] = -1 // clamped left
			v.Set(r, 0, prow[0])
		case x >= trow[L-1]:
			segs[r] = -2 // clamped right
			v.Set(r, 0, prow[L-1])
		default:
			// Binary search for the first tau >= x.
			lo, hi := 1, L-1
			for lo < hi {
				mid := (lo + hi) / 2
				if trow[mid] >= x {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			i := lo
			den := trow[i] - trow[i-1]
			var w float64
			if den > 0 {
				w = (x - trow[i-1]) / den
			}
			segs[r] = i
			weights[r] = w
			v.Set(r, 0, prow[i-1]+w*(prow[i]-prow[i-1]))
		}
	}
	out := t.node("pwl", v)
	out.backward = func() {
		for r := 0; r < rows; r++ {
			g := out.Grad.At(r, 0)
			if g == 0 {
				continue
			}
			pg := p.Grad.Row(r)
			switch segs[r] {
			case -1:
				pg[0] += g
			case -2:
				pg[L-1] += g
			default:
				i, w := segs[r], weights[r]
				trow, prow := tau.Value.Row(r), p.Value.Row(r)
				tg := tau.Grad.Row(r)
				pg[i-1] += g * (1 - w)
				pg[i] += g * w
				den := trow[i] - trow[i-1]
				if den > 0 {
					x := tq.Value.At(r, 0)
					dp := prow[i] - prow[i-1]
					tg[i-1] += g * dp * (x - trow[i]) / (den * den)
					tg[i] += g * dp * -(x - trow[i-1]) / (den * den)
				}
			}
		}
	}
	return out
}

// BlockLinear applies an independent 1-output linear map to each of nb
// contiguous blocks of width bw in a's columns: with a of shape
// rows x (nb*bw), weight w of shape nb x bw and bias b of shape 1 x nb,
//
//	out[r, l] = Σ_k a[r, l*bw+k] * w[l, k] + b[0, l].
//
// This realizes the paper's Model M decoder: L+2 per-control-point linear
// transformations applied to L+2 embedding blocks.
func (t *Tape) BlockLinear(a, w, b *Node, nb, bw int) *Node {
	same(t, a, w, b)
	if a.Cols() != nb*bw || w.Rows() != nb || w.Cols() != bw || b.Rows() != 1 || b.Cols() != nb {
		panic(fmt.Sprintf("autodiff: BlockLinear a %dx%d w %dx%d b %dx%d nb=%d bw=%d",
			a.Rows(), a.Cols(), w.Rows(), w.Cols(), b.Rows(), b.Cols(), nb, bw))
	}
	v := tensor.New(a.Rows(), nb)
	blockLinearInto(v, a.Value, w.Value, b.Value, nb, bw)
	out := t.node("blocklinear", v)
	if t.prog != nil {
		ov, av, wv, bv := out.Value, a.Value, w.Value, b.Value
		t.prog.AddOp("blocklinear", infer.OpOther, ov, func() { blockLinearInto(ov, av, wv, bv, nb, bw) }, av, wv, bv)
	}
	out.backward = func() {
		for r := 0; r < a.Rows(); r++ {
			arow, ag := a.Value.Row(r), a.Grad.Row(r)
			g := out.Grad.Row(r)
			for l := 0; l < nb; l++ {
				gv := g[l]
				if gv == 0 {
					continue
				}
				wrow, wg := w.Value.Row(l), w.Grad.Row(l)
				blk, blkG := arow[l*bw:(l+1)*bw], ag[l*bw:(l+1)*bw]
				for k := range blk {
					blkG[k] += gv * wrow[k]
					wg[k] += gv * blk[k]
				}
				b.Grad.Set(0, l, b.Grad.At(0, l)+gv)
			}
		}
	}
	return out
}

// HuberLogLoss is the paper's robust estimation loss (Sec. 5.1): with
// r = log(y+eps) - log(yhat+eps) computed elementwise on column vectors,
// the per-example loss is r²/2 for |r| <= delta and delta(|r|-delta/2)
// otherwise; the node value is the mean over examples. Gradients flow only
// into yhat.
func (t *Tape) HuberLogLoss(yhat, y *Node, delta, eps float64) *Node {
	same(t, yhat, y)
	t.noRecord("huberlog")
	if yhat.Cols() != 1 || y.Cols() != 1 || yhat.Rows() != y.Rows() {
		panic("autodiff: HuberLogLoss requires matching column vectors")
	}
	n := yhat.Rows()
	rs := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		r := math.Log(y.Value.At(i, 0)+eps) - math.Log(yhat.Value.At(i, 0)+eps)
		rs[i] = r
		if math.Abs(r) <= delta {
			total += r * r / 2
		} else {
			total += delta * (math.Abs(r) - delta/2)
		}
	}
	v := tensor.New(1, 1)
	v.Set(0, 0, total/float64(n))
	out := t.node("huberlog", v)
	out.backward = func() {
		g := out.Grad.At(0, 0) / float64(n)
		for i := 0; i < n; i++ {
			r := rs[i]
			var dr float64 // dLoss_i/dr
			if math.Abs(r) <= delta {
				dr = r
			} else if r > 0 {
				dr = delta
			} else {
				dr = -delta
			}
			// dr/dyhat = -1/(yhat+eps)
			yg := yhat.Grad.At(i, 0) - g*dr/(yhat.Value.At(i, 0)+eps)
			yhat.Grad.Set(i, 0, yg)
		}
	}
	return out
}

// HuberResidualLoss returns the mean exact Huber loss of the residual
// r = target - pred over column vectors: r²/2 for |r| <= delta, else
// delta(|r|-delta/2). Gradients flow only into pred. Models that regress
// in log space pair this with pre-computed log targets.
func (t *Tape) HuberResidualLoss(pred, target *Node, delta float64) *Node {
	same(t, pred, target)
	t.noRecord("huberres")
	if pred.Cols() != 1 || target.Cols() != 1 || pred.Rows() != target.Rows() {
		panic("autodiff: HuberResidualLoss requires matching column vectors")
	}
	n := pred.Rows()
	rs := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		r := target.Value.At(i, 0) - pred.Value.At(i, 0)
		rs[i] = r
		if math.Abs(r) <= delta {
			total += r * r / 2
		} else {
			total += delta * (math.Abs(r) - delta/2)
		}
	}
	v := tensor.New(1, 1)
	v.Set(0, 0, total/float64(n))
	out := t.node("huberres", v)
	out.backward = func() {
		g := out.Grad.At(0, 0) / float64(n)
		for i := 0; i < n; i++ {
			r := rs[i]
			var dr float64
			if math.Abs(r) <= delta {
				dr = r
			} else if r > 0 {
				dr = delta
			} else {
				dr = -delta
			}
			// dLoss/dpred = -dLoss/dr.
			pred.Grad.Set(i, 0, pred.Grad.At(i, 0)-g*dr)
		}
	}
	return out
}

// MSELoss returns mean((yhat-y)²) over all elements; gradients flow only
// into yhat. Used for autoencoder reconstruction.
func (t *Tape) MSELoss(yhat, y *Node) *Node {
	same(t, yhat, y)
	t.noRecord("mse")
	if yhat.Rows() != y.Rows() || yhat.Cols() != y.Cols() {
		panic("autodiff: MSELoss shape mismatch")
	}
	n := float64(yhat.Value.Size())
	diff := tensor.Sub(yhat.Value, y.Value)
	var total float64
	for _, d := range diff.Data() {
		total += d * d
	}
	v := tensor.New(1, 1)
	v.Set(0, 0, total/n)
	out := t.node("mse", v)
	out.backward = func() {
		g := out.Grad.At(0, 0) * 2 / n
		yg, dd := yhat.Grad.Data(), diff.Data()
		for i, d := range dd {
			yg[i] += g * d
		}
	}
	return out
}

// L1LogLoss returns mean(|log(y+eps)-log(yhat+eps)|); an ablation
// alternative to the Huber loss. Gradients flow only into yhat.
func (t *Tape) L1LogLoss(yhat, y *Node, eps float64) *Node {
	return t.logResidualLoss(yhat, y, eps, "l1log",
		func(r float64) float64 { return math.Abs(r) },
		func(r float64) float64 {
			if r > 0 {
				return 1
			}
			if r < 0 {
				return -1
			}
			return 0
		})
}

// L2LogLoss returns mean((log(y+eps)-log(yhat+eps))²); an ablation
// alternative to the Huber loss. Gradients flow only into yhat.
func (t *Tape) L2LogLoss(yhat, y *Node, eps float64) *Node {
	return t.logResidualLoss(yhat, y, eps, "l2log",
		func(r float64) float64 { return r * r },
		func(r float64) float64 { return 2 * r })
}

func (t *Tape) logResidualLoss(yhat, y *Node, eps float64, name string,
	f, df func(float64) float64) *Node {
	same(t, yhat, y)
	t.noRecord(name)
	if yhat.Cols() != 1 || y.Cols() != 1 || yhat.Rows() != y.Rows() {
		panic("autodiff: log residual loss requires matching column vectors")
	}
	n := yhat.Rows()
	rs := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		r := math.Log(y.Value.At(i, 0)+eps) - math.Log(yhat.Value.At(i, 0)+eps)
		rs[i] = r
		total += f(r)
	}
	v := tensor.New(1, 1)
	v.Set(0, 0, total/float64(n))
	out := t.node(name, v)
	out.backward = func() {
		g := out.Grad.At(0, 0) / float64(n)
		for i := 0; i < n; i++ {
			yg := yhat.Grad.At(i, 0) - g*df(rs[i])/(yhat.Value.At(i, 0)+eps)
			yhat.Grad.Set(i, 0, yg)
		}
	}
	return out
}
