package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"selnet/internal/infer"
	"selnet/internal/tensor"
)

// TestForwardTapeReplayMatchesFreshTape records a forward pass once,
// then replays it over mutated inputs and parameters and checks the
// outputs match a freshly built gradient tape at every step.
func TestForwardTapeReplayMatchesFreshTape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const batch, din, dh = 4, 3, 5
	x := randDense(rng, batch, din)
	tq := randDense(rng, batch, 1)
	w1 := randDense(rng, din, dh)
	b1 := randDense(rng, 1, dh)
	w2 := randDense(rng, dh+din, 6)
	bw := randDense(rng, 2, (dh+din)/2)
	bb := randDense(rng, 1, 2)

	graph := func(tp *Tape, x, tq *tensor.Dense) *Node {
		xn := tp.Input(x)
		h := tp.ReLU(tp.AddRow(tp.MatMul(xn, tp.Leaf(w1, tensor.New(din, dh))), tp.Leaf(b1, tensor.New(1, dh))))
		h = tp.ELU(tp.Softplus(tp.Sigmoid(tp.Tanh(h))), 0.7)
		h = tp.ConcatCols(h, xn)
		raw := tp.MatMul(h, tp.Leaf(w2, tensor.New(dh+din, 6)))
		k := tp.ReLU(tp.BlockLinear(h, tp.Leaf(bw, tensor.New(bw.Rows(), bw.Cols())), tp.Leaf(bb, tensor.New(1, 2)), 2, (dh+din)/2))
		wide := tp.ConcatCols(raw, k) // 8 columns feeding both generators
		tau := tp.PrefixSumCols(tp.Scale(tp.Norml2(wide, 1e-6), 2))
		p := tp.PrefixSumCols(tp.Softmax(wide))
		return tp.PWLInterp(tau, p, tp.Input(tq))
	}

	// Record once against private input buffers.
	prog := infer.NewProgram()
	rec := NewForwardTape(prog)
	xBuf, tqBuf := x.Clone(), tq.Clone()
	out := graph(rec, xBuf, tqBuf)
	if prog.Len() == 0 {
		t.Fatal("recording tape emitted no kernels")
	}

	for trial := 0; trial < 5; trial++ {
		// Mutate inputs in place and (on later trials) a parameter, the way
		// serving fills plan buffers and training updates weights.
		for i := range xBuf.Data() {
			xBuf.Data()[i] = rng.NormFloat64()
		}
		for i := range tqBuf.Data() {
			tqBuf.Data()[i] = rng.Float64() * 2
		}
		if trial >= 3 {
			w1.Data()[trial] += 0.25
		}
		prog.Run()

		ref := graph(NewTape(), xBuf.Clone(), tqBuf.Clone())
		for i := range ref.Value.Data() {
			got, want := out.Value.Data()[i], ref.Value.Data()[i]
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d row %d: replay %v, fresh tape %v", trial, i, got, want)
			}
		}
	}
}

func TestForwardTapeRejectsTrainingOps(t *testing.T) {
	rec := NewForwardTape(infer.NewProgram())
	a := rec.Input(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("training-only op did not panic on a recording tape")
		}
	}()
	rec.Mul(a, a)
}

func TestForwardTapeRejectsBackward(t *testing.T) {
	rec := NewForwardTape(infer.NewProgram())
	n := rec.Input(tensor.New(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward did not panic on a recording tape")
		}
	}()
	rec.Backward(n)
}
