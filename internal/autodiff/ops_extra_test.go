package autodiff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/tensor"
)

func TestGradRepeatRows(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randDense(rng, 1, 4)
	checkGrad(t, "repeatrows", []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.RepeatRows(l[0], 5)))
	})
}

func TestRepeatRowsValues(t *testing.T) {
	tp := NewTape()
	a := tp.Input(tensor.FromRows([][]float64{{1, 2, 3}}))
	out := tp.RepeatRows(a, 3)
	for i := 0; i < 3; i++ {
		if out.Value.At(i, 1) != 2 {
			t.Fatalf("row %d not tiled", i)
		}
	}
}

func TestRepeatRowsPanicsOnMultiRow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	tp := NewTape()
	tp.RepeatRows(tp.Input(tensor.New(2, 2)), 3)
}

func TestGradReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randDense(rng, 2, 6)
	checkGrad(t, "reshape", []*tensor.Dense{a}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.Reshape(l[0], 4, 3)))
	})
}

func TestReshapeValuesRowMajor(t *testing.T) {
	tp := NewTape()
	a := tp.Input(tensor.FromRows([][]float64{{1, 2, 3, 4}}))
	out := tp.Reshape(a, 2, 2)
	if out.Value.At(1, 0) != 3 {
		t.Fatalf("reshape not row-major: %v", out.Value)
	}
}

func TestGradLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const m = 3
	x := tensor.New(4, m)
	for i := range x.Data() {
		x.Data()[i] = 0.15 + 0.7*rng.Float64()
	}
	theta := randDense(rng, 1, LatticeVertexCount(m))
	checkGrad(t, "lattice", []*tensor.Dense{x, theta}, func(tp *Tape, l []*Node) *Node {
		return tp.Sum(tp.Square(tp.Lattice(l[0], l[1])))
	})
}

func TestLatticeInterpolatesCorners(t *testing.T) {
	tp := NewTape()
	// 2-D lattice with corner values 00->1, 10->2, 01->3, 11->4.
	theta := tp.Input(tensor.FromRows([][]float64{{1, 2, 3, 4}}))
	corners := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	want := []float64{1, 2, 3, 4}
	for i, c := range corners {
		x := tp.Input(tensor.FromRows([][]float64{c}))
		out := tp.Lattice(x, theta)
		if math.Abs(out.Value.At(0, 0)-want[i]) > 1e-12 {
			t.Fatalf("corner %v = %v, want %v", c, out.Value.At(0, 0), want[i])
		}
	}
	// Center interpolates to the mean of corners.
	x := tp.Input(tensor.FromRows([][]float64{{0.5, 0.5}}))
	out := tp.Lattice(x, theta)
	if math.Abs(out.Value.At(0, 0)-2.5) > 1e-12 {
		t.Fatalf("center = %v, want 2.5", out.Value.At(0, 0))
	}
}

// With theta non-decreasing along dimension j's edges, the lattice must be
// monotone in x_j.
func TestLatticeMonotoneWhenThetaOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m = 3
		verts := LatticeVertexCount(m)
		theta := tensor.New(1, verts)
		for c := 0; c < verts; c++ {
			// theta = number of set bits + noise small enough to keep order.
			theta.Set(0, c, float64(popcount(c))+0.3*rng.Float64())
		}
		// Enforce exact monotonicity along every dim.
		for j := 0; j < m; j++ {
			for _, pr := range LatticeEdgePairs(m, j) {
				if theta.At(0, pr[1]) < theta.At(0, pr[0]) {
					theta.Set(0, pr[1], theta.At(0, pr[0]))
				}
			}
		}
		tp := NewTape()
		th := tp.Input(theta)
		base := make([]float64, m)
		for j := range base {
			base[j] = rng.Float64()
		}
		dim := rng.Intn(m)
		prev := math.Inf(-1)
		for v := 0.0; v <= 1.0; v += 0.1 {
			pt := append([]float64(nil), base...)
			pt[dim] = v
			out := tp.Lattice(tp.Input(tensor.FromRows([][]float64{pt})), th)
			val := out.Value.At(0, 0)
			if val < prev-1e-9 {
				return false
			}
			prev = val
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		n += x & 1
		x >>= 1
	}
	return n
}

func TestLatticeEdgePairs(t *testing.T) {
	pairs := LatticeEdgePairs(2, 0)
	if len(pairs) != 2 {
		t.Fatalf("2-dim lattice dim 0 should have 2 edges, got %d", len(pairs))
	}
	for _, p := range pairs {
		if p[1] != p[0]|1 {
			t.Fatalf("edge pair %v does not differ in bit 0", p)
		}
	}
	pairs1 := LatticeEdgePairs(3, 2)
	if len(pairs1) != 4 {
		t.Fatalf("3-dim lattice dim 2 should have 4 edges, got %d", len(pairs1))
	}
}

func TestLatticePanics(t *testing.T) {
	tp := NewTape()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	tp.Lattice(tp.Input(tensor.New(1, 2)), tp.Input(tensor.New(1, 3)))
}
