package tensor

import (
	"fmt"
	"sync"
	"testing"
)

// forceParallel turns the row-partitioned path on for the duration of a
// test (any batch size, fan-out 4) and restores the previous settings.
// The box running CI may have GOMAXPROCS=1, where the path is off by
// default — these tests are the proof it works, so they force it.
func forceParallel(t *testing.T) {
	t.Helper()
	oldPar := Parallelism()
	oldMin := SetParallelMinRows(1)
	SetParallelism(4)
	t.Cleanup(func() {
		SetParallelism(oldPar)
		SetParallelMinRows(oldMin)
	})
}

// TestGemmParallelMatchesSerial proves the determinism contract across
// partitioning: the parallel row-partitioned GEMM must produce bitwise
// the same output as the serial path, for row counts that do and do not
// divide the claim chunk (parChunkRows = 8).
func TestGemmParallelMatchesSerial(t *testing.T) {
	forceParallel(t)
	const k, n = 48, 52 // tail panel in play
	b := randDense(21, k, n)
	bias := randDense(22, 1, n)
	pb := PackB(b)
	for _, m := range []int{1, 3, 7, 8, 9, 15, 16, 31, 64, 65, 100} {
		a := randDense(int64(300+m), m, k)
		for _, ep := range []Epilogue{EpNone, EpBiasReLU, EpBiasSoftmax} {
			bv := bias
			if ep == EpNone {
				bv = nil
			}
			// gemmRowRange is the serial path — GemmPacked only differs by
			// the fan-out gate, so the comparison isolates partitioning.
			serial := New(m, n)
			gemmRowRange(serial, a, pb, bv, ep, 0, m)

			parallel := New(m, n)
			if fan := parFanout(m); m > parChunkRows && fan == 0 {
				t.Fatalf("m=%d: parallel path not engaged (fanout 0)", m)
			}
			GemmPacked(parallel, a, pb, bv, ep)

			assertExact(t, fmt.Sprintf("parallel vs serial m=%d ep=%q", m, ep.Name()), serial, parallel)
		}
	}
}

// TestGemmParallelConcurrentCallers hammers the shared worker pool from
// many goroutines at once — the race detector's target in CI — and
// checks every result against the serial path.
func TestGemmParallelConcurrentCallers(t *testing.T) {
	forceParallel(t)
	const k, n = 32, 24
	b := randDense(31, k, n)
	pb := PackB(b)

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			m := 17 + c*9
			a := randDense(int64(500+c), m, k)
			want := New(m, n)
			gemmRowRange(want, a, pb, nil, EpNone, 0, m)
			got := New(m, n)
			for iter := 0; iter < 50; iter++ {
				GemmPacked(got, a, pb, nil, EpNone)
				for i := range want.data {
					if want.data[i] != got.data[i] {
						errs <- fmt.Errorf("caller %d iter %d elem %d: want %v got %v", c, iter, i, want.data[i], got.data[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestGemmParallelZeroAllocs pins the steady-state allocation count of
// the parallel path at zero: job descriptors are pooled, workers are
// long-lived, and the fan-out sends an existing pointer. Skipped under
// the race detector, which instruments allocations.
func TestGemmParallelZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	forceParallel(t)
	const m, k, n = 64, 48, 52
	a := randDense(41, m, k)
	b := randDense(42, k, n)
	bias := randDense(43, 1, n)
	pb := PackB(b)
	out := New(m, n)
	// Warm the job pool and the lazily started workers.
	GemmPacked(out, a, pb, bias, EpBiasReLU)
	if allocs := testing.AllocsPerRun(100, func() {
		GemmPacked(out, a, pb, bias, EpBiasReLU)
	}); allocs != 0 {
		t.Fatalf("parallel GemmPacked: %v allocs/op, want 0", allocs)
	}
}

// TestSetParallelism pins the knob semantics: clamping, monotonic worker
// start, and the fan-out gate.
func TestSetParallelism(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	if got := SetParallelism(0); got != 1 {
		t.Fatalf("SetParallelism(0) = %d, want clamp to 1", got)
	}
	if got := SetParallelism(maxParWorkers + 10); got != maxParWorkers {
		t.Fatalf("SetParallelism(huge) = %d, want clamp to %d", got, maxParWorkers)
	}
	SetParallelism(1)
	oldMin := SetParallelMinRows(1)
	defer SetParallelMinRows(oldMin)
	if fan := parFanout(1000); fan != 0 {
		t.Fatalf("fanout %d with parallelism 1, want 0", fan)
	}
	SetParallelism(4)
	if fan := parFanout(1000); fan != 3 {
		t.Fatalf("fanout %d with parallelism 4, want 3 (caller participates)", fan)
	}
	// Fan-out never exceeds what the chunk count can feed.
	if fan := parFanout(parChunkRows * 2); fan != 1 {
		t.Fatalf("fanout %d for 2 chunks, want 1", fan)
	}
	SetParallelMinRows(32)
	if fan := parFanout(31); fan != 0 {
		t.Fatalf("fanout %d below min rows, want 0", fan)
	}
}
