package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Differential suite for the blocked kernel layer: every optimized path
// (packed/blocked Go, SIMD, fused epilogues, parallel) is checked against
// matMulRefInto — the reference triple loop that tensor_noopt pins — to
// within 1e-12 relative error, across odd shapes, empty dimensions, and
// sizes that are not multiples of the register tile (gemmMR x gemmNR).

// gemmShapes is the [m, k, n] grid. It deliberately crosses the tile
// boundaries: n % gemmNR != 0 exercises the scalar tail panel,
// m % gemmMR != 0 the 1-row kernel, zero dims the degenerate paths, and
// {64, 48, 352} / {1, 48, 352} are SelNet's real layer shapes.
var gemmShapes = [][3]int{
	{1, 1, 1}, {1, 3, 2}, {2, 3, 1}, {1, 5, 8}, {5, 1, 8}, {1, 8, 5},
	{3, 5, 7}, {4, 8, 8}, {7, 3, 21}, {9, 9, 16}, {12, 12, 12},
	{33, 17, 9}, {31, 7, 15}, {65, 48, 352}, {64, 48, 352}, {1, 48, 352},
	{100, 10, 10}, {8, 64, 64},
	{0, 4, 4}, {8, 0, 8}, {4, 4, 0}, {0, 0, 0},
}

func randDense(seed int64, r, c int) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func shapeSeed(m, k, n int) int64 { return int64(m)*1_000_003 + int64(k)*1009 + int64(n) }

// closeEnough is the differential tolerance: 1e-12 relative. The SIMD
// kernels contract each multiply-add with FMA, which differs from the
// two-rounding Go chain by at most one ulp per step — far inside this.
func closeEnough(ref, got float64) bool {
	if ref == got {
		return true
	}
	return math.Abs(ref-got) <= 1e-12*(1+math.Abs(ref))
}

func assertClose(t *testing.T, tag string, ref, got *Dense) {
	t.Helper()
	if ref.rows != got.rows || ref.cols != got.cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", tag, ref.rows, ref.cols, got.rows, got.cols)
	}
	for i := range ref.data {
		if !closeEnough(ref.data[i], got.data[i]) {
			t.Fatalf("%s: elem [%d,%d]: ref %v got %v (diff %g)",
				tag, i/max(ref.cols, 1), i%max(ref.cols, 1), ref.data[i], got.data[i], ref.data[i]-got.data[i])
		}
	}
}

func assertExact(t *testing.T, tag string, want, got *Dense) {
	t.Helper()
	for i := range want.data {
		if want.data[i] != got.data[i] {
			t.Fatalf("%s: elem %d: want %v got %v (must be bitwise identical)", tag, i, want.data[i], got.data[i])
		}
	}
}

// withSIMD runs f with the SIMD micro-kernels forced on or off, so the
// blocked-Go fallback is differential-tested even on AVX2 machines.
func withSIMD(t *testing.T, on bool, f func(t *testing.T)) {
	t.Helper()
	old := gemmSIMD
	if on && !old {
		t.Skip("SIMD kernels unavailable on this CPU")
	}
	gemmSIMD = on
	defer func() { gemmSIMD = old }()
	f(t)
}

// TestGemmPackedMatchesReference is the core differential test: the
// packed blocked GEMM (SIMD and portable Go variants) against the
// reference triple loop over the whole shape grid.
func TestGemmPackedMatchesReference(t *testing.T) {
	for _, simd := range []bool{false, true} {
		name := "go"
		if simd {
			name = "simd"
		}
		t.Run(name, func(t *testing.T) {
			withSIMD(t, simd, func(t *testing.T) {
				for _, s := range gemmShapes {
					m, k, n := s[0], s[1], s[2]
					a := randDense(shapeSeed(m, k, n), m, k)
					b := randDense(shapeSeed(n, k, m)+1, k, n)
					ref := New(m, n)
					matMulRefInto(ref, a, b)

					pb := PackB(b)
					got := New(m, n)
					got.Fill(math.NaN()) // the kernel must overwrite every element
					GemmPacked(got, a, pb, nil, EpNone)
					assertClose(t, fmt.Sprintf("GemmPacked %dx%dx%d", m, k, n), ref, got)

					// MatMulInto dispatches through the same kernels (packing
					// per call); it must agree with the pre-packed path exactly.
					got2 := New(m, n)
					MatMulInto(got2, a, b)
					if optimizedKernels {
						assertExact(t, fmt.Sprintf("MatMulInto vs GemmPacked %dx%dx%d", m, k, n), got, got2)
					} else {
						assertClose(t, fmt.Sprintf("MatMulInto %dx%dx%d", m, k, n), ref, got2)
					}
				}
			})
		})
	}
}

// TestGemmPackedDeterministicAcrossBatch pins the per-element determinism
// contract compiled plans rely on: row i of an m-row product is bitwise
// identical to the same row computed in a 1-row product (plans execute at
// class capacity, the tape path at the exact request size, and
// selnet's TestPlanMatchesTapePath asserts ==).
func TestGemmPackedDeterministicAcrossBatch(t *testing.T) {
	const k, n = 17, 21
	b := randDense(7, k, n)
	pb := PackB(b)
	for _, m := range []int{1, 2, 3, 4, 5, 8, 33, 64} {
		a := randDense(int64(m), m, k)
		full := New(m, n)
		GemmPacked(full, a, pb, nil, EpNone)
		row := New(1, n)
		for i := 0; i < m; i++ {
			ar := FromSlice(1, k, append([]float64(nil), a.Row(i)...))
			GemmPacked(row, ar, pb, nil, EpNone)
			for j := 0; j < n; j++ {
				if full.At(i, j) != row.At(0, j) {
					t.Fatalf("m=%d row %d col %d: batch %v vs single-row %v", m, i, j, full.At(i, j), row.At(0, j))
				}
			}
		}
	}
}

// refEpilogue applies ep the unfused way: AddRowVectorInto followed by
// the activation exactly as autodiff's closures compute it.
func refEpilogue(out, bias *Dense, ep Epilogue) {
	if ep == EpNone {
		return
	}
	AddRowVectorInto(out, out, bias)
	switch ep {
	case EpBiasReLU:
		ApplyInto(out, out, func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		})
	case EpBiasSigmoid:
		ApplyInto(out, out, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	case EpBiasTanh:
		ApplyInto(out, out, math.Tanh)
	case EpBiasSoftmax:
		// Same order of operations as autodiff's softmaxInto: row max,
		// exp(x-mx) with an ascending sum, then divide.
		for i := 0; i < out.rows; i++ {
			row := out.Row(i)
			mx := math.Inf(-1)
			for _, v := range row {
				if v > mx {
					mx = v
				}
			}
			var sum float64
			for j, v := range row {
				row[j] = math.Exp(v - mx)
				sum += row[j]
			}
			for j := range row {
				row[j] /= sum
			}
		}
	}
}

// TestGemmPackedEpilogues checks every fused epilogue two ways: bitwise
// against "bare GemmPacked + unfused ops" (fusion must be invisible), and
// within 1e-12 against the full reference chain.
func TestGemmPackedEpilogues(t *testing.T) {
	eps := []Epilogue{EpBias, EpBiasReLU, EpBiasSigmoid, EpBiasTanh, EpBiasSoftmax}
	for _, simd := range []bool{false, true} {
		name := "go"
		if simd {
			name = "simd"
		}
		t.Run(name, func(t *testing.T) {
			withSIMD(t, simd, func(t *testing.T) {
				for _, s := range gemmShapes {
					m, k, n := s[0], s[1], s[2]
					if m == 0 || n == 0 {
						continue // softmax over an empty row is undefined
					}
					a := randDense(shapeSeed(m, k, n)+3, m, k)
					b := randDense(shapeSeed(m, k, n)+4, k, n)
					bias := randDense(shapeSeed(m, k, n)+5, 1, n)
					pb := PackB(b)

					for _, ep := range eps {
						fused := New(m, n)
						GemmPacked(fused, a, pb, bias, ep)

						unfused := New(m, n)
						GemmPacked(unfused, a, pb, nil, EpNone)
						refEpilogue(unfused, bias, ep)
						assertExact(t, fmt.Sprintf("%s fused vs unfused %dx%dx%d", ep.Name(), m, k, n), unfused, fused)

						ref := New(m, n)
						matMulRefInto(ref, a, b)
						refEpilogue(ref, bias, ep)
						assertClose(t, fmt.Sprintf("%s vs reference %dx%dx%d", ep.Name(), m, k, n), ref, fused)
					}
				}
			})
		})
	}
}

// TestEpilogueNames pins the timing-name suffixes infer interns.
func TestEpilogueNames(t *testing.T) {
	want := map[Epilogue]string{
		EpNone: "", EpBias: "bias", EpBiasReLU: "bias+relu",
		EpBiasSigmoid: "bias+sigmoid", EpBiasTanh: "bias+tanh", EpBiasSoftmax: "bias+softmax",
	}
	for ep, name := range want {
		if got := ep.Name(); got != name {
			t.Fatalf("Epilogue(%d).Name() = %q, want %q", ep, got, name)
		}
	}
}

// TestReluIntoMatchesApply differential-tests the vectorized ReLU against
// ApplyInto with the branchy closure, including special values; they must
// agree bitwise (the VMAXPD kernel maps NaN and -0 to +0, same as the
// scalar form's literal zero).
func TestReluIntoMatchesApply(t *testing.T) {
	for _, simd := range []bool{false, true} {
		name := "go"
		if simd {
			name = "simd"
		}
		t.Run(name, func(t *testing.T) {
			withSIMD(t, simd, func(t *testing.T) {
				for _, shape := range [][2]int{{1, 1}, {3, 7}, {4, 8}, {5, 13}, {64, 48}, {1, 0}} {
					src := randDense(int64(shape[0]*100+shape[1]), shape[0], shape[1])
					want := New(shape[0], shape[1])
					ApplyInto(want, src, func(v float64) float64 {
						if v > 0 {
							return v
						}
						return 0
					})
					got := New(shape[0], shape[1])
					ReluInto(got, src)
					assertExact(t, fmt.Sprintf("relu %dx%d", shape[0], shape[1]), want, got)

					// In-place form (dst aliases src), as recorded plans use it.
					inPlace := src.Clone()
					ReluInto(inPlace, inPlace)
					assertExact(t, fmt.Sprintf("relu in-place %dx%d", shape[0], shape[1]), want, inPlace)
				}

				special := FromSlice(1, 8, []float64{
					math.NaN(), math.Copysign(0, -1), 0, -1, 2.5, math.Inf(1), math.Inf(-1), -math.SmallestNonzeroFloat64,
				})
				got := New(1, 8)
				ReluInto(got, special)
				want := []float64{0, 0, 0, 0, 2.5, math.Inf(1), 0, 0}
				for j, w := range want {
					v := got.At(0, j)
					if v != w || (v == 0 && math.Signbit(v)) {
						t.Fatalf("special[%d]: ReluInto(%v) = %v, want +%v", j, special.At(0, j), v, w)
					}
				}
			})
		})
	}
}

// TestPackBTailPadding checks the zero padding of the partial tail panel
// explicitly (packBPooled draws unzeroed pool memory, so the padding must
// be written, not assumed).
func TestPackBTailPadding(t *testing.T) {
	const k, n = 3, 13 // tail panel of width 5
	b := randDense(11, k, n)
	// Dirty a pooled slice, return it, and pack through the pool so the
	// panel storage starts full of garbage.
	sl := getPoolSlice((n + gemmNR - 1) / gemmNR * k * gemmNR)
	for i := range sl {
		sl[i] = math.NaN()
	}
	putPoolSlice(sl)
	pb := packBPooled(b)
	defer pb.Release()
	if pb.K() != k || pb.N() != n {
		t.Fatalf("packed dims %dx%d, want %dx%d", pb.K(), pb.N(), k, n)
	}
	panels := (n + gemmNR - 1) / gemmNR
	for p := 0; p < panels; p++ {
		j0 := p * gemmNR
		for kk := 0; kk < k; kk++ {
			for lane := 0; lane < gemmNR; lane++ {
				got := pb.data[p*k*gemmNR+kk*gemmNR+lane]
				want := 0.0
				if j0+lane < n {
					want = b.At(kk, j0+lane)
				}
				if got != want {
					t.Fatalf("panel %d row %d lane %d: got %v want %v", p, kk, lane, got, want)
				}
			}
		}
	}
}

// naiveMatMul computes a*b with the simplest possible loop (the oracle
// for the transpose and accumulate variants).
func naiveMatMul(a, b *Dense) *Dense {
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func transpose(m *Dense) *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// TestMatMulVariantsEdgeShapes covers MatMulTransA, MatMulTransB and
// MatMulAddInto on the degenerate shapes the training path produces:
// single-row (1xN), single-column (Nx1), and empty dimensions.
func TestMatMulVariantsEdgeShapes(t *testing.T) {
	// [rows(a), cols(a), other] grids per variant, chosen so every edge
	// class appears: 1xN, Nx1, zero rows, zero cols.
	shapes := [][3]int{
		{1, 1, 1}, {1, 5, 3}, {5, 1, 3}, {3, 5, 1}, {1, 1, 7}, {7, 1, 1},
		{0, 3, 3}, {3, 0, 3}, {3, 3, 0}, {4, 8, 8}, {9, 2, 5},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randDense(shapeSeed(m, k, n)+10, m, k)
		b := randDense(shapeSeed(m, k, n)+11, k, n)

		// MatMulAddInto: out += a*b on a non-zero out.
		out := randDense(shapeSeed(m, k, n)+12, m, n)
		want := Add(out, naiveMatMul(a, b))
		MatMulAddInto(out, a, b)
		assertClose(t, fmt.Sprintf("MatMulAddInto %dx%dx%d", m, k, n), want, out)

		// MatMulTransA: aᵀ*b where a is k-by-m (shared leading dim k).
		at := randDense(shapeSeed(m, k, n)+13, k, m)
		wantTA := naiveMatMul(transpose(at), b)
		assertClose(t, fmt.Sprintf("MatMulTransA %dx%dx%d", m, k, n), wantTA, MatMulTransA(at, b))

		// MatMulTransB: a*bᵀ where b is n-by-k (shared trailing dim k).
		bt := randDense(shapeSeed(m, k, n)+14, n, k)
		wantTB := naiveMatMul(a, transpose(bt))
		assertClose(t, fmt.Sprintf("MatMulTransB %dx%dx%d", m, k, n), wantTB, MatMulTransB(a, bt))
	}
}

// TestGemmPackedPanics pins the kernel's shape contract.
func TestGemmPackedPanics(t *testing.T) {
	a := New(2, 3)
	pb := PackB(New(3, 4))
	expectPanic := func(tag string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", tag)
			}
		}()
		f()
	}
	expectPanic("bad out shape", func() { GemmPacked(New(2, 5), a, pb, nil, EpNone) })
	expectPanic("bad inner dim", func() { GemmPacked(New(2, 4), New(2, 9), pb, nil, EpNone) })
	expectPanic("missing bias", func() { GemmPacked(New(2, 4), a, pb, nil, EpBiasReLU) })
	expectPanic("bad bias shape", func() { GemmPacked(New(2, 4), a, pb, New(1, 3), EpBias) })
}
