//go:build !tensor_noopt

package tensor

// optimizedKernels routes MatMulInto through the blocked packed-panel
// GEMM and lets internal/infer fuse plan steps. Build with -tags
// tensor_noopt to pin the reference kernels instead.
const optimizedKernels = true
