package tensor

import (
	"fmt"
	"testing"
)

// benchShapes is the BenchmarkMatMul sweep: powers of two from 8 to 512
// square, plus SelNet's real layer shapes (the encoder/head matmuls at
// batch 64 and batch 1). CI runs the sweep through cmd/benchjson and
// fails on ns/op regressions against the committed baseline.
var benchShapes = [][3]int{
	{8, 8, 8}, {16, 16, 16}, {32, 32, 32}, {64, 64, 64},
	{128, 128, 128}, {256, 256, 256}, {512, 512, 512},
	{64, 64, 48},  // SelNet encoder layer at batch 64
	{64, 48, 352}, // SelNet control-point head at batch 64 (dominant)
	{1, 48, 352},  // same head at batch 1
}

func benchName(m, k, n int) string { return fmt.Sprintf("%dx%dx%d", m, k, n) }

// BenchmarkMatMul measures the public dispatcher (pack per call), the
// path tape-based training and one-off products take.
func BenchmarkMatMul(b *testing.B) {
	for _, s := range benchShapes {
		m, k, n := s[0], s[1], s[2]
		a := randDense(1, m, k)
		bm := randDense(2, k, n)
		out := New(m, n)
		b.Run(benchName(m, k, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, a, bm)
			}
			reportGflops(b, m, k, n)
		})
	}
}

// BenchmarkMatMulPrepacked measures GemmPacked with B packed once
// outside the loop — the compiled-plan hot path, which packs weights at
// plan compile time.
func BenchmarkMatMulPrepacked(b *testing.B) {
	for _, s := range benchShapes {
		m, k, n := s[0], s[1], s[2]
		a := randDense(1, m, k)
		pb := PackB(randDense(2, k, n))
		out := New(m, n)
		b.Run(benchName(m, k, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GemmPacked(out, a, pb, nil, EpNone)
			}
			reportGflops(b, m, k, n)
		})
	}
}

// BenchmarkMatMulFusedBiasRelu measures the fused layer kernel plans
// execute for hidden layers (matmul + bias + relu in one pass).
func BenchmarkMatMulFusedBiasRelu(b *testing.B) {
	for _, s := range [][3]int{{64, 64, 48}, {64, 48, 352}, {1, 48, 352}} {
		m, k, n := s[0], s[1], s[2]
		a := randDense(1, m, k)
		pb := PackB(randDense(2, k, n))
		bias := randDense(3, 1, n)
		out := New(m, n)
		b.Run(benchName(m, k, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GemmPacked(out, a, pb, bias, EpBiasReLU)
			}
			reportGflops(b, m, k, n)
		})
	}
}

// BenchmarkMatMulReference pins the unoptimized triple loop for
// perspective (the kernel tensor_noopt falls back to).
func BenchmarkMatMulReference(b *testing.B) {
	for _, s := range [][3]int{{64, 64, 64}, {64, 48, 352}} {
		m, k, n := s[0], s[1], s[2]
		a := randDense(1, m, k)
		bm := randDense(2, k, n)
		out := New(m, n)
		b.Run(benchName(m, k, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matMulRefInto(out, a, bm)
			}
			reportGflops(b, m, k, n)
		})
	}
}

func reportGflops(b *testing.B, m, k, n int) {
	b.Helper()
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}
