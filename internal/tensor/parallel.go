package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel row-partitioned GEMM. Large batches split their A rows across
// a fixed worker pool; each worker (and the calling goroutine, which
// always participates) claims gemmMR-aligned row chunks off an atomic
// cursor. Chunk alignment means every row goes through exactly the same
// micro-kernel as the serial path, so parallel results are bit-identical
// to serial ones.
//
// The pool is allocation-free in steady state: job descriptors come from
// a sync.Pool, fan-out sends the same *gemmJob pointer to the buffered
// job channel, and workers are launched once (never per call). The path
// is off below SetParallelMinRows rows (default 32) and entirely off
// when parallelism is 1 — the default on GOMAXPROCS=1 — so batch-1
// serving never pays for it.

const (
	// parChunkRows is the row-claim unit. A multiple of gemmMR, so
	// chunk boundaries preserve the serial path's register-tile
	// alignment (part of the determinism contract in kernels.go).
	parChunkRows = 8
	// maxParWorkers bounds the worker pool.
	maxParWorkers = 64
)

type gemmJob struct {
	out, a *Dense
	pb     PackedB // by value, so a caller's stack PackedB never escapes
	bias   *Dense
	ep     Epilogue
	m      int
	cursor atomic.Int64
	wg     sync.WaitGroup
}

var (
	parMu      sync.Mutex
	parJobs    chan *gemmJob
	parStarted int          // workers launched so far (monotonic)
	parDesired atomic.Int32 // requested parallelism; <2 disables the path
	parMinRows atomic.Int32
	gemmJobs   = sync.Pool{New: func() any { return new(gemmJob) }}
)

func init() {
	parMinRows.Store(32)
	SetParallelism(runtime.GOMAXPROCS(0))
}

// SetParallelism sets how many goroutines (including the caller) execute
// one large GEMM; n <= 1 disables the parallel path. Workers are started
// lazily and stay for the life of the process; shrinking only lowers the
// fan-out. Returns the value actually set.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxParWorkers {
		n = maxParWorkers
	}
	parMu.Lock()
	if n > 1 {
		if parJobs == nil {
			parJobs = make(chan *gemmJob, 4*maxParWorkers)
		}
		// Workers must exist before parDesired admits the fan-out.
		for parStarted < n-1 {
			go gemmWorker(parJobs)
			parStarted++
		}
	}
	parMu.Unlock()
	parDesired.Store(int32(n))
	return n
}

// Parallelism returns the current setting (1 = serial).
func Parallelism() int { return int(parDesired.Load()) }

// SetParallelMinRows sets the minimum number of A rows before a GEMM
// uses the worker pool. Returns the previous value.
func SetParallelMinRows(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parMinRows.Swap(int32(n)))
}

// parFanout returns how many workers to enlist for an m-row GEMM
// (0 = run serial).
func parFanout(m int) int {
	des := int(parDesired.Load())
	if des < 2 || m < int(parMinRows.Load()) {
		return 0
	}
	// No point waking workers that couldn't claim a chunk.
	if chunks := (m + parChunkRows - 1) / parChunkRows; des > chunks {
		des = chunks
	}
	return des - 1
}

func gemmWorker(jobs <-chan *gemmJob) {
	for j := range jobs {
		j.run()
		j.wg.Done()
	}
}

func (j *gemmJob) run() {
	for {
		r0 := int(j.cursor.Add(parChunkRows)) - parChunkRows
		if r0 >= j.m {
			return
		}
		r1 := r0 + parChunkRows
		if r1 > j.m {
			r1 = j.m
		}
		gemmRowRange(j.out, j.a, &j.pb, j.bias, j.ep, r0, r1)
	}
}

func gemmParallel(out, a *Dense, pb *PackedB, bias *Dense, ep Epilogue, fanout int) {
	j := gemmJobs.Get().(*gemmJob)
	j.out, j.a, j.pb, j.bias, j.ep, j.m = out, a, *pb, bias, ep, a.rows
	j.cursor.Store(0)
	j.wg.Add(fanout)
	for i := 0; i < fanout; i++ {
		parJobs <- j
	}
	j.run() // the caller is a worker too
	j.wg.Wait()
	j.out, j.a, j.pb, j.bias = nil, nil, PackedB{}, nil
	gemmJobs.Put(j)
}
