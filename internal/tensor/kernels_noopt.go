//go:build tensor_noopt

package tensor

// tensor_noopt build: MatMulInto stays on the reference triple loop and
// internal/infer skips kernel fusion. The packed GEMM itself (GemmPacked,
// PackB) remains available so the differential tests can still exercise
// it against the reference under this tag.
const optimizedKernels = false
