package tensor

import "testing"

func TestNewPooledZeroed(t *testing.T) {
	m := NewPooled(3, 5)
	m.Fill(7)
	Recycle(m)
	m2 := NewPooled(3, 5)
	for i, v := range m2.Data() {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	if m2.Rows() != 3 || m2.Cols() != 5 {
		t.Fatalf("shape %dx%d, want 3x5", m2.Rows(), m2.Cols())
	}
}

func TestRecycleReusesBackingArray(t *testing.T) {
	// sync.Pool may drop entries under GC pressure, so assert reuse
	// opportunistically over several attempts rather than once.
	reused := false
	for i := 0; i < 10 && !reused; i++ {
		m := NewPooled(4, 4)
		p := &m.Data()[0]
		Recycle(m)
		m2 := NewPooled(2, 8) // same bucket (16 elements)
		reused = p == &m2.Data()[0]
		Recycle(m2)
	}
	if !reused {
		t.Fatal("pooled backing array never reused")
	}
}

func TestRecycleClearsMatrix(t *testing.T) {
	m := NewPooled(2, 2)
	Recycle(m)
	if m.Rows() != 0 || m.Cols() != 0 || m.Data() != nil {
		t.Fatal("Recycle left the matrix usable")
	}
	Recycle(nil) // must not panic
}

func TestBucketFor(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, -1}, {-1, -1}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{maxPoolBucket, 22}, {maxPoolBucket + 1, -1},
	} {
		if got := bucketFor(tc.n); got != tc.want {
			t.Fatalf("bucketFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestNewPooledUnpoolableSize(t *testing.T) {
	m := NewPooled(1, maxPoolBucket+1)
	if m.Size() != maxPoolBucket+1 {
		t.Fatalf("size %d", m.Size())
	}
	Recycle(m) // falls through to GC without panicking
}

func TestRowsView(t *testing.T) {
	m := New(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	v := m.RowsView(2)
	if v.Rows() != 2 || v.Cols() != 3 {
		t.Fatalf("view shape %dx%d", v.Rows(), v.Cols())
	}
	v.Set(1, 2, -1)
	if m.At(1, 2) != -1 {
		t.Fatal("view does not share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RowsView(5) of 4 rows did not panic")
		}
	}()
	m.RowsView(5)
}
