package tensor

import (
	"fmt"
	"math"
)

// This file is the blocked compute-kernel layer behind MatMulInto and the
// fused plan kernels (internal/infer). The design invariant that makes the
// whole layer drop-in safe is *per-element determinism*: every kernel —
// reference, blocked Go, SIMD, serial, parallel — computes each output
// element out[i][j] as one multiply-add chain over k in ascending order.
// The value of out[i][j] therefore depends only on (row i of A, column j
// of B, K); never on the batch size, the tile a row landed in, or how rows
// were partitioned across workers. Compiled plans rely on this: a plan
// executes at its batch-class capacity while the tape path runs at the
// exact request size, and the two must agree bitwise (selnet's
// TestPlanMatchesTapePath asserts ==, not approx).
//
// Layout: B is packed once into column panels of gemmNR columns, each
// panel stored k-major (panel row kk holds B[kk][j0:j0+gemmNR]) so the
// micro-kernel streams both A rows and the panel contiguously. Panels are
// zero-padded on the right, which keeps the SIMD kernel branch-free; the
// padded lanes compute harmless zeros that are never stored. For the one
// partial tail panel a scalar path is used at every call site, so tail
// columns too are computed identically everywhere.
//
// The tensor_noopt build tag (kernels_noopt.go) pins MatMulInto to the
// reference triple loop and disables plan-level fusion, as an escape
// hatch and as the oracle for the differential tests.

const (
	gemmMR = 4 // rows per register tile
	gemmNR = 8 // columns per packed panel (and per register tile)
)

// Epilogue selects the fused element-wise tail applied to each output row
// block while it is still cache-hot. EpNone stores the bare product.
type Epilogue uint8

const (
	EpNone        Epilogue = iota
	EpBias                 // out += bias (broadcast row)
	EpBiasReLU             // out = max(out+bias, 0)
	EpBiasSigmoid          // out = 1/(1+exp(-(out+bias)))
	EpBiasTanh             // out = tanh(out+bias)
	EpBiasSoftmax          // out = softmax(out+bias) per row
)

// epilogueName is indexed by Epilogue; used by infer to intern fused
// kernel timing names.
var epilogueNames = [...]string{"", "bias", "bias+relu", "bias+sigmoid", "bias+tanh", "bias+softmax"}

// Name returns a short suffix identifying the epilogue ("" for EpNone).
func (e Epilogue) Name() string { return epilogueNames[e] }

// PackedB is matrix B repacked into zero-padded column panels for the
// blocked GEMM. It snapshots B's values at pack time: a PackedB built
// from model weights goes stale if those weights are mutated afterwards
// (compiled plans handle this by dropping plans after training).
type PackedB struct {
	k, n   int
	panels int       // ceil(n / gemmNR)
	data   []float64 // panels*k*gemmNR, panel p at [p*k*gemmNR, (p+1)*k*gemmNR)
}

// PackB packs b into the panel layout. The result does not alias b.
func PackB(b *Dense) *PackedB {
	pb := packBInto(b, make([]float64, (b.cols+gemmNR-1)/gemmNR*b.rows*gemmNR))
	return &pb
}

// packBPooled is PackB drawing the panel storage from the buffer pool
// (unzeroed; packBInto writes every slot); Release returns it.
func packBPooled(b *Dense) PackedB {
	return packBInto(b, getPoolSlice((b.cols+gemmNR-1)/gemmNR*b.rows*gemmNR))
}

func packBInto(b *Dense, store []float64) PackedB {
	k, n := b.rows, b.cols
	panels := (n + gemmNR - 1) / gemmNR
	for p := 0; p < panels; p++ {
		j0 := p * gemmNR
		w := n - j0
		if w > gemmNR {
			w = gemmNR
		}
		panel := store[p*k*gemmNR : (p+1)*k*gemmNR]
		for kk := 0; kk < k; kk++ {
			dst := panel[kk*gemmNR : kk*gemmNR+gemmNR]
			copy(dst, b.data[kk*n+j0:kk*n+j0+w])
			for t := w; t < gemmNR; t++ {
				dst[t] = 0
			}
		}
	}
	return PackedB{k: k, n: n, panels: panels, data: store}
}

// K returns the inner (row) dimension of the packed matrix.
func (pb *PackedB) K() int { return pb.k }

// N returns the column dimension of the packed matrix.
func (pb *PackedB) N() int { return pb.n }

// Release returns pooled panel storage to the buffer pool. Safe on
// PackB-built values too (their storage is simply left to the GC when
// not bucket-sized). pb must not be used afterwards.
func (pb *PackedB) Release() {
	putPoolSlice(pb.data)
	pb.data = nil
}

// GemmPacked computes out = a * B followed by the fused epilogue, where
// pb packs B. out must be a.Rows() x pb.N() and must not alias a; bias
// must be 1 x pb.N() for bias-carrying epilogues and nil for EpNone.
// Rows may run on the parallel worker pool (parallel.go) when the batch
// is large enough; the result is identical either way.
func GemmPacked(out, a *Dense, pb *PackedB, bias *Dense, ep Epilogue) {
	if a.cols != pb.k || out.rows != a.rows || out.cols != pb.n {
		panic(fmt.Sprintf("tensor: GemmPacked out %dx%d = %dx%d * packed %dx%d",
			out.rows, out.cols, a.rows, a.cols, pb.k, pb.n))
	}
	if ep != EpNone && (bias == nil || bias.rows != 1 || bias.cols != pb.n) {
		panic(fmt.Sprintf("tensor: GemmPacked epilogue %q needs 1x%d bias", ep.Name(), pb.n))
	}
	gemmPacked(out, a, pb, bias, ep)
}

func gemmPacked(out, a *Dense, pb *PackedB, bias *Dense, ep Epilogue) {
	m := a.rows
	if m == 0 || pb.n == 0 {
		return
	}
	if fan := parFanout(m); fan > 0 {
		gemmParallel(out, a, pb, bias, ep, fan)
		return
	}
	gemmRowRange(out, a, pb, bias, ep, 0, m)
}

// gemmRowRange computes rows [r0, r1) of out. Row blocks always start at
// multiples of gemmMR relative to row 0 (parallel chunks are gemmMR
// aligned), so a given row is handled by the same kernel regardless of
// partitioning — part of the per-element determinism contract.
func gemmRowRange(out, a *Dense, pb *PackedB, bias *Dense, ep Epilogue, r0, r1 int) {
	i := r0
	for ; i+gemmMR <= r1; i += gemmMR {
		gemmBlock(out, a, pb, i, gemmMR)
		epilogueRows(out, bias, ep, i, i+gemmMR)
	}
	if i < r1 {
		for ; i < r1; i++ {
			gemmBlock(out, a, pb, i, 1)
			epilogueRows(out, bias, ep, i, i+1)
		}
	}
}

// gemmBlock computes rows [i, i+mr) of out (mr is gemmMR or 1) across all
// panels: full panels through the register-tiled kernel (SIMD when the
// CPU supports it, blocked Go otherwise), the partial tail panel through
// the scalar path.
func gemmBlock(out, a *Dense, pb *PackedB, i, mr int) {
	k, n := pb.k, pb.n
	lda, ldc := a.cols, out.cols
	fullPanels := n / gemmNR
	if gemmSIMD && k > 0 {
		if mr == gemmMR {
			for p := 0; p < fullPanels; p++ {
				gemm4x8(k, &a.data[i*lda], lda, &pb.data[p*k*gemmNR], &out.data[i*ldc+p*gemmNR], ldc)
			}
		} else {
			for p := 0; p < fullPanels; p++ {
				gemm1x8(k, &a.data[i*lda], &pb.data[p*k*gemmNR], &out.data[i*ldc+p*gemmNR])
			}
		}
	} else {
		for p := 0; p < fullPanels; p++ {
			gemmPanelGo(out, a, pb, i, mr, p, gemmNR)
		}
	}
	if tail := n - fullPanels*gemmNR; tail > 0 {
		gemmPanelGo(out, a, pb, i, mr, fullPanels, tail)
	}
	if k == 0 {
		for r := i; r < i+mr; r++ {
			row := out.data[r*ldc : r*ldc+n]
			for j := range row {
				row[j] = 0
			}
		}
	}
}

// gemmPanelGo is the portable panel kernel: w columns of panel p for rows
// [i, i+mr). One ascending-k chain per element, same as the SIMD kernels.
func gemmPanelGo(out, a *Dense, pb *PackedB, i, mr, p, w int) {
	k := pb.k
	if k == 0 {
		return
	}
	lda, ldc := a.cols, out.cols
	panel := pb.data[p*k*gemmNR : (p+1)*k*gemmNR]
	j0 := p * gemmNR
	for r := i; r < i+mr; r++ {
		arow := a.data[r*lda : r*lda+k]
		orow := out.data[r*ldc+j0 : r*ldc+j0+w]
		for j := 0; j < w; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * panel[kk*gemmNR+j]
			}
			orow[j] = s
		}
	}
}

// epilogueRows applies ep to rows [r0, r1) of out. The formulas must
// match the unfused ops exactly (AddRowVectorInto + ApplyInto with the
// autodiff activation closures, and autodiff's softmaxInto), so fusing is
// bit-invisible.
func epilogueRows(out, bias *Dense, ep Epilogue, r0, r1 int) {
	if ep == EpNone {
		return
	}
	n := out.cols
	bv := bias.data
	for i := r0; i < r1; i++ {
		row := out.data[i*n : (i+1)*n]
		switch ep {
		case EpBias:
			for j, b := range bv {
				row[j] += b
			}
		case EpBiasReLU:
			// Vectorized VMAXPD where possible: the branchy scalar form
			// pays a ~50% mispredict per element on random-sign
			// pre-activations. Identical semantics either way
			// (v > 0 ? v : 0, NaN -> 0), so mixing paths is bit-safe.
			j := 0
			if gemmSIMD {
				if q := n &^ 3; q > 0 {
					vecAddBiasRelu(q, &row[0], &bv[0])
					j = q
				}
			}
			for ; j < n; j++ {
				v := row[j] + bv[j]
				if v > 0 {
					row[j] = v
				} else {
					row[j] = 0
				}
			}
		case EpBiasSigmoid:
			for j, b := range bv {
				row[j] = 1 / (1 + math.Exp(-(row[j] + b)))
			}
		case EpBiasTanh:
			for j, b := range bv {
				row[j] = math.Tanh(row[j] + b)
			}
		case EpBiasSoftmax:
			mx := math.Inf(-1)
			for j, b := range bv {
				row[j] += b
				if row[j] > mx {
					mx = row[j]
				}
			}
			var sum float64
			for j := range row {
				row[j] = math.Exp(row[j] - mx)
				sum += row[j]
			}
			for j := range row {
				row[j] /= sum
			}
		}
	}
}

// ReluInto writes max(src, 0) elementwise into dst (NaN maps to 0 —
// the same contract as autodiff's reluFn and the fused bias+relu
// epilogue). dst may alias src. Vectorized on SIMD builds; the branchy
// reference loop otherwise and under tensor_noopt.
func ReluInto(dst, src *Dense) {
	if dst.rows != src.rows || dst.cols != src.cols {
		panic(fmt.Sprintf("tensor: ReluInto %dx%d from %dx%d", dst.rows, dst.cols, src.rows, src.cols))
	}
	d, s := dst.data, src.data
	i := 0
	if optimizedKernels && gemmSIMD {
		if q := len(s) &^ 3; q > 0 {
			vecRelu(q, &d[0], &s[0])
			i = q
		}
	}
	for ; i < len(s); i++ {
		if v := s[i]; v > 0 {
			d[i] = v
		} else {
			d[i] = 0
		}
	}
}

// Optimized reports whether the blocked kernel layer is active (false
// under the tensor_noopt build tag). internal/infer consults it before
// fusing plan steps.
func Optimized() bool { return optimizedKernels }

// SIMDEnabled reports whether the register-tiled micro-kernels run in
// SIMD assembly on this CPU (amd64 with AVX2+FMA) rather than portable Go.
func SIMDEnabled() bool { return gemmSIMD }
