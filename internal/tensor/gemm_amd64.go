//go:build amd64

package tensor

// SIMD micro-kernels for the packed GEMM: 4x8 and 1x8 register tiles in
// AVX2+FMA assembly (gemm_amd64.s), selected at init by CPUID. Both
// kernels keep one fused-multiply-add chain per output element in
// ascending k order. The FMA contraction (no intermediate rounding of
// a*b) differs from the Go fallback's separate multiply+add by at most
// one ulp per step — well inside the differential suite's 1e-12 — and is
// used consistently for every shape on a given machine, so the
// per-element determinism contract holds.
//
// gemmSIMD is a plain package variable (not const) so the differential
// tests can force the portable path on SIMD machines.
var gemmSIMD = hasAVX2FMA()

// gemm4x8 computes the 4x8 register tile c[0:4][0:8] = a[0:4][0:k] *
// panel, where panel is a packed k x 8 B-panel (see PackedB). lda/ldc are
// row strides in elements. Overwrites c.
//
//go:noescape
func gemm4x8(k int, a *float64, lda int, b *float64, c *float64, ldc int)

// gemm1x8 is the single-row variant: c[0:8] = a[0:k] * panel.
//
//go:noescape
func gemm1x8(k int, a *float64, b *float64, c *float64)

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbv0() (lo, hi uint32)

func hasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	if c1&bitFMA == 0 || c1&bitOSXSAVE == 0 || c1&bitAVX == 0 {
		return false
	}
	// OS must have enabled XMM+YMM state saving.
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	const bitAVX2 = 1 << 5
	return b7&bitAVX2 != 0
}

// vecAddBiasRelu computes row[0:n] = max(row+bias, 0); n must be a
// positive multiple of 4.
//
//go:noescape
func vecAddBiasRelu(n int, row *float64, bias *float64)

// vecRelu computes dst[0:n] = max(src, 0); n must be a positive
// multiple of 4.
//
//go:noescape
func vecRelu(n int, dst *float64, src *float64)
