// Package tensor provides dense float64 matrices and the linear-algebra
// kernels used by every learned model in this repository. Matrices are
// row-major. The package is deliberately small: it implements exactly the
// operations the autodiff engine and the estimators need, with no external
// dependencies.
package tensor

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix of float64 values.
// The zero value is an empty 0x0 matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols, row-major) in a Dense without
// copying. The caller must not alias data afterwards unless it intends
// shared mutation.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix by copying the given rows, which must all have
// equal length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("tensor: FromRows ragged row %d: %d != %d", i, len(r), c))
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// RowVector returns a 1 x len(v) matrix copying v.
func RowVector(v []float64) *Dense {
	m := New(1, len(v))
	copy(m.data, v)
	return m
}

// ColVector returns a len(v) x 1 matrix copying v.
func ColVector(v []float64) *Dense {
	m := New(len(v), 1)
	copy(m.data, v)
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Size returns the number of elements.
func (m *Dense) Size() int { return len(m.data) }

// Data returns the underlying row-major backing slice (not a copy).
func (m *Dense) Data() []float64 { return m.data }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set writes the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix's storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RowsView returns the first rows rows of m as a view sharing m's
// storage; the serving hot path uses it to run a partially filled batch
// buffer without copying.
func (m *Dense) RowsView(rows int) *Dense {
	if rows < 0 || rows > m.rows {
		panic(fmt.Sprintf("tensor: RowsView %d of %d rows", rows, m.rows))
	}
	return &Dense{rows: rows, cols: m.cols, data: m.data[:rows*m.cols]}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Reshape returns a view of m with the new shape; rows*cols must equal the
// current element count. The view shares storage with m.
func (m *Dense) Reshape(rows, cols int) *Dense {
	if rows*cols != len(m.data) {
		panic(fmt.Sprintf("tensor: reshape %dx%d incompatible with %d elements", rows, cols, len(m.data)))
	}
	return &Dense{rows: rows, cols: cols, data: m.data}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// MatMul returns a*b. Panics if the inner dimensions disagree.
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a*b, overwriting out. out must be a.rows x b.cols
// and must not alias a or b. The default build dispatches to the blocked
// kernel layer (kernels.go); the tensor_noopt build tag pins the reference
// triple loop below.
func MatMulInto(out, a, b *Dense) {
	if a.cols != b.rows || out.rows != a.rows || out.cols != b.cols {
		panic(fmt.Sprintf("tensor: matmulInto out %dx%d = %dx%d * %dx%d",
			out.rows, out.cols, a.rows, a.cols, b.rows, b.cols))
	}
	if optimizedKernels {
		pb := packBPooled(b)
		gemmPacked(out, a, &pb, nil, EpNone)
		pb.Release()
		return
	}
	matMulRefInto(out, a, b)
}

// matMulRefInto is the reference matmul: the portable triple loop every
// optimized kernel is differential-tested against (kernels_test.go).
func matMulRefInto(out, a, b *Dense) {
	out.Zero()
	// ikj loop order: streams through b and out rows contiguously.
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulAddInto computes out += a*b without zeroing out first.
func MatMulAddInto(out, a, b *Dense) {
	if a.cols != b.rows || out.rows != a.rows || out.cols != b.cols {
		panic(fmt.Sprintf("tensor: matmulAddInto out %dx%d += %dx%d * %dx%d",
			out.rows, out.cols, a.rows, a.cols, b.rows, b.cols))
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ*b without materializing the transpose.
func MatMulTransA(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: matmulTransA %dx%d ᵀ* %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.cols, b.cols)
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*a.cols : (k+1)*a.cols]
		brow := b.data[k*b.cols : (k+1)*b.cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a*bᵀ without materializing the transpose.
func MatMulTransB(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: matmulTransB %dx%d *ᵀ %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Dense) *Dense {
	sameShape("Add", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// AddInPlace computes a += b elementwise.
func AddInPlace(a, b *Dense) {
	sameShape("AddInPlace", a, b)
	for i, v := range b.data {
		a.data[i] += v
	}
}

// Sub returns a-b elementwise.
func Sub(a, b *Dense) *Dense {
	sameShape("Sub", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a*b.
func Mul(a, b *Dense) *Dense {
	sameShape("Mul", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] *= v
	}
	return out
}

// Scale returns s*a.
func Scale(a *Dense, s float64) *Dense {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// ScaleInto computes out = s*a, overwriting out.
func ScaleInto(out, a *Dense, s float64) {
	sameShape("ScaleInto", out, a)
	for i, v := range a.data {
		out.data[i] = s * v
	}
}

// ScaleInPlace computes a *= s.
func ScaleInPlace(a *Dense, s float64) {
	for i := range a.data {
		a.data[i] *= s
	}
}

// AxpyInPlace computes a += s*b.
func AxpyInPlace(a *Dense, s float64, b *Dense) {
	sameShape("AxpyInPlace", a, b)
	for i, v := range b.data {
		a.data[i] += s * v
	}
}

// AddRowVector returns m with the 1 x cols row vector v added to every row.
func AddRowVector(m, v *Dense) *Dense {
	if v.rows != 1 || v.cols != m.cols {
		panic(fmt.Sprintf("tensor: AddRowVector %dx%d + %dx%d", m.rows, m.cols, v.rows, v.cols))
	}
	out := m.Clone()
	for i := 0; i < out.rows; i++ {
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j, bv := range v.data {
			row[j] += bv
		}
	}
	return out
}

// AddRowVectorInto computes out = m + v broadcast over rows, overwriting
// out. out may alias m.
func AddRowVectorInto(out, m, v *Dense) {
	sameShape("AddRowVectorInto", out, m)
	if v.rows != 1 || v.cols != m.cols {
		panic(fmt.Sprintf("tensor: AddRowVectorInto %dx%d + %dx%d", m.rows, m.cols, v.rows, v.cols))
	}
	for i := 0; i < m.rows; i++ {
		src := m.data[i*m.cols : (i+1)*m.cols]
		dst := out.data[i*out.cols : (i+1)*out.cols]
		for j, bv := range v.data {
			dst[j] = src[j] + bv
		}
	}
}

// SumRows returns a 1 x cols row vector holding the column sums of m.
func SumRows(m *Dense) *Dense {
	out := New(1, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// Sum returns the sum of all elements.
func Sum(m *Dense) float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Apply returns a new matrix with f applied to every element.
func Apply(m *Dense, f func(float64) float64) *Dense {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInto computes out[i] = f(m[i]) elementwise, overwriting out. out
// may alias m.
func ApplyInto(out, m *Dense, f func(float64) float64) {
	sameShape("ApplyInto", out, m)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
}

// ConcatCols returns [a | b], the column-wise concatenation.
func ConcatCols(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: ConcatCols %dx%d | %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, a.cols+b.cols)
	ConcatColsInto(out, a, b)
	return out
}

// ConcatColsInto computes out = [a | b], overwriting out. out must not
// alias a or b.
func ConcatColsInto(out, a, b *Dense) {
	if a.rows != b.rows || out.rows != a.rows || out.cols != a.cols+b.cols {
		panic(fmt.Sprintf("tensor: ConcatColsInto out %dx%d = %dx%d | %dx%d",
			out.rows, out.cols, a.rows, a.cols, b.rows, b.cols))
	}
	for i := 0; i < a.rows; i++ {
		copy(out.data[i*out.cols:], a.data[i*a.cols:(i+1)*a.cols])
		copy(out.data[i*out.cols+a.cols:], b.data[i*b.cols:(i+1)*b.cols])
	}
}

// SliceCols returns a copy of columns [from, to) of m.
func SliceCols(m *Dense, from, to int) *Dense {
	if from < 0 || to > m.cols || from > to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", from, to, m.cols))
	}
	out := New(m.rows, to-from)
	for i := 0; i < m.rows; i++ {
		copy(out.data[i*out.cols:(i+1)*out.cols], m.data[i*m.cols+from:i*m.cols+to])
	}
	return out
}

// SliceRows returns a copy of rows [from, to) of m.
func SliceRows(m *Dense, from, to int) *Dense {
	if from < 0 || to > m.rows || from > to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %d rows", from, to, m.rows))
	}
	out := New(to-from, m.cols)
	copy(out.data, m.data[from*m.cols:to*m.cols])
	return out
}

// GatherRows returns a new matrix whose i-th row is m's row idx[i].
func GatherRows(m *Dense, idx []int) *Dense {
	out := New(len(idx), m.cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// PrefixSumCols returns the row-wise cumulative sum: out[i,j] = sum_{k<=j} m[i,k].
// This is the Mpsum (prefix-sum matrix) operation from the paper, applied
// directly instead of via a triangular matmul.
func PrefixSumCols(m *Dense) *Dense {
	out := New(m.rows, m.cols)
	PrefixSumColsInto(out, m)
	return out
}

// PrefixSumColsInto computes the row-wise cumulative sum into out,
// overwriting it. out may alias m.
func PrefixSumColsInto(out, m *Dense) {
	sameShape("PrefixSumColsInto", out, m)
	for i := 0; i < m.rows; i++ {
		var acc float64
		in := m.data[i*m.cols : (i+1)*m.cols]
		o := out.data[i*out.cols : (i+1)*out.cols]
		for j, v := range in {
			acc += v
			o[j] = acc
		}
	}
}

// MaxAbs returns the maximum absolute value in m (0 for empty matrices).
func MaxAbs(m *Dense) float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm2 returns the Frobenius norm of m.
func Norm2(m *Dense) float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// EqualApprox reports whether a and b have the same shape and every pair of
// elements differs by at most tol.
func EqualApprox(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func HasNaN(m *Dense) bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func sameShape(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("Dense(%dx%d)", m.rows, m.cols)
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
