//go:build race

package tensor

// raceEnabled skips allocation-count assertions under -race: the race
// detector instruments allocations and breaks AllocsPerRun's zeros.
const raceEnabled = true
