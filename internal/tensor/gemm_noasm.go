//go:build !amd64

package tensor

// Non-amd64 builds run the portable blocked Go kernels; the SIMD entry
// points below exist only to satisfy references and are never called.
var gemmSIMD = false

func gemm4x8(k int, a *float64, lda int, b *float64, c *float64, ldc int) {
	panic("tensor: gemm4x8 without SIMD support")
}

func gemm1x8(k int, a *float64, b *float64, c *float64) {
	panic("tensor: gemm1x8 without SIMD support")
}

func vecAddBiasRelu(n int, row *float64, bias *float64) {
	panic("tensor: vecAddBiasRelu without SIMD support")
}

func vecRelu(n int, dst *float64, src *float64) {
	panic("tensor: vecRelu without SIMD support")
}
