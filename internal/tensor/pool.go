package tensor

import (
	"math/bits"
	"sync"
)

// This file implements a size-bucketed buffer pool for Dense backing
// arrays. Inference plans (internal/infer) allocate their intermediate
// buffers here at compile time and recycle them when a plan is dropped
// (model hot-swap, plan invalidation), so repeated compile/drop cycles
// reuse the same large float64 arrays instead of churning the GC.
//
// Buckets are powers of two: a request for n elements draws from the
// bucket holding arrays of capacity 2^ceil(log2(n)) and slices the
// array down to exactly n. Arrays above maxPoolBucket elements are not
// pooled — they are rare (huge one-off batches) and would pin too much
// memory.

// maxPoolBucket is the largest pooled backing-array size (elements).
const maxPoolBucket = 1 << 22 // 32 MiB of float64s

var bufPools [23]sync.Pool // bucket i holds []float64 of cap 1<<i

// bucketFor returns the pool index whose arrays fit n elements, or -1
// when n is zero or too large to pool.
func bucketFor(n int) int {
	if n <= 0 || n > maxPoolBucket {
		return -1
	}
	return bits.Len(uint(n - 1))
}

// NewPooled returns a zeroed rows x cols matrix whose backing array is
// drawn from the size-bucketed pool (or freshly allocated when the pool
// is empty or the size is unpoolable). Recycle returns it.
func NewPooled(rows, cols int) *Dense {
	n := rows * cols
	b := bucketFor(n)
	if b < 0 {
		return New(rows, cols)
	}
	if v := bufPools[b].Get(); v != nil {
		data := v.([]float64)[:n]
		for i := range data {
			data[i] = 0
		}
		return &Dense{rows: rows, cols: cols, data: data}
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, n, 1<<b)}
}

// getPoolSlice returns an n-element slice from the bucket pool without
// zeroing it (the values are stale). Only for internal callers that
// overwrite every element before reading any (e.g. B-panel packing,
// which writes all panel slots including the zero padding).
func getPoolSlice(n int) []float64 {
	b := bucketFor(n)
	if b < 0 {
		return make([]float64, n)
	}
	if v := bufPools[b].Get(); v != nil {
		return v.([]float64)[:n]
	}
	return make([]float64, n, 1<<b)
}

// putPoolSlice returns a getPoolSlice result to the pool.
func putPoolSlice(s []float64) {
	c := cap(s)
	if b := bucketFor(c); b >= 0 && c == 1<<b {
		bufPools[b].Put(s[:0:c])
	}
}

// Recycle returns m's backing array to the pool. The caller must not
// use m (or any view sharing its storage) afterwards. Matrices whose
// arrays did not come from NewPooled are accepted too as long as their
// capacity is an exact bucket size; others are left for the GC.
func Recycle(m *Dense) {
	if m == nil {
		return
	}
	c := cap(m.data)
	if b := bucketFor(c); b >= 0 && c == 1<<b {
		bufPools[b].Put(m.data[:0:c])
	}
	m.data = nil
	m.rows, m.cols = 0, 0
}
