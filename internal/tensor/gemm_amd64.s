//go:build amd64

#include "textflag.h"

// AVX2+FMA micro-kernels for the packed GEMM (see kernels.go for the
// layout). Each output element is one VFMADD231PD chain in ascending k —
// the per-element determinism contract the plan layer depends on.

// func gemm4x8(k int, a *float64, lda int, b *float64, c *float64, ldc int)
// Computes c[0:4][0:8] = a[0:4][0:k] * panel for a packed k x 8 panel at b.
TEXT ·gemm4x8(SB), NOSPLIT, $0-48
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ lda+16(FP), R8
	MOVQ b+24(FP), DX
	MOVQ c+32(FP), DI
	MOVQ ldc+40(FP), R9
	SHLQ $3, R8              // lda in bytes
	SHLQ $3, R9              // ldc in bytes

	LEAQ (SI)(R8*1), R10     // a row 1
	LEAQ (R10)(R8*1), R11    // a row 2
	LEAQ (R11)(R8*1), R12    // a row 3

	VXORPD Y0, Y0, Y0        // c row 0, cols 0..3
	VXORPD Y1, Y1, Y1        // c row 0, cols 4..7
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

loop4x8:
	VMOVUPD (DX), Y8         // panel row kk, cols 0..3
	VMOVUPD 32(DX), Y9       // panel row kk, cols 4..7

	VBROADCASTSD (SI), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VBROADCASTSD (R10), Y10
	VFMADD231PD Y8, Y10, Y2
	VFMADD231PD Y9, Y10, Y3
	VBROADCASTSD (R11), Y10
	VFMADD231PD Y8, Y10, Y4
	VFMADD231PD Y9, Y10, Y5
	VBROADCASTSD (R12), Y10
	VFMADD231PD Y8, Y10, Y6
	VFMADD231PD Y9, Y10, Y7

	ADDQ $8, SI
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	ADDQ $64, DX
	DECQ CX
	JNZ  loop4x8

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ R9, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ R9, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ R9, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func gemm1x8(k int, a *float64, b *float64, c *float64)
// Computes c[0:8] = a[0:k] * panel for a packed k x 8 panel at b.
TEXT ·gemm1x8(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ c+24(FP), DI

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

loop1x8:
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VBROADCASTSD (SI), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	ADDQ $8, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  loop1x8

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET

// func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (lo, hi uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, lo+0(FP)
	MOVL DX, hi+4(FP)
	RET

// func vecAddBiasRelu(n int, row *float64, bias *float64)
// row[0:n] = max(row+bias, 0) for n a multiple of 4. VMAXPD with the
// value as first source and zero as second maps NaN to 0 — exactly the
// scalar reluFn semantics, so vector and scalar tails agree bitwise.
TEXT ·vecAddBiasRelu(SB), NOSPLIT, $0-24
	MOVQ n+0(FP), CX
	MOVQ row+8(FP), DI
	MOVQ bias+16(FP), SI
	VXORPD Y2, Y2, Y2
loopabr:
	VMOVUPD (DI), Y0
	VADDPD (SI), Y0, Y0
	VMAXPD Y2, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $4, CX
	JNZ  loopabr
	VZEROUPPER
	RET

// func vecRelu(n int, dst *float64, src *float64)
// dst[0:n] = max(src, 0) for n a multiple of 4 (NaN -> 0).
TEXT ·vecRelu(SB), NOSPLIT, $0-24
	MOVQ n+0(FP), CX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	VXORPD Y2, Y2, Y2
looprelu:
	VMOVUPD (SI), Y0
	VMAXPD Y2, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $4, CX
	JNZ  looprelu
	VZEROUPPER
	RET
