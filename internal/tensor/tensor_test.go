package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 || m.Size() != 12 {
		t.Fatalf("bad shape %dx%d size %d", m.Rows(), m.Cols(), m.Size())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("FromRows stored wrong values: %v", m)
	}
	m.Set(1, 0, -7)
	if m.At(1, 0) != -7 {
		t.Fatalf("Set did not take effect")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	FromSlice(2, 3, []float64{1, 2})
}

func TestRowSharesStorage(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatalf("Row should alias matrix storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatalf("Clone must not share storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	want := FromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !EqualApprox(tr, want, 0) {
		t.Fatalf("T() = %v, want %v", tr, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		m := randMat(rng, r, c)
		return EqualApprox(m.T().T(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !EqualApprox(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMat(rng, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !EqualApprox(MatMul(m, id), m, 1e-12) || !EqualApprox(MatMul(id, m), m, 1e-12) {
		t.Fatalf("identity matmul failed")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// (AB)ᵀ = BᵀAᵀ, checked with random matrices.
func TestMatMulTransposeIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 1+rng.Intn(5), 1+rng.Intn(5))
		b := randMat(rng, a.Cols(), 1+rng.Intn(5))
		lhs := MatMul(a, b).T()
		rhs := MatMul(b.T(), a.T())
		return EqualApprox(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransAMatchesExplicit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 1+rng.Intn(5), 1+rng.Intn(5))
		b := randMat(rng, a.Rows(), 1+rng.Intn(5))
		return EqualApprox(MatMulTransA(a, b), MatMul(a.T(), b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransBMatchesExplicit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 1+rng.Intn(5), 1+rng.Intn(5))
		b := randMat(rng, 1+rng.Intn(5), a.Cols())
		return EqualApprox(MatMulTransB(a, b), MatMul(a, b.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAddInto(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}})
	b := FromRows([][]float64{{2, 3}, {4, 5}})
	out := b.Clone()
	MatMulAddInto(out, a, b)
	want := FromRows([][]float64{{4, 6}, {8, 10}})
	if !EqualApprox(out, want, 1e-12) {
		t.Fatalf("MatMulAddInto = %v, want %v", out, want)
	}
}

func TestAddSubMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if got := Add(a, b); !EqualApprox(got, FromRows([][]float64{{11, 22}, {33, 44}}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !EqualApprox(got, FromRows([][]float64{{9, 18}, {27, 36}}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !EqualApprox(got, FromRows([][]float64{{10, 40}, {90, 160}}), 0) {
		t.Fatalf("Mul = %v", got)
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(5), 1+rng.Intn(5)
		a, b := randMat(rng, r, c), randMat(rng, r, c)
		return EqualApprox(Add(a, b), Add(b, a), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAxpy(t *testing.T) {
	a := FromRows([][]float64{{1, -2}})
	if got := Scale(a, -3); !EqualApprox(got, FromRows([][]float64{{-3, 6}}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	b := FromRows([][]float64{{10, 10}})
	AxpyInPlace(b, 2, a)
	if !EqualApprox(b, FromRows([][]float64{{12, 6}}), 0) {
		t.Fatalf("Axpy = %v", b)
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	v := RowVector([]float64{10, 20})
	got := AddRowVector(m, v)
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !EqualApprox(got, want, 0) {
		t.Fatalf("AddRowVector = %v, want %v", got, want)
	}
}

func TestSumRowsAndSum(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := SumRows(m); !EqualApprox(got, RowVector([]float64{4, 6}), 0) {
		t.Fatalf("SumRows = %v", got)
	}
	if Sum(m) != 10 {
		t.Fatalf("Sum = %v", Sum(m))
	}
}

func TestApply(t *testing.T) {
	m := FromRows([][]float64{{-1, 4}})
	got := Apply(m, math.Abs)
	if !EqualApprox(got, FromRows([][]float64{{1, 4}}), 0) {
		t.Fatalf("Apply = %v", got)
	}
}

func TestConcatAndSliceColsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(4)
		a := randMat(rng, r, 1+rng.Intn(4))
		b := randMat(rng, r, 1+rng.Intn(4))
		cat := ConcatCols(a, b)
		return EqualApprox(SliceCols(cat, 0, a.Cols()), a, 0) &&
			EqualApprox(SliceCols(cat, a.Cols(), cat.Cols()), b, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceRows(t *testing.T) {
	m := FromRows([][]float64{{1}, {2}, {3}, {4}})
	got := SliceRows(m, 1, 3)
	if !EqualApprox(got, FromRows([][]float64{{2}, {3}}), 0) {
		t.Fatalf("SliceRows = %v", got)
	}
}

func TestGatherRows(t *testing.T) {
	m := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	got := GatherRows(m, []int{2, 0, 2})
	want := FromRows([][]float64{{3, 3}, {1, 1}, {3, 3}})
	if !EqualApprox(got, want, 0) {
		t.Fatalf("GatherRows = %v", got)
	}
}

func TestPrefixSumCols(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {0, -1, 5}})
	got := PrefixSumCols(m)
	want := FromRows([][]float64{{1, 3, 6}, {0, -1, 4}})
	if !EqualApprox(got, want, 0) {
		t.Fatalf("PrefixSumCols = %v, want %v", got, want)
	}
}

// Prefix sum is equivalent to multiplying by the paper's Mpsum lower
// triangular matrix on the right: (row) * Mpsumᵀ.
func TestPrefixSumMatchesTriangularMatmul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(4), 1+rng.Intn(6)
		m := randMat(rng, r, c)
		// Mpsum[i][j] = 1 if j <= i. Prefix sum of row v is v * U where
		// U[k][j] = 1 if k <= j (upper triangular of ones).
		u := New(c, c)
		for k := 0; k < c; k++ {
			for j := k; j < c; j++ {
				u.Set(k, j, 1)
			}
		}
		return EqualApprox(PrefixSumCols(m), MatMul(m, u), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3, 4}})
	r := m.Reshape(2, 2)
	r.Set(1, 1, 99)
	if m.At(0, 3) != 99 {
		t.Fatalf("Reshape should be a view")
	}
}

func TestNormsAndNaN(t *testing.T) {
	m := FromRows([][]float64{{3, -4}})
	if Norm2(m) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(m))
	}
	if MaxAbs(m) != 4 {
		t.Fatalf("MaxAbs = %v", MaxAbs(m))
	}
	if HasNaN(m) {
		t.Fatalf("HasNaN false positive")
	}
	m.Set(0, 0, math.NaN())
	if !HasNaN(m) {
		t.Fatalf("HasNaN missed NaN")
	}
	m.Set(0, 0, math.Inf(1))
	if !HasNaN(m) {
		t.Fatalf("HasNaN missed Inf")
	}
}

func TestColVectorRowVector(t *testing.T) {
	if v := ColVector([]float64{1, 2}); v.Rows() != 2 || v.Cols() != 1 {
		t.Fatalf("ColVector shape %dx%d", v.Rows(), v.Cols())
	}
	if v := RowVector([]float64{1, 2}); v.Rows() != 1 || v.Cols() != 2 {
		t.Fatalf("RowVector shape %dx%d", v.Rows(), v.Cols())
	}
}

func TestZeroFill(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.Fill(7)
	if m.At(0, 0) != 7 || m.At(0, 1) != 7 {
		t.Fatalf("Fill failed: %v", m)
	}
	m.Zero()
	if Sum(m) != 0 {
		t.Fatalf("Zero failed: %v", m)
	}
}

func randMat(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 64, 64)
	c := randMat(rng, 64, 64)
	out := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, a, c)
	}
}
