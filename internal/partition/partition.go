// Package partition implements the data-partitioning layer of SelNet
// (paper Sec. 5.3): the database is divided into K disjoint clusters, a
// local model is trained per cluster, and at estimation time the indicator
// f_c(x, t) selects the clusters whose region intersects the query ball.
//
// Three strategies are provided, matching Table 10 of the paper:
//
//   - CoverTree: partition via a cover tree truncated at ratio*|D| points
//     per subtree, then greedily merge the resulting regions into K
//     size-balanced clusters (the paper's default).
//   - Random: uniform random assignment; the indicator degenerates to
//     all-ones (used for non-metric distances).
//   - KMeans: Lloyd's algorithm with k-means++ seeding.
//
// Cosine distance is handled through the unit-vector equivalence
// cos(u,v) = 1 - ||u-v||²/2: vectors are normalized and partitioned under
// Euclidean distance, and query thresholds are converted with
// distance.CosineToL2Threshold, exactly as the paper prescribes.
package partition

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"selnet/internal/covertree"
	"selnet/internal/distance"
	"selnet/internal/vecdata"
)

// Method selects the partitioning strategy.
type Method int

// Supported partitioning strategies (Table 10: CT, RP, KM).
const (
	CoverTree Method = iota
	Random
	KMeans
)

// String returns the paper's abbreviation for the method.
func (m Method) String() string {
	switch m {
	case CoverTree:
		return "CT"
	case Random:
		return "RP"
	case KMeans:
		return "KM"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Ball is a bounding ball for a set of points, in the (possibly
// converted) metric space.
type Ball struct {
	Center []float64
	Radius float64
}

// Cluster is one partition piece: disjoint member indices plus the balls
// covering them (several balls when merged from multiple regions).
type Cluster struct {
	Members []int
	Balls   []Ball
}

// Partitioning is the result of partitioning a database.
type Partitioning struct {
	Method   Method
	Clusters []Cluster

	convert   bool // cosine dataset: balls live in normalized-l2 space
	allActive bool // indicator degenerates to all-ones (random partitioning)
}

// K returns the number of clusters.
func (p *Partitioning) K() int { return len(p.Clusters) }

// WireFlags exposes the unexported indicator flags for serialization.
func (p *Partitioning) WireFlags() (convert, allActive bool) {
	return p.convert, p.allActive
}

// Restore rebuilds a Partitioning from serialized parts; the inverse of
// reading Method, Clusters and WireFlags.
func Restore(method Method, clusters []Cluster, convert, allActive bool) *Partitioning {
	return &Partitioning{Method: method, Clusters: clusters, convert: convert, allActive: allActive}
}

// Indicator computes f_c(x, t): element i is true when the query ball
// intersects cluster i's region. For random partitioning every element is
// true, matching the paper's fallback for non-metric settings.
func (p *Partitioning) Indicator(x []float64, t float64) []bool {
	out := make([]bool, len(p.Clusters))
	p.IndicatorInto(out, make([]float64, len(x)), x, t)
	return out
}

// IndicatorInto is the allocation-free Indicator used by the serving hot
// path: out (len K) receives the per-cluster activations and qbuf
// (len(x), scratch) holds the normalized query for cosine datasets. out
// and qbuf are fully overwritten.
func (p *Partitioning) IndicatorInto(out []bool, qbuf, x []float64, t float64) {
	if p.allActive {
		for i := range out {
			out[i] = true
		}
		return
	}
	qx := x
	qt := t
	if p.convert {
		copy(qbuf, x)
		if n := distance.Norm(x); n != 0 {
			for i := range qbuf {
				qbuf[i] /= n
			}
		}
		qx = qbuf
		qt = distance.CosineToL2Threshold(t)
	}
	for i, c := range p.Clusters {
		out[i] = false
		for _, b := range c.Balls {
			if distance.L2(qx, b.Center) <= qt+b.Radius {
				out[i] = true
				break
			}
		}
	}
}

// PrimaryRegion attributes a query to the single cluster that "owns"
// it: among the clusters whose region the query ball intersects (the
// ones Indicator activates), the one whose nearest ball center is
// closest; when the ball misses every region, the globally nearest
// center — a query just outside all regions is still attributed to its
// neighborhood. Random partitionings (and empty ones) carry no
// geometry, so attribution is meaningless and -1 is returned.
//
// This is the error-attribution hook of the observability layer: shadow
// q-errors broken down by region expose which part of the data a
// partitioned model is mis-estimating.
func (p *Partitioning) PrimaryRegion(x []float64, t float64) int {
	if p.allActive || len(p.Clusters) == 0 {
		return -1
	}
	qx := x
	qt := t
	if p.convert {
		qx = distance.Normalize(x)
		qt = distance.CosineToL2Threshold(t)
	}
	best, bestD, bestActive := -1, math.Inf(1), false
	for i, c := range p.Clusters {
		for _, b := range c.Balls {
			d := distance.L2(qx, b.Center)
			active := d <= qt+b.Radius
			switch {
			case active && !bestActive:
				best, bestD, bestActive = i, d, true
			case active == bestActive && d < bestD:
				best, bestD = i, d
			}
		}
	}
	return best
}

// Build partitions db into k clusters using the given method. ratio is the
// cover-tree expansion bound (subtrees smaller than ratio*|D| stop
// expanding); it is ignored by the other methods. Building is
// deterministic given rng.
func Build(rng *rand.Rand, db *vecdata.Database, k int, ratio float64, method Method) *Partitioning {
	if k < 1 {
		panic("partition: k must be >= 1")
	}
	if k > db.Size() {
		k = db.Size()
	}
	convert := db.Dist == distance.Cosine
	space := db.Vecs
	if convert {
		space = make([][]float64, db.Size())
		for i, v := range db.Vecs {
			space[i] = distance.Normalize(v)
		}
	}
	switch method {
	case CoverTree:
		return buildCoverTree(space, k, ratio, convert)
	case Random:
		return buildRandom(rng, db.Size(), k)
	case KMeans:
		return buildKMeans(rng, space, k, convert)
	default:
		panic(fmt.Sprintf("partition: unknown method %d", int(method)))
	}
}

func buildCoverTree(space [][]float64, k int, ratio float64, convert bool) *Partitioning {
	maxSize := int(math.Ceil(ratio * float64(len(space))))
	if maxSize < 1 {
		maxSize = 1
	}
	tree := covertree.Build(space, distance.L2)
	regions := tree.Partition(maxSize)
	// Greedy merge (paper Sec. 5.3): sort regions by size descending, scan
	// and assign each to the currently smallest cluster.
	sort.Slice(regions, func(i, j int) bool { return len(regions[i].Members) > len(regions[j].Members) })
	clusters := make([]Cluster, k)
	sizes := make([]int, k)
	for _, r := range regions {
		smallest := 0
		for i := 1; i < k; i++ {
			if sizes[i] < sizes[smallest] {
				smallest = i
			}
		}
		clusters[smallest].Members = append(clusters[smallest].Members, r.Members...)
		clusters[smallest].Balls = append(clusters[smallest].Balls, Ball{Center: r.Center, Radius: r.Radius})
		sizes[smallest] += len(r.Members)
	}
	return &Partitioning{Method: CoverTree, Clusters: nonEmpty(clusters), convert: convert}
}

func buildRandom(rng *rand.Rand, n, k int) *Partitioning {
	perm := rng.Perm(n)
	clusters := make([]Cluster, k)
	for i, idx := range perm {
		c := i % k
		clusters[c].Members = append(clusters[c].Members, idx)
	}
	return &Partitioning{Method: Random, Clusters: nonEmpty(clusters), allActive: true}
}

func buildKMeans(rng *rand.Rand, space [][]float64, k int, convert bool) *Partitioning {
	centers := kmeansPlusPlusInit(rng, space, k)
	assign := make([]int, len(space))
	const maxIters = 25
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, v := range space {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := distance.SquaredL2(v, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, len(space[0]))
		}
		for i, v := range space {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				next[c][j] += x
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Re-seed empty cluster at a random point.
				next[c] = append([]float64(nil), space[rng.Intn(len(space))]...)
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(counts[c])
			}
		}
		centers = next
	}
	clusters := make([]Cluster, k)
	for i := range space {
		c := assign[i]
		clusters[c].Members = append(clusters[c].Members, i)
	}
	for c := range clusters {
		if len(clusters[c].Members) == 0 {
			continue
		}
		var radius float64
		for _, m := range clusters[c].Members {
			if d := distance.L2(centers[c], space[m]); d > radius {
				radius = d
			}
		}
		clusters[c].Balls = []Ball{{Center: centers[c], Radius: radius}}
	}
	return &Partitioning{Method: KMeans, Clusters: nonEmpty(clusters), convert: convert}
}

func kmeansPlusPlusInit(rng *rand.Rand, space [][]float64, k int) [][]float64 {
	centers := make([][]float64, 0, k)
	first := space[rng.Intn(len(space))]
	centers = append(centers, append([]float64(nil), first...))
	d2 := make([]float64, len(space))
	for len(centers) < k {
		var total float64
		last := centers[len(centers)-1]
		for i, v := range space {
			d := distance.SquaredL2(v, last)
			if len(centers) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with existing centers.
			centers = append(centers, append([]float64(nil), space[rng.Intn(len(space))]...))
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := len(space) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), space[pick]...))
	}
	return centers
}

func nonEmpty(clusters []Cluster) []Cluster {
	out := clusters[:0]
	for _, c := range clusters {
		if len(c.Members) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks that the clusters are disjoint and cover [0, n) exactly,
// and that every member lies inside one of its cluster's balls (for
// methods that maintain balls). It returns the first violation found.
func (p *Partitioning) Validate(db *vecdata.Database) error {
	seen := make(map[int]bool)
	total := 0
	for ci, c := range p.Clusters {
		for _, m := range c.Members {
			if m < 0 || m >= db.Size() {
				return fmt.Errorf("partition: cluster %d member %d out of range", ci, m)
			}
			if seen[m] {
				return fmt.Errorf("partition: point %d in multiple clusters", m)
			}
			seen[m] = true
			total++
		}
		if p.allActive || len(c.Balls) == 0 {
			continue
		}
		for _, m := range c.Members {
			v := db.Vecs[m]
			if p.convert {
				v = distance.Normalize(v)
			}
			inside := false
			for _, b := range c.Balls {
				if distance.L2(v, b.Center) <= b.Radius+1e-9 {
					inside = true
					break
				}
			}
			if !inside {
				return fmt.Errorf("partition: cluster %d member %d outside all balls", ci, m)
			}
		}
	}
	if total != db.Size() {
		return fmt.Errorf("partition: clusters cover %d of %d points", total, db.Size())
	}
	return nil
}
