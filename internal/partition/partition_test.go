package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/distance"
	"selnet/internal/vecdata"
)

func testDB(seed int64, n, dim int, dist distance.Func) *vecdata.Database {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if dist == distance.Cosine {
			v = distance.Normalize(v)
		}
		vecs[i] = v
	}
	return vecdata.NewDatabase("t", dist, vecs)
}

func TestAllMethodsValidate(t *testing.T) {
	for _, method := range []Method{CoverTree, Random, KMeans} {
		for _, dist := range []distance.Func{distance.Euclidean, distance.Cosine} {
			db := testDB(7, 300, 4, dist)
			rng := rand.New(rand.NewSource(8))
			p := Build(rng, db, 3, 0.2, method)
			if err := p.Validate(db); err != nil {
				t.Fatalf("%v/%v: %v", method, dist, err)
			}
			if p.K() < 1 || p.K() > 3 {
				t.Fatalf("%v/%v: K = %d", method, dist, p.K())
			}
		}
	}
}

func TestCoverTreeClustersRoughlyBalanced(t *testing.T) {
	db := testDB(9, 600, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(10))
	p := Build(rng, db, 3, 0.1, CoverTree)
	if p.K() != 3 {
		t.Fatalf("K = %d", p.K())
	}
	// Greedy merge of <=0.1*600=60-point regions into the smallest cluster
	// bounds the imbalance by one region.
	min, max := db.Size(), 0
	for _, c := range p.Clusters {
		if len(c.Members) < min {
			min = len(c.Members)
		}
		if len(c.Members) > max {
			max = len(c.Members)
		}
	}
	if max-min > 60 {
		t.Fatalf("imbalance %d exceeds region bound", max-min)
	}
}

func TestRandomIndicatorAllOnes(t *testing.T) {
	db := testDB(11, 100, 3, distance.Euclidean)
	rng := rand.New(rand.NewSource(12))
	p := Build(rng, db, 4, 0.1, Random)
	ind := p.Indicator(db.Vecs[0], 0.001)
	for i, b := range ind {
		if !b {
			t.Fatalf("random indicator[%d] = false", i)
		}
	}
}

// The indicator must never miss a cluster that actually contains matches:
// if f_c(x,t)[i] = 0, then no point of cluster i is within t of x.
func TestIndicatorSoundness(t *testing.T) {
	for _, dist := range []distance.Func{distance.Euclidean, distance.Cosine} {
		for _, method := range []Method{CoverTree, KMeans} {
			db := testDB(13, 300, 4, dist)
			rng := rand.New(rand.NewSource(14))
			p := Build(rng, db, 4, 0.1, method)
			f := func(seed int64) bool {
				r2 := rand.New(rand.NewSource(seed))
				x := db.Vecs[r2.Intn(db.Size())]
				var threshold float64
				if dist == distance.Cosine {
					threshold = r2.Float64() * 0.5
				} else {
					threshold = r2.Float64() * 2
				}
				ind := p.Indicator(x, threshold)
				for ci, c := range p.Clusters {
					if ind[ci] {
						continue
					}
					for _, m := range c.Members {
						if dist.Distance(x, db.Vecs[m]) <= threshold {
							return false // missed a match
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatalf("%v/%v: %v", method, dist, err)
			}
		}
	}
}

// A query point from the database must always activate the cluster that
// contains it.
func TestIndicatorActivatesOwnCluster(t *testing.T) {
	db := testDB(15, 200, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(16))
	p := Build(rng, db, 3, 0.15, CoverTree)
	owner := map[int]int{}
	for ci, c := range p.Clusters {
		for _, m := range c.Members {
			owner[m] = ci
		}
	}
	for i := 0; i < db.Size(); i += 7 {
		ind := p.Indicator(db.Vecs[i], 0)
		if !ind[owner[i]] {
			t.Fatalf("point %d does not activate its own cluster", i)
		}
	}
}

func TestIndicatorMonotoneInThreshold(t *testing.T) {
	db := testDB(17, 200, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(18))
	p := Build(rng, db, 4, 0.1, KMeans)
	x := db.Vecs[0]
	prev := p.Indicator(x, 0.1)
	for _, threshold := range []float64{0.5, 1, 2, 5} {
		cur := p.Indicator(x, threshold)
		for i := range cur {
			if prev[i] && !cur[i] {
				t.Fatalf("indicator lost a cluster as t grew")
			}
		}
		prev = cur
	}
}

func TestKEqualsOneSingleCluster(t *testing.T) {
	db := testDB(19, 50, 3, distance.Euclidean)
	rng := rand.New(rand.NewSource(20))
	p := Build(rng, db, 1, 0.2, CoverTree)
	if p.K() != 1 {
		t.Fatalf("K = %d", p.K())
	}
	if len(p.Clusters[0].Members) != 50 {
		t.Fatalf("single cluster must hold everything")
	}
}

func TestKLargerThanN(t *testing.T) {
	db := testDB(21, 5, 3, distance.Euclidean)
	rng := rand.New(rand.NewSource(22))
	p := Build(rng, db, 50, 0.2, Random)
	if err := p.Validate(db); err != nil {
		t.Fatal(err)
	}
	if p.K() > 5 {
		t.Fatalf("K = %d exceeds n", p.K())
	}
}

func TestMethodString(t *testing.T) {
	if CoverTree.String() != "CT" || Random.String() != "RP" || KMeans.String() != "KM" {
		t.Fatalf("method names wrong: %v %v %v", CoverTree, Random, KMeans)
	}
}

func TestBuildPanicsOnBadK(t *testing.T) {
	db := testDB(23, 10, 2, distance.Euclidean)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Build(rand.New(rand.NewSource(1)), db, 0, 0.1, CoverTree)
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	db := testDB(24, 150, 3, distance.Euclidean)
	p1 := Build(rand.New(rand.NewSource(5)), db, 3, 0.1, KMeans)
	p2 := Build(rand.New(rand.NewSource(5)), db, 3, 0.1, KMeans)
	if p1.K() != p2.K() {
		t.Fatalf("nondeterministic K")
	}
	for i := range p1.Clusters {
		if len(p1.Clusters[i].Members) != len(p2.Clusters[i].Members) {
			t.Fatalf("nondeterministic cluster sizes")
		}
		for j := range p1.Clusters[i].Members {
			if p1.Clusters[i].Members[j] != p2.Clusters[i].Members[j] {
				t.Fatalf("nondeterministic membership")
			}
		}
	}
}

func TestPrimaryRegion(t *testing.T) {
	for _, dist := range []distance.Func{distance.Euclidean, distance.Cosine} {
		db := testDB(21, 400, 4, dist)
		rng := rand.New(rand.NewSource(22))
		p := Build(rng, db, 4, 0.2, KMeans)
		tq := 0.5
		if dist == distance.Cosine {
			tq = 0.2
		}
		// Every database point must be attributed to a real cluster, and
		// when the indicator activates the attributed cluster must be one
		// of the active ones.
		for i := 0; i < 50; i++ {
			x := db.Vecs[i]
			r := p.PrimaryRegion(x, tq)
			if r < 0 || r >= p.K() {
				t.Fatalf("%v: PrimaryRegion(vec %d) = %d, want [0, %d)", dist, i, r, p.K())
			}
			if act := p.Indicator(x, tq); !act[r] {
				t.Fatalf("%v: attributed cluster %d inactive for vec %d", dist, r, i)
			}
		}
	}
}

func TestPrimaryRegionFallsBackToNearest(t *testing.T) {
	db := testDB(23, 200, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(24))
	p := Build(rng, db, 3, 0.2, KMeans)
	// A query far outside every ball with a tiny threshold activates no
	// region but must still be attributed to its nearest center.
	far := []float64{100, 100, 100, 100}
	r := p.PrimaryRegion(far, 1e-9)
	if r < 0 || r >= p.K() {
		t.Fatalf("far query attribution = %d, want the nearest cluster", r)
	}
	best, bestD := -1, math.Inf(1)
	for i, c := range p.Clusters {
		for _, b := range c.Balls {
			if d := distance.L2(far, b.Center); d < bestD {
				best, bestD = i, d
			}
		}
	}
	if r != best {
		t.Fatalf("far query attributed to %d, nearest center is %d", r, best)
	}
}

func TestPrimaryRegionRandomIsUnattributed(t *testing.T) {
	db := testDB(25, 100, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(26))
	p := Build(rng, db, 3, 0.2, Random)
	if r := p.PrimaryRegion(db.Vecs[0], 0.5); r != -1 {
		t.Fatalf("random partitioning attribution = %d, want -1", r)
	}
}
