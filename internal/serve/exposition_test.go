package serve

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"selnet/internal/infer"
	"selnet/internal/obs"
)

// TestMetricsExposition drives every metric family the server can emit
// and validates the whole /metrics payload against the Prometheus text
// exposition format: name and label hygiene, HELP/TYPE exactly once per
// family and before its samples, counter naming, histogram bucket
// monotonicity with +Inf == _count, and no duplicate samples. The set
// of families and their types is pinned in a golden file; regenerate
// with UPDATE_GOLDEN=1 go test ./internal/serve/ -run MetricsExposition.
func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t, Config{Batcher: BatcherConfig{MaxBatch: 4}, Cache: CacheConfig{Capacity: 16}})
	if _, err := s.Registry().Publish("m", tinyNet(11, 3), "mem"); err != nil {
		t.Fatal(err)
	}
	s.SetUpdater(&fakeUpdater{stats: map[string]UpdaterStats{
		"m": {QueueDepth: 1, QueueCapacity: 8, Retrained: 1, Durable: true, JournaledBatches: 3},
	}})
	s.SetTracer(obs.NewTracer(obs.TracerConfig{SlowThreshold: time.Nanosecond}))
	// Router families: the routed request below records one decision.
	s.SetRouter(NewRouter(s.Registry(), RouterConfig{Mode: "auto"}))
	drift := obs.NewDriftMonitor(obs.DriftConfig{Threshold: 2})
	drift.Observe("m", []float64{30, 10}, []float64{10, 10})
	s.SetDrift(drift)

	// Shadow accuracy sampler with every family populated: scored
	// samples (bucket + partition via the locator), a queue drop is not
	// forced but its counter family still appears, and a workload
	// baseline with live observations. Close drains the queue so the
	// scrape below sees deterministic counts.
	wl := obs.NewWorkloadMonitor(obs.WorkloadConfig{Threshold: 0.5, MinSamples: 1})
	wl.SetBaseline("m", [][]float64{{0, 0, 0}, {1, 1, 1}}, []float64{0.2, 0.4})
	sh := obs.NewShadow(obs.ShadowConfig{SampleRate: 1, QueueDepth: 64, Workload: wl})
	sh.SetOracle("m", fixedOracle{v: 5})
	sh.SetLocate(func(string, []float64, float64) (int, bool) { return 1, true })
	sh.Offer("m", 7, 0, []float64{0.5, 0.5, 0.5}, 0.3, 1, 9)
	sh.Close()
	s.SetShadow(sh)

	// Cluster families: one led model with a lagging peer, one followed,
	// a promotion and a demotion, and pull traffic with one failure.
	fc := localCluster()
	fc.mon.SetRole("m", true, 3)
	fc.mon.SetRole("shadow", false, 2)
	fc.mon.SetLag("m", "http://peer:9", 4)
	fc.mon.Promotion("m")
	fc.mon.Demotion("shadow")
	fc.mon.ObservePull(5, false)
	fc.mon.ObservePull(0, true)
	s.SetCluster(fc)

	infer.SetKernelTiming(true)
	defer infer.SetKernelTiming(false)

	// Traffic: a repeated query exercises the cache-hit path, distinct
	// queries the batcher/plan path; both record trace spans.
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/estimate", map[string]any{"model": "m", "query": []float64{float64(i % 2), 0, 0}, "t": 0.5})
	}
	// One request through the workload router's virtual name.
	postJSON(t, ts.URL+"/v1/estimate", map[string]any{"model": "auto", "query": []float64{0.3, 0, 0}, "t": 0.5})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	fams := validatePromText(t, string(raw))

	// Families new to the observability layer must be present.
	for _, want := range []string{
		"selestd_kernel_seconds_total", "selestd_kernel_calls_total",
		"selestd_request_duration_seconds", "selestd_stage_duration_seconds",
		"selestd_trace_spans_total", "selestd_drift_qerror",
		"selestd_ingest_journaled_batches_total",
		"selestd_shadow_qerror", "selestd_shadow_partition_qerror",
		"selestd_shadow_samples_total", "selestd_shadow_sampled_total",
		"selestd_shadow_dropped_total", "selestd_shadow_oracle_truths_total",
		"selestd_workload_divergence", "selestd_workload_shift_exceeded_total",
		"selestd_ingest_retrain_advised",
		"selestd_cluster_is_leader", "selestd_cluster_term",
		"selestd_cluster_failovers_total", "selestd_cluster_demotions_total",
		"selestd_replication_lag", "selestd_replication_pulls_total",
		"selestd_replication_pull_errors_total", "selestd_replication_entries_total",
		"selestd_replication_diverged",
		"selestd_router_enabled", "selestd_router_decisions_total",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %q missing from /metrics", want)
		}
	}

	got := familyList(fams)
	golden := filepath.Join("testdata", "metrics_families.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric families diverged from %s (regenerate with UPDATE_GOLDEN=1):\ngot:\n%swant:\n%s", golden, got, want)
	}
}

func familyList(fams map[string]string) string {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s %s\n", name, fams[name])
	}
	return b.String()
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// validatePromText parses a text-format 0.0.4 payload, failing the test
// on any formatting violation, and returns family name -> type.
func validatePromText(t *testing.T, body string) map[string]string {
	t.Helper()
	types := map[string]string{} // family -> TYPE
	helped := map[string]bool{}  // family -> HELP seen
	sampled := map[string]bool{} // family -> sample seen
	seen := map[string]bool{}    // full sample identity -> present
	lastBucket := map[string]float64{}
	infBucket := map[string]float64{}
	histCount := map[string]float64{}
	histSum := map[string]bool{}

	for ln, line := range strings.Split(body, "\n") {
		where := fmt.Sprintf("line %d: %s", ln+1, line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !promNameRe.MatchString(parts[0]) {
				t.Fatalf("bad HELP name: %s", where)
			}
			if helped[parts[0]] {
				t.Fatalf("repeated HELP for %s: %s", parts[0], where)
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !promNameRe.MatchString(parts[0]) {
				t.Fatalf("bad TYPE line: %s", where)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown type %q: %s", parts[1], where)
			}
			if _, dup := types[parts[0]]; dup {
				t.Fatalf("repeated TYPE for %s: %s", parts[0], where)
			}
			if sampled[parts[0]] {
				t.Fatalf("TYPE after samples for %s: %s", parts[0], where)
			}
			types[parts[0]] = parts[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment: %s", where)
		default:
			name, labels, value := parsePromSample(t, where, line)
			fam, suffix := name, ""
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, sfx); base != name && types[base] == "histogram" {
					fam, suffix = base, sfx
					break
				}
			}
			typ, ok := types[fam]
			if !ok {
				t.Fatalf("sample without TYPE: %s", where)
			}
			if !helped[fam] {
				t.Fatalf("sample without HELP: %s", where)
			}
			sampled[fam] = true
			if typ == "counter" {
				if !strings.HasSuffix(fam, "_total") {
					t.Fatalf("counter %s does not end in _total: %s", fam, where)
				}
				if value < 0 {
					t.Fatalf("negative counter: %s", where)
				}
			}
			if typ == "histogram" && suffix == "" {
				t.Fatalf("bare sample of histogram family %s: %s", fam, where)
			}

			sig := sampleSig(name, labels, "")
			if seen[sig] {
				t.Fatalf("duplicate sample %s: %s", sig, where)
			}
			seen[sig] = true

			if suffix == "_bucket" {
				le, ok := labels["le"]
				if !ok {
					t.Fatalf("bucket without le label: %s", where)
				}
				if le != "+Inf" {
					if _, err := strconv.ParseFloat(le, 64); err != nil {
						t.Fatalf("bad le %q: %s", le, where)
					}
				}
				series := sampleSig(fam, labels, "le")
				if value < lastBucket[series] {
					t.Fatalf("bucket counts decreased for %s: %s", series, where)
				}
				lastBucket[series] = value
				if le == "+Inf" {
					infBucket[series] = value
				}
			}
			if suffix == "_count" {
				histCount[sampleSig(fam, labels, "")] = value
			}
			if suffix == "_sum" {
				histSum[sampleSig(fam, labels, "")] = true
			}
		}
	}

	for series, count := range histCount {
		if inf, ok := infBucket[series]; !ok {
			t.Fatalf("histogram series %s has no +Inf bucket", series)
		} else if inf != count {
			t.Fatalf("histogram series %s: +Inf bucket %v != count %v", series, inf, count)
		}
		if !histSum[series] {
			t.Fatalf("histogram series %s has no _sum", series)
		}
	}
	return types
}

// parsePromSample splits `name{labels} value` (labels optional),
// validating names and escapes.
func parsePromSample(t *testing.T, where, line string) (string, map[string]string, float64) {
	t.Helper()
	labels := map[string]string{}
	rest := line
	name := rest
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("malformed labels: %s", where)
			}
			key := rest[:eq]
			if !promLabelRe.MatchString(key) {
				t.Fatalf("bad label name %q: %s", key, where)
			}
			if _, dup := labels[key]; dup {
				t.Fatalf("duplicate label %q: %s", key, where)
			}
			// Scan the quoted value, honoring \\ \" \n escapes.
			var val strings.Builder
			j := eq + 2
			for {
				if j >= len(rest) {
					t.Fatalf("unterminated label value: %s", where)
				}
				c := rest[j]
				if c == '"' {
					break
				}
				if c == '\\' {
					j++
					if j >= len(rest) || !strings.ContainsRune(`\"n`, rune(rest[j])) {
						t.Fatalf("bad escape: %s", where)
					}
				}
				val.WriteByte(rest[j])
				j++
			}
			labels[key] = val.String()
			rest = rest[j+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if !strings.HasPrefix(rest, "} ") {
				t.Fatalf("malformed label close: %s", where)
			}
			rest = rest[2:]
			break
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			t.Fatalf("sample without value: %s", where)
		}
		name, rest = rest[:sp], rest[sp+1:]
	}
	if !promNameRe.MatchString(name) {
		t.Fatalf("bad metric name %q: %s", name, where)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		t.Fatalf("bad sample tail %q: %s", rest, where)
	}
	value, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("bad value %q: %s", fields[0], where)
	}
	return name, labels, value
}

// sampleSig is a canonical identity for a sample: name plus sorted
// labels, optionally excluding one label (le, for bucket series).
func sampleSig(name string, labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, labels[k])
	}
	return b.String()
}
