package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"selnet/internal/selnet"
)

// tinyNet builds a small untrained SelNet — inference speed and shape
// correctness do not depend on training quality.
func tinyNet(seed int64, dim int) *selnet.Net {
	cfg := selnet.Config{
		L: 4, EmbedDim: 4,
		AEHidden: []int{8}, AELatent: 4,
		TauHidden: []int{8}, MHidden: []int{8},
		TMax: 1, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
	return selnet.NewNet(rand.New(rand.NewSource(seed)), dim, cfg)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestServerEndToEnd(t *testing.T) {
	const dim = 4
	s, ts := newTestServer(t, Config{
		Batcher: BatcherConfig{MaxBatch: 8, FlushInterval: time.Millisecond, Workers: 2},
		Cache:   CacheConfig{Capacity: 64},
	})

	// healthz before any model.
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Models != 0 {
		t.Fatalf("healthz = %+v", health)
	}

	// Load a model from disk through the API.
	net := tinyNet(1, dim)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := net.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/models/default", loadModelRequest{Path: path})
	if resp.StatusCode != 200 {
		t.Fatalf("load model: %d %s", resp.StatusCode, body)
	}

	var list struct {
		Models []modelInfo `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/models", &list)
	if len(list.Models) != 1 || list.Models[0].Name != "default" ||
		list.Models[0].Dim != dim || list.Models[0].Generation != 1 {
		t.Fatalf("models = %+v", list.Models)
	}

	// Single estimate matches direct inference.
	q := []float64{0.1, 0.2, 0.3, 0.4}
	var est estimateResponse
	resp, body = postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Model: "default", Query: q, T: 0.25})
	if resp.StatusCode != 200 {
		t.Fatalf("estimate: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if want := net.Estimate(q, 0.25); est.Estimate != want || est.Cached {
		t.Fatalf("estimate = %+v, want value %v uncached", est, want)
	}

	// The identical request is a cache hit.
	_, body = postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Model: "default", Query: q, T: 0.25})
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !est.Cached {
		t.Fatalf("repeat request not cached: %+v", est)
	}

	// Batch with per-query thresholds, and with a broadcast threshold.
	queries := [][]float64{{0.1, 0.2, 0.3, 0.4}, {0.4, 0.3, 0.2, 0.1}}
	var bresp estimateBatchResponse
	_, body = postJSON(t, ts.URL+"/v1/estimate/batch",
		estimateBatchRequest{Model: "default", Queries: queries, Ts: []float64{0.2, 0.3}})
	if err := json.Unmarshal(body, &bresp); err != nil {
		t.Fatalf("unmarshal batch: %v (%s)", err, body)
	}
	if len(bresp.Estimates) != 2 {
		t.Fatalf("batch estimates = %v", bresp.Estimates)
	}
	if want := net.Estimate(queries[1], 0.3); bresp.Estimates[1] != want {
		t.Fatalf("batch[1] = %v, want %v", bresp.Estimates[1], want)
	}
	bt := 0.5
	resp, body = postJSON(t, ts.URL+"/v1/estimate/batch",
		estimateBatchRequest{Model: "default", Queries: queries, T: &bt})
	if resp.StatusCode != 200 {
		t.Fatalf("broadcast batch: %d %s", resp.StatusCode, body)
	}

	// Default model name resolution: empty model falls back to "default".
	resp, _ = postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Query: q, T: 0.25})
	if resp.StatusCode != 200 {
		t.Fatalf("default-name estimate: %d", resp.StatusCode)
	}

	// Stats reflect the traffic.
	var stats statsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Requests == 0 || len(stats.Models) != 1 || stats.Cache.Hits == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Models[0].Batcher == nil || stats.Models[0].Batcher.Requests == 0 {
		t.Fatalf("batcher stats missing: %+v", stats.Models[0])
	}
	_ = s
}

func TestServerErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{Cache: CacheConfig{Capacity: 4}})

	net := tinyNet(1, 3)
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := net.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/models/m", loadModelRequest{Path: path}); resp.StatusCode != 200 {
		t.Fatalf("load: %d %s", resp.StatusCode, body)
	}

	check := func(name string, status int, resp *http.Response, body []byte) {
		t.Helper()
		if resp.StatusCode != status {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, status, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
			t.Errorf("%s: error body %q", name, body)
		}
		if e.Error.Code == "" {
			t.Errorf("%s: missing error code in %q", name, body)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	check("malformed json", 400, resp, buf.Bytes())

	// Unknown model.
	r2, b2 := postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Model: "nope", Query: []float64{1, 2, 3}, T: 0.1})
	check("unknown model", 404, r2, b2)

	// Wrong dimension.
	r3, b3 := postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Model: "m", Query: []float64{1, 2}, T: 0.1})
	check("wrong dim", 400, r3, b3)

	// Empty query.
	r4, b4 := postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Model: "m", T: 0.1})
	check("empty query", 400, r4, b4)

	// Batch: mismatched thresholds.
	r5, b5 := postJSON(t, ts.URL+"/v1/estimate/batch",
		estimateBatchRequest{Model: "m", Queries: [][]float64{{1, 2, 3}}, Ts: []float64{0.1, 0.2}})
	check("ts mismatch", 400, r5, b5)

	// Batch: both t and ts.
	bt := 0.1
	r6, b6 := postJSON(t, ts.URL+"/v1/estimate/batch",
		estimateBatchRequest{Model: "m", Queries: [][]float64{{1, 2, 3}}, Ts: []float64{0.1}, T: &bt})
	check("t and ts", 400, r6, b6)

	// Batch: ragged query dims.
	r7, b7 := postJSON(t, ts.URL+"/v1/estimate/batch",
		estimateBatchRequest{Model: "m", Queries: [][]float64{{1, 2, 3}, {1, 2}}, Ts: []float64{0.1, 0.2}})
	check("ragged dims", 400, r7, b7)

	// Load: missing path, bad path, empty body.
	r8, b8 := postJSON(t, ts.URL+"/v1/models/x", loadModelRequest{})
	check("missing path", 400, r8, b8)
	r9, b9 := postJSON(t, ts.URL+"/v1/models/x", loadModelRequest{Path: "/does/not/exist.gob"})
	check("bad path", 400, r9, b9)
}

// TestServerHotSwapUnderLoad hammers /v1/estimate while repeatedly
// hot-swapping the model underneath; every request must succeed against
// either the old or the new weights. Run with -race.
func TestServerHotSwapUnderLoad(t *testing.T) {
	const dim = 4
	s, ts := newTestServer(t, Config{
		Batcher: BatcherConfig{MaxBatch: 8, FlushInterval: 500 * time.Microsecond, Workers: 2},
		// Cache disabled so every request exercises inference + batcher.
		Cache: CacheConfig{Capacity: 0},
	})

	dir := t.TempDir()
	paths := make([]string, 2)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("m%d.gob", i))
		if err := tinyNet(int64(i+1), dim).SaveFile(paths[i]); err != nil {
			t.Fatalf("save: %v", err)
		}
	}
	if resp, body := postJSON(t, ts.URL+"/v1/models/hot", loadModelRequest{Path: paths[0]}); resp.StatusCode != 200 {
		t.Fatalf("initial load: %d %s", resp.StatusCode, body)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := ts.Client()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := make([]float64, dim)
				for j := range q {
					q[j] = rng.Float64()
				}
				raw, _ := json.Marshal(estimateRequest{Model: "hot", Query: q, T: rng.Float64()})
				resp, err := client.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Errorf("goroutine %d req %d: %v", g, i, err)
					return
				}
				var er estimateResponse
				err = json.NewDecoder(resp.Body).Decode(&er)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 {
					t.Errorf("goroutine %d req %d: status %d err %v", g, i, resp.StatusCode, err)
					return
				}
				if er.Estimate < 0 {
					t.Errorf("negative estimate %v", er.Estimate)
					return
				}
			}
		}(g)
	}

	// Swap back and forth while the hammer runs.
	swaps := 30
	if testing.Short() {
		swaps = 8
	}
	for i := 0; i < swaps; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/models/hot", loadModelRequest{Path: paths[i%2]})
		if resp.StatusCode != 200 {
			t.Fatalf("swap %d: %d %s", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()

	m, ok := s.Registry().Get("hot")
	if !ok || m.Generation != uint64(swaps)+1 {
		t.Fatalf("final generation = %+v, want %d", m, swaps+1)
	}
}

// TestServerEstimateFallsBackWhenBatcherClosed pins the hot-swap race:
// a handler that resolved a model just before it was swapped out finds
// the batcher closed, and must answer inline instead of returning 503.
func TestServerEstimateFallsBackWhenBatcherClosed(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Batcher: BatcherConfig{MaxBatch: 4, FlushInterval: time.Millisecond, Workers: 1},
	})
	net := tinyNet(1, 3)
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := net.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/models/m", loadModelRequest{Path: path}); resp.StatusCode != 200 {
		t.Fatalf("load: %d %s", resp.StatusCode, body)
	}
	// Simulate the swap landing between lookup and Submit by closing the
	// live model's batcher directly.
	m, _ := s.Registry().Get("m")
	m.Batcher().Close()

	q := []float64{0.1, 0.2, 0.3}
	resp, body := postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Model: "m", Query: q, T: 0.2})
	if resp.StatusCode != 200 {
		t.Fatalf("estimate after batcher close: %d %s", resp.StatusCode, body)
	}
	var er estimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if want := net.Estimate(q, 0.2); er.Estimate != want {
		t.Fatalf("fallback estimate = %v, want %v", er.Estimate, want)
	}
}
