package serve

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selnet/internal/tensor"
)

// fakeEst is a deterministic, instrumented Estimator: the estimate is
// scale*(sum(x)+t), each EstimateBatch call is counted, and an optional
// per-call delay models real inference cost.
type fakeEst struct {
	dim   int
	scale float64
	delay time.Duration

	calls   atomic.Uint64
	rows    atomic.Uint64
	maxRows atomic.Uint64
}

func newFakeEst(dim int) *fakeEst { return &fakeEst{dim: dim, scale: 1} }

func (f *fakeEst) Estimate(x []float64, t float64) float64 {
	return f.EstimateBatch(tensor.RowVector(x), []float64{t})[0]
}

func (f *fakeEst) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	f.calls.Add(1)
	f.rows.Add(uint64(len(ts)))
	for {
		cur := f.maxRows.Load()
		if uint64(len(ts)) <= cur || f.maxRows.CompareAndSwap(cur, uint64(len(ts))) {
			break
		}
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	out := make([]float64, len(ts))
	for i := range out {
		var s float64
		for _, v := range x.Row(i) {
			s += v
		}
		out[i] = f.scale * (s + ts[i])
	}
	return out
}

func (f *fakeEst) Dim() int      { return f.dim }
func (f *fakeEst) TMax() float64 { return 1 }
func (f *fakeEst) Name() string  { return "fake" }

func fakeWant(scale float64, x []float64, t float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return scale * (s + t)
}

func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	est := newFakeEst(3)
	est.delay = 2 * time.Millisecond // give submitters time to pile up
	b := NewBatcher(est, BatcherConfig{MaxBatch: 64, FlushInterval: 5 * time.Millisecond, Workers: 1})
	defer b.Close()

	const n = 48
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := []float64{float64(i), 1, 2}
			got, err := b.Submit(context.Background(), x, 0.5)
			if err != nil {
				errs <- err
				return
			}
			if want := fakeWant(1, x, 0.5); math.Abs(got-want) > 1e-12 {
				t.Errorf("request %d: got %v, want %v", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("submit: %v", err)
	}
	st := b.Stats()
	if st.Requests != n {
		t.Fatalf("stats requests = %d, want %d", st.Requests, n)
	}
	if st.Batches >= n {
		t.Fatalf("no coalescing: %d batches for %d requests", st.Batches, n)
	}
	if st.MaxFused < 2 {
		t.Fatalf("max fused batch %d, want >= 2", st.MaxFused)
	}
}

func TestBatcherRespectsMaxBatch(t *testing.T) {
	est := newFakeEst(2)
	est.delay = time.Millisecond
	b := NewBatcher(est, BatcherConfig{MaxBatch: 4, FlushInterval: 20 * time.Millisecond, Workers: 2})
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), []float64{float64(i), 0}, 0.1); err != nil {
				t.Errorf("submit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := est.maxRows.Load(); got > 4 {
		t.Fatalf("largest EstimateBatch had %d rows, MaxBatch is 4", got)
	}
	if got := est.rows.Load(); got != 32 {
		t.Fatalf("estimator saw %d rows, want 32", got)
	}
}

func TestBatcherFlushInterval(t *testing.T) {
	est := newFakeEst(1)
	b := NewBatcher(est, BatcherConfig{MaxBatch: 1000, FlushInterval: time.Millisecond, Workers: 1})
	defer b.Close()

	// A lone request must not wait for 999 friends.
	start := time.Now()
	if _, err := b.Submit(context.Background(), []float64{1}, 0.2); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("lone request took %v, the flush timer is not firing", d)
	}
	if st := b.Stats(); st.Timeouts == 0 {
		t.Fatalf("expected a timer flush, stats: %+v", st)
	}
}

func TestBatcherCloseDrainsAndRejects(t *testing.T) {
	est := newFakeEst(1)
	est.delay = time.Millisecond
	b := NewBatcher(est, BatcherConfig{MaxBatch: 8, FlushInterval: time.Millisecond, Workers: 1})

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every request submitted before Close must be answered, not
			// dropped.
			if _, err := b.Submit(context.Background(), []float64{float64(i)}, 0.1); err != nil {
				t.Errorf("pre-close submit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	b.Close()
	b.Close() // idempotent
	if _, err := b.Submit(context.Background(), []float64{1}, 0.1); err != ErrBatcherClosed {
		t.Fatalf("post-close submit error = %v, want ErrBatcherClosed", err)
	}
	if got := est.rows.Load(); got != 16 {
		t.Fatalf("estimator saw %d rows, want 16", got)
	}
}

func TestBatcherContextCancellation(t *testing.T) {
	est := newFakeEst(1)
	b := NewBatcher(est, BatcherConfig{MaxBatch: 4, FlushInterval: time.Hour, Workers: 1})
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Submit(ctx, []float64{1}, 0.1); err != context.Canceled {
		t.Fatalf("submit error = %v, want context.Canceled", err)
	}
}
