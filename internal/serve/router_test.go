package serve

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"selnet/internal/modeltest"
	"selnet/internal/tensor"
)

// routerRegistry publishes the named modeltest builders and returns the
// registry plus a router in the given mode.
func routerRegistry(t testing.TB, mode string, kinds ...string) (*Registry, *Router) {
	t.Helper()
	reg := NewRegistry(nil)
	builders := modeltest.Builders()
	for _, kind := range kinds {
		b, ok := builders[kind]
		if !ok {
			t.Fatalf("no builder for kind %q", kind)
		}
		if _, err := reg.Publish(kind, b(), "test"); err != nil {
			t.Fatalf("publish %s: %v", kind, err)
		}
	}
	return reg, NewRouter(reg, RouterConfig{Mode: mode})
}

func TestRouterAutoPrefersSamplingOnSmallData(t *testing.T) {
	// All dim-3 models; the sampling-backed ones hold far less data than
	// the VC bound m*(3) ≈ 1400, so auto serves from sampling directly.
	_, rt := routerRegistry(t, "auto", "kde", "lsh", "selnet")
	m, err := rt.Route("auto", 3)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if m.Name != "kde" && m.Name != "lsh" {
		t.Fatalf("auto routed dim-3 to %q, want a sampling-class model", m.Name)
	}
	st := rt.Stats()
	if len(st.Assignments) != 1 || !strings.Contains(st.Assignments[0].Reason, "vc bound") {
		t.Fatalf("assignments = %+v", st.Assignments)
	}
}

func TestRouterAutoPrefersSelNetInHighDim(t *testing.T) {
	// A dim-16 SelNet and a dim-16 KDE: the KDE's sample count is within
	// the bound, but dim 16 > DimThreshold sends queries to SelNet.
	reg := NewRegistry(nil)
	mustPublish(t, reg, "wide-net", modeltest.TinySelNet(1, 16))
	db, queries := modeltest.Workload(0, 200, 16, 40)
	mustPublish(t, reg, "wide-kde", modeltest.FitKDE(db, queries))
	rt := NewRouter(reg, RouterConfig{Mode: "auto"})
	m, err := rt.Route("auto", 16)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if m.Name != "wide-net" {
		t.Fatalf("auto routed dim-16 to %q, want wide-net", m.Name)
	}
}

func TestRouterAutoFallsBackToSelNetOverBound(t *testing.T) {
	// The LSH estimator's data size (full db) above m* disqualifies the
	// sampling class; SelNet takes over.
	reg := NewRegistry(nil)
	mustPublish(t, reg, "net", modeltest.TinySelNet(1, 3))
	mustPublish(t, reg, "lsh", modeltest.Builders()["lsh"]())
	rt := NewRouter(reg, RouterConfig{Mode: "auto", Epsilon: 0.5, Delta: 0.5})
	// Epsilon 0.5 shrinks m*(3) to ceil((4+ln2)/0.5) = 10 < 200 vectors.
	if b := rt.SampleBound(3); b >= 200 {
		t.Fatalf("bound = %d, want < 200", b)
	}
	m, err := rt.Route("auto", 3)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if m.Name != "net" {
		t.Fatalf("routed to %q, want net", m.Name)
	}
}

func TestRouterExplicitKind(t *testing.T) {
	_, rt := routerRegistry(t, "gbm", "kde", "gbm", "selnet")
	m, err := rt.Route("default", 3)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if m.Name != "gbm" {
		t.Fatalf("routed to %q, want gbm", m.Name)
	}
	// Pinned kind with no matching model is a routing error, not a
	// silent fallback.
	_, rt2 := routerRegistry(t, "umnn", "kde")
	if _, err := rt2.Route("default", 3); err == nil {
		t.Fatal("expected error for pinned kind with no model")
	}
}

func TestRouterEnsembleBlendsInLogSpace(t *testing.T) {
	_, rt := routerRegistry(t, "ensemble", "kde", "gbm")
	m, err := rt.Route("auto", 3)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if m.Name != "ensemble" || m.Est.Name() != "Ensemble" {
		t.Fatalf("ensemble model = %q/%q", m.Name, m.Est.Name())
	}
	ens := m.Est.(*ensembleEstimator)
	x := []float64{0.1, -0.2, 0.3}
	const tq = 0.5
	want := 0.0
	for _, member := range ens.members {
		want += math.Log(math.Max(member.Estimate(x, tq), 0) + logBlendEps)
	}
	want = math.Exp(want/float64(len(ens.members))) - logBlendEps
	if got := m.Est.Estimate(x, tq); math.Abs(got-want) > 1e-12 {
		t.Fatalf("blend = %v, want %v", got, want)
	}
	// Batch path agrees with the scalar path.
	xs, ts := tensor.FromRows([][]float64{x}), []float64{tq}
	if got := m.Est.EstimateBatch(xs, ts)[0]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("batch blend = %v, want %v", got, want)
	}
}

func TestRouterCacheInvalidatesOnPublish(t *testing.T) {
	reg, rt := routerRegistry(t, "auto", "kde")
	if m, _ := rt.Route("auto", 3); m.Name != "kde" {
		t.Fatalf("routed to %q, want kde", m.Name)
	}
	// Publishing a dim-16 model changes the table; the old cache must
	// not serve a stale "no dim-16 model" answer.
	mustPublish(t, reg, "wide", modeltest.TinySelNet(1, 16))
	m, err := rt.Route("auto", 16)
	if err != nil {
		t.Fatalf("route after publish: %v", err)
	}
	if m.Name != "wide" {
		t.Fatalf("routed to %q, want wide", m.Name)
	}
}

func TestRouterDecisionCounters(t *testing.T) {
	_, rt := routerRegistry(t, "auto", "kde")
	for i := 0; i < 3; i++ {
		rt.Route("auto", 3)
	}
	rt.Route("default", 3)
	st := rt.Stats()
	got := map[string]uint64{}
	for _, d := range st.Decisions {
		got[d.Model+"->"+d.Backend] = d.Count
	}
	if got["auto->kde"] != 3 || got["default->kde"] != 1 {
		t.Fatalf("decisions = %+v", st.Decisions)
	}
}

func TestRouterUnknownDim(t *testing.T) {
	_, rt := routerRegistry(t, "auto", "kde")
	if _, err := rt.Route("auto", 3); err != nil {
		t.Fatalf("route dim 3: %v", err)
	}
	if _, err := rt.Route("auto", 7); err == nil {
		t.Fatal("expected error for dim with no model")
	}
	// Both outcomes — the hit and the negative entry — are cached and
	// visible in /stats.
	st := rt.Stats()
	if len(st.Assignments) != 2 {
		t.Fatalf("assignments = %+v", st.Assignments)
	}
	if st.Assignments[1].Error == "" {
		t.Fatalf("dim-7 assignment should carry the error: %+v", st.Assignments[1])
	}
}

// TestRouterServesVirtualNamesE2E drives routing through the HTTP API:
// small-db low-dim traffic lands on the sampling estimator, high-dim
// traffic on SelNet, and a concretely published "default" shadows the
// router.
func TestRouterServesVirtualNamesE2E(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	mustPublish(t, s.Registry(), "kde", modeltest.Builders()["kde"]())
	mustPublish(t, s.Registry(), "wide-net", modeltest.TinySelNet(1, 16))
	s.SetRouter(NewRouter(s.Registry(), RouterConfig{Mode: "auto"}))

	query3 := []float64{0.1, 0.2, 0.3}
	var er estimateResponse
	resp, body := postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Model: "auto", Query: query3, T: 0.5})
	if resp.StatusCode != 200 {
		t.Fatalf("estimate via auto: %d %s", resp.StatusCode, body)
	}
	if json.Unmarshal(body, &er); er.Model != "kde" {
		t.Fatalf("dim-3 routed to %q, want kde", er.Model)
	}

	query16 := make([]float64, 16)
	resp, body = postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Model: "default", Query: query16, T: 0.5})
	if resp.StatusCode != 200 {
		t.Fatalf("estimate via default: %d %s", resp.StatusCode, body)
	}
	if json.Unmarshal(body, &er); er.Model != "wide-net" {
		t.Fatalf("dim-16 routed to %q, want wide-net", er.Model)
	}

	// Batch requests route too.
	resp, body = postJSON(t, ts.URL+"/v1/estimate/batch",
		estimateBatchRequest{Model: "auto", Queries: [][]float64{query3, query3}, Ts: []float64{0.1, 0.2}})
	if resp.StatusCode != 200 {
		t.Fatalf("batch via auto: %d %s", resp.StatusCode, body)
	}

	// /stats surfaces the router section; /v1/models surfaces the
	// assignment on the chosen backend.
	var stats statsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Router == nil || stats.Router.Mode != "auto" || len(stats.Router.Decisions) == 0 {
		t.Fatalf("router stats = %+v", stats.Router)
	}
	var models struct {
		Models []modelInfo `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/models", &models)
	foundAssignment := false
	for _, mi := range models.Models {
		if mi.Name == "kde" && len(mi.Router) > 0 {
			foundAssignment = true
		}
		if mi.Kind == "" || mi.Estimator == "" {
			t.Fatalf("model info missing kind/estimator: %+v", mi)
		}
	}
	if !foundAssignment {
		t.Fatalf("no router assignment on kde: %+v", models.Models)
	}

	// A concrete "default" shadows the router.
	mustPublish(t, s.Registry(), "default", modeltest.TinySelNet(2, 3))
	resp, body = postJSON(t, ts.URL+"/v1/estimate", estimateRequest{Query: query3, T: 0.5})
	if resp.StatusCode != 200 {
		t.Fatalf("estimate via concrete default: %d %s", resp.StatusCode, body)
	}
	if json.Unmarshal(body, &er); er.Model != "default" {
		t.Fatalf("concrete default shadowed by router: routed to %q", er.Model)
	}

	// /metrics exposes the decision counters.
	httpResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer httpResp.Body.Close()
	exposition, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	if !strings.Contains(string(exposition), `selestd_router_decisions_total{model="auto",backend="kde"}`) {
		t.Fatal("metrics missing selestd_router_decisions_total for auto->kde")
	}
}

func TestValidRouterMode(t *testing.T) {
	for _, good := range []string{"auto", "ensemble", "selnet", "kde", "umnn"} {
		if !ValidRouterMode(good) {
			t.Errorf("ValidRouterMode(%q) = false", good)
		}
	}
	for _, bad := range []string{"", "best", "SELNET"} {
		if ValidRouterMode(bad) {
			t.Errorf("ValidRouterMode(%q) = true", bad)
		}
	}
}

// BenchmarkRouterEstimate measures the routed single-estimate hot path:
// resolution must stay allocation-free once the (table, dim) decision
// is cached.
func BenchmarkRouterEstimate(b *testing.B) {
	_, rt := routerRegistry(b, "auto", "kde", "selnet")
	if _, err := rt.Route("auto", 3); err != nil { // warm the cache
		b.Fatalf("route: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := rt.Route("auto", 3)
		if err != nil {
			b.Fatal(err)
		}
		_ = m
	}
}

func mustPublish(t testing.TB, reg *Registry, name string, est Estimator) {
	t.Helper()
	if _, err := reg.Publish(name, est, "test"); err != nil {
		t.Fatalf("publish %s: %v", name, err)
	}
}
