package serve

import (
	"sync"
	"testing"
)

func TestRegistryPublishGetListRemove(t *testing.T) {
	r := NewRegistry(nil)
	if _, ok := r.Get("a"); ok {
		t.Fatal("empty registry returned a model")
	}
	if _, err := r.Publish("", newFakeEst(2), ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := r.Publish("a", nil, ""); err == nil {
		t.Fatal("nil estimator accepted")
	}

	m1, err := r.Publish("a", newFakeEst(2), "a.gob")
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if m1.Generation != 1 || m1.Source != "a.gob" {
		t.Fatalf("entry = %+v", m1)
	}
	if _, err := r.Publish("b", newFakeEst(3), ""); err != nil {
		t.Fatalf("publish b: %v", err)
	}
	if l := r.List(); len(l) != 2 || l[0].Name != "a" || l[1].Name != "b" {
		t.Fatalf("list = %v", l)
	}

	// Hot-swap: same name, new estimator, generation bumps; the old
	// handle stays usable.
	m2, err := r.Publish("a", newFakeEst(2), "a2.gob")
	if err != nil {
		t.Fatalf("republish: %v", err)
	}
	if m2.Generation != 2 {
		t.Fatalf("generation = %d, want 2", m2.Generation)
	}
	got, _ := r.Get("a")
	if got != m2 {
		t.Fatal("Get did not observe the swap")
	}
	if m1.Est.Dim() != 2 {
		t.Fatal("old handle broken by swap")
	}

	if !r.Remove("a") || r.Remove("a") {
		t.Fatal("remove semantics wrong")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1", r.Len())
	}
}

// TestRegistryConcurrentSwapAndGet hammers lock-free reads against
// copy-on-write swaps; run with -race.
func TestRegistryConcurrentSwapAndGet(t *testing.T) {
	r := NewRegistry(func(est Estimator) *Batcher {
		return NewBatcher(est, BatcherConfig{MaxBatch: 4, Workers: 1})
	})
	if _, err := r.Publish("m", newFakeEst(2), ""); err != nil {
		t.Fatalf("publish: %v", err)
	}
	defer r.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m, ok := r.Get("m")
				if !ok {
					t.Error("model vanished mid-swap")
					return
				}
				_ = m.Est.Estimate([]float64{1, 2}, 0.3)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if _, err := r.Publish("m", newFakeEst(2), ""); err != nil {
			t.Errorf("swap %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	m, _ := r.Get("m")
	if m.Generation != 201 {
		t.Fatalf("generation = %d, want 201", m.Generation)
	}
}

func TestRegistryPublishIf(t *testing.T) {
	r := NewRegistry(nil)
	var swaps int
	r.SetSwapHook(func(name string, old, next *Model) { swaps++ })

	// Absent name + nil expectation: installs.
	e1 := newFakeEst(2)
	m1, swapped, err := r.PublishIf("m", e1, "first", nil)
	if err != nil || !swapped || m1.Generation != 1 {
		t.Fatalf("initial PublishIf: %v %v %+v", swapped, err, m1)
	}
	// Absent expectation no longer holds: no-op, no side effects.
	if _, swapped, _ := r.PublishIf("m", newFakeEst(2), "x", nil); swapped {
		t.Fatal("stale nil expectation swapped")
	}
	// Matching expectation: swaps and bumps generation.
	e2 := newFakeEst(2)
	m2, swapped, err := r.PublishIf("m", e2, "second", e1)
	if err != nil || !swapped || m2.Generation != 2 {
		t.Fatalf("matching PublishIf: %v %v %+v", swapped, err, m2)
	}
	// Stale expectation (an operator swapped e3 in between): abandoned.
	e3 := newFakeEst(2)
	if _, err := r.Publish("m", e3, "manual"); err != nil {
		t.Fatal(err)
	}
	if _, swapped, _ := r.PublishIf("m", newFakeEst(2), "shadow", e2); swapped {
		t.Fatal("stale expectation clobbered the manual publish")
	}
	cur, _ := r.Get("m")
	if cur.Est != Estimator(e3) || cur.Generation != 3 {
		t.Fatalf("current entry %+v, want the manual publish at gen 3", cur)
	}
	if swaps != 3 {
		t.Fatalf("swap hook fired %d times, want 3 (no-ops must not fire it)", swaps)
	}
}
