package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"selnet/internal/selnet"
)

// Hot-swapping a plan-backed model while requests are in flight must
// never corrupt results: the displaced generation's plans are dropped
// (and recompile lazily for stragglers holding the old handle), the new
// generation compiles its own. Parameters are never mutated here, so
// every response must be finite and equal across generations of the
// same weights. Run with -race in CI.
func TestConcurrentSubmitDuringPlanHotSwap(t *testing.T) {
	cfg := selnet.DefaultConfig()
	cfg.TMax = 1
	base := selnet.NewNet(rand.New(rand.NewSource(1)), 8, cfg)
	want := base.Estimate([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}, 0.5)

	reg := NewRegistry(func(est Estimator) *Batcher {
		return NewBatcher(est, BatcherConfig{MaxBatch: 8, FlushInterval: 200 * time.Microsecond, Lanes: 2})
	})
	if _, err := reg.Publish("m", base, "seed"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Clones share no mutable state but produce identical
			// estimates, so correctness is observable across swaps.
			if _, err := reg.Publish("m", base.Clone(), "swap"); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	q := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	var clients sync.WaitGroup
	for g := 0; g < 4; g++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			ctx := context.Background()
			for i := 0; i < 300; i++ {
				m, ok := reg.Get("m")
				if !ok {
					t.Error("model vanished")
					return
				}
				v, err := m.Batcher().Submit(ctx, q, 0.5)
				if errors.Is(err, ErrBatcherClosed) {
					// Raced the swap: fall back to direct inference on the
					// handle, as the HTTP server does.
					v, err = m.Est.Estimate(q, 0.5), nil
				}
				if err != nil {
					t.Error(err)
					return
				}
				if v != want {
					t.Errorf("call %d: estimate %v, want %v", i, v, want)
					return
				}
			}
		}()
	}
	clients.Wait()
	close(stop)
	swapper.Wait()
	reg.Close()
}

// Lanes must spread work: with many concurrent submitters every lane
// should see at least one batch.
func TestBatcherLanesAllServe(t *testing.T) {
	est := newFakeEst(4)
	b := NewBatcher(est, BatcherConfig{MaxBatch: 4, FlushInterval: 100 * time.Microsecond, Lanes: 3})
	defer b.Close()
	var wg sync.WaitGroup
	for g := 0; g < 9; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := b.Submit(context.Background(), []float64{1, 2, 3, 4}, 0.5); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Requests != 450 {
		t.Fatalf("requests = %d, want 450", st.Requests)
	}
	if len(st.Lanes) != 3 {
		t.Fatalf("lanes = %d, want 3", len(st.Lanes))
	}
	var batches uint64
	for lane, ls := range st.Lanes {
		if ls.Batches == 0 {
			t.Fatalf("lane %d served no batches", lane)
		}
		batches += ls.Batches
	}
	if batches != st.Batches {
		t.Fatalf("aggregate batches %d != lane sum %d", st.Batches, batches)
	}
}

// With more lanes than clients, a lone lingering request must be joined
// by the next submit (fusing immediately) instead of each client
// stalling a full FlushInterval in its own lane.
func TestLoneRequestsFuseAcrossLanes(t *testing.T) {
	est := newFakeEst(2)
	const flush = 300 * time.Millisecond
	b := NewBatcher(est, BatcherConfig{MaxBatch: 8, FlushInterval: flush, Lanes: 8})
	defer b.Close()

	first := make(chan struct{})
	go func() {
		close(first)
		b.Submit(context.Background(), []float64{1, 2}, 0.5)
	}()
	<-first
	time.Sleep(30 * time.Millisecond) // let the first request enter its lone linger
	start := time.Now()
	if _, err := b.Submit(context.Background(), []float64{3, 4}, 0.5); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > flush/2 {
		t.Fatalf("second request took %v: it waited out the flush interval instead of joining the lingering lane", d)
	}
	if st := b.Stats(); st.MaxFused < 2 {
		t.Fatalf("max fused = %d, want >= 2 (requests must have coalesced)", st.MaxFused)
	}
}
