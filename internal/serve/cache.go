package serve

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// CacheConfig tunes the estimate cache.
type CacheConfig struct {
	// Capacity is the maximum number of cached estimates; 0 disables the
	// cache entirely.
	Capacity int
	// Quantum is the grid step used to quantize query coordinates and
	// thresholds into cache keys (default 1e-6). Two requests landing in
	// the same grid cell share a cache entry, so a coarser quantum trades
	// estimate fidelity for hit rate. SelNet estimates are continuous and
	// piece-wise linear in t, so nearby inputs give nearby outputs.
	Quantum float64
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.Quantum <= 0 {
		c.Quantum = 1e-6
	}
	return c
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Evictions uint64 `json:"evictions"`
}

// Cache is an LRU map from (model generation, quantized query vector,
// quantized threshold) to a previously computed estimate. Keying on the
// model's registry generation — not just its name — makes hot-swaps
// self-invalidating: entries for the old weights simply stop being
// requested and age out.
type Cache struct {
	cfg CacheConfig

	mu    sync.Mutex
	ll    *list.List // front = most recent
	items map[string]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	key string
	val float64
}

// NewCache returns an LRU estimate cache; capacity 0 yields a disabled
// cache whose Get always misses.
func NewCache(cfg CacheConfig) *Cache {
	cfg = cfg.withDefaults()
	return &Cache{
		cfg:   cfg,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Key builds the cache key for a request against one published model.
// The quantized binary form is compact and allocation-friendly as a map
// key (Go interns string map keys per entry, not globally).
func (c *Cache) Key(m *Model, x []float64, t float64) string {
	q := c.cfg.Quantum
	buf := make([]byte, 0, 8*(len(x)+3)+len(m.Name))
	buf = append(buf, m.Name...)
	buf = binary.LittleEndian.AppendUint64(buf, m.Generation)
	for _, v := range x {
		buf = binary.LittleEndian.AppendUint64(buf, quantize(v, q))
	}
	buf = binary.LittleEndian.AppendUint64(buf, quantize(t, q))
	return string(buf)
}

// quantize maps v onto the grid index round(v/q), encoded so that
// distinct cells give distinct uint64s (including negatives and the
// -0.0/+0.0 pair).
func quantize(v, q float64) uint64 {
	cell := math.Round(v / q)
	return math.Float64bits(cell + 0) // +0 normalizes -0.0 to +0.0
}

// Enabled reports whether the cache stores anything; callers can skip
// key construction entirely when it does not.
func (c *Cache) Enabled() bool { return c.cfg.Capacity > 0 }

// Get returns the cached estimate for key, if present, and marks it most
// recently used.
func (c *Cache) Get(key string) (float64, bool) {
	if c.cfg.Capacity <= 0 {
		c.misses.Add(1)
		return 0, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	var v float64
	if ok {
		c.ll.MoveToFront(el)
		// Read val under the lock: Put refreshes entries in place.
		v = el.Value.(*cacheEntry).val
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return 0, false
	}
	c.hits.Add(1)
	return v, true
}

// Put stores an estimate, evicting the least recently used entry when
// over capacity.
func (c *Cache) Put(key string, val float64) {
	if c.cfg.Capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cfg.Capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Size:      c.Len(),
		Capacity:  c.cfg.Capacity,
		Evictions: c.evictions.Load(),
	}
}
