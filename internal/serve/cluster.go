package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"selnet/internal/obs"
)

// Cluster routing lives in internal/cluster, which builds on this
// package; ClusterRouter is the seam between them, exactly like Updater
// is for ingest. The server asks the router where each request belongs
// and proxies the buffered body to the owning node when the answer is
// not "here", carrying the trace ID across the hop so spans line up,
// and a hop-count header so routing mistakes degrade into a local
// answer instead of a forwarding loop.

// ErrNotLeader signals an update enqueued on a replica that does not
// currently lead the model's replica group; the server answers 503 with
// Retry-After so the client (or the proxying node) retries against the
// new leader once failover settles.
var ErrNotLeader = errors.New("serve: not the leader for this model")

// ErrReplicationTimeout signals that a batch was journaled locally but
// the configured number of follower acknowledgements did not arrive in
// time. The batch is durable on the leader and stays queued — the
// client must treat the request as unacknowledged and may retry, the
// same at-least-once contract as a WAL sync failure.
var ErrReplicationTimeout = errors.New("serve: replication ack timeout")

// ForwardedHeader carries the forwarding hop count between cluster
// nodes. Requests above maxForwardHops are always served locally.
const ForwardedHeader = "X-Selest-Forwarded"

// maxForwardHops bounds proxy chains: hop 0 (client) may forward to a
// replica, which may forward a write once more to the leader it knows.
const maxForwardHops = 2

// ClusterRouter is what the server needs from the cluster subsystem.
// Implementations must be safe for concurrent use.
type ClusterRouter interface {
	// RouteRead returns candidate base URLs for an estimate on model, or
	// local=true when this node hosts a replica and should answer itself.
	RouteRead(model string) (targets []string, local bool)
	// RouteWrite returns the base URL of the model's leader, or
	// local=true when this node leads it. An empty target with
	// local=false means no leader is known (failover in progress).
	RouteWrite(model string) (target string, local bool)
	// ShardMap is the client-facing placement document for
	// GET /v1/cluster.
	ShardMap() any
	// ClusterStats is the per-model replication section of /stats.
	ClusterStats() any
	// Handler serves the intra-cluster API (peer state, WAL streaming)
	// mounted under /v1/cluster/.
	Handler() http.Handler
	// WriteMetrics renders the cluster metric families into /metrics.
	WriteMetrics(p *obs.PromWriter)
}

// SetCluster attaches the cluster router: estimate and update requests
// are forwarded to the owning replica or leader, GET /v1/cluster serves
// the shard map, and /stats and /metrics grow replication sections.
// Call before Handler sees traffic.
func (s *Server) SetCluster(c ClusterRouter) { s.cluster = c }

// hopCount reads the forwarding depth of a request (0 = straight from a
// client).
func hopCount(r *http.Request) int {
	h := r.Header.Get(ForwardedHeader)
	if h == "" {
		return 0
	}
	n, err := strconv.Atoi(h)
	if err != nil || n < 0 {
		return maxForwardHops
	}
	return n
}

// retryAfter stamps the backoff hint on throttling and failover
// responses (429, leaderless 503) so clients back off deliberately
// instead of hammering.
func (s *Server) retryAfter(w http.ResponseWriter) {
	d := s.cfg.RetryAfter
	if d <= 0 {
		d = time.Second
	}
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// forward proxies a request (with its already-buffered body) to the
// first reachable target, streaming the response back verbatim. The
// trace ID crosses the hop via X-Trace-Id and the hop count via
// ForwardedHeader. Returns the status written.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, targets []string, body []byte) int {
	hops := strconv.Itoa(hopCount(r) + 1)
	for _, target := range targets {
		if target == "" {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardedHeader, hops)
		if id, ok := obs.TraceIDFrom(r.Context()); ok {
			req.Header.Set("X-Trace-Id", obs.FormatTraceID(id))
		}
		resp, err := s.forwardClient().Do(req)
		if err != nil {
			// Dead or unreachable replica: try the next candidate.
			continue
		}
		for _, h := range []string{"Content-Type", "Retry-After"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	s.retryAfter(w)
	writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no replica reachable for this request"))
	return http.StatusServiceUnavailable
}

func (s *Server) forwardClient() *http.Client {
	if s.cfg.ForwardClient != nil {
		return s.cfg.ForwardClient
	}
	return defaultForwardClient
}

// defaultForwardClient bounds a forwarded request end to end; estimate
// and update handlers on the remote side answer in milliseconds, so 10s
// only guards against a hung peer.
var defaultForwardClient = &http.Client{Timeout: 10 * time.Second}

// handleClusterMap serves the shard map for client-side routing.
func (s *Server) handleClusterMap(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.ShardMap())
}

// routeRead wraps an estimate handler with cluster routing. Without a
// router — or on an already-forwarded request, which a peer routed here
// deliberately — it is the handler itself, preserving the single-node
// zero-buffer hot path. Otherwise the body is buffered to peek at the
// model name, and requests for models this node doesn't host are
// proxied to a hosting replica.
func (s *Server) routeRead(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cluster == nil || hopCount(r) > 0 {
			h(w, r)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		// Peek only at the model name; the handler re-decodes strictly.
		var peek struct {
			Model string `json:"model"`
		}
		_ = json.Unmarshal(body, &peek)
		model := peek.Model
		if model == "" {
			model = "default"
		}
		targets, local := s.cluster.RouteRead(model)
		if local || len(targets) == 0 {
			// Hosted here (or nowhere better to send it — the handler
			// produces the right 404): answer locally.
			r.Body = io.NopCloser(bytes.NewReader(body))
			h(w, r)
			return
		}
		s.forward(w, r, targets, body)
	}
}

// routeWrite wraps the update handler with leader routing: followers
// and non-hosting nodes proxy the batch to the model's leader. The hop
// budget lets a replica forward once more when leadership moved between
// the client's hop and ours; past that the request lands locally and a
// non-leader answers 503 + Retry-After rather than risking a loop.
func (s *Server) routeWrite(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cluster == nil || hopCount(r) >= maxForwardHops {
			h(w, r)
			return
		}
		model := r.PathValue("name")
		if model == "" {
			model = "default"
		}
		target, local := s.cluster.RouteWrite(model)
		if local {
			h(w, r)
			return
		}
		if target == "" {
			s.retryAfter(w)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("no leader for model %q (failover in progress)", model))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		s.forward(w, r, []string{target}, body)
	}
}
