package serve

import "errors"

// The serving API exposes POST /v1/models/{name}/update, but the update
// pipeline itself (journaling, coalescing, shadow retraining) lives in
// internal/ingest, which builds on this package. The Updater interface
// is the seam between them: the server forwards update batches to
// whatever Updater it was given and maps the sentinel errors below onto
// HTTP statuses (429 for backpressure, 409 for a model that is served
// but not attached for updates).

// ErrUpdateQueueFull signals queue-depth backpressure: the model's
// pending-update journal is at capacity. The server answers 429 so
// clients know to retry later.
var ErrUpdateQueueFull = errors.New("serve: update queue full")

// ErrNotUpdatable signals that the named model is not attached to the
// update pipeline (no database/workload context to retrain against).
var ErrNotUpdatable = errors.New("serve: model not attached for updates")

// ErrUpdaterClosed signals that the update pipeline is draining for
// shutdown and no longer accepts batches. The server answers 503.
var ErrUpdaterClosed = errors.New("serve: update pipeline closed")

// ErrInvalidUpdate marks a malformed batch (e.g. a vector whose
// dimensionality does not match the attached database — the pipeline's
// database, not the registry model, is authoritative). Implementations
// wrap it with detail; the server answers 400.
var ErrInvalidUpdate = errors.New("serve: invalid update batch")

// UpdateAck acknowledges an accepted update batch.
type UpdateAck struct {
	// Seq is the journal sequence number assigned to the batch; estimates
	// reflect it once the pipeline's applied sequence reaches Seq and a
	// retrained shadow model has been swapped in.
	Seq uint64 `json:"seq"`
	// QueueDepth is the number of batches pending after this one.
	QueueDepth int `json:"queue_depth"`
}

// UpdaterStats is one model's ingest counters, surfaced in /stats and
// /metrics.
type UpdaterStats struct {
	// Mode is how the attached estimator absorbs data changes:
	// "retrain" (shadow clone + δ_U incremental training), "refresh"
	// (clone, rebind the updated database, rebuild derived state), or
	// "static" (database and journal only; the estimator is immutable).
	Mode string `json:"mode,omitempty"`
	// QueueDepth and QueueCapacity describe the pending-batch queue.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// NextSeq is the last journal sequence assigned; AppliedSeq the last
	// one fully processed; Lag their difference.
	NextSeq    uint64 `json:"next_seq"`
	AppliedSeq uint64 `json:"applied_seq"`
	Lag        uint64 `json:"lag"`
	// BatchesApplied counts journal entries applied to the model's
	// database; InsertedVecs/DeletedVecs the vectors they carried.
	BatchesApplied uint64 `json:"batches_applied"`
	InsertedVecs   uint64 `json:"inserted_vecs"`
	DeletedVecs    uint64 `json:"deleted_vecs"`
	// Skipped counts retrain cycles absorbed by the δ_U check; Retrained
	// counts cycles that ran incremental training and hot-swapped;
	// Refreshed counts refresh-mode cycles that rebuilt and hot-swapped.
	Skipped   uint64 `json:"skipped"`
	Retrained uint64 `json:"retrained"`
	Refreshed uint64 `json:"refreshed,omitempty"`
	// LastMAEBefore/LastMAEAfter are the validation MAEs around the most
	// recent cycle (refreshed labels); LastEpochs its incremental epochs.
	LastMAEBefore float64 `json:"last_mae_before"`
	LastMAEAfter  float64 `json:"last_mae_after"`
	LastEpochs    int     `json:"last_epochs"`
	// SwapGeneration is the registry generation of the most recently
	// published shadow model (0 before the first swap).
	SwapGeneration uint64 `json:"swap_generation"`
	// Durable reports that the model's journal is backed by a write-ahead
	// log (-journal-dir); the fields below are zero otherwise.
	Durable bool `json:"durable,omitempty"`
	// JournaledBatches counts batches appended (and fsynced) to the WAL
	// since boot; ReplayedBatches is the number of recovered entries
	// queued for replay at boot.
	JournaledBatches uint64 `json:"journaled_batches,omitempty"`
	ReplayedBatches  uint64 `json:"replayed_batches,omitempty"`
	// JournalSyncs counts fsyncs the WAL performed; with a tick-based
	// sync window (-journal-sync-interval) it grows much slower than
	// JournaledBatches under sustained load.
	JournalSyncs uint64 `json:"journal_syncs,omitempty"`
	// JournalBytes is the WAL's current size; SnapshotSeq the applied
	// sequence of the last durable snapshot; Compactions the number of
	// times the WAL dropped its applied prefix; JournalErrors failed
	// snapshot/compaction attempts.
	JournalBytes  int64  `json:"journal_bytes,omitempty"`
	SnapshotSeq   uint64 `json:"snapshot_seq,omitempty"`
	Compactions   uint64 `json:"compactions,omitempty"`
	JournalErrors uint64 `json:"journal_errors,omitempty"`
	// WorkloadDivergence is the live-versus-training workload divergence
	// from shift detection (0 without a workload monitor); Workload-
	// ShiftExceeded counts observations past the configured threshold,
	// and RetrainAdvised is the resulting retraining advice — the live-
	// telemetry complement to the δ_U data-drift trigger.
	WorkloadDivergence    float64 `json:"workload_divergence,omitempty"`
	WorkloadShiftExceeded uint64  `json:"workload_shift_exceeded,omitempty"`
	RetrainAdvised        bool    `json:"retrain_advised,omitempty"`
}

// Updater accepts insert/delete batches for served models. Implementations
// must be safe for concurrent use; internal/ingest provides the real one.
type Updater interface {
	// Enqueue journals one update batch for the named model, returning
	// ErrNotUpdatable for unattached models and ErrUpdateQueueFull under
	// backpressure.
	Enqueue(model string, insert, del [][]float64) (UpdateAck, error)
	// UpdaterStats snapshots per-model ingest counters.
	UpdaterStats() map[string]UpdaterStats
}
