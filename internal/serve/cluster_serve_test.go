package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"selnet/internal/obs"
)

// fakeCluster is a scriptable ClusterRouter: tests point reads and
// writes wherever they like and feed the metrics pass a real monitor.
type fakeCluster struct {
	readTargets []string
	readLocal   bool
	writeTarget string
	writeLocal  bool
	mon         *obs.ClusterMonitor
}

func (f *fakeCluster) RouteRead(model string) ([]string, bool) { return f.readTargets, f.readLocal }
func (f *fakeCluster) RouteWrite(model string) (string, bool)  { return f.writeTarget, f.writeLocal }
func (f *fakeCluster) ShardMap() any                           { return map[string]string{"self": "here"} }
func (f *fakeCluster) ClusterStats() any                       { return map[string]string{"self": "here"} }
func (f *fakeCluster) Handler() http.Handler                   { return http.NotFoundHandler() }
func (f *fakeCluster) WriteMetrics(p *obs.PromWriter)          { f.mon.WriteMetrics(p) }

func localCluster() *fakeCluster {
	return &fakeCluster{readLocal: true, writeLocal: true, mon: obs.NewClusterMonitor()}
}

// newClusterTestServer builds a server with the router attached before
// the handler exists, so the /v1/cluster routes register.
func newClusterTestServer(t *testing.T, fc *fakeCluster) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{Batcher: BatcherConfig{MaxBatch: 4}})
	s.SetCluster(fc)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestRetryAfterOnBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Batcher: BatcherConfig{MaxBatch: 4}})
	if _, err := s.Registry().Publish("m", tinyNet(21, 3), "mem"); err != nil {
		t.Fatal(err)
	}
	s.SetUpdater(&fakeUpdater{err: ErrUpdateQueueFull})
	resp, _ := postJSON(t, ts.URL+"/v1/models/m/update", map[string]any{"insert": [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestNotLeaderAnswers503WithRetryAfter(t *testing.T) {
	fc := localCluster()
	s, ts := newClusterTestServer(t, fc)
	if _, err := s.Registry().Publish("m", tinyNet(22, 3), "mem"); err != nil {
		t.Fatal(err)
	}
	for _, err := range []error{ErrNotLeader, ErrReplicationTimeout} {
		s.SetUpdater(&fakeUpdater{err: err})
		resp, _ := postJSON(t, ts.URL+"/v1/models/m/update", map[string]any{"insert": [][]float64{{1, 2, 3}}})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%v: status %d, want 503", err, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%v: 503 without Retry-After", err)
		}
	}
}

func TestClusterMapRoute(t *testing.T) {
	_, ts := newClusterTestServer(t, localCluster())
	var sm map[string]string
	resp := getJSON(t, ts.URL+"/v1/cluster", &sm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if sm["self"] != "here" {
		t.Fatalf("shard map %v", sm)
	}
}

// TestForwarding proxies an estimate and an update from a router node
// to the node that owns the model, asserting the answer comes back
// verbatim, the trace ID survives the hop, and the forwarded request
// carries the hop count (so the remote side serves locally instead of
// forwarding again).
func TestForwarding(t *testing.T) {
	// Owner: hosts the model, everything local.
	owner, ownerTS := newClusterTestServer(t, localCluster())
	if _, err := owner.Registry().Publish("m", tinyNet(23, 3), "mem"); err != nil {
		t.Fatal(err)
	}
	owner.SetUpdater(&fakeUpdater{ack: UpdateAck{Seq: 42, QueueDepth: 1}})

	var hopSeen string
	tap := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hopSeen = r.Header.Get(ForwardedHeader)
		ownerTS.Config.Handler.ServeHTTP(w, r)
	}))
	defer tap.Close()

	// Router: hosts nothing; reads and writes both point at the owner.
	router := &fakeCluster{readTargets: []string{tap.URL}, writeTarget: tap.URL, mon: obs.NewClusterMonitor()}
	_, routerTS := newClusterTestServer(t, router)

	resp, body := postJSON(t, routerTS.URL+"/v1/estimate",
		map[string]any{"model": "m", "query": []float64{0.1, 0.2, 0.3}, "t": 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded estimate: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"estimate"`) {
		t.Fatalf("forwarded estimate body %q", body)
	}
	if hopSeen != "1" {
		t.Fatalf("forwarded request hop count %q, want 1", hopSeen)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("forwarded response lost the trace id")
	}

	resp, body = postJSON(t, routerTS.URL+"/v1/models/m/update",
		map[string]any{"insert": [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded update: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"seq":42`) {
		t.Fatalf("forwarded update body %q", body)
	}
}

// TestForwardingNoReplicaReachable: every candidate dead -> 503 with
// Retry-After, not a hang or a panic.
func TestForwardingNoReplicaReachable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // now refusing connections
	router := &fakeCluster{readTargets: []string{dead.URL}, mon: obs.NewClusterMonitor()}
	_, ts := newClusterTestServer(t, router)
	resp, _ := postJSON(t, ts.URL+"/v1/estimate",
		map[string]any{"model": "m", "query": []float64{0.1}, "t": 0.5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestLeaderlessWriteAnswers503: a hosted model with no known leader
// cannot accept or forward writes.
func TestLeaderlessWriteAnswers503(t *testing.T) {
	router := &fakeCluster{mon: obs.NewClusterMonitor()} // writeTarget "", writeLocal false
	_, ts := newClusterTestServer(t, router)
	resp, body := postJSON(t, ts.URL+"/v1/models/m/update",
		map[string]any{"insert": [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("leaderless 503 without Retry-After")
	}
}

func TestHopCount(t *testing.T) {
	mk := func(h string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/estimate", nil)
		if h != "" {
			r.Header.Set(ForwardedHeader, h)
		}
		return r
	}
	if got := hopCount(mk("")); got != 0 {
		t.Fatalf("no header: %d", got)
	}
	if got := hopCount(mk("1")); got != 1 {
		t.Fatalf("hop 1: %d", got)
	}
	// Garbage or negative counts clamp to the max so they never forward.
	if got := hopCount(mk("zzz")); got != maxForwardHops {
		t.Fatalf("garbage: %d", got)
	}
	if got := hopCount(mk("-3")); got != maxForwardHops {
		t.Fatalf("negative: %d", got)
	}
}
