package serve

import (
	"net/http"
	"sync"
	"time"

	"selnet/internal/obs"
)

// spanBuilder accumulates one request's span as the handler crosses
// stage boundaries. Builders are pooled so tracing adds no per-request
// heap allocation; mark-based accounting means each boundary costs one
// time.Now.
type spanBuilder struct {
	span obs.Span
	mark time.Time
}

var spanPool = sync.Pool{New: func() any { return new(spanBuilder) }}

// beginSpan starts a span for a traced route, or returns nil when
// tracing is off — every spanBuilder method is nil-safe so handlers
// stay unconditional.
func (s *Server) beginSpan(route string, r *http.Request) *spanBuilder {
	if s.tracer == nil {
		return nil
	}
	sb := spanPool.Get().(*spanBuilder)
	id, _ := obs.TraceIDFrom(r.Context())
	now := time.Now()
	sb.span = obs.Span{TraceID: id, Route: route, Start: now}
	sb.mark = now
	return sb
}

// stage attributes the time since the last boundary to st and advances
// the mark. Stages hit more than once (e.g. cache lookup and fill)
// accumulate.
func (sb *spanBuilder) stage(st obs.Stage) {
	if sb == nil {
		return
	}
	now := time.Now()
	sb.span.Stages[st] += now.Sub(sb.mark)
	sb.mark = now
}

// markNow resets the boundary clock without attributing the elapsed
// time — used after an interval whose stages were measured elsewhere
// (the coalescer reports queue/fuse/execute itself).
func (sb *spanBuilder) markNow() {
	if sb == nil {
		return
	}
	sb.mark = time.Now()
}

// setStage overwrites one stage with an externally measured duration.
func (sb *spanBuilder) setStage(st obs.Stage, d time.Duration) {
	if sb == nil {
		return
	}
	sb.span.Stages[st] = d
}

// setModel records the resolved model name.
func (sb *spanBuilder) setModel(name string) {
	if sb != nil {
		sb.span.Model = name
	}
}

// setCached flags a cache hit.
func (sb *spanBuilder) setCached(c bool) {
	if sb != nil {
		sb.span.Cached = c
	}
}

// setBatchSize records how many requests shared the fused batch (or
// the explicit batch size on the batch route).
func (sb *spanBuilder) setBatchSize(n int) {
	if sb != nil {
		sb.span.BatchSize = n
	}
}

// end finishes the span with the response status, hands it to the
// tracer, and recycles the builder. The builder must not be used
// afterwards.
func (s *Server) endSpan(sb *spanBuilder, status int) {
	if sb == nil {
		return
	}
	sb.span.Total = time.Since(sb.span.Start)
	sb.span.Status = status
	s.tracer.Record(sb.span)
	spanPool.Put(sb)
}
