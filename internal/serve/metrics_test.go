package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// SearchFloat64s puts v == bound into the bucket it bounds.
	want := []uint64{2, 1, 1, 2} // (<=1)=0.5,1  (<=10)=5  (<=100)=50  (+Inf)=500,1000
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 || s.Sum != 1556.5 {
		t.Fatalf("count %d sum %v", s.Count, s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets()...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count %d, want 8000", s.Count)
	}
	if s.Sum < 7.999 || s.Sum > 8.001 {
		t.Fatalf("sum %v, want ~8", s.Sum)
	}
}

func TestHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(2, 1)
}

// fakeUpdater satisfies Updater for endpoint tests without the full
// ingest pipeline.
type fakeUpdater struct {
	ack   UpdateAck
	err   error
	stats map[string]UpdaterStats
}

func (f *fakeUpdater) Enqueue(model string, insert, del [][]float64) (UpdateAck, error) {
	return f.ack, f.err
}
func (f *fakeUpdater) UpdaterStats() map[string]UpdaterStats { return f.stats }

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Batcher: BatcherConfig{MaxBatch: 4}, Cache: CacheConfig{Capacity: 16}})
	if _, err := s.Registry().Publish("m", tinyNet(1, 3), "mem"); err != nil {
		t.Fatal(err)
	}
	s.SetUpdater(&fakeUpdater{stats: map[string]UpdaterStats{
		"m": {QueueDepth: 2, QueueCapacity: 8, Lag: 2, Retrained: 1},
	}})

	// Generate some traffic so the histograms are non-empty.
	postJSON(t, ts.URL+"/v1/estimate", map[string]any{"model": "m", "query": []float64{0, 0, 0}, "t": 0.5})
	postJSON(t, ts.URL+"/v1/estimate", map[string]any{"model": "m", "query": []float64{0, 0, 0}, "t": 0.5})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	for _, want := range []string{
		"# TYPE selestd_http_request_duration_seconds histogram",
		`selestd_http_request_duration_seconds_bucket{route="/v1/estimate",le="+Inf"} 2`,
		`selestd_http_request_duration_seconds_count{route="/v1/estimate"} 2`,
		"# TYPE selestd_cache_hit_ratio gauge",
		"selestd_cache_hit_ratio 0.5",
		`selestd_model_generation{model="m"} 1`,
		`selestd_batcher_batch_size_count{model="m",lane="0"}`,
		`selestd_batcher_lane_batches_total{model="m",lane="0"}`,
		`selestd_ingest_queue_depth{model="m"} 2`,
		`selestd_ingest_retrained_total{model="m"} 1`,
		"selestd_http_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
	// HELP/TYPE headers must not repeat per label set.
	if n := strings.Count(body, "# TYPE selestd_http_request_duration_seconds histogram"); n != 1 {
		t.Fatalf("duration TYPE header appears %d times", n)
	}
}

func TestUpdateRouteStatuses(t *testing.T) {
	s, ts := newTestServer(t, Config{NoBatch: true})
	if _, err := s.Registry().Publish("m", tinyNet(2, 3), "mem"); err != nil {
		t.Fatal(err)
	}

	// No updater attached: 409.
	resp, _ := postJSON(t, ts.URL+"/v1/models/m/update", map[string]any{"insert": [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("no updater: status %d", resp.StatusCode)
	}

	fu := &fakeUpdater{ack: UpdateAck{Seq: 7, QueueDepth: 1}}
	s.SetUpdater(fu)

	// Unknown model: 404 (before the updater is consulted).
	resp, _ = postJSON(t, ts.URL+"/v1/models/nope/update", map[string]any{"insert": [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}

	// Malformed batch (the updater validates against its database and
	// wraps ErrInvalidUpdate): 400.
	fu.err = ErrInvalidUpdate
	resp, _ = postJSON(t, ts.URL+"/v1/models/m/update", map[string]any{"insert": [][]float64{{1, 2}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dim: status %d", resp.StatusCode)
	}
	fu.err = nil

	// Empty update: 400.
	resp, _ = postJSON(t, ts.URL+"/v1/models/m/update", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty: status %d", resp.StatusCode)
	}

	// Accepted: 202 with the ack echoed.
	var ack updateModelResponse
	resp, body := postJSON(t, ts.URL+"/v1/models/m/update", map[string]any{
		"insert": [][]float64{{1, 2, 3}}, "delete": [][]float64{{4, 5, 6}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("accepted: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatalf("unmarshal ack: %v", err)
	}
	if ack.Seq != 7 || ack.QueueDepth != 1 || ack.Model != "m" {
		t.Fatalf("ack %+v", ack)
	}

	// Backpressure: 429.
	fu.err = ErrUpdateQueueFull
	resp, _ = postJSON(t, ts.URL+"/v1/models/m/update", map[string]any{"insert": [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue full: status %d", resp.StatusCode)
	}

	// Not attached for updates: 409.
	fu.err = ErrNotUpdatable
	resp, _ = postJSON(t, ts.URL+"/v1/models/m/update", map[string]any{"insert": [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("not updatable: status %d", resp.StatusCode)
	}
}
