package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"selnet/internal/modelcodec"
	"selnet/internal/modeltest"
	"selnet/internal/tensor"
)

// The Estimator contract every servable kind must honor to sit behind
// the registry: scalar and batch estimation agree, the self-reported
// shape is sane, and concurrent reads are race-free (the registry
// hot-swaps models under live traffic, so estimators must be immutable
// once published). The suite runs over every kind the codec registers —
// adding a kind to modeltest.Builders enrolls it here automatically.

// kindsInOrder returns the builder map's keys sorted, so subtest order
// (and failure output) is stable across runs.
func kindsInOrder(builders map[string]func() modelcodec.Estimator) []string {
	kinds := make([]string, 0, len(builders))
	for k := range builders {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// probes builds a deterministic set of (query, threshold) pairs covering
// the estimator's input space, including the t=0 and t=TMax edges.
func probes(dim int, tmax float64) ([][]float64, []float64) {
	qs := make([][]float64, 0, 5)
	for i := 0; i < 5; i++ {
		q := make([]float64, dim)
		for j := range q {
			// Deterministic, varied, includes negatives.
			q[j] = math.Sin(float64(i*dim+j)+0.5) * 0.8
		}
		qs = append(qs, q)
	}
	ts := []float64{0, tmax * 0.25, tmax * 0.5, tmax * 0.75, tmax}
	return qs, ts
}

func TestEstimatorConformance(t *testing.T) {
	builders := modeltest.Builders()
	for _, kind := range kindsInOrder(builders) {
		build := builders[kind]
		t.Run(kind, func(t *testing.T) {
			est := Estimator(build())

			// Shape sanity: the registry and router both trust these.
			if est.Name() == "" {
				t.Error("Name() is empty")
			}
			if d := est.Dim(); d <= 0 {
				t.Errorf("Dim() = %d, want > 0", d)
			}
			if tm := est.TMax(); tm <= 0 || math.IsNaN(tm) || math.IsInf(tm, 0) {
				t.Errorf("TMax() = %g, want finite > 0", tm)
			}

			qs, ts := probes(est.Dim(), est.TMax())
			want := make([]float64, 0, len(qs)*len(ts))
			x := tensor.New(len(qs)*len(ts), est.Dim())
			tcol := make([]float64, 0, len(qs)*len(ts))
			for _, q := range qs {
				for _, tt := range ts {
					y := est.Estimate(q, tt)
					if math.IsNaN(y) || math.IsInf(y, 0) {
						t.Fatalf("Estimate(%v, %g) = %g, want finite", q, tt, y)
					}
					copy(x.Row(len(tcol)), q)
					tcol = append(tcol, tt)
					want = append(want, y)
				}
			}

			// EstimateBatch must agree with the scalar path pair-for-pair:
			// the server batches transparently, so a divergence would make
			// an estimate depend on traffic shape.
			got := est.EstimateBatch(x, tcol)
			if len(got) != len(want) {
				t.Fatalf("EstimateBatch returned %d estimates for %d pairs", len(got), len(want))
			}
			for i := range want {
				if diff := math.Abs(got[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
					t.Errorf("pair %d: batch %g vs scalar %g", i, got[i], want[i])
				}
			}

			// Concurrent reads must be race-free (run under -race in CI):
			// published estimators serve many goroutines at once.
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						q := qs[(w+i)%len(qs)]
						tt := ts[(w+i)%len(ts)]
						if y := est.Estimate(q, tt); math.IsNaN(y) {
							t.Errorf("concurrent Estimate returned NaN")
							return
						}
					}
				}(w)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 5; i++ {
						est.EstimateBatch(x, tcol)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestEveryKindServesOverHTTP is the fleet e2e: every estimator kind is
// saved with the kind-tagged codec, loaded through POST /v1/models,
// served through the batched estimate path, listed with its kind in
// GET /v1/models, and hot-swapped in place.
func TestEveryKindServesOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("fits one model per estimator kind")
	}
	_, ts := newTestServer(t, Config{
		Batcher: BatcherConfig{MaxBatch: 8, FlushInterval: time.Millisecond, Workers: 2},
		Cache:   CacheConfig{Capacity: 64},
	})
	dir := t.TempDir()
	builders := modeltest.Builders()
	kinds := kindsInOrder(builders)

	built := map[string]Estimator{}
	for _, kind := range kinds {
		est := builders[kind]()
		built[kind] = est
		path := filepath.Join(dir, kind+".gob")
		if err := modelcodec.SaveFile(path, est); err != nil {
			t.Fatalf("save %s: %v", kind, err)
		}
		resp, body := postJSON(t, ts.URL+"/v1/models/"+kind, map[string]string{"path": path})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("load %s: %d %s", kind, resp.StatusCode, body)
		}
	}

	// Every kind answers estimates through the batcher, agreeing with
	// the in-process model it round-tripped from.
	for _, kind := range kinds {
		est := built[kind]
		q := make([]float64, est.Dim())
		for j := range q {
			q[j] = 0.1 * float64(j+1)
		}
		tt := est.TMax() / 2
		var out struct {
			Estimate float64 `json:"estimate"`
		}
		resp, body := postJSON(t, ts.URL+"/v1/estimate",
			map[string]any{"model": kind, "query": q, "t": tt})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate via %s: %d %s", kind, resp.StatusCode, body)
		}
		mustUnmarshal(t, body, &out)
		if want := est.Estimate(q, tt); math.Abs(out.Estimate-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s over HTTP = %g, in-process %g", kind, out.Estimate, want)
		}
	}

	// The redesigned listing names each model's kind and architecture.
	var list struct {
		Models []struct {
			Name       string  `json:"name"`
			Kind       string  `json:"kind"`
			Estimator  string  `json:"estimator"`
			Dim        int     `json:"dim"`
			TMax       float64 `json:"t_max"`
			Generation uint64  `json:"generation"`
			Partitions int     `json:"partitions"`
		} `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/models", &list)
	if len(list.Models) != len(kinds) {
		t.Fatalf("listing has %d models, want %d", len(list.Models), len(kinds))
	}
	byName := map[string]int{}
	for i, m := range list.Models {
		byName[m.Name] = i
	}
	for _, kind := range kinds {
		i, ok := byName[kind]
		if !ok {
			t.Errorf("kind %s missing from listing", kind)
			continue
		}
		m := list.Models[i]
		if m.Kind != kind {
			t.Errorf("model %s listed with kind %q", kind, m.Kind)
		}
		if m.Estimator == "" || m.Dim != built[kind].Dim() || m.TMax != built[kind].TMax() {
			t.Errorf("model %s listing %+v disagrees with the estimator", kind, m)
		}
		if kind == "selnet-part" && m.Partitions == 0 {
			t.Errorf("partitioned model listed without a partition count")
		}
	}

	// Hot-swap: re-POST each file and the generation must advance while
	// serving continues (same bytes, new registry generation).
	for _, kind := range kinds {
		var mi struct {
			Generation uint64 `json:"generation"`
		}
		resp, body := postJSON(t, ts.URL+"/v1/models/"+kind,
			map[string]string{"path": filepath.Join(dir, kind+".gob")})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hot-swap %s: %d %s", kind, resp.StatusCode, body)
		}
		mustUnmarshal(t, body, &mi)
		if mi.Generation != 2 {
			t.Errorf("%s generation after swap = %d, want 2", kind, mi.Generation)
		}
	}
}

func mustUnmarshal(t *testing.T, body []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
}
