package serve

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selnet/internal/modelcodec"
	"selnet/internal/obs"
	"selnet/internal/tensor"
)

// RouterConfig selects a workload-routing policy for requests that do
// not name a concrete published model.
type RouterConfig struct {
	// Mode is the routing policy: "auto" (pick a backend per query from
	// database size, dimensionality and the VC sampling bound),
	// "ensemble" (fan each query across every dimension-compatible
	// model and blend in log space), or an explicit estimator-kind slug
	// ("selnet", "kde", "lsh", ...) pinning the virtual names to that
	// kind. Empty disables routing.
	Mode string
	// DimThreshold is the query dimensionality above which "auto"
	// prefers a SelNet-class model over sampling (default 8): in high
	// dimension the sampling estimators need prohibitively many probes
	// for the same guarantee.
	DimThreshold int
	// Epsilon and Delta parameterize the VC sampling bound
	// m* = (d + 1 + ln(1/delta)) / (2 epsilon^2): a sampling-backed
	// estimator whose data size is within m* is already an
	// (epsilon, delta)-approximation, so "auto" serves from it directly.
	// Both default to 0.05.
	Epsilon float64
	Delta   float64
}

// ValidRouterMode reports whether mode names a routing policy: "auto",
// "ensemble", or one of the estimator-kind slugs.
func ValidRouterMode(mode string) bool {
	switch mode {
	case "auto", "ensemble",
		"selnet", "selnet-part", "kde", "lsh", "gbm", "dnn", "moe", "rmi", "dln", "umnn":
		return true
	}
	return false
}

// Router resolves the virtual model names ("default" when no concrete
// model holds that name, and "auto") to a published model — or, in
// ensemble mode, to a virtual model fanning across members. Resolution
// is cached per registry-table version and per query dimension, so the
// steady-state route of an estimate request is two atomic loads and a
// map probe: no allocation, no lock.
type Router struct {
	cfg RouterConfig
	reg *Registry

	mu       sync.Mutex // serializes cache rebuilds and counter inserts
	cache    atomic.Pointer[routeCache]
	counters atomic.Pointer[map[decisionKey]*atomic.Uint64]
}

// routeCache is an immutable resolution snapshot: valid only while the
// registry's table pointer is unchanged, extended copy-on-write as new
// query dimensions appear.
type routeCache struct {
	table *map[string]*Model
	byDim map[int]*routeEntry
}

// routeEntry is one cached decision: the chosen model (possibly a
// virtual ensemble), the backend label for metrics, and the policy
// reason for /stats. err is set when no compatible model exists.
type routeEntry struct {
	m       *Model
	backend string
	reason  string
	err     error
}

type decisionKey struct {
	model   string // requested (virtual) name
	backend string // chosen backend: model name or "ensemble"
}

// NewRouter builds a router over reg. Zero-valued thresholds take the
// documented defaults; mode must already be validated.
func NewRouter(reg *Registry, cfg RouterConfig) *Router {
	if cfg.DimThreshold <= 0 {
		cfg.DimThreshold = 8
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.05
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 0.05
	}
	rt := &Router{cfg: cfg, reg: reg}
	empty := map[decisionKey]*atomic.Uint64{}
	rt.counters.Store(&empty)
	return rt
}

// Mode returns the configured routing policy.
func (rt *Router) Mode() string { return rt.cfg.Mode }

// Routes reports whether name is a virtual name this router resolves.
// The server consults it only after a registry miss, so a concrete
// model published under "default" always wins.
func (rt *Router) Routes(name string) bool {
	return name == "default" || name == "auto"
}

// SampleBound returns the VC sampling bound m* for queries of the given
// dimensionality: the sample size beyond which a sampling-backed
// estimator stops being preferable under the configured (epsilon, delta).
func (rt *Router) SampleBound(dim int) int {
	vc := float64(dim) + 1 // halfspace/ball range spaces over R^dim
	return int(math.Ceil((vc + math.Log(1/rt.cfg.Delta)) / (2 * rt.cfg.Epsilon * rt.cfg.Epsilon)))
}

// Route resolves the virtual name for a query of the given
// dimensionality and records the decision. The returned model remains
// valid even if members are hot-swapped afterwards, exactly like a
// registry Get.
func (rt *Router) Route(name string, dim int) (*Model, error) {
	e := rt.entry(dim)
	if e.err != nil {
		return nil, e.err
	}
	rt.record(name, e.backend)
	return e.m, nil
}

// entry returns the cached decision for dim, computing and caching it
// on first sight of a (table version, dim) pair.
func (rt *Router) entry(dim int) *routeEntry {
	table := rt.reg.table.Load()
	c := rt.cache.Load()
	if c != nil && c.table == table {
		if e, ok := c.byDim[dim]; ok {
			return e
		}
	}
	return rt.resolveSlow(table, dim)
}

// resolveSlow computes the decision for dim under the writer lock and
// publishes an extended cache. The registry may publish concurrently;
// the double-check against the current table pointer keeps a stale
// snapshot from being re-published over a fresher one.
func (rt *Router) resolveSlow(table *map[string]*Model, dim int) *routeEntry {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if cur := rt.reg.table.Load(); cur != table {
		table = cur
	}
	c := rt.cache.Load()
	if c == nil || c.table != table {
		c = &routeCache{table: table, byDim: map[int]*routeEntry{}}
	} else if e, ok := c.byDim[dim]; ok {
		return e
	}
	e := rt.decide(*table, dim)
	next := &routeCache{table: table, byDim: make(map[int]*routeEntry, len(c.byDim)+1)}
	for d, old := range c.byDim {
		next.byDim[d] = old
	}
	next.byDim[dim] = e
	rt.cache.Store(next)
	return e
}

// decide applies the routing policy to one (table, dim) pair.
func (rt *Router) decide(table map[string]*Model, dim int) *routeEntry {
	candidates := make([]*Model, 0, len(table))
	for _, m := range table {
		if m.Est.Dim() == dim {
			candidates = append(candidates, m)
		}
	}
	if len(candidates) == 0 {
		return &routeEntry{err: fmt.Errorf("router: no model accepts dim-%d queries", dim)}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Name < candidates[j].Name })

	switch mode := rt.cfg.Mode; {
	case mode == "ensemble":
		if len(candidates) == 1 {
			m := candidates[0]
			return &routeEntry{m: m, backend: m.Name, reason: "ensemble of one: direct"}
		}
		return &routeEntry{
			m:       newEnsembleModel(candidates),
			backend: "ensemble",
			reason:  fmt.Sprintf("ensemble over %d dim-%d models", len(candidates), dim),
		}
	case mode == "auto":
		return rt.decideAuto(candidates, dim)
	default: // explicit kind
		for _, m := range candidates {
			if kindMatches(mode, modelcodec.Kind(m.Est)) {
				return &routeEntry{m: m, backend: m.Name,
					reason: fmt.Sprintf("pinned kind %q", mode)}
			}
		}
		return &routeEntry{err: fmt.Errorf("router: no dim-%d model of kind %q", dim, mode)}
	}
}

// decideAuto picks a backend from dimensionality and the VC sampling
// bound: high-dimensional queries go to a SelNet-class model, and
// low-dimensional ones to the smallest sampling-backed estimator whose
// data size is within the (epsilon, delta) bound — sampling that little
// data is already an epsilon-approximation, so the learned model buys
// nothing. Anything else falls through to SelNet, then to the first
// candidate by name.
func (rt *Router) decideAuto(candidates []*Model, dim int) *routeEntry {
	var selnetClass, sampling *Model
	samplingSize := 0
	for _, m := range candidates {
		switch kind := modelcodec.Kind(m.Est); {
		case strings.HasPrefix(kind, "selnet"):
			if selnetClass == nil {
				selnetClass = m
			}
		default:
			ds, ok := m.Est.(interface{ DataSize() int })
			if ok && (sampling == nil || ds.DataSize() < samplingSize) {
				sampling, samplingSize = m, ds.DataSize()
			}
		}
	}
	bound := rt.SampleBound(dim)
	switch {
	case dim > rt.cfg.DimThreshold && selnetClass != nil:
		return &routeEntry{m: selnetClass, backend: selnetClass.Name,
			reason: fmt.Sprintf("dim %d > %d: selnet-class", dim, rt.cfg.DimThreshold)}
	case dim <= rt.cfg.DimThreshold && sampling != nil && samplingSize <= bound:
		return &routeEntry{m: sampling, backend: sampling.Name,
			reason: fmt.Sprintf("data size %d <= vc bound %d: sampling-class", samplingSize, bound)}
	case selnetClass != nil:
		return &routeEntry{m: selnetClass, backend: selnetClass.Name,
			reason: fmt.Sprintf("data size exceeds vc bound %d: selnet-class", bound)}
	default:
		m := candidates[0]
		return &routeEntry{m: m, backend: m.Name, reason: "fallback: first compatible model"}
	}
}

// kindMatches reports whether a model kind satisfies the pinned mode;
// "selnet" covers the partitioned variant too.
func kindMatches(mode, kind string) bool {
	return mode == kind || (mode == "selnet" && kind == "selnet-part")
}

// record bumps the {model, backend} decision counter; copy-on-write on
// first sight of a pair, a single atomic add afterwards.
func (rt *Router) record(model, backend string) {
	key := decisionKey{model: model, backend: backend}
	if c, ok := (*rt.counters.Load())[key]; ok {
		c.Add(1)
		return
	}
	rt.mu.Lock()
	cur := *rt.counters.Load()
	c, ok := cur[key]
	if !ok {
		next := make(map[decisionKey]*atomic.Uint64, len(cur)+1)
		for k, v := range cur {
			next[k] = v
		}
		c = new(atomic.Uint64)
		next[key] = c
		rt.counters.Store(&next)
	}
	rt.mu.Unlock()
	c.Add(1)
}

// RouterDecision is one {requested name, chosen backend} counter.
type RouterDecision struct {
	Model   string `json:"model"`
	Backend string `json:"backend"`
	Count   uint64 `json:"count"`
}

// RouterAssignment is one cached routing decision, per query dimension.
type RouterAssignment struct {
	Dim     int    `json:"dim"`
	Backend string `json:"backend,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Error   string `json:"error,omitempty"`
}

// RouterStats is the /stats "router" section.
type RouterStats struct {
	Mode         string             `json:"mode"`
	DimThreshold int                `json:"dim_threshold"`
	Epsilon      float64            `json:"epsilon"`
	Delta        float64            `json:"delta"`
	Assignments  []RouterAssignment `json:"assignments,omitempty"`
	Decisions    []RouterDecision   `json:"decisions,omitempty"`
}

// Stats snapshots the routing table and decision counters.
func (rt *Router) Stats() RouterStats {
	st := RouterStats{
		Mode:         rt.cfg.Mode,
		DimThreshold: rt.cfg.DimThreshold,
		Epsilon:      rt.cfg.Epsilon,
		Delta:        rt.cfg.Delta,
	}
	if c := rt.cache.Load(); c != nil && c.table == rt.reg.table.Load() {
		for dim, e := range c.byDim {
			a := RouterAssignment{Dim: dim, Backend: e.backend, Reason: e.reason}
			if e.err != nil {
				a.Error = e.err.Error()
			}
			st.Assignments = append(st.Assignments, a)
		}
		sort.Slice(st.Assignments, func(i, j int) bool { return st.Assignments[i].Dim < st.Assignments[j].Dim })
	}
	for key, c := range *rt.counters.Load() {
		st.Decisions = append(st.Decisions, RouterDecision{Model: key.model, Backend: key.backend, Count: c.Load()})
	}
	sort.Slice(st.Decisions, func(i, j int) bool {
		if st.Decisions[i].Model != st.Decisions[j].Model {
			return st.Decisions[i].Model < st.Decisions[j].Model
		}
		return st.Decisions[i].Backend < st.Decisions[j].Backend
	})
	return st
}

// Assignment returns the backends name currently routes to, as "reason"
// strings keyed by the cached dims, for the /v1/models listing. Empty
// when the model is not a routing target.
func (rt *Router) Assignment(model string) []string {
	c := rt.cache.Load()
	if c == nil || c.table != rt.reg.table.Load() {
		return nil
	}
	var out []string
	dims := make([]int, 0, len(c.byDim))
	for dim := range c.byDim {
		dims = append(dims, dim)
	}
	sort.Ints(dims)
	for _, dim := range dims {
		e := c.byDim[dim]
		if e.err != nil {
			continue
		}
		if e.backend == model {
			out = append(out, fmt.Sprintf("dim=%d", dim))
		} else if e.backend == "ensemble" {
			if ens, ok := e.m.Est.(*ensembleEstimator); ok {
				for _, n := range ens.names {
					if n == model {
						out = append(out, fmt.Sprintf("dim=%d (ensemble)", dim))
						break
					}
				}
			}
		}
	}
	return out
}

// WriteMetrics renders the router's Prometheus families.
func (rt *Router) WriteMetrics(p *obs.PromWriter) {
	st := rt.Stats()
	p.Value("selestd_router_enabled", "1 when a workload router is attached.", "gauge", 1)
	for _, d := range st.Decisions {
		p.Value("selestd_router_decisions_total", "Routing decisions by requested name and chosen backend.",
			"counter", float64(d.Count), "model", d.Model, "backend", d.Backend)
	}
}

// ----------------------------------------------------------------------------
// Ensemble

// logBlendEps floors member estimates away from zero so the log-space
// blend is finite; it is subtracted back out, so a unanimous zero still
// blends to zero.
const logBlendEps = 1e-9

// ensembleEstimator fans a query across every member and blends the
// answers with a geometric mean in log space — selectivities span
// orders of magnitude, so averaging logs (rather than values) keeps one
// large member from drowning out the rest, mirroring how the training
// objective treats relative error.
type ensembleEstimator struct {
	members []Estimator
	names   []string
	dim     int
	tmax    float64
}

func newEnsembleModel(members []*Model) *Model {
	ens := &ensembleEstimator{dim: members[0].Est.Dim()}
	h := fnv.New64a()
	for _, m := range members {
		ens.members = append(ens.members, m.Est)
		ens.names = append(ens.names, m.Name)
		ens.tmax = math.Max(ens.tmax, m.Est.TMax())
		fmt.Fprintf(h, "%s@%d;", m.Name, m.Generation)
	}
	return &Model{
		Name: "ensemble",
		Est:  ens,
		// The generation folds every member's name and generation, so
		// hot-swapping any member changes the cache-key space.
		Generation: h.Sum64(),
		Source:     "router",
		LoadedAt:   time.Now(),
	}
}

func (e *ensembleEstimator) Estimate(x []float64, t float64) float64 {
	sum := 0.0
	for _, m := range e.members {
		sum += math.Log(math.Max(m.Estimate(x, t), 0) + logBlendEps)
	}
	return math.Max(math.Exp(sum/float64(len(e.members)))-logBlendEps, 0)
}

func (e *ensembleEstimator) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	acc := make([]float64, len(ts))
	for _, m := range e.members {
		for i, v := range m.EstimateBatch(x, ts) {
			acc[i] += math.Log(math.Max(v, 0) + logBlendEps)
		}
	}
	for i := range acc {
		acc[i] = math.Max(math.Exp(acc[i]/float64(len(e.members)))-logBlendEps, 0)
	}
	return acc
}

func (e *ensembleEstimator) Dim() int      { return e.dim }
func (e *ensembleEstimator) TMax() float64 { return e.tmax }
func (e *ensembleEstimator) Name() string  { return "Ensemble" }

var _ Estimator = (*ensembleEstimator)(nil)
