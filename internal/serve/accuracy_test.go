package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"selnet/internal/obs"
	"selnet/internal/tensor"
)

// regionEstimator is a fake estimator that also implements
// PartitionLocator: region = 0 for x[0] < 0, 1 otherwise.
type regionEstimator struct{ v float64 }

func (e regionEstimator) Estimate(x []float64, t float64) float64 { return e.v }
func (e regionEstimator) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	out := make([]float64, len(ts))
	for i := range out {
		out[i] = e.v
	}
	return out
}
func (e regionEstimator) Dim() int      { return 2 }
func (e regionEstimator) TMax() float64 { return 1 }
func (e regionEstimator) Name() string  { return "fake" }
func (e regionEstimator) PartitionOf(x []float64, t float64) int {
	if x[0] < 0 {
		return 0
	}
	return 1
}

// fixedOracle answers every ground-truth query with a constant.
type fixedOracle struct{ v float64 }

func (o fixedOracle) TrueSelectivity([]float64, float64) (float64, string) { return o.v, "exact" }

// newShadowServer builds a server with an always-sampling shadow scorer
// attached before the handler is constructed (the /debug/accuracy route
// is registered only when a shadow is present).
func newShadowServer(t *testing.T) (*Server, *obs.Shadow, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{
		Batcher: BatcherConfig{MaxBatch: 4, FlushInterval: time.Millisecond, Workers: 1},
	})
	wl := obs.NewWorkloadMonitor(obs.WorkloadConfig{Threshold: 0.9, MinSamples: 1})
	wl.SetBaseline("default", [][]float64{{0, 0}, {1, 1}, {-1, -1}}, []float64{0.1, 0.2, 0.3})
	sh := obs.NewShadow(obs.ShadowConfig{SampleRate: 1, QueueDepth: 1024, Workload: wl})
	sh.SetOracle("default", fixedOracle{v: 50})
	s.SetShadow(sh)
	s.SetTracer(obs.NewTracer(obs.TracerConfig{SlowThreshold: time.Nanosecond}))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		sh.Close()
		s.Close()
	})
	if _, err := s.Registry().Publish("default", regionEstimator{v: 100}, "test"); err != nil {
		t.Fatal(err)
	}
	return s, sh, ts
}

func waitForSamples(t *testing.T, url string, want uint64) accuracyResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var acc accuracyResponse
	for time.Now().Before(deadline) {
		getJSON(t, url+"/debug/accuracy", &acc)
		if st, ok := acc.Models["default"]; ok && st.Samples >= want {
			return acc
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("shadow never scored %d samples: %+v", want, acc)
	return acc
}

func TestAccuracyEndpoint(t *testing.T) {
	_, sh, ts := newShadowServer(t)

	// Drive estimates on both sides of the region split and across
	// threshold bands; every one is sampled (rate 1).
	for i := 0; i < 16; i++ {
		x0 := 1.0
		if i%2 == 0 {
			x0 = -1.0
		}
		tq := 0.05 + float64(i%4)*0.3
		resp, body := postJSON(t, ts.URL+"/v1/estimate",
			estimateRequest{Model: "default", Query: []float64{x0, 0.5}, T: tq})
		if resp.StatusCode != 200 {
			t.Fatalf("estimate %d: %d %s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Trace-Id") == "" {
			t.Fatal("shadow-enabled server must mint trace IDs")
		}
	}

	acc := waitForSamples(t, ts.URL, 16)
	if acc.Sampler.Sampled < 16 {
		t.Fatalf("sampler.sampled = %d, want >= 16", acc.Sampler.Sampled)
	}
	if acc.Sampler.Oracles["exact"] < 16 {
		t.Fatalf("oracle methods = %v", acc.Sampler.Oracles)
	}
	st := acc.Models["default"]
	if st.P50 != 2 || st.Max != 2 { // estimate 100 vs truth 50
		t.Fatalf("q-error quantiles = %+v, want 2 across the board", st)
	}
	if len(st.Buckets) < 2 {
		t.Fatalf("threshold-bucket breakdown = %v, want multiple bands", st.Buckets)
	}
	// Both regions of the fake locator must appear.
	if len(st.Partitions) != 2 || st.Partitions["0"].Count == 0 || st.Partitions["1"].Count == 0 {
		t.Fatalf("partition breakdown = %v, want regions 0 and 1", st.Partitions)
	}
	if len(st.Worst) == 0 {
		t.Fatal("worst-N list empty")
	}
	for _, w := range st.Worst {
		if len(w.TraceID) != 16 || w.TraceID == strings.Repeat("0", 16) {
			t.Fatalf("worst entry lacks a real trace ID: %+v", w)
		}
	}
	// Workload detector saw the same stream.
	if acc.Workload["default"].LiveSamples < 16 {
		t.Fatalf("workload stats = %+v", acc.Workload)
	}

	// /stats mirrors the summary sections.
	var stats statsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Shadow == nil || stats.Shadow.Sampled < 16 {
		t.Fatalf("/stats shadow section = %+v", stats.Shadow)
	}
	if stats.Workload["default"].LiveSamples < 16 {
		t.Fatalf("/stats workload section = %+v", stats.Workload)
	}

	// /metrics exposes the new families.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	text := string(buf[:n])
	for _, fam := range []string{
		"selestd_shadow_qerror{",
		"selestd_shadow_partition_qerror{",
		"selestd_shadow_samples_total{",
		"selestd_shadow_sampled_total",
		"selestd_shadow_dropped_total",
		"selestd_workload_divergence{",
		"selestd_workload_shift_exceeded_total{",
	} {
		if !strings.Contains(text, fam) {
			t.Fatalf("/metrics missing %s", fam)
		}
	}
	_ = sh
}

func TestAccuracyEndpointLimitAndContentType(t *testing.T) {
	_, _, ts := newShadowServer(t)
	for i := 0; i < 8; i++ {
		postJSON(t, ts.URL+"/v1/estimate",
			estimateRequest{Model: "default", Query: []float64{1, float64(i)}, T: 0.2})
	}
	waitForSamples(t, ts.URL, 8)

	var acc accuracyResponse
	resp := getJSON(t, ts.URL+"/debug/accuracy?limit=1", &acc)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("accuracy Content-Type = %q", ct)
	}
	if got := len(acc.Models["default"].Worst); got != 1 {
		t.Fatalf("limit=1 worst len = %d", got)
	}

	for _, bad := range []string{"x", "0", "-3"} {
		r, err := http.Get(ts.URL + "/debug/accuracy?limit=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("limit=%q status = %d, want 400", bad, r.StatusCode)
		}
	}
}

func TestTracesLimitAndContentType(t *testing.T) {
	_, _, ts := newShadowServer(t)
	for i := 0; i < 10; i++ {
		postJSON(t, ts.URL+"/v1/estimate",
			estimateRequest{Model: "default", Query: []float64{1, 1}, T: 0.2})
	}
	var tr tracesResponse
	resp := getJSON(t, ts.URL+"/debug/traces?limit=3", &tr)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("traces Content-Type = %q", ct)
	}
	if len(tr.Recent) > 3 || len(tr.Slow) > 3 {
		t.Fatalf("limit=3 returned %d recent / %d slow", len(tr.Recent), len(tr.Slow))
	}
	r, err := http.Get(ts.URL + "/debug/traces?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", r.StatusCode)
	}
}

func TestAccuracyBatchSampling(t *testing.T) {
	// Batch estimates are salted per query: with rate 1 every query in
	// the batch is scored independently.
	_, _, ts := newShadowServer(t)
	queries := make([][]float64, 12)
	tqs := make([]float64, 12)
	for i := range queries {
		queries[i] = []float64{float64(i%3) - 1, 0.5}
		tqs[i] = 0.2
	}
	resp, body := postJSON(t, ts.URL+"/v1/estimate/batch",
		estimateBatchRequest{Model: "default", Queries: queries, Ts: tqs})
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	acc := waitForSamples(t, ts.URL, 12)
	if got := acc.Models["default"].Samples; got != 12 {
		t.Fatalf("batch scored %d samples, want 12", got)
	}
}

func TestAccuracyRouteAbsentWithoutShadow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r, err := http.Get(ts.URL + "/debug/accuracy")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("accuracy without shadow = %d, want 404", r.StatusCode)
	}
}
