package serve

import (
	"io"

	"selnet/internal/obs"
)

// Histogram and friends moved to internal/obs so the observability
// layer (trace ring, drift monitor) can record into them without an
// import cycle; serve keeps aliases because its public API and the
// /metrics exposition predate the move.

// Histogram is a fixed-bucket, lock-free histogram (see obs.Histogram).
type Histogram = obs.Histogram

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
type HistogramSnapshot = obs.HistogramSnapshot

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram { return obs.NewHistogram(bounds...) }

// LatencyBuckets are the default request-duration bounds (seconds),
// log-spaced from 5µs to 2.5s. The low end resolves the ~15µs
// plan-path hot path that the original 100µs floor collapsed into a
// single bucket.
func LatencyBuckets() []float64 { return obs.LatencyBuckets() }

// BatchSizeBuckets are the default bounds for batch-size histograms.
func BatchSizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128}
}

// newPromWriter starts one Prometheus text exposition pass.
func newPromWriter(w io.Writer) *obs.PromWriter { return obs.NewPromWriter(w) }
