package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"selnet/internal/infer"
	"selnet/internal/modelcodec"
	"selnet/internal/obs"
	"selnet/internal/tensor"
)

// Config assembles a Server.
type Config struct {
	// Batcher tunes the per-model request coalescer.
	Batcher BatcherConfig
	// Cache tunes the shared estimate cache (Capacity 0 disables it).
	Cache CacheConfig
	// NoBatch disables coalescing: single estimates run inline on the
	// caller's goroutine. Used by the naive arm of the serving benchmark.
	NoBatch bool
	// RetryAfter is the backoff hint stamped on 429 backpressure and
	// leaderless-503 responses (default 1s).
	RetryAfter time.Duration
	// ForwardClient overrides the HTTP client used to proxy requests to
	// other cluster nodes (tests inject short timeouts).
	ForwardClient *http.Client
}

// Server is the HTTP model-serving front end: it owns the model
// registry, the per-model coalescers, and the estimate cache, and
// exposes them as a JSON API (see Handler for routes).
type Server struct {
	cfg      Config
	registry *Registry
	cache    *Cache
	updater  Updater
	started  time.Time
	tracer   *obs.Tracer
	drift    *obs.DriftMonitor
	shadow   *obs.Shadow
	logger   *slog.Logger
	cluster  ClusterRouter
	router   *Router

	requests atomic.Uint64 // HTTP requests accepted
	errors   atomic.Uint64 // requests answered 4xx/5xx
	swaps    atomic.Uint64 // registry hot-swaps (replacing publishes)
	latency  map[string]*Histogram
}

// NewServer builds a server with an empty registry.
func NewServer(cfg Config) *Server {
	s := &Server{cfg: cfg, started: time.Now()}
	var nb func(Estimator) *Batcher
	if !cfg.NoBatch {
		nb = func(est Estimator) *Batcher { return NewBatcher(est, cfg.Batcher) }
	}
	s.registry = NewRegistry(nb)
	s.registry.SetSwapHook(func(name string, old, next *Model) {
		if old != nil && next != nil {
			s.swaps.Add(1)
		}
	})
	s.cache = NewCache(cfg.Cache)
	s.latency = make(map[string]*Histogram)
	return s
}

// Registry exposes the model registry (the daemon preloads models
// through it).
func (s *Server) Registry() *Registry { return s.registry }

// SetUpdater attaches the update pipeline behind
// POST /v1/models/{name}/update. Call before Handler sees traffic;
// without one, update requests are answered 409.
func (s *Server) SetUpdater(u Updater) { s.updater = u }

// SetRouter attaches a workload router: requests naming "default" (with
// no concrete model published under that name) or "auto" resolve
// through it instead of answering 404. Install before serving traffic.
func (s *Server) SetRouter(rt *Router) { s.router = rt }

// Router returns the attached workload router, or nil.
func (s *Server) Router() *Router { return s.router }

// SetTracer attaches the request tracer: spans are captured through
// the estimate path, served at GET /debug/traces, and exported as
// per-stage histograms in /metrics. Call before Handler sees traffic;
// without one, tracing is compiled out of the request path (a single
// nil check per handler).
func (s *Server) SetTracer(t *obs.Tracer) { s.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SetDrift attaches the accuracy drift monitor so /stats and /metrics
// surface rolling q-error quantiles (the ingest pipeline feeds it).
// Call before Handler sees traffic.
func (s *Server) SetDrift(d *obs.DriftMonitor) { s.drift = d }

// PartitionLocator is the optional attribution surface of partitioned
// estimators: PartitionOf maps a query to the cluster that owns it (-1
// when the partitioning carries no geometry). *selnet.Partitioned
// implements it; the shadow scorer uses it to break q-errors down by
// region.
type PartitionLocator interface {
	PartitionOf(x []float64, t float64) int
}

// SetShadow attaches the live-traffic accuracy sampler: a deterministic
// fraction of estimate requests is tapped (keyed by trace ID, enqueued
// without blocking) and scored against ground truth off the serving
// path, served at GET /debug/accuracy and in /stats + /metrics. The
// server installs a partition locator so samples from partitioned
// models are attributed to regions. Call before Handler sees traffic;
// without one, the tap is compiled out of the request path (a single
// nil check per handler).
func (s *Server) SetShadow(sh *obs.Shadow) {
	s.shadow = sh
	if sh == nil {
		return
	}
	sh.SetLocate(func(model string, x []float64, t float64) (int, bool) {
		m, ok := s.registry.Get(model)
		if !ok {
			return 0, false
		}
		pl, ok := m.Est.(PartitionLocator)
		if !ok {
			return 0, false
		}
		p := pl.PartitionOf(x, t)
		return p, p >= 0
	})
}

// Shadow returns the attached sampler (nil when shadow scoring is off).
func (s *Server) Shadow() *obs.Shadow { return s.shadow }

// SetAccessLog enables structured per-request logging (method, path,
// status, duration, trace ID) through l. Call before Handler sees
// traffic.
func (s *Server) SetAccessLog(l *slog.Logger) { s.logger = l }

// Close drains every model's in-flight batches and releases the worker
// pools. Call after the HTTP listener has stopped accepting requests.
func (s *Server) Close() { s.registry.Close() }

// Handler returns the route table:
//
//	GET  /healthz                     liveness probe
//	GET  /stats                       server, cache, ingest, per-model counters
//	GET  /metrics                     Prometheus text exposition
//	GET  /debug/traces                recent + slowest request spans (tracer attached)
//	GET  /debug/accuracy              shadow-scored q-error breakdowns (shadow attached)
//	GET  /v1/buildinfo                binary version, go version, uptime
//	GET  /v1/models                   list published models
//	POST /v1/models/{name}            load/hot-swap a .gob model: {"path": "..."}
//	POST /v1/models/{name}/update     journal an insert/delete batch
//	POST /v1/estimate                 {"model","query","t"} -> one estimate
//	POST /v1/estimate/batch           {"model","queries",["ts"|"t"]} -> estimates
//	GET  /v1/cluster                  shard map: model -> replicas/leader (cluster attached)
//	GET  /v1/cluster/...              intra-cluster API: peer state, WAL streaming
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.timed("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /stats", s.timed("/stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.timed("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/buildinfo", s.timed("/v1/buildinfo", s.handleBuildInfo))
	mux.HandleFunc("GET /v1/models", s.timed("/v1/models", s.handleListModels))
	mux.HandleFunc("POST /v1/models/{name}", s.timed("/v1/models/{name}", s.handleLoadModel))
	mux.HandleFunc("POST /v1/models/{name}/update", s.timed("/v1/models/{name}/update", s.routeWrite(s.handleUpdateModel)))
	mux.HandleFunc("POST /v1/estimate", s.timed("/v1/estimate", s.routeRead(s.handleEstimate)))
	mux.HandleFunc("POST /v1/estimate/batch", s.timed("/v1/estimate/batch", s.routeRead(s.handleEstimateBatch)))
	if s.cluster != nil {
		mux.HandleFunc("GET /v1/cluster", s.timed("/v1/cluster", s.handleClusterMap))
		mux.Handle("/v1/cluster/", s.cluster.Handler())
	}
	if s.tracer != nil {
		mux.HandleFunc("GET /debug/traces", s.timed("/debug/traces", s.handleTraces))
	}
	if s.shadow != nil {
		mux.HandleFunc("GET /debug/accuracy", s.timed("/debug/accuracy", s.handleAccuracy))
	}
	return s.count(mux)
}

// timed wraps a handler with the route's latency histogram. Handler
// registration happens before traffic, so the map needs no lock.
func (s *Server) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := NewHistogram(LatencyBuckets()...)
	s.latency[route] = hist
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
	}
}

// count wraps the mux with the request/error counters, assigns each
// request a trace ID (echoed as X-Trace-Id and attached to the
// context for span capture), and emits the structured access log.
func (s *Server) count(next http.Handler) http.Handler {
	// Shadow sampling keys off the trace ID, so an attached sampler also
	// turns on ID minting even without a tracer or access log; a cluster
	// router does too, so every hop of a forwarded request shares one ID.
	traced := s.tracer != nil || s.logger != nil || s.shadow.Enabled() || s.cluster != nil
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		var id uint64
		var start time.Time
		if traced {
			if hopCount(r) > 0 {
				// A request forwarded by a peer already carries a trace ID;
				// adopt it so cross-node spans line up under one ID.
				id, _ = obs.ParseTraceID(r.Header.Get("X-Trace-Id"))
			}
			if id == 0 {
				id = obs.NextTraceID()
			}
			cw.Header().Set("X-Trace-Id", obs.FormatTraceID(id))
			r = r.WithContext(obs.WithTraceID(r.Context(), id))
			start = time.Now()
		}
		next.ServeHTTP(cw, r)
		if cw.code >= 400 {
			s.errors.Add(1)
		}
		if s.logger != nil {
			lvl := slog.LevelInfo
			if cw.code >= 400 {
				lvl = slog.LevelWarn
			}
			s.logger.LogAttrs(r.Context(), lvl, "request",
				slog.String("trace_id", obs.FormatTraceID(id)),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", cw.code),
				slog.Duration("duration", time.Since(start)))
		}
	})
}

type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ----------------------------------------------------------------------------
// Wire types

type estimateRequest struct {
	Model string    `json:"model"`
	Query []float64 `json:"query"`
	T     float64   `json:"t"`
}

type estimateResponse struct {
	Model    string  `json:"model"`
	Estimate float64 `json:"estimate"`
	T        float64 `json:"t"`
	Cached   bool    `json:"cached"`
}

type estimateBatchRequest struct {
	Model   string      `json:"model"`
	Queries [][]float64 `json:"queries"`
	// Ts gives one threshold per query; alternatively T broadcasts a
	// single threshold to every query.
	Ts []float64 `json:"ts,omitempty"`
	T  *float64  `json:"t,omitempty"`
}

type estimateBatchResponse struct {
	Model     string    `json:"model"`
	Estimates []float64 `json:"estimates"`
}

type loadModelRequest struct {
	Path string `json:"path"`
}

type updateModelRequest struct {
	// Insert holds vectors to add; Delete holds vectors to remove,
	// matched by value (absent vectors are ignored).
	Insert [][]float64 `json:"insert,omitempty"`
	Delete [][]float64 `json:"delete,omitempty"`
}

type updateModelResponse struct {
	Model string `json:"model"`
	// Seq is the journal sequence assigned to this batch; compare against
	// the model's applied_seq in /stats to see when it has taken effect.
	Seq        uint64 `json:"seq"`
	QueueDepth int    `json:"queue_depth"`
}

type modelInfo struct {
	Name string `json:"name"`
	// Kind is the codec slug ("selnet", "kde", ...); Estimator is the
	// model's self-reported architecture name ("SelNet-ct", "KDE", ...).
	Kind       string    `json:"kind"`
	Estimator  string    `json:"estimator"`
	Dim        int       `json:"dim"`
	TMax       float64   `json:"t_max"`
	Source     string    `json:"source,omitempty"`
	Generation uint64    `json:"generation"`
	LoadedAt   time.Time `json:"loaded_at"`
	// Partitions is the local-model count for partitioned estimators.
	Partitions int `json:"partitions,omitempty"`
	// Router lists the virtual routes currently resolving to this model
	// (e.g. "dim=3"), when a workload router is attached.
	Router  []string      `json:"router,omitempty"`
	Batcher *BatcherStats `json:"batcher,omitempty"`
	// Plans reports the model's compiled-plan pool counters (checkouts,
	// pool misses, compiles, drops) when the estimator runs on the plan
	// engine.
	Plans *infer.PoolStats `json:"plans,omitempty"`
}

type statsResponse struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Requests      uint64                  `json:"requests"`
	Errors        uint64                  `json:"errors"`
	Swaps         uint64                  `json:"swaps"`
	Build         obs.BuildInfo           `json:"build"`
	Cache         CacheStats              `json:"cache"`
	Models        []modelInfo             `json:"models"`
	Ingest        map[string]UpdaterStats `json:"ingest,omitempty"`
	Trace         *obs.TracerStats        `json:"trace,omitempty"`
	// Kernels reports process-wide per-kernel plan-execution time
	// (present once kernel timing has recorded at least one call).
	Kernels []infer.KernelStat        `json:"kernels,omitempty"`
	Drift   map[string]obs.DriftStats `json:"drift,omitempty"`
	// Shadow and Workload surface the live-traffic accuracy sampler
	// when one is attached (full detail lives at /debug/accuracy).
	Shadow   *obs.ShadowStats             `json:"shadow,omitempty"`
	Workload map[string]obs.WorkloadStats `json:"workload,omitempty"`
	// Cluster is the per-model replication picture (leadership, terms,
	// follower lag) when a cluster router is attached; its concrete type
	// lives in internal/cluster.
	Cluster any `json:"cluster,omitempty"`
	// Router reports the workload router's policy, cached assignments
	// and decision counters when one is attached.
	Router *RouterStats `json:"router,omitempty"`
}

type tracesResponse struct {
	Stats  obs.TracerStats `json:"stats"`
	Recent []obs.Span      `json:"recent"`
	Slow   []obs.Span      `json:"slow"`
}

type accuracyResponse struct {
	Sampler  obs.ShadowStats              `json:"sampler"`
	Models   map[string]obs.AccuracyStats `json:"models"`
	Workload map[string]obs.WorkloadStats `json:"workload,omitempty"`
}

// errorResponse is the uniform error envelope every handler returns:
// {"error":{"code","message","retry_after_ms"}}. Code is a stable
// machine-readable slug; RetryAfterMS mirrors the Retry-After header on
// backpressure and failover responses so clients need not parse headers.
type errorResponse struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// ----------------------------------------------------------------------------
// Handlers

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.registry.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		Swaps:         s.swaps.Load(),
		Build:         obs.ReadBuildInfo(s.started),
		Cache:         s.cache.Stats(),
		Models:        s.modelInfos(true),
	}
	if s.updater != nil {
		resp.Ingest = s.updater.UpdaterStats()
	}
	if s.tracer != nil {
		ts := s.tracer.Stats()
		resp.Trace = &ts
	}
	if ks := infer.KernelStats(); len(ks) > 0 {
		total := uint64(0)
		for _, k := range ks {
			total += k.Calls
		}
		if total > 0 {
			resp.Kernels = ks
		}
	}
	if s.drift != nil {
		if ds := s.drift.Stats(); len(ds) > 0 {
			resp.Drift = ds
		}
	}
	if s.shadow != nil {
		ss := s.shadow.Stats()
		resp.Shadow = &ss
		if wl := s.shadow.Workload(); wl != nil {
			if ws := wl.Stats(); len(ws) > 0 {
				resp.Workload = ws
			}
		}
	}
	if s.cluster != nil {
		resp.Cluster = s.cluster.ClusterStats()
	}
	if s.router != nil {
		rs := s.router.Stats()
		resp.Router = &rs
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.ReadBuildInfo(s.started))
}

// parseLimit reads ?limit=N (positive integer). ok is false — and a
// 400 has been written — when the parameter is present but invalid.
func parseLimit(w http.ResponseWriter, r *http.Request, def int) (limit int, ok bool) {
	q := r.URL.Query().Get("limit")
	if q == "" {
		return def, true
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
		return 0, false
	}
	return n, true
}

// handleTraces serves the tracer's recent and slowest spans.
// ?limit=N caps both lists (default 50 recent, all slow).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit, ok := parseLimit(w, r, 50)
	if !ok {
		return
	}
	slow := s.tracer.Slow()
	if r.URL.Query().Get("limit") != "" && limit < len(slow) {
		slow = slow[:limit]
	}
	writeJSON(w, http.StatusOK, tracesResponse{
		Stats:  s.tracer.Stats(),
		Recent: s.tracer.Recent(limit),
		Slow:   slow,
	})
}

// handleAccuracy serves the shadow scorer's live-accuracy picture:
// sampler counters, per-model q-error quantiles with threshold-bucket
// and partition breakdowns, the retained worst-N requests, and the
// workload-shift detectors. ?limit=N caps each model's worst list
// (default all retained).
func (s *Server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	limit, ok := parseLimit(w, r, 0)
	if !ok {
		return
	}
	resp := accuracyResponse{
		Sampler: s.shadow.Stats(),
		Models:  s.shadow.Accuracy().Stats(limit),
	}
	if wl := s.shadow.Workload(); wl != nil {
		if ws := wl.Stats(); len(ws) > 0 {
			resp.Workload = ws
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.modelInfos(false)})
}

func newModelInfo(m *Model) modelInfo {
	mi := modelInfo{
		Name:       m.Name,
		Kind:       modelcodec.Kind(m.Est),
		Estimator:  m.Est.Name(),
		Dim:        m.Est.Dim(),
		TMax:       m.Est.TMax(),
		Source:     m.Source,
		Generation: m.Generation,
		LoadedAt:   m.LoadedAt,
	}
	if p, ok := m.Est.(interface{ K() int }); ok {
		mi.Partitions = p.K()
	}
	return mi
}

func (s *Server) modelInfos(withBatcher bool) []modelInfo {
	models := s.registry.List()
	out := make([]modelInfo, 0, len(models))
	for _, m := range models {
		mi := newModelInfo(m)
		if s.router != nil {
			mi.Router = s.router.Assignment(m.Name)
		}
		if withBatcher && m.Batcher() != nil {
			st := m.Batcher().Stats()
			mi.Batcher = &st
		}
		if withBatcher {
			if ps, ok := m.Est.(PlanStatser); ok {
				st := ps.PlanStats()
				mi.Plans = &st
			}
		}
		out = append(out, mi)
	}
	return out
}

func (s *Server) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req loadModelRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"path\""))
		return
	}
	// LoadFile dispatches kind-tagged containers — any servable
	// estimator kind — and sniffs legacy untagged .gob files, so old
	// and new model files both hot-swap in.
	est, err := modelcodec.LoadFile(req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("load %s: %w", req.Path, err))
		return
	}
	m, err := s.registry.Publish(name, est, req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, newModelInfo(m))
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	sb := s.beginSpan("/v1/estimate", r)
	var req estimateRequest
	if err := decodeJSON(r, &req); err != nil {
		sb.stage(obs.StageDecode)
		writeError(w, http.StatusBadRequest, err)
		s.endSpan(sb, http.StatusBadRequest)
		return
	}
	m, status, err := s.lookup(req.Model, req.Query)
	sb.stage(obs.StageDecode) // body read + validation + model lookup
	if err != nil {
		writeError(w, status, err)
		s.endSpan(sb, status)
		return
	}
	sb.setModel(m.Name)
	var key string
	if s.cache.Enabled() {
		key = s.cache.Key(m, req.Query, req.T)
		if v, ok := s.cache.Get(key); ok {
			sb.stage(obs.StageCache)
			sb.setCached(true)
			s.offerShadow(r, m, 0, req.Query, req.T, v)
			writeJSON(w, http.StatusOK, estimateResponse{Model: m.Name, Estimate: v, T: req.T, Cached: true})
			sb.stage(obs.StageEncode)
			s.endSpan(sb, http.StatusOK)
			return
		}
	}
	sb.stage(obs.StageCache)
	var v float64
	if b := m.Batcher(); b != nil {
		var bt BatchTiming
		v, bt, err = b.SubmitTimed(r.Context(), req.Query, req.T)
		// The coalescer measured the request's time itself; copy its
		// attribution and resync the span clock past the submit call.
		sb.setStage(obs.StageQueue, bt.Queue)
		sb.setStage(obs.StageFuse, bt.Fuse)
		sb.setStage(obs.StageExecute, bt.Execute)
		sb.setBatchSize(bt.BatchSize)
		sb.markNow()
		if errors.Is(err, ErrBatcherClosed) {
			// The model was hot-swapped or removed between lookup and
			// submit; our handle's estimator is still valid, so answer
			// inline rather than surfacing the swap to the client.
			v, err = m.Est.Estimate(req.Query, req.T), nil
			sb.stage(obs.StageExecute)
		}
		if err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
				status = 499 // client closed request
			}
			writeError(w, status, err)
			s.endSpan(sb, status)
			return
		}
	} else {
		v = m.Est.Estimate(req.Query, req.T)
		sb.stage(obs.StageExecute)
	}
	if s.cache.Enabled() {
		s.cache.Put(key, v)
	}
	sb.stage(obs.StageCache)
	s.offerShadow(r, m, 0, req.Query, req.T, v)
	writeJSON(w, http.StatusOK, estimateResponse{Model: m.Name, Estimate: v, T: req.T})
	sb.stage(obs.StageEncode)
	s.endSpan(sb, http.StatusOK)
}

func (s *Server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	sb := s.beginSpan("/v1/estimate/batch", r)
	fail := func(status int, err error) {
		sb.stage(obs.StageDecode)
		writeError(w, status, err)
		s.endSpan(sb, status)
	}
	var req estimateBatchRequest
	if err := decodeJSON(r, &req); err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		fail(http.StatusBadRequest, errors.New("empty \"queries\""))
		return
	}
	ts := req.Ts
	switch {
	case req.T != nil && len(ts) > 0:
		fail(http.StatusBadRequest, errors.New("provide \"t\" or \"ts\", not both"))
		return
	case req.T != nil:
		ts = make([]float64, len(req.Queries))
		for i := range ts {
			ts[i] = *req.T
		}
	case len(ts) != len(req.Queries):
		fail(http.StatusBadRequest,
			fmt.Errorf("%d queries but %d thresholds", len(req.Queries), len(ts)))
		return
	}
	m, status, err := s.lookup(req.Model, req.Queries[0])
	if err != nil {
		fail(status, err)
		return
	}
	sb.setModel(m.Name)
	sb.setBatchSize(len(req.Queries))
	sb.stage(obs.StageDecode)
	x := tensor.New(len(req.Queries), m.Est.Dim())
	for i, q := range req.Queries {
		if len(q) != m.Est.Dim() {
			fail(http.StatusBadRequest,
				fmt.Errorf("query %d has dim %d, model %q expects %d", i, len(q), m.Name, m.Est.Dim()))
			return
		}
		copy(x.Row(i), q)
	}
	// The tensor fill is this route's fuse work: one client batch
	// becomes one fused inference batch.
	sb.stage(obs.StageFuse)
	// Already a batch: run the tensor pass directly, bypassing the
	// coalescer (which exists to fuse separate requests).
	est := m.Est.EstimateBatch(x, ts)
	sb.stage(obs.StageExecute)
	if s.shadow.Enabled() {
		// Each query in the batch gets its own sampling decision, salted
		// by its index so one traced request doesn't sample all-or-none.
		for i, q := range req.Queries {
			s.offerShadow(r, m, uint64(i+1), q, ts[i], est[i])
		}
	}
	writeJSON(w, http.StatusOK, estimateBatchResponse{Model: m.Name, Estimates: est})
	sb.stage(obs.StageEncode)
	s.endSpan(sb, http.StatusOK)
}

func (s *Server) handleUpdateModel(w http.ResponseWriter, r *http.Request) {
	sb := s.beginSpan("/v1/models/{name}/update", r)
	fail := func(status int, err error) {
		writeError(w, status, err)
		s.endSpan(sb, status)
	}
	name := r.PathValue("name")
	sb.setModel(name)
	var req updateModelRequest
	if err := decodeJSON(r, &req); err != nil {
		sb.stage(obs.StageDecode)
		fail(http.StatusBadRequest, err)
		return
	}
	if len(req.Insert)+len(req.Delete) == 0 {
		sb.stage(obs.StageDecode)
		fail(http.StatusBadRequest, errors.New("empty update: provide \"insert\" and/or \"delete\""))
		return
	}
	if _, ok := s.registry.Get(name); !ok {
		sb.stage(obs.StageDecode)
		fail(http.StatusNotFound, fmt.Errorf("unknown model %q", name))
		return
	}
	sb.stage(obs.StageDecode)
	if s.updater == nil {
		fail(http.StatusConflict, ErrNotUpdatable)
		return
	}
	// Vector validation happens in the updater against its attached
	// database — the authoritative dimensionality — not the registry
	// model, which an operator may have hot-swapped independently.
	ack, err := s.updater.Enqueue(name, req.Insert, req.Delete)
	// Enqueue covers WAL append + queue admission: the update route's
	// execute stage.
	sb.stage(obs.StageExecute)
	switch {
	case errors.Is(err, ErrInvalidUpdate):
		fail(http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrUpdateQueueFull):
		s.retryAfter(w)
		fail(http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrNotUpdatable):
		fail(http.StatusConflict, err)
		return
	case errors.Is(err, ErrNotLeader), errors.Is(err, ErrReplicationTimeout):
		// Leadership moved under us, or follower acks timed out: the
		// client retries (the batch is unacknowledged either way).
		s.retryAfter(w)
		fail(http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrUpdaterClosed):
		fail(http.StatusServiceUnavailable, err)
		return
	case err != nil:
		fail(http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, updateModelResponse{Model: name, Seq: ack.Seq, QueueDepth: ack.QueueDepth})
	sb.stage(obs.StageEncode)
	s.endSpan(sb, http.StatusAccepted)
}

// handleMetrics renders the Prometheus text exposition: request counters,
// per-route latency histograms, cache effectiveness, per-model coalescer
// histograms, and (when an updater is attached) ingest queue gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := newPromWriter(w)
	p.Value("selestd_uptime_seconds", "Seconds since the server started.", "gauge",
		time.Since(s.started).Seconds())
	p.Value("selestd_http_requests_total", "HTTP requests accepted.", "counter",
		float64(s.requests.Load()))
	p.Value("selestd_http_errors_total", "HTTP requests answered 4xx/5xx.", "counter",
		float64(s.errors.Load()))
	p.Value("selestd_registry_swaps_total", "Model hot-swaps (replacing publishes).", "counter",
		float64(s.swaps.Load()))

	routes := make([]string, 0, len(s.latency))
	for route := range s.latency {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	for _, route := range routes {
		p.Histogram("selestd_http_request_duration_seconds", "Request latency by route.",
			s.latency[route].Snapshot(), "route", route)
	}

	cs := s.cache.Stats()
	p.Value("selestd_cache_hits_total", "Estimate cache hits.", "counter", float64(cs.Hits))
	p.Value("selestd_cache_misses_total", "Estimate cache misses.", "counter", float64(cs.Misses))
	p.Value("selestd_cache_evictions_total", "Estimate cache evictions.", "counter", float64(cs.Evictions))
	p.Value("selestd_cache_size", "Cached estimates.", "gauge", float64(cs.Size))
	p.Value("selestd_cache_capacity", "Estimate cache capacity.", "gauge", float64(cs.Capacity))
	ratio := 0.0
	if total := cs.Hits + cs.Misses; total > 0 {
		ratio = float64(cs.Hits) / float64(total)
	}
	p.Value("selestd_cache_hit_ratio", "Cache hits / lookups since start.", "gauge", ratio)

	for _, m := range s.registry.List() {
		p.Value("selestd_model_generation", "Registry generation of the published model.", "gauge",
			float64(m.Generation), "model", m.Name)
		if b := m.Batcher(); b != nil {
			bs := b.Stats()
			p.Value("selestd_batcher_requests_total", "Single estimates submitted to the coalescer.",
				"counter", float64(bs.Requests), "model", m.Name)
			p.Value("selestd_batcher_batches_total", "Fused EstimateBatch calls.", "counter",
				float64(bs.Batches), "model", m.Name)
			p.Value("selestd_batcher_timeouts_total", "Batches flushed by the interval timer.",
				"counter", float64(bs.Timeouts), "model", m.Name)
			p.Value("selestd_batcher_lanes", "Coalescer lanes (independent shards).", "gauge",
				float64(len(bs.Lanes)), "model", m.Name)
			for lane, hist := range b.LaneSizeHistograms() {
				p.Histogram("selestd_batcher_batch_size", "Requests fused per inference batch, by lane.",
					hist, "model", m.Name, "lane", strconv.Itoa(lane))
			}
			for lane, ls := range bs.Lanes {
				p.Value("selestd_batcher_lane_batches_total", "Fused EstimateBatch calls by lane.",
					"counter", float64(ls.Batches), "model", m.Name, "lane", strconv.Itoa(lane))
			}
		}
		if ps, ok := m.Est.(PlanStatser); ok {
			st := ps.PlanStats()
			p.Value("selestd_plan_checkouts_total", "Compiled-plan checkouts from the model's pools.",
				"counter", float64(st.Checkouts), "model", m.Name)
			p.Value("selestd_plan_pool_misses_total", "Plan checkouts that missed the resident fast path.",
				"counter", float64(st.Misses), "model", m.Name)
			p.Value("selestd_plan_compiles_total", "Forward-pass compilations (lazy, per batch-size class).",
				"counter", float64(st.Compiles), "model", m.Name)
			p.Value("selestd_plan_drops_total", "Plan-pool invalidations (training, hot-swap).",
				"counter", float64(st.Drops), "model", m.Name)
		}
	}

	if s.updater != nil {
		stats := s.updater.UpdaterStats()
		names := make([]string, 0, len(stats))
		for name := range stats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			us := stats[name]
			p.Value("selestd_ingest_queue_depth", "Pending update batches.", "gauge",
				float64(us.QueueDepth), "model", name)
			p.Value("selestd_ingest_queue_capacity", "Update queue capacity.", "gauge",
				float64(us.QueueCapacity), "model", name)
			p.Value("selestd_ingest_lag", "Journal sequences not yet applied.", "gauge",
				float64(us.Lag), "model", name)
			p.Value("selestd_ingest_batches_applied_total", "Update batches applied to the database.",
				"counter", float64(us.BatchesApplied), "model", name)
			p.Value("selestd_ingest_inserted_vecs_total", "Vectors inserted.", "counter",
				float64(us.InsertedVecs), "model", name)
			p.Value("selestd_ingest_deleted_vecs_total", "Vectors deleted.", "counter",
				float64(us.DeletedVecs), "model", name)
			p.Value("selestd_ingest_skipped_total", "Retrain cycles absorbed by the delta_U check.",
				"counter", float64(us.Skipped), "model", name)
			p.Value("selestd_ingest_retrained_total", "Retrain cycles that hot-swapped a shadow model.",
				"counter", float64(us.Retrained), "model", name)
			p.Value("selestd_ingest_last_mae_before", "Validation MAE before the last cycle.", "gauge",
				us.LastMAEBefore, "model", name)
			p.Value("selestd_ingest_last_mae_after", "Validation MAE after the last cycle.", "gauge",
				us.LastMAEAfter, "model", name)
			p.Value("selestd_ingest_retrain_advised", "1 when live workload-shift detection advises retraining.",
				"gauge", boolGauge(us.RetrainAdvised), "model", name)
			if us.Durable {
				p.Value("selestd_ingest_journaled_batches_total", "Batches appended to the write-ahead log.",
					"counter", float64(us.JournaledBatches), "model", name)
				p.Value("selestd_ingest_journal_syncs_total", "Fsyncs the write-ahead log performed.",
					"counter", float64(us.JournalSyncs), "model", name)
				p.Value("selestd_ingest_replayed_batches", "Journal entries replayed at boot.",
					"gauge", float64(us.ReplayedBatches), "model", name)
				p.Value("selestd_ingest_journal_bytes", "Write-ahead log size.",
					"gauge", float64(us.JournalBytes), "model", name)
				p.Value("selestd_ingest_snapshot_seq", "Applied sequence of the last durable snapshot.",
					"gauge", float64(us.SnapshotSeq), "model", name)
				p.Value("selestd_ingest_journal_compactions_total", "WAL compactions after snapshots.",
					"counter", float64(us.Compactions), "model", name)
				p.Value("selestd_ingest_journal_errors_total", "Failed snapshot/compaction attempts.",
					"counter", float64(us.JournalErrors), "model", name)
			}
		}
	}

	p.Value("selestd_kernel_timing_enabled", "1 when per-kernel plan timing is on.", "gauge",
		boolGauge(infer.KernelTimingEnabled()))
	for _, k := range infer.KernelStats() {
		p.Value("selestd_kernel_seconds_total", "Plan-execution time attributed to one forward kernel.",
			"counter", float64(k.Nanos)/1e9, "kernel", k.Kernel)
		p.Value("selestd_kernel_calls_total", "Forward-kernel invocations during plan execution.",
			"counter", float64(k.Calls), "kernel", k.Kernel)
	}

	if s.tracer != nil {
		s.tracer.WriteMetrics(p)
	}
	if s.drift != nil {
		s.drift.WriteMetrics(p)
	}
	if s.shadow != nil {
		s.shadow.WriteMetrics(p)
	}
	if s.cluster != nil {
		s.cluster.WriteMetrics(p)
	}
	if s.router != nil {
		s.router.WriteMetrics(p)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// offerShadow taps one answered estimate into the shadow scorer: a
// nil-check when sampling is off, a hash + non-blocking enqueue when
// on. salt distinguishes queries within a batch request (0 for single
// estimates).
func (s *Server) offerShadow(r *http.Request, m *Model, salt uint64, q []float64, t, v float64) {
	if !s.shadow.Enabled() {
		return
	}
	id, _ := obs.TraceIDFrom(r.Context())
	s.shadow.Offer(m.Name, id, salt, q, t, m.Est.TMax(), v)
}

// lookup resolves the model and validates the query shape, returning an
// HTTP status on failure.
func (s *Server) lookup(name string, query []float64) (*Model, int, error) {
	if name == "" {
		name = "default"
	}
	m, ok := s.registry.Get(name)
	if !ok && s.router != nil && s.router.Routes(name) {
		// Virtual names resolve through the workload router; a direct
		// registry hit above keeps the routed path off concrete names.
		if len(query) == 0 {
			return nil, http.StatusBadRequest, errors.New("empty \"query\"")
		}
		rm, err := s.router.Route(name, len(query))
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		m, ok = rm, true
	}
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown model %q", name)
	}
	if len(query) == 0 {
		return nil, http.StatusBadRequest, errors.New("empty \"query\"")
	}
	if len(query) != m.Est.Dim() {
		return nil, http.StatusBadRequest,
			fmt.Errorf("query has dim %d, model %q expects %d", len(query), m.Name, m.Est.Dim())
	}
	return m, 0, nil
}

// ----------------------------------------------------------------------------
// JSON plumbing

// maxBodyBytes caps request bodies, both when decoding locally and when
// buffering for a cluster forward.
const maxBodyBytes = 16 << 20

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders err in the error envelope. Throttle and failover
// paths stamp Retry-After (see retryAfter) before calling it; the
// envelope copies the hint so the header and body always agree.
func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Code: errorCode(status, err), Message: err.Error()}
	if ra := w.Header().Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil {
			body.RetryAfterMS = int64(secs) * 1000
		}
	}
	writeJSON(w, status, errorResponse{Error: body})
}

// errorCode maps an error and its HTTP status to the envelope's stable
// code slug. Sentinel errors take precedence over the status mapping so
// proxied responses keep their meaning.
func errorCode(status int, err error) string {
	switch {
	case errors.Is(err, ErrNotLeader):
		return "not_leader"
	case errors.Is(err, ErrReplicationTimeout):
		return "replication_timeout"
	case errors.Is(err, ErrUpdateQueueFull):
		return "backpressure"
	case errors.Is(err, ErrNotUpdatable):
		return "not_updatable"
	case errors.Is(err, ErrInvalidUpdate):
		return "invalid_update"
	case errors.Is(err, ErrUpdaterClosed):
		return "shutting_down"
	}
	switch status {
	case http.StatusBadRequest:
		return "invalid_argument"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusTooManyRequests:
		return "backpressure"
	case 499:
		return "client_closed_request"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusBadGateway:
		return "bad_gateway"
	}
	if status >= 500 {
		return "internal"
	}
	return "error"
}
