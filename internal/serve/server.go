package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"selnet/internal/selnet"
	"selnet/internal/tensor"
)

// Config assembles a Server.
type Config struct {
	// Batcher tunes the per-model request coalescer.
	Batcher BatcherConfig
	// Cache tunes the shared estimate cache (Capacity 0 disables it).
	Cache CacheConfig
	// NoBatch disables coalescing: single estimates run inline on the
	// caller's goroutine. Used by the naive arm of the serving benchmark.
	NoBatch bool
}

// Server is the HTTP model-serving front end: it owns the model
// registry, the per-model coalescers, and the estimate cache, and
// exposes them as a JSON API (see Handler for routes).
type Server struct {
	cfg      Config
	registry *Registry
	cache    *Cache
	started  time.Time

	requests atomic.Uint64 // HTTP requests accepted
	errors   atomic.Uint64 // requests answered 4xx/5xx
}

// NewServer builds a server with an empty registry.
func NewServer(cfg Config) *Server {
	s := &Server{cfg: cfg, started: time.Now()}
	var nb func(Estimator) *Batcher
	if !cfg.NoBatch {
		nb = func(est Estimator) *Batcher { return NewBatcher(est, cfg.Batcher) }
	}
	s.registry = NewRegistry(nb)
	s.cache = NewCache(cfg.Cache)
	return s
}

// Registry exposes the model registry (the daemon preloads models
// through it).
func (s *Server) Registry() *Registry { return s.registry }

// Close drains every model's in-flight batches and releases the worker
// pools. Call after the HTTP listener has stopped accepting requests.
func (s *Server) Close() { s.registry.Close() }

// Handler returns the route table:
//
//	GET  /healthz              liveness probe
//	GET  /stats                server, cache, and per-model counters
//	GET  /v1/models            list published models
//	POST /v1/models/{name}     load/hot-swap a .gob model: {"path": "..."}
//	POST /v1/estimate          {"model","query","t"} -> one estimate
//	POST /v1/estimate/batch    {"model","queries",["ts"|"t"]} -> estimates
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /v1/models", s.handleListModels)
	mux.HandleFunc("POST /v1/models/{name}", s.handleLoadModel)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/estimate/batch", s.handleEstimateBatch)
	return s.count(mux)
}

// count wraps the mux with the request/error counters.
func (s *Server) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(cw, r)
		if cw.code >= 400 {
			s.errors.Add(1)
		}
	})
}

type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ----------------------------------------------------------------------------
// Wire types

type estimateRequest struct {
	Model string    `json:"model"`
	Query []float64 `json:"query"`
	T     float64   `json:"t"`
}

type estimateResponse struct {
	Model    string  `json:"model"`
	Estimate float64 `json:"estimate"`
	T        float64 `json:"t"`
	Cached   bool    `json:"cached"`
}

type estimateBatchRequest struct {
	Model   string      `json:"model"`
	Queries [][]float64 `json:"queries"`
	// Ts gives one threshold per query; alternatively T broadcasts a
	// single threshold to every query.
	Ts []float64 `json:"ts,omitempty"`
	T  *float64  `json:"t,omitempty"`
}

type estimateBatchResponse struct {
	Model     string    `json:"model"`
	Estimates []float64 `json:"estimates"`
}

type loadModelRequest struct {
	Path string `json:"path"`
}

type modelInfo struct {
	Name       string        `json:"name"`
	Kind       string        `json:"kind"`
	Dim        int           `json:"dim"`
	TMax       float64       `json:"t_max"`
	Source     string        `json:"source,omitempty"`
	Generation uint64        `json:"generation"`
	LoadedAt   time.Time     `json:"loaded_at"`
	Batcher    *BatcherStats `json:"batcher,omitempty"`
}

type statsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Requests      uint64      `json:"requests"`
	Errors        uint64      `json:"errors"`
	Cache         CacheStats  `json:"cache"`
	Models        []modelInfo `json:"models"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ----------------------------------------------------------------------------
// Handlers

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.registry.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		Cache:         s.cache.Stats(),
		Models:        s.modelInfos(true),
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.modelInfos(false)})
}

func newModelInfo(m *Model) modelInfo {
	return modelInfo{
		Name:       m.Name,
		Kind:       m.Est.Name(),
		Dim:        m.Est.Dim(),
		TMax:       m.Est.TMax(),
		Source:     m.Source,
		Generation: m.Generation,
		LoadedAt:   m.LoadedAt,
	}
}

func (s *Server) modelInfos(withBatcher bool) []modelInfo {
	models := s.registry.List()
	out := make([]modelInfo, 0, len(models))
	for _, m := range models {
		mi := newModelInfo(m)
		if withBatcher && m.Batcher() != nil {
			st := m.Batcher().Stats()
			mi.Batcher = &st
		}
		out = append(out, mi)
	}
	return out
}

func (s *Server) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req loadModelRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"path\""))
		return
	}
	net, err := selnet.LoadNetFile(req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("load %s: %w", req.Path, err))
		return
	}
	m, err := s.registry.Publish(name, net, req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, newModelInfo(m))
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, status, err := s.lookup(req.Model, req.Query)
	if err != nil {
		writeError(w, status, err)
		return
	}
	var key string
	if s.cache.Enabled() {
		key = s.cache.Key(m, req.Query, req.T)
		if v, ok := s.cache.Get(key); ok {
			writeJSON(w, http.StatusOK, estimateResponse{Model: m.Name, Estimate: v, T: req.T, Cached: true})
			return
		}
	}
	var v float64
	if b := m.Batcher(); b != nil {
		v, err = b.Submit(r.Context(), req.Query, req.T)
		if errors.Is(err, ErrBatcherClosed) {
			// The model was hot-swapped or removed between lookup and
			// submit; our handle's estimator is still valid, so answer
			// inline rather than surfacing the swap to the client.
			v, err = m.Est.Estimate(req.Query, req.T), nil
		}
		if err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
				status = 499 // client closed request
			}
			writeError(w, status, err)
			return
		}
	} else {
		v = m.Est.Estimate(req.Query, req.T)
	}
	if s.cache.Enabled() {
		s.cache.Put(key, v)
	}
	writeJSON(w, http.StatusOK, estimateResponse{Model: m.Name, Estimate: v, T: req.T})
}

func (s *Server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	var req estimateBatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty \"queries\""))
		return
	}
	ts := req.Ts
	switch {
	case req.T != nil && len(ts) > 0:
		writeError(w, http.StatusBadRequest, errors.New("provide \"t\" or \"ts\", not both"))
		return
	case req.T != nil:
		ts = make([]float64, len(req.Queries))
		for i := range ts {
			ts[i] = *req.T
		}
	case len(ts) != len(req.Queries):
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d queries but %d thresholds", len(req.Queries), len(ts)))
		return
	}
	m, status, err := s.lookup(req.Model, req.Queries[0])
	if err != nil {
		writeError(w, status, err)
		return
	}
	x := tensor.New(len(req.Queries), m.Est.Dim())
	for i, q := range req.Queries {
		if len(q) != m.Est.Dim() {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("query %d has dim %d, model %q expects %d", i, len(q), m.Name, m.Est.Dim()))
			return
		}
		copy(x.Row(i), q)
	}
	// Already a batch: run the tensor pass directly, bypassing the
	// coalescer (which exists to fuse separate requests).
	writeJSON(w, http.StatusOK, estimateBatchResponse{Model: m.Name, Estimates: m.Est.EstimateBatch(x, ts)})
}

// lookup resolves the model and validates the query shape, returning an
// HTTP status on failure.
func (s *Server) lookup(name string, query []float64) (*Model, int, error) {
	if name == "" {
		name = "default"
	}
	m, ok := s.registry.Get(name)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown model %q", name)
	}
	if len(query) == 0 {
		return nil, http.StatusBadRequest, errors.New("empty \"query\"")
	}
	if len(query) != m.Est.Dim() {
		return nil, http.StatusBadRequest,
			fmt.Errorf("query has dim %d, model %q expects %d", len(query), m.Name, m.Est.Dim())
	}
	return m, 0, nil
}

// ----------------------------------------------------------------------------
// JSON plumbing

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
