package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"selnet/internal/tensor"
)

// ErrBatcherClosed is returned by Submit after Close has begun.
var ErrBatcherClosed = errors.New("serve: batcher closed")

// BatchIntoEstimator is the allocation-free batch surface of the plan
// path (selnet.Net and selnet.Partitioned implement it). Lanes use it
// with per-lane reusable buffers, so a fused batch costs zero heap
// allocations end to end.
type BatchIntoEstimator interface {
	EstimateBatchInto(out []float64, x *tensor.Dense, ts []float64)
}

// BatcherConfig tunes the request coalescer.
type BatcherConfig struct {
	// MaxBatch is the largest number of requests fused into one
	// EstimateBatch call (default 32).
	MaxBatch int
	// FlushInterval bounds how long a lone request waits for company
	// before its batch is flushed anyway (default 2ms). Once at least
	// two requests are fused, a drained queue flushes immediately.
	FlushInterval time.Duration
	// Lanes is the number of independent coalescing lanes. Each lane owns
	// its own queue, gather goroutine, and reusable inference buffers, so
	// up to Lanes batches run concurrently with no shared contention
	// point — the single batcher goroutine stops being a throughput
	// ceiling on multicore. Default: GOMAXPROCS.
	Lanes int
	// Workers is the deprecated name for Lanes, honored when Lanes is 0
	// so existing configurations keep their meaning.
	Workers int
	// QueueDepth is each lane's request-channel buffer (default
	// 4*MaxBatch).
	QueueDepth int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.Lanes <= 0 {
		c.Lanes = c.Workers
	}
	if c.Lanes <= 0 {
		c.Lanes = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// LaneStats is one lane's share of the coalescing counters.
type LaneStats struct {
	// Batches counts EstimateBatch calls this lane issued.
	Batches uint64 `json:"batches"`
	// MaxFused is the largest batch this lane fused.
	MaxFused uint64 `json:"max_fused"`
	// Timeouts counts batches flushed by the interval timer.
	Timeouts uint64 `json:"timeouts"`
}

// BatcherStats is a snapshot of coalescing effectiveness counters,
// aggregated over every lane.
type BatcherStats struct {
	// Requests counts single-query requests submitted.
	Requests uint64 `json:"requests"`
	// Batches counts EstimateBatch calls issued.
	Batches uint64 `json:"batches"`
	// MaxFused is the largest batch fused so far.
	MaxFused uint64 `json:"max_fused"`
	// Timeouts counts batches flushed by the interval timer.
	Timeouts uint64 `json:"timeouts"`
	// Lanes holds the per-lane breakdown.
	Lanes []LaneStats `json:"lanes,omitempty"`
}

// Batcher coalesces concurrent single-query estimate requests for one
// model into batched EstimateBatch calls — the hot path of serving,
// since one compiled-plan pass over a B-row tensor is far cheaper than
// B passes over 1-row tensors. The batcher is sharded into lanes:
// Submit round-robins requests across per-lane queues, and each lane's
// goroutine greedily gathers every request queued with it (up to
// MaxBatch) and flushes as soon as its queue drains, never stalling
// fused work; only a lone request waits, up to FlushInterval, for a
// companion. Each lane owns reusable input/output buffers sized to
// MaxBatch, so with a BatchIntoEstimator the fused pass allocates
// nothing.
type Batcher struct {
	est  Estimator
	into BatchIntoEstimator // non-nil when est supports the in-place path
	cfg  BatcherConfig
	dim  int

	lanes []*lane
	next  atomic.Uint64  // round-robin lane cursor
	wg    sync.WaitGroup // lane workers

	mu       sync.Mutex // guards closed + inflight Add
	closed   bool
	inflight sync.WaitGroup // submitters inside the reqs channel handoff

	requests atomic.Uint64
}

// lane is one coalescing shard: a queue, a gather goroutine, and the
// goroutine's private inference buffers.
type lane struct {
	reqs chan batchReq
	// waiting is 1 while the lane's worker lingers on a lone request
	// hoping for a companion; Submit joins such a lane so lone requests
	// fuse immediately instead of every client stalling a FlushInterval
	// in its own lane when clients are fewer than lanes.
	waiting atomic.Int32

	batches  atomic.Uint64
	maxFused atomic.Uint64
	timeouts atomic.Uint64
	sizes    *Histogram // fused-batch sizes, exported via /metrics

	// Gather/run state owned by the lane goroutine: the reused batch
	// slice, the MaxBatch x dim input tensor with per-size row views, and
	// the threshold/output slices.
	buf   []batchReq
	x     *tensor.Dense
	views []*tensor.Dense // views[n] = first n rows of x (1-indexed)
	ts    []float64
	out   []float64
}

type batchReq struct {
	x   []float64
	t   float64
	enq time.Time // Submit handoff time
	deq time.Time // lane worker pickup time
	out chan batchRes
}

type batchRes struct {
	v      float64
	err    error
	timing BatchTiming
}

// BatchTiming attributes one submitted request's time inside the
// coalescer, measured by the lane worker itself so the serving layer
// can trace a request without instrumenting lane internals.
type BatchTiming struct {
	// Queue is the wait between Submit's channel handoff and the lane
	// worker dequeuing the request.
	Queue time.Duration
	// Fuse is the gather time: from this request's dequeue until the
	// fused batch launches (lane-mates arriving, rows copied in).
	Fuse time.Duration
	// Execute is the fused inference call (shared by the whole batch).
	Execute time.Duration
	// BatchSize is how many requests shared the fused batch.
	BatchSize int
}

// NewBatcher starts the coalescer's lane pool for est.
func NewBatcher(est Estimator, cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{est: est, cfg: cfg, dim: est.Dim()}
	b.into, _ = est.(BatchIntoEstimator)
	dim := b.dim
	for i := 0; i < cfg.Lanes; i++ {
		l := &lane{
			reqs:  make(chan batchReq, cfg.QueueDepth),
			sizes: NewHistogram(BatchSizeBuckets()...),
			buf:   make([]batchReq, 0, cfg.MaxBatch),
			x:     tensor.New(cfg.MaxBatch, dim),
			views: make([]*tensor.Dense, cfg.MaxBatch+1),
			ts:    make([]float64, cfg.MaxBatch),
			out:   make([]float64, cfg.MaxBatch),
		}
		for n := 1; n <= cfg.MaxBatch; n++ {
			l.views[n] = l.x.RowsView(n)
		}
		b.lanes = append(b.lanes, l)
	}
	b.wg.Add(cfg.Lanes)
	for _, l := range b.lanes {
		go b.worker(l)
	}
	return b
}

// Submit queues one (query, threshold) estimate and blocks until its
// batch runs or ctx is done. It is safe for concurrent use.
func (b *Batcher) Submit(ctx context.Context, x []float64, t float64) (float64, error) {
	v, _, err := b.SubmitTimed(ctx, x, t)
	return v, err
}

// SubmitTimed is Submit plus the request's coalescer timing breakdown
// (zero on error paths that never reached a lane worker).
func (b *Batcher) SubmitTimed(ctx context.Context, x []float64, t float64) (float64, BatchTiming, error) {
	if len(x) != b.dim {
		// The lanes copy into fixed dim-wide buffers, so a mismatched
		// query must be rejected here rather than silently truncated or
		// padded with a previous batch's values.
		return 0, BatchTiming{}, fmt.Errorf("serve: query has dim %d, model expects %d", len(x), b.dim)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, BatchTiming{}, ErrBatcherClosed
	}
	b.inflight.Add(1)
	b.mu.Unlock()
	defer b.inflight.Done()

	b.requests.Add(1)
	l := b.pickLane()
	r := batchReq{x: x, t: t, enq: time.Now(), out: make(chan batchRes, 1)}
	select {
	case l.reqs <- r:
	case <-ctx.Done():
		return 0, BatchTiming{}, ctx.Err()
	}
	// The lane worker always answers (even on panic), so waiting only on
	// ctx alongside the reply never leaks the request.
	select {
	case res := <-r.out:
		return res.v, res.timing, res.err
	case <-ctx.Done():
		return 0, BatchTiming{}, ctx.Err()
	}
}

// pickLane chooses where to queue a request: a lane whose worker is
// lingering on a lone request gets joined (the pair flushes as soon as
// it fuses — under light load this keeps latency at fuse time, not
// FlushInterval, no matter how many lanes exist); otherwise requests
// round-robin so heavy load spreads across every lane.
func (b *Batcher) pickLane() *lane {
	for _, l := range b.lanes {
		if l.waiting.Load() != 0 {
			return l
		}
	}
	return b.lanes[b.next.Add(1)%uint64(len(b.lanes))]
}

// Close stops accepting submissions, waits for queued requests to be
// answered, and stops the lane workers. It is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.inflight.Wait() // no submitter is mid-handoff once this returns
	for _, l := range b.lanes {
		close(l.reqs) // workers drain their buffers, then exit
	}
	b.wg.Wait()
}

// SizeHistogram snapshots the distribution of fused batch sizes,
// merged across lanes.
func (b *Batcher) SizeHistogram() HistogramSnapshot {
	s := b.lanes[0].sizes.Snapshot()
	for _, l := range b.lanes[1:] {
		ls := l.sizes.Snapshot()
		for i := range s.Counts {
			s.Counts[i] += ls.Counts[i]
		}
		s.Sum += ls.Sum
		s.Count += ls.Count
	}
	return s
}

// LaneSizeHistograms snapshots each lane's fused-batch-size histogram.
func (b *Batcher) LaneSizeHistograms() []HistogramSnapshot {
	out := make([]HistogramSnapshot, len(b.lanes))
	for i, l := range b.lanes {
		out[i] = l.sizes.Snapshot()
	}
	return out
}

// Stats returns a snapshot of the coalescing counters.
func (b *Batcher) Stats() BatcherStats {
	s := BatcherStats{
		Requests: b.requests.Load(),
		Lanes:    make([]LaneStats, len(b.lanes)),
	}
	for i, l := range b.lanes {
		ls := LaneStats{
			Batches:  l.batches.Load(),
			MaxFused: l.maxFused.Load(),
			Timeouts: l.timeouts.Load(),
		}
		s.Lanes[i] = ls
		s.Batches += ls.Batches
		s.Timeouts += ls.Timeouts
		if ls.MaxFused > s.MaxFused {
			s.MaxFused = ls.MaxFused
		}
	}
	return s
}

// worker gathers and runs one lane's batches until its channel closes.
func (b *Batcher) worker(l *lane) {
	defer b.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for first := range l.reqs {
		first.deq = time.Now()
		batch := append(l.buf[:0], first)
		timer.Reset(b.cfg.FlushInterval)
	gather:
		for len(batch) < b.cfg.MaxBatch {
			// Greedy drain: take whatever is already queued without
			// blocking.
			select {
			case r, ok := <-l.reqs:
				if !ok {
					break gather
				}
				r.deq = time.Now()
				batch = append(batch, r)
				continue
			default:
			}
			// Queue drained. With two or more requests fused there is
			// nothing to wait for — stalling here would add the flush
			// interval to every closed-loop client's latency. A lone
			// request lingers up to the flush interval for company.
			if len(batch) > 1 {
				break gather
			}
			l.waiting.Store(1)
			select {
			case r, ok := <-l.reqs:
				l.waiting.Store(0)
				if !ok {
					break gather
				}
				r.deq = time.Now()
				batch = append(batch, r)
			case <-timer.C:
				l.waiting.Store(0)
				l.timeouts.Add(1)
				break gather
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		b.run(l, batch)
	}
}

// run executes one fused EstimateBatch call over the lane's buffers and
// distributes results.
func (b *Batcher) run(l *lane, batch []batchReq) {
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("serve: batched inference panicked: %v", p)
			for _, r := range batch {
				// Buffered reply channels: never blocks, even if the
				// submitter already gave up on ctx.
				r.out <- batchRes{err: err}
			}
		}
	}()
	n := len(batch)
	l.batches.Add(1)
	l.sizes.Observe(float64(n))
	if cur := l.maxFused.Load(); uint64(n) > cur {
		l.maxFused.CompareAndSwap(cur, uint64(n)) // single writer per lane
	}
	x := l.views[n]
	ts := l.ts[:n]
	for i, r := range batch {
		copy(x.Row(i), r.x)
		ts[i] = r.t
	}
	out := l.out[:n]
	execStart := time.Now()
	if b.into != nil {
		b.into.EstimateBatchInto(out, x, ts)
	} else {
		out = b.est.EstimateBatch(x, ts)
	}
	exec := time.Since(execStart)
	for i, r := range batch {
		r.out <- batchRes{v: out[i], timing: BatchTiming{
			Queue:     r.deq.Sub(r.enq),
			Fuse:      execStart.Sub(r.deq),
			Execute:   exec,
			BatchSize: n,
		}}
	}
}
