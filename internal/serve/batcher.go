package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"selnet/internal/tensor"
)

// ErrBatcherClosed is returned by Submit after Close has begun.
var ErrBatcherClosed = errors.New("serve: batcher closed")

// BatcherConfig tunes the request coalescer.
type BatcherConfig struct {
	// MaxBatch is the largest number of requests fused into one
	// EstimateBatch call (default 32).
	MaxBatch int
	// FlushInterval bounds how long a lone request waits for company
	// before its batch is flushed anyway (default 2ms). Once at least
	// two requests are fused, a drained queue flushes immediately.
	FlushInterval time.Duration
	// Workers is the number of goroutines running batches; each gathers
	// its own batch, so up to Workers batches are in flight at once
	// (default 2).
	Workers int
	// QueueDepth is the request channel's buffer (default 4*MaxBatch).
	QueueDepth int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// BatcherStats is a snapshot of coalescing effectiveness counters.
type BatcherStats struct {
	// Requests counts single-query requests submitted.
	Requests uint64 `json:"requests"`
	// Batches counts EstimateBatch calls issued.
	Batches uint64 `json:"batches"`
	// MaxFused is the largest batch fused so far.
	MaxFused uint64 `json:"max_fused"`
	// Timeouts counts batches flushed by the interval timer.
	Timeouts uint64 `json:"timeouts"`
}

// Batcher coalesces concurrent single-query estimate requests for one
// model into batched EstimateBatch calls — the hot path of serving,
// since one tape pass over a B-row tensor is far cheaper than B passes
// over 1-row tensors. A worker greedily gathers every queued request up
// to MaxBatch and flushes as soon as the queue drains (never stalling
// fused work); only a lone request waits, up to FlushInterval, for a
// companion.
type Batcher struct {
	est Estimator
	cfg BatcherConfig

	reqs chan batchReq
	wg   sync.WaitGroup // workers

	mu       sync.Mutex // guards closed + inflight Add
	closed   bool
	inflight sync.WaitGroup // submitters inside the reqs channel handoff

	requests atomic.Uint64
	batches  atomic.Uint64
	maxFused atomic.Uint64
	timeouts atomic.Uint64
	sizes    *Histogram // fused-batch sizes, exported via /metrics
}

type batchReq struct {
	x   []float64
	t   float64
	out chan batchRes
}

type batchRes struct {
	v   float64
	err error
}

// NewBatcher starts the coalescer's worker pool for est.
func NewBatcher(est Estimator, cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		est:   est,
		cfg:   cfg,
		reqs:  make(chan batchReq, cfg.QueueDepth),
		sizes: NewHistogram(BatchSizeBuckets()...),
	}
	b.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go b.worker()
	}
	return b
}

// Submit queues one (query, threshold) estimate and blocks until its
// batch runs or ctx is done. It is safe for concurrent use.
func (b *Batcher) Submit(ctx context.Context, x []float64, t float64) (float64, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, ErrBatcherClosed
	}
	b.inflight.Add(1)
	b.mu.Unlock()
	defer b.inflight.Done()

	b.requests.Add(1)
	r := batchReq{x: x, t: t, out: make(chan batchRes, 1)}
	select {
	case b.reqs <- r:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	// The batch worker always answers (even on panic), so waiting only on
	// ctx alongside the reply never leaks the request.
	select {
	case res := <-r.out:
		return res.v, res.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Close stops accepting submissions, waits for queued requests to be
// answered, and stops the workers. It is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.inflight.Wait() // no submitter is mid-handoff once this returns
	close(b.reqs)     // workers drain the buffer, then exit
	b.wg.Wait()
}

// SizeHistogram snapshots the distribution of fused batch sizes.
func (b *Batcher) SizeHistogram() HistogramSnapshot { return b.sizes.Snapshot() }

// Stats returns a snapshot of the coalescing counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Requests: b.requests.Load(),
		Batches:  b.batches.Load(),
		MaxFused: b.maxFused.Load(),
		Timeouts: b.timeouts.Load(),
	}
}

// worker gathers and runs batches until the request channel closes.
func (b *Batcher) worker() {
	defer b.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for first := range b.reqs {
		batch := append(make([]batchReq, 0, b.cfg.MaxBatch), first)
		timer.Reset(b.cfg.FlushInterval)
	gather:
		for len(batch) < b.cfg.MaxBatch {
			// Greedy drain: take whatever is already queued without
			// blocking.
			select {
			case r, ok := <-b.reqs:
				if !ok {
					break gather
				}
				batch = append(batch, r)
				continue
			default:
			}
			// Queue drained. With two or more requests fused there is
			// nothing to wait for — stalling here would add the flush
			// interval to every closed-loop client's latency. A lone
			// request lingers up to the flush interval for company.
			if len(batch) > 1 {
				break gather
			}
			select {
			case r, ok := <-b.reqs:
				if !ok {
					break gather
				}
				batch = append(batch, r)
			case <-timer.C:
				b.timeouts.Add(1)
				break gather
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		b.run(batch)
	}
}

// run executes one fused EstimateBatch call and distributes results.
func (b *Batcher) run(batch []batchReq) {
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("serve: batched inference panicked: %v", p)
			for _, r := range batch {
				// Buffered reply channels: never blocks, even if the
				// submitter already gave up on ctx.
				r.out <- batchRes{err: err}
			}
		}
	}()
	b.batches.Add(1)
	b.sizes.Observe(float64(len(batch)))
	for {
		cur := b.maxFused.Load()
		if uint64(len(batch)) <= cur || b.maxFused.CompareAndSwap(cur, uint64(len(batch))) {
			break
		}
	}
	x := tensor.New(len(batch), len(batch[0].x))
	ts := make([]float64, len(batch))
	for i, r := range batch {
		copy(x.Row(i), r.x)
		ts[i] = r.t
	}
	out := b.est.EstimateBatch(x, ts)
	for i, r := range batch {
		r.out <- batchRes{v: out[i]}
	}
}
