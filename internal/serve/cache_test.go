package serve

import (
	"sync"
	"testing"
	"time"
)

func testModel(name string, gen uint64) *Model {
	return &Model{Name: name, Est: newFakeEst(2), Generation: gen, LoadedAt: time.Now()}
}

func TestCacheHitMissAndLRUEviction(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 2})
	m := testModel("m", 1)

	k1 := c.Key(m, []float64{1, 2}, 0.1)
	k2 := c.Key(m, []float64{3, 4}, 0.2)
	k3 := c.Key(m, []float64{5, 6}, 0.3)

	if _, ok := c.Get(k1); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put(k1, 10)
	c.Put(k2, 20)
	if v, ok := c.Get(k1); !ok || v != 10 {
		t.Fatalf("Get(k1) = %v, %v", v, ok)
	}
	// k1 is now most recent; inserting k3 must evict k2.
	c.Put(k3, 30)
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 should have been evicted (LRU)")
	}
	if v, ok := c.Get(k1); !ok || v != 10 {
		t.Fatalf("k1 evicted out of LRU order: %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want size 2, evictions 1", st)
	}
}

func TestCacheQuantization(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 8, Quantum: 1e-3})
	m := testModel("m", 1)

	// Inputs within the same 1e-3 grid cell share a key...
	a := c.Key(m, []float64{0.10002, 0.5}, 0.20004)
	b := c.Key(m, []float64{0.10004, 0.5}, 0.19996)
	if a != b {
		t.Fatal("nearby inputs should quantize to the same key")
	}
	// ...and distinct cells do not.
	far := c.Key(m, []float64{0.102, 0.5}, 0.2)
	if a == far {
		t.Fatal("distinct inputs collided")
	}
	// Negative/positive zero normalize to one key.
	nz := c.Key(m, []float64{-1e-9, 0.5}, 0.2)
	pz := c.Key(m, []float64{1e-9, 0.5}, 0.2)
	if nz != pz {
		t.Fatal("-0.0 and +0.0 cells should share a key")
	}
}

func TestCacheKeySeparatesModelsAndGenerations(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 8})
	x := []float64{1, 2}
	if c.Key(testModel("a", 1), x, 0.1) == c.Key(testModel("b", 1), x, 0.1) {
		t.Fatal("different model names collided")
	}
	// A hot-swapped model bumps its generation, invalidating old entries.
	if c.Key(testModel("a", 1), x, 0.1) == c.Key(testModel("a", 2), x, 0.1) {
		t.Fatal("different generations collided")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 0})
	m := testModel("m", 1)
	k := c.Key(m, []float64{1, 2}, 0.1)
	c.Put(k, 5)
	if _, ok := c.Get(k); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if st := c.Stats(); st.Size != 0 || st.Misses == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheConcurrentGetPut hammers one key from readers and writers;
// run with -race (Get must read the entry's value under the lock, since
// Put refreshes entries in place).
func TestCacheConcurrentGetPut(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 4})
	m := testModel("m", 1)
	k := c.Key(m, []float64{1, 2}, 0.1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if g%2 == 0 {
					c.Put(k, float64(i))
				} else if v, ok := c.Get(k); ok && v < 0 {
					t.Error("impossible cached value")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
