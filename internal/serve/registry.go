// Package serve is the model-serving subsystem behind the selestd
// daemon: a registry of trained SelNet models with lock-free reads and
// copy-on-write hot-swap, a request coalescer that batches concurrent
// single-query estimates into one tensor inference call, an LRU cache of
// recent estimates, and an HTTP server tying them together with graceful,
// drain-aware shutdown.
//
// The subsystem serves any Estimator; in practice that is *selnet.Net,
// whose inference methods are read-only and safe for concurrent use (see
// the concurrency note on Net.EstimateBatch).
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"selnet/internal/infer"
	"selnet/internal/tensor"
)

// Estimator is the inference surface the server needs from a model.
// *selnet.Net satisfies it. Implementations must be safe for concurrent
// use: the server calls EstimateBatch from many goroutines at once.
type Estimator interface {
	Estimate(x []float64, t float64) float64
	EstimateBatch(x *tensor.Dense, ts []float64) []float64
	Dim() int
	TMax() float64
	Name() string
}

// PlanDropper is implemented by estimators whose inference runs on
// compiled plan pools (selnet.Net, selnet.Partitioned). The registry
// calls DropPlans on a displaced model after its batcher drains, so a
// hot-swap releases the old generation's plan buffers instead of
// leaving them pinned behind an unreachable estimator.
type PlanDropper interface {
	DropPlans()
}

// PlanStatser exposes plan-pool counters for /stats and /metrics.
type PlanStatser interface {
	PlanStats() infer.PoolStats
}

// Model is one registry entry: an estimator plus its serving apparatus
// (per-model coalescer) and metadata. Models are immutable once
// published; hot-swapping replaces the whole entry.
type Model struct {
	// Name is the registry key, chosen at load time (not the estimator's
	// architecture name).
	Name string
	// Est is the underlying estimator.
	Est Estimator
	// Source records where the model was loaded from (a file path).
	Source string
	// LoadedAt is the publication time.
	LoadedAt time.Time
	// Generation increments on every swap of this name, starting at 1.
	Generation uint64

	batcher *Batcher
}

// Batcher returns the model's request coalescer (nil if the registry was
// built without batching).
func (m *Model) Batcher() *Batcher { return m.batcher }

// Registry maps model names to Models. Reads are lock-free: the live
// table is an immutable map behind an atomic pointer, and every mutation
// copies it (copy-on-write), so in-flight requests holding a *Model are
// never blocked — or affected — by a hot-swap. Writers serialize on a
// mutex.
type Registry struct {
	table atomic.Pointer[map[string]*Model]

	mu         sync.Mutex // serializes writers
	generation map[string]uint64
	newBatcher func(Estimator) *Batcher
	onSwap     func(name string, old, next *Model)
}

// NewRegistry returns an empty registry. newBatcher, if non-nil, is
// invoked for each published model to build its coalescer; the registry
// closes the old model's batcher after a swap.
func NewRegistry(newBatcher func(Estimator) *Batcher) *Registry {
	r := &Registry{
		generation: make(map[string]uint64),
		newBatcher: newBatcher,
	}
	empty := map[string]*Model{}
	r.table.Store(&empty)
	return r
}

// SetSwapHook registers fn to be called after every Publish or Remove
// with the displaced entry (nil on first publish) and its replacement
// (nil on Remove). Install it before the registry sees traffic; the hook
// runs on the writer's goroutine, outside the registry lock.
func (r *Registry) SetSwapHook(fn func(name string, old, next *Model)) { r.onSwap = fn }

// Get returns the model published under name, or false. The returned
// *Model and its estimator remain valid even if the name is swapped or
// removed concurrently. Its batcher, however, begins closing once the
// model is swapped out: queued requests still drain, but a Submit
// racing the swap can return ErrBatcherClosed — callers should fall
// back to direct inference on the handle's estimator (the HTTP server
// does).
func (r *Registry) Get(name string) (*Model, bool) {
	m, ok := (*r.table.Load())[name]
	return m, ok
}

// List returns the published models sorted by name.
func (r *Registry) List() []*Model {
	t := *r.table.Load()
	out := make([]*Model, 0, len(t))
	for _, m := range t {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of published models.
func (r *Registry) Len() int { return len(*r.table.Load()) }

// Publish installs est under name, replacing any existing model with
// that name (hot-swap). The previous model's batcher, if any, is closed
// in the background after draining. It returns the new entry.
func (r *Registry) Publish(name string, est Estimator, source string) (*Model, error) {
	m, _, err := r.publish(name, est, source, false, nil)
	return m, err
}

// PublishIf installs est under name only while the currently published
// estimator is still expected (interface identity; expected nil means
// "name is absent"). It returns swapped=false, with no side effects,
// when something else was published in the meantime — the compare-and-
// swap the ingest pipeline uses so a shadow retrain that raced a manual
// model load never clobbers the operator's model.
func (r *Registry) PublishIf(name string, est Estimator, source string, expected Estimator) (*Model, bool, error) {
	return r.publish(name, est, source, true, expected)
}

func (r *Registry) publish(name string, est Estimator, source string, conditional bool, expected Estimator) (*Model, bool, error) {
	if name == "" {
		return nil, false, fmt.Errorf("serve: empty model name")
	}
	if est == nil {
		return nil, false, fmt.Errorf("serve: nil estimator for %q", name)
	}
	m := &Model{
		Name:     name,
		Est:      est,
		Source:   source,
		LoadedAt: time.Now(),
	}

	r.mu.Lock()
	if conditional {
		var curEst Estimator
		if cur := (*r.table.Load())[name]; cur != nil {
			curEst = cur.Est
		}
		if curEst != expected {
			r.mu.Unlock()
			return nil, false, nil
		}
	}
	if r.newBatcher != nil {
		// Built under the writer lock so a failed conditional publish
		// never spawns (and then has to reap) a worker pool.
		m.batcher = r.newBatcher(est)
	}
	r.generation[name]++
	m.Generation = r.generation[name]
	old := r.swapLocked(name, m)
	r.mu.Unlock()

	if old != nil {
		// Drain in-flight work, then release the displaced generation's
		// compiled plans; off the writer's goroutine so Publish never
		// waits on the old model's queue.
		go retireModel(old)
	}
	if r.onSwap != nil {
		r.onSwap(name, old, m)
	}
	return m, true, nil
}

// retireModel drains a displaced model's batcher and drops its compiled
// plans. Requests still holding the old *Model keep working — a dropped
// pool recompiles lazily — but the common case frees the old
// generation's buffers as soon as the queue empties.
func retireModel(old *Model) {
	if old.batcher != nil {
		old.batcher.Close()
	}
	if d, ok := old.Est.(PlanDropper); ok {
		d.DropPlans()
	}
}

// Remove unpublishes name, returning whether it was present. Like a
// swap, the removed model's batcher drains and closes in the background.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	old := r.swapLocked(name, nil)
	r.mu.Unlock()
	if old == nil {
		return false
	}
	go retireModel(old)
	if r.onSwap != nil {
		r.onSwap(name, old, nil)
	}
	return true
}

// swapLocked installs m under name (or deletes name when m is nil) by
// copying the live table, and returns the previous entry. Callers hold
// r.mu.
func (r *Registry) swapLocked(name string, m *Model) *Model {
	cur := *r.table.Load()
	next := make(map[string]*Model, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	old := next[name]
	if m == nil {
		delete(next, name)
	} else {
		next[name] = m
	}
	r.table.Store(&next)
	return old
}

// Close drains and closes every published model's batcher and empties
// the registry.
func (r *Registry) Close() {
	r.mu.Lock()
	cur := *r.table.Load()
	empty := map[string]*Model{}
	r.table.Store(&empty)
	r.mu.Unlock()
	for _, m := range cur {
		if m.batcher != nil {
			m.batcher.Close()
		}
		if d, ok := m.Est.(PlanDropper); ok {
			d.DropPlans()
		}
	}
}
