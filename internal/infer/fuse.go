package infer

import (
	"selnet/internal/tensor"
)

// This file is the compile-time optimize pass over recorded programs.
// It rewrites the dominant op sequences the forward tape emits —
// MatMul+AddRow+{ReLU,Sigmoid,Tanh,Softmax} (an nn.Linear layer) — into
// single fused GEMM kernels with the epilogue applied per row block
// while the output is cache-hot, and it pre-packs every plan-constant
// weight matrix into tensor.PackedB panels so no packing happens at run
// time. Intermediate buffers made dead by fusion are simply never
// written; they stay owned by the plan and are recycled on Release.
//
// The pass preserves bit-exact results: the fused kernels compute each
// element with the same ascending-k multiply-add chain and the same
// elementwise formulas as the unfused steps (see internal/tensor
// kernels.go), so a fused plan still matches the tape path exactly.

// OpKind classifies a recorded step for the optimize pass.
type OpKind uint8

const (
	// OpBarrier marks steps recorded via Add with unknown buffer
	// effects; a program containing one is left unoptimized.
	OpBarrier OpKind = iota
	// OpOther is a step with known dst/srcs that takes no part in
	// fusion itself but doesn't block it.
	OpOther
	OpMatMul  // dst = srcs[0] * srcs[1]
	OpAddRow  // dst = srcs[0] + srcs[1] (1-row broadcast)
	OpReLU    // dst = relu(srcs[0])
	OpSigmoid // dst = sigmoid(srcs[0])
	OpTanh    // dst = tanh(srcs[0])
	OpSoftmax // dst = rowwise softmax(srcs[0])
)

// fusableEpilogue maps an activation step kind to its fused epilogue.
var fusableEpilogue = map[OpKind]tensor.Epilogue{
	OpReLU:    tensor.EpBiasReLU,
	OpSigmoid: tensor.EpBiasSigmoid,
	OpTanh:    tensor.EpBiasTanh,
	OpSoftmax: tensor.EpBiasSoftmax,
}

// optimize rewrites the program in place and returns the packed weight
// panels the rewritten steps reference; the owning plan must release
// them when it is dropped. live lists the buffers read by the plan's
// caller after Run (plan outputs); nil entries are ignored.
func (p *Program) optimize(live ...*tensor.Dense) []*tensor.PackedB {
	if !tensor.Optimized() {
		return nil
	}
	written := make(map[*tensor.Dense]bool, len(p.steps))
	for i := range p.steps {
		if p.steps[i].kind == OpBarrier {
			return nil
		}
		written[p.steps[i].dst] = true
	}
	isLive := func(buf *tensor.Dense) bool {
		for _, l := range live {
			if l != nil && l == buf {
				return true
			}
		}
		return false
	}
	// deadAfter reports that buf is never needed once steps[:from] have
	// run: no later step reads it and the caller doesn't either.
	deadAfter := func(buf *tensor.Dense, from int) bool {
		if isLive(buf) {
			return false
		}
		for _, s := range p.steps[from:] {
			for _, src := range s.srcs {
				if src == buf {
					return false
				}
			}
		}
		return true
	}

	steps := p.steps
	out := steps[:0:0]
	var packs []*tensor.PackedB
	for i := 0; i < len(steps); {
		s := steps[i]
		if s.kind != OpMatMul || written[s.srcs[1]] {
			// Not a matmul, or B is computed inside the program (cannot
			// snapshot it at compile time): keep the step as recorded.
			out = append(out, s)
			i++
			continue
		}
		a, b, dst := s.srcs[0], s.srcs[1], s.dst
		pb := tensor.PackB(b)
		packs = append(packs, pb)

		// Try MatMul+AddRow(+activation) fusion. The intermediate must
		// be dead after the sequence and must not alias the GEMM input.
		fused := false
		if i+1 < len(steps) {
			add := steps[i+1]
			if add.kind == OpAddRow && add.srcs[0] == dst && add.srcs[1].Rows() == 1 &&
				add.dst != a && dst != a && deadAfter(dst, i+2) {
				bias := add.srcs[1]
				ep := tensor.EpBias
				fdst := add.dst
				consumed := 2
				if i+2 < len(steps) {
					act := steps[i+2]
					if e, ok := fusableEpilogue[act.kind]; ok && act.srcs[0] == add.dst &&
						act.dst != a && act.dst != bias && deadAfter(add.dst, i+3) {
						ep = e
						fdst = act.dst
						consumed = 3
					}
				}
				name := "matmul+" + ep.Name()
				fa, fb, fd := a, bias, fdst
				out = append(out, Step{
					Name: name, kid: internKernel(name),
					kind: OpOther, dst: fd, srcs: []*tensor.Dense{fa, fb},
					Run: func() { tensor.GemmPacked(fd, fa, pb, fb, ep) },
				})
				i += consumed
				fused = true
			}
		}
		if !fused {
			// Standalone matmul: still run it off the pre-packed panels
			// (the generic MatMulInto would re-pack B on every call).
			fa, fd := a, dst
			out = append(out, Step{
				Name: s.Name, kid: s.kid,
				kind: OpMatMul, dst: fd, srcs: []*tensor.Dense{fa, b},
				Run: func() { tensor.GemmPacked(fd, fa, pb, nil, tensor.EpNone) },
			})
			i++
		}
	}
	p.steps = out
	return packs
}
