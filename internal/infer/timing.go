package infer

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Per-kernel timing: every recorded kernel name is interned into a
// fixed table of atomic call/nanosecond counters at Program.Add time,
// so the execute path does array-indexed atomic adds only — no map
// lookups, no allocation, nothing the race detector or a profiler
// would flag on the hot path. Timing is process-global and off by
// default; the serving daemon enables it with -kernel-timing and the
// kernel benchmark enables it explicitly. With timing off, Program.Run
// pays a single atomic load.

// maxKernels bounds the intern table. The forward op vocabulary is
// ~18 names; overflow kernels run untimed (kid -1) rather than grow
// the fixed atomic arrays.
const maxKernels = 64

var (
	timingOn atomic.Bool

	kernelMu    sync.Mutex
	kernelIDs   = make(map[string]int)
	kernelNames []string

	kernelCalls [maxKernels]atomic.Uint64
	kernelNanos [maxKernels]atomic.Uint64
)

// SetKernelTiming toggles per-kernel timing for all plan execution in
// the process.
func SetKernelTiming(on bool) { timingOn.Store(on) }

// KernelTimingEnabled reports whether plan execution is being timed.
func KernelTimingEnabled() bool { return timingOn.Load() }

// internKernel maps a kernel name to its counter slot, assigning one on
// first sight. Called at record (compile) time only.
func internKernel(name string) int {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if id, ok := kernelIDs[name]; ok {
		return id
	}
	if len(kernelNames) >= maxKernels {
		return -1
	}
	id := len(kernelNames)
	kernelIDs[name] = id
	kernelNames = append(kernelNames, name)
	return id
}

// runTimed is Run's timed twin: one clock read per step, with the gap
// attributed to the step's kernel slot.
func (p *Program) runTimed() {
	prev := time.Now()
	for i := range p.steps {
		st := &p.steps[i]
		st.Run()
		now := time.Now()
		if st.kid >= 0 {
			kernelNanos[st.kid].Add(uint64(now.Sub(prev)))
			kernelCalls[st.kid].Add(1)
		}
		prev = now
	}
}

// KernelStat is one kernel's accumulated execution totals.
type KernelStat struct {
	Kernel string `json:"kernel"`
	Calls  uint64 `json:"calls"`
	Nanos  uint64 `json:"nanos"`
}

// KernelStats snapshots the per-kernel counters, sorted by kernel
// name. Kernels that have been interned but never timed (timing off,
// or not yet executed) report zero calls.
func KernelStats() []KernelStat {
	kernelMu.Lock()
	names := append([]string(nil), kernelNames...)
	kernelMu.Unlock()
	out := make([]KernelStat, len(names))
	for id, name := range names {
		out[id] = KernelStat{
			Kernel: name,
			Calls:  kernelCalls[id].Load(),
			Nanos:  kernelNanos[id].Load(),
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// ResetKernelStats zeroes the counters (names stay interned). Intended
// for benchmarks that attribute a measured loop.
func ResetKernelStats() {
	kernelMu.Lock()
	n := len(kernelNames)
	kernelMu.Unlock()
	for i := 0; i < n; i++ {
		kernelCalls[i].Store(0)
		kernelNanos[i].Store(0)
	}
}
