package infer

import (
	"sync"
	"testing"

	"selnet/internal/tensor"
)

func TestProgramRunsInOrder(t *testing.T) {
	p := NewProgram()
	var got []string
	p.Add("a", func() { got = append(got, "a") })
	p.Add("b", func() { got = append(got, "b") })
	p.Add("c", func() { got = append(got, "c") })
	p.Run()
	p.Run()
	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("ran %d steps, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d = %q, want %q", i, got[i], want[i])
		}
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
}

func newTestPool(maxBatch int, compiles *int) *Pool {
	return NewPool(maxBatch, func(batch int) *Plan {
		if compiles != nil {
			*compiles++
		}
		return NewPlan(batch, NewProgram(), nil, nil, nil, nil, nil, nil)
	})
}

func TestPoolClassRounding(t *testing.T) {
	p := newTestPool(33, nil)
	if got := p.MaxBatch(); got != 64 {
		t.Fatalf("MaxBatch = %d, want 64 (33 rounded up)", got)
	}
	for _, tc := range []struct{ n, capacity int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {33, 64}, {64, 64},
	} {
		pl := p.Get(tc.n)
		if pl.Batch != tc.capacity {
			t.Fatalf("Get(%d) plan capacity %d, want %d", tc.n, pl.Batch, tc.capacity)
		}
		p.Put(pl)
	}
}

func TestPoolReusesResidentPlan(t *testing.T) {
	compiles := 0
	p := newTestPool(8, &compiles)
	pl := p.Get(4)
	p.Put(pl)
	for i := 0; i < 10; i++ {
		pl2 := p.Get(3) // same class as 4
		if pl2 != pl {
			t.Fatalf("checkout %d got a different plan", i)
		}
		p.Put(pl2)
	}
	if compiles != 1 {
		t.Fatalf("compiled %d times, want 1", compiles)
	}
	st := p.Stats()
	if st.Checkouts != 11 || st.Misses != 1 || st.Compiles != 1 {
		t.Fatalf("stats = %+v, want 11 checkouts, 1 miss, 1 compile", st)
	}
}

func TestPoolConcurrentCheckoutsGetDistinctPlans(t *testing.T) {
	p := newTestPool(8, nil)
	a := p.Get(8)
	b := p.Get(8)
	if a == b {
		t.Fatal("two concurrent checkouts shared one plan")
	}
	p.Put(a)
	p.Put(b)
}

func TestPoolDropReleasesAndRecompiles(t *testing.T) {
	compiles := 0
	p := NewPool(4, func(batch int) *Plan {
		compiles++
		buf := tensor.NewPooled(batch, 4)
		return NewPlan(batch, NewProgram(), buf, nil, buf, nil, nil, []*tensor.Dense{buf})
	})
	pl := p.Get(4)
	p.Put(pl)
	p.Drop()
	pl2 := p.Get(4)
	if pl2 == pl {
		t.Fatal("Drop left the old plan resident")
	}
	p.Put(pl2)
	st := p.Stats()
	if st.Drops != 1 || st.Compiles != 2 {
		t.Fatalf("stats = %+v, want 1 drop, 2 compiles", st)
	}
}

func TestPoolGetOutOfRangePanics(t *testing.T) {
	p := newTestPool(8, nil)
	for _, n := range []int{0, -1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", n)
				}
			}()
			p.Get(n)
		}()
	}
}

func TestPoolStatsMerge(t *testing.T) {
	a := PoolStats{Checkouts: 1, Misses: 2, Compiles: 3, Drops: 4}
	b := PoolStats{Checkouts: 10, Misses: 20, Compiles: 30, Drops: 40}
	got := a.Merge(b)
	want := PoolStats{Checkouts: 11, Misses: 22, Compiles: 33, Drops: 44}
	if got != want {
		t.Fatalf("Merge = %+v, want %+v", got, want)
	}
}

func TestPoolConcurrentGetPut(t *testing.T) {
	p := newTestPool(16, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pl := p.Get(1 + i%16)
				pl.Run()
				p.Put(pl)
			}
		}()
	}
	wg.Wait()
	if st := p.Stats(); st.Checkouts != 8*200 {
		t.Fatalf("checkouts = %d, want %d", st.Checkouts, 8*200)
	}
}

// A checkout that straddles a Drop must not resurrect the retired
// generation: Put sees the stale epoch and releases the plan.
func TestPoolPutAfterDropReleases(t *testing.T) {
	p := NewPool(4, func(batch int) *Plan {
		buf := tensor.NewPooled(batch, 4)
		return NewPlan(batch, NewProgram(), buf, nil, buf, nil, nil, []*tensor.Dense{buf})
	})
	pl := p.Get(4)
	p.Drop()
	p.Put(pl)
	if pl.bufs != nil {
		t.Fatal("stale plan was not released on Put")
	}
	pl2 := p.Get(4)
	if pl2 == pl {
		t.Fatal("dropped plan was resurrected from the pool")
	}
	if st := p.Stats(); st.Compiles != 2 {
		t.Fatalf("compiles = %d, want 2 (stale plan must not re-pool)", st.Compiles)
	}
	p.Put(pl2)
}
