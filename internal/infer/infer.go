// Package infer is the forward-only execution engine behind SelNet's
// serving hot path. It separates the define phase from the execute
// phase, the way inference servers and deep-learning compilers do: a
// model's forward pass is recorded once into a Program (a topologically
// ordered list of forward kernels bound to preallocated buffers), then
// replayed in place for every request — no tape, no graph nodes, no
// per-call tensor allocation.
//
// A Plan wraps a Program with its input and output buffers for one
// batch-size class; a Pool hands plans out to concurrent requests so
// the hot path never contends on a shared plan's buffers. Steady-state
// execution performs zero heap allocations: the only allocations happen
// on compile (pool miss) and are amortized across the plan's lifetime.
package infer

import (
	"sync"
	"sync/atomic"

	"selnet/internal/tensor"
)

// Step is one recorded forward kernel: Run recomputes the op's output
// buffer from its input buffers, all captured at record time.
type Step struct {
	Name string
	Run  func()

	// kid is the interned kernel-timing slot for Name (-1 when the
	// kernel table overflowed); assigned by Program.Add.
	kid int

	// kind/dst/srcs describe the step to the optimize pass (fuse.go):
	// dst is the buffer Run overwrites, srcs the buffers it reads.
	// Steps appended via Add carry OpBarrier (unknown effects), which
	// disables optimization of the whole program.
	kind OpKind
	dst  *tensor.Dense
	srcs []*tensor.Dense
}

// Program is a replayable forward pass: the ordered kernels of one
// recorded computation. Programs are recorded by autodiff's forward
// tape (autodiff.NewForwardTape) and owned by exactly one Plan, since
// the kernels write into that plan's buffers.
type Program struct {
	steps []Step
}

// NewProgram returns an empty program for a recording tape to fill.
func NewProgram() *Program { return &Program{} }

// Add appends one kernel with unknown buffer effects (an optimization
// barrier). The name is interned into the kernel-timing table at record
// time so the execute path never touches the intern map. Prefer AddOp,
// which keeps the program optimizable.
func (p *Program) Add(name string, run func()) {
	p.steps = append(p.steps, Step{Name: name, Run: run, kid: internKernel(name)})
}

// AddOp appends one kernel with its dataflow description: kind
// identifies the operation to the fusion pass, dst is the buffer run
// overwrites, and srcs are the buffers it reads.
func (p *Program) AddOp(name string, kind OpKind, dst *tensor.Dense, run func(), srcs ...*tensor.Dense) {
	p.steps = append(p.steps, Step{
		Name: name, Run: run, kid: internKernel(name),
		kind: kind, dst: dst, srcs: srcs,
	})
}

// Len returns the number of recorded kernels.
func (p *Program) Len() int { return len(p.steps) }

// Run replays every kernel in record order. When kernel timing is
// enabled the replay also attributes wall time to each kernel's global
// counters; disabled (the default), the only overhead versus a plain
// loop is one atomic load per Run.
func (p *Program) Run() {
	if timingOn.Load() {
		p.runTimed()
		return
	}
	for i := range p.steps {
		p.steps[i].Run()
	}
}

// Plan is one compiled forward pass for a fixed batch capacity: the
// program plus the buffers a caller fills (X, T) and reads (Out, Tau,
// P). A plan is single-threaded — check one out of a Pool per request —
// and valid as long as the model's parameter tensors are alive: kernels
// read parameter values through the same Dense objects the optimizer
// updates in place.
type Plan struct {
	// Batch is the row capacity; callers may fill fewer rows and ignore
	// the padding rows' outputs.
	Batch int
	// X is the input buffer the caller fills (Batch x inputDim).
	X *tensor.Dense
	// T is the per-row threshold column (Batch x 1); nil for plans that
	// stop at an intermediate output (e.g. the partitioned encoder plan).
	T *tensor.Dense
	// Out is the primary output (estimates, or an intermediate such as
	// the enhanced representation).
	Out *tensor.Dense
	// Tau and P are the control-point outputs (nil when the plan does
	// not surface them).
	Tau, P *tensor.Dense

	prog  *Program
	bufs  []*tensor.Dense   // pooled buffers to recycle on Release
	packs []*tensor.PackedB // packed weight panels owned by the plan

	// epoch is the owning pool's drop epoch at compile time; Put releases
	// plans from a dropped epoch instead of re-pooling them.
	epoch uint64
}

// NewPlan assembles a compiled plan. bufs lists the pooled buffers the
// plan owns (typically the recording tape's intermediates plus the
// input buffers); Release returns them to tensor's buffer pool.
//
// NewPlan also runs the optimize pass (fuse.go) over the program: layer
// sequences are fused and weight matrices are packed into panel layout.
// The packed panels snapshot the weights — a plan therefore belongs to
// one model generation, and any in-place parameter mutation afterwards
// must be followed by dropping the plans (selnet's training entry
// points do this).
func NewPlan(batch int, prog *Program, x, t, out, tau, p *tensor.Dense, bufs []*tensor.Dense) *Plan {
	packs := prog.optimize(out, tau, p)
	return &Plan{Batch: batch, X: x, T: t, Out: out, Tau: tau, P: p, prog: prog, bufs: bufs, packs: packs}
}

// Run executes the forward pass in place over the plan's buffers.
func (p *Plan) Run() { p.prog.Run() }

// Steps returns the number of kernels in the plan's program.
func (p *Plan) Steps() int { return p.prog.Len() }

// Release recycles the plan's pooled buffers. The plan must not run
// again afterwards; Pool.Drop calls this for resident plans when a
// model's plans are invalidated.
func (p *Plan) Release() {
	for _, b := range p.bufs {
		tensor.Recycle(b)
	}
	p.bufs = nil
	for _, pb := range p.packs {
		pb.Release()
	}
	p.packs = nil
}

// ----------------------------------------------------------------------------
// Pool

// maxClasses bounds the batch-size classes a pool manages (class i
// serves batches of up to 1<<i rows).
const maxClasses = 16

// PoolStats is a point-in-time snapshot of a pool's counters.
type PoolStats struct {
	// Checkouts counts plan checkouts (Get calls).
	Checkouts uint64 `json:"checkouts"`
	// Misses counts checkouts that missed the class's resident fast
	// path and fell through to the overflow pool or a compile — the
	// contention signal for concurrent same-class checkouts.
	Misses uint64 `json:"misses"`
	// Compiles counts plan compilations: first use of a class, overflow
	// under concurrency, and lazy recompiles after Drop or GC.
	Compiles uint64 `json:"compiles"`
	// Drops counts invalidations (Drop calls).
	Drops uint64 `json:"drops"`
}

// Pool hands out compiled plans per batch-size class so concurrent
// requests never share buffers. Each class keeps one resident plan in
// an atomic slot — the single-request fast path survives GC cycles —
// plus a sync.Pool overflow for bursts. Plans are compiled lazily on
// first use of a class.
type Pool struct {
	compile  func(batch int) *Plan
	maxBatch int
	classes  []poolClass
	epoch    atomic.Uint64 // bumped by Drop; stale plans die on Put

	checkouts atomic.Uint64
	misses    atomic.Uint64
	compiles  atomic.Uint64
	drops     atomic.Uint64
}

type poolClass struct {
	resident atomic.Pointer[Plan]
	overflow sync.Pool
}

// NewPool builds a plan pool whose classes cover batches of 1 up to
// maxBatch rows (rounded up to a power of two, capped at 1<<15);
// compile builds a plan for an exact batch capacity.
func NewPool(maxBatch int, compile func(batch int) *Plan) *Pool {
	if maxBatch < 1 {
		maxBatch = 1
	}
	nc := 1
	for (1<<(nc-1)) < maxBatch && nc < maxClasses {
		nc++
	}
	return &Pool{
		compile:  compile,
		maxBatch: 1 << (nc - 1),
		classes:  make([]poolClass, nc),
	}
}

// MaxBatch returns the largest batch a single plan covers; larger
// requests are chunked by the caller.
func (p *Pool) MaxBatch() int { return p.maxBatch }

// classFor returns the class index for an n-row batch (smallest class
// whose capacity covers n).
func (p *Pool) classFor(n int) int {
	c := 0
	for (1 << c) < n {
		c++
	}
	return c
}

// Get checks out a plan able to hold n rows (1 <= n <= MaxBatch),
// compiling one if the class has none pooled. The caller must return
// it with Put.
func (p *Pool) Get(n int) *Plan {
	if n < 1 || n > p.maxBatch {
		panic("infer: Pool.Get batch out of range")
	}
	p.checkouts.Add(1)
	cl := &p.classes[p.classFor(n)]
	if pl := cl.resident.Swap(nil); pl != nil {
		return pl
	}
	p.misses.Add(1)
	if v := cl.overflow.Get(); v != nil {
		return v.(*Plan)
	}
	p.compiles.Add(1)
	// Epoch is read before compiling: a Drop racing the compile stamps
	// the plan stale, so Put releases it rather than re-pooling it.
	epoch := p.epoch.Load()
	pl := p.compile(1 << p.classFor(n))
	pl.epoch = epoch
	return pl
}

// Put returns a checked-out plan. Plans from an epoch that has since
// been dropped are released instead of re-pooled, so a checkout that
// straddles an invalidation cannot resurrect the retired generation's
// buffers.
func (p *Pool) Put(pl *Plan) {
	if pl.epoch != p.epoch.Load() {
		pl.Release()
		return
	}
	cl := &p.classes[p.classFor(pl.Batch)]
	if cl.resident.CompareAndSwap(nil, pl) {
		return
	}
	cl.overflow.Put(pl)
}

// Drop invalidates every pooled plan, releasing resident plans'
// buffers back to the tensor pool. Plans currently checked out are
// unaffected until their holders Put them back, at which point the
// epoch mismatch releases them too. Call when the model's parameters
// are replaced wholesale or the pool is being discarded with its model.
func (p *Pool) Drop() {
	p.drops.Add(1)
	p.epoch.Add(1)
	for i := range p.classes {
		cl := &p.classes[i]
		if pl := cl.resident.Swap(nil); pl != nil {
			pl.Release()
		}
		for {
			v := cl.overflow.Get()
			if v == nil {
				break
			}
			v.(*Plan).Release()
		}
	}
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Checkouts: p.checkouts.Load(),
		Misses:    p.misses.Load(),
		Compiles:  p.compiles.Load(),
		Drops:     p.drops.Load(),
	}
}

// Merge folds s2 into s (used to aggregate a partitioned model's
// encoder and per-cluster head pools into one reported figure).
func (s PoolStats) Merge(s2 PoolStats) PoolStats {
	return PoolStats{
		Checkouts: s.Checkouts + s2.Checkouts,
		Misses:    s.Misses + s2.Misses,
		Compiles:  s.Compiles + s2.Compiles,
		Drops:     s.Drops + s2.Drops,
	}
}
