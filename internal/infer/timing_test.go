package infer

import (
	"testing"
	"time"
)

func TestKernelTimingAccumulates(t *testing.T) {
	prog := NewProgram()
	var ran int
	prog.Add("ttest_spin", func() {
		ran++
		for start := time.Now(); time.Since(start) < 50*time.Microsecond; {
		}
	})
	prog.Add("ttest_noop", func() { ran++ })

	// Timing off: counters stay untouched.
	SetKernelTiming(false)
	ResetKernelStats()
	prog.Run()
	if ran != 2 {
		t.Fatalf("ran %d steps, want 2", ran)
	}
	if c := statFor(t, "ttest_spin").Calls; c != 0 {
		t.Fatalf("calls %d with timing off, want 0", c)
	}

	// Timing on: both kernels are counted, and the spin kernel carries
	// the bulk of the attributed time.
	SetKernelTiming(true)
	defer SetKernelTiming(false)
	for i := 0; i < 3; i++ {
		prog.Run()
	}
	spin, noop := statFor(t, "ttest_spin"), statFor(t, "ttest_noop")
	if spin.Calls != 3 || noop.Calls != 3 {
		t.Fatalf("calls spin=%d noop=%d, want 3 each", spin.Calls, noop.Calls)
	}
	if spin.Nanos < uint64(3*40*time.Microsecond) {
		t.Fatalf("spin nanos %d, want at least ~120µs", spin.Nanos)
	}
	if noop.Nanos >= spin.Nanos {
		t.Fatalf("noop nanos %d not below spin nanos %d", noop.Nanos, spin.Nanos)
	}

	ResetKernelStats()
	if s := statFor(t, "ttest_spin"); s.Calls != 0 || s.Nanos != 0 {
		t.Fatalf("stats after reset: %+v", s)
	}
}

func TestKernelTimingInternsOnce(t *testing.T) {
	a := internKernel("ttest_shared")
	b := internKernel("ttest_shared")
	if a != b {
		t.Fatalf("interned ids differ: %d vs %d", a, b)
	}
	if a < 0 {
		t.Fatalf("unexpected overflow id %d", a)
	}
}

// statFor finds one kernel's snapshot by name; the counter table is
// process-global, so tests use ttest_-prefixed names.
func statFor(t *testing.T, name string) KernelStat {
	t.Helper()
	for _, s := range KernelStats() {
		if s.Kernel == name {
			return s
		}
	}
	t.Fatalf("kernel %q not interned", name)
	return KernelStat{}
}
