package metrics

import (
	"math"
	"testing"
)

func TestQError(t *testing.T) {
	cases := []struct {
		pred, label, eps, want float64
	}{
		{10, 10, 1, 1},      // perfect
		{20, 10, 1, 2},      // overestimate
		{10, 20, 1, 2},      // underestimate (symmetric)
		{0, 10, 1, 10},      // zero prediction floored to eps
		{10, 0, 1, 10},      // empty result floored to eps
		{0, 0, 1, 1},        // both floored: perfect
		{0.5, 0.1, 0.01, 5}, // sub-one selectivities with a smaller floor
		{-3, 10, 1, 10},     // negative prediction floored
		{5, 5, 0, 1},        // eps <= 0 falls back to the conventional floor of 1
		{0.5, 0.25, 0, 1},   // ...so sub-one values both floor to 1
	}
	for _, c := range cases {
		if got := QError(c.pred, c.label, c.eps); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("QError(%v, %v, %v) = %v, want %v", c.pred, c.label, c.eps, got, c.want)
		}
	}
}

func TestQErrors(t *testing.T) {
	got := QErrors([]float64{10, 5}, []float64{5, 10}, 1)
	if len(got) != 2 || got[0] != 2 || got[1] != 2 {
		t.Fatalf("QErrors = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	QErrors([]float64{1}, []float64{1, 2}, 1)
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.95, 4.8}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Fatalf("single element: %v", got)
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty: %v, want NaN", got)
	}
}

func TestQuantilesSortsACopy(t *testing.T) {
	xs := []float64{5, 1, 3}
	got := Quantiles(xs, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Quantiles = %v", got)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}
