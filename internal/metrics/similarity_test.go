package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// monotoneFake is a consistent distance-threshold estimator.
type monotoneFake struct{}

func (monotoneFake) Estimate(x []float64, t float64) float64 { return 100 * t }
func (monotoneFake) Name() string                            { return "mono" }
func (monotoneFake) ConsistencyGuaranteed() bool             { return true }

func TestCosineSimilarityAdapterMapping(t *testing.T) {
	a := CosineSimilarityAdapter{Base: monotoneFake{}}
	// sim >= 0.8 corresponds to cosdist <= 0.2.
	if got := a.EstimateSimilarity(nil, 0.8); math.Abs(got-100*0.2) > 1e-12 {
		t.Fatalf("EstimateSimilarity(0.8) = %v, want 20", got)
	}
	if a.Name() != "mono(sim)" {
		t.Fatalf("Name = %q", a.Name())
	}
	if !a.ConsistencyGuaranteed() {
		t.Fatalf("adapter must inherit the consistency guarantee")
	}
}

// A consistent distance estimator yields a similarity estimator that is
// non-increasing in the similarity threshold.
func TestCosineSimilarityAdapterAntitone(t *testing.T) {
	a := CosineSimilarityAdapter{Base: monotoneFake{}}
	f := func(s1, s2 float64) bool {
		s1 = math.Mod(math.Abs(s1), 1)
		s2 = math.Mod(math.Abs(s2), 1)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		// Higher similarity threshold => fewer matches.
		return a.EstimateSimilarity(nil, s2) <= a.EstimateSimilarity(nil, s1)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSimilarityAdapterInconsistentBase(t *testing.T) {
	a := CosineSimilarityAdapter{Base: &fakeEstimator{
		name: "free",
		f:    func(x []float64, t float64) float64 { return t },
	}}
	if a.ConsistencyGuaranteed() {
		t.Fatalf("adapter over a non-Consistent base must not claim consistency")
	}
}
