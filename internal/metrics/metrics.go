// Package metrics implements the paper's evaluation measures: MSE, MAE and
// MAPE (Appendix B.3), the empirical monotonicity score of Table 5, and
// estimation-time measurement for Table 7. It also defines the Estimator
// interface that every model in this repository satisfies.
package metrics

import (
	"math"
	"math/rand"
	"time"

	"selnet/internal/vecdata"
)

// Estimator is a trained selectivity estimator: given a query vector and a
// distance threshold it returns the estimated number of matching objects.
type Estimator interface {
	// Estimate returns the estimated selectivity of (x, t).
	Estimate(x []float64, t float64) float64
	// Name returns the model's display name (as used in the paper's tables).
	Name() string
}

// Consistent is implemented by estimators that guarantee monotonicity in
// the threshold (the models marked with * in the paper's tables).
type Consistent interface {
	// ConsistencyGuaranteed reports whether monotonicity holds by construction.
	ConsistencyGuaranteed() bool
}

// Errors aggregates the paper's three error measures.
type Errors struct {
	MSE  float64
	MAE  float64
	MAPE float64
}

// MSE returns the mean squared error between predictions and labels.
func MSE(pred, label []float64) float64 {
	checkLen(pred, label)
	var s float64
	for i, p := range pred {
		d := p - label[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error.
func MAE(pred, label []float64) float64 {
	checkLen(pred, label)
	var s float64
	for i, p := range pred {
		s += math.Abs(p - label[i])
	}
	return s / float64(len(pred))
}

// MAPE returns the mean absolute percentage error |ŷ-y|/y. Labels of zero
// are skipped (the paper's workloads have y >= 1).
func MAPE(pred, label []float64) float64 {
	checkLen(pred, label)
	var s float64
	var n int
	for i, p := range pred {
		if label[i] == 0 {
			continue
		}
		s += math.Abs(p-label[i]) / label[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

func checkLen(pred, label []float64) {
	if len(pred) != len(label) {
		panic("metrics: prediction/label length mismatch")
	}
}

// Predict runs the estimator over the queries and returns predictions and
// labels as parallel slices.
func Predict(est Estimator, queries []vecdata.Query) (pred, label []float64) {
	pred = make([]float64, len(queries))
	label = make([]float64, len(queries))
	for i, q := range queries {
		pred[i] = est.Estimate(q.X, q.T)
		label[i] = q.Y
	}
	return pred, label
}

// Evaluate computes all three error measures of the estimator on queries.
func Evaluate(est Estimator, queries []vecdata.Query) Errors {
	pred, label := Predict(est, queries)
	return Errors{MSE: MSE(pred, label), MAE: MAE(pred, label), MAPE: MAPE(pred, label)}
}

// EmpiricalMonotonicity reproduces the Table 5 measure: for numQueries
// query vectors, numThresholds thresholds are sampled uniformly in
// [0, tMax]; among all ordered threshold pairs (t < t'), the score is the
// percentage with Estimate(x,t) <= Estimate(x,t'). 100 means perfectly
// consistent.
func EmpiricalMonotonicity(rng *rand.Rand, est Estimator, queryVecs [][]float64, numQueries, numThresholds int, tMax float64) float64 {
	if numQueries > len(queryVecs) {
		numQueries = len(queryVecs)
	}
	idx := rng.Perm(len(queryVecs))[:numQueries]
	var ok, total int64
	for _, qi := range idx {
		x := queryVecs[qi]
		ts := make([]float64, numThresholds)
		for j := range ts {
			ts[j] = rng.Float64() * tMax
		}
		est := estimates(est, x, ts)
		for a := 0; a < numThresholds; a++ {
			for b := a + 1; b < numThresholds; b++ {
				total++
				ta, tb := ts[a], ts[b]
				ea, eb := est[a], est[b]
				if ta > tb {
					ta, tb = tb, ta
					ea, eb = eb, ea
				}
				if ea <= eb+1e-9 {
					ok++
				}
			}
		}
	}
	if total == 0 {
		return 100
	}
	return 100 * float64(ok) / float64(total)
}

func estimates(est Estimator, x []float64, ts []float64) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = est.Estimate(x, t)
	}
	return out
}

// AvgEstimationTime measures the mean wall-clock time per Estimate call
// over the queries (Table 7), in milliseconds.
func AvgEstimationTime(est Estimator, queries []vecdata.Query) float64 {
	if len(queries) == 0 {
		return 0
	}
	start := time.Now()
	for _, q := range queries {
		est.Estimate(q.X, q.T)
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / 1e6 / float64(len(queries))
}
