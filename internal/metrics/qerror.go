package metrics

import (
	"math"
	"sort"
)

// QError returns the q-error of one estimate: max(pred/label,
// label/pred) after flooring both sides at eps. The floor is the
// paper's convention for selectivity/cardinality error — it keeps the
// ratio finite for empty results and stops near-zero labels from
// exploding the metric. A perfect estimate scores 1; eps <= 0 is
// treated as the conventional floor of 1.
func QError(pred, label, eps float64) float64 {
	if eps <= 0 {
		eps = 1
	}
	p := math.Max(pred, eps)
	l := math.Max(label, eps)
	return math.Max(p/l, l/p)
}

// QErrors maps QError over parallel prediction and label slices
// (panics if the lengths differ, like the other slice metrics here).
func QErrors(pred, label []float64, eps float64) []float64 {
	if len(pred) != len(label) {
		panic("metrics: QErrors length mismatch")
	}
	out := make([]float64, len(pred))
	for i := range pred {
		out[i] = QError(pred[i], label[i], eps)
	}
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// slice, linearly interpolating between ranks. Returns NaN for an
// empty slice.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Quantiles sorts a copy of xs and returns the requested quantiles in
// order. One sort serves all requested quantiles.
func Quantiles(xs []float64, qs ...float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = Quantile(sorted, q)
	}
	return out
}
