package metrics

import (
	"math"
	"math/rand"
	"testing"

	"selnet/internal/vecdata"
)

func TestMSEMAEMAPE(t *testing.T) {
	pred := []float64{2, 4, 6}
	label := []float64{1, 4, 8}
	if got := MSE(pred, label); math.Abs(got-(1.0+0+4)/3) > 1e-12 {
		t.Fatalf("MSE = %v", got)
	}
	if got := MAE(pred, label); math.Abs(got-(1.0+0+2)/3) > 1e-12 {
		t.Fatalf("MAE = %v", got)
	}
	want := (1.0/1 + 0 + 2.0/8) / 3
	if got := MAPE(pred, label); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MAPE = %v, want %v", got, want)
	}
}

func TestMAPESkipsZeroLabels(t *testing.T) {
	if got := MAPE([]float64{5, 3}, []float64{0, 3}); got != 0 {
		t.Fatalf("MAPE with zero label = %v", got)
	}
}

func TestPerfectPredictions(t *testing.T) {
	y := []float64{1, 10, 100}
	if MSE(y, y) != 0 || MAE(y, y) != 0 || MAPE(y, y) != 0 {
		t.Fatalf("perfect predictions must give zero errors")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

// fakeEstimator returns a fixed function of (x, t).
type fakeEstimator struct {
	f    func(x []float64, t float64) float64
	name string
}

func (f *fakeEstimator) Estimate(x []float64, t float64) float64 { return f.f(x, t) }
func (f *fakeEstimator) Name() string                            { return f.name }

func TestEvaluate(t *testing.T) {
	est := &fakeEstimator{name: "const", f: func(x []float64, t float64) float64 { return 5 }}
	queries := []vecdata.Query{
		{X: []float64{0}, T: 1, Y: 5},
		{X: []float64{0}, T: 2, Y: 10},
	}
	e := Evaluate(est, queries)
	if e.MSE != 12.5 || e.MAE != 2.5 {
		t.Fatalf("Evaluate = %+v", e)
	}
}

func TestEmpiricalMonotonicityPerfect(t *testing.T) {
	est := &fakeEstimator{name: "mono", f: func(x []float64, tt float64) float64 { return tt * 10 }}
	rng := rand.New(rand.NewSource(1))
	vecs := [][]float64{{0}, {1}, {2}}
	score := EmpiricalMonotonicity(rng, est, vecs, 3, 20, 1.0)
	if score != 100 {
		t.Fatalf("monotone estimator score = %v, want 100", score)
	}
}

func TestEmpiricalMonotonicityViolations(t *testing.T) {
	// A strictly decreasing estimator violates every pair.
	est := &fakeEstimator{name: "anti", f: func(x []float64, tt float64) float64 { return -tt }}
	rng := rand.New(rand.NewSource(2))
	score := EmpiricalMonotonicity(rng, est, [][]float64{{0}}, 1, 30, 1.0)
	if score > 1 {
		t.Fatalf("anti-monotone estimator score = %v, want about 0", score)
	}
	// A noisy estimator lands in between.
	noisy := &fakeEstimator{name: "noisy", f: func(x []float64, tt float64) float64 {
		return tt + 0.5*math.Sin(tt*50)
	}}
	s2 := EmpiricalMonotonicity(rng, noisy, [][]float64{{0}}, 1, 50, 1.0)
	if s2 <= 1 || s2 >= 100 {
		t.Fatalf("noisy estimator score = %v, want strictly between 0 and 100", s2)
	}
}

func TestAvgEstimationTimePositive(t *testing.T) {
	est := &fakeEstimator{name: "x", f: func(x []float64, tt float64) float64 {
		s := 0.0
		for i := 0; i < 100; i++ {
			s += math.Sqrt(float64(i))
		}
		return s
	}}
	queries := make([]vecdata.Query, 50)
	for i := range queries {
		queries[i] = vecdata.Query{X: []float64{0}, T: 1, Y: 1}
	}
	ms := AvgEstimationTime(est, queries)
	if ms <= 0 {
		t.Fatalf("AvgEstimationTime = %v", ms)
	}
	if AvgEstimationTime(est, nil) != 0 {
		t.Fatalf("empty queries should give 0")
	}
}
