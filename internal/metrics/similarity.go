package metrics

// This file implements the similarity-function extension of the paper's
// Definition 1: "it is easy to extend it to consider d as a similarity
// function: we only need to change <= to >= in the above definition."
// For cosine similarity the two formulations are linked by
// sim(u, v) = 1 - cosdist(u, v), so a similarity threshold s corresponds
// to the distance threshold t = 1 - s.

// SimilarityEstimator answers similarity-threshold selectivity queries:
// the number of objects with similarity at least s.
type SimilarityEstimator interface {
	// EstimateSimilarity returns the estimated |{o : sim(x, o) >= s}|.
	EstimateSimilarity(x []float64, s float64) float64
	// Name returns the model's display name.
	Name() string
}

// CosineSimilarityAdapter converts a distance-threshold estimator trained
// under cosine *distance* into a similarity-threshold estimator. If the
// underlying estimator is consistent (non-decreasing in t), the adapted
// one is consistent in the similarity sense: non-increasing in s.
type CosineSimilarityAdapter struct {
	Base Estimator
}

// EstimateSimilarity maps sim >= s to cosdist <= 1-s and delegates.
func (a CosineSimilarityAdapter) EstimateSimilarity(x []float64, s float64) float64 {
	return a.Base.Estimate(x, 1-s)
}

// Name returns the underlying model's name with a similarity tag.
func (a CosineSimilarityAdapter) Name() string { return a.Base.Name() + "(sim)" }

// ConsistencyGuaranteed reports whether the underlying estimator
// guarantees monotonicity (which the adapter inherits, reversed).
func (a CosineSimilarityAdapter) ConsistencyGuaranteed() bool {
	c, ok := a.Base.(Consistent)
	return ok && c.ConsistencyGuaranteed()
}
