package obs

import (
	"sort"
	"sync"
)

// ClusterMonitor collects the distributed-serving counters: per-model
// leadership role and term, failover promotions/demotions, per-peer
// replication lag, and WAL pull-stream traffic. The cluster node feeds
// it from its heartbeat and replication loops; the HTTP server renders
// it into /metrics. All methods are safe for concurrent use and cheap
// enough for per-heartbeat updates.
type ClusterMonitor struct {
	mu    sync.Mutex
	roles map[string]clusterRole
	// lag[model][peer] is the replication lag the local node last
	// observed for that peer: on a leader, its own last assigned
	// sequence minus the follower's acknowledged (journaled) sequence;
	// on a follower, the leader's last sequence minus the local applied
	// sequence, keyed by the follower's own URL.
	lag        map[string]map[string]uint64
	promotions map[string]uint64
	demotions  map[string]uint64
	diverged   map[string]bool
	pulls      uint64
	pullErrors uint64
	entries    uint64
}

type clusterRole struct {
	leader bool
	term   uint64
}

// ClusterCounters is a point-in-time copy of the monitor's totals.
type ClusterCounters struct {
	Promotions uint64 `json:"promotions"`
	Demotions  uint64 `json:"demotions"`
	Diverged   uint64 `json:"diverged"`
	Pulls      uint64 `json:"pulls"`
	PullErrors uint64 `json:"pull_errors"`
	Entries    uint64 `json:"entries"`
}

// NewClusterMonitor builds an empty monitor.
func NewClusterMonitor() *ClusterMonitor {
	return &ClusterMonitor{
		roles:      make(map[string]clusterRole),
		lag:        make(map[string]map[string]uint64),
		promotions: make(map[string]uint64),
		demotions:  make(map[string]uint64),
		diverged:   make(map[string]bool),
	}
}

// SetRole records the local node's current role and term for a model.
func (c *ClusterMonitor) SetRole(model string, leader bool, term uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.roles[model] = clusterRole{leader: leader, term: term}
	c.mu.Unlock()
}

// Promotion counts one leader failover won by the local node.
func (c *ClusterMonitor) Promotion(model string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.promotions[model]++
	c.mu.Unlock()
}

// Demotion counts one leadership loss (a higher-term claim superseded
// the local node).
func (c *ClusterMonitor) Demotion(model string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.demotions[model]++
	c.mu.Unlock()
}

// MarkDiverged latches the divergence flag for a model: the local
// replica holds journal entries that conflict with the leader's history
// and must be reseeded. The flag only clears with the reseed (a process
// restart), so it stays visible until an operator acts.
func (c *ClusterMonitor) MarkDiverged(model string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.diverged[model] = true
	c.mu.Unlock()
}

// SetLag records the replication lag observed for one peer of a model.
func (c *ClusterMonitor) SetLag(model, peer string, lag uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	m := c.lag[model]
	if m == nil {
		m = make(map[string]uint64)
		c.lag[model] = m
	}
	m[peer] = lag
	c.mu.Unlock()
}

// DropPeer forgets a peer's lag series for a model (the peer left the
// replica set, or leadership moved and the local node no longer tracks
// its followers).
func (c *ClusterMonitor) DropPeer(model, peer string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	delete(c.lag[model], peer)
	c.mu.Unlock()
}

// ObservePull records one WAL pull round-trip made by the local node as
// a follower: entries replicated into the local journal, and whether
// the pull failed.
func (c *ClusterMonitor) ObservePull(entries int, failed bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.pulls++
	if failed {
		c.pullErrors++
	}
	if entries > 0 {
		c.entries += uint64(entries)
	}
	c.mu.Unlock()
}

// Counters snapshots the monitor's totals.
func (c *ClusterMonitor) Counters() ClusterCounters {
	if c == nil {
		return ClusterCounters{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ClusterCounters{Pulls: c.pulls, PullErrors: c.pullErrors, Entries: c.entries}
	for _, n := range c.promotions {
		out.Promotions += n
	}
	for _, n := range c.demotions {
		out.Demotions += n
	}
	for _, d := range c.diverged {
		if d {
			out.Diverged++
		}
	}
	return out
}

// WriteMetrics renders the cluster families into one exposition pass.
func (c *ClusterMonitor) WriteMetrics(p *PromWriter) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	models := make([]string, 0, len(c.roles))
	for name := range c.roles {
		models = append(models, name)
	}
	sort.Strings(models)
	for _, name := range models {
		role := c.roles[name]
		leader := 0.0
		if role.leader {
			leader = 1
		}
		p.Value("selestd_cluster_is_leader", "1 when this node leads the model's replica group.",
			"gauge", leader, "model", name)
		p.Value("selestd_cluster_term", "Leadership term of the model's replica group.",
			"gauge", float64(role.term), "model", name)
		p.Value("selestd_cluster_failovers_total", "Leader promotions won by this node.",
			"counter", float64(c.promotions[name]), "model", name)
		p.Value("selestd_cluster_demotions_total", "Leaderships this node ceded to a higher-term claim.",
			"counter", float64(c.demotions[name]), "model", name)
		div := 0.0
		if c.diverged[name] {
			div = 1
		}
		p.Value("selestd_replication_diverged", "1 when the local replica's journal conflicts with the leader's history and needs a reseed.",
			"gauge", div, "model", name)
	}

	lagModels := make([]string, 0, len(c.lag))
	for name := range c.lag {
		lagModels = append(lagModels, name)
	}
	sort.Strings(lagModels)
	for _, name := range lagModels {
		peers := make([]string, 0, len(c.lag[name]))
		for peer := range c.lag[name] {
			peers = append(peers, peer)
		}
		sort.Strings(peers)
		for _, peer := range peers {
			p.Value("selestd_replication_lag", "Leader sequence minus the peer's replicated sequence.",
				"gauge", float64(c.lag[name][peer]), "model", name, "peer", peer)
		}
	}

	p.Value("selestd_replication_pulls_total", "WAL pull round-trips made as a follower.",
		"counter", float64(c.pulls))
	p.Value("selestd_replication_pull_errors_total", "WAL pulls that failed.",
		"counter", float64(c.pullErrors))
	p.Value("selestd_replication_entries_total", "WAL entries replicated into the local journal.",
		"counter", float64(c.entries))
}
