package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one instrumented segment of a request's lifetime. The
// serving layer stamps stage boundaries as the request moves HTTP
// ingress → cache → lane enqueue/dequeue → batch fuse → plan execute →
// encode; a span carries one duration per stage.
type Stage uint8

const (
	// StageDecode covers reading and validating the request body plus
	// model lookup.
	StageDecode Stage = iota
	// StageCache covers selectivity-cache lookup and fill.
	StageCache
	// StageQueue covers time waiting in a coalescer lane between
	// enqueue and the lane worker dequeuing the request.
	StageQueue
	// StageFuse covers batch fusion: gathering lane-mates and copying
	// query rows into the fused tensor, up to plan launch.
	StageFuse
	// StageExecute covers forward-plan execution (or the inline
	// estimator call when the batcher is bypassed).
	StageExecute
	// StageEncode covers response encoding and write-out.
	StageEncode
	// NumStages is the number of traced stages.
	NumStages = iota
)

var stageNames = [NumStages]string{"decode", "cache", "queue", "fuse", "execute", "encode"}

// String returns the stage's wire name (used as the "stage" metric
// label and as /debug/traces JSON keys).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one request's trace record: identity, where the time went by
// stage, and enough request shape (route, model, batch size, cache
// outcome, status) to explain it. Spans are plain values sized for a
// ring slot — no pointers, no per-request allocation.
type Span struct {
	TraceID   uint64
	Route     string
	Model     string
	Start     time.Time
	Total     time.Duration
	Stages    [NumStages]time.Duration
	Status    int
	BatchSize int
	Cached    bool
}

// MarshalJSON renders the span for /debug/traces with stages keyed by
// name, so every span always carries all stage keys (zero means the
// stage did not apply — e.g. queue time on a cache hit).
func (sp Span) MarshalJSON() ([]byte, error) {
	stages := make(map[string]int64, NumStages)
	for i := Stage(0); i < NumStages; i++ {
		stages[i.String()] = sp.Stages[i].Nanoseconds()
	}
	return json.Marshal(struct {
		TraceID   string           `json:"trace_id"`
		Route     string           `json:"route"`
		Model     string           `json:"model,omitempty"`
		Start     time.Time        `json:"start"`
		TotalNs   int64            `json:"total_ns"`
		Stages    map[string]int64 `json:"stages_ns"`
		Status    int              `json:"status"`
		BatchSize int              `json:"batch_size,omitempty"`
		Cached    bool             `json:"cached,omitempty"`
	}{FormatTraceID(sp.TraceID), sp.Route, sp.Model, sp.Start, sp.Total.Nanoseconds(), stages, sp.Status, sp.BatchSize, sp.Cached})
}

// TracerConfig sizes a Tracer.
type TracerConfig struct {
	// Capacity is the recent-span ring size (default 256).
	Capacity int
	// SlowThreshold retains spans with Total at or above it in the
	// slowest-N list (default 100ms).
	SlowThreshold time.Duration
	// SlowCapacity bounds the slowest-N list (default 32).
	SlowCapacity int
}

// traceSlot is one seqlock-guarded ring entry. seq is even when the
// slot is stable; a writer or reader CASes it odd to claim the slot and
// stores seq+2 to release. Claims never block: a writer that loses the
// CAS drops its span, a reader skips the slot.
type traceSlot struct {
	seq  atomic.Uint64
	span Span
}

// Tracer keeps the most recent spans in a lock-free ring, the slowest
// spans past a threshold in a small mutex-guarded list (rare path), and
// per-stage latency histograms for /metrics. Record is safe for
// concurrent use from every request goroutine.
type Tracer struct {
	cfg   TracerConfig
	slots []traceSlot
	next  atomic.Uint64

	recorded atomic.Uint64
	dropped  atomic.Uint64

	total  *Histogram
	stages [NumStages]*Histogram

	slowMu sync.Mutex
	slow   []Span // unordered; Slow() sorts a copy
}

// NewTracer builds a Tracer, applying defaults for zero config fields.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 100 * time.Millisecond
	}
	if cfg.SlowCapacity <= 0 {
		cfg.SlowCapacity = 32
	}
	t := &Tracer{
		cfg:   cfg,
		slots: make([]traceSlot, cfg.Capacity),
		total: NewHistogram(LatencyBuckets()...),
	}
	for i := range t.stages {
		t.stages[i] = NewHistogram(StageBuckets()...)
	}
	return t
}

// Record stores a finished span: into the ring (dropped, not blocked
// on, if the slot is contended), into the per-stage histograms, and —
// when at or past the slow threshold — into the slowest-N list.
func (t *Tracer) Record(sp Span) {
	sl := &t.slots[t.next.Add(1)%uint64(len(t.slots))]
	if seq := sl.seq.Load(); seq&1 == 0 && sl.seq.CompareAndSwap(seq, seq+1) {
		sl.span = sp
		sl.seq.Store(seq + 2)
		t.recorded.Add(1)
	} else {
		t.dropped.Add(1)
	}

	t.total.Observe(sp.Total.Seconds())
	for i := Stage(0); i < NumStages; i++ {
		// Zero means the stage didn't run (cache hit skips queue/fuse/
		// execute); recording it would drown the histograms in zeros.
		if d := sp.Stages[i]; d > 0 {
			t.stages[i].Observe(d.Seconds())
		}
	}

	if sp.Total >= t.cfg.SlowThreshold {
		t.addSlow(sp)
	}
}

// addSlow inserts sp into the slowest-N list, evicting the current
// minimum once full. Mutex-guarded: only spans past the threshold pay
// for it.
func (t *Tracer) addSlow(sp Span) {
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	if len(t.slow) < t.cfg.SlowCapacity {
		t.slow = append(t.slow, sp)
		return
	}
	min := 0
	for i := 1; i < len(t.slow); i++ {
		if t.slow[i].Total < t.slow[min].Total {
			min = i
		}
	}
	if sp.Total > t.slow[min].Total {
		t.slow[min] = sp
	}
}

// Recent returns up to max spans, newest first. Slots being written
// concurrently are skipped rather than waited for, so a snapshot under
// load may return slightly fewer spans than recorded.
func (t *Tracer) Recent(max int) []Span {
	if max <= 0 || max > len(t.slots) {
		max = len(t.slots)
	}
	out := make([]Span, 0, max)
	head := t.next.Load()
	for i := uint64(0); i < uint64(len(t.slots)) && len(out) < max; i++ {
		sl := &t.slots[(head-i)%uint64(len(t.slots))]
		if sp, ok := t.readSlot(sl); ok {
			out = append(out, sp)
		}
	}
	return out
}

// readSlot copies a slot's span using the same claim protocol as
// writers, so a torn read is impossible: the copy happens strictly
// between a successful CAS to odd and the release store.
func (t *Tracer) readSlot(sl *traceSlot) (Span, bool) {
	seq := sl.seq.Load()
	if seq&1 != 0 || !sl.seq.CompareAndSwap(seq, seq+1) {
		return Span{}, false
	}
	sp := sl.span
	sl.seq.Store(seq + 2)
	return sp, sp.TraceID != 0 // zero ID marks a never-written slot
}

// Slow returns the retained slow spans, slowest first.
func (t *Tracer) Slow() []Span {
	t.slowMu.Lock()
	out := make([]Span, len(t.slow))
	copy(out, t.slow)
	t.slowMu.Unlock()
	for i := 1; i < len(out); i++ { // insertion sort: N ≤ SlowCapacity
		for j := i; j > 0 && out[j].Total > out[j-1].Total; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TracerStats summarizes tracer activity for /stats and /debug/traces.
type TracerStats struct {
	Recorded             uint64  `json:"recorded"`
	Dropped              uint64  `json:"dropped"`
	Capacity             int     `json:"capacity"`
	SlowRetained         int     `json:"slow_retained"`
	SlowThresholdSeconds float64 `json:"slow_threshold_seconds"`
}

// Stats snapshots tracer counters.
func (t *Tracer) Stats() TracerStats {
	t.slowMu.Lock()
	retained := len(t.slow)
	t.slowMu.Unlock()
	return TracerStats{
		Recorded:             t.recorded.Load(),
		Dropped:              t.dropped.Load(),
		Capacity:             len(t.slots),
		SlowRetained:         retained,
		SlowThresholdSeconds: t.cfg.SlowThreshold.Seconds(),
	}
}

// StageSnapshot returns the latency histogram for one stage.
func (t *Tracer) StageSnapshot(s Stage) HistogramSnapshot { return t.stages[s].Snapshot() }

// WriteMetrics emits the tracer's Prometheus families: span counters
// and per-stage duration histograms.
func (t *Tracer) WriteMetrics(p *PromWriter) {
	st := t.Stats()
	p.Value("selestd_trace_spans_total", "Request spans recorded into the trace ring.", "counter", float64(st.Recorded))
	p.Value("selestd_trace_spans_dropped_total", "Request spans dropped on ring-slot contention.", "counter", float64(st.Dropped))
	p.Value("selestd_trace_slow_retained", "Spans currently retained in the slowest-N list.", "gauge", float64(st.SlowRetained))
	p.Histogram("selestd_request_duration_seconds", "End-to-end traced request duration.", t.total.Snapshot())
	for i := Stage(0); i < NumStages; i++ {
		p.Histogram("selestd_stage_duration_seconds", "Traced request duration attributed to one pipeline stage.",
			t.stages[i].Snapshot(), "stage", i.String())
	}
}
