package obs

import (
	"sort"
	"sync"
	"time"
)

// The workload-shift detector compares the live query stream against a
// snapshot of the training workload. Each model gets per-feature
// fixed-bin histograms (every query dimension plus the threshold as one
// extra feature); the baseline is captured by ingest from the model's
// training/validation queries, and the live side is fed by the Shadow
// worker pool — so the serving hot path pays nothing for it. Divergence
// is the per-feature total-variation distance between the normalized
// baseline and live histograms, averaged over features: 0 means the
// live workload looks exactly like training, 1 means disjoint support.
// Past a configured threshold the model is flagged as shifted, which
// ingest surfaces as retraining advice — the live-telemetry complement
// to the paper's delta_U update test, which only sees the data
// distribution, not the query distribution.

// WorkloadConfig tunes the shift detector.
type WorkloadConfig struct {
	// Bins is the per-feature histogram resolution (default 16).
	Bins int
	// Threshold is the average total-variation divergence above which a
	// model's live workload counts as shifted; 0 disables the alarm
	// (divergence is still computed and published).
	Threshold float64
	// MinSamples is how many live queries must accumulate before
	// divergence is computed at all (default 64) — below that the
	// histogram comparison is noise.
	MinSamples int
}

// workloadState is one model's baseline + live histograms. Bin edges
// are equal-width per feature over the baseline's [lo, hi] range; live
// observations outside the range clamp into the edge bins, which is
// exactly the signal a range shift should produce.
type workloadState struct {
	lo, hi   []float64   // per feature
	base     [][]float64 // normalized baseline mass, feature x bin
	live     [][]uint64  // live counts, feature x bin
	baseN    uint64
	liveN    uint64
	div      float64
	exceeded uint64
	lastAt   time.Time
}

// WorkloadStats is one model's shift picture for /stats and
// /debug/accuracy.
type WorkloadStats struct {
	Features        int       `json:"features"`
	Bins            int       `json:"bins"`
	BaselineSamples uint64    `json:"baseline_samples"`
	LiveSamples     uint64    `json:"live_samples"`
	Divergence      float64   `json:"divergence"`
	Threshold       float64   `json:"threshold"`
	Exceeded        uint64    `json:"exceeded"`
	ShiftAdvised    bool      `json:"shift_advised"`
	LastAt          time.Time `json:"last_sample_at"`
}

// WorkloadMonitor holds the per-model detectors. SetBaseline is called
// by ingest at attach (and again after retraining if the training set
// changed); Observe runs on the Shadow workers; Stats and WriteMetrics
// are scrape-time reads.
type WorkloadMonitor struct {
	cfg    WorkloadConfig
	mu     sync.Mutex
	models map[string]*workloadState
}

// NewWorkloadMonitor builds a monitor, applying defaults for zero
// fields.
func NewWorkloadMonitor(cfg WorkloadConfig) *WorkloadMonitor {
	if cfg.Bins <= 0 {
		cfg.Bins = 16
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 64
	}
	return &WorkloadMonitor{cfg: cfg, models: make(map[string]*workloadState)}
}

// Threshold reports the configured divergence alarm threshold.
func (m *WorkloadMonitor) Threshold() float64 { return m.cfg.Threshold }

// SetBaseline captures the training workload snapshot for a model:
// queries are the training/validation query vectors, ts the matching
// thresholds (len(ts) may be 0 if thresholds are unknown, in which case
// only the vector dimensions are profiled). Replaces any previous
// baseline and resets the live side.
func (m *WorkloadMonitor) SetBaseline(model string, queries [][]float64, ts []float64) {
	if len(queries) == 0 {
		return
	}
	dim := len(queries[0])
	features := dim
	withT := len(ts) == len(queries)
	if withT {
		features++
	}
	st := &workloadState{
		lo:    make([]float64, features),
		hi:    make([]float64, features),
		base:  make([][]float64, features),
		live:  make([][]uint64, features),
		baseN: uint64(len(queries)),
	}
	for f := 0; f < features; f++ {
		st.base[f] = make([]float64, m.cfg.Bins)
		st.live[f] = make([]uint64, m.cfg.Bins)
	}
	feat := func(q []float64, t float64, f int) float64 {
		if f < dim {
			return q[f]
		}
		return t
	}
	for f := 0; f < features; f++ {
		lo, hi := feat(queries[0], tAt(ts, 0), f), feat(queries[0], tAt(ts, 0), f)
		for i := 1; i < len(queries); i++ {
			v := feat(queries[i], tAt(ts, i), f)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		st.lo[f], st.hi[f] = lo, hi
	}
	inc := 1 / float64(len(queries))
	for i, q := range queries {
		for f := 0; f < features; f++ {
			st.base[f][binIndex(feat(q, tAt(ts, i), f), st.lo[f], st.hi[f], m.cfg.Bins)] += inc
		}
	}
	m.mu.Lock()
	m.models[model] = st
	m.mu.Unlock()
}

func tAt(ts []float64, i int) float64 {
	if i < len(ts) {
		return ts[i]
	}
	return 0
}

// binIndex maps v onto [0, bins) over the baseline range, clamping
// out-of-range values into the edge bins. A degenerate range (lo == hi)
// puts everything in bin 0.
func binIndex(v, lo, hi float64, bins int) int {
	if hi <= lo {
		return 0
	}
	i := int(float64(bins) * (v - lo) / (hi - lo))
	if i < 0 {
		return 0
	}
	if i >= bins {
		return bins - 1
	}
	return i
}

// Observe feeds one live query into the model's histograms and updates
// the divergence. Models without a baseline are ignored. Runs on the
// Shadow worker goroutines; allocation-free.
func (m *WorkloadMonitor) Observe(model string, q []float64, t float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.models[model]
	if st == nil {
		return
	}
	features := len(st.lo)
	if features != len(q) && features != len(q)+1 {
		return // dimension mismatch: stale baseline, skip
	}
	for f := 0; f < features; f++ {
		v := t
		if f < len(q) {
			v = q[f]
		}
		st.live[f][binIndex(v, st.lo[f], st.hi[f], m.cfg.Bins)]++
	}
	st.liveN++
	st.lastAt = time.Now()
	if st.liveN < uint64(m.cfg.MinSamples) {
		return
	}
	st.div = divergence(st)
	if m.cfg.Threshold > 0 && st.div > m.cfg.Threshold {
		st.exceeded++
	}
}

// divergence is the average per-feature total-variation distance
// between the normalized baseline and live histograms.
func divergence(st *workloadState) float64 {
	if st.liveN == 0 || len(st.base) == 0 {
		return 0
	}
	inv := 1 / float64(st.liveN)
	total := 0.0
	for f := range st.base {
		tv := 0.0
		for b := range st.base[f] {
			d := st.base[f][b] - float64(st.live[f][b])*inv
			if d < 0 {
				d = -d
			}
			tv += d
		}
		total += tv / 2
	}
	return total / float64(len(st.base))
}

func (m *WorkloadMonitor) statsLocked(st *workloadState) WorkloadStats {
	return WorkloadStats{
		Features:        len(st.lo),
		Bins:            m.cfg.Bins,
		BaselineSamples: st.baseN,
		LiveSamples:     st.liveN,
		Divergence:      st.div,
		Threshold:       m.cfg.Threshold,
		Exceeded:        st.exceeded,
		ShiftAdvised:    m.cfg.Threshold > 0 && st.div > m.cfg.Threshold,
		LastAt:          st.lastAt,
	}
}

// Stats snapshots every model with a baseline.
func (m *WorkloadMonitor) Stats() map[string]WorkloadStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]WorkloadStats, len(m.models))
	for name, st := range m.models {
		out[name] = m.statsLocked(st)
	}
	return out
}

// ModelStats snapshots one model (zero value, false without a
// baseline).
func (m *WorkloadMonitor) ModelStats(model string) (WorkloadStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.models[model]
	if st == nil {
		return WorkloadStats{}, false
	}
	return m.statsLocked(st), true
}

// WriteMetrics emits the workload-shift families: the divergence gauge,
// sample counters, and the exceeded counter per model.
func (m *WorkloadMonitor) WriteMetrics(p *PromWriter) {
	p.Value("selestd_workload_shift_threshold", "Configured divergence threshold (0 = alarm disabled).", "gauge", m.cfg.Threshold)
	stats := m.Stats()
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := stats[name]
		p.Value("selestd_workload_divergence", "Average per-feature total-variation distance between the live query stream and the training workload.",
			"gauge", st.Divergence, "model", name)
		p.Value("selestd_workload_samples_total", "Live queries folded into the workload histograms.", "counter", float64(st.LiveSamples), "model", name)
		p.Value("selestd_workload_shift_exceeded_total", "Live observations whose divergence exceeded the threshold.", "counter", float64(st.Exceeded), "model", name)
	}
}
