package obs

import (
	"strings"
	"testing"
	"time"
)

func TestDriftMonitorObserve(t *testing.T) {
	d := NewDriftMonitor(DriftConfig{Window: 8, Threshold: 3})
	// Perfect estimates: every q-error is 1.
	st := d.Observe("m", []float64{10, 20, 30}, []float64{10, 20, 30})
	if st.P50 != 1 || st.P95 != 1 || st.Max != 1 {
		t.Fatalf("perfect quantiles %+v", st)
	}
	if st.Cycles != 1 || st.Samples != 3 || st.Exceeded != 0 || st.Window != 3 {
		t.Fatalf("counters %+v", st)
	}

	// A badly drifted cycle: q-errors of 10 dominate the window.
	st = d.Observe("m", []float64{100, 100, 100, 100, 100, 100}, []float64{10, 10, 10, 10, 10, 10})
	if st.Max != 10 {
		t.Fatalf("max %v, want 10", st.Max)
	}
	if st.P95 <= 3 {
		t.Fatalf("p95 %v, want above threshold", st.P95)
	}
	if st.Exceeded != 1 {
		t.Fatalf("exceeded %d, want 1", st.Exceeded)
	}
	if st.Window != 8 { // 3 + 6 observations, capped at the window
		t.Fatalf("window %d, want 8", st.Window)
	}
	if st.LastAt.IsZero() || time.Since(st.LastAt) > time.Minute {
		t.Fatalf("last_cycle_at %v", st.LastAt)
	}
}

func TestDriftMonitorRollingWindow(t *testing.T) {
	d := NewDriftMonitor(DriftConfig{Window: 4})
	d.Observe("m", []float64{1000}, []float64{1}) // q-error 1000
	for i := 0; i < 4; i++ {
		d.Observe("m", []float64{5}, []float64{5}) // q-error 1
	}
	st := d.ModelStats("m")
	if st.Max != 1 {
		t.Fatalf("max %v: the old outlier should have rolled out of the window", st.Max)
	}
}

func TestDriftMonitorPerModel(t *testing.T) {
	d := NewDriftMonitor(DriftConfig{})
	d.Observe("a", []float64{2}, []float64{1})
	d.Observe("b", []float64{8}, []float64{1})
	all := d.Stats()
	if len(all) != 2 || all["a"].Max != 2 || all["b"].Max != 8 {
		t.Fatalf("stats %+v", all)
	}
	if st := d.ModelStats("missing"); st.Cycles != 0 {
		t.Fatalf("missing model stats %+v", st)
	}
}

func TestDriftMonitorIgnoresBadInput(t *testing.T) {
	d := NewDriftMonitor(DriftConfig{})
	d.Observe("m", nil, nil)
	d.Observe("m", []float64{1}, []float64{1, 2})
	if st := d.ModelStats("m"); st.Cycles != 0 {
		t.Fatalf("bad input was counted: %+v", st)
	}
}

func TestDriftMonitorWriteMetrics(t *testing.T) {
	d := NewDriftMonitor(DriftConfig{Threshold: 2})
	d.Observe("m", []float64{30}, []float64{10})
	var b strings.Builder
	d.WriteMetrics(NewPromWriter(&b))
	out := b.String()
	for _, want := range []string{
		"selestd_drift_qerror_threshold 2",
		`selestd_drift_qerror{model="m",quantile="p50"} 3`,
		`selestd_drift_qerror{model="m",quantile="p95"} 3`,
		`selestd_drift_qerror{model="m",quantile="max"} 3`,
		`selestd_drift_cycles_total{model="m"} 1`,
		`selestd_drift_samples_total{model="m"} 1`,
		`selestd_drift_exceeded_total{model="m"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestBuildInfo(t *testing.T) {
	bi := ReadBuildInfo(time.Now().Add(-2 * time.Second))
	if bi.GoVersion == "" {
		t.Fatal("empty go version")
	}
	if bi.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs %d", bi.GOMAXPROCS)
	}
	if bi.UptimeSeconds < 1.9 {
		t.Fatalf("uptime %v", bi.UptimeSeconds)
	}
	if bi.Version == "" {
		t.Fatal("empty version")
	}
}
