package obs

import (
	"math/rand"
	"sync"
	"testing"
)

func baselineQueries(rng *rand.Rand, n, dim int, shift float64) ([][]float64, []float64) {
	qs := make([][]float64, n)
	ts := make([]float64, n)
	for i := range qs {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64() + shift
		}
		qs[i] = q
		ts[i] = 0.1 + 0.4*rng.Float64() + shift
	}
	return qs, ts
}

func TestWorkloadNoShiftLowDivergence(t *testing.T) {
	// MinSamples must be large enough that the first computed divergence
	// is already stable — a 10-sample histogram against a 2000-sample
	// baseline is mostly sparsity, not shift.
	m := NewWorkloadMonitor(WorkloadConfig{Threshold: 0.5, MinSamples: 400})
	rng := rand.New(rand.NewSource(1))
	qs, ts := baselineQueries(rng, 2000, 3, 0)
	m.SetBaseline("m", qs, ts)
	// Live traffic from the same distribution.
	live, liveT := baselineQueries(rng, 2000, 3, 0)
	for i, q := range live {
		m.Observe("m", q, liveT[i])
	}
	st, ok := m.ModelStats("m")
	if !ok {
		t.Fatal("no stats for model with baseline")
	}
	if st.Features != 4 { // 3 dims + threshold
		t.Fatalf("features = %d, want 4", st.Features)
	}
	if st.LiveSamples != 2000 || st.BaselineSamples != 2000 {
		t.Fatalf("samples = %d/%d", st.LiveSamples, st.BaselineSamples)
	}
	if st.Divergence > 0.1 {
		t.Fatalf("same-distribution divergence = %v, want near 0", st.Divergence)
	}
	if st.ShiftAdvised || st.Exceeded != 0 {
		t.Fatalf("shift advised on identical workload: %+v", st)
	}
}

func TestWorkloadShiftDetected(t *testing.T) {
	m := NewWorkloadMonitor(WorkloadConfig{Threshold: 0.5, MinSamples: 10})
	rng := rand.New(rand.NewSource(2))
	qs, ts := baselineQueries(rng, 1000, 3, 0)
	m.SetBaseline("m", qs, ts)
	// Live traffic shifted entirely out of the baseline range: every
	// observation clamps into the top bin of every feature.
	live, liveT := baselineQueries(rng, 200, 3, 10)
	for i, q := range live {
		m.Observe("m", q, liveT[i])
	}
	st, _ := m.ModelStats("m")
	if st.Divergence < 0.7 {
		t.Fatalf("disjoint-workload divergence = %v, want high", st.Divergence)
	}
	if !st.ShiftAdvised {
		t.Fatal("shift not advised for disjoint workload")
	}
	// Exceeded counts per-observation alarms past MinSamples.
	if st.Exceeded == 0 || st.Exceeded > 200 {
		t.Fatalf("exceeded = %d, want within (0, 200]", st.Exceeded)
	}
}

func TestWorkloadMinSamplesGate(t *testing.T) {
	m := NewWorkloadMonitor(WorkloadConfig{Threshold: 0.01, MinSamples: 50})
	rng := rand.New(rand.NewSource(3))
	qs, ts := baselineQueries(rng, 100, 2, 0)
	m.SetBaseline("m", qs, ts)
	shifted, shiftedT := baselineQueries(rng, 49, 2, 10)
	for i, q := range shifted {
		m.Observe("m", q, shiftedT[i])
	}
	st, _ := m.ModelStats("m")
	if st.Divergence != 0 || st.Exceeded != 0 {
		t.Fatalf("divergence computed below MinSamples: %+v", st)
	}
	m.Observe("m", shifted[0], shiftedT[0]) // 50th sample crosses the gate
	st, _ = m.ModelStats("m")
	if st.Divergence == 0 {
		t.Fatal("divergence still zero past MinSamples")
	}
}

func TestWorkloadZeroThresholdNeverAlarms(t *testing.T) {
	m := NewWorkloadMonitor(WorkloadConfig{MinSamples: 1})
	rng := rand.New(rand.NewSource(4))
	qs, ts := baselineQueries(rng, 100, 2, 0)
	m.SetBaseline("m", qs, ts)
	live, liveT := baselineQueries(rng, 100, 2, 10)
	for i, q := range live {
		m.Observe("m", q, liveT[i])
	}
	st, _ := m.ModelStats("m")
	if st.Divergence == 0 {
		t.Fatal("divergence should still be computed")
	}
	if st.Exceeded != 0 || st.ShiftAdvised {
		t.Fatalf("threshold 0 must disable the alarm: %+v", st)
	}
}

func TestWorkloadIgnoresUnknownAndMismatched(t *testing.T) {
	m := NewWorkloadMonitor(WorkloadConfig{MinSamples: 1})
	m.Observe("nobody", []float64{1}, 0.1) // no baseline: ignored
	if _, ok := m.ModelStats("nobody"); ok {
		t.Fatal("stats appeared for model without baseline")
	}
	rng := rand.New(rand.NewSource(5))
	qs, ts := baselineQueries(rng, 50, 3, 0)
	m.SetBaseline("m", qs, ts)
	m.Observe("m", []float64{1, 2, 3, 4, 5}, 0.1) // wrong dimensionality
	st, _ := m.ModelStats("m")
	if st.LiveSamples != 0 {
		t.Fatalf("mismatched-dim observation counted: %+v", st)
	}
}

func TestWorkloadDegenerateRange(t *testing.T) {
	// A constant feature (lo == hi) must not divide by zero; identical
	// live traffic stays at divergence 0.
	m := NewWorkloadMonitor(WorkloadConfig{MinSamples: 1})
	qs := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	m.SetBaseline("m", qs, []float64{0.1, 0.1, 0.1})
	for i := 0; i < 10; i++ {
		m.Observe("m", qs[i%3], 0.1)
	}
	st, _ := m.ModelStats("m")
	if st.Divergence > 0.2 {
		t.Fatalf("degenerate-range divergence = %v", st.Divergence)
	}
}

func TestWorkloadBaselineNoThresholds(t *testing.T) {
	// Without per-query thresholds only the vector dims are profiled.
	m := NewWorkloadMonitor(WorkloadConfig{MinSamples: 1})
	m.SetBaseline("m", [][]float64{{1, 2}, {3, 4}}, nil)
	st, _ := m.ModelStats("m")
	if st.Features != 2 {
		t.Fatalf("features = %d, want 2 (no threshold feature)", st.Features)
	}
	m.Observe("m", []float64{1, 2}, 0.5)
	st, _ = m.ModelStats("m")
	if st.LiveSamples != 1 {
		t.Fatalf("live samples = %d", st.LiveSamples)
	}
}

func TestWorkloadConcurrent(t *testing.T) {
	m := NewWorkloadMonitor(WorkloadConfig{Threshold: 0.3, MinSamples: 5})
	rng := rand.New(rand.NewSource(6))
	qs, ts := baselineQueries(rng, 200, 2, 0)
	m.SetBaseline("m", qs, ts)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			live, liveT := baselineQueries(r, 200, 2, 0)
			for i, q := range live {
				m.Observe("m", q, liveT[i])
			}
		}(int64(g + 10))
	}
	for i := 0; i < 50; i++ {
		m.Stats()
	}
	wg.Wait()
	st, _ := m.ModelStats("m")
	if st.LiveSamples != 800 {
		t.Fatalf("live samples = %d, want 800", st.LiveSamples)
	}
}
