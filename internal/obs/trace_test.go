package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func span(id uint64, total time.Duration) Span {
	sp := Span{TraceID: id, Route: "/v1/estimate", Model: "m", Start: time.Now(), Total: total, Status: 200}
	for i := Stage(0); i < NumStages; i++ {
		sp.Stages[i] = time.Duration(i+1) * time.Microsecond
	}
	return sp
}

func TestTracerRecordAndRecent(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 8, SlowThreshold: time.Hour})
	for i := uint64(1); i <= 20; i++ {
		tr.Record(span(i, time.Duration(i)*time.Millisecond))
	}
	st := tr.Stats()
	if st.Recorded != 20 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
	recent := tr.Recent(0)
	if len(recent) != 8 {
		t.Fatalf("recent returned %d spans, want 8 (ring capacity)", len(recent))
	}
	// Newest first: the ring holds 13..20.
	if recent[0].TraceID != 20 || recent[len(recent)-1].TraceID != 13 {
		t.Fatalf("recent order: first %d last %d", recent[0].TraceID, recent[len(recent)-1].TraceID)
	}
	if got := tr.Recent(3); len(got) != 3 || got[0].TraceID != 20 {
		t.Fatalf("limited recent: %+v", got)
	}
}

func TestTracerSlowList(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4, SlowThreshold: 10 * time.Millisecond, SlowCapacity: 2})
	tr.Record(span(1, time.Millisecond))    // below threshold
	tr.Record(span(2, 20*time.Millisecond)) // retained
	tr.Record(span(3, 50*time.Millisecond)) // retained
	tr.Record(span(4, 30*time.Millisecond)) // evicts the 20ms span
	tr.Record(span(5, 10*time.Millisecond)) // at threshold but slower spans win
	slow := tr.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow retained %d, want 2", len(slow))
	}
	if slow[0].TraceID != 3 || slow[1].TraceID != 4 {
		t.Fatalf("slow order: %d, %d", slow[0].TraceID, slow[1].TraceID)
	}
	if st := tr.Stats(); st.SlowRetained != 2 || st.SlowThresholdSeconds != 0.01 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTracerStageHistograms(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	sp := Span{TraceID: 1, Total: time.Millisecond}
	sp.Stages[StageExecute] = 20 * time.Microsecond
	// Other stages zero: they must not be observed.
	tr.Record(sp)
	if s := tr.StageSnapshot(StageExecute); s.Count != 1 {
		t.Fatalf("execute histogram count %d, want 1", s.Count)
	}
	if s := tr.StageSnapshot(StageQueue); s.Count != 0 {
		t.Fatalf("queue histogram count %d, want 0 (zero stages skipped)", s.Count)
	}
}

// TestTracerConcurrent exercises the seqlock ring from concurrent
// writers and readers; run under -race in CI.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 16, SlowThreshold: time.Hour})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(1); i <= 500; i++ {
				tr.Record(span(base*1000+i, time.Millisecond))
			}
		}(uint64(g + 1))
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, sp := range tr.Recent(16) {
						if sp.TraceID == 0 {
							t.Error("torn read: zero trace id")
							return
						}
					}
				}
			}
		}()
	}
	// Writers finish first, then readers are stopped.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	<-done
	st := tr.Stats()
	if st.Recorded+st.Dropped != 2000 {
		t.Fatalf("recorded %d + dropped %d != 2000", st.Recorded, st.Dropped)
	}
}

func TestSpanJSONCarriesAllStages(t *testing.T) {
	raw, err := json.Marshal(span(7, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["trace_id"] != FormatTraceID(7) {
		t.Fatalf("trace_id %v", m["trace_id"])
	}
	stages, ok := m["stages_ns"].(map[string]any)
	if !ok {
		t.Fatalf("stages_ns missing: %s", raw)
	}
	for _, name := range []string{"decode", "cache", "queue", "fuse", "execute", "encode"} {
		if _, ok := stages[name]; !ok {
			t.Fatalf("stage %q missing in %s", name, raw)
		}
	}
}

func TestTracerWriteMetrics(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	tr.Record(span(1, time.Millisecond))
	var b strings.Builder
	tr.WriteMetrics(NewPromWriter(&b))
	out := b.String()
	for _, want := range []string{
		"selestd_trace_spans_total 1",
		`selestd_stage_duration_seconds_bucket{stage="execute"`,
		`selestd_stage_duration_seconds_count{stage="encode"} 1`,
		"selestd_request_duration_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestTraceIDContext(t *testing.T) {
	id := NextTraceID()
	if id == 0 {
		t.Fatal("zero trace id")
	}
	ctx := WithTraceID(t.Context(), id)
	got, ok := TraceIDFrom(ctx)
	if !ok || got != id {
		t.Fatalf("got %d ok=%v, want %d", got, ok, id)
	}
	if _, ok := TraceIDFrom(t.Context()); ok {
		t.Fatal("unexpected trace id on fresh context")
	}
}
