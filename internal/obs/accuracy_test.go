package obs

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestThresholdBucket(t *testing.T) {
	cases := []struct {
		t, tmax float64
		want    int
	}{
		{0.05, 1, 0},
		{0.10, 1, 0},
		{0.11, 1, 1},
		{0.25, 1, 1},
		{0.40, 1, 2},
		{0.50, 1, 2},
		{0.75, 1, 3},
		{1.00, 1, 3},
		{1.50, 1, 4},
		{0.3, 0, NumThresholdBuckets - 1},  // unknown t_max
		{0.3, -1, NumThresholdBuckets - 1}, // negative t_max
	}
	for _, c := range cases {
		if got := ThresholdBucket(c.t, c.tmax); got != c.want {
			t.Errorf("ThresholdBucket(%v, %v) = %d, want %d", c.t, c.tmax, got, c.want)
		}
	}
	if got := ThresholdBucketLabel(0); got != "0-10%" {
		t.Errorf("label 0 = %q", got)
	}
	if got := ThresholdBucketLabel(-1); got != "unknown" {
		t.Errorf("label -1 = %q", got)
	}
	if got := ThresholdBucketLabel(NumThresholdBuckets); got != "unknown" {
		t.Errorf("label out of range = %q", got)
	}
}

func TestQRingWraparound(t *testing.T) {
	r := qring{ring: make([]float64, 4)}
	for i := 1; i <= 10; i++ {
		r.push(float64(i))
	}
	if r.count != 10 {
		t.Fatalf("count = %d, want 10", r.count)
	}
	if r.n != 4 {
		t.Fatalf("window n = %d, want 4", r.n)
	}
	// Window holds the last 4 pushes {7,8,9,10}: the max quantile must be
	// 10 and the min 7 — earlier values must have been displaced.
	qs := r.quantiles(0, 1)
	if qs[0] != 7 || qs[1] != 10 {
		t.Fatalf("quantiles(0,1) = %v, want [7 10]", qs)
	}
}

func TestAccuracyMonitorBucketsAndPartitions(t *testing.T) {
	m := NewAccuracyMonitor(AccuracyConfig{Window: 8, WorstN: 4})
	// Two samples in bucket 0 / partition 0, one in bucket 3 / partition 2.
	m.Observe("m", AccuracySample{Bucket: 0, Partition: 0, Estimate: 10, Truth: 10})
	m.Observe("m", AccuracySample{Bucket: 0, Partition: 0, Estimate: 20, Truth: 10})
	m.Observe("m", AccuracySample{Bucket: 3, Partition: 2, Estimate: 5, Truth: 50})

	st, ok := m.ModelStats("m", 0)
	if !ok {
		t.Fatal("ModelStats returned no stats")
	}
	if st.Samples != 3 || st.Window != 3 {
		t.Fatalf("samples=%d window=%d, want 3/3", st.Samples, st.Window)
	}
	if st.Max != 10 {
		t.Fatalf("overall max q-error = %v, want 10", st.Max)
	}
	// Empty buckets must be omitted, populated ones present.
	if len(st.Buckets) != 2 {
		t.Fatalf("buckets = %v, want exactly 2 populated", st.Buckets)
	}
	b0, ok := st.Buckets["0-10%"]
	if !ok || b0.Count != 2 || b0.Max != 2 {
		t.Fatalf("bucket 0-10%% = %+v ok=%v, want count 2 max 2", b0, ok)
	}
	b3, ok := st.Buckets["50-100%"]
	if !ok || b3.Count != 1 || b3.Max != 10 {
		t.Fatalf("bucket 50-100%% = %+v ok=%v, want count 1 max 10", b3, ok)
	}
	if _, present := st.Buckets["10-25%"]; present {
		t.Fatal("empty bucket 10-25% reported")
	}
	// Partition breakdowns keyed by id.
	if len(st.Partitions) != 2 {
		t.Fatalf("partitions = %v, want 2", st.Partitions)
	}
	if p0 := st.Partitions["0"]; p0.Count != 2 {
		t.Fatalf("partition 0 = %+v, want count 2", p0)
	}
	if p2 := st.Partitions["2"]; p2.Count != 1 || p2.Max != 10 {
		t.Fatalf("partition 2 = %+v, want count 1 max 10", p2)
	}
}

func TestAccuracyMonitorNegativePartitionOmitted(t *testing.T) {
	m := NewAccuracyMonitor(AccuracyConfig{})
	m.Observe("m", AccuracySample{Bucket: 0, Partition: -1, Estimate: 1, Truth: 1})
	st, _ := m.ModelStats("m", 0)
	if len(st.Partitions) != 0 {
		t.Fatalf("partitions = %v, want none for unpartitioned samples", st.Partitions)
	}
}

func TestAccuracyMonitorEpsilonFloor(t *testing.T) {
	// Estimate 0 vs truth 0 would be 0/0; the epsilon floor makes it 1.
	m := NewAccuracyMonitor(AccuracyConfig{Epsilon: 1})
	m.Observe("m", AccuracySample{Estimate: 0, Truth: 0})
	st, _ := m.ModelStats("m", 0)
	if st.Max != 1 {
		t.Fatalf("q-error of 0-vs-0 = %v, want 1 (epsilon floor)", st.Max)
	}
	// With a larger floor, small counts are forgiven up to the floor.
	m2 := NewAccuracyMonitor(AccuracyConfig{Epsilon: 10})
	m2.Observe("m", AccuracySample{Estimate: 10, Truth: 1})
	st2, _ := m2.ModelStats("m", 0)
	if st2.Max != 1 {
		t.Fatalf("q-error with eps=10 floor = %v, want 1", st2.Max)
	}
}

func TestAccuracyMonitorWorstN(t *testing.T) {
	m := NewAccuracyMonitor(AccuracyConfig{WorstN: 3})
	// Six samples with q-errors 2..7; worst-3 must be {7,6,5}.
	for i := 2; i <= 7; i++ {
		m.Observe("m", AccuracySample{
			TraceID:  uint64(i),
			Estimate: float64(i),
			Truth:    1,
		})
	}
	st, _ := m.ModelStats("m", 0)
	if len(st.Worst) != 3 {
		t.Fatalf("worst len = %d, want 3", len(st.Worst))
	}
	wantQ := []float64{7, 6, 5}
	for i, w := range st.Worst {
		if w.QError != wantQ[i] {
			t.Fatalf("worst[%d].QError = %v, want %v (worst=%+v)", i, w.QError, wantQ[i], st.Worst)
		}
		if w.TraceID != FormatTraceID(uint64(w.QError)) {
			t.Fatalf("worst[%d] trace id %q does not match sample %v", i, w.TraceID, w.QError)
		}
	}
	// worstLimit caps the list.
	st, _ = m.ModelStats("m", 1)
	if len(st.Worst) != 1 || st.Worst[0].QError != 7 {
		t.Fatalf("worstLimit=1 => %+v, want single entry with q-error 7", st.Worst)
	}
}

func TestAccuracyMonitorConcurrent(t *testing.T) {
	m := NewAccuracyMonitor(AccuracyConfig{Window: 32})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Observe(fmt.Sprintf("m%d", g%2), AccuracySample{
					Bucket:    i % NumThresholdBuckets,
					Partition: i % 3,
					Estimate:  float64(i + 1),
					Truth:     float64(200 - i),
				})
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		m.Stats(0)
	}
	wg.Wait()
	st := m.Stats(0)
	if len(st) != 2 {
		t.Fatalf("models = %d, want 2", len(st))
	}
	for name, s := range st {
		if s.Samples != 400 {
			t.Fatalf("%s samples = %d, want 400", name, s.Samples)
		}
	}
}

// exactOracle is a test oracle with a fixed answer.
type exactOracle struct{ v float64 }

func (o exactOracle) TrueSelectivity([]float64, float64) (float64, string) { return o.v, "exact" }

func TestShadowOfferDeterministic(t *testing.T) {
	sh := NewShadow(ShadowConfig{SampleRate: 0.5, QueueDepth: 4096})
	defer sh.Close()
	q := []float64{1, 2, 3}
	// Same trace ID must decide the same way every time.
	first := sh.Offer("m", 42, 0, q, 0.5, 1, 0.1)
	for i := 0; i < 10; i++ {
		if got := sh.Offer("m", 42, 0, q, 0.5, 1, 0.1); got != first {
			t.Fatal("sampling decision not deterministic per trace ID")
		}
	}
	// Rate 0.5 over many IDs should sample roughly half.
	sampled := 0
	const n = 2000
	for id := uint64(1); id <= n; id++ {
		if sh.Offer("m", id, 0, q, 0.5, 1, 0.1) {
			sampled++
		}
	}
	if sampled < n/3 || sampled > 2*n/3 {
		t.Fatalf("rate 0.5 sampled %d of %d", sampled, n)
	}
}

func TestShadowRateExtremes(t *testing.T) {
	off := NewShadow(ShadowConfig{SampleRate: 0})
	defer off.Close()
	if off.Enabled() {
		t.Fatal("rate 0 must disable the sampler")
	}
	if off.Offer("m", 1, 0, []float64{1}, 0.1, 1, 0) {
		t.Fatal("rate 0 sampled a request")
	}
	var nilShadow *Shadow
	if nilShadow.Enabled() {
		t.Fatal("nil shadow reported enabled")
	}
	if nilShadow.Offer("m", 1, 0, []float64{1}, 0.1, 1, 0) {
		t.Fatal("nil shadow sampled a request")
	}

	all := NewShadow(ShadowConfig{SampleRate: 1, QueueDepth: 4096})
	defer all.Close()
	for id := uint64(1); id <= 100; id++ {
		if !all.Offer("m", id, 0, []float64{1}, 0.1, 1, 0) {
			t.Fatalf("rate 1 skipped trace %d", id)
		}
	}
}

func TestShadowSaltVariesWithinRequest(t *testing.T) {
	sh := NewShadow(ShadowConfig{SampleRate: 0.5, QueueDepth: 4096})
	defer sh.Close()
	// Across one batch request (fixed trace ID, varying salt) decisions
	// must not be all-or-nothing.
	q := []float64{1}
	decisions := map[bool]int{}
	for i := uint64(1); i <= 256; i++ {
		decisions[sh.Offer("m", 7, i, q, 0.5, 1, 0)]++
	}
	if decisions[true] == 0 || decisions[false] == 0 {
		t.Fatalf("salted batch decisions degenerate: %v", decisions)
	}
}

func TestShadowDropCounter(t *testing.T) {
	// No oracle registered and a tiny queue: with the worker stalled
	// behind a slow first sample, overflow must drop, not block.
	block := make(chan struct{})
	sh := NewShadow(ShadowConfig{
		SampleRate: 1,
		QueueDepth: 1,
		Accuracy:   NewAccuracyMonitor(AccuracyConfig{}),
	})
	sh.SetOracle("m", blockingOracle{ch: block})
	q := []float64{1}
	// First offer is consumed by the worker and blocks in the oracle;
	// second fills the queue; subsequent ones must drop. Allow a few
	// tries for the worker to pick up the first sample.
	deadline := time.Now().Add(2 * time.Second)
	dropped := false
	for time.Now().Before(deadline) {
		sh.Offer("m", 1, 0, q, 0.1, 1, 0)
		if sh.Stats().Dropped > 0 {
			dropped = true
			break
		}
	}
	close(block)
	sh.Close()
	if !dropped {
		t.Fatal("full queue never dropped")
	}
	st := sh.Stats()
	if st.Dropped == 0 {
		t.Fatalf("dropped = %d, want > 0", st.Dropped)
	}
}

type blockingOracle struct{ ch chan struct{} }

func (o blockingOracle) TrueSelectivity([]float64, float64) (float64, string) {
	<-o.ch
	return 0, "exact"
}

func TestShadowScoresThroughOracle(t *testing.T) {
	acc := NewAccuracyMonitor(AccuracyConfig{})
	sh := NewShadow(ShadowConfig{SampleRate: 1, Accuracy: acc, QueueDepth: 1024})
	sh.SetOracle("m", exactOracle{v: 100})
	sh.SetLocate(func(model string, x []float64, t float64) (int, bool) { return 3, true })
	q := []float64{1, 2}
	for id := uint64(1); id <= 32; id++ {
		if !sh.Offer("m", id, 0, q, 0.05, 1, 200) {
			t.Fatalf("offer %d rejected", id)
		}
	}
	sh.Close() // drains the queue before returning
	st, ok := acc.ModelStats("m", 0)
	if !ok || st.Samples != 32 {
		t.Fatalf("scored samples = %d ok=%v, want 32", st.Samples, ok)
	}
	if st.Max != 2 { // 200 vs 100
		t.Fatalf("q-error = %v, want 2", st.Max)
	}
	if _, okB := st.Buckets["0-10%"]; !okB {
		t.Fatalf("bucket breakdown missing: %v", st.Buckets)
	}
	if p, okP := st.Partitions["3"]; !okP || p.Count != 32 {
		t.Fatalf("partition attribution missing: %v", st.Partitions)
	}
	if len(st.Worst) == 0 || st.Worst[0].Oracle != "exact" {
		t.Fatalf("worst list = %+v, want oracle method retained", st.Worst)
	}
	ss := sh.Stats()
	if ss.Sampled != 32 || ss.Oracles["exact"] != 32 {
		t.Fatalf("sampler stats = %+v", ss)
	}
}

func TestShadowNoOracleCounted(t *testing.T) {
	sh := NewShadow(ShadowConfig{SampleRate: 1, QueueDepth: 64})
	for id := uint64(1); id <= 8; id++ {
		sh.Offer("unknown", id, 0, []float64{1}, 0.1, 1, 0)
	}
	sh.Close()
	if st := sh.Stats(); st.NoOracle != 8 {
		t.Fatalf("no_oracle = %d, want 8", st.NoOracle)
	}
}

func TestShadowCloseDrains(t *testing.T) {
	acc := NewAccuracyMonitor(AccuracyConfig{})
	sh := NewShadow(ShadowConfig{SampleRate: 1, Accuracy: acc, QueueDepth: 1024})
	sh.SetOracle("m", exactOracle{v: 1})
	for id := uint64(1); id <= 500; id++ {
		sh.Offer("m", id, 0, []float64{1}, 0.1, 1, 1)
	}
	sampled := sh.Stats().Sampled
	sh.Close()
	if sh.Offer("m", 1000, 0, []float64{1}, 0.1, 1, 1) {
		t.Fatal("offer accepted after Close")
	}
	st, _ := acc.ModelStats("m", 0)
	if st.Samples != sampled {
		t.Fatalf("drained %d of %d enqueued samples", st.Samples, sampled)
	}
	sh.Close() // idempotent
}

func TestShadowSpillLargeQueries(t *testing.T) {
	acc := NewAccuracyMonitor(AccuracyConfig{})
	sh := NewShadow(ShadowConfig{SampleRate: 1, Accuracy: acc, QueueDepth: 16})
	var got []float64
	var mu sync.Mutex
	sh.SetOracle("m", oracleFunc(func(x []float64, t float64) (float64, string) {
		mu.Lock()
		got = append([]float64(nil), x...)
		mu.Unlock()
		return 1, "exact"
	}))
	q := make([]float64, 100) // beyond the inline capacity
	for i := range q {
		q[i] = float64(i)
	}
	sh.Offer("m", 1, 0, q, 0.1, 1, 1)
	sh.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 100 || got[99] != 99 {
		t.Fatalf("oracle saw %d dims (last %v), want the spilled 100-dim query", len(got), got[len(got)-1:])
	}
}

type oracleFunc func(x []float64, t float64) (float64, string)

func (f oracleFunc) TrueSelectivity(x []float64, t float64) (float64, string) { return f(x, t) }

func TestMix64Distribution(t *testing.T) {
	// Sequential inputs must spread across the 64-bit range: check that
	// the top bit is set roughly half the time.
	top := 0
	const n = 10000
	for i := uint64(0); i < n; i++ {
		if Mix64(i)&(1<<63) != 0 {
			top++
		}
	}
	if top < n/3 || top > 2*n/3 {
		t.Fatalf("top bit set %d of %d times", top, n)
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("mix64 collision on adjacent inputs")
	}
	if math.Abs(float64(Mix64(7))-float64(Mix64(7))) != 0 {
		t.Fatal("mix64 not deterministic")
	}
}
