package obs

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"selnet/internal/metrics"
)

// This file is the live-traffic accuracy layer: a deterministic sampler
// (Shadow) taps a configurable fraction of estimate requests on the
// serving hot path — one hash and one non-blocking channel send, zero
// allocations — and an async oracle worker pool computes ground truth
// off the serving path, feeding q-errors into rolling per-model
// aggregates (AccuracyMonitor) broken down by threshold bucket and by
// partition, with a worst-N ring retaining the requests estimated
// worst. The drift monitor in drift.go scores relabelled holdouts at
// ingest cycles; this scores the queries users actually send, between
// cycles, against an oracle with distribution-free sampling bounds.

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash used to turn sequential trace IDs into uniform sampling keys and
// to derive deterministic per-query sampling streams.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix64 exposes the sampler's hash so oracle implementations can derive
// deterministic sampling streams from query content.
func Mix64(x uint64) uint64 { return mix64(x) }

// ----------------------------------------------------------------------------
// Threshold buckets

// NumThresholdBuckets is the number of relative-threshold bands that
// q-errors are attributed to: a query's threshold t is bucketed by its
// ratio to the model's training t_max, since selectivity (and therefore
// estimation difficulty) scales with the radius, not its absolute value.
const NumThresholdBuckets = 5

var thresholdBucketLabels = [NumThresholdBuckets]string{
	"0-10%", "10-25%", "25-50%", "50-100%", ">100%",
}

// ThresholdBucket maps a query threshold to its band index given the
// model's training t_max. Non-positive t_max (model without a known
// radius range) lands everything in the last band.
func ThresholdBucket(t, tmax float64) int {
	if tmax <= 0 {
		return NumThresholdBuckets - 1
	}
	switch r := t / tmax; {
	case r <= 0.10:
		return 0
	case r <= 0.25:
		return 1
	case r <= 0.50:
		return 2
	case r <= 1.0:
		return 3
	default:
		return NumThresholdBuckets - 1
	}
}

// ThresholdBucketLabel returns the human-readable band for an index
// from ThresholdBucket.
func ThresholdBucketLabel(i int) string {
	if i < 0 || i >= NumThresholdBuckets {
		return "unknown"
	}
	return thresholdBucketLabels[i]
}

// ----------------------------------------------------------------------------
// Rolling q-error aggregation

// qring is a fixed-capacity rolling window of q-errors. Pushes are O(1)
// and allocation-free; quantiles are computed only at snapshot time
// (scrapes and /debug/accuracy reads), never per observation.
type qring struct {
	ring  []float64
	n     int
	pos   int
	count uint64 // lifetime observations
}

func (r *qring) push(v float64) {
	r.ring[r.pos] = v
	r.pos = (r.pos + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.count++
}

// quantiles sorts a copy of the window (snapshot path only) and reads
// the requested quantiles from it.
func (r *qring) quantiles(qs ...float64) []float64 {
	return metrics.Quantiles(r.ring[:r.n], qs...)
}

// AccuracyConfig tunes the shadow-scoring aggregates.
type AccuracyConfig struct {
	// Window is how many recent q-errors each rolling aggregate keeps
	// (default 512). Bucket and partition windows share the same size.
	Window int
	// Epsilon is the q-error floor applied to estimates and ground
	// truth (default 1, the paper's convention).
	Epsilon float64
	// WorstN is how many highest-q-error samples are retained per model
	// with their trace IDs (default 16).
	WorstN int
}

// AccuracySample is one shadow-scored request, produced by the Shadow
// worker pool and pushed into the AccuracyMonitor.
type AccuracySample struct {
	TraceID   uint64
	Bucket    int // ThresholdBucket index
	Partition int // model partition/region id; -1 when not partitioned
	Estimate  float64
	Truth     float64
	T         float64
	Oracle    string // ground-truth method: "exact", "sample", "lsh"
}

// WorstSample is a retained worst-case request as served by
// /debug/accuracy: the trace ID links it back to /debug/traces and the
// access log.
type WorstSample struct {
	TraceID   string    `json:"trace_id"`
	QError    float64   `json:"qerror"`
	Estimate  float64   `json:"estimate"`
	Truth     float64   `json:"truth"`
	T         float64   `json:"t"`
	Bucket    string    `json:"bucket"`
	Partition int       `json:"partition,omitempty"`
	Oracle    string    `json:"oracle"`
	At        time.Time `json:"at"`
}

// worstEntry is the internal, allocation-free form of a WorstSample.
type worstEntry struct {
	sample AccuracySample
	qerr   float64
	at     time.Time
}

// BreakdownStats summarizes one rolling aggregate (a threshold bucket
// or a partition) at snapshot time.
type BreakdownStats struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"qerror_p50"`
	P95   float64 `json:"qerror_p95"`
	Max   float64 `json:"qerror_max"`
}

// AccuracyStats is one model's shadow-scoring picture: overall rolling
// quantiles plus per-threshold-bucket and per-partition breakdowns and
// the retained worst-N requests.
type AccuracyStats struct {
	Samples    uint64                    `json:"samples"`
	Window     int                       `json:"window"`
	P50        float64                   `json:"qerror_p50"`
	P95        float64                   `json:"qerror_p95"`
	P99        float64                   `json:"qerror_p99"`
	Max        float64                   `json:"qerror_max"`
	Buckets    map[string]BreakdownStats `json:"buckets,omitempty"`
	Partitions map[string]BreakdownStats `json:"partitions,omitempty"`
	Worst      []WorstSample             `json:"worst,omitempty"`
	LastAt     time.Time                 `json:"last_sample_at"`
}

// modelAccuracy is one model's rolling state. The overall and
// per-bucket rings are allocated when the model is first observed; the
// partition map grows one ring per region actually seen.
type modelAccuracy struct {
	overall qring
	buckets [NumThresholdBuckets]qring
	parts   map[int]*qring
	worst   []worstEntry // capacity WorstN; min-replaced once full
	lastAt  time.Time
}

// AccuracyMonitor aggregates shadow-scored q-errors per model. Observe
// runs on the oracle worker goroutines (never the serving path) and is
// allocation-free once a model's rings exist; Stats and WriteMetrics
// are scrape-time reads that do their sorting on the scraper's
// goroutine.
type AccuracyMonitor struct {
	cfg    AccuracyConfig
	mu     sync.Mutex
	models map[string]*modelAccuracy
}

// NewAccuracyMonitor builds a monitor, applying defaults for zero
// fields.
func NewAccuracyMonitor(cfg AccuracyConfig) *AccuracyMonitor {
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1
	}
	if cfg.WorstN <= 0 {
		cfg.WorstN = 16
	}
	return &AccuracyMonitor{cfg: cfg, models: make(map[string]*modelAccuracy)}
}

// Observe records one shadow-scored sample: the q-error lands in the
// model's overall window, its threshold bucket's window, and (when the
// sample carries a partition) that partition's window; sufficiently bad
// samples displace the current minimum of the worst-N list.
func (a *AccuracyMonitor) Observe(model string, s AccuracySample) {
	qerr := metrics.QError(s.Estimate, s.Truth, a.cfg.Epsilon)
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.models[model]
	if m == nil {
		m = &modelAccuracy{
			parts: make(map[int]*qring),
			worst: make([]worstEntry, 0, a.cfg.WorstN),
		}
		m.overall.ring = make([]float64, a.cfg.Window)
		for i := range m.buckets {
			m.buckets[i].ring = make([]float64, a.cfg.Window)
		}
		a.models[model] = m
	}
	m.overall.push(qerr)
	if s.Bucket >= 0 && s.Bucket < NumThresholdBuckets {
		m.buckets[s.Bucket].push(qerr)
	}
	if s.Partition >= 0 {
		pr := m.parts[s.Partition]
		if pr == nil {
			pr = &qring{ring: make([]float64, a.cfg.Window)}
			m.parts[s.Partition] = pr
		}
		pr.push(qerr)
	}
	m.lastAt = time.Now()

	// Worst-N retention, the slow-trace ring idiom: append until full,
	// then replace the current minimum if this sample is worse.
	if len(m.worst) < cap(m.worst) {
		m.worst = append(m.worst, worstEntry{sample: s, qerr: qerr, at: m.lastAt})
		return
	}
	min := 0
	for i := 1; i < len(m.worst); i++ {
		if m.worst[i].qerr < m.worst[min].qerr {
			min = i
		}
	}
	if qerr > m.worst[min].qerr {
		m.worst[min] = worstEntry{sample: s, qerr: qerr, at: m.lastAt}
	}
}

// Stats snapshots every observed model. worstLimit caps the worst-N
// list per model (<= 0 means all retained entries).
func (a *AccuracyMonitor) Stats(worstLimit int) map[string]AccuracyStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]AccuracyStats, len(a.models))
	for name, m := range a.models {
		out[name] = a.snapshotLocked(m, worstLimit)
	}
	return out
}

// ModelStats snapshots one model (zero value, false if never observed).
func (a *AccuracyMonitor) ModelStats(model string, worstLimit int) (AccuracyStats, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.models[model]
	if m == nil {
		return AccuracyStats{}, false
	}
	return a.snapshotLocked(m, worstLimit), true
}

func (a *AccuracyMonitor) snapshotLocked(m *modelAccuracy, worstLimit int) AccuracyStats {
	qs := m.overall.quantiles(0.5, 0.95, 0.99, 1)
	st := AccuracyStats{
		Samples: m.overall.count,
		Window:  m.overall.n,
		P50:     qs[0], P95: qs[1], P99: qs[2], Max: qs[3],
		LastAt: m.lastAt,
	}
	for i := range m.buckets {
		b := &m.buckets[i]
		if b.n == 0 {
			continue // empty buckets are omitted, not reported as zeros
		}
		if st.Buckets == nil {
			st.Buckets = make(map[string]BreakdownStats, NumThresholdBuckets)
		}
		bq := b.quantiles(0.5, 0.95, 1)
		st.Buckets[thresholdBucketLabels[i]] = BreakdownStats{Count: b.count, P50: bq[0], P95: bq[1], Max: bq[2]}
	}
	if len(m.parts) > 0 {
		st.Partitions = make(map[string]BreakdownStats, len(m.parts))
		for id, pr := range m.parts {
			pq := pr.quantiles(0.5, 0.95, 1)
			st.Partitions[strconv.Itoa(id)] = BreakdownStats{Count: pr.count, P50: pq[0], P95: pq[1], Max: pq[2]}
		}
	}
	if n := len(m.worst); n > 0 {
		ws := make([]worstEntry, n)
		copy(ws, m.worst)
		sort.Slice(ws, func(i, j int) bool { return ws[i].qerr > ws[j].qerr })
		if worstLimit > 0 && worstLimit < len(ws) {
			ws = ws[:worstLimit]
		}
		st.Worst = make([]WorstSample, len(ws))
		for i, w := range ws {
			st.Worst[i] = WorstSample{
				TraceID:   FormatTraceID(w.sample.TraceID),
				QError:    w.qerr,
				Estimate:  w.sample.Estimate,
				Truth:     w.sample.Truth,
				T:         w.sample.T,
				Bucket:    ThresholdBucketLabel(w.sample.Bucket),
				Partition: w.sample.Partition,
				Oracle:    w.sample.Oracle,
				At:        w.at,
			}
		}
	}
	return st
}

// WriteMetrics emits the shadow-accuracy families: rolling q-error
// quantiles overall ("all") and per threshold bucket, per-partition
// quantiles, and per-model sample totals.
func (a *AccuracyMonitor) WriteMetrics(p *PromWriter) {
	stats := a.Stats(0)
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := stats[name]
		const qerrHelp = "Rolling q-error quantile of live shadow-scored estimates, by threshold bucket (relative to the model's t_max)."
		for _, q := range []struct {
			label string
			v     float64
		}{{"p50", st.P50}, {"p95", st.P95}, {"p99", st.P99}, {"max", st.Max}} {
			p.Value("selestd_shadow_qerror", qerrHelp, "gauge", q.v, "model", name, "bucket", "all", "quantile", q.label)
		}
		buckets := make([]string, 0, len(st.Buckets))
		for b := range st.Buckets {
			buckets = append(buckets, b)
		}
		sort.Strings(buckets)
		for _, b := range buckets {
			bs := st.Buckets[b]
			for _, q := range []struct {
				label string
				v     float64
			}{{"p50", bs.P50}, {"p95", bs.P95}, {"max", bs.Max}} {
				p.Value("selestd_shadow_qerror", qerrHelp, "gauge", q.v, "model", name, "bucket", b, "quantile", q.label)
			}
		}
		parts := make([]string, 0, len(st.Partitions))
		for id := range st.Partitions {
			parts = append(parts, id)
		}
		sort.Strings(parts)
		for _, id := range parts {
			ps := st.Partitions[id]
			for _, q := range []struct {
				label string
				v     float64
			}{{"p50", ps.P50}, {"p95", ps.P95}, {"max", ps.Max}} {
				p.Value("selestd_shadow_partition_qerror", "Rolling q-error quantile of live shadow-scored estimates attributed to one model partition.",
					"gauge", q.v, "model", name, "partition", id, "quantile", q.label)
			}
		}
		p.Value("selestd_shadow_samples_total", "Live requests shadow-scored against ground truth.", "counter", float64(st.Samples), "model", name)
		p.Value("selestd_shadow_window_size", "Q-error samples currently in the model's rolling window.", "gauge", float64(st.Window), "model", name)
	}
}

// ----------------------------------------------------------------------------
// Shadow sampler + oracle worker pool

// Oracle computes ground-truth selectivity for a query off the serving
// path. Implementations identify how the truth was obtained — "exact"
// (full scan), "sample" (VC-bounded uniform sample), or "lsh"
// (stratified LSH sample) — so accuracy readers know the truth's own
// error bound.
type Oracle interface {
	TrueSelectivity(x []float64, t float64) (value float64, method string)
}

// ShadowConfig tunes the sampler and its worker pool.
type ShadowConfig struct {
	// SampleRate is the fraction of estimate requests shadow-scored,
	// in [0, 1]. The decision hashes the request's trace ID, so it is
	// deterministic per request and costs one multiply-shift on the
	// serving path. 0 disables sampling entirely.
	SampleRate float64
	// QueueDepth bounds the channel between the serving tap and the
	// oracle workers (default 256). A full queue drops the sample and
	// increments a counter; the serving path never blocks.
	QueueDepth int
	// Workers is the oracle pool size (default 1).
	Workers int
	// Accuracy receives the scored q-errors (default a fresh monitor).
	Accuracy *AccuracyMonitor
	// Workload, when set, receives every sampled query vector for
	// workload-shift detection.
	Workload *WorkloadMonitor
}

// shadowSample rides the bounded channel from the tap to the workers.
// The query slice is owned by the request handler's decode buffer only
// until the handler returns, so the tap copies it into the sample's
// inline array when it fits (the common case for the serving stack's
// dimensionalities) and falls back to a heap copy above that.
type shadowSample struct {
	model   string
	traceID uint64
	t       float64
	tmax    float64
	est     float64
	dim     int
	inline  [64]float64
	spill   []float64
}

func (s *shadowSample) query() []float64 {
	if s.spill != nil {
		return s.spill
	}
	return s.inline[:s.dim]
}

// Shadow taps the live estimate path. The tap (Offer) is safe for
// concurrent use by every request goroutine, allocation-free for
// dimensionalities up to the inline capacity, and never blocks: a
// sampled request is enqueued onto a bounded channel or counted as
// dropped. A small worker pool consumes the channel, asks the model's
// registered Oracle for ground truth, and feeds q-errors into the
// AccuracyMonitor (and query vectors into the WorkloadMonitor).
type Shadow struct {
	cfg       ShadowConfig
	threshold uint64 // sample iff mix64(key) < threshold
	ch        chan shadowSample
	quit      chan struct{}
	wg        sync.WaitGroup
	closed    atomic.Bool

	mu      sync.RWMutex
	oracles map[string]Oracle
	locate  func(model string, x []float64, t float64) (int, bool)

	sampled  atomic.Uint64
	dropped  atomic.Uint64
	noOracle atomic.Uint64

	methodMu sync.Mutex
	methods  map[string]uint64
}

// NewShadow builds the sampler and starts its worker pool. Close must
// be called to stop the workers.
func NewShadow(cfg ShadowConfig) *Shadow {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Accuracy == nil {
		cfg.Accuracy = NewAccuracyMonitor(AccuracyConfig{})
	}
	var threshold uint64
	switch {
	case cfg.SampleRate >= 1:
		threshold = ^uint64(0)
	case cfg.SampleRate > 0:
		threshold = uint64(cfg.SampleRate * float64(^uint64(0)))
	}
	s := &Shadow{
		cfg:       cfg,
		threshold: threshold,
		ch:        make(chan shadowSample, cfg.QueueDepth),
		quit:      make(chan struct{}),
		oracles:   make(map[string]Oracle),
		methods:   make(map[string]uint64),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Enabled reports whether the sampler can ever sample (nil-safe).
func (s *Shadow) Enabled() bool { return s != nil && s.threshold > 0 }

// SampleRate returns the configured sampling fraction.
func (s *Shadow) SampleRate() float64 { return s.cfg.SampleRate }

// Accuracy returns the monitor receiving the scored samples.
func (s *Shadow) Accuracy() *AccuracyMonitor { return s.cfg.Accuracy }

// Workload returns the workload monitor, if any.
func (s *Shadow) Workload() *WorkloadMonitor { return s.cfg.Workload }

// SetOracle registers (or, with nil, removes) the ground-truth oracle
// for a model. Samples for models without an oracle still feed the
// workload monitor but are counted as no_oracle rather than scored.
func (s *Shadow) SetOracle(model string, o Oracle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o == nil {
		delete(s.oracles, model)
		return
	}
	s.oracles[model] = o
}

// SetLocate installs the partition locator used to attribute samples to
// model regions; called by the serving layer before traffic flows.
func (s *Shadow) SetLocate(f func(model string, x []float64, t float64) (int, bool)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locate = f
}

// Offer is the hot-path tap: decide-by-hash, then enqueue-or-drop.
// traceID is the request's trace identifier (retained with the sample
// so worst cases link back to /debug/traces); salt distinguishes
// multiple queries within one traced request (batch estimates), 0 for
// single-query requests. Returns whether the request was sampled and
// enqueued.
func (s *Shadow) Offer(model string, traceID, salt uint64, q []float64, t, tmax, est float64) bool {
	if s == nil || s.threshold == 0 || s.closed.Load() {
		return false
	}
	key := traceID
	if salt != 0 {
		key ^= mix64(salt)
	}
	if mix64(key) >= s.threshold {
		return false
	}
	sm := shadowSample{model: model, traceID: traceID, t: t, tmax: tmax, est: est, dim: len(q)}
	if len(q) <= len(sm.inline) {
		copy(sm.inline[:], q)
	} else {
		sm.spill = append([]float64(nil), q...)
	}
	select {
	case s.ch <- sm:
		s.sampled.Add(1)
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Close stops accepting samples, drains what is already queued, and
// waits for the workers to exit.
func (s *Shadow) Close() {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.quit)
	s.wg.Wait()
}

func (s *Shadow) worker() {
	defer s.wg.Done()
	// One reusable sample per worker: the oracle call sees a slice into
	// it through an interface, so a per-iteration variable would escape
	// to the heap on every sample.
	var sm shadowSample
	for {
		select {
		case sm = <-s.ch:
			s.handle(&sm)
		case <-s.quit:
			for {
				select {
				case sm = <-s.ch:
					s.handle(&sm)
				default:
					return
				}
			}
		}
	}
}

func (s *Shadow) handle(sm *shadowSample) {
	q := sm.query()
	if s.cfg.Workload != nil {
		s.cfg.Workload.Observe(sm.model, q, sm.t)
	}
	s.mu.RLock()
	o := s.oracles[sm.model]
	locate := s.locate
	s.mu.RUnlock()
	if o == nil {
		s.noOracle.Add(1)
		return
	}
	truth, method := o.TrueSelectivity(q, sm.t)
	part := -1
	if locate != nil {
		if id, ok := locate(sm.model, q, sm.t); ok {
			part = id
		}
	}
	s.methodMu.Lock()
	s.methods[method]++
	s.methodMu.Unlock()
	s.cfg.Accuracy.Observe(sm.model, AccuracySample{
		TraceID:   sm.traceID,
		Bucket:    ThresholdBucket(sm.t, sm.tmax),
		Partition: part,
		Estimate:  sm.est,
		Truth:     truth,
		T:         sm.t,
		Oracle:    method,
	})
}

// ShadowStats is the sampler's own picture: configuration, queue
// pressure, and how ground truths were obtained.
type ShadowStats struct {
	SampleRate    float64           `json:"sample_rate"`
	Sampled       uint64            `json:"sampled"`
	Dropped       uint64            `json:"dropped"`
	NoOracle      uint64            `json:"no_oracle"`
	QueueDepth    int               `json:"queue_depth"`
	QueueCapacity int               `json:"queue_capacity"`
	Workers       int               `json:"workers"`
	Oracles       map[string]uint64 `json:"oracle_methods,omitempty"`
}

// Stats snapshots the sampler.
func (s *Shadow) Stats() ShadowStats {
	st := ShadowStats{
		SampleRate:    s.cfg.SampleRate,
		Sampled:       s.sampled.Load(),
		Dropped:       s.dropped.Load(),
		NoOracle:      s.noOracle.Load(),
		QueueDepth:    len(s.ch),
		QueueCapacity: cap(s.ch),
		Workers:       s.cfg.Workers,
	}
	s.methodMu.Lock()
	if len(s.methods) > 0 {
		st.Oracles = make(map[string]uint64, len(s.methods))
		for m, n := range s.methods {
			st.Oracles[m] = n
		}
	}
	s.methodMu.Unlock()
	return st
}

// WriteMetrics emits the sampler, accuracy, and workload families.
func (s *Shadow) WriteMetrics(p *PromWriter) {
	st := s.Stats()
	p.Value("selestd_shadow_sample_rate", "Configured fraction of estimate requests shadow-scored.", "gauge", st.SampleRate)
	p.Value("selestd_shadow_sampled_total", "Requests sampled into the shadow-scoring queue.", "counter", float64(st.Sampled))
	p.Value("selestd_shadow_dropped_total", "Sampled requests dropped because the shadow queue was full.", "counter", float64(st.Dropped))
	p.Value("selestd_shadow_no_oracle_total", "Sampled requests skipped because the model has no ground-truth oracle.", "counter", float64(st.NoOracle))
	p.Value("selestd_shadow_queue_depth", "Shadow-scoring queue occupancy at scrape time.", "gauge", float64(st.QueueDepth))
	methods := make([]string, 0, len(st.Oracles))
	for m := range st.Oracles {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		p.Value("selestd_shadow_oracle_truths_total", "Ground truths computed, by oracle method.", "counter", float64(st.Oracles[m]), "method", m)
	}
	s.cfg.Accuracy.WriteMetrics(p)
	if s.cfg.Workload != nil {
		s.cfg.Workload.WriteMetrics(p)
	}
}
