// Package obs is the observability layer of the serving stack: request
// tracing with per-stage latency attribution, a lock-free recent/slowest
// span store behind GET /debug/traces, rolling q-error drift monitoring
// for streaming updates, Prometheus exposition building blocks (the
// Histogram and PromWriter used by internal/serve), and build
// information for GET /v1/buildinfo.
//
// The package sits below internal/serve and internal/ingest: both wire
// obs types through their hot paths, and the HTTP server renders the
// collected state as /debug/traces, /metrics, and /stats sections. obs
// itself depends only on the stdlib and internal/metrics (for the
// paper's q-error), so every subsystem can use it without cycles.
//
// Everything here is built for hot paths: span records are plain value
// structs kept in a fixed ring of seqlock-guarded slots (writers and
// readers claim a slot with one CAS and never block each other — a
// contended sample is dropped, not waited for), histograms are arrays
// of atomic counters, and the drift monitor does its sorting on the
// ingest worker's goroutine, never on the serving path.
package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
)

// traceIDs hands out process-unique span identifiers; 0 is reserved as
// "no trace" so an empty ring slot is distinguishable from a recorded
// span.
var traceIDs atomic.Uint64

// NextTraceID returns a new nonzero trace identifier.
func NextTraceID() uint64 { return traceIDs.Add(1) }

// FormatTraceID renders an identifier the way it appears in the
// X-Trace-Id response header, /debug/traces, and request logs.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID inverts FormatTraceID. It accepts the identifiers the
// server itself mints (up to 16 hex digits, nonzero), so a request
// forwarded between cluster nodes keeps one trace ID across hops; an
// arbitrary client-supplied header that does not parse is rejected and
// the receiving node mints its own.
func ParseTraceID(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

type traceIDKey struct{}

// WithTraceID attaches a trace identifier to ctx (the serving
// middleware does this once per request, before the handler runs).
func WithTraceID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the trace identifier attached to ctx, if any.
func TraceIDFrom(ctx context.Context) (uint64, bool) {
	id, ok := ctx.Value(traceIDKey{}).(uint64)
	return id, ok
}
