package obs

import (
	"sync"
	"time"

	"selnet/internal/metrics"
)

// DriftConfig tunes the online accuracy drift monitor.
type DriftConfig struct {
	// Window is how many recent q-errors are kept per model for the
	// rolling quantiles (default 512).
	Window int
	// Threshold is the p95 q-error above which a cycle increments the
	// model's exceeded counter; 0 disables the counter.
	Threshold float64
	// Epsilon is the q-error floor applied to predictions and labels
	// (default 1, the paper's convention for cardinalities).
	Epsilon float64
}

// DriftStats is one model's rolling accuracy picture: quantiles over
// the current window plus lifetime cycle/sample/exceeded counters.
type DriftStats struct {
	Cycles   uint64    `json:"cycles"`
	Samples  uint64    `json:"samples"`
	Window   int       `json:"window"`
	P50      float64   `json:"qerror_p50"`
	P95      float64   `json:"qerror_p95"`
	Max      float64   `json:"qerror_max"`
	Exceeded uint64    `json:"exceeded"`
	LastAt   time.Time `json:"last_cycle_at"`
}

type driftWindow struct {
	ring  []float64 // capacity cfg.Window; n valid entries, pos = next write
	n     int
	pos   int
	stats DriftStats
}

// DriftMonitor tracks online estimation accuracy per model: after each
// ingest cycle the pipeline scores the *serving* model against a
// holdout of freshly relabelled queries and feeds the q-errors here.
// The monitor keeps a rolling window per model and publishes
// p50/p95/max quantiles plus an exceeded counter — retraining lag
// becomes visible before users see bad estimates.
//
// Observe runs on the ingest worker goroutine, so the mutex and the
// quantile sort are off the serving path; Stats and WriteMetrics are
// scrape-time reads.
type DriftMonitor struct {
	cfg    DriftConfig
	mu     sync.Mutex
	models map[string]*driftWindow
}

// NewDriftMonitor builds a monitor, applying defaults for zero fields.
func NewDriftMonitor(cfg DriftConfig) *DriftMonitor {
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1
	}
	return &DriftMonitor{cfg: cfg, models: make(map[string]*driftWindow)}
}

// Observe scores one cycle's holdout: parallel prediction and
// ground-truth slices for model. It pushes the q-errors into the
// model's rolling window, recomputes the quantiles, and returns the
// updated stats. Empty or mismatched slices are ignored.
func (d *DriftMonitor) Observe(model string, pred, label []float64) DriftStats {
	n := len(pred)
	if n == 0 || n != len(label) {
		return d.ModelStats(model)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.models[model]
	if w == nil {
		w = &driftWindow{ring: make([]float64, d.cfg.Window)}
		d.models[model] = w
	}
	for i := 0; i < n; i++ {
		w.ring[w.pos] = metrics.QError(pred[i], label[i], d.cfg.Epsilon)
		w.pos = (w.pos + 1) % len(w.ring)
		if w.n < len(w.ring) {
			w.n++
		}
	}
	qs := metrics.Quantiles(w.ring[:w.n], 0.5, 0.95, 1)
	w.stats.P50, w.stats.P95, w.stats.Max = qs[0], qs[1], qs[2]
	w.stats.Window = w.n
	w.stats.Cycles++
	w.stats.Samples += uint64(n)
	w.stats.LastAt = time.Now()
	if d.cfg.Threshold > 0 && w.stats.P95 > d.cfg.Threshold {
		w.stats.Exceeded++
	}
	return w.stats
}

// ModelStats returns one model's current stats (zero value if the
// model has never been observed).
func (d *DriftMonitor) ModelStats(model string) DriftStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w := d.models[model]; w != nil {
		return w.stats
	}
	return DriftStats{}
}

// Stats snapshots every observed model.
func (d *DriftMonitor) Stats() map[string]DriftStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]DriftStats, len(d.models))
	for name, w := range d.models {
		out[name] = w.stats
	}
	return out
}

// Threshold reports the configured p95 q-error alarm threshold.
func (d *DriftMonitor) Threshold() float64 { return d.cfg.Threshold }

// WriteMetrics emits the drift gauges and counters: per-model rolling
// q-error quantiles, sample/cycle totals, and the exceeded counter.
func (d *DriftMonitor) WriteMetrics(p *PromWriter) {
	p.Value("selestd_drift_qerror_threshold", "Configured p95 q-error threshold (0 = alarm disabled).", "gauge", d.cfg.Threshold)
	for name, st := range d.Stats() {
		for _, q := range []struct {
			label string
			v     float64
		}{{"p50", st.P50}, {"p95", st.P95}, {"max", st.Max}} {
			p.Value("selestd_drift_qerror", "Rolling q-error quantile of the serving model against fresh ground truth.",
				"gauge", q.v, "model", name, "quantile", q.label)
		}
		p.Value("selestd_drift_window_size", "Q-error samples currently in the rolling window.", "gauge", float64(st.Window), "model", name)
		p.Value("selestd_drift_cycles_total", "Ingest cycles scored for drift.", "counter", float64(st.Cycles), "model", name)
		p.Value("selestd_drift_samples_total", "Holdout queries scored for drift.", "counter", float64(st.Samples), "model", name)
		p.Value("selestd_drift_exceeded_total", "Cycles whose rolling p95 q-error exceeded the threshold.", "counter", float64(st.Exceeded), "model", name)
	}
}
