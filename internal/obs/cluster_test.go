package obs

import (
	"strings"
	"testing"
)

func TestClusterMonitorCounters(t *testing.T) {
	m := NewClusterMonitor()
	m.SetRole("m", false, 1)
	m.Promotion("m")
	m.SetRole("m", true, 2)
	m.Demotion("m")
	m.SetLag("m", "http://b:1", 3)
	m.SetLag("m", "http://c:1", 0)
	m.ObservePull(5, false)
	m.ObservePull(0, true)
	m.MarkDiverged("m")
	m.MarkDiverged("m") // latched, not double-counted

	c := m.Counters()
	if c.Promotions != 1 || c.Demotions != 1 {
		t.Fatalf("promotions/demotions = %d/%d, want 1/1", c.Promotions, c.Demotions)
	}
	if c.Diverged != 1 {
		t.Fatalf("diverged = %d, want 1", c.Diverged)
	}
	if c.Pulls != 2 || c.PullErrors != 1 || c.Entries != 5 {
		t.Fatalf("pulls/errors/entries = %d/%d/%d, want 2/1/5", c.Pulls, c.PullErrors, c.Entries)
	}

	var b strings.Builder
	m.WriteMetrics(NewPromWriter(&b))
	out := b.String()
	for _, want := range []string{
		`selestd_cluster_is_leader{model="m"} 1`,
		`selestd_cluster_term{model="m"} 2`,
		`selestd_cluster_failovers_total{model="m"} 1`,
		`selestd_cluster_demotions_total{model="m"} 1`,
		`selestd_replication_diverged{model="m"} 1`,
		`selestd_replication_lag{model="m",peer="http://b:1"} 3`,
		`selestd_replication_pulls_total 2`,
		`selestd_replication_pull_errors_total 1`,
		`selestd_replication_entries_total 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	m.DropPeer("m", "http://b:1")
	b.Reset()
	m.WriteMetrics(NewPromWriter(&b))
	if strings.Contains(b.String(), `peer="http://b:1"`) {
		t.Error("dropped peer still exposed")
	}
}

func TestClusterMonitorNilSafe(t *testing.T) {
	var m *ClusterMonitor
	m.SetRole("m", true, 1)
	m.Promotion("m")
	m.Demotion("m")
	m.SetLag("m", "p", 1)
	m.DropPeer("m", "p")
	m.MarkDiverged("m")
	m.ObservePull(1, false)
	if c := m.Counters(); c != (ClusterCounters{}) {
		t.Fatalf("nil monitor counters = %+v", c)
	}
	m.WriteMetrics(NewPromWriter(&strings.Builder{}))
}

func TestParseTraceID(t *testing.T) {
	id := NextTraceID()
	got, ok := ParseTraceID(FormatTraceID(id))
	if !ok || got != id {
		t.Fatalf("round-trip: got %d ok=%v, want %d", got, ok, id)
	}
	for _, bad := range []string{"", "zz", "0", "00000000000000000", "0000000000000000", "-1"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}
