package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// BuildInfo is the payload of GET /v1/buildinfo and the "build" section
// of /stats: enough to tell which binary is serving and for how long.
type BuildInfo struct {
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	VCSRevision   string  `json:"vcs_revision,omitempty"`
	VCSTime       string  `json:"vcs_time,omitempty"`
	VCSModified   bool    `json:"vcs_modified,omitempty"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ReadBuildInfo assembles build metadata from the binary's embedded
// module info; started anchors the uptime.
func ReadBuildInfo(started time.Time) BuildInfo {
	b := BuildInfo{
		Version:       "(devel)",
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		UptimeSeconds: time.Since(started).Seconds(),
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if v := info.Main.Version; v != "" {
		b.Version = v
	}
	if info.GoVersion != "" {
		b.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.VCSRevision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.VCSModified = s.Value == "true"
		}
	}
	return b
}
