package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket, lock-free histogram: observations index
// into per-bucket atomic counters, so the serving hot path records a
// latency with two atomic adds and a CAS loop for the running sum. It
// snapshots into the Prometheus exposition format served by /metrics.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the observation sum
	count   atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// LatencyBuckets are the default request-duration bounds (seconds),
// log-spaced from 5µs — fine enough to resolve the ~15µs plan-path hot
// path — up to 2.5s.
func LatencyBuckets() []float64 {
	return []float64{5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5}
}

// StageBuckets are the default bounds for per-stage latency histograms
// (seconds). Stages are slices of a request, so the range starts below
// LatencyBuckets — a 15µs request decomposes into single-digit-µs
// stages — and tops out at 1s.
func StageBuckets() []float64 {
	return []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
// Counts are per bucket (not cumulative); the last entry is the +Inf
// bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the counters. Concurrent observations may land between
// bucket reads; each line item remains internally consistent, which is
// all Prometheus scrapes need.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ----------------------------------------------------------------------------
// Prometheus text exposition (format version 0.0.4); hand-rolled so the
// daemon needs no client library.

// PromWriter accumulates metric families, emitting # HELP / # TYPE
// headers once per family.
type PromWriter struct {
	w      io.Writer
	opened map[string]bool
}

// NewPromWriter wraps w for one exposition pass.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, opened: make(map[string]bool)}
}

func (p *PromWriter) header(name, help, typ string) {
	if p.opened[name] {
		return
	}
	p.opened[name] = true
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Value emits one sample; labels come as alternating key, value pairs.
func (p *PromWriter) Value(name, help, typ string, v float64, labels ...string) {
	p.header(name, help, typ)
	fmt.Fprintf(p.w, "%s%s %s\n", name, promLabels(labels), promFloat(v))
}

// Histogram emits the cumulative _bucket series plus _sum and _count.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot, labels ...string) {
	p.header(name, help, "histogram")
	cum := uint64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(p.w, "%s_bucket%s %d\n", name,
			promLabels(append(append([]string{}, labels...), "le", promFloat(b))), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(p.w, "%s_bucket%s %d\n", name,
		promLabels(append(append([]string{}, labels...), "le", "+Inf")), cum)
	fmt.Fprintf(p.w, "%s_sum%s %s\n", name, promLabels(labels), promFloat(s.Sum))
	fmt.Fprintf(p.w, "%s_count%s %d\n", name, promLabels(labels), s.Count)
}

// promLabels renders {k="v",...} from alternating pairs ("" when empty).
func promLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(promEscape(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// promFloat formats a float the way Prometheus parsers expect.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
