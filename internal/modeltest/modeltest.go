// Package modeltest builds small fitted instances of every servable
// estimator kind for tests: the codec round-trip suite, the serve-layer
// interface-conformance suite, and the multi-estimator e2e tests all
// need "one tiny model of each kind" and should agree on what that is.
// Everything is deterministic: fixed seeds, synthetic data.
package modeltest

import (
	"math/rand"

	"selnet/internal/deepreg"
	"selnet/internal/distance"
	"selnet/internal/dln"
	"selnet/internal/gbm"
	"selnet/internal/kde"
	"selnet/internal/lshsampling"
	"selnet/internal/modelcodec"
	"selnet/internal/selnet"
	"selnet/internal/umnn"
	"selnet/internal/vecdata"
)

// Workload returns a small deterministic database and labelled queries
// for fitting throwaway models.
func Workload(dist distance.Func, n, dim, queries int) (*vecdata.Database, []vecdata.Query) {
	rng := rand.New(rand.NewSource(7))
	var db *vecdata.Database
	if dist == distance.Cosine {
		db = vecdata.SyntheticFasttext(rng, n, dim, distance.Cosine)
	} else {
		db = vecdata.SyntheticFasttext(rng, n, dim, distance.Euclidean)
	}
	wl := vecdata.GeometricWorkload(rng, db, queries, 4)
	return db, wl.Queries
}

// tinyTrain shrinks the deep baselines' training to a few epochs; tests
// need shape correctness and determinism, not accuracy.
func tinyTrain() deepreg.TrainConfig {
	tc := deepreg.DefaultTrainConfig()
	tc.Epochs = 2
	tc.EvalEvery = 0
	return tc
}

// TinySelNet builds a small untrained SelNet (inference correctness does
// not depend on training quality).
func TinySelNet(seed int64, dim int) *selnet.Net {
	cfg := selnet.Config{
		L: 4, EmbedDim: 4,
		AEHidden: []int{8}, AELatent: 4,
		TauHidden: []int{8}, MHidden: []int{8},
		TMax: 1, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
	return selnet.NewNet(rand.New(rand.NewSource(seed)), dim, cfg)
}

// FitKDE fits a small KDE on the given database — for tests that need a
// sampling-class estimator at an arbitrary dimensionality.
func FitKDE(db *vecdata.Database, queries []vecdata.Query) *kde.Estimator {
	cfg := kde.DefaultConfig()
	cfg.SampleSize = 50
	return kde.FitTuned(rand.New(rand.NewSource(5)), db, cfg, queries)
}

// Builders returns one constructor of a small fitted estimator per
// codec kind, keyed by the modelcodec.Kind slug. Each call fits fresh
// models; callers that only need one kind invoke just that builder.
func Builders() map[string]func() modelcodec.Estimator {
	return map[string]func() modelcodec.Estimator{
		"selnet": func() modelcodec.Estimator {
			return TinySelNet(11, 3)
		},
		"selnet-part": func() modelcodec.Estimator {
			db, _ := Workload(distance.Euclidean, 240, 3, 0)
			pcfg := selnet.DefaultPartitionedConfig()
			pcfg.K = 2
			pcfg.Model.L = 4
			pcfg.Model.EmbedDim = 4
			pcfg.Model.AEHidden = []int{8}
			pcfg.Model.AELatent = 4
			pcfg.Model.TauHidden = []int{8}
			pcfg.Model.MHidden = []int{8}
			pcfg.Model.TMax = 1
			// Untrained locals serve fine for shape/round-trip tests.
			return selnet.NewPartitioned(rand.New(rand.NewSource(3)), db, pcfg)
		},
		"kde": func() modelcodec.Estimator {
			db, queries := Workload(distance.Euclidean, 200, 3, 40)
			cfg := kde.DefaultConfig()
			cfg.SampleSize = 50
			return kde.FitTuned(rand.New(rand.NewSource(5)), db, cfg, queries)
		},
		"lsh": func() modelcodec.Estimator {
			db, _ := Workload(distance.Cosine, 200, 3, 0)
			cfg := lshsampling.DefaultConfig()
			cfg.SampleBudget = 100
			est, err := lshsampling.Build(rand.New(rand.NewSource(5)), db, cfg)
			if err != nil {
				panic(err)
			}
			return est
		},
		"gbm": func() modelcodec.Estimator {
			_, queries := Workload(distance.Euclidean, 200, 3, 80)
			cfg := gbm.DefaultConfig()
			cfg.NumTrees = 8
			return gbm.FitSelectivity(cfg, queries, true)
		},
		"dnn": func() modelcodec.Estimator {
			_, queries := Workload(distance.Euclidean, 200, 3, 60)
			m := deepreg.NewDNN(rand.New(rand.NewSource(5)), 3, []int{8}, 4)
			m.Fit(tinyTrain(), queries, nil)
			return m
		},
		"moe": func() modelcodec.Estimator {
			_, queries := Workload(distance.Euclidean, 200, 3, 60)
			m := deepreg.NewMoE(rand.New(rand.NewSource(5)), 3, []int{8}, 4, 3, 2)
			m.Fit(tinyTrain(), queries, nil)
			return m
		},
		"rmi": func() modelcodec.Estimator {
			_, queries := Workload(distance.Euclidean, 200, 3, 60)
			m := deepreg.NewRMI(rand.New(rand.NewSource(5)), 3, []int{8}, 4, []int{1, 2})
			m.Fit(tinyTrain(), queries, nil)
			return m
		},
		"dln": func() modelcodec.Estimator {
			_, queries := Workload(distance.Euclidean, 200, 3, 60)
			cfg := dln.DefaultConfig()
			cfg.Epochs = 2
			cfg.NumLattices = 2
			cfg.LatticeDim = 2
			cfg.EmbedDim = 4
			m := dln.New(rand.New(rand.NewSource(5)), 3, cfg)
			m.Fit(queries)
			return m
		},
		"umnn": func() modelcodec.Estimator {
			_, queries := Workload(distance.Euclidean, 200, 3, 60)
			cfg := umnn.DefaultConfig()
			cfg.Epochs = 2
			cfg.QuadPoints = 4
			cfg.Hidden = []int{8}
			m := umnn.New(rand.New(rand.NewSource(5)), 3, cfg)
			m.Fit(queries)
			return m
		},
	}
}
