package modelcodec_test

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"selnet/internal/modelcodec"
	"selnet/internal/modeltest"
	"selnet/internal/selnet"
	"selnet/internal/tensor"
)

// queryProbe evaluates a fixed probe workload so two estimators can be
// compared for behavioral equality.
func queryProbe(est modelcodec.Estimator) []float64 {
	rng := rand.New(rand.NewSource(42))
	dim := est.Dim()
	out := make([]float64, 0, 16)
	for i := 0; i < 8; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		t := est.TMax() * rng.Float64()
		out = append(out, est.Estimate(x, t))
	}
	return out
}

// TestRoundTripAllKinds saves and reloads one model of every kind and
// verifies kind tagging, metadata, and identical estimates.
func TestRoundTripAllKinds(t *testing.T) {
	builders := modeltest.Builders()
	kinds := make([]string, 0, len(builders))
	for k := range builders {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			est := builders[kind]()
			if got := modelcodec.Kind(est); got != kind {
				t.Fatalf("Kind = %q, want %q", got, kind)
			}
			var buf bytes.Buffer
			if err := modelcodec.Save(&buf, est); err != nil {
				t.Fatalf("save: %v", err)
			}
			got, err := modelcodec.Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if modelcodec.Kind(got) != kind {
				t.Fatalf("reloaded kind = %q, want %q", modelcodec.Kind(got), kind)
			}
			if got.Dim() != est.Dim() {
				t.Errorf("Dim = %d, want %d", got.Dim(), est.Dim())
			}
			if got.TMax() != est.TMax() {
				t.Errorf("TMax = %v, want %v", got.TMax(), est.TMax())
			}
			if got.Name() != est.Name() {
				t.Errorf("Name = %q, want %q", got.Name(), est.Name())
			}
			want := queryProbe(est)
			have := queryProbe(got)
			for i := range want {
				if math.Abs(want[i]-have[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Errorf("probe %d: reloaded estimate %v, want %v", i, have[i], want[i])
				}
			}
			// Batch path agrees after reload too.
			x := tensor.FromRows([][]float64{make([]float64, est.Dim())})
			if b := got.EstimateBatch(x, []float64{est.TMax() / 2}); len(b) != 1 {
				t.Errorf("EstimateBatch returned %d values, want 1", len(b))
			}
		})
	}
}

// TestFileRoundTrip exercises the path-based API.
func TestFileRoundTrip(t *testing.T) {
	est := builders(t, "kde")
	path := filepath.Join(t.TempDir(), "model.kde")
	if err := modelcodec.SaveFile(path, est); err != nil {
		t.Fatalf("save file: %v", err)
	}
	got, err := modelcodec.LoadFile(path)
	if err != nil {
		t.Fatalf("load file: %v", err)
	}
	if modelcodec.Kind(got) != "kde" {
		t.Fatalf("kind = %q", modelcodec.Kind(got))
	}
}

func builders(t *testing.T, kind string) modelcodec.Estimator {
	t.Helper()
	b, ok := modeltest.Builders()[kind]
	if !ok {
		t.Fatalf("no builder for kind %q", kind)
	}
	return b()
}

// TestSelnetInterop verifies the container stays byte-compatible with
// the pre-codec selnet.SaveModel format in both directions.
func TestSelnetInterop(t *testing.T) {
	net := modeltest.TinySelNet(11, 3)

	// Old writer -> new reader.
	var legacy bytes.Buffer
	if err := selnet.SaveModel(&legacy, net); err != nil {
		t.Fatalf("selnet.SaveModel: %v", err)
	}
	got, err := modelcodec.Load(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatalf("modelcodec.Load(selnet container): %v", err)
	}
	if modelcodec.Kind(got) != "selnet" {
		t.Fatalf("kind = %q", modelcodec.Kind(got))
	}

	// New writer -> old reader.
	var fresh bytes.Buffer
	if err := modelcodec.Save(&fresh, net); err != nil {
		t.Fatalf("modelcodec.Save: %v", err)
	}
	if !bytes.Equal(legacy.Bytes(), fresh.Bytes()) {
		t.Fatalf("selnet container bytes diverged between writers")
	}
	if _, err := selnet.LoadModel(bytes.NewReader(fresh.Bytes())); err != nil {
		t.Fatalf("selnet.LoadModel(modelcodec container): %v", err)
	}
}

// TestLegacySniffing verifies an untagged 'selest train'-style Net file
// still loads through LoadFile.
func TestLegacySniffing(t *testing.T) {
	net := modeltest.TinySelNet(11, 3)
	path := filepath.Join(t.TempDir(), "legacy.selnet")
	if err := net.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := modelcodec.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile(legacy): %v", err)
	}
	if modelcodec.Kind(got) != "selnet" {
		t.Fatalf("kind = %q", modelcodec.Kind(got))
	}
}

// TestLoadCorrupt verifies corrupt containers fail cleanly, without
// panicking.
func TestLoadCorrupt(t *testing.T) {
	if _, err := modelcodec.Load(bytes.NewReader([]byte("SELMODL1garbage"))); err == nil {
		t.Fatal("corrupt container loaded without error")
	}
	if _, err := modelcodec.Load(bytes.NewReader([]byte("NOTMAGIC"))); err == nil {
		t.Fatal("bad magic loaded without error")
	}
}
