// Package modelcodec is the registry-level model container: one
// kind-tagged serialization format that round-trips every servable
// estimator kind — SelNet (single and partitioned) plus the six baseline
// estimators (KDE, LSH sampling, LightGBM, DNN, MoE, RMI, DLN, UMNN).
//
// The container layout is byte-compatible with selnet.SaveModel (an
// 8-byte magic, a gob-encoded kind string, then the model's own Save
// stream), so model files and snapshots written before this package
// existed load unchanged, and selnet-kind files written here load with
// the old selnet.LoadModel. Legacy untagged files ('selest train'
// output, bare Save streams) are sniffed through selnet's decoders.
//
// The package sits below internal/serve: serve, ingest and the daemons
// import it, and its Estimator interface is structurally identical to
// serve.Estimator, so values pass between the two without adapters.
package modelcodec

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"selnet/internal/dln"
	"selnet/internal/gbm"
	"selnet/internal/kde"
	"selnet/internal/lshsampling"
	"selnet/internal/selnet"
	"selnet/internal/tensor"
	"selnet/internal/umnn"

	"selnet/internal/deepreg"
)

// Estimator is the inference surface every servable model kind shares.
// It is structurally identical to serve.Estimator.
type Estimator interface {
	Estimate(x []float64, t float64) float64
	EstimateBatch(x *tensor.Dense, ts []float64) []float64
	Dim() int
	TMax() float64
	Name() string
}

// magic prefixes the kind-tagged container; identical to the selnet
// container so pre-existing files remain loadable in both directions.
const magic = "SELMODL1"

// Wire kind strings. The selnet kinds must never change: they are the
// strings selnet.SaveModel has written since PR 3.
const (
	kindNet  = "selnet.Net"
	kindPart = "selnet.Partitioned"
	kindKDE  = "kde.Estimator"
	kindLSH  = "lshsampling.Estimator"
	kindGBM  = "gbm.SelectivityEstimator"
	kindDNN  = "deepreg.DNN"
	kindMoE  = "deepreg.MoE"
	kindRMI  = "deepreg.RMI"
	kindDLN  = "dln.Model"
	kindUMNN = "umnn.Model"
)

// Kind returns the short estimator-kind slug used in /v1/models and the
// router configuration ("selnet", "selnet-part", "kde", "lsh", "gbm",
// "dnn", "moe", "rmi", "dln", "umnn"), or "unknown" for types the codec
// does not handle.
func Kind(est any) string {
	switch est.(type) {
	case *selnet.Net:
		return "selnet"
	case *selnet.Partitioned:
		return "selnet-part"
	case *kde.Estimator:
		return "kde"
	case *lshsampling.Estimator:
		return "lsh"
	case *gbm.SelectivityEstimator:
		return "gbm"
	case *deepreg.DNN:
		return "dnn"
	case *deepreg.MoE:
		return "moe"
	case *deepreg.RMI:
		return "rmi"
	case *dln.Model:
		return "dln"
	case *umnn.Model:
		return "umnn"
	}
	return "unknown"
}

// Save writes est to w in the kind-tagged container format.
func Save(w io.Writer, est Estimator) error {
	var kind string
	var save func(io.Writer) error
	switch v := est.(type) {
	case *selnet.Net:
		kind, save = kindNet, v.Save
	case *selnet.Partitioned:
		kind, save = kindPart, v.Save
	case *kde.Estimator:
		kind, save = kindKDE, v.Save
	case *lshsampling.Estimator:
		kind, save = kindLSH, v.Save
	case *gbm.SelectivityEstimator:
		kind, save = kindGBM, v.Save
	case *deepreg.DNN:
		kind, save = kindDNN, v.Save
	case *deepreg.MoE:
		kind, save = kindMoE, v.Save
	case *deepreg.RMI:
		kind, save = kindRMI, v.Save
	case *dln.Model:
		kind, save = kindDLN, v.Save
	case *umnn.Model:
		kind, save = kindUMNN, v.Save
	default:
		return fmt.Errorf("modelcodec: cannot save model of type %T", est)
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return fmt.Errorf("modelcodec: write magic: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(kind); err != nil {
		return fmt.Errorf("modelcodec: encode kind: %w", err)
	}
	return save(w)
}

// Load reads one container written by Save (or by selnet.SaveModel).
// The reader may sit mid-stream, e.g. inside a snapshot file; exactly
// one container is consumed.
func Load(r io.Reader) (Estimator, error) {
	// Consecutive gob messages share one stream; without a ByteReader
	// each decoder would buffer past its own message (see selnet.LoadNet).
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("modelcodec: read magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("modelcodec: bad magic %q", got)
	}
	var kind string
	if err := gob.NewDecoder(r).Decode(&kind); err != nil {
		return nil, fmt.Errorf("modelcodec: decode kind: %w", err)
	}
	switch kind {
	case kindNet:
		return recovering(func() (Estimator, error) { return selnet.LoadNet(r) })
	case kindPart:
		return recovering(func() (Estimator, error) { return selnet.LoadPartitioned(r) })
	case kindKDE:
		return recovering(func() (Estimator, error) { return kde.Load(r) })
	case kindLSH:
		return recovering(func() (Estimator, error) { return lshsampling.Load(r) })
	case kindGBM:
		return recovering(func() (Estimator, error) { return gbm.Load(r) })
	case kindDNN:
		return recovering(func() (Estimator, error) { return deepreg.LoadDNN(r) })
	case kindMoE:
		return recovering(func() (Estimator, error) { return deepreg.LoadMoE(r) })
	case kindRMI:
		return recovering(func() (Estimator, error) { return deepreg.LoadRMI(r) })
	case kindDLN:
		return recovering(func() (Estimator, error) { return dln.Load(r) })
	case kindUMNN:
		return recovering(func() (Estimator, error) { return umnn.Load(r) })
	}
	return nil, fmt.Errorf("modelcodec: unknown model kind %q", kind)
}

// SaveFile writes est to path in the kind-tagged container format.
func SaveFile(path string, est Estimator) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, est); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model of any supported kind from path. Tagged
// containers dispatch on their kind; legacy untagged files — 'selest
// train' output or a bare (*Partitioned).Save stream — are sniffed by
// attempting each selnet decoder in turn, preserving the pre-codec
// loading behavior for operator-supplied paths.
func LoadFile(path string) (Estimator, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(b, []byte(magic)) {
		return recovering(func() (Estimator, error) { return Load(bytes.NewReader(b)) })
	}
	n, netErr := recovering(func() (Estimator, error) { return selnet.LoadNet(bytes.NewReader(b)) })
	if netErr == nil {
		return n, nil
	}
	p, partErr := recovering(func() (Estimator, error) { return selnet.LoadPartitioned(bytes.NewReader(b)) })
	if partErr == nil {
		return p, nil
	}
	return nil, fmt.Errorf("modelcodec: %s decodes as neither a single model (%w) nor a partitioned one (%w)",
		path, netErr, partErr)
}

// recovering converts a decoder panic into an error: a half-matching
// gob stream can decode into a nonsensical architecture the model
// constructors reject by panicking, and a daemon loading an
// operator-supplied path must survive that.
func recovering(fn func() (Estimator, error)) (est Estimator, err error) {
	defer func() {
		if r := recover(); r != nil {
			est, err = nil, fmt.Errorf("modelcodec: model decode: %v", r)
		}
	}()
	return fn()
}
