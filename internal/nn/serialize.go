package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"selnet/internal/tensor"
)

// paramBlob is the gob wire form of one parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// SaveParams writes the values of params to w in gob format. Only values
// are persisted; optimizer state and gradients are not.
func SaveParams(w io.Writer, params []*Param) error {
	blobs := make([]paramBlob, len(params))
	for i, p := range params {
		blobs[i] = paramBlob{
			Name: p.Name,
			Rows: p.Value.Rows(),
			Cols: p.Value.Cols(),
			Data: append([]float64(nil), p.Value.Data()...),
		}
	}
	return gob.NewEncoder(w).Encode(blobs)
}

// LoadParams reads parameter values from r into params. The stream must
// contain the same number of parameters with matching shapes, in order.
func LoadParams(r io.Reader, params []*Param) error {
	var blobs []paramBlob
	if err := gob.NewDecoder(r).Decode(&blobs); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	if len(blobs) != len(params) {
		return fmt.Errorf("nn: parameter count mismatch: stream has %d, model has %d", len(blobs), len(params))
	}
	for i, b := range blobs {
		p := params[i]
		if b.Rows != p.Value.Rows() || b.Cols != p.Value.Cols() {
			return fmt.Errorf("nn: parameter %d (%s) shape mismatch: stream %dx%d, model %dx%d",
				i, b.Name, b.Rows, b.Cols, p.Value.Rows(), p.Value.Cols())
		}
		p.Value.CopyFrom(tensor.FromSlice(b.Rows, b.Cols, b.Data))
	}
	return nil
}
