package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"selnet/internal/autodiff"
	"selnet/internal/tensor"
)

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, "l", 4, 3, ActReLU)
	if l.InDim() != 4 || l.OutDim() != 3 {
		t.Fatalf("dims %d->%d", l.InDim(), l.OutDim())
	}
	tp := autodiff.NewTape()
	x := tp.Input(tensor.New(5, 4))
	out := l.Apply(tp, x)
	if out.Rows() != 5 || out.Cols() != 3 {
		t.Fatalf("output %dx%d", out.Rows(), out.Cols())
	}
}

func TestFFNShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := NewFFN(rng, "f", []int{6, 8, 8, 2}, ActReLU, ActNone)
	if len(f.Layers) != 3 {
		t.Fatalf("layers = %d", len(f.Layers))
	}
	if f.InDim() != 6 || f.OutDim() != 2 {
		t.Fatalf("dims %d->%d", f.InDim(), f.OutDim())
	}
	if got := len(f.Params()); got != 6 {
		t.Fatalf("params = %d, want 6", got)
	}
	tp := autodiff.NewTape()
	out := f.Apply(tp, tp.Input(tensor.New(3, 6)))
	if out.Rows() != 3 || out.Cols() != 2 {
		t.Fatalf("output %dx%d", out.Rows(), out.Cols())
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.New(50, 50)
	XavierInit(rng, m, 50, 50)
	bound := math.Sqrt(6.0 / 100)
	for _, v := range m.Data() {
		if math.Abs(v) > bound {
			t.Fatalf("xavier value %v exceeds bound %v", v, bound)
		}
	}
	if tensor.MaxAbs(m) < bound/4 {
		t.Fatalf("xavier values suspiciously small")
	}
}

func TestHeInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := tensor.New(100, 100)
	HeInit(rng, m, 100)
	var sumsq float64
	for _, v := range m.Data() {
		sumsq += v * v
	}
	std := math.Sqrt(sumsq / float64(m.Size()))
	want := math.Sqrt(2.0 / 100)
	if std < want*0.8 || std > want*1.2 {
		t.Fatalf("He std = %v, want about %v", std, want)
	}
}

// A tiny FFN trained with Adam must fit y = 2x + 1 on scalars.
func TestAdamFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := NewFFN(rng, "f", []int{1, 8, 1}, ActTanh, ActNone)
	opt := NewAdam(0.01)
	x := tensor.New(32, 1)
	y := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		v := rng.Float64()*2 - 1
		x.Set(i, 0, v)
		y.Set(i, 0, 2*v+1)
	}
	var loss float64
	for epoch := 0; epoch < 800; epoch++ {
		tp := autodiff.NewTape()
		out := f.Apply(tp, tp.Input(x))
		l := tp.MSELoss(out, tp.Input(y))
		tp.Backward(l)
		opt.Step(f.Params())
		loss = l.Scalar()
	}
	if loss > 2e-3 {
		t.Fatalf("Adam failed to fit linear function, final loss %v", loss)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := NewFFN(rng, "f", []int{2, 4, 1}, ActTanh, ActNone)
	opt := &SGD{LR: 0.05, ClipNorm: 5}
	x := tensor.FromRows([][]float64{{0.5, -0.2}, {-0.7, 0.9}, {0.1, 0.1}})
	y := tensor.FromRows([][]float64{{1}, {-1}, {0}})
	first := -1.0
	var last float64
	for i := 0; i < 200; i++ {
		tp := autodiff.NewTape()
		out := f.Apply(tp, tp.Input(x))
		l := tp.MSELoss(out, tp.Input(y))
		tp.Backward(l)
		opt.Step(f.Params())
		if first < 0 {
			first = l.Scalar()
		}
		last = l.Scalar()
	}
	if last >= first {
		t.Fatalf("SGD did not reduce loss: %v -> %v", first, last)
	}
}

func TestGradientClipping(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.Grad.Set(0, 0, 30)
	p.Grad.Set(0, 1, 40) // norm 50
	clipGlobalNorm([]*Param{p}, 5)
	if got := tensor.Norm2(p.Grad); math.Abs(got-5) > 1e-9 {
		t.Fatalf("clipped norm = %v, want 5", got)
	}
	// Norm below the cap must be untouched.
	p.Grad.Set(0, 0, 1)
	p.Grad.Set(0, 1, 0)
	clipGlobalNorm([]*Param{p}, 5)
	if p.Grad.At(0, 0) != 1 {
		t.Fatalf("small gradient was modified")
	}
}

func TestAdamBiasCorrection(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude close
	// to the learning rate regardless of the gradient scale.
	for _, g := range []float64{1e-4, 1.0, 1e4} {
		p := NewParam("p", 1, 1)
		p.Grad.Set(0, 0, g)
		opt := NewAdam(0.1)
		opt.ClipNorm = 0 // isolate the Adam update itself
		opt.Step([]*Param{p})
		step := math.Abs(p.Value.At(0, 0))
		if step < 0.09 || step > 0.11 {
			t.Fatalf("first step for grad %v = %v, want about 0.1", g, step)
		}
	}
}

func TestAdamStepZeroesGrads(t *testing.T) {
	p := NewParam("p", 1, 1)
	p.Grad.Set(0, 0, 1)
	NewAdam(0.1).Step([]*Param{p})
	if p.Grad.At(0, 0) != 0 {
		t.Fatalf("Adam.Step must zero gradients")
	}
	if p.Value.At(0, 0) == 0 {
		t.Fatalf("Adam.Step must update values")
	}
}

func TestAutoencoderReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Data on a 2-D subspace of R^6: the AE should compress it well.
	n, d := 64, 6
	data := tensor.New(n, d)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		for j := 0; j < d; j++ {
			data.Set(i, j, a*float64(j+1)/6+b*math.Sin(float64(j)))
		}
	}
	ae := NewAutoencoder(rng, d, []int{16, 8}, 2)
	if ae.LatentDim() != 2 {
		t.Fatalf("latent dim %d", ae.LatentDim())
	}
	final := ae.Pretrain(rng, data, 150, 16, 0.005)
	if final > 0.05 {
		t.Fatalf("AE reconstruction loss too high: %v", final)
	}
	// Latent must have the right shape.
	tp := autodiff.NewTape()
	z := ae.Encode(tp, tp.Input(data))
	if z.Rows() != n || z.Cols() != 2 {
		t.Fatalf("latent %dx%d", z.Rows(), z.Cols())
	}
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := NewFFN(rng, "f", []int{3, 5, 2}, ActReLU, ActNone)
	var buf bytes.Buffer
	if err := SaveParams(&buf, f.Params()); err != nil {
		t.Fatal(err)
	}
	g := NewFFN(rand.New(rand.NewSource(99)), "g", []int{3, 5, 2}, ActReLU, ActNone)
	if err := LoadParams(&buf, g.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range f.Params() {
		if !tensor.EqualApprox(p.Value, g.Params()[i].Value, 0) {
			t.Fatalf("param %d not restored", i)
		}
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := NewFFN(rng, "f", []int{3, 5, 2}, ActReLU, ActNone)
	var buf bytes.Buffer
	if err := SaveParams(&buf, f.Params()); err != nil {
		t.Fatal(err)
	}
	g := NewFFN(rng, "g", []int{3, 7, 2}, ActReLU, ActNone)
	if err := LoadParams(&buf, g.Params()); err == nil {
		t.Fatalf("expected shape mismatch error")
	}
}

func TestLoadParamsCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := NewFFN(rng, "f", []int{3, 5, 2}, ActReLU, ActNone)
	var buf bytes.Buffer
	if err := SaveParams(&buf, f.Params()); err != nil {
		t.Fatal(err)
	}
	g := NewFFN(rng, "g", []int{3, 5, 5, 2}, ActReLU, ActNone)
	if err := LoadParams(&buf, g.Params()); err == nil {
		t.Fatalf("expected count mismatch error")
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := NewFFN(rng, "f", []int{2, 3, 1}, ActReLU, ActNone)
	for _, p := range f.Params() {
		p.Grad.Fill(3)
	}
	ZeroGrads(f)
	for _, p := range f.Params() {
		if tensor.MaxAbs(p.Grad) != 0 {
			t.Fatalf("gradient not zeroed")
		}
	}
}

func TestActivationsApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// ReLU output must be non-negative.
	l := NewLinear(rng, "l", 3, 4, ActReLU)
	tp := autodiff.NewTape()
	x := tensor.New(8, 3)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64() * 3
	}
	out := l.Apply(tp, tp.Input(x))
	for _, v := range out.Value.Data() {
		if v < 0 {
			t.Fatalf("ReLU output negative: %v", v)
		}
	}
	// Sigmoid output in (0, 1).
	l2 := NewLinear(rng, "l2", 3, 4, ActSigmoid)
	out2 := l2.Apply(tp, tp.Input(x))
	for _, v := range out2.Value.Data() {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output out of range: %v", v)
		}
	}
}
