// Package nn provides the neural-network building blocks shared by SelNet
// and the deep baselines: parameterized linear layers, feed-forward stacks,
// weight initialization, the Adam and SGD optimizers, and an autoencoder
// module. It builds on the tape-based autodiff engine; a module's Apply
// method wires its parameters into the caller's tape for one forward pass.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"selnet/internal/autodiff"
	"selnet/internal/tensor"
)

// Param is one trainable tensor with persistent gradient storage and Adam
// moment estimates.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense

	m, v *tensor.Dense // Adam first/second moments, allocated lazily
}

// NewParam allocates a zeroed parameter of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(rows, cols),
		Grad:  tensor.New(rows, cols),
	}
}

// Node wires the parameter into the tape for one forward pass.
func (p *Param) Node(tp *autodiff.Tape) *autodiff.Node {
	return tp.Leaf(p.Value, p.Grad)
}

// ZeroGrad clears accumulated gradients.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Module is anything that exposes trainable parameters.
type Module interface {
	Params() []*Param
}

// ZeroGrads clears gradients on every parameter of the module.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// ----------------------------------------------------------------------------
// Initialization

// XavierInit fills value with Uniform(-a, a), a = sqrt(6/(fanIn+fanOut)).
func XavierInit(rng *rand.Rand, value *tensor.Dense, fanIn, fanOut int) {
	a := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range value.Data() {
		value.Data()[i] = (rng.Float64()*2 - 1) * a
	}
}

// HeInit fills value with N(0, sqrt(2/fanIn)), suited to ReLU stacks.
func HeInit(rng *rand.Rand, value *tensor.Dense, fanIn int) {
	s := math.Sqrt(2 / float64(fanIn))
	for i := range value.Data() {
		value.Data()[i] = rng.NormFloat64() * s
	}
}

// ----------------------------------------------------------------------------
// Layers

// Activation selects the nonlinearity applied after a linear layer.
type Activation int

// Supported activations.
const (
	ActNone Activation = iota
	ActReLU
	ActTanh
	ActSigmoid
	ActSoftplus
	ActELU
)

func applyAct(tp *autodiff.Tape, n *autodiff.Node, a Activation) *autodiff.Node {
	switch a {
	case ActNone:
		return n
	case ActReLU:
		return tp.ReLU(n)
	case ActTanh:
		return tp.Tanh(n)
	case ActSigmoid:
		return tp.Sigmoid(n)
	case ActSoftplus:
		return tp.Softplus(n)
	case ActELU:
		return tp.ELU(n, 1.0)
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// Linear is a fully connected layer out = act(x*W + b).
type Linear struct {
	W, B *Param
	Act  Activation
}

// NewLinear returns a Xavier-initialized layer mapping in -> out features.
func NewLinear(rng *rand.Rand, name string, in, out int, act Activation) *Linear {
	l := &Linear{
		W:   NewParam(name+".W", in, out),
		B:   NewParam(name+".b", 1, out),
		Act: act,
	}
	if act == ActReLU || act == ActELU {
		HeInit(rng, l.W.Value, in)
	} else {
		XavierInit(rng, l.W.Value, in, out)
	}
	return l
}

// Apply runs the layer on x within the tape.
func (l *Linear) Apply(tp *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	out := tp.AddRow(tp.MatMul(x, l.W.Node(tp)), l.B.Node(tp))
	return applyAct(tp, out, l.Act)
}

// Params returns the layer's trainable tensors.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// InDim returns the input feature count.
func (l *Linear) InDim() int { return l.W.Value.Rows() }

// OutDim returns the output feature count.
func (l *Linear) OutDim() int { return l.W.Value.Cols() }

// FFN is a stack of Linear layers. Hidden layers share one activation; the
// output layer has its own (often ActNone).
type FFN struct {
	Layers []*Linear
}

// NewFFN builds a feed-forward network with the given layer sizes.
// sizes[0] is the input dimension, sizes[len-1] the output dimension.
func NewFFN(rng *rand.Rand, name string, sizes []int, hidden, out Activation) *FFN {
	if len(sizes) < 2 {
		panic("nn: FFN needs at least input and output sizes")
	}
	f := &FFN{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hidden
		if i+2 == len(sizes) {
			act = out
		}
		f.Layers = append(f.Layers, NewLinear(rng, fmt.Sprintf("%s.l%d", name, i), sizes[i], sizes[i+1], act))
	}
	return f
}

// Apply runs the stack on x.
func (f *FFN) Apply(tp *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	for _, l := range f.Layers {
		x = l.Apply(tp, x)
	}
	return x
}

// Params returns all trainable tensors in layer order.
func (f *FFN) Params() []*Param {
	var ps []*Param
	for _, l := range f.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// InDim returns the input feature count.
func (f *FFN) InDim() int { return f.Layers[0].InDim() }

// OutDim returns the output feature count.
func (f *FFN) OutDim() int { return f.Layers[len(f.Layers)-1].OutDim() }

// ----------------------------------------------------------------------------
// Optimizers

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// Adam implements the Adam optimizer with optional global-norm gradient
// clipping (ClipNorm <= 0 disables clipping).
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64

	t int
}

// NewAdam returns Adam with the standard hyper-parameters and the given
// learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5}
}

// Step applies one Adam update to every parameter and zeroes gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	if a.ClipNorm > 0 {
		clipGlobalNorm(params, a.ClipNorm)
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.m == nil {
			p.m = tensor.New(p.Value.Rows(), p.Value.Cols())
			p.v = tensor.New(p.Value.Rows(), p.Value.Cols())
		}
		val, g := p.Value.Data(), p.Grad.Data()
		m, v := p.m.Data(), p.v.Data()
		for i, gi := range g {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mh := m[i] / bc1
			vh := v[i] / bc2
			val[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.Grad.Zero()
	}
}

// SGD is plain stochastic gradient descent, used in tests and ablations.
type SGD struct {
	LR       float64
	ClipNorm float64
}

// Step applies one SGD update and zeroes gradients.
func (s *SGD) Step(params []*Param) {
	if s.ClipNorm > 0 {
		clipGlobalNorm(params, s.ClipNorm)
	}
	for _, p := range params {
		tensor.AxpyInPlace(p.Value, -s.LR, p.Grad)
		p.Grad.Zero()
	}
}

func clipGlobalNorm(params []*Param, maxNorm float64) {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		tensor.ScaleInPlace(p.Grad, scale)
	}
}

// ----------------------------------------------------------------------------
// Autoencoder

// Autoencoder learns a latent representation z of its input (Sec. 5.2 of
// the paper): SelNet feeds [x; z_x] into its control-point generators, and
// the reconstruction loss J_AE joins the training objective weighted by
// lambda.
type Autoencoder struct {
	Encoder *FFN
	Decoder *FFN
}

// NewAutoencoder builds encoder in->...->latent and the mirrored decoder.
// hiddens lists the encoder hidden sizes (the paper uses three hidden
// layers for both halves).
func NewAutoencoder(rng *rand.Rand, in int, hiddens []int, latent int) *Autoencoder {
	encSizes := append(append([]int{in}, hiddens...), latent)
	decSizes := make([]int, 0, len(encSizes))
	for i := len(encSizes) - 1; i >= 0; i-- {
		decSizes = append(decSizes, encSizes[i])
	}
	return &Autoencoder{
		Encoder: NewFFN(rng, "ae.enc", encSizes, ActReLU, ActNone),
		Decoder: NewFFN(rng, "ae.dec", decSizes, ActReLU, ActNone),
	}
}

// Encode returns the latent representation node for x.
func (a *Autoencoder) Encode(tp *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	return a.Encoder.Apply(tp, x)
}

// ReconstructionLoss returns MSE(decode(encode(x)), x) and the latent node.
func (a *Autoencoder) ReconstructionLoss(tp *autodiff.Tape, x *autodiff.Node) (loss, latent *autodiff.Node) {
	latent = a.Encode(tp, x)
	recon := a.Decoder.Apply(tp, latent)
	return tp.MSELoss(recon, x), latent
}

// Params returns encoder and decoder parameters.
func (a *Autoencoder) Params() []*Param {
	return append(a.Encoder.Params(), a.Decoder.Params()...)
}

// LatentDim returns the size of the latent representation.
func (a *Autoencoder) LatentDim() int { return a.Encoder.OutDim() }

// Pretrain runs epochs of Adam on the reconstruction loss over data rows,
// in mini-batches of batch rows. It returns the final epoch's mean loss.
func (a *Autoencoder) Pretrain(rng *rand.Rand, data *tensor.Dense, epochs, batch int, lr float64) float64 {
	opt := NewAdam(lr)
	n := data.Rows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var last float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var total float64
		var batches int
		for s := 0; s < n; s += batch {
			end := s + batch
			if end > n {
				end = n
			}
			xb := tensor.GatherRows(data, idx[s:end])
			tp := autodiff.NewTape()
			loss, _ := a.ReconstructionLoss(tp, tp.Input(xb))
			tp.Backward(loss)
			opt.Step(a.Params())
			total += loss.Scalar()
			batches++
		}
		last = total / float64(batches)
	}
	return last
}
