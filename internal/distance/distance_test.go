package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestL2Basic(t *testing.T) {
	if got := L2([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Fatalf("L2 = %v, want 5", got)
	}
	if got := SquaredL2([]float64{1, 1}, []float64{1, 1}); got != 0 {
		t.Fatalf("SquaredL2 self = %v", got)
	}
}

func TestL2DimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	L2([]float64{1}, []float64{1, 2})
}

func TestCosineBasic(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := CosineDistance(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("orthogonal cosine distance = %v, want 1", got)
	}
	if got := CosineDistance(a, a); math.Abs(got) > 1e-12 {
		t.Fatalf("self cosine distance = %v, want 0", got)
	}
	c := []float64{-2, 0}
	if got := CosineDistance(a, c); math.Abs(got-2) > 1e-12 {
		t.Fatalf("opposite cosine distance = %v, want 2", got)
	}
}

func TestCosineZeroVector(t *testing.T) {
	if got := CosineDistance([]float64{0, 0}, []float64{1, 2}); got != 1 {
		t.Fatalf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestCosineScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(8)
		a := randVec(rng, d)
		b := randVec(rng, d)
		s := 0.1 + rng.Float64()*10
		sa := make([]float64, d)
		for i := range a {
			sa[i] = a[i] * s
		}
		return math.Abs(CosineDistance(a, b)-CosineDistance(sa, b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestL2TriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(10)
		a, b, c := randVec(rng, d), randVec(rng, d), randVec(rng, d)
		return L2(a, c) <= L2(a, b)+L2(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize([]float64{3, 4})
	if math.Abs(Norm(v)-1) > 1e-12 {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero vector changed: %v", z)
	}
	// Normalize must not mutate its input.
	orig := []float64{3, 4}
	Normalize(orig)
	if orig[0] != 3 {
		t.Fatalf("Normalize mutated input")
	}
}

// On unit vectors, cosine distance and l2 distance are related by
// ||u-v||² = 2·cos_dist(u,v); the threshold conversions must agree with
// the actual distances.
func TestCosineL2EquivalenceOnUnitVectors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(8)
		u := Normalize(randVec(rng, d))
		v := Normalize(randVec(rng, d))
		cd := CosineDistance(u, v)
		l2 := L2(u, v)
		return math.Abs(CosineToL2Threshold(cd)-l2) < 1e-9 &&
			math.Abs(L2ToCosineThreshold(l2)-cd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdConversionMonotone(t *testing.T) {
	prev := -1.0
	for c := 0.0; c <= 2.0; c += 0.05 {
		l := CosineToL2Threshold(c)
		if l < prev {
			t.Fatalf("conversion not monotone at %v", c)
		}
		prev = l
	}
	if CosineToL2Threshold(-0.5) != 0 {
		t.Fatalf("negative threshold should clamp to 0")
	}
}

func TestFuncDispatchAndString(t *testing.T) {
	a, b := []float64{1, 0}, []float64{0, 1}
	if Euclidean.Distance(a, b) != L2(a, b) {
		t.Fatalf("Euclidean dispatch wrong")
	}
	if Cosine.Distance(a, b) != CosineDistance(a, b) {
		t.Fatalf("Cosine dispatch wrong")
	}
	if Euclidean.String() != "l2" || Cosine.String() != "cos" {
		t.Fatalf("String() wrong: %v %v", Euclidean, Cosine)
	}
	if !Euclidean.Metric() || Cosine.Metric() {
		t.Fatalf("Metric() wrong")
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatalf("Dot wrong")
	}
	if Norm([]float64{3, 4}) != 5 {
		t.Fatalf("Norm wrong")
	}
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
