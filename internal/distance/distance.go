// Package distance defines the distance functions used throughout the
// repository: Euclidean (l2) and cosine distance, the two settings the
// paper evaluates (Sec. 7.1). Cosine distance on unit vectors is a
// monotone transform of Euclidean distance, which the paper exploits to
// run metric-only methods (KDE, cover-tree partitioning) on cosine
// workloads; Convert implements that equivalence.
package distance

import (
	"fmt"
	"math"
)

// Func identifies a distance function.
type Func int

// Supported distance functions.
const (
	// Euclidean is the l2 distance.
	Euclidean Func = iota
	// Cosine is 1 - cos(u, v), in [0, 2].
	Cosine
)

// Parse resolves a distance function from its command-line spelling;
// both CLIs (selest, selestd) accept the same names through it.
func Parse(s string) (Func, error) {
	switch s {
	case "l2", "euclidean":
		return Euclidean, nil
	case "cos", "cosine":
		return Cosine, nil
	default:
		return 0, fmt.Errorf("unknown distance %q (use l2/euclidean or cos/cosine)", s)
	}
}

// String returns the conventional short name.
func (f Func) String() string {
	switch f {
	case Euclidean:
		return "l2"
	case Cosine:
		return "cos"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// Metric reports whether the function satisfies the triangle inequality
// as-is. Cosine distance does not in general, but on unit vectors it is a
// monotone transform of the metric Euclidean distance.
func (f Func) Metric() bool { return f == Euclidean }

// Distance computes f between equal-length vectors a and b.
func (f Func) Distance(a, b []float64) float64 {
	switch f {
	case Euclidean:
		return L2(a, b)
	case Cosine:
		return CosineDistance(a, b)
	default:
		panic(fmt.Sprintf("distance: unknown function %d", int(f)))
	}
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float64) float64 {
	return math.Sqrt(SquaredL2(a, b))
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("distance: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("distance: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// CosineDistance returns 1 - cos(a, b). Zero vectors are treated as
// maximally distant (distance 1) to avoid NaN.
func CosineDistance(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	c := Dot(a, b) / (na * nb)
	// Guard against floating-point drift outside [-1, 1].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return 1 - c
}

// Normalize returns v scaled to unit norm (a copy). The zero vector is
// returned unchanged.
func Normalize(v []float64) []float64 {
	out := append([]float64(nil), v...)
	n := Norm(v)
	if n == 0 {
		return out
	}
	for i := range out {
		out[i] /= n
	}
	return out
}

// CosineToL2Threshold converts a cosine-distance threshold t to the
// equivalent Euclidean threshold on unit vectors:
//
//	||u-v||² = 2 - 2·cos(u,v) = 2·t  =>  ||u-v|| = sqrt(2t).
//
// This is the conversion from Sec. 5.3 that lets the cover tree partition
// cosine workloads.
func CosineToL2Threshold(t float64) float64 {
	if t < 0 {
		t = 0
	}
	return math.Sqrt(2 * t)
}

// L2ToCosineThreshold is the inverse of CosineToL2Threshold.
func L2ToCosineThreshold(t float64) float64 {
	return t * t / 2
}
