// Package kde implements the adaptive kernel-density-estimation baseline
// (Mattig et al., "Kernel-based cardinality estimation on metric data",
// EDBT 2018 — reference [24] of the paper). The method sidesteps the curse
// of dimensionality by modelling the *distance distribution* instead of
// the vector distribution: selectivity of (x, t) is estimated from a
// sample of database objects as
//
//	yhat(x, t) = (n/m) * sum_i Phi((t - d(x, o_i)) / h_i)
//
// where Phi is the standard normal CDF and h_i is a per-sample adaptive
// bandwidth derived from the sample's local density (distance to its k-th
// nearest neighbour within the sample). Because Phi is non-decreasing in
// t, the estimator is consistent, which is why the paper marks KDE with *.
package kde

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"selnet/internal/distance"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// Config holds KDE hyper-parameters.
type Config struct {
	// SampleSize is the number of database objects kept as kernel centers
	// (the paper uses 2000).
	SampleSize int
	// BandwidthK is the neighbour rank used for the adaptive bandwidth.
	BandwidthK int
	// MinBandwidth floors the bandwidth to avoid degenerate spikes.
	MinBandwidth float64
}

// DefaultConfig mirrors the paper's setup with a sane adaptive-bandwidth
// neighbourhood.
func DefaultConfig() Config {
	return Config{SampleSize: 2000, BandwidthK: 8, MinBandwidth: 1e-4}
}

// Estimator is a fitted KDE model. It is self-contained once fitted
// (the kernel sample is copied out of the database), so it can be
// serialized, served, and hot-swapped without holding the database.
type Estimator struct {
	dist      distance.Func
	dim       int
	n         int // database size at fit time (numerator of scale)
	samples   [][]float64
	bandwidth []float64
	scale     float64 // n/m
	tmax      float64 // largest answerable threshold (see TMax)
}

// Fit draws the kernel sample and computes adaptive bandwidths.
func Fit(rng *rand.Rand, db *vecdata.Database, cfg Config) *Estimator {
	m := cfg.SampleSize
	if m > db.Size() {
		m = db.Size()
	}
	if m < 1 {
		m = 1
	}
	idx := rng.Perm(db.Size())[:m]
	samples := make([][]float64, m)
	for i, id := range idx {
		samples[i] = append([]float64(nil), db.Vecs[id]...)
	}
	k := cfg.BandwidthK
	if k >= m {
		k = m - 1
	}
	if k < 1 {
		k = 1
	}
	bw := make([]float64, m)
	var maxDist float64
	for i := range samples {
		// Adaptive bandwidth: distance to the k-th nearest other sample,
		// i.e. wide kernels in sparse regions, narrow in dense ones.
		dists := make([]float64, 0, m-1)
		for j := range samples {
			if i == j {
				continue
			}
			d := db.Dist.Distance(samples[i], samples[j])
			if d > maxDist {
				maxDist = d
			}
			dists = append(dists, d)
		}
		bw[i] = math.Max(kthSmallest(dists, k), cfg.MinBandwidth)
	}
	if maxDist == 0 {
		maxDist = 1
	}
	return &Estimator{
		dist:      db.Dist,
		dim:       db.Dim,
		n:         db.Size(),
		samples:   samples,
		bandwidth: bw,
		scale:     float64(db.Size()) / float64(m),
		tmax:      maxDist,
	}
}

// FitTuned fits the KDE and then tunes a global bandwidth multiplier on
// labelled training queries, mirroring the self-tuning bandwidth
// optimization of the KDE selectivity estimators ([15, 24] in the paper):
// the multiplier minimizing the squared log-error over (a subset of) the
// training queries is kept.
func FitTuned(rng *rand.Rand, db *vecdata.Database, cfg Config, train []vecdata.Query) *Estimator {
	e := Fit(rng, db, cfg)
	if len(train) == 0 {
		return e
	}
	sub := train
	const maxTune = 200
	if len(sub) > maxTune {
		idx := rng.Perm(len(sub))[:maxTune]
		picked := make([]vecdata.Query, maxTune)
		for i, id := range idx {
			picked[i] = sub[id]
		}
		sub = picked
	}
	base := append([]float64(nil), e.bandwidth...)
	bestMult, bestScore := 1.0, math.Inf(1)
	for _, mult := range []float64{0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1} {
		for i := range e.bandwidth {
			e.bandwidth[i] = math.Max(base[i]*mult, cfg.MinBandwidth)
		}
		var score float64
		for _, q := range sub {
			r := math.Log(q.Y+1) - math.Log(e.Estimate(q.X, q.T)+1)
			score += r * r
		}
		if score < bestScore {
			bestScore = score
			bestMult = mult
		}
	}
	for i := range e.bandwidth {
		e.bandwidth[i] = math.Max(base[i]*bestMult, cfg.MinBandwidth)
	}
	return e
}

// Estimate returns the KDE selectivity estimate for (x, t).
func (e *Estimator) Estimate(x []float64, t float64) float64 {
	var s float64
	for i, o := range e.samples {
		d := e.dist.Distance(x, o)
		s += normalCDF((t - d) / e.bandwidth[i])
	}
	return e.scale * s
}

// EstimateBatch evaluates one query per row of x against the matching
// threshold in ts. Safe for concurrent use: the estimator is read-only
// after Fit.
func (e *Estimator) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	out := make([]float64, x.Rows())
	for i := range out {
		out[i] = e.Estimate(x.Row(i), ts[i])
	}
	return out
}

// Dim returns the vector dimensionality the estimator was fitted on.
func (e *Estimator) Dim() int { return e.dim }

// TMax returns the largest threshold the estimator was fitted to answer:
// the maximum pairwise distance observed within the kernel sample, a
// proxy for the data diameter.
func (e *Estimator) TMax() float64 { return e.tmax }

// SetTMax overrides the advertised threshold ceiling (e.g. from the max
// training-query threshold).
func (e *Estimator) SetTMax(t float64) {
	if t > 0 {
		e.tmax = t
	}
}

// DataSize returns the database size at fit time; the serving router
// uses it to decide when VC-style sampling bounds make a sampling-backed
// estimator preferable.
func (e *Estimator) DataSize() int { return e.n }

// Name returns the paper's model name.
func (e *Estimator) Name() string { return "KDE" }

// ConsistencyGuaranteed reports that KDE is monotone in t by construction.
func (e *Estimator) ConsistencyGuaranteed() bool { return true }

// blob is the gob wire form of a fitted estimator.
type blob struct {
	Dist      int
	Dim       int
	N         int
	Samples   [][]float64
	Bandwidth []float64
	Scale     float64
	TMax      float64
}

// Save serializes the fitted estimator to w.
func (e *Estimator) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(blob{
		Dist:      int(e.dist),
		Dim:       e.dim,
		N:         e.n,
		Samples:   e.samples,
		Bandwidth: e.bandwidth,
		Scale:     e.scale,
		TMax:      e.tmax,
	})
}

// Load reads an estimator previously written by Save.
func Load(r io.Reader) (*Estimator, error) {
	var b blob
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("kde: decode: %w", err)
	}
	if len(b.Samples) == 0 || len(b.Bandwidth) != len(b.Samples) {
		return nil, fmt.Errorf("kde: corrupt model: %d samples, %d bandwidths", len(b.Samples), len(b.Bandwidth))
	}
	return &Estimator{
		dist:      distance.Func(b.Dist),
		dim:       b.Dim,
		n:         b.N,
		samples:   b.Samples,
		bandwidth: b.Bandwidth,
		scale:     b.Scale,
		tmax:      b.TMax,
	}, nil
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// kthSmallest returns the k-th smallest value (1-indexed) via quickselect.
func kthSmallest(vals []float64, k int) float64 {
	if k < 1 || k > len(vals) {
		panic("kde: k out of range")
	}
	lo, hi := 0, len(vals)-1
	target := k - 1
	for lo < hi {
		p := partition(vals, lo, hi)
		switch {
		case p == target:
			return vals[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return vals[target]
}

func partition(vals []float64, lo, hi int) int {
	// Median-of-three pivot to dodge worst cases on sorted input.
	mid := (lo + hi) / 2
	if vals[mid] < vals[lo] {
		vals[mid], vals[lo] = vals[lo], vals[mid]
	}
	if vals[hi] < vals[lo] {
		vals[hi], vals[lo] = vals[lo], vals[hi]
	}
	if vals[hi] < vals[mid] {
		vals[hi], vals[mid] = vals[mid], vals[hi]
	}
	pivot := vals[mid]
	vals[mid], vals[hi] = vals[hi], vals[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if vals[i] < pivot {
			vals[i], vals[store] = vals[store], vals[i]
			store++
		}
	}
	vals[store], vals[hi] = vals[hi], vals[store]
	return store
}
