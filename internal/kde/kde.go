// Package kde implements the adaptive kernel-density-estimation baseline
// (Mattig et al., "Kernel-based cardinality estimation on metric data",
// EDBT 2018 — reference [24] of the paper). The method sidesteps the curse
// of dimensionality by modelling the *distance distribution* instead of
// the vector distribution: selectivity of (x, t) is estimated from a
// sample of database objects as
//
//	yhat(x, t) = (n/m) * sum_i Phi((t - d(x, o_i)) / h_i)
//
// where Phi is the standard normal CDF and h_i is a per-sample adaptive
// bandwidth derived from the sample's local density (distance to its k-th
// nearest neighbour within the sample). Because Phi is non-decreasing in
// t, the estimator is consistent, which is why the paper marks KDE with *.
package kde

import (
	"math"
	"math/rand"

	"selnet/internal/vecdata"
)

// Config holds KDE hyper-parameters.
type Config struct {
	// SampleSize is the number of database objects kept as kernel centers
	// (the paper uses 2000).
	SampleSize int
	// BandwidthK is the neighbour rank used for the adaptive bandwidth.
	BandwidthK int
	// MinBandwidth floors the bandwidth to avoid degenerate spikes.
	MinBandwidth float64
}

// DefaultConfig mirrors the paper's setup with a sane adaptive-bandwidth
// neighbourhood.
func DefaultConfig() Config {
	return Config{SampleSize: 2000, BandwidthK: 8, MinBandwidth: 1e-4}
}

// Estimator is a fitted KDE model.
type Estimator struct {
	db        *vecdata.Database
	samples   [][]float64
	bandwidth []float64
	scale     float64 // n/m
}

// Fit draws the kernel sample and computes adaptive bandwidths.
func Fit(rng *rand.Rand, db *vecdata.Database, cfg Config) *Estimator {
	m := cfg.SampleSize
	if m > db.Size() {
		m = db.Size()
	}
	if m < 1 {
		m = 1
	}
	idx := rng.Perm(db.Size())[:m]
	samples := make([][]float64, m)
	for i, id := range idx {
		samples[i] = db.Vecs[id]
	}
	k := cfg.BandwidthK
	if k >= m {
		k = m - 1
	}
	if k < 1 {
		k = 1
	}
	bw := make([]float64, m)
	for i := range samples {
		// Adaptive bandwidth: distance to the k-th nearest other sample,
		// i.e. wide kernels in sparse regions, narrow in dense ones.
		dists := make([]float64, 0, m-1)
		for j := range samples {
			if i == j {
				continue
			}
			dists = append(dists, db.Dist.Distance(samples[i], samples[j]))
		}
		bw[i] = math.Max(kthSmallest(dists, k), cfg.MinBandwidth)
	}
	return &Estimator{
		db:        db,
		samples:   samples,
		bandwidth: bw,
		scale:     float64(db.Size()) / float64(m),
	}
}

// FitTuned fits the KDE and then tunes a global bandwidth multiplier on
// labelled training queries, mirroring the self-tuning bandwidth
// optimization of the KDE selectivity estimators ([15, 24] in the paper):
// the multiplier minimizing the squared log-error over (a subset of) the
// training queries is kept.
func FitTuned(rng *rand.Rand, db *vecdata.Database, cfg Config, train []vecdata.Query) *Estimator {
	e := Fit(rng, db, cfg)
	if len(train) == 0 {
		return e
	}
	sub := train
	const maxTune = 200
	if len(sub) > maxTune {
		idx := rng.Perm(len(sub))[:maxTune]
		picked := make([]vecdata.Query, maxTune)
		for i, id := range idx {
			picked[i] = sub[id]
		}
		sub = picked
	}
	base := append([]float64(nil), e.bandwidth...)
	bestMult, bestScore := 1.0, math.Inf(1)
	for _, mult := range []float64{0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1} {
		for i := range e.bandwidth {
			e.bandwidth[i] = math.Max(base[i]*mult, cfg.MinBandwidth)
		}
		var score float64
		for _, q := range sub {
			r := math.Log(q.Y+1) - math.Log(e.Estimate(q.X, q.T)+1)
			score += r * r
		}
		if score < bestScore {
			bestScore = score
			bestMult = mult
		}
	}
	for i := range e.bandwidth {
		e.bandwidth[i] = math.Max(base[i]*bestMult, cfg.MinBandwidth)
	}
	return e
}

// Estimate returns the KDE selectivity estimate for (x, t).
func (e *Estimator) Estimate(x []float64, t float64) float64 {
	var s float64
	for i, o := range e.samples {
		d := e.db.Dist.Distance(x, o)
		s += normalCDF((t - d) / e.bandwidth[i])
	}
	return e.scale * s
}

// Name returns the paper's model name.
func (e *Estimator) Name() string { return "KDE" }

// ConsistencyGuaranteed reports that KDE is monotone in t by construction.
func (e *Estimator) ConsistencyGuaranteed() bool { return true }

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// kthSmallest returns the k-th smallest value (1-indexed) via quickselect.
func kthSmallest(vals []float64, k int) float64 {
	if k < 1 || k > len(vals) {
		panic("kde: k out of range")
	}
	lo, hi := 0, len(vals)-1
	target := k - 1
	for lo < hi {
		p := partition(vals, lo, hi)
		switch {
		case p == target:
			return vals[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return vals[target]
}

func partition(vals []float64, lo, hi int) int {
	// Median-of-three pivot to dodge worst cases on sorted input.
	mid := (lo + hi) / 2
	if vals[mid] < vals[lo] {
		vals[mid], vals[lo] = vals[lo], vals[mid]
	}
	if vals[hi] < vals[lo] {
		vals[hi], vals[lo] = vals[lo], vals[hi]
	}
	if vals[hi] < vals[mid] {
		vals[hi], vals[mid] = vals[mid], vals[hi]
	}
	pivot := vals[mid]
	vals[mid], vals[hi] = vals[hi], vals[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if vals[i] < pivot {
			vals[i], vals[store] = vals[store], vals[i]
			store++
		}
	}
	vals[store], vals[hi] = vals[hi], vals[store]
	return store
}
