package kde

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"selnet/internal/distance"
	"selnet/internal/vecdata"
)

func testDB(seed int64, n, dim int, dist distance.Func) *vecdata.Database {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if dist == distance.Cosine {
			v = distance.Normalize(v)
		}
		vecs[i] = v
	}
	return vecdata.NewDatabase("t", dist, vecs)
}

func TestKthSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(n)
		cp := append([]float64(nil), vals...)
		got := kthSmallest(cp, k)
		sort.Float64s(vals)
		if got != vals[k-1] {
			t.Fatalf("kthSmallest(%d) = %v, want %v", k, got, vals[k-1])
		}
	}
}

func TestNormalCDF(t *testing.T) {
	if got := normalCDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Phi(0) = %v", got)
	}
	if got := normalCDF(10); got < 0.999999 {
		t.Fatalf("Phi(10) = %v", got)
	}
	if got := normalCDF(-10); got > 1e-6 {
		t.Fatalf("Phi(-10) = %v", got)
	}
}

func TestEstimateMonotoneInT(t *testing.T) {
	db := testDB(2, 300, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(3))
	est := Fit(rng, db, Config{SampleSize: 100, BandwidthK: 5, MinBandwidth: 1e-4})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := db.Vecs[r.Intn(db.Size())]
		t1 := r.Float64() * 3
		t2 := t1 + r.Float64()*2
		return est.Estimate(x, t1) <= est.Estimate(x, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateAccuracyOnFullSample(t *testing.T) {
	// With the whole database as sample and tiny bandwidths, KDE approaches
	// the exact count away from kernel boundaries.
	db := testDB(4, 200, 3, distance.Euclidean)
	rng := rand.New(rand.NewSource(5))
	est := Fit(rng, db, Config{SampleSize: 200, BandwidthK: 1, MinBandwidth: 1e-6})
	x := db.Vecs[0]
	for _, threshold := range []float64{1.0, 2.0, 3.0} {
		exact := db.Selectivity(x, threshold)
		got := est.Estimate(x, threshold)
		if math.Abs(got-exact) > 0.25*exact+5 {
			t.Fatalf("KDE estimate %v too far from exact %v at t=%v", got, exact, threshold)
		}
	}
}

func TestEstimateBounds(t *testing.T) {
	db := testDB(6, 150, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(7))
	est := Fit(rng, db, DefaultConfig())
	x := db.Vecs[3]
	if got := est.Estimate(x, 0); got < 0 {
		t.Fatalf("negative estimate %v", got)
	}
	if got := est.Estimate(x, 1e6); got > float64(db.Size())*1.01 {
		t.Fatalf("estimate %v exceeds database size", got)
	}
	if got := est.Estimate(x, 1e6); got < float64(db.Size())*0.9 {
		t.Fatalf("huge threshold should count nearly everything, got %v", got)
	}
}

func TestSampleSizeClamped(t *testing.T) {
	db := testDB(8, 20, 3, distance.Euclidean)
	rng := rand.New(rand.NewSource(9))
	est := Fit(rng, db, Config{SampleSize: 1000, BandwidthK: 5, MinBandwidth: 1e-4})
	if len(est.samples) != 20 {
		t.Fatalf("sample size %d, want clamped to 20", len(est.samples))
	}
	if est.scale != 1 {
		t.Fatalf("scale = %v, want 1", est.scale)
	}
}

func TestNameAndConsistency(t *testing.T) {
	db := testDB(10, 30, 2, distance.Euclidean)
	est := Fit(rand.New(rand.NewSource(11)), db, DefaultConfig())
	if est.Name() != "KDE" {
		t.Fatalf("Name = %q", est.Name())
	}
	if !est.ConsistencyGuaranteed() {
		t.Fatalf("KDE must report guaranteed consistency")
	}
}

func TestFitTunedImprovesOverUntuned(t *testing.T) {
	// Clustered data with small thresholds: the raw adaptive bandwidths
	// (sample kNN distances) are far wider than the query radii, so the
	// untuned KDE badly overestimates small selectivities. Tuning the
	// global multiplier on training queries must help.
	rng := rand.New(rand.NewSource(30))
	n, dim := 800, 6
	vecs := make([][]float64, n)
	for i := range vecs {
		center := float64(rng.Intn(5)) * 3
		v := make([]float64, dim)
		for j := range v {
			v[j] = center + rng.NormFloat64()*0.3
		}
		vecs[i] = v
	}
	db := vecdata.NewDatabase("clustered", distance.Euclidean, vecs)
	wl := vecdata.GeometricWorkload(rng, db, 20, 5)
	cfg := Config{SampleSize: 60, BandwidthK: 8, MinBandwidth: 1e-4}
	untuned := Fit(rand.New(rand.NewSource(31)), db, cfg)
	tuned := FitTuned(rand.New(rand.NewSource(31)), db, cfg, wl.Queries)
	logErr := func(e *Estimator) float64 {
		var s float64
		for _, q := range wl.Queries {
			r := math.Log(q.Y+1) - math.Log(e.Estimate(q.X, q.T)+1)
			s += r * r
		}
		return s
	}
	if logErr(tuned) > logErr(untuned) {
		t.Fatalf("tuning worsened the log error: %v > %v", logErr(tuned), logErr(untuned))
	}
}

func TestFitTunedStaysMonotone(t *testing.T) {
	db := testDB(32, 300, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(33))
	wl := vecdata.GeometricWorkload(rng, db, 10, 4)
	est := FitTuned(rng, db, Config{SampleSize: 60, BandwidthK: 5, MinBandwidth: 1e-4}, wl.Queries)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := db.Vecs[r.Intn(db.Size())]
		t1 := r.Float64() * 3
		t2 := t1 + r.Float64()*2
		return est.Estimate(x, t1) <= est.Estimate(x, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFitTunedNoQueriesIsUntuned(t *testing.T) {
	db := testDB(34, 100, 3, distance.Euclidean)
	a := Fit(rand.New(rand.NewSource(35)), db, DefaultConfig())
	b := FitTuned(rand.New(rand.NewSource(35)), db, DefaultConfig(), nil)
	x := db.Vecs[0]
	if a.Estimate(x, 1.0) != b.Estimate(x, 1.0) {
		t.Fatalf("FitTuned without queries must equal Fit")
	}
}

func TestCosineSetting(t *testing.T) {
	db := testDB(12, 200, 5, distance.Cosine)
	rng := rand.New(rand.NewSource(13))
	est := Fit(rng, db, Config{SampleSize: 100, BandwidthK: 5, MinBandwidth: 1e-4})
	x := db.Vecs[0]
	small := est.Estimate(x, 0.01)
	large := est.Estimate(x, 1.5)
	if small > large {
		t.Fatalf("cosine KDE not monotone: %v > %v", small, large)
	}
	if large < float64(db.Size())/2 {
		t.Fatalf("t=1.5 should cover most of the sphere, got %v", large)
	}
}
