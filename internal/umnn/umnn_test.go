package umnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/vecdata"
)

func TestClenshawCurtisWeightsPositiveAndSumTo2(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 17} {
		nodes, weights := ClenshawCurtis(n)
		if len(nodes) != n+1 || len(weights) != n+1 {
			t.Fatalf("n=%d: got %d nodes, %d weights", n, len(nodes), len(weights))
		}
		var sum float64
		for _, w := range weights {
			if w <= 0 {
				t.Fatalf("n=%d: non-positive weight %v", n, w)
			}
			sum += w
		}
		// Integrating f=1 over [-1,1] gives 2.
		if math.Abs(sum-2) > 1e-12 {
			t.Fatalf("n=%d: weights sum to %v, want 2", n, sum)
		}
	}
}

func TestClenshawCurtisExactForPolynomials(t *testing.T) {
	nodes, weights := ClenshawCurtis(8)
	// Exact for polynomials of degree <= 8: check x^2, x^3, x^6 on [-1,1].
	cases := []struct {
		f    func(float64) float64
		want float64
	}{
		{func(x float64) float64 { return x * x }, 2.0 / 3},
		{func(x float64) float64 { return x * x * x }, 0},
		{func(x float64) float64 { return math.Pow(x, 6) }, 2.0 / 7},
	}
	for i, c := range cases {
		var got float64
		for k, u := range nodes {
			got += weights[k] * c.f(u)
		}
		if math.Abs(got-c.want) > 1e-10 {
			t.Fatalf("case %d: integral %v, want %v", i, got, c.want)
		}
	}
}

func TestClenshawCurtisApproximatesSmoothIntegrals(t *testing.T) {
	nodes, weights := ClenshawCurtis(16)
	var got float64
	for k, u := range nodes {
		got += weights[k] * math.Exp(u)
	}
	want := math.E - 1/math.E
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("exp integral %v, want %v", got, want)
	}
}

func TestClenshawCurtisPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	ClenshawCurtis(1)
}

func makeQueries(rng *rand.Rand, n, dim int) []vecdata.Query {
	qs := make([]vecdata.Query, n)
	for i := range qs {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		tt := rng.Float64() * 2
		qs[i] = vecdata.Query{X: x, T: tt, Y: math.Max(1, 50*tt+6*x[0])}
	}
	return qs
}

func TestUMNNMonotoneInT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := makeQueries(rng, 300, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 15
	cfg.Hidden = []int{24, 24}
	cfg.QuadPoints = 8
	m := New(rng, 3, cfg)
	m.Fit(train)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		t1 := r.Float64() * 2
		t2 := t1 + r.Float64()*2
		return m.Estimate(x, t1) <= m.Estimate(x, t2)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUMNNLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := makeQueries(rng, 400, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 50
	cfg.Hidden = []int{32, 32}
	cfg.QuadPoints = 8
	m := New(rng, 3, cfg)
	m.Fit(train)
	test := makeQueries(rng, 100, 3)
	var mape float64
	for _, q := range test {
		mape += math.Abs(m.Estimate(q.X, q.T)-q.Y) / q.Y
	}
	mape /= 100
	if mape > 0.8 {
		t.Fatalf("UMNN test MAPE %v too high", mape)
	}
	if m.Name() != "UMNN" || !m.ConsistencyGuaranteed() {
		t.Fatalf("metadata wrong")
	}
}

func TestUMNNZeroThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(rng, 2, DefaultConfig())
	// At t=0 the integral vanishes: output equals the offset net, which is
	// finite; estimate must be non-negative.
	if v := m.Estimate([]float64{0.5, -0.5}, 0); v < 0 {
		t.Fatalf("negative estimate at t=0: %v", v)
	}
}

func TestUMNNFitPanicsOnEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := New(rng, 2, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.Fit(nil)
}
