// Package umnn implements the UMNN baseline (Wehenkel & Louppe,
// "Unconstrained monotonic neural networks", NeurIPS 2019 — reference [35]
// of the paper). The estimator models the *derivative* of the selectivity
// curve with an unconstrained network forced positive through a softplus
// output, and integrates it with Clenshaw–Curtis quadrature:
//
//	F(x, t) = (t/2) * sum_k w_k * g(x, s_k(t)) + beta(x),
//	s_k(t)  = t * (cos(k*pi/N) + 1) / 2.
//
// Because g > 0 and the quadrature weights are positive, F is monotone in
// t up to quadrature error — the sense in which the SelNet paper marks
// UMNN as consistent. Sec. 6.3 of the paper criticizes exactly the
// property this implementation shares: the integration nodes s_k are the
// same relative positions for every query x, so resolution cannot follow
// the query-dependent "interesting region" of the curve.
package umnn

import (
	"math"
	"math/rand"

	"selnet/internal/autodiff"
	"selnet/internal/nn"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// logEps pads selectivities before the logarithm in the training loss.
const logEps = 1e-3

// Config holds UMNN hyper-parameters.
type Config struct {
	QuadPoints int // quadrature nodes N (N+1 evaluations)
	Hidden     []int
	Epochs     int
	Batch      int
	LR         float64
	HuberDelta float64
	Seed       int64
}

// DefaultConfig returns the harness defaults.
func DefaultConfig() Config {
	return Config{QuadPoints: 16, Hidden: []int{64, 64}, Epochs: 60, Batch: 128,
		LR: 3e-3, HuberDelta: 1.345, Seed: 1}
}

// Model is a trained UMNN selectivity estimator. The network regresses the
// log-selectivity: z(x,t) = integral + offset, yhat = exp(z) - eps.
type Model struct {
	cfg       Config
	dim       int
	tmax      float64
	integrand *nn.FFN // [x, s] -> softplus scalar (> 0)
	offset    *nn.FFN // x -> scalar
	nodes     []float64
	weights   []float64
}

// New builds the model for dim-dimensional queries.
func New(rng *rand.Rand, dim int, cfg Config) *Model {
	intSizes := append(append([]int{dim + 1}, cfg.Hidden...), 1)
	offSizes := append(append([]int{dim}, cfg.Hidden...), 1)
	nodes, weights := ClenshawCurtis(cfg.QuadPoints)
	return &Model{
		cfg:       cfg,
		dim:       dim,
		integrand: nn.NewFFN(rng, "umnn.g", intSizes, nn.ActReLU, nn.ActSoftplus),
		offset:    nn.NewFFN(rng, "umnn.b", offSizes, nn.ActReLU, nn.ActNone),
		nodes:     nodes,
		weights:   weights,
	}
}

// ClenshawCurtis returns the N+1 nodes u_k = cos(k*pi/N) on [-1, 1] and
// the classic Clenshaw–Curtis weights, which are strictly positive and
// integrate polynomials of degree <= N exactly.
func ClenshawCurtis(n int) (nodes, weights []float64) {
	if n < 2 {
		panic("umnn: need at least 2 quadrature intervals")
	}
	nodes = make([]float64, n+1)
	weights = make([]float64, n+1)
	for k := 0; k <= n; k++ {
		nodes[k] = math.Cos(float64(k) * math.Pi / float64(n))
		ck := 2.0
		if k == 0 || k == n {
			ck = 1.0
		}
		sum := 0.0
		for j := 1; j <= n/2; j++ {
			bj := 2.0
			if 2*j == n {
				bj = 1.0
			}
			sum += bj / float64(4*j*j-1) * math.Cos(2*math.Pi*float64(j*k)/float64(n))
		}
		weights[k] = ck / float64(n) * (1 - sum)
	}
	return nodes, weights
}

// Params returns all trainable tensors.
func (m *Model) Params() []*nn.Param {
	return append(m.integrand.Params(), m.offset.Params()...)
}

// forwardLog computes the log-selectivity for a batch: x is batch x dim,
// t is batch x 1.
func (m *Model) forwardLog(tp *autodiff.Tape, x *tensor.Dense, t *tensor.Dense) *autodiff.Node {
	b := x.Rows()
	nq := len(m.nodes)
	// Assemble the (b*nq) x (dim+1) integrand input: row (i, k) is
	// [x_i, s_k(t_i)].
	in := tensor.New(b*nq, m.dim+1)
	for i := 0; i < b; i++ {
		ti := t.At(i, 0)
		for k := 0; k < nq; k++ {
			row := in.Row(i*nq + k)
			copy(row, x.Row(i))
			row[m.dim] = ti * (m.nodes[k] + 1) / 2
		}
	}
	g := m.integrand.Apply(tp, tp.Input(in)) // (b*nq) x 1, positive
	gMat := tp.Reshape(g, b, nq)             // b x nq
	wRep := tp.RepeatRows(tp.Input(tensor.RowVector(m.weights)), b)
	integ := tp.SumColsKeep(tp.Mul(gMat, wRep)) // b x 1: sum_k w_k g
	half := tp.Input(tensor.Apply(t, func(v float64) float64 { return v / 2 }))
	scaled := tp.MulColBroadcast(integ, half) // (t/2) * sum
	off := m.offset.Apply(tp, tp.Input(x))
	return tp.Add(scaled, off)
}

// Fit trains on labelled queries with the Huber-log objective.
func (m *Model) Fit(train []vecdata.Query) {
	if len(train) == 0 {
		panic("umnn: no training queries")
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	for _, q := range train {
		if q.T > m.tmax {
			m.tmax = q.T
		}
	}
	if m.tmax == 0 {
		m.tmax = 1
	}
	x, t, y := vecdata.Matrices(train)
	logy := tensor.Apply(y, func(v float64) float64 { return math.Log(v + logEps) })
	opt := nn.NewAdam(m.cfg.LR)
	n := len(train)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < m.cfg.Epochs; e++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < n; s += m.cfg.Batch {
			end := s + m.cfg.Batch
			if end > n {
				end = n
			}
			bidx := idx[s:end]
			tp := autodiff.NewTape()
			out := m.forwardLog(tp, tensor.GatherRows(x, bidx), tensor.GatherRows(t, bidx))
			target := tp.Input(tensor.GatherRows(logy, bidx))
			loss := tp.HuberResidualLoss(out, target, m.cfg.HuberDelta)
			tp.Backward(loss)
			opt.Step(m.Params())
		}
	}
}

// Estimate returns the predicted selectivity for (x, t).
func (m *Model) Estimate(x []float64, t float64) float64 {
	tp := autodiff.NewTape()
	z := m.forwardLog(tp, tensor.RowVector(x), tensor.FromRows([][]float64{{t}})).Scalar()
	v := math.Exp(z) - logEps
	if v < 0 {
		return 0
	}
	return v
}

// EstimateBatch runs one batched forward pass over all queries. Safe for
// concurrent use: each call owns its tape, parameters are read-only.
func (m *Model) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	tp := autodiff.NewTape()
	z := m.forwardLog(tp, x, tensor.ColVector(ts))
	out := make([]float64, x.Rows())
	for i := range out {
		v := math.Exp(z.Value.At(i, 0)) - logEps
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// Dim returns the query dimensionality.
func (m *Model) Dim() int { return m.dim }

// TMax returns the largest threshold seen during training.
func (m *Model) TMax() float64 { return m.tmax }

// SetTMax overrides the advertised threshold ceiling.
func (m *Model) SetTMax(t float64) {
	if t > 0 {
		m.tmax = t
	}
}

// Name returns the paper's model name.
func (m *Model) Name() string { return "UMNN" }

// ConsistencyGuaranteed reports monotonicity by construction (positive
// integrand, positive quadrature weights), up to quadrature error — the
// same sense in which the paper stars UMNN.
func (m *Model) ConsistencyGuaranteed() bool { return true }
