package umnn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"selnet/internal/nn"
)

type modelBlob struct {
	Cfg    Config
	Dim    int
	TMax   float64
	Params []byte
}

// Save serializes the trained model to w. Quadrature nodes and weights
// are deterministic functions of the config and recomputed on load.
func (m *Model) Save(w io.Writer) error {
	var pb bytes.Buffer
	if err := nn.SaveParams(&pb, m.Params()); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(modelBlob{Cfg: m.cfg, Dim: m.dim, TMax: m.tmax, Params: pb.Bytes()})
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var b modelBlob
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("umnn: decode: %w", err)
	}
	m := New(rand.New(rand.NewSource(1)), b.Dim, b.Cfg)
	m.tmax = b.TMax
	if err := nn.LoadParams(bytes.NewReader(b.Params), m.Params()); err != nil {
		return nil, fmt.Errorf("umnn: params: %w", err)
	}
	return m, nil
}
