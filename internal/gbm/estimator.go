package gbm

import (
	"selnet/internal/vecdata"
)

// logEps is the padding constant applied before taking logarithms of
// selectivities, matching the paper's loss definition.
const logEps = 1e-3

// SelectivityEstimator adapts a GBDT to the selectivity-estimation
// interface: the feature row is the query vector with the threshold
// appended as the last feature (as in Appendix B.2, where tree models
// receive t directly). With Monotonic set, the threshold feature carries
// an increasing constraint — the paper's LightGBM-m.
type SelectivityEstimator struct {
	model     *Model
	dim       int
	monotonic bool
}

// FitSelectivity trains on labelled queries. cfg.Monotone is overwritten
// to match the monotonic flag (constraint on the threshold feature only).
func FitSelectivity(cfg Config, train []vecdata.Query, monotonic bool) *SelectivityEstimator {
	if len(train) == 0 {
		panic("gbm: no training queries")
	}
	dim := len(train[0].X)
	cfg.Monotone = make([]int8, dim+1)
	if monotonic {
		cfg.Monotone[dim] = 1
	}
	x := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, q := range train {
		x[i] = featureRow(q.X, q.T)
		y[i] = q.Y
	}
	return &SelectivityEstimator{
		model:     Train(cfg, x, y, logEps),
		dim:       dim,
		monotonic: monotonic,
	}
}

func featureRow(x []float64, t float64) []float64 {
	row := make([]float64, len(x)+1)
	copy(row, x)
	row[len(x)] = t
	return row
}

// Estimate returns the predicted selectivity for (x, t).
func (e *SelectivityEstimator) Estimate(x []float64, t float64) float64 {
	return e.model.Predict(featureRow(x, t), logEps)
}

// Name returns the paper's model name.
func (e *SelectivityEstimator) Name() string {
	if e.monotonic {
		return "LightGBM-m"
	}
	return "LightGBM"
}

// ConsistencyGuaranteed reports whether the monotone constraint is active.
func (e *SelectivityEstimator) ConsistencyGuaranteed() bool { return e.monotonic }
