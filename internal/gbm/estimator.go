package gbm

import (
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// logEps is the padding constant applied before taking logarithms of
// selectivities, matching the paper's loss definition.
const logEps = 1e-3

// SelectivityEstimator adapts a GBDT to the selectivity-estimation
// interface: the feature row is the query vector with the threshold
// appended as the last feature (as in Appendix B.2, where tree models
// receive t directly). With Monotonic set, the threshold feature carries
// an increasing constraint — the paper's LightGBM-m.
type SelectivityEstimator struct {
	model     *Model
	dim       int
	monotonic bool
	tmax      float64
}

// FitSelectivity trains on labelled queries. cfg.Monotone is overwritten
// to match the monotonic flag (constraint on the threshold feature only).
func FitSelectivity(cfg Config, train []vecdata.Query, monotonic bool) *SelectivityEstimator {
	if len(train) == 0 {
		panic("gbm: no training queries")
	}
	dim := len(train[0].X)
	cfg.Monotone = make([]int8, dim+1)
	if monotonic {
		cfg.Monotone[dim] = 1
	}
	x := make([][]float64, len(train))
	y := make([]float64, len(train))
	var tmax float64
	for i, q := range train {
		x[i] = featureRow(q.X, q.T)
		y[i] = q.Y
		if q.T > tmax {
			tmax = q.T
		}
	}
	if tmax == 0 {
		tmax = 1
	}
	return &SelectivityEstimator{
		model:     Train(cfg, x, y, logEps),
		dim:       dim,
		monotonic: monotonic,
		tmax:      tmax,
	}
}

func featureRow(x []float64, t float64) []float64 {
	row := make([]float64, len(x)+1)
	copy(row, x)
	row[len(x)] = t
	return row
}

// Estimate returns the predicted selectivity for (x, t).
func (e *SelectivityEstimator) Estimate(x []float64, t float64) float64 {
	return e.model.Predict(featureRow(x, t), logEps)
}

// EstimateBatch evaluates one query per row of x against the matching
// threshold in ts. Safe for concurrent use: trees are read-only after
// training.
func (e *SelectivityEstimator) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	out := make([]float64, x.Rows())
	row := make([]float64, e.dim+1)
	for i := range out {
		copy(row, x.Row(i))
		row[e.dim] = ts[i]
		out[i] = e.model.Predict(row, logEps)
	}
	return out
}

// Dim returns the query dimensionality (without the threshold feature).
func (e *SelectivityEstimator) Dim() int { return e.dim }

// TMax returns the largest threshold seen during training — tree splits
// beyond it are extrapolation.
func (e *SelectivityEstimator) TMax() float64 { return e.tmax }

// SetTMax overrides the advertised threshold ceiling.
func (e *SelectivityEstimator) SetTMax(t float64) {
	if t > 0 {
		e.tmax = t
	}
}

// Name returns the paper's model name.
func (e *SelectivityEstimator) Name() string {
	if e.monotonic {
		return "LightGBM-m"
	}
	return "LightGBM"
}

// ConsistencyGuaranteed reports whether the monotone constraint is active.
func (e *SelectivityEstimator) ConsistencyGuaranteed() bool { return e.monotonic }
