// Package gbm implements a LightGBM-style gradient-boosted decision tree
// regressor: histogram-based split finding, leaf-wise (best-first) tree
// growth, Newton leaf values with L2 regularization, and optional
// monotone constraints enforced through LightGBM's bound-propagation
// scheme. It provides the paper's LightGBM and LightGBM-m baselines
// (Tables 1-4), trained — like every learned model in the paper — with
// the Huber loss on log-selectivities.
package gbm

import (
	"math"
	"sort"
)

// Config holds the boosting hyper-parameters.
type Config struct {
	NumTrees     int
	LearningRate float64
	MaxLeaves    int
	MinLeaf      int     // minimum samples per leaf
	Lambda       float64 // L2 regularization on leaf values
	Bins         int     // maximum histogram bins per feature
	HuberDelta   float64 // Huber transition point on log residuals
	// Monotone marks features with a monotone-increasing constraint
	// (+1) or no constraint (0). Index i constrains feature i.
	Monotone []int8
}

// DefaultConfig returns the settings used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		NumTrees:     60,
		LearningRate: 0.1,
		MaxLeaves:    31,
		MinLeaf:      5,
		Lambda:       1.0,
		Bins:         64,
		HuberDelta:   1.345,
	}
}

// Model is a trained GBDT operating in log-target space.
type Model struct {
	cfg   Config
	base  float64
	trees []*treeNode
}

type treeNode struct {
	// Internal nodes.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// Leaves.
	leaf  bool
	value float64
}

// Train fits a GBDT to rows X (n x f) and raw targets y, regressing the
// log target log(y+eps) under the Huber loss. eps guards log(0).
func Train(cfg Config, x [][]float64, y []float64, eps float64) *Model {
	n := len(x)
	if n == 0 {
		panic("gbm: no training data")
	}
	f := len(x[0])
	target := make([]float64, n)
	for i, yi := range y {
		target[i] = math.Log(yi + eps)
	}
	// Base score: median of targets (robust, consistent with Huber).
	base := median(target)
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	bins := newBinner(x, cfg.Bins)
	binned := bins.apply(x)
	m := &Model{cfg: cfg, base: base}
	grad := make([]float64, n)
	hess := make([]float64, n)
	for tr := 0; tr < cfg.NumTrees; tr++ {
		for i := range grad {
			r := target[i] - pred[i]
			// dL/dpred of huber(target - pred): -r inside, -delta*sign(r) outside.
			if math.Abs(r) <= cfg.HuberDelta {
				grad[i] = -r
			} else if r > 0 {
				grad[i] = -cfg.HuberDelta
			} else {
				grad[i] = cfg.HuberDelta
			}
			hess[i] = 1
		}
		tree := growTree(cfg, bins, binned, grad, hess, f)
		if tree == nil {
			break
		}
		m.trees = append(m.trees, tree)
		for i := range pred {
			pred[i] += cfg.LearningRate * tree.eval(x[i])
		}
	}
	return m
}

// PredictLog returns the raw log-space prediction for one feature row.
func (m *Model) PredictLog(row []float64) float64 {
	z := m.base
	for _, t := range m.trees {
		z += m.cfg.LearningRate * t.eval(row)
	}
	return z
}

// Predict maps the log-space prediction back to a non-negative target
// value (the inverse of the training transform with padding eps).
func (m *Model) Predict(row []float64, eps float64) float64 {
	v := math.Exp(m.PredictLog(row)) - eps
	if v < 0 {
		return 0
	}
	return v
}

// NumTrees returns the number of fitted trees.
func (m *Model) NumTrees() int { return len(m.trees) }

func (t *treeNode) eval(row []float64) float64 {
	for !t.leaf {
		if row[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// ----------------------------------------------------------------------------
// Histogram binning

type binner struct {
	// uppers[f] holds ascending bin upper bounds for feature f; a value v
	// lands in the first bin with v <= uppers[f][b] (last bin catches all).
	uppers [][]float64
}

func newBinner(x [][]float64, maxBins int) *binner {
	if maxBins < 2 {
		maxBins = 2
	}
	f := len(x[0])
	b := &binner{uppers: make([][]float64, f)}
	vals := make([]float64, len(x))
	for fi := 0; fi < f; fi++ {
		for i, row := range x {
			vals[i] = row[fi]
		}
		sort.Float64s(vals)
		// Quantile boundaries over distinct values.
		var uppers []float64
		prev := math.Inf(-1)
		for q := 1; q < maxBins; q++ {
			v := vals[(len(vals)-1)*q/maxBins]
			if v > prev {
				uppers = append(uppers, v)
				prev = v
			}
		}
		uppers = append(uppers, math.Inf(1))
		b.uppers[fi] = uppers
	}
	return b
}

func (b *binner) bin(fi int, v float64) int {
	u := b.uppers[fi]
	lo, hi := 0, len(u)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= u[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (b *binner) apply(x [][]float64) [][]int {
	out := make([][]int, len(x))
	for i, row := range x {
		r := make([]int, len(row))
		for fi, v := range row {
			r[fi] = b.bin(fi, v)
		}
		out[i] = r
	}
	return out
}

// ----------------------------------------------------------------------------
// Tree growth

type nodeState struct {
	indices []int
	sumG    float64
	sumH    float64
	// Monotone output bounds propagated from ancestors.
	lower, upper float64
	// Best split found (cached).
	best splitInfo
	node *treeNode
}

type splitInfo struct {
	valid    bool
	gain     float64
	feature  int
	bin      int
	thresh   float64
	leftIdx  []int
	rightIdx []int
	leftG    float64
	leftH    float64
	rightG   float64
	rightH   float64
}

func leafValue(sumG, sumH, lambda, lower, upper float64) float64 {
	v := -sumG / (sumH + lambda)
	if v < lower {
		v = lower
	}
	if v > upper {
		v = upper
	}
	return v
}

func growTree(cfg Config, bins *binner, binned [][]int, grad, hess []float64, numFeatures int) *treeNode {
	root := &nodeState{
		indices: seq(len(binned)),
		lower:   math.Inf(-1),
		upper:   math.Inf(1),
		node:    &treeNode{leaf: true},
	}
	for _, i := range root.indices {
		root.sumG += grad[i]
		root.sumH += hess[i]
	}
	root.node.value = leafValue(root.sumG, root.sumH, cfg.Lambda, root.lower, root.upper)
	root.best = findBestSplit(cfg, bins, binned, grad, hess, root, numFeatures)

	leaves := []*nodeState{root}
	for len(leaves) < cfg.MaxLeaves {
		// Best-first: pick the leaf with the highest-gain valid split.
		bi := -1
		for i, l := range leaves {
			if l.best.valid && (bi == -1 || l.best.gain > leaves[bi].best.gain) {
				bi = i
			}
		}
		if bi == -1 {
			break
		}
		parent := leaves[bi]
		s := parent.best
		lo, hi := parent.lower, parent.upper
		ll, lu, rl, ru := lo, hi, lo, hi
		if s.feature < len(cfg.Monotone) && cfg.Monotone[s.feature] > 0 {
			// Increasing constraint: left outputs <= mid <= right outputs.
			wl := leafValue(s.leftG, s.leftH, cfg.Lambda, lo, hi)
			wr := leafValue(s.rightG, s.rightH, cfg.Lambda, lo, hi)
			mid := (wl + wr) / 2
			lu = math.Min(lu, mid)
			rl = math.Max(rl, mid)
		}
		left := &nodeState{indices: s.leftIdx, sumG: s.leftG, sumH: s.leftH, lower: ll, upper: lu,
			node: &treeNode{leaf: true, value: leafValue(s.leftG, s.leftH, cfg.Lambda, ll, lu)}}
		right := &nodeState{indices: s.rightIdx, sumG: s.rightG, sumH: s.rightH, lower: rl, upper: ru,
			node: &treeNode{leaf: true, value: leafValue(s.rightG, s.rightH, cfg.Lambda, rl, ru)}}
		parent.node.leaf = false
		parent.node.feature = s.feature
		parent.node.threshold = s.thresh
		parent.node.left = left.node
		parent.node.right = right.node
		left.best = findBestSplit(cfg, bins, binned, grad, hess, left, numFeatures)
		right.best = findBestSplit(cfg, bins, binned, grad, hess, right, numFeatures)
		leaves[bi] = left
		leaves = append(leaves, right)
	}
	if root.node.leaf && root.node.value == 0 {
		return nil // nothing learned
	}
	return root.node
}

func findBestSplit(cfg Config, bins *binner, binned [][]int, grad, hess []float64, ns *nodeState, numFeatures int) splitInfo {
	best := splitInfo{}
	if len(ns.indices) < 2*cfg.MinLeaf {
		return best
	}
	parentScore := ns.sumG * ns.sumG / (ns.sumH + cfg.Lambda)
	for fi := 0; fi < numFeatures; fi++ {
		nb := len(bins.uppers[fi])
		if nb < 2 {
			continue
		}
		histG := make([]float64, nb)
		histH := make([]float64, nb)
		histN := make([]int, nb)
		for _, i := range ns.indices {
			b := binned[i][fi]
			histG[b] += grad[i]
			histH[b] += hess[i]
			histN[b]++
		}
		var lg, lh float64
		var ln int
		mono := fi < len(cfg.Monotone) && cfg.Monotone[fi] > 0
		for b := 0; b < nb-1; b++ {
			lg += histG[b]
			lh += histH[b]
			ln += histN[b]
			rn := len(ns.indices) - ln
			if ln < cfg.MinLeaf || rn < cfg.MinLeaf {
				continue
			}
			rg := ns.sumG - lg
			rh := ns.sumH - lh
			if mono {
				wl := leafValue(lg, lh, cfg.Lambda, ns.lower, ns.upper)
				wr := leafValue(rg, rh, cfg.Lambda, ns.lower, ns.upper)
				if wl > wr {
					continue // would violate the increasing constraint
				}
			}
			gain := lg*lg/(lh+cfg.Lambda) + rg*rg/(rh+cfg.Lambda) - parentScore
			if gain > best.gain+1e-12 {
				best = splitInfo{
					valid: true, gain: gain, feature: fi, bin: b,
					thresh: bins.uppers[fi][b],
					leftG:  lg, leftH: lh, rightG: rg, rightH: rh,
				}
			}
		}
	}
	if best.valid {
		for _, i := range ns.indices {
			if binned[i][best.feature] <= best.bin {
				best.leftIdx = append(best.leftIdx, i)
			} else {
				best.rightIdx = append(best.rightIdx, i)
			}
		}
	}
	return best
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func median(vals []float64) float64 {
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
