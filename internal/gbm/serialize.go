package gbm

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Serialization flattens each tree into an index-linked node array so the
// wire form uses exported fields without exposing the pointer-linked
// treeNode layout.

// flatNode is the wire form of one tree node. Left/Right index into the
// tree's node slice; -1 marks a leaf child slot.
type flatNode struct {
	Feature   int
	Threshold float64
	Left      int32
	Right     int32
	Leaf      bool
	Value     float64
}

type estimatorBlob struct {
	Cfg       Config
	Base      float64
	Trees     [][]flatNode
	Dim       int
	Monotonic bool
	TMax      float64
}

func flatten(t *treeNode) []flatNode {
	var out []flatNode
	var walk func(n *treeNode) int32
	walk = func(n *treeNode) int32 {
		id := int32(len(out))
		out = append(out, flatNode{Feature: n.feature, Threshold: n.threshold, Leaf: n.leaf, Value: n.value, Left: -1, Right: -1})
		if !n.leaf {
			out[id].Left = walk(n.left)
			out[id].Right = walk(n.right)
		}
		return id
	}
	walk(t)
	return out
}

func unflatten(nodes []flatNode) (*treeNode, error) {
	built := make([]*treeNode, len(nodes))
	for i := range nodes {
		built[i] = &treeNode{
			feature:   nodes[i].Feature,
			threshold: nodes[i].Threshold,
			leaf:      nodes[i].Leaf,
			value:     nodes[i].Value,
		}
	}
	for i, n := range nodes {
		if n.Leaf {
			continue
		}
		if n.Left < 0 || int(n.Left) >= len(built) || n.Right < 0 || int(n.Right) >= len(built) {
			return nil, fmt.Errorf("gbm: corrupt tree: node %d children out of range", i)
		}
		built[i].left = built[n.Left]
		built[i].right = built[n.Right]
	}
	if len(built) == 0 {
		return nil, fmt.Errorf("gbm: corrupt tree: empty node array")
	}
	return built[0], nil
}

// Save serializes the fitted estimator to w.
func (e *SelectivityEstimator) Save(w io.Writer) error {
	b := estimatorBlob{
		Cfg:       e.model.cfg,
		Base:      e.model.base,
		Trees:     make([][]flatNode, len(e.model.trees)),
		Dim:       e.dim,
		Monotonic: e.monotonic,
		TMax:      e.tmax,
	}
	for i, t := range e.model.trees {
		b.Trees[i] = flatten(t)
	}
	return gob.NewEncoder(w).Encode(b)
}

// Load reads an estimator previously written by Save.
func Load(r io.Reader) (*SelectivityEstimator, error) {
	var b estimatorBlob
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("gbm: decode: %w", err)
	}
	m := &Model{cfg: b.Cfg, base: b.Base, trees: make([]*treeNode, len(b.Trees))}
	for i, nodes := range b.Trees {
		t, err := unflatten(nodes)
		if err != nil {
			return nil, err
		}
		m.trees[i] = t
	}
	return &SelectivityEstimator{model: m, dim: b.Dim, monotonic: b.Monotonic, tmax: b.TMax}, nil
}
