package gbm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/vecdata"
)

func TestBinnerBasic(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	b := newBinner(x, 4)
	if len(b.uppers[0]) < 2 {
		t.Fatalf("too few bins: %d", len(b.uppers[0]))
	}
	// Bins are ordered and the last upper bound is +inf.
	u := b.uppers[0]
	for i := 1; i < len(u); i++ {
		if u[i] <= u[i-1] {
			t.Fatalf("bin uppers not strictly increasing: %v", u)
		}
	}
	if !math.IsInf(u[len(u)-1], 1) {
		t.Fatalf("last bin must catch all values")
	}
	// Binning is monotone in the value.
	prev := -1
	for v := 0.0; v <= 9; v += 0.5 {
		bin := b.bin(0, v)
		if bin < prev {
			t.Fatalf("bin index decreased")
		}
		prev = bin
	}
}

func TestBinnerConstantFeature(t *testing.T) {
	x := [][]float64{{5}, {5}, {5}}
	b := newBinner(x, 8)
	// A constant feature collapses to a single catch-all bin; it can never
	// be split on.
	if got := b.bin(0, 5); got != len(b.uppers[0])-1 && b.uppers[0][got] < 5 {
		t.Fatalf("constant feature binning broken")
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatalf("odd median wrong")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatalf("even median wrong")
	}
}

// The GBDT must fit a deterministic function of one feature.
func TestTrainFitsSimpleFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := rng.Float64() * 10
		x[i] = []float64{v}
		y[i] = math.Exp(v / 3) // smooth increasing target
	}
	cfg := DefaultConfig()
	cfg.NumTrees = 80
	m := Train(cfg, x, y, 1e-3)
	if m.NumTrees() == 0 {
		t.Fatalf("no trees learned")
	}
	// Relative error on training points should be small.
	var mape float64
	for i := range x {
		p := m.Predict(x[i], 1e-3)
		mape += math.Abs(p-y[i]) / y[i]
	}
	mape /= float64(n)
	if mape > 0.2 {
		t.Fatalf("training MAPE %v too high", mape)
	}
}

func TestPredictNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 100
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64()}
		y[i] = 0.01 // tiny targets push log predictions negative
	}
	m := Train(DefaultConfig(), x, y, 1e-3)
	for i := 0; i < 20; i++ {
		if p := m.Predict([]float64{rng.NormFloat64() * 3}, 1e-3); p < 0 {
			t.Fatalf("negative prediction %v", p)
		}
	}
}

// Monotone-constrained model must be non-decreasing in the constrained
// feature for any fixed values of the others.
func TestMonotoneConstraintHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 800
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a := rng.NormFloat64()
		tt := rng.Float64() * 5
		x[i] = []float64{a, tt}
		// Noisy increasing-in-t target.
		y[i] = math.Max(0.1, 10*tt+5*a+rng.NormFloat64()*8)
	}
	cfg := DefaultConfig()
	cfg.Monotone = []int8{0, 1}
	m := Train(cfg, x, y, 1e-3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.NormFloat64()
		t1 := r.Float64() * 5
		t2 := t1 + r.Float64()*3
		return m.PredictLog([]float64{a, t1}) <= m.PredictLog([]float64{a, t2})+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The unconstrained model on the same noisy data typically violates
// monotonicity somewhere — demonstrating the constraint is doing work.
func TestUnconstrainedCanViolate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 400
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		tt := rng.Float64() * 5
		x[i] = []float64{rng.NormFloat64(), tt}
		y[i] = math.Max(0.1, 10*tt+rng.NormFloat64()*30) // heavy noise
	}
	m := Train(DefaultConfig(), x, y, 1e-3)
	violated := false
	for seed := int64(0); seed < 500 && !violated; seed++ {
		r := rand.New(rand.NewSource(seed))
		a := r.NormFloat64()
		t1 := r.Float64() * 5
		t2 := t1 + r.Float64()*0.5
		if m.PredictLog([]float64{a, t1}) > m.PredictLog([]float64{a, t2})+1e-9 {
			violated = true
		}
	}
	if !violated {
		t.Skip("unconstrained model happened to be monotone on this seed")
	}
}

func TestMinLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64()}
		y[i] = rng.Float64() * 100
	}
	cfg := DefaultConfig()
	cfg.MinLeaf = 25 // only one split could ever satisfy 2*25 > 40 => none
	cfg.NumTrees = 3
	m := Train(cfg, x, y, 1e-3)
	for _, tree := range m.trees {
		if !tree.leaf {
			t.Fatalf("tree split despite MinLeaf bound")
		}
	}
}

func TestTrainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Train(DefaultConfig(), nil, nil, 1e-3)
}

func makeQueries(rng *rand.Rand, n, dim int) []vecdata.Query {
	qs := make([]vecdata.Query, n)
	for i := range qs {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		tt := rng.Float64() * 2
		qs[i] = vecdata.Query{X: x, T: tt, Y: math.Max(1, 50*tt+10*x[0])}
	}
	return qs
}

func TestSelectivityEstimatorEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := makeQueries(rng, 600, 3)
	cfg := DefaultConfig()
	cfg.NumTrees = 40
	est := FitSelectivity(cfg, train, false)
	if est.Name() != "LightGBM" {
		t.Fatalf("Name = %q", est.Name())
	}
	if est.ConsistencyGuaranteed() {
		t.Fatalf("plain LightGBM must not claim consistency")
	}
	// Error on a held-out query should be in the right ballpark.
	var mape float64
	test := makeQueries(rng, 100, 3)
	for _, q := range test {
		p := est.Estimate(q.X, q.T)
		mape += math.Abs(p-q.Y) / q.Y
	}
	if mape/100 > 1.0 {
		t.Fatalf("test MAPE %v too high", mape/100)
	}
}

func TestSelectivityEstimatorMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := makeQueries(rng, 500, 3)
	cfg := DefaultConfig()
	cfg.NumTrees = 30
	est := FitSelectivity(cfg, train, true)
	if est.Name() != "LightGBM-m" || !est.ConsistencyGuaranteed() {
		t.Fatalf("monotone estimator misreports: %q", est.Name())
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		t1 := r.Float64() * 2
		t2 := t1 + r.Float64()
		return est.Estimate(x, t1) <= est.Estimate(x, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
