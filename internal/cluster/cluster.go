package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"selnet/internal/ingest"
	"selnet/internal/obs"
	"selnet/internal/serve"
)

// Config assembles a Node.
type Config struct {
	// Self is this node's base URL as peers reach it (must appear in
	// Peers).
	Self string
	// Peers is the static membership list — every node's base URL,
	// including Self, identical on every node so placement agrees.
	Peers []string
	// Replicas is the replication factor R: each model lives on R
	// distinct nodes (clamped to the cluster size).
	Replicas int
	// Models names every model in the cluster (all nodes list all
	// models; placement decides which ones this node hosts).
	Models []string
	// Pipe is the local ingest pipeline; hosted models must be attached
	// to it before Start.
	Pipe *ingest.Pipeline

	// Heartbeat is the peer-probe interval (default 250ms); FailAfter
	// is the leader silence that triggers an election (default 6x the
	// heartbeat).
	Heartbeat time.Duration
	FailAfter time.Duration

	// AckFollowers is the number of follower journal acknowledgements an
	// update needs before the leader acknowledges it to the client
	// (clamped to R-1; 0 = asynchronous replication). AckTimeout bounds
	// the wait (default 5s).
	AckFollowers int
	AckTimeout   time.Duration

	// PullBatch caps entries per WAL chunk (default 64); PullWait is the
	// follower long-poll window when the leader has nothing new
	// (default 1s).
	PullBatch int
	PullWait  time.Duration

	// Monitor receives replication telemetry (optional).
	Monitor *obs.ClusterMonitor
	// Client overrides the intra-cluster HTTP client (tests inject short
	// timeouts). The default tolerates PullWait-length long-polls.
	Client *http.Client
	// Logger receives cluster lifecycle events (elections, demotions,
	// replication stalls); nil discards them.
	Logger *slog.Logger
}

// modelState is one model's replication state on this node. All fields
// are guarded by Node.mu.
type modelState struct {
	name     string
	replicas []string // placement order; replicas[0] is the home node
	hosted   bool     // Self ∈ replicas

	leader     bool   // this node currently leads
	term       uint64 // current leadership term
	maxTerm    uint64 // highest term ever observed (election floor)
	leaderURL  string // last known leader (may be stale during failover)
	leaderSeen time.Time

	// followerAck tracks, on the leader, the highest sequence each
	// follower has journaled — learned implicitly from WAL-pull cursors:
	// a follower asking from=N+1 has durably journaled through N.
	followerAck map[string]uint64
	// leaderLast is, on a follower, the leader's last assigned sequence
	// from the most recent WAL chunk — the basis of the lag gauge.
	leaderLast uint64
	// diverged latches when the local journal holds entries that
	// conflict with the leader's history (a deposed leader's
	// unreplicated suffix, or a pull cursor ahead of the leader's log).
	// A diverged replica stops replicating and must be reseeded.
	diverged bool
	// rr round-robins fan-out reads across the replica set.
	rr uint64
}

// Node implements serve.ClusterRouter over a static peer group: it
// places models with the consistent-hash ring, leads or follows each
// hosted model's replica group, streams the WAL leader→followers, and
// routes client requests to whichever node should answer them.
type Node struct {
	cfg    Config
	pipe   *ingest.Pipeline
	client *http.Client // WAL pulls: tolerates PullWait-length long-polls
	probe  *http.Client // state probes: must fail fast so elections aren't stalled
	logger *slog.Logger
	mon    *obs.ClusterMonitor

	mu      sync.Mutex
	ackCond *sync.Cond
	models  map[string]*modelState

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewNode validates cfg, computes this node's placement, and returns a
// stopped node; Start launches the heartbeat and replication loops.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: missing self URL")
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in peer list %v", cfg.Self, cfg.Peers)
	}
	if cfg.Pipe == nil {
		return nil, fmt.Errorf("cluster: missing ingest pipeline")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 250 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 6 * cfg.Heartbeat
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.PullBatch <= 0 {
		cfg.PullBatch = 64
	}
	if cfg.PullWait <= 0 {
		cfg.PullWait = time.Second
	}
	if cfg.AckFollowers > cfg.Replicas-1 {
		cfg.AckFollowers = cfg.Replicas - 1
	}
	if cfg.AckFollowers < 0 {
		cfg.AckFollowers = 0
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	client, probe := cfg.Client, cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.PullWait + 10*time.Second}
		// Probes must fail well inside the failover window: probePeers
		// waits for every in-flight probe, so a hung (not refusing) peer
		// stalls each heartbeat round by the probe timeout. At FailAfter
		// that would double leader-silence detection for every model;
		// a couple of heartbeats is plenty for a healthy state fetch.
		probeTimeout := 2 * cfg.Heartbeat
		if limit := cfg.FailAfter / 2; probeTimeout > limit {
			probeTimeout = limit
		}
		probe = &http.Client{Timeout: probeTimeout}
	}
	n := &Node{
		cfg:    cfg,
		pipe:   cfg.Pipe,
		client: client,
		probe:  probe,
		logger: cfg.Logger,
		mon:    cfg.Monitor,
		models: make(map[string]*modelState, len(cfg.Models)),
		stop:   make(chan struct{}),
	}
	n.ackCond = sync.NewCond(&n.mu)
	r := newRing(cfg.Peers)
	for _, name := range cfg.Models {
		reps := r.replicas(name, cfg.Replicas)
		ms := &modelState{name: name, replicas: reps, followerAck: make(map[string]uint64)}
		for _, rep := range reps {
			ms.hosted = ms.hosted || rep == cfg.Self
		}
		n.models[name] = ms
	}
	return n, nil
}

// Hosted reports the models placed on this node, in sorted order. The
// daemon uses it to attach only local replicas to the pipeline.
func (n *Node) Hosted() []string {
	out := make([]string, 0, len(n.models))
	for name, ms := range n.models {
		if ms.hosted {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Start probes the peer group once (synchronously, so the node boots
// with a leadership picture instead of electing itself blindly), then
// launches the heartbeat loop and one replication pull loop per hosted
// model.
func (n *Node) Start() {
	n.bootstrap()
	n.wg.Add(1)
	go n.heartbeatLoop()
	for _, name := range n.hostedNames() {
		n.wg.Add(1)
		go n.pullLoop(name)
	}
}

func (n *Node) hostedNames() []string { return n.Hosted() }

// bootstrap resolves initial leadership for every hosted model: adopt
// any peer already claiming the lead; otherwise the placement home
// (replicas[0]) takes term 1, and followers of an unreachable home wait
// out FailAfter before electing (handled by the heartbeat loop, seeded
// by leaderSeen = now).
func (n *Node) bootstrap() {
	states := n.probePeers()
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ms := range n.models {
		if !ms.hosted {
			continue
		}
		n.adoptClaimsLocked(ms, states, now)
		if ms.leaderURL == "" && len(ms.replicas) > 0 && ms.replicas[0] == n.cfg.Self {
			n.promoteLocked(ms, ms.maxTerm+1, "bootstrap")
		}
		if ms.leaderSeen.IsZero() {
			ms.leaderSeen = now // grace: don't elect before FailAfter of silence
		}
	}
}

// heartbeatLoop probes peers every Heartbeat and reconciles leadership:
// adopting higher-term claims, resolving same-term splits by placement
// order, and electing a successor for hosted models whose leader has
// been silent past FailAfter.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
		}
		states := n.probePeers()
		now := time.Now()
		n.mu.Lock()
		for _, ms := range n.models {
			if !ms.hosted {
				continue
			}
			n.adoptClaimsLocked(ms, states, now)
			if !ms.leader && now.Sub(ms.leaderSeen) > n.cfg.FailAfter {
				n.electLocked(ms, states)
			}
		}
		n.mu.Unlock()
	}
}

// probePeers fetches /v1/cluster/state from every peer except self.
// Unreachable peers are simply absent from the result.
func (n *Node) probePeers() map[string]*PeerStatus {
	type res struct {
		peer string
		st   *PeerStatus
	}
	ch := make(chan res, len(n.cfg.Peers))
	probes := 0
	for _, peer := range n.cfg.Peers {
		if peer == n.cfg.Self {
			continue
		}
		probes++
		go func(peer string) {
			st, err := n.fetchState(peer)
			if err != nil {
				ch <- res{peer, nil}
				return
			}
			ch <- res{peer, st}
		}(peer)
	}
	out := make(map[string]*PeerStatus, probes)
	for i := 0; i < probes; i++ {
		r := <-ch
		if r.st != nil {
			out[r.peer] = r.st
		}
	}
	return out
}

// adoptClaimsLocked folds peer leadership claims for ms into local
// state: a higher term always wins (demoting us if we led); an equal
// term from a peer earlier in placement order wins a split; any
// accepted claim refreshes leaderSeen. On the leader it also refreshes
// follower ack telemetry.
func (n *Node) adoptClaimsLocked(ms *modelState, states map[string]*PeerStatus, now time.Time) {
	for _, peer := range ms.replicas {
		st, ok := states[peer]
		if !ok {
			continue
		}
		pm, ok := st.Models[ms.name]
		if !ok || !pm.Leader {
			continue
		}
		if pm.Term > ms.maxTerm {
			ms.maxTerm = pm.Term
		}
		switch {
		case pm.Term > ms.term:
			n.followLocked(ms, peer, pm.Term, now, "higher term")
		case pm.Term == ms.term && ms.leader && peer != n.cfg.Self && n.placementRank(ms, peer) < n.placementRank(ms, n.cfg.Self):
			// Same-term split (two nodes elected in the same partition
			// window): the replica earlier in placement order keeps the
			// lead, everyone else steps down deterministically.
			n.followLocked(ms, peer, pm.Term, now, "same-term split")
		case pm.Term == ms.term && !ms.leader && peer == ms.leaderURL:
			ms.leaderSeen = now
		case pm.Term == ms.term && !ms.leader && ms.leaderURL == "":
			ms.leaderURL = peer
			ms.leaderSeen = now
		}
	}
	if ms.leader {
		ms.leaderSeen = now
	}
	n.publishRoleLocked(ms)
}

func (n *Node) placementRank(ms *modelState, peer string) int {
	for i, rep := range ms.replicas {
		if rep == peer {
			return i
		}
	}
	return len(ms.replicas)
}

// electLocked promotes the most caught-up live replica after leader
// silence. Candidates are this node plus every replica that answered
// the probe round; the winner has the highest journaled sequence, ties
// broken by applied sequence, then placement order. Only a self-win
// changes local state — a peer win just means we expect its claim on a
// future heartbeat.
func (n *Node) electLocked(ms *modelState, states map[string]*PeerStatus) {
	selfLast, selfApplied, ok := n.pipe.Position(ms.name)
	if !ok {
		return
	}
	bestPeer, bestLast, bestApplied := n.cfg.Self, selfLast, selfApplied
	for _, peer := range ms.replicas {
		if peer == n.cfg.Self {
			continue
		}
		st, ok := states[peer]
		if !ok {
			continue // silent peer: not a candidate
		}
		pm, ok := st.Models[ms.name]
		if !ok {
			continue
		}
		if pm.LastSeq > bestLast ||
			(pm.LastSeq == bestLast && pm.AppliedSeq > bestApplied) ||
			(pm.LastSeq == bestLast && pm.AppliedSeq == bestApplied &&
				n.placementRank(ms, peer) < n.placementRank(ms, bestPeer)) {
			bestPeer, bestLast, bestApplied = peer, pm.LastSeq, pm.AppliedSeq
		}
	}
	if bestPeer != n.cfg.Self {
		// The better-positioned replica should win; give the failover
		// clock a fresh window for its claim to arrive.
		ms.leaderSeen = time.Now()
		return
	}
	n.promoteLocked(ms, ms.maxTerm+1, "leader silent")
}

func (n *Node) promoteLocked(ms *modelState, term uint64, why string) {
	ms.leader = true
	ms.term = term
	if term > ms.maxTerm {
		ms.maxTerm = term
	}
	ms.leaderURL = n.cfg.Self
	ms.leaderSeen = time.Now()
	ms.followerAck = make(map[string]uint64)
	n.logger.Info("cluster: promoted to leader",
		slog.String("model", ms.name), slog.Uint64("term", term), slog.String("reason", why))
	n.mon.Promotion(ms.name)
	n.publishRoleLocked(ms)
	n.ackCond.Broadcast()
}

func (n *Node) followLocked(ms *modelState, leader string, term uint64, now time.Time, why string) {
	if ms.leader {
		n.logger.Warn("cluster: stepping down",
			slog.String("model", ms.name), slog.String("new_leader", leader),
			slog.Uint64("term", term), slog.String("reason", why))
		n.mon.Demotion(ms.name)
		// Entries this node journaled as leader that no follower ever
		// pulled cannot be on the successor: it will reassign those
		// sequence numbers to different batches, and the pull loop's
		// idempotence skips (journal.appendAt and the WAL tailer both
		// treat lower sequences as already replicated) would silently
		// keep the conflicting suffix. Flag the replica instead.
		var maxAck uint64
		for _, s := range ms.followerAck {
			if s > maxAck {
				maxAck = s
			}
		}
		if last, _, ok := n.pipe.Position(ms.name); ok && last > maxAck {
			n.markDivergedLocked(ms, fmt.Sprintf(
				"deposed (term %d -> %d) holding unreplicated suffix %d..%d", ms.term, term, maxAck+1, last))
		}
	}
	ms.leader = false
	ms.term = term
	if term > ms.maxTerm {
		ms.maxTerm = term
	}
	ms.leaderURL = leader
	ms.leaderSeen = now
	n.publishRoleLocked(ms)
	// Wake Enqueue waiters so they fail fast with ErrNotLeader instead
	// of riding out the ack timeout.
	n.ackCond.Broadcast()
}

func (n *Node) publishRoleLocked(ms *modelState) {
	n.mon.SetRole(ms.name, ms.leader, ms.term)
}

// markDivergedLocked latches the divergence flag: the local journal
// holds entries that the authoritative leader history does not, so
// continuing to replicate would silently skip the conflict and leave
// this replica serving a permanently different database. The replica
// stops pulling and must be reseeded (today: wipe the model's journal
// directory and restart the node so it re-syncs from the leader;
// automatic snapshot shipping is a roadmap item).
func (n *Node) markDivergedLocked(ms *modelState, why string) {
	if ms.diverged {
		return
	}
	ms.diverged = true
	n.logger.Error("cluster: replica diverged from leader history; needs reseed",
		slog.String("model", ms.name), slog.String("reason", why))
	n.mon.MarkDiverged(ms.name)
}

// ----------------------------------------------------------------------------
// serve.Updater: the write path

// Enqueue journals one batch locally and, when semi-synchronous
// replication is configured, holds the acknowledgement until
// AckFollowers followers have journaled it (learned from their WAL-pull
// cursors). A non-leader refuses with serve.ErrNotLeader so the server
// proxies to the real leader.
func (n *Node) Enqueue(model string, insert, del [][]float64) (serve.UpdateAck, error) {
	n.mu.Lock()
	ms, ok := n.models[model]
	if !ok || !ms.hosted {
		n.mu.Unlock()
		return serve.UpdateAck{}, fmt.Errorf("%w: model %q not placed on this node", serve.ErrNotUpdatable, model)
	}
	if !ms.leader {
		n.mu.Unlock()
		return serve.UpdateAck{}, fmt.Errorf("%w: %q is led by %s", serve.ErrNotLeader, model, ms.leaderURL)
	}
	need := n.cfg.AckFollowers
	if live := len(ms.replicas) - 1; need > live {
		need = live
	}
	n.mu.Unlock()

	ack, err := n.pipe.Enqueue(model, insert, del)
	if err != nil {
		return ack, err
	}
	// Re-check leadership: a demotion between the check above and the
	// journal append means this node minted (and fsynced) a sequence
	// number the new leader will assign to a different batch. The entry
	// is already durable locally, so the journal is suspect from here on
	// — flag it and refuse the ack so the client retries at the real
	// leader.
	n.mu.Lock()
	if !ms.leader {
		n.markDivergedLocked(ms, fmt.Sprintf("leadership lost while journaling seq %d", ack.Seq))
		leader := ms.leaderURL
		n.mu.Unlock()
		return serve.UpdateAck{}, fmt.Errorf("%w: lost leadership of %q while journaling seq %d (now led by %q); replica needs reseed",
			serve.ErrNotLeader, model, ack.Seq, leader)
	}
	n.mu.Unlock()
	if need == 0 {
		return ack, nil
	}
	if !n.waitAcked(ms, ack.Seq, need) {
		return serve.UpdateAck{}, fmt.Errorf("%w: seq %d not replicated to %d follower(s) within %s",
			serve.ErrReplicationTimeout, ack.Seq, need, n.cfg.AckTimeout)
	}
	return ack, nil
}

// waitAcked blocks until `need` followers have journaled seq, the ack
// timeout passes, or leadership is lost.
func (n *Node) waitAcked(ms *modelState, seq uint64, need int) bool {
	deadline := time.Now().Add(n.cfg.AckTimeout)
	timer := time.AfterFunc(n.cfg.AckTimeout, func() {
		n.mu.Lock()
		n.ackCond.Broadcast()
		n.mu.Unlock()
	})
	defer timer.Stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		acked := 0
		for _, s := range ms.followerAck {
			if s >= seq {
				acked++
			}
		}
		if acked >= need {
			return true
		}
		if !ms.leader || time.Now().After(deadline) {
			return false
		}
		n.ackCond.Wait()
	}
}

// UpdaterStats delegates to the local pipeline (the stats of the models
// this node hosts).
func (n *Node) UpdaterStats() map[string]serve.UpdaterStats {
	return n.pipe.UpdaterStats()
}

// ----------------------------------------------------------------------------
// serve.ClusterRouter: the read path and surfaces

// RouteRead picks where an estimate should run: locally when this node
// hosts a replica, otherwise round-robin across the model's replica
// set. Unknown models stay local (the handler 404s).
func (n *Node) RouteRead(model string) (targets []string, local bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms, ok := n.models[model]
	if !ok {
		return nil, true
	}
	if ms.hosted {
		return nil, true
	}
	start := ms.rr
	ms.rr++
	out := make([]string, 0, len(ms.replicas))
	for i := range ms.replicas {
		out = append(out, ms.replicas[(start+uint64(i))%uint64(len(ms.replicas))])
	}
	return out, false
}

// RouteWrite picks where an update should run: locally when this node
// leads the model, at the known leader otherwise. During failover the
// target may be empty (no leader known yet); a non-hosting node falls
// back to the placement home, whose replica group re-routes once more
// if leadership moved.
func (n *Node) RouteWrite(model string) (target string, local bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms, ok := n.models[model]
	if !ok {
		return "", true
	}
	if ms.leader {
		return "", true
	}
	if ms.hosted {
		return ms.leaderURL, false // may be "" during failover: 503 + Retry-After
	}
	if ms.leaderURL != "" {
		return ms.leaderURL, false
	}
	return ms.replicas[0], false
}

// ShardMapEntry is one model's placement in GET /v1/cluster.
type ShardMapEntry struct {
	Model    string   `json:"model"`
	Replicas []string `json:"replicas"`
	Leader   string   `json:"leader,omitempty"`
	Term     uint64   `json:"term"`
}

// ShardMapResponse is the GET /v1/cluster document.
type ShardMapResponse struct {
	Self     string          `json:"self"`
	Peers    []string        `json:"peers"`
	Replicas int             `json:"replicas"`
	Models   []ShardMapEntry `json:"models"`
}

// ShardMap serves client-side routing: every model's replica set and
// last known leader.
func (n *Node) ShardMap() any {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := ShardMapResponse{
		Self:     n.cfg.Self,
		Peers:    n.cfg.Peers,
		Replicas: n.cfg.Replicas,
		Models:   make([]ShardMapEntry, 0, len(n.models)),
	}
	for _, name := range n.sortedModelsLocked() {
		ms := n.models[name]
		resp.Models = append(resp.Models, ShardMapEntry{
			Model: name, Replicas: ms.replicas, Leader: ms.leaderURL, Term: ms.term,
		})
	}
	return resp
}

// ModelClusterStats is one hosted model's replication picture in /stats.
type ModelClusterStats struct {
	Replicas  []string `json:"replicas"`
	Leader    bool     `json:"leader"`
	LeaderURL string   `json:"leader_url,omitempty"`
	Term      uint64   `json:"term"`
	// LastSeq/AppliedSeq are the local journal position; Lag is how far
	// this replica trails the leader's last assigned sequence (0 on the
	// leader).
	LastSeq    uint64 `json:"last_seq"`
	AppliedSeq uint64 `json:"applied_seq"`
	Lag        uint64 `json:"lag"`
	// Diverged reports a replica whose journal conflicts with the
	// leader's history; it has stopped replicating and needs a reseed.
	Diverged bool `json:"diverged,omitempty"`
	// FollowerAck is the leader's view of each follower's journaled
	// sequence (empty on followers).
	FollowerAck map[string]uint64 `json:"follower_ack,omitempty"`
}

// ClusterStatsResponse is the "cluster" section of /stats.
type ClusterStatsResponse struct {
	Self   string                       `json:"self"`
	Models map[string]ModelClusterStats `json:"models"`
}

// ClusterStats reports per-model leadership and replication lag for
// /stats.
func (n *Node) ClusterStats() any {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := ClusterStatsResponse{Self: n.cfg.Self, Models: make(map[string]ModelClusterStats, len(n.models))}
	for name, ms := range n.models {
		if !ms.hosted {
			continue
		}
		last, applied, ok := n.pipe.Position(name)
		if !ok {
			continue
		}
		st := ModelClusterStats{
			Replicas:   ms.replicas,
			Leader:     ms.leader,
			LeaderURL:  ms.leaderURL,
			Term:       ms.term,
			LastSeq:    last,
			AppliedSeq: applied,
			Diverged:   ms.diverged,
		}
		if ms.leader {
			if len(ms.followerAck) > 0 {
				st.FollowerAck = make(map[string]uint64, len(ms.followerAck))
				for peer, seq := range ms.followerAck {
					st.FollowerAck[peer] = seq
				}
			}
		} else if ms.leaderLast > last {
			st.Lag = ms.leaderLast - last
		}
		resp.Models[name] = st
	}
	return resp
}

// WriteMetrics renders the cluster metric families into /metrics.
func (n *Node) WriteMetrics(p *obs.PromWriter) { n.mon.WriteMetrics(p) }

func (n *Node) sortedModelsLocked() []string {
	names := make([]string, 0, len(n.models))
	for name := range n.models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close stops the heartbeat and replication loops. The pipeline is
// closed by its owner afterwards.
func (n *Node) Close() {
	select {
	case <-n.stop:
		return
	default:
	}
	close(n.stop)
	n.mu.Lock()
	n.ackCond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
}
