package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"selnet/internal/ingest"
	"selnet/internal/obs"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

// ----------------------------------------------------------------------------
// Placement

func TestPlacementDeterministicAndDistinct(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, model := range []string{"m", "faces", "deep1b", "x/y"} {
		got := Placement(peers, 3, model)
		if len(got) != 3 {
			t.Fatalf("%s: got %d replicas, want 3", model, len(got))
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("%s: duplicate replica %s in %v", model, n, got)
			}
			seen[n] = true
		}
		// Same placement regardless of peer-list order.
		shuffled := []string{"http://d:1", "http://b:1", "http://a:1", "http://c:1"}
		again := Placement(shuffled, 3, model)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("%s: placement depends on peer order: %v vs %v", model, got, again)
			}
		}
	}
}

func TestPlacementClampsToClusterSize(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1"}
	if got := Placement(peers, 5, "m"); len(got) != 2 {
		t.Fatalf("got %v, want both peers", got)
	}
	if got := Placement(nil, 3, "m"); got != nil {
		t.Fatalf("empty peer list: got %v", got)
	}
}

func TestPlacementSpreadsModels(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	homes := map[string]int{}
	for i := 0; i < 30; i++ {
		homes[Placement(peers, 2, fmt.Sprintf("model-%d", i))[0]]++
	}
	if len(homes) < 2 {
		t.Fatalf("30 models all homed on one node: %v", homes)
	}
}

// ----------------------------------------------------------------------------
// Node config

func TestNewNodeValidation(t *testing.T) {
	p := newClusterPipeline(t, t.TempDir())
	if _, err := NewNode(Config{Peers: []string{"http://a:1"}, Pipe: p}); err == nil {
		t.Fatal("missing self accepted")
	}
	if _, err := NewNode(Config{Self: "http://z:1", Peers: []string{"http://a:1"}, Pipe: p}); err == nil {
		t.Fatal("self outside peer list accepted")
	}
	if _, err := NewNode(Config{Self: "http://a:1", Peers: []string{"http://a:1"}}); err == nil {
		t.Fatal("missing pipeline accepted")
	}
	n, err := NewNode(Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://b:1"},
		Replicas: 2, Models: []string{"m"}, Pipe: p})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Hosted(); len(got) != 1 || got[0] != "m" {
		t.Fatalf("R=2 over 2 nodes must host everywhere, got %v", got)
	}
}

// ----------------------------------------------------------------------------
// Integration: replication + failover over real pipelines and HTTP

// testDim is the vector dimensionality of the integration fixtures.
const testDim = 4

func clusterModel(seed int64) *selnet.Net {
	cfg := selnet.Config{
		L: 4, EmbedDim: 4,
		AEHidden: []int{8}, AELatent: 4,
		TauHidden: []int{8}, MHidden: []int{8},
		TMax: 16, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
	return selnet.NewNet(rand.New(rand.NewSource(seed)), testDim, cfg)
}

// newClusterPipeline builds a durable pipeline with one attached model
// "m" whose δ_U trigger never fires (replication tests exercise the
// journal, not retraining).
func newClusterPipeline(t *testing.T, dir string) *ingest.Pipeline {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	db := vecdata.SyntheticFace(rng, 150, testDim)
	wl := vecdata.GeometricWorkload(rng, db, 8, 4)
	cut := len(wl.Queries) * 3 / 4
	p := ingest.New(ingest.Config{
		Registry: serve.NewRegistry(nil),
		Train:    selnet.TrainConfig{Epochs: 1, Batch: 32, LR: 5e-3, HuberDelta: 1.345, LogEps: 1e-3, Seed: 1},
		Update:   selnet.UpdateConfig{DeltaU: 1e12, Patience: 1, MaxEpochs: 1},
		Journal:  ingest.JournalConfig{Dir: dir},
	})
	t.Cleanup(p.Close)
	if err := p.Attach("m", clusterModel(12), db, wl.Queries[:cut], wl.Queries[cut:]); err != nil {
		t.Fatal(err)
	}
	return p
}

// testNode is one in-process cluster member: pipeline, node, and an
// HTTP server exposing the intra-cluster API on a real listener.
type testNode struct {
	url  string
	pipe *ingest.Pipeline
	node *Node
	srv  *http.Server
	ln   net.Listener
}

// kill simulates a crash: the listener dies and every loop stops, but
// nothing is drained gracefully.
func (tn *testNode) kill() {
	tn.srv.Close()
	tn.node.Close()
}

// startCluster brings up n members with fast failover timings. Every
// node hosts model "m" (R = n).
func startCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	peers := make([]string, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &testNode{ln: ln, url: "http://" + ln.Addr().String()}
		peers[i] = nodes[i].url
	}
	for i, tn := range nodes {
		tn.pipe = newClusterPipeline(t, t.TempDir())
		node, err := NewNode(Config{
			Self: tn.url, Peers: peers, Replicas: n, Models: []string{"m"}, Pipe: tn.pipe,
			Heartbeat: 20 * time.Millisecond, FailAfter: 150 * time.Millisecond,
			AckFollowers: 1, AckTimeout: 3 * time.Second,
			PullBatch: 8, PullWait: 50 * time.Millisecond,
			Monitor: obs.NewClusterMonitor(),
			Client:  &http.Client{Timeout: 2 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
		tn.srv = &http.Server{Handler: node.Handler()}
		go tn.srv.Serve(tn.ln)
		t.Cleanup(func() { tn.srv.Close(); node.Close() })
		_ = i
	}
	for _, tn := range nodes {
		tn.node.Start()
	}
	return nodes
}

func leaderOf(nodes []*testNode) *testNode {
	for _, tn := range nodes {
		tn.node.mu.Lock()
		lead := tn.node.models["m"].leader
		tn.node.mu.Unlock()
		if lead {
			return tn
		}
	}
	return nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func vec(i int) []float64 {
	return []float64{float64(i), float64(i) + 0.5, -float64(i), 0.25}
}

func TestClusterReplicationAndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node integration test")
	}
	nodes := startCluster(t, 3)

	var lead *testNode
	waitFor(t, 5*time.Second, "initial leader", func() bool {
		lead = leaderOf(nodes)
		return lead != nil
	})
	// The placement home wins the uncontested bootstrap election.
	if want := Placement([]string{nodes[0].url, nodes[1].url, nodes[2].url}, 3, "m")[0]; lead.url != want {
		t.Fatalf("bootstrap leader %s, want placement home %s", lead.url, want)
	}

	// A follower refuses writes with ErrNotLeader so the serving layer
	// proxies them.
	for _, tn := range nodes {
		if tn == lead {
			continue
		}
		if _, err := tn.node.Enqueue("m", [][]float64{vec(0)}, nil); !errors.Is(err, serve.ErrNotLeader) {
			t.Fatalf("follower Enqueue: %v, want ErrNotLeader", err)
		}
	}

	// Acknowledged writes are journaled on at least one follower before
	// the ack returns (AckFollowers=1).
	var lastSeq uint64
	for i := 1; i <= 5; i++ {
		ack, err := lead.node.Enqueue("m", [][]float64{vec(i)}, nil)
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		lastSeq = ack.Seq
	}
	journaled := 0
	for _, tn := range nodes {
		if tn == lead {
			continue
		}
		if last, _, _ := tn.pipe.Position("m"); last >= lastSeq {
			journaled++
		}
	}
	if journaled == 0 {
		t.Fatalf("no follower journaled seq %d despite semi-sync ack", lastSeq)
	}
	// And replication converges everywhere (both followers, applied).
	for _, tn := range nodes {
		tn := tn
		waitFor(t, 5*time.Second, "replication convergence", func() bool {
			last, applied, ok := tn.pipe.Position("m")
			return ok && last >= lastSeq && applied >= lastSeq
		})
	}

	// The shard map names the leader.
	sm := lead.node.ShardMap().(ShardMapResponse)
	if len(sm.Models) != 1 || sm.Models[0].Leader != lead.url {
		t.Fatalf("shard map %+v does not name leader %s", sm, lead.url)
	}

	// Crash the leader. The most caught-up follower must take over with
	// a higher term.
	oldURL := lead.url
	oldTerm := sm.Models[0].Term
	lead.kill()
	var next *testNode
	waitFor(t, 5*time.Second, "failover", func() bool {
		for _, tn := range nodes {
			if tn.url == oldURL {
				continue
			}
			tn.node.mu.Lock()
			ms := tn.node.models["m"]
			lead, term := ms.leader, ms.term
			tn.node.mu.Unlock()
			if lead && term > oldTerm {
				next = tn
				return true
			}
		}
		return false
	})

	// No acknowledged batch was lost: the new leader's journal holds
	// every acked sequence.
	if last, _, _ := next.pipe.Position("m"); last < lastSeq {
		t.Fatalf("new leader journal at %d, acked through %d", last, lastSeq)
	}

	// Writes flow again through the new leader (the surviving follower
	// supplies the semi-sync ack).
	ack, err := next.node.Enqueue("m", [][]float64{vec(100)}, nil)
	if err != nil {
		t.Fatalf("post-failover enqueue: %v", err)
	}
	if ack.Seq <= lastSeq {
		t.Fatalf("post-failover seq %d did not advance past %d", ack.Seq, lastSeq)
	}

	// The surviving follower converges on the new history.
	for _, tn := range nodes {
		if tn.url == oldURL || tn == next {
			continue
		}
		tn := tn
		waitFor(t, 5*time.Second, "post-failover convergence", func() bool {
			last, _, ok := tn.pipe.Position("m")
			return ok && last >= ack.Seq
		})
	}

	// Telemetry recorded the promotion.
	if c := next.node.mon.Counters(); c.Promotions == 0 {
		t.Fatalf("promotion not counted: %+v", c)
	}
}

// newLeaderNode builds an unstarted two-peer node hosting "m" that has
// promoted itself, plus its follower's URL — the fixture for the ack
// credit and divergence tests (no loops run; state is driven by hand).
func newLeaderNode(t *testing.T) (*Node, string) {
	t.Helper()
	p := newClusterPipeline(t, t.TempDir())
	self, follower := "http://self:1", "http://b:1"
	n, err := NewNode(Config{
		Self: self, Peers: []string{self, follower}, Replicas: 2,
		Models: []string{"m"}, Pipe: p, Monitor: obs.NewClusterMonitor(),
	})
	if err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	n.promoteLocked(n.models["m"], 1, "test")
	n.mu.Unlock()
	return n, follower
}

func TestWALPullCreditClampedToReplicaSet(t *testing.T) {
	n, follower := newLeaderNode(t)
	ts := httptest.NewServer(n.Handler())
	defer ts.Close()
	get := func(q string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/cluster/wal/m?" + q)
		if err != nil {
			t.Fatal(err)
		}
		drain(resp)
		return resp.StatusCode
	}
	ack := func() map[string]uint64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		out := make(map[string]uint64)
		for k, v := range n.models["m"].followerAck {
			out[k] = v
		}
		return out
	}

	// Empty journal: from=1 is the caught-up cursor; anything further
	// means the puller journaled sequences this leader never assigned.
	if code := get("from=2&peer=" + url.QueryEscape(follower)); code != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("divergent cursor on empty journal: status %d, want 416", code)
	}
	if got := ack(); len(got) != 0 {
		t.Fatalf("rejected pull still credited an ack: %v", got)
	}

	for i := 1; i <= 3; i++ {
		if _, err := n.Enqueue("m", [][]float64{vec(i)}, nil); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	// A legitimate replica cursor earns credit for the prefix it proves.
	if code := get("from=2&peer=" + url.QueryEscape(follower)); code != http.StatusOK {
		t.Fatalf("replica pull: status %d", code)
	}
	if got := ack(); got[follower] != 1 {
		t.Fatalf("followerAck = %v, want %q -> 1", got, follower)
	}
	// A puller outside the replica set never does — the endpoint is on
	// the public listener, and semi-sync acks must not be forgeable.
	if code := get("from=4&peer=" + url.QueryEscape("http://evil:1")); code != http.StatusOK {
		t.Fatalf("outsider pull: status %d", code)
	}
	if got := ack(); len(got) != 1 || got[follower] != 1 {
		t.Fatalf("outsider peer earned ack credit: %v", got)
	}
	// A cursor past the leader's tip is refused and the credit (a
	// monotonic max) must not jump past reality.
	if code := get("from=10&peer=" + url.QueryEscape(follower)); code != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("cursor past tip: status %d, want 416", code)
	}
	if got := ack(); got[follower] != 1 {
		t.Fatalf("rejected cursor moved the ack credit: %v", got)
	}
}

func TestDemotionWithUnreplicatedSuffixMarksDiverged(t *testing.T) {
	n, follower := newLeaderNode(t)
	ms := n.models["m"]

	// Two journaled batches, both acked by the follower: demotion is
	// clean — the successor provably holds our whole journal.
	for i := 1; i <= 2; i++ {
		if _, err := n.Enqueue("m", [][]float64{vec(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	n.mu.Lock()
	ms.followerAck[follower] = 2
	n.followLocked(ms, follower, 2, time.Now(), "test")
	diverged := ms.diverged
	n.mu.Unlock()
	if diverged {
		t.Fatal("fully replicated demotion flagged as diverged")
	}

	// Re-promoted, one more batch that no follower ever pulls: being
	// deposed now strands a suffix the new leader cannot have.
	n.mu.Lock()
	n.promoteLocked(ms, 3, "test")
	n.mu.Unlock()
	if _, err := n.Enqueue("m", [][]float64{vec(3)}, nil); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	n.followLocked(ms, follower, 4, time.Now(), "test")
	diverged = ms.diverged
	n.mu.Unlock()
	if !diverged {
		t.Fatal("deposed leader with unreplicated suffix not flagged as diverged")
	}
	if c := n.mon.Counters(); c.Diverged != 1 {
		t.Fatalf("diverged counter = %d, want 1", c.Diverged)
	}
	st := n.ClusterStats().(ClusterStatsResponse)
	if !st.Models["m"].Diverged {
		t.Fatalf("/stats does not report divergence: %+v", st.Models["m"])
	}
}

func TestPullRejectionMarksDiverged(t *testing.T) {
	n, follower := newLeaderNode(t)
	ms := n.models["m"]
	n.mu.Lock()
	n.followLocked(ms, follower, 2, time.Now(), "test")
	n.mu.Unlock()

	n.handlePullError("m", follower, errDivergedPeer)
	n.mu.Lock()
	diverged := ms.diverged
	n.mu.Unlock()
	if !diverged {
		t.Fatal("416 pull rejection did not latch the divergence flag")
	}
}

func TestClusterRouting(t *testing.T) {
	p := newClusterPipeline(t, t.TempDir())
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	// Place "m" on 2 of 3 nodes and build the node that does NOT host it.
	reps := Placement(peers, 2, "m")
	var outsider string
	for _, peer := range peers {
		hosted := false
		for _, r := range reps {
			hosted = hosted || r == peer
		}
		if !hosted {
			outsider = peer
		}
	}
	n, err := NewNode(Config{Self: outsider, Peers: peers, Replicas: 2, Models: []string{"m"}, Pipe: p})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Hosted(); len(got) != 0 {
		t.Fatalf("outsider hosts %v", got)
	}
	targets, local := n.RouteRead("m")
	if local || len(targets) != 2 {
		t.Fatalf("outsider read: local=%v targets=%v", local, targets)
	}
	// Round-robin rotates the candidate order.
	targets2, _ := n.RouteRead("m")
	if targets[0] == targets2[0] {
		t.Fatalf("read fan-out did not rotate: %v then %v", targets, targets2)
	}
	target, local := n.RouteWrite("m")
	if local || target != reps[0] {
		t.Fatalf("outsider write: local=%v target=%q, want home %q", local, target, reps[0])
	}
	// Unknown models stay local so the handler can 404.
	if _, local := n.RouteRead("ghost"); !local {
		t.Fatal("unknown model should route locally")
	}
	if _, err := n.Enqueue("m", [][]float64{vec(1)}, nil); !errors.Is(err, serve.ErrNotUpdatable) {
		t.Fatalf("outsider Enqueue: %v, want ErrNotUpdatable", err)
	}
}
