// Package cluster turns a set of selestd processes into one serving
// group: models are placed on nodes by consistent hashing over the
// model name with R-way replication, each model's leader streams its
// write-ahead log to the follower replicas (which replay it through the
// normal ingest pipeline), reads fan out to any replica, updates are
// proxied to the leader, and leadership fails over to the most
// caught-up follower when the leader stops answering heartbeats.
//
// Membership is static (the -cluster-peers list); the protocol is a
// deliberately simple heartbeat + term scheme, not Raft: leadership
// conflicts are resolved by highest term (ties by placement order), and
// an update is only acknowledged once a configurable number of
// followers have journaled it, so a leader crash never loses an
// acknowledged batch as long as one such follower survives to be
// promoted.
package cluster

import (
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the number of ring points each node projects; enough
// to smooth placement across a handful of nodes without making ring
// construction noticeable.
const vnodesPerNode = 64

// ring is a consistent-hash ring over node URLs.
type ring struct {
	points []ringPoint
	nodes  int
}

type ringPoint struct {
	hash uint64
	node string
}

func newRing(nodes []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(nodes)*vnodesPerNode), nodes: len(nodes)}
	for _, node := range nodes {
		for i := 0; i < vnodesPerNode; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(node, i), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare with 64-bit hashes) break by name so
		// every node computes the same ring.
		return r.points[i].node < r.points[j].node
	})
	return r
}

func ringHash(node string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{'#', byte(vnode), byte(vnode >> 8)})
	return h.Sum64()
}

// replicas returns the n distinct nodes owning key, walking clockwise
// from the key's hash. The first node is the model's home (its initial
// leader); the rest are followers in promotion-preference order.
func (r *ring) replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.nodes {
		n = r.nodes
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	target := h.Sum64()
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= target })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Placement computes the replica set for a model over a static peer
// list: the distinct nodes, in preference order, that should host it.
// Every node computes the same placement from the same peer list, which
// is what lets placement be decided locally with no coordinator.
func Placement(peers []string, replicas int, model string) []string {
	return newRing(peers).replicas(model, replicas)
}
