package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"selnet/internal/ingest"
	"selnet/internal/serve"
)

// pullLoop replicates one hosted model: while this node follows, it
// long-polls the leader's WAL from its own journal position and replays
// each chunk through the ingest pipeline (journal append at the
// replicated sequence, then the normal apply/retrain worker). While
// this node leads, the loop idles — followers pull from us instead.
func (n *Node) pullLoop(model string) {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		default:
		}

		n.mu.Lock()
		ms := n.models[model]
		leading, leader, term, diverged := ms.leader, ms.leaderURL, ms.term, ms.diverged
		n.mu.Unlock()

		if diverged {
			// A diverged replica must not pull: the idempotence skips in
			// journal.appendAt and the WAL tailer would silently drop the
			// leader's conflicting entries and fork the replica further.
			// Idle until an operator reseeds (the flag is latched and
			// exported via /stats and selestd_replication_diverged).
			if !n.sleep(n.cfg.FailAfter) {
				return
			}
			continue
		}
		if leading || leader == "" || leader == n.cfg.Self {
			// Leading, or leaderless during failover: nothing to pull.
			if !n.sleep(n.cfg.Heartbeat) {
				return
			}
			continue
		}

		last, _, ok := n.pipe.Position(model)
		if !ok {
			// Model not attached (shouldn't happen for hosted models).
			if !n.sleep(n.cfg.Heartbeat) {
				return
			}
			continue
		}

		chunk, err := n.fetchWAL(leader, model, last+1)
		if err != nil {
			n.handlePullError(model, leader, err)
			if !n.sleep(n.cfg.Heartbeat) {
				return
			}
			continue
		}

		// Sanity-check the chunk before replaying it. A term older than
		// ours means the serving node is a stale leader (we adopted a
		// newer claim from the heartbeats) — its entries may belong to a
		// superseded history, so drop the chunk and let the heartbeat
		// loop re-resolve where to pull from. A newer term is fine: only
		// leaders serve chunks, so the peer demonstrably leads at
		// chunk.Term — adopt it. And a leader tip behind our own journal
		// means we hold sequences the authoritative history never
		// assigned: that is divergence, not catch-up.
		if chunk.Term < term {
			n.logger.Warn("cluster: dropping WAL chunk from stale-term leader",
				slog.String("model", model), slog.String("leader", leader),
				slog.Uint64("chunk_term", chunk.Term), slog.Uint64("term", term))
			n.mu.Lock()
			if !ms.leader && ms.leaderURL == leader && ms.term > chunk.Term {
				ms.leaderURL = "" // heartbeat re-resolves the real leader
			}
			n.mu.Unlock()
			if !n.sleep(n.cfg.Heartbeat) {
				return
			}
			continue
		}
		if chunk.LastSeq < last {
			n.mu.Lock()
			n.markDivergedLocked(ms, fmt.Sprintf(
				"local journal at seq %d but leader %s (term %d) is at %d", last, leader, chunk.Term, chunk.LastSeq))
			n.mu.Unlock()
			continue
		}
		if chunk.Term > term {
			n.mu.Lock()
			if !ms.leader && chunk.Term > ms.term {
				ms.term = chunk.Term
				if chunk.Term > ms.maxTerm {
					ms.maxTerm = chunk.Term
				}
				ms.leaderURL = leader
				ms.leaderSeen = time.Now()
				n.publishRoleLocked(ms)
			}
			n.mu.Unlock()
		}

		entries := make([]ingest.Entry, 0, len(chunk.Entries))
		for _, we := range chunk.Entries {
			entries = append(entries, ingest.Entry{
				Seq: we.Seq, At: time.Unix(0, we.At), Insert: we.Insert, Delete: we.Delete,
			})
		}
		accepted := 0
		if len(entries) > 0 {
			accepted, err = n.pipe.Replicate(model, entries)
		}
		n.mon.ObservePull(accepted, err != nil)
		if err != nil && !errors.Is(err, serve.ErrUpdateQueueFull) {
			// Queue-full is ordinary backpressure (the worker drains it);
			// anything else — a gap, a dimension mismatch — means this
			// replica has diverged and retrying won't fix it. Log loudly
			// and back off rather than spinning.
			n.logger.Error("cluster: replication replay failed",
				slog.String("model", model), slog.String("leader", leader),
				slog.String("err", err.Error()))
			if !n.sleep(n.cfg.FailAfter) {
				return
			}
			continue
		}
		if err != nil && accepted == 0 {
			// Queue full before the first entry landed: an immediate
			// re-pull would fetch the identical chunk and hammer the
			// leader until the worker drains. Wait a heartbeat instead.
			if !n.sleep(n.cfg.Heartbeat) {
				return
			}
			continue
		}

		n.mu.Lock()
		ms.leaderLast = chunk.LastSeq
		if nowLast, _, ok := n.pipe.Position(model); ok && chunk.LastSeq >= nowLast {
			n.mon.SetLag(model, n.cfg.Self, chunk.LastSeq-nowLast)
		}
		n.mu.Unlock()

		// A full chunk suggests more is waiting: pull again immediately.
		// An empty or partial chunk means we're caught up; the next
		// long-poll blocks server-side until new data arrives, so there
		// is no client-side sleep on the hot path.
	}
}

// handlePullError reacts to a failed WAL pull. A 409 clears the cached
// leader (adopting the peer's hint if it offered one) so the heartbeat
// loop re-resolves leadership; a 410 means the leader compacted past
// our position and this replica needs a reseed — surfaced as a loud
// log until snapshot shipping exists; a 416 means our cursor is ahead
// of the leader's entire log — a divergent suffix, latched via
// markDivergedLocked so the loop stops replicating. Transport errors
// just count: the heartbeat loop notices a dead leader via FailAfter.
func (n *Node) handlePullError(model, leader string, err error) {
	n.mon.ObservePull(0, true)
	var notLeader *errNotLeaderPeer
	switch {
	case errors.As(err, &notLeader):
		n.mu.Lock()
		ms := n.models[model]
		if !ms.leader && ms.leaderURL == leader {
			ms.leaderURL = notLeader.Leader // may be "": heartbeat re-resolves
		}
		n.mu.Unlock()
	case errors.Is(err, errCompactedPeer):
		n.logger.Error("cluster: leader compacted past our position; replica needs reseed",
			slog.String("model", model), slog.String("leader", leader))
	case errors.Is(err, errDivergedPeer):
		n.mu.Lock()
		n.markDivergedLocked(n.models[model], fmt.Sprintf("leader %s rejected pull: cursor past its history", leader))
		n.mu.Unlock()
	default:
		n.logger.Debug("cluster: wal pull failed",
			slog.String("model", model), slog.String("leader", leader),
			slog.String("err", err.Error()))
	}
}

// sleep waits d or until shutdown, reporting false on shutdown.
func (n *Node) sleep(d time.Duration) bool {
	select {
	case <-n.stop:
		return false
	case <-time.After(d):
		return true
	}
}
