package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"selnet/internal/ingest"
)

// The intra-cluster API rides on each node's public listener under
// /v1/cluster/ (the serve layer mounts Handler there):
//
//	GET /v1/cluster/state
//	    this node's term/leadership/journal position for every model it
//	    hosts — the heartbeat probe and the election evidence.
//	GET /v1/cluster/wal/{model}?from=SEQ&max=N&wait_ms=MS&peer=URL
//	    stream WAL entries with sequence >= from, up to max per chunk,
//	    long-polling up to wait_ms when caught up. Only the leader
//	    serves entries (409 otherwise, with its best guess at the
//	    leader); 410 means the WAL was compacted past `from` and the
//	    follower needs a reseed; 416 means `from` is past the leader's
//	    own last sequence — the puller holds a divergent suffix and
//	    needs a reseed. `peer` identifies the puller so the leader can
//	    credit its replication cursor: a follower asking from=N+1 has
//	    durably journaled through N. Credit goes only to replica-set
//	    members and never past the leader's own tip.

// ModelStatus is one model's view in GET /v1/cluster/state.
type ModelStatus struct {
	Leader     bool   `json:"leader"`
	Term       uint64 `json:"term"`
	LeaderURL  string `json:"leader_url,omitempty"`
	LastSeq    uint64 `json:"last_seq"`
	AppliedSeq uint64 `json:"applied_seq"`
}

// PeerStatus is the GET /v1/cluster/state document.
type PeerStatus struct {
	Self   string                 `json:"self"`
	Models map[string]ModelStatus `json:"models"`
}

// WireEntry is one WAL entry on the wire. Float64 vectors survive JSON
// round-trips exactly for the values the WAL itself produced, so the
// follower journals byte-identical batches.
type WireEntry struct {
	Seq    uint64      `json:"seq"`
	At     int64       `json:"at"` // unix nanos
	Insert [][]float64 `json:"insert,omitempty"`
	Delete [][]float64 `json:"delete,omitempty"`
}

// WALChunk is the GET /v1/cluster/wal/{model} response.
type WALChunk struct {
	Model string `json:"model"`
	Term  uint64 `json:"term"`
	// LastSeq is the leader's last assigned sequence at serve time — the
	// follower's lag reference, present even when Entries is empty.
	LastSeq uint64      `json:"last_seq"`
	Entries []WireEntry `json:"entries,omitempty"`
}

type clusterError struct {
	Error  string `json:"error"`
	Leader string `json:"leader,omitempty"`
}

// Handler returns the intra-cluster route table.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/state", n.handleState)
	mux.HandleFunc("GET /v1/cluster/wal/{model}", n.handleWAL)
	return mux
}

func (n *Node) handleState(w http.ResponseWriter, r *http.Request) {
	st := PeerStatus{Self: n.cfg.Self, Models: make(map[string]ModelStatus)}
	n.mu.Lock()
	for name, ms := range n.models {
		if !ms.hosted {
			continue
		}
		last, applied, ok := n.pipe.Position(name)
		if !ok {
			continue
		}
		st.Models[name] = ModelStatus{
			Leader: ms.leader, Term: ms.term, LeaderURL: ms.leaderURL,
			LastSeq: last, AppliedSeq: applied,
		}
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (n *Node) handleWAL(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		writeJSON(w, http.StatusBadRequest, clusterError{Error: fmt.Sprintf("bad from %q", q.Get("from"))})
		return
	}
	max := n.cfg.PullBatch
	if v := q.Get("max"); v != "" {
		if m, err := strconv.Atoi(v); err == nil && m > 0 && m < max {
			max = m
		}
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			wait = time.Duration(ms) * time.Millisecond
			if wait > n.cfg.PullWait {
				wait = n.cfg.PullWait
			}
		}
	}

	n.mu.Lock()
	ms, ok := n.models[model]
	if !ok || !ms.hosted {
		n.mu.Unlock()
		writeJSON(w, http.StatusNotFound, clusterError{Error: fmt.Sprintf("model %q not hosted here", model)})
		return
	}
	if !ms.leader {
		leader := ms.leaderURL
		n.mu.Unlock()
		writeJSON(w, http.StatusConflict, clusterError{Error: "not the leader", Leader: leader})
		return
	}
	term := ms.term
	leaderLast, _, havePos := n.pipe.Position(model)
	// A cursor past our own tip means the puller journaled sequences we
	// never assigned — the divergent-suffix state after a failover.
	// Refuse instead of long-polling: serving (or crediting) it would
	// let a forked replica pass as caught up.
	if havePos && from > leaderLast+1 {
		n.mu.Unlock()
		writeJSON(w, http.StatusRequestedRangeNotSatisfiable, clusterError{
			Error: fmt.Sprintf("from %d is past the leader's last sequence %d: puller holds a divergent suffix and needs a reseed", from, leaderLast),
		})
		return
	}
	// The pull cursor is the follower's durability receipt: asking for
	// `from` proves everything below it is journaled there. Only replica
	//-set members earn credit — the endpoint is on the public listener,
	// and the semi-sync ack count must not be satisfiable by arbitrary
	// clients — and the credit is clamped to our own tip so a bogus
	// cursor can never mark a follower as caught up past reality.
	if peer := q.Get("peer"); peer != "" && peer != n.cfg.Self &&
		n.placementRank(ms, peer) < len(ms.replicas) {
		acked := from - 1
		if havePos && acked > leaderLast {
			acked = leaderLast
		}
		if ms.followerAck[peer] < acked {
			ms.followerAck[peer] = acked
		}
		if havePos && leaderLast >= acked {
			n.mon.SetLag(model, peer, leaderLast-acked)
		}
		n.ackCond.Broadcast()
	}
	n.mu.Unlock()

	tailer, err := n.pipe.TailWAL(model, from-1)
	if errors.Is(err, ingest.ErrWALCompacted) {
		writeJSON(w, http.StatusGone, clusterError{Error: err.Error()})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, clusterError{Error: err.Error()})
		return
	}
	defer tailer.Close()

	deadline := time.Now().Add(wait)
	var entries []ingest.Entry
	for {
		entries, err = tailer.Next(max)
		if errors.Is(err, ingest.ErrWALCompacted) {
			writeJSON(w, http.StatusGone, clusterError{Error: err.Error()})
			return
		}
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, clusterError{Error: err.Error()})
			return
		}
		if len(entries) > 0 || wait == 0 || time.Now().After(deadline) {
			break
		}
		// Long-poll: the WAL has no readable tail yet; poll at a fraction
		// of the heartbeat so a fresh append ships quickly.
		select {
		case <-n.stop:
			writeJSON(w, http.StatusServiceUnavailable, clusterError{Error: "node shutting down"})
			return
		case <-r.Context().Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}

	chunk := WALChunk{Model: model, Term: term, Entries: make([]WireEntry, 0, len(entries))}
	if last, _, ok := n.pipe.Position(model); ok {
		chunk.LastSeq = last
	}
	for _, e := range entries {
		chunk.Entries = append(chunk.Entries, WireEntry{
			Seq: e.Seq, At: e.At.UnixNano(), Insert: e.Insert, Delete: e.Delete,
		})
	}
	writeJSON(w, http.StatusOK, chunk)
}

// ----------------------------------------------------------------------------
// Client side

func (n *Node) fetchState(peer string) (*PeerStatus, error) {
	resp, err := n.probe.Get(peer + "/v1/cluster/state")
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s/v1/cluster/state: %s", peer, resp.Status)
	}
	var st PeerStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// errNotLeaderPeer reports a 409 from a WAL pull: the pulled node no
// longer leads. Leader carries its hint (may be empty).
type errNotLeaderPeer struct{ Leader string }

func (e *errNotLeaderPeer) Error() string { return "cluster: peer is not the leader" }

// errCompactedPeer reports a 410: the leader compacted past our cursor
// and streaming cannot resume without a reseed.
var errCompactedPeer = errors.New("cluster: leader compacted past our journal position")

// errDivergedPeer reports a 416: our pull cursor is past the leader's
// own last sequence, so the local journal holds a suffix the
// authoritative history never assigned — the replica has diverged.
var errDivergedPeer = errors.New("cluster: local journal is ahead of the leader's history")

func (n *Node) fetchWAL(leader, model string, from uint64) (*WALChunk, error) {
	u := fmt.Sprintf("%s/v1/cluster/wal/%s?from=%d&max=%d&wait_ms=%d&peer=%s",
		leader, url.PathEscape(model), from, n.cfg.PullBatch,
		n.cfg.PullWait.Milliseconds(), url.QueryEscape(n.cfg.Self))
	resp, err := n.client.Get(u)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		var ce clusterError
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ce)
		return nil, &errNotLeaderPeer{Leader: ce.Leader}
	case http.StatusGone:
		return nil, errCompactedPeer
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, errDivergedPeer
	default:
		return nil, fmt.Errorf("cluster: %s wal pull: %s", leader, resp.Status)
	}
	var chunk WALChunk
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&chunk); err != nil {
		return nil, err
	}
	return &chunk, nil
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
