package ingest

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"selnet/internal/partition"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

// testData builds a small database plus a labelled workload, split by
// hand (the 80/10/10 Split yields an empty validation set at this scale).
func testData(seed int64, n, dim, queries int) (*vecdata.Database, *vecdata.Workload, []vecdata.Query, []vecdata.Query) {
	rng := rand.New(rand.NewSource(seed))
	db := vecdata.SyntheticFace(rng, n, dim)
	wl := vecdata.GeometricWorkload(rng, db, queries, 4)
	cut := len(wl.Queries) * 3 / 4
	return db, wl, wl.Queries[:cut], wl.Queries[cut:]
}

// tinyModel builds a small untrained SelNet; incremental updates retrain
// from whatever parameters are current, so training quality is moot.
func tinyModel(seed int64, dim int, tmax float64) *selnet.Net {
	cfg := selnet.Config{
		L: 4, EmbedDim: 4,
		AEHidden: []int{8}, AELatent: 4,
		TauHidden: []int{8}, MHidden: []int{8},
		TMax: tmax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
	return selnet.NewNet(rand.New(rand.NewSource(seed)), dim, cfg)
}

func tinyTrain() selnet.TrainConfig {
	return selnet.TrainConfig{
		Epochs: 1, Batch: 32, LR: 5e-3, HuberDelta: 1.345, LogEps: 1e-3, Seed: 1,
	}
}

// forceRetrain makes the δ_U check fire on every cycle (|Δ| <= -1 never
// holds) with a single cheap epoch.
func forceRetrain() selnet.UpdateConfig {
	return selnet.UpdateConfig{DeltaU: -1, Patience: 1, MaxEpochs: 1}
}

// neverRetrain absorbs any label shift.
func neverRetrain() selnet.UpdateConfig {
	return selnet.UpdateConfig{DeltaU: 1e12, Patience: 1, MaxEpochs: 1}
}

func newPipeline(t *testing.T, cfg Config) (*Pipeline, *serve.Registry) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = serve.NewRegistry(nil)
	}
	if cfg.Train.Batch == 0 {
		cfg.Train = tinyTrain()
	}
	p := New(cfg)
	t.Cleanup(p.Close)
	return p, cfg.Registry
}

func TestAttachValidation(t *testing.T) {
	db, wl, train, valid := testData(1, 150, 4, 8)
	m := tinyModel(2, db.Dim, wl.TMax)
	p, _ := newPipeline(t, Config{Update: neverRetrain()})

	if err := p.Attach("", m, db, train, valid); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := p.Attach("m", nil, db, train, valid); err == nil {
		t.Fatal("nil model accepted")
	}
	if err := p.Attach("m", tinyModel(3, db.Dim+1, wl.TMax), db, train, valid); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if err := p.Attach("m", m, db, train, nil); err == nil {
		t.Fatal("missing validation queries accepted")
	}
	if err := p.Attach("m", m, db, train, valid); err != nil {
		t.Fatal(err)
	}
	if err := p.Attach("m", m, db, train, valid); err == nil || !strings.Contains(err.Error(), "already attached") {
		t.Fatalf("duplicate attach: %v", err)
	}
}

func TestEnqueueValidation(t *testing.T) {
	db, wl, train, valid := testData(4, 150, 4, 8)
	p, _ := newPipeline(t, Config{Update: neverRetrain()})
	if _, err := p.Enqueue("ghost", [][]float64{{1, 2, 3, 4}}, nil); !errors.Is(err, serve.ErrNotUpdatable) {
		t.Fatalf("unknown model: %v", err)
	}
	if err := p.Attach("m", tinyModel(5, db.Dim, wl.TMax), db, train, valid); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Enqueue("m", [][]float64{{1, 2}}, nil); !errors.Is(err, serve.ErrInvalidUpdate) {
		t.Fatalf("bad insert dim: %v", err)
	}
	if _, err := p.Enqueue("m", nil, [][]float64{{1, 2}}); !errors.Is(err, serve.ErrInvalidUpdate) {
		t.Fatalf("bad delete dim: %v", err)
	}
	ack, err := p.Enqueue("m", [][]float64{{1, 2, 3, 4}}, nil)
	if err != nil || ack.Seq != 1 {
		t.Fatalf("ack %+v err %v", ack, err)
	}
}

func TestForcedRetrainSwapsGeneration(t *testing.T) {
	db, wl, train, valid := testData(6, 200, 4, 10)
	m := tinyModel(7, db.Dim, wl.TMax)
	p, reg := newPipeline(t, Config{Update: forceRetrain()})
	if _, err := reg.Publish("m", m, "test"); err != nil {
		t.Fatal(err)
	}
	if err := p.Attach("m", m, db, train, valid); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	ins := make([][]float64, 30)
	for i := range ins {
		ins[i] = vecdata.SampleLike(rng, db, 0.05)
	}
	ack, err := p.Enqueue("m", ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.WaitApplied("m", ack.Seq) {
		t.Fatal("batch never applied")
	}
	pub, ok := reg.Get("m")
	if !ok || pub.Generation != 2 {
		t.Fatalf("generation %d, want 2 (swap)", pub.Generation)
	}
	if n, ok := pub.Est.(*selnet.Net); !ok || n == m {
		t.Fatal("published estimator is still the original, not the shadow")
	}
	st := p.UpdaterStats()["m"]
	if st.Retrained != 1 || st.Skipped != 0 || st.BatchesApplied != 1 || st.InsertedVecs != 30 {
		t.Fatalf("stats %+v", st)
	}
	if st.AppliedSeq != 1 || st.Lag != 0 || st.SwapGeneration != 2 {
		t.Fatalf("stats %+v", st)
	}
	if db.Size() != 230 {
		t.Fatalf("db size %d, want 230", db.Size())
	}
}

func TestDeltaUAbsorbsSmallChanges(t *testing.T) {
	db, wl, train, valid := testData(9, 200, 4, 10)
	m := tinyModel(10, db.Dim, wl.TMax)
	p, reg := newPipeline(t, Config{Update: neverRetrain()})
	if _, err := reg.Publish("m", m, "test"); err != nil {
		t.Fatal(err)
	}
	if err := p.Attach("m", m, db, train, valid); err != nil {
		t.Fatal(err)
	}
	ack, err := p.Enqueue("m", [][]float64{append([]float64(nil), db.Vecs[0]...)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.WaitApplied("m", ack.Seq) {
		t.Fatal("batch never applied")
	}
	if pub, _ := reg.Get("m"); pub.Generation != 1 {
		t.Fatalf("skip must not swap: generation %d", pub.Generation)
	}
	st := p.UpdaterStats()["m"]
	if st.Skipped != 1 || st.Retrained != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDeleteByValueAppliesAndIgnoresAbsent(t *testing.T) {
	db, wl, train, valid := testData(11, 150, 4, 8)
	m := tinyModel(12, db.Dim, wl.TMax)
	p, reg := newPipeline(t, Config{Update: neverRetrain()})
	reg.Publish("m", m, "test")
	if err := p.Attach("m", m, db, train, valid); err != nil {
		t.Fatal(err)
	}
	victim := append([]float64(nil), db.Vecs[3]...)
	ack, err := p.Enqueue("m", nil, [][]float64{victim, {9, 9, 9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	p.WaitApplied("m", ack.Seq)
	if db.Size() != 149 {
		t.Fatalf("db size %d, want 149", db.Size())
	}
	st := p.UpdaterStats()["m"]
	if st.DeletedVecs != 1 {
		t.Fatalf("deleted %d, want 1 (absent vector ignored)", st.DeletedVecs)
	}
}

func TestCoalescingFusesPendingBatches(t *testing.T) {
	db, wl, train, valid := testData(13, 200, 4, 10)
	m := tinyModel(14, db.Dim, wl.TMax)
	gate := make(chan struct{})
	entered := make(chan string, 8)
	var cycles []Cycle
	done := make(chan struct{}, 8)
	p, reg := newPipeline(t, Config{
		Update:        neverRetrain(),
		BeforeRetrain: func(model string) { entered <- model; <-gate },
		OnCycle:       func(model string, c Cycle) { cycles = append(cycles, c); done <- struct{}{} },
	})
	reg.Publish("m", m, "test")
	if err := p.Attach("m", m, db, train, valid); err != nil {
		t.Fatal(err)
	}
	vec := func() [][]float64 { return [][]float64{append([]float64(nil), db.Vecs[0]...)} }
	if _, err := p.Enqueue("m", vec(), nil); err != nil {
		t.Fatal(err)
	}
	<-entered // worker holds batch 1, queue is empty again
	for i := 0; i < 3; i++ {
		if _, err := p.Enqueue("m", vec(), nil); err != nil {
			t.Fatal(err)
		}
	}
	gate <- struct{}{} // finish cycle 1
	<-done
	<-entered // cycle 2 claimed; it must have coalesced batches 2-4
	gate <- struct{}{}
	<-done
	if len(cycles) != 2 {
		t.Fatalf("%d cycles, want 2", len(cycles))
	}
	if cycles[0].Batches != 1 || cycles[1].Batches != 3 {
		t.Fatalf("cycle batches %d, %d; want 1, 3", cycles[0].Batches, cycles[1].Batches)
	}
	if cycles[1].FirstSeq != 2 || cycles[1].LastSeq != 4 {
		t.Fatalf("cycle 2 seqs %d-%d, want 2-4", cycles[1].FirstSeq, cycles[1].LastSeq)
	}
}

func TestBackpressureAndDrainOnClose(t *testing.T) {
	db, wl, train, valid := testData(15, 200, 4, 10)
	m := tinyModel(16, db.Dim, wl.TMax)
	gate := make(chan struct{})
	entered := make(chan string, 1)
	blocking := true
	p, reg := newPipeline(t, Config{
		QueueDepth: 2,
		Update:     neverRetrain(),
		BeforeRetrain: func(model string) {
			if blocking {
				entered <- model
				<-gate
			}
		},
	})
	reg.Publish("m", m, "test")
	if err := p.Attach("m", m, db, train, valid); err != nil {
		t.Fatal(err)
	}
	vec := func() [][]float64 { return [][]float64{append([]float64(nil), db.Vecs[0]...)} }
	if _, err := p.Enqueue("m", vec(), nil); err != nil {
		t.Fatal(err)
	}
	<-entered // worker busy; queue empty
	// Fill the queue to its depth of 2, then overflow.
	for i := 0; i < 2; i++ {
		if _, err := p.Enqueue("m", vec(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Enqueue("m", vec(), nil); !errors.Is(err, serve.ErrUpdateQueueFull) {
		t.Fatalf("expected backpressure, got %v", err)
	}
	st := p.UpdaterStats()["m"]
	if st.QueueDepth != 2 || st.QueueCapacity != 2 {
		t.Fatalf("queue stats %+v", st)
	}
	// Close must drain the two pending batches before returning.
	blocking = false
	gate <- struct{}{}
	p.Close()
	st = p.UpdaterStats()["m"]
	if st.BatchesApplied != 3 || st.Lag != 0 {
		t.Fatalf("drain incomplete: %+v", st)
	}
	if _, err := p.Enqueue("m", vec(), nil); !errors.Is(err, serve.ErrUpdaterClosed) {
		t.Fatalf("enqueue after close: %v", err)
	}
}

// A model hot-swapped in manually (POST /v1/models/{name}) must become
// the pipeline's new shadow base instead of being silently reverted by
// the next update cycle's publish.
func TestExternallyLoadedModelIsAdopted(t *testing.T) {
	db, wl, train, valid := testData(18, 200, 4, 10)
	m := tinyModel(19, db.Dim, wl.TMax)
	var adopted []bool
	done := make(chan struct{}, 4)
	p, reg := newPipeline(t, Config{
		Update:  forceRetrain(),
		OnCycle: func(_ string, c Cycle) { adopted = append(adopted, c.Adopted); done <- struct{}{} },
	})
	reg.Publish("m", m, "test")
	if err := p.Attach("m", m, db, train, valid); err != nil {
		t.Fatal(err)
	}
	// Operator swaps in a different model out-of-band.
	ext := tinyModel(20, db.Dim, wl.TMax)
	if _, err := reg.Publish("m", ext, "manual"); err != nil {
		t.Fatal(err)
	}
	ack, err := p.Enqueue("m", [][]float64{append([]float64(nil), db.Vecs[0]...)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.WaitApplied("m", ack.Seq) {
		t.Fatal("batch never applied")
	}
	<-done
	if len(adopted) != 1 || !adopted[0] {
		t.Fatalf("external model not adopted: %v", adopted)
	}
	// The retrained publish must derive from ext, not from the original
	// attach lineage: generation 3 (attach=1, manual=2, retrain=3) and a
	// fresh clone distinct from both.
	pub, _ := reg.Get("m")
	if pub.Generation != 3 {
		t.Fatalf("generation %d, want 3", pub.Generation)
	}
	n, ok := pub.Est.(*selnet.Net)
	if !ok || n == m || n == ext {
		t.Fatalf("published model is not a shadow clone of the adopted model")
	}
	// A second cycle must not re-adopt (the pipeline's publish is current).
	ack, err = p.Enqueue("m", [][]float64{append([]float64(nil), db.Vecs[1]...)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.WaitApplied("m", ack.Seq)
	<-done
	if len(adopted) != 2 || adopted[1] {
		t.Fatalf("unexpected re-adoption: %v", adopted)
	}
}

func TestPartitionedModelPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := vecdata.SyntheticFace(rng, 150, 4)
	wl := vecdata.GeometricWorkload(rng, db, 8, 3)
	cut := len(wl.Queries) * 3 / 4
	train, valid := wl.Queries[:cut], wl.Queries[cut:]
	pcfg := selnet.PartitionedConfig{
		Model: selnet.Config{
			L: 3, EmbedDim: 4, AEHidden: []int{8}, AELatent: 4,
			TauHidden: []int{8}, MHidden: []int{8},
			TMax: wl.TMax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
		},
		K: 2, Ratio: 0.2, Method: partition.CoverTree, Beta: 0.1, PretrainEpochs: 0,
	}
	pm := selnet.NewPartitioned(rng, db, pcfg)

	p, reg := newPipeline(t, Config{Update: forceRetrain()})
	if _, err := reg.Publish("pm", pm, "test"); err != nil {
		t.Fatal(err)
	}
	if err := p.Attach("pm", pm, db, train, valid); err != nil {
		t.Fatal(err)
	}
	ins := make([][]float64, 10)
	for i := range ins {
		ins[i] = vecdata.SampleLike(rng, db, 0.05)
	}
	del := [][]float64{append([]float64(nil), db.Vecs[0]...)}
	ack, err := p.Enqueue("pm", ins, del)
	if err != nil {
		t.Fatal(err)
	}
	if !p.WaitApplied("pm", ack.Seq) {
		t.Fatal("batch never applied")
	}
	pub, _ := reg.Get("pm")
	if pub.Generation != 2 {
		t.Fatalf("generation %d, want 2", pub.Generation)
	}
	// The swapped-in shadow must carry the structural change: cluster
	// sizes sum to the updated database size.
	shadow, ok := pub.Est.(*selnet.Partitioned)
	if !ok {
		t.Fatalf("published estimator is %T", pub.Est)
	}
	total := 0
	for _, s := range shadow.ClusterSizes() {
		total += s
	}
	if total != db.Size() || db.Size() != 159 {
		t.Fatalf("cluster total %d, db %d, want 159", total, db.Size())
	}
	// The original model must be untouched (still 150 vectors).
	origTotal := 0
	for _, s := range pm.ClusterSizes() {
		origTotal += s
	}
	if origTotal != 150 {
		t.Fatalf("original model mutated: %d", origTotal)
	}
}
