package ingest

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"selnet/internal/distance"
	"selnet/internal/vecdata"
)

func TestVCSampleSize(t *testing.T) {
	// m = ceil(0.5/eps^2 * (vc + ln(1/delta)))
	got := VCSampleSize(0.05, 0.01, 4)
	want := int(math.Ceil(0.5 / (0.05 * 0.05) * (4 + math.Log(100))))
	if got != want {
		t.Fatalf("VCSampleSize(0.05, 0.01, 4) = %d, want %d", got, want)
	}
	// Tighter eps demands more samples; higher VC dimension too.
	if VCSampleSize(0.01, 0.01, 4) <= got {
		t.Fatal("smaller eps should need more samples")
	}
	if VCSampleSize(0.05, 0.01, 10) <= got {
		t.Fatal("larger VC dim should need more samples")
	}
	// Degenerate parameters fall back to 1 instead of exploding.
	for _, bad := range [][3]float64{{0, 0.01, 4}, {1, 0.01, 4}, {0.05, 0, 4}, {0.05, 1, 4}, {0.05, 0.01, 0}} {
		if got := VCSampleSize(bad[0], bad[1], int(bad[2])); got != 1 {
			t.Fatalf("VCSampleSize(%v) = %d, want 1", bad, got)
		}
	}
}

func TestDBOracleExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := vecdata.SyntheticFasttext(rng, 200, 4, distance.Euclidean)
	o := NewDBOracle(db, OracleConfig{Budget: 2000})
	x := db.Vecs[0]
	v, method := o.TrueSelectivity(x, 0.5)
	if method != "exact" {
		t.Fatalf("method = %q, want exact for db smaller than budget", method)
	}
	if want := db.Selectivity(x, 0.5); v != want {
		t.Fatalf("exact selectivity = %v, want %v", v, want)
	}
}

func TestDBOracleSampleLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := vecdata.SyntheticFasttext(rng, 5000, 4, distance.Euclidean)
	o := NewDBOracle(db, OracleConfig{Budget: 1500, Epsilon: 0.05, Delta: 0.01})
	x := db.Vecs[0]
	t1 := 1.0
	v, method := o.TrueSelectivity(x, t1)
	if method != "sample" {
		t.Fatalf("method = %q, want sample for l2 db larger than budget", method)
	}
	// The VC bound promises |estimate - truth| <= eps*|D| w.p. 1-delta;
	// allow 2x slack so the test never flakes.
	truth := db.Selectivity(x, t1)
	if diff := math.Abs(v - truth); diff > 2*0.05*float64(db.Size()) {
		t.Fatalf("sampled selectivity %v vs truth %v: off by %v", v, truth, diff)
	}
	// Deterministic: same query, same sample, same answer.
	v2, _ := o.TrueSelectivity(x, t1)
	if v2 != v {
		t.Fatalf("sampled selectivity not deterministic: %v then %v", v, v2)
	}
	// Monotone in t on the shared sample stream.
	lo, _ := o.TrueSelectivity(x, 0.5)
	hi, _ := o.TrueSelectivity(x, 2.0)
	if lo > v || v > hi {
		t.Fatalf("sampled selectivity not monotone in t: %v, %v, %v", lo, v, hi)
	}
}

func TestDBOracleLSHCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := vecdata.SyntheticFace(rng, 3000, 8)
	o := NewDBOracle(db, OracleConfig{Budget: 1000})
	x := db.Vecs[0]
	v, method := o.TrueSelectivity(x, 0.3)
	if method != "lsh" {
		t.Fatalf("method = %q, want lsh for cosine db larger than budget", method)
	}
	truth := db.Selectivity(x, 0.3)
	if truth > 0 && (v < truth/20 || v > truth*20) {
		t.Fatalf("lsh selectivity %v wildly off truth %v", v, truth)
	}
}

func TestDBOracleMutationVersioning(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := vecdata.SyntheticFace(rng, 3000, 8)
	o := NewDBOracle(db, OracleConfig{Budget: 1000})
	x := append([]float64(nil), db.Vecs[0]...)
	before, method := o.TrueSelectivity(x, 0.3)
	if method != "lsh" {
		t.Fatalf("method = %q, want lsh", method)
	}
	// Duplicate the first 500 vectors under the mutation bracket; the
	// refreshed signatures must see them (estimate grows).
	o.BeginMutate()
	for i := 0; i < 500; i++ {
		db.Vecs = append(db.Vecs, append([]float64(nil), db.Vecs[i]...))
	}
	o.EndMutate()
	after, method := o.TrueSelectivity(x, 0.3)
	if method != "lsh" {
		t.Fatalf("post-mutation method = %q, want lsh", method)
	}
	if after <= before {
		t.Fatalf("estimate did not grow after inserting duplicates: %v -> %v", before, after)
	}
}

func TestDBOracleConcurrentMutateAndRead(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := vecdata.SyntheticFasttext(rng, 4000, 4, distance.Euclidean)
	o := NewDBOracle(db, OracleConfig{Budget: 500})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			o.BeginMutate()
			db.Vecs = append(db.Vecs, vecdata.SampleLike(rng, db, 0.05))
			o.EndMutate()
		}
	}()
	go func() {
		defer wg.Done()
		x := append([]float64(nil), db.Vecs[0]...)
		for i := 0; i < 200; i++ {
			o.TrueSelectivity(x, 1.0)
		}
	}()
	wg.Wait()
}
