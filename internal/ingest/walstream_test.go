package ingest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

func tailAll(t *testing.T, tl *WALTailer, max int) []Entry {
	t.Helper()
	out, err := tl.Next(max)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func seqsOf(entries []Entry) []uint64 {
	out := make([]uint64, len(entries))
	for i, e := range entries {
		out[i] = e.Seq
	}
	return out
}

// TestTailWALResumeMidLog is the follower-catch-up path: a tailer opened
// with an arbitrary mid-log resume sequence must emit exactly the
// entries past it, in order, and re-tailing the same range again (a
// follower re-requesting an already-applied batch) must skip what the
// floor already covers — replay idempotence.
func TestTailWALResumeMidLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	var all []Entry
	for seq := uint64(1); seq <= 10; seq++ {
		all = append(all, testEntry(seq, float64(seq)))
	}
	appendAll(t, w, all...)

	tl, err := TailWAL(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	got := tailAll(t, tl, 100)
	if len(got) != 5 || got[0].Seq != 6 || got[4].Seq != 10 {
		t.Fatalf("resume after 5 emitted seqs %v, want 6..10", seqsOf(got))
	}
	if got[0].At.UnixNano() != all[5].At.UnixNano() || len(got[0].Insert) != len(all[5].Insert) {
		t.Fatalf("entry payload mismatch: %+v vs %+v", got[0], all[5])
	}
	if more := tailAll(t, tl, 100); len(more) != 0 {
		t.Fatalf("drained tailer emitted %v", seqsOf(more))
	}

	// A fresh tailer re-requesting an already-consumed position replays
	// the same suffix — pulling twice never duplicates ahead of the floor.
	again, err := TailWAL(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if got := tailAll(t, again, 100); len(got) != 2 || got[0].Seq != 9 || got[1].Seq != 10 {
		t.Fatalf("re-request after 8 emitted %v, want 9..10", seqsOf(got))
	}
}

// TestTailWALFollowsLiveAppends proves the tailer sees records appended
// after it was opened, respecting the max chunk size.
func TestTailWALFollowsLiveAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	appendAll(t, w, testEntry(1, 1))

	tl, err := TailWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if got := tailAll(t, tl, 100); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("initial read %v", seqsOf(got))
	}
	if got := tailAll(t, tl, 100); len(got) != 0 {
		t.Fatalf("idle read %v", seqsOf(got))
	}

	appendAll(t, w, testEntry(2, 2), testEntry(3, 3), testEntry(4, 4))
	if got := tailAll(t, tl, 2); len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("live read capped at 2 got %v", seqsOf(got))
	}
	if got := tailAll(t, tl, 2); len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("live read tail got %v", seqsOf(got))
	}
	if tl.LastSeq() != 4 {
		t.Fatalf("LastSeq %d, want 4", tl.LastSeq())
	}
}

// TestTailWALIgnoresTornTail: a torn (partially written) record must not
// be emitted and must not advance the cursor; once the writer completes
// it (simulated by truncating the garbage and appending properly) the
// stream resumes.
func TestTailWALIgnoresTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	appendAll(t, w, testEntry(1, 1))

	tl, err := TailWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if got := tailAll(t, tl, 10); len(got) != 1 {
		t.Fatalf("initial read %v", seqsOf(got))
	}

	// Simulate a torn append: write only the first half of a record's
	// frame directly, bypassing the WAL (which refuses partial writes).
	rec := frameWALRecord(encodeWALOps(testEntry(2, 2)))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[:len(rec)/2]); err != nil {
		t.Fatal(err)
	}
	if got := tailAll(t, tl, 10); len(got) != 0 {
		t.Fatalf("torn tail emitted %v", seqsOf(got))
	}
	if _, err := f.Write(rec[len(rec)/2:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := tailAll(t, tl, 10); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("completed tail got %v, want seq 2", seqsOf(got))
	}
}

// TestTailWALSurvivesCompaction: compaction replaces the log file via
// rename; an open tailer must detect the swap, reopen, and keep
// streaming from its floor without duplicates. A tailer whose position
// was compacted away must fail with ErrWALCompacted.
func TestTailWALSurvivesCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	appendAll(t, w, testEntry(1, 1), testEntry(2, 2), testEntry(3, 3), testEntry(4, 4))

	tl, err := TailWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if got := tailAll(t, tl, 3); len(got) != 3 {
		t.Fatalf("pre-compaction read %v", seqsOf(got))
	}

	if err := w.Compact(3); err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, testEntry(5, 5))
	got := tailAll(t, tl, 10)
	if len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("post-compaction read %v, want 4..5", seqsOf(got))
	}

	// A tailer far behind the compaction horizon cannot catch up from
	// the log alone.
	if _, err := TailWAL(path, 1); !errors.Is(err, ErrWALCompacted) {
		t.Fatalf("stale resume: %v, want ErrWALCompacted", err)
	}

	// An open tailer that falls behind a later compaction hits the same
	// error on its next read.
	lag, err := TailWAL(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer lag.Close()
	if err := w.Compact(5); err != nil {
		t.Fatal(err)
	}
	if _, err := lag.Next(10); !errors.Is(err, ErrWALCompacted) {
		t.Fatalf("lagging tailer: %v, want ErrWALCompacted", err)
	}
}

// TestJournalAppendAt covers the follower-side journal write: in-order
// replicated entries are accepted, duplicates are skipped without error,
// and a sequence gap is refused.
func TestJournalAppendAt(t *testing.T) {
	j := newJournal(3, nil)
	if ok, err := j.appendAt(Entry{Seq: 1, At: time.Unix(0, 1)}); !ok || err != nil {
		t.Fatalf("seq 1: ok=%v err=%v", ok, err)
	}
	if ok, err := j.appendAt(Entry{Seq: 1, At: time.Unix(0, 1)}); ok || err != nil {
		t.Fatalf("duplicate seq 1: ok=%v err=%v (want skipped, no error)", ok, err)
	}
	if ok, err := j.appendAt(Entry{Seq: 3, At: time.Unix(0, 1)}); ok || err == nil {
		t.Fatalf("gap seq 3: ok=%v err=%v (want error)", ok, err)
	}
	if ok, err := j.appendAt(Entry{Seq: 2, At: time.Unix(0, 1)}); !ok || err != nil {
		t.Fatalf("seq 2: ok=%v err=%v", ok, err)
	}
	// Local appends continue the replicated sequence.
	e, _, err := j.append([][]float64{{1}}, nil)
	if err != nil || e.Seq != 3 {
		t.Fatalf("append after replicate: seq %d err %v, want 3", e.Seq, err)
	}
	// Backpressure applies to replication too.
	if _, err := j.appendAt(Entry{Seq: 4}); !errors.Is(err, serve.ErrUpdateQueueFull) {
		t.Fatalf("full queue: %v", err)
	}
	j.close()
	if _, err := j.appendAt(Entry{Seq: 4}); !errors.Is(err, serve.ErrUpdaterClosed) {
		t.Fatalf("closed journal: %v", err)
	}
}

// TestPipelineReplicate streams one durable pipeline's WAL into another
// through TailWAL + Replicate — the in-process form of leader→follower
// replication — and proves the follower applies the batches through its
// normal worker path, idempotently under re-delivery.
func TestPipelineReplicate(t *testing.T) {
	db, wl, train, valid := testData(31, 150, 4, 8)
	leaderDB := db.Clone()
	followerDB := db.Clone()

	leader, _ := newPipeline(t, Config{
		Update:  neverRetrain(),
		Journal: JournalConfig{Dir: t.TempDir()},
	})
	if err := leader.Attach("m", tinyModel(32, db.Dim, wl.TMax), leaderDB, train, valid); err != nil {
		t.Fatal(err)
	}
	follower, _ := newPipeline(t, Config{
		Update:  neverRetrain(),
		Journal: JournalConfig{Dir: t.TempDir()},
	})
	fTrain := append([]vecdata.Query(nil), train...)
	fValid := append([]vecdata.Query(nil), valid...)
	if err := follower.Attach("m", tinyModel(32, db.Dim, wl.TMax), followerDB, fTrain, fValid); err != nil {
		t.Fatal(err)
	}

	var lastSeq uint64
	for i := 0; i < 5; i++ {
		ack, err := leader.Enqueue("m", [][]float64{{float64(i), 1, 2, 3}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = ack.Seq
	}
	if !leader.WaitApplied("m", lastSeq) {
		t.Fatal("leader never applied")
	}

	tl, err := leader.TailWAL("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	entries := tailAll(t, tl, 100)
	if len(entries) != 5 {
		t.Fatalf("tailed %d entries, want 5", len(entries))
	}

	accepted, err := follower.Replicate("m", entries)
	if err != nil || accepted != 5 {
		t.Fatalf("replicate: accepted %d err %v", accepted, err)
	}
	// Re-delivering the same chunk (a follower re-pull) journals nothing.
	accepted, err = follower.Replicate("m", entries)
	if err != nil || accepted != 0 {
		t.Fatalf("re-replicate: accepted %d err %v, want 0", accepted, err)
	}
	if !follower.WaitApplied("m", lastSeq) {
		t.Fatal("follower never applied")
	}
	last, applied, ok := follower.Position("m")
	if !ok || last != lastSeq || applied != lastSeq {
		t.Fatalf("follower position last=%d applied=%d ok=%v, want %d", last, applied, ok, lastSeq)
	}
	if followerDB.Size() != leaderDB.Size() {
		t.Fatalf("databases diverged: follower %d vs leader %d vectors", followerDB.Size(), leaderDB.Size())
	}

	// A replication gap is refused before anything is journaled.
	if _, err := follower.Replicate("m", []Entry{testEntryDim(lastSeq+2, db.Dim)}); err == nil {
		t.Fatal("gap accepted")
	}
	// Unknown models and bad dims are rejected up front.
	if _, err := follower.Replicate("ghost", entries); !errors.Is(err, serve.ErrNotUpdatable) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := follower.Replicate("m", []Entry{testEntry(lastSeq+1, 9)}); !errors.Is(err, serve.ErrInvalidUpdate) {
		t.Fatalf("bad dim: %v", err)
	}
}

func testEntryDim(seq uint64, dim int) Entry {
	v := make([]float64, dim)
	return Entry{Seq: seq, At: time.Unix(0, 1), Insert: [][]float64{v}}
}
