package ingest

import (
	"sync"
	"time"

	"selnet/internal/serve"
)

// Entry is one journaled update batch. Sequence numbers start at 1 and
// are assigned in arrival order; the journal is append-only, so a
// model's update history is totally ordered and "has batch N taken
// effect yet?" reduces to comparing N against the applied sequence.
type Entry struct {
	Seq    uint64
	At     time.Time
	Insert [][]float64
	Delete [][]float64
}

// journal is one model's append-only update log: the producer side of
// the pipeline appends batches under queue-depth backpressure, the
// worker claims pending entries in sequence order (several at a time —
// coalescing), and appliers acknowledge with markApplied so waiters can
// block until a given sequence is live.
type journal struct {
	mu   sync.Mutex
	cond *sync.Cond

	depth    int // max pending entries before backpressure
	next     uint64
	applied  uint64
	pending  []Entry
	inFlight int // entries claimed but not yet acknowledged
	closed   bool
}

func newJournal(depth int) *journal {
	j := &journal{depth: depth, next: 1}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// append journals one batch, returning the entry and the pending depth
// after it. It fails with serve.ErrUpdateQueueFull under backpressure
// and serve.ErrUpdaterClosed after close.
func (j *journal) append(insert, del [][]float64) (Entry, int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return Entry{}, 0, serve.ErrUpdaterClosed
	}
	if len(j.pending) >= j.depth {
		return Entry{}, 0, serve.ErrUpdateQueueFull
	}
	e := Entry{Seq: j.next, At: time.Now(), Insert: insert, Delete: del}
	j.next++
	j.pending = append(j.pending, e)
	j.cond.Broadcast()
	return e, len(j.pending), nil
}

// claim blocks until at least one entry is pending (or the journal is
// closed and drained, returning nil) and takes up to max entries in
// sequence order. Claimed entries must be acknowledged via markApplied.
func (j *journal) claim(max int) []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.pending) == 0 && !j.closed {
		j.cond.Wait()
	}
	if len(j.pending) == 0 {
		return nil
	}
	n := max
	if n > len(j.pending) {
		n = len(j.pending)
	}
	out := append([]Entry(nil), j.pending[:n]...)
	j.pending = append(j.pending[:0], j.pending[n:]...)
	j.inFlight += n
	return out
}

// markApplied acknowledges every claimed entry up to and including seq.
func (j *journal) markApplied(seq uint64, entries int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq > j.applied {
		j.applied = seq
	}
	j.inFlight -= entries
	j.cond.Broadcast()
}

// waitApplied blocks until the applied sequence reaches seq. It returns
// false if the journal closed with seq still unreachable (never
// journaled, or the pipeline aborted before applying it).
func (j *journal) waitApplied(seq uint64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.applied < seq {
		if j.closed && len(j.pending) == 0 && j.inFlight == 0 {
			return false
		}
		j.cond.Wait()
	}
	return true
}

// close stops accepting appends. Pending entries remain claimable so the
// worker can drain them.
func (j *journal) close() {
	j.mu.Lock()
	j.closed = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

// snapshot reports (last assigned seq, applied seq, pending depth).
func (j *journal) snapshot() (lastSeq, applied uint64, depth int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next - 1, j.applied, len(j.pending)
}
