package ingest

import (
	"fmt"
	"sync"
	"time"

	"selnet/internal/serve"
)

// Entry is one journaled update batch. Sequence numbers start at 1 and
// are assigned in arrival order; the journal is append-only, so a
// model's update history is totally ordered and "has batch N taken
// effect yet?" reduces to comparing N against the applied sequence.
type Entry struct {
	Seq    uint64
	At     time.Time
	Insert [][]float64
	Delete [][]float64
}

// journalStore is the durability seam under a journal. Append is called
// under the journal lock — the same critical section that assigns the
// sequence number — so record order on disk always matches sequence
// order; it must only buffer (no fsync). Sync runs outside the lock and
// makes every previously appended record durable before the batch is
// acknowledged; concurrent producers group-commit through it. The
// in-memory memStore keeps the pre-WAL behavior for tests and for
// pipelines without a journal directory; *WAL is the durable one.
type journalStore interface {
	Append(e Entry) error
	Sync() error
}

// memStore is the in-memory journal backing: entries live only in the
// pending queue and durability is a no-op.
type memStore struct{}

func (memStore) Append(Entry) error { return nil }
func (memStore) Sync() error        { return nil }

// journal is one model's append-only update log: the producer side of
// the pipeline appends batches under queue-depth backpressure, the
// worker claims pending entries in sequence order (several at a time —
// coalescing), and appliers acknowledge with markApplied so waiters can
// block until a given sequence is live.
type journal struct {
	mu    sync.Mutex
	cond  *sync.Cond
	store journalStore

	depth    int // max pending entries before backpressure
	next     uint64
	applied  uint64
	pending  []Entry
	inFlight int // entries claimed but not yet acknowledged
	closed   bool
}

func newJournal(depth int, store journalStore) *journal {
	if store == nil {
		store = memStore{}
	}
	j := &journal{depth: depth, next: 1, store: store}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// restore seeds a freshly built journal with recovered durable state:
// the applied watermark of the snapshot the database was loaded from,
// and the surviving log entries awaiting replay. Entries at or below
// the watermark are dropped — the snapshot already reflects them, so
// replay stays idempotent even when the log retains an applied prefix.
// Call before the worker starts claiming.
func (j *journal) restore(applied uint64, entries []Entry) (replayed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.applied = applied
	j.next = applied + 1
	for _, e := range entries {
		if e.Seq <= applied {
			continue
		}
		j.pending = append(j.pending, e)
		if e.Seq >= j.next {
			j.next = e.Seq + 1
		}
	}
	return len(j.pending)
}

// append journals one batch, returning the entry and the pending depth
// after it. It fails with serve.ErrUpdateQueueFull under backpressure
// and serve.ErrUpdaterClosed after close. The store write happens in the
// same critical section as the sequence assignment (so the log's record
// order matches sequence order); the fsync is group-committed outside
// it, and the entry is only acknowledged once durable.
func (j *journal) append(insert, del [][]float64) (Entry, int, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return Entry{}, 0, serve.ErrUpdaterClosed
	}
	if len(j.pending) >= j.depth {
		j.mu.Unlock()
		return Entry{}, 0, serve.ErrUpdateQueueFull
	}
	e := Entry{Seq: j.next, At: time.Now(), Insert: insert, Delete: del}
	if err := j.store.Append(e); err != nil {
		// Nothing reached the log and the sequence was never exposed, so
		// it can be handed to the next batch.
		j.mu.Unlock()
		return Entry{}, 0, err
	}
	j.next++
	j.pending = append(j.pending, e)
	depth := len(j.pending)
	j.cond.Broadcast()
	j.mu.Unlock()

	if err := j.store.Sync(); err != nil {
		// The record's durability is unknown (it may still replay after a
		// crash) and it stays queued: the worker will apply it. The caller
		// reports the failure instead of acknowledging, trading possible
		// duplicate-on-retry for never losing an acknowledged batch.
		return Entry{}, 0, err
	}
	return e, depth, nil
}

// appendAt journals one batch at its replicated sequence number, the
// follower-side counterpart of append: the leader already assigned the
// sequence, so instead of minting one this verifies that e.Seq continues
// the local journal exactly. Entries at or below the last assigned
// sequence are skipped (accepted=false, nil error) — a follower that
// re-requests a range it already journaled replays idempotently — and a
// gap is a hard error, since applying past a hole would diverge from the
// leader. The caller syncs once per replicated chunk via sync().
func (j *journal) appendAt(e Entry) (accepted bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return false, serve.ErrUpdaterClosed
	}
	if e.Seq < j.next {
		return false, nil
	}
	if e.Seq != j.next {
		return false, fmt.Errorf("ingest: replication gap: journal at seq %d, got %d", j.next-1, e.Seq)
	}
	if len(j.pending) >= j.depth {
		return false, serve.ErrUpdateQueueFull
	}
	if err := j.store.Append(e); err != nil {
		return false, err
	}
	j.next++
	j.pending = append(j.pending, e)
	j.cond.Broadcast()
	return true, nil
}

// sync makes every appended record durable (group-committed).
func (j *journal) sync() error { return j.store.Sync() }

// claim blocks until at least one entry is pending (or the journal is
// closed and drained, returning nil) and takes up to max entries in
// sequence order. Claimed entries must be acknowledged via markApplied.
func (j *journal) claim(max int) []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.pending) == 0 && !j.closed {
		j.cond.Wait()
	}
	if len(j.pending) == 0 {
		return nil
	}
	n := max
	if n > len(j.pending) {
		n = len(j.pending)
	}
	out := append([]Entry(nil), j.pending[:n]...)
	j.pending = append(j.pending[:0], j.pending[n:]...)
	j.inFlight += n
	return out
}

// markApplied acknowledges every claimed entry up to and including seq.
func (j *journal) markApplied(seq uint64, entries int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq > j.applied {
		j.applied = seq
	}
	j.inFlight -= entries
	j.cond.Broadcast()
}

// waitApplied blocks until the applied sequence reaches seq. It returns
// false if the journal closed with seq still unreachable (never
// journaled, or the pipeline aborted before applying it).
func (j *journal) waitApplied(seq uint64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.applied < seq {
		if j.closed && len(j.pending) == 0 && j.inFlight == 0 {
			return false
		}
		j.cond.Wait()
	}
	return true
}

// close stops accepting appends. Pending entries remain claimable so the
// worker can drain them.
func (j *journal) close() {
	j.mu.Lock()
	j.closed = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

// snapshot reports (last assigned seq, applied seq, pending depth).
func (j *journal) snapshot() (lastSeq, applied uint64, depth int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next - 1, j.applied, len(j.pending)
}
