package ingest

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

func testEntry(seq uint64, vals ...float64) Entry {
	ins := make([][]float64, len(vals))
	for i, v := range vals {
		ins[i] = []float64{v, v + 1}
	}
	return Entry{Seq: seq, At: time.Unix(0, 1234), Insert: ins}
}

func openTestWAL(t *testing.T, path string) (*WAL, WALRecovered) {
	t.Helper()
	w, rec, err := OpenWAL(path, "m")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, rec
}

func appendAll(t *testing.T, w *WAL, entries ...Entry) {
	t.Helper()
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, rec := openTestWAL(t, path)
	if len(rec.Entries) != 0 || rec.BaseApplied != 0 {
		t.Fatalf("fresh WAL recovered %+v", rec)
	}
	e1 := testEntry(1, 10)
	e2 := Entry{Seq: 2, At: time.Unix(0, 99), Delete: [][]float64{{10, 11}}}
	e3 := testEntry(3, 30, 31)
	appendAll(t, w, e1, e2, e3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec2 := openTestWAL(t, path)
	defer w2.Close()
	if len(rec2.Entries) != 3 || rec2.DiscardedBytes != 0 {
		t.Fatalf("recovered %d entries, %d discarded", len(rec2.Entries), rec2.DiscardedBytes)
	}
	got := rec2.Entries[2]
	if got.Seq != 3 || len(got.Insert) != 2 || got.Insert[1][0] != 31 || got.At.UnixNano() != 1234 {
		t.Fatalf("entry 3 corrupted: %+v", got)
	}
	if del := rec2.Entries[1]; len(del.Delete) != 1 || del.Delete[0][1] != 11 {
		t.Fatalf("delete entry corrupted: %+v", del)
	}
	// The reopened log accepts further appends with the file position at
	// the recovered tail.
	appendAll(t, w2, testEntry(4, 40))
	w2.Close()
	_, rec3 := openTestWAL(t, path)
	if len(rec3.Entries) != 4 {
		t.Fatalf("after reopen+append: %d entries", len(rec3.Entries))
	}
}

func TestWALEmptyFile(t *testing.T) {
	// A crash between create and the first write leaves a zero-byte file;
	// open must treat it as a fresh log, not corruption.
	path := filepath.Join(t.TempDir(), "m.wal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w, rec := openTestWAL(t, path)
	if len(rec.Entries) != 0 || rec.DiscardedBytes != 0 {
		t.Fatalf("empty file recovered %+v", rec)
	}
	appendAll(t, w, testEntry(1, 5))
}

func TestWALTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	appendAll(t, w, testEntry(1, 10), testEntry(2, 20))
	w.Close()
	// Tear the last record mid-payload, as a crash mid-write would.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := b[:len(b)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, rec := openTestWAL(t, path)
	if len(rec.Entries) != 1 || rec.Entries[0].Seq != 1 {
		t.Fatalf("recovered %+v, want entry 1 only", rec.Entries)
	}
	if rec.DiscardedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The tail must be physically gone so new appends are reachable.
	appendAll(t, w2, testEntry(2, 21))
	w2.Close()
	_, rec2 := openTestWAL(t, path)
	if len(rec2.Entries) != 2 || rec2.Entries[1].Insert[0][0] != 21 {
		t.Fatalf("after truncate+append: %+v", rec2.Entries)
	}
}

func TestWALCRCMismatchMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	appendAll(t, w, testEntry(1, 10), testEntry(2, 20), testEntry(3, 30))
	w.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle record: everything from the
	// corrupt record on is untrusted and discarded, even though record 3
	// is intact — mid-file corruption is not a torn tail.
	mid := len(b) / 2
	b[mid] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openTestWAL(t, path)
	if len(rec.Entries) >= 3 {
		t.Fatalf("corrupt record did not stop the scan: %d entries", len(rec.Entries))
	}
	if rec.DiscardedBytes == 0 {
		t.Fatal("corruption not reported")
	}
	for _, e := range rec.Entries {
		if e.Seq >= 3 {
			t.Fatalf("entry past the corruption survived: %+v", e)
		}
	}
}

func TestWALTornHeaderRebuildsFreshLog(t *testing.T) {
	// A crash during creation can land after the magic but before (or
	// mid-) the header record. Nothing was ever appended, so open must
	// rebuild the log instead of failing the boot.
	path := filepath.Join(t.TempDir(), "m.wal")
	if err := os.WriteFile(path, []byte(walMagic+"\x07\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, rec := openTestWAL(t, path)
	if len(rec.Entries) != 0 || rec.DiscardedBytes == 0 {
		t.Fatalf("torn-header recovery %+v", rec)
	}
	appendAll(t, w, testEntry(1, 1))
	w.Close()
	_, rec2 := openTestWAL(t, path)
	if len(rec2.Entries) != 1 {
		t.Fatalf("rebuilt log recovered %+v", rec2)
	}
}

func TestWALOverflowingCountIsCorruption(t *testing.T) {
	// A CRC-valid record whose vector count would overflow the size
	// arithmetic must read as corruption (scan stops), never reach the
	// allocator.
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	appendAll(t, w, testEntry(1, 1))
	w.Close()
	payload := []byte{walRecOps}
	payload = appendUvarint(payload, 2)             // seq
	payload = append(payload, 0)                    // varint time 0
	payload = appendUvarint(payload, 1)             // dim
	payload = appendUvarint(payload, 1<<61)         // insane insert count
	payload = append(payload, make([]byte, 128)...) // some body
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, frameWALRecord(payload)...)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openTestWAL(t, path)
	if len(rec.Entries) != 1 || rec.DiscardedBytes == 0 {
		t.Fatalf("overflowing record not treated as corruption: %+v", rec)
	}
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func TestWALBadMagicIsHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	if err := os.WriteFile(path, []byte("definitely not a wal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path, "m"); err == nil {
		t.Fatal("foreign file opened as WAL")
	}
}

func TestWALModelNameMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	w.Close()
	if _, _, err := OpenWAL(path, "other"); err == nil {
		t.Fatal("WAL for model m opened as other")
	}
}

func TestWALCompactDropsAppliedPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	appendAll(t, w, testEntry(1, 1), testEntry(2, 2), testEntry(3, 3), testEntry(4, 4))
	before := w.Stats()
	if err := w.Compact(2); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != 2 || st.BaseApplied != 2 || st.Compactions != 1 {
		t.Fatalf("post-compact stats %+v", st)
	}
	if st.Size >= before.Size {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size, st.Size)
	}
	// Appends continue on the compacted file and survive a reopen.
	appendAll(t, w, testEntry(5, 5))
	w.Close()
	_, rec := openTestWAL(t, path)
	if rec.BaseApplied != 2 || len(rec.Entries) != 3 {
		t.Fatalf("recovered base %d, %d entries; want 2, 3", rec.BaseApplied, len(rec.Entries))
	}
	if rec.Entries[0].Seq != 3 || rec.Entries[2].Seq != 5 {
		t.Fatalf("recovered seqs %+v", rec.Entries)
	}
}

// TestWALConcurrentAppendSyncCompactStats hammers the four WAL
// operations from separate goroutines: no record acknowledged by Sync
// may be lost across interleaved compactions, and (under -race) the
// locking must hold up. Run it with -race.
func TestWALConcurrentAppendSyncCompactStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	const total = 200
	const compactTo = 50 // watermark: applied before the compactor starts
	// Seed the log past the watermark first — Compact's contract is that
	// `applied` is already applied, so live appends always carry higher
	// sequences than any concurrent compaction watermark.
	for seq := uint64(1); seq <= compactTo; seq++ {
		if err := w.Append(testEntry(seq, float64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if err := w.Compact(compactTo); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			w.Stats()
		}
	}()
	for seq := uint64(compactTo + 1); seq <= total; seq++ {
		if err := w.Append(testEntry(seq, float64(seq))); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	w.Close()
	_, rec := openTestWAL(t, path)
	if rec.BaseApplied != compactTo {
		t.Fatalf("base applied %d, want %d", rec.BaseApplied, compactTo)
	}
	// Every acknowledged record past the compaction watermark survived,
	// in order.
	if len(rec.Entries) != total-compactTo {
		t.Fatalf("recovered %d entries, want %d", len(rec.Entries), total-compactTo)
	}
	for i, e := range rec.Entries {
		if e.Seq != uint64(compactTo+i+1) {
			t.Fatalf("entry %d has seq %d, want %d", i, e.Seq, compactTo+i+1)
		}
	}
}

func TestJournalRestoreSkipsAppliedEntries(t *testing.T) {
	// Replay idempotence: when the snapshot's applied sequence is ahead
	// of (or equal to) surviving log entries, those entries must not be
	// queued again.
	j := newJournal(8, nil)
	n := j.restore(3, []Entry{testEntry(2, 2), testEntry(3, 3), testEntry(4, 4), testEntry(5, 5)})
	if n != 2 {
		t.Fatalf("restored %d entries, want 2 (seqs 4, 5)", n)
	}
	got := j.claim(10)
	if len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("claimed %+v", got)
	}
	// New sequence numbers continue past the restored tail.
	e, _, err := j.append([][]float64{{1, 2}}, nil)
	if err != nil || e.Seq != 6 {
		t.Fatalf("append after restore: seq %d err %v", e.Seq, err)
	}
	if _, applied, _ := j.snapshot(); applied != 3 {
		t.Fatalf("applied watermark %d, want 3", applied)
	}
}

func TestJournalRestoreAppliedAheadOfLog(t *testing.T) {
	// The watermark can sit past every surviving record (e.g. the log was
	// compacted right before the crash); nothing replays and sequences
	// continue from the watermark.
	j := newJournal(8, nil)
	if n := j.restore(7, []Entry{testEntry(6, 6), testEntry(7, 7)}); n != 0 {
		t.Fatalf("restored %d entries, want 0", n)
	}
	e, _, err := j.append([][]float64{{1, 2}}, nil)
	if err != nil || e.Seq != 8 {
		t.Fatalf("append: seq %d err %v", e.Seq, err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(40))
	db := vecdata.SyntheticFace(rng, 60, 4)
	m := tinyModel(41, db.Dim, 1.0)
	path := snapshotPath(dir, "m")
	if err := writeSnapshot(path, "m", modelSnapshot{appliedSeq: 9, db: db, model: m}); err != nil {
		t.Fatal(err)
	}
	s, ok, err := loadSnapshot(path, "m")
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if s.appliedSeq != 9 || s.db.Size() != 60 || s.db.Dim != 4 || s.db.Dist != db.Dist {
		t.Fatalf("snapshot header %+v", s)
	}
	if s.model == nil {
		t.Fatal("model not restored")
	}
	q := db.Vecs[0]
	if got, want := s.model.Estimate(q, 0.5), m.Estimate(q, 0.5); got != want {
		t.Fatalf("restored model estimates %v, original %v", got, want)
	}
	if _, ok, _ := loadSnapshot(snapshotPath(dir, "ghost"), "ghost"); ok {
		t.Fatal("nonexistent snapshot loaded")
	}
	if _, _, err := loadSnapshot(path, "other"); err == nil {
		t.Fatal("snapshot for m loaded as other")
	}
}

// TestPipelineJournalRecovery is the in-process durability acceptance
// test: batches enqueued against a journaled pipeline must, after the
// process state is thrown away (a new pipeline over the same directory,
// with a fresh pristine database copy), be replayed so the database and
// counters converge to the pre-crash state.
func TestPipelineJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	db, wl, train, valid := testData(50, 150, 4, 8)
	pristine := db.Clone()
	m := tinyModel(51, db.Dim, wl.TMax)

	reg := serve.NewRegistry(nil)
	if _, err := reg.Publish("m", m, "test"); err != nil {
		t.Fatal(err)
	}
	p1 := New(Config{
		Registry: reg,
		Train:    tinyTrain(),
		Update:   neverRetrain(),
		Journal:  JournalConfig{Dir: dir},
	})
	if err := p1.Attach("m", m, db, train, valid); err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		ins := [][]float64{{float64(i), 1, 2, 3}}
		ack, err := p1.Enqueue("m", ins, nil)
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = ack.Seq
	}
	if !p1.WaitApplied("m", lastSeq) {
		t.Fatal("batches never applied")
	}
	st := p1.UpdaterStats()["m"]
	if !st.Durable || st.JournaledBatches != 5 {
		t.Fatalf("pre-crash stats %+v", st)
	}
	p1.Close()

	// "Crash": p1 is gone; nothing of its in-memory state survives. A new
	// pipeline over the same journal dir starts from the pristine CSV-
	// equivalent database and must replay all five batches.
	var recovered Recovery
	p2 := New(Config{
		Registry: serve.NewRegistry(nil),
		Train:    tinyTrain(),
		Update:   neverRetrain(),
		Journal: JournalConfig{
			Dir:       dir,
			OnRecover: func(_ string, r Recovery) { recovered = r },
		},
	})
	t.Cleanup(p2.Close)
	train2 := append([]vecdata.Query(nil), train...)
	valid2 := append([]vecdata.Query(nil), valid...)
	if err := p2.Attach("m", tinyModel(52, db.Dim, wl.TMax), pristine, train2, valid2); err != nil {
		t.Fatal(err)
	}
	if recovered.Replayed != 5 || recovered.SnapshotSeq != 0 {
		t.Fatalf("recovery %+v, want 5 replayed from seq 0", recovered)
	}
	if !p2.WaitApplied("m", lastSeq) {
		t.Fatal("replayed batches never applied")
	}
	st2 := p2.UpdaterStats()["m"]
	if st2.AppliedSeq != lastSeq || st2.ReplayedBatches != 5 || st2.InsertedVecs != 5 {
		t.Fatalf("post-recovery stats %+v", st2)
	}
	if pristine.Size() != 155 {
		t.Fatalf("recovered database has %d vectors, want 155", pristine.Size())
	}
	// New batches continue the recovered sequence.
	ack, err := p2.Enqueue("m", [][]float64{{9, 9, 9, 9}}, nil)
	if err != nil || ack.Seq != lastSeq+1 {
		t.Fatalf("post-recovery enqueue: %+v err %v", ack, err)
	}
}

// TestPipelineSnapshotCompactReplay drives enough batches through a
// journaled pipeline to trigger snapshots, then recovers: the database
// must be rebuilt from the snapshot plus the replayed tail, and the
// snapshot's model weights must be published.
func TestPipelineSnapshotCompactReplay(t *testing.T) {
	dir := t.TempDir()
	db, wl, train, valid := testData(53, 150, 4, 8)
	m := tinyModel(54, db.Dim, wl.TMax)
	reg := serve.NewRegistry(nil)
	if _, err := reg.Publish("m", m, "test"); err != nil {
		t.Fatal(err)
	}
	p1 := New(Config{
		Registry: reg,
		Train:    tinyTrain(),
		Update:   neverRetrain(),
		Journal:  JournalConfig{Dir: dir, SnapshotEvery: 2},
	})
	if err := p1.Attach("m", m, db, train, valid); err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for i := 0; i < 9; i++ {
		ack, err := p1.Enqueue("m", [][]float64{{float64(i), 0, 0, 0}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = ack.Seq
		// Apply one at a time so snapshot requests actually fire between
		// enqueues instead of one coalesced cycle swallowing everything.
		if !p1.WaitApplied("m", ack.Seq) {
			t.Fatal("batch never applied")
		}
	}
	p1.Close()
	st := p1.UpdaterStats()["m"]
	if st.SnapshotSeq == 0 || st.Compactions == 0 {
		t.Fatalf("no snapshot/compaction after 9 cycles: %+v", st)
	}
	if st.JournalErrors != 0 {
		t.Fatalf("journal errors: %+v", st)
	}

	var recovered Recovery
	reg2 := serve.NewRegistry(nil)
	p2 := New(Config{
		Registry: reg2,
		Train:    tinyTrain(),
		Update:   neverRetrain(),
		Journal: JournalConfig{
			Dir:       dir,
			OnRecover: func(_ string, r Recovery) { recovered = r },
		},
	})
	t.Cleanup(p2.Close)
	pristine, _, train2, valid2 := testData(53, 150, 4, 8)
	if err := p2.Attach("m", tinyModel(55, db.Dim, wl.TMax), pristine, train2, valid2); err != nil {
		t.Fatal(err)
	}
	if recovered.SnapshotSeq == 0 || !recovered.RestoredModel {
		t.Fatalf("recovery %+v, want snapshot with model", recovered)
	}
	if recovered.SnapshotSeq+uint64(recovered.Replayed) < lastSeq {
		t.Fatalf("recovery %+v cannot cover seq %d", recovered, lastSeq)
	}
	if !p2.WaitApplied("m", lastSeq) {
		t.Fatal("tail never replayed")
	}
	// Snapshot base + replayed tail = the 9 inserts on top of 150.
	if got := p2.lookup("m").db.Size(); got != 159 {
		t.Fatalf("recovered database has %d vectors, want 159", got)
	}
	// The snapshot's model (not the freshly supplied one) is published.
	pub, ok := reg2.Get("m")
	if !ok || pub.Source == "test" {
		t.Fatalf("published model %+v does not come from the journal", pub)
	}
}

// TestJournalCompactedPastSnapshotFails covers the unrecoverable-state
// guard: a log whose compacted prefix has no surviving snapshot must
// refuse to attach rather than silently serve a hole.
func TestJournalCompactedPastSnapshotFails(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(walPath(dir, "m"), "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testEntry(3, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(2); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// No snapshot file exists; base applied is 2.
	db, wl, train, valid := testData(56, 100, 2, 6)
	p := New(Config{
		Registry: serve.NewRegistry(nil),
		Train:    tinyTrain(),
		Update:   neverRetrain(),
		Journal:  JournalConfig{Dir: dir},
	})
	t.Cleanup(p.Close)
	err = p.Attach("m", tinyModel(57, db.Dim, wl.TMax), db, train, valid)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("no snapshot")) {
		t.Fatalf("attach: %v, want unrecoverable-journal error", err)
	}
}

// With a sync interval, concurrent producers' records ride shared
// fsyncs: the window leader sleeps, absorbing the appends that arrive
// meanwhile, and followers find their bytes already durable. Everything
// acknowledged must still be recoverable.
func TestWALSyncIntervalGroupsFsyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _ := openTestWAL(t, path)
	w.SetSyncInterval(10 * time.Millisecond)

	const producers, perProducer = 8, 5
	var mu sync.Mutex // orders Append calls the way the journal lock does
	seq := uint64(0)
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				mu.Lock()
				seq++
				e := testEntry(seq, float64(seq))
				err := w.Append(e)
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := w.Stats()
	if st.Appends != producers*perProducer {
		t.Fatalf("appends = %d, want %d", st.Appends, producers*perProducer)
	}
	if st.Syncs == 0 || st.Syncs >= st.Appends/2 {
		t.Fatalf("syncs = %d for %d appends; the window should batch well below half", st.Syncs, st.Appends)
	}
	if st.Synced != st.Size {
		t.Fatalf("synced %d != size %d after all Syncs returned", st.Synced, st.Size)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openTestWAL(t, path)
	if len(rec.Entries) != producers*perProducer {
		t.Fatalf("recovered %d entries, want %d", len(rec.Entries), producers*perProducer)
	}
}

// Interval zero keeps the immediate group-commit semantics: a lone
// producer's Sync fsyncs without sleeping.
func TestWALSyncIntervalZeroIsImmediate(t *testing.T) {
	w, _ := openTestWAL(t, filepath.Join(t.TempDir(), "m.wal"))
	start := time.Now()
	appendAll(t, w, testEntry(1, 1))
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("sync took %v", d)
	}
	if st := w.Stats(); st.Syncs != 1 {
		t.Fatalf("syncs = %d, want 1", st.Syncs)
	}
}
