package ingest

import (
	"math/rand"
	"testing"

	"selnet/internal/distance"
	"selnet/internal/gbm"
	"selnet/internal/kde"
	"selnet/internal/lshsampling"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

// The ingest pipeline degrades by estimator capability: SelNet retrains,
// LSH refreshes its derived state against the updated database, and
// static estimators (KDE, GBM, the deep baselines) keep serving while
// the database and journal absorb the updates.

func cosineData(seed int64, n, dim, queries int) (*vecdata.Database, []vecdata.Query, []vecdata.Query) {
	rng := rand.New(rand.NewSource(seed))
	db := vecdata.SyntheticFasttext(rng, n, dim, distance.Cosine)
	wl := vecdata.GeometricWorkload(rng, db, queries, 4)
	cut := len(wl.Queries) * 3 / 4
	return db, wl.Queries[:cut], wl.Queries[cut:]
}

func TestModeOf(t *testing.T) {
	db, train, valid := cosineData(1, 150, 4, 8)
	lsh, err := lshsampling.Build(rand.New(rand.NewSource(2)), db, lshsampling.DefaultConfig())
	if err != nil {
		t.Fatalf("build lsh: %v", err)
	}
	cfg := kde.DefaultConfig()
	cfg.SampleSize = 40
	k := kde.FitTuned(rand.New(rand.NewSource(3)), db, cfg, valid)
	g := gbm.FitSelectivity(gbm.DefaultConfig(), append(train, valid...), true)

	for _, tc := range []struct {
		est  serve.Estimator
		want updateMode
	}{
		{tinyModel(4, db.Dim, 1), modeRetrain},
		{lsh, modeRefresh},
		{k, modeStatic},
		{g, modeStatic},
	} {
		if got := modeOf(tc.est); got != tc.want {
			t.Errorf("modeOf(%s) = %v, want %v", tc.est.Name(), got, tc.want)
		}
	}
}

// TestRefreshMode attaches an LSH estimator and verifies an update
// cycle rebuilds it against the grown database and hot-swaps the clone.
func TestRefreshMode(t *testing.T) {
	db, train, valid := cosineData(11, 200, 4, 8)
	lsh, err := lshsampling.Build(rand.New(rand.NewSource(12)), db, lshsampling.DefaultConfig())
	if err != nil {
		t.Fatalf("build lsh: %v", err)
	}
	p, reg := newPipeline(t, Config{})
	if _, err := reg.Publish("m", lsh, "test"); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := p.Attach("m", lsh, db.Clone(), train, valid); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if st := p.UpdaterStats()["m"]; st.Mode != "refresh" {
		t.Fatalf("mode = %q, want refresh", st.Mode)
	}

	before := lsh.DataSize()
	rng := rand.New(rand.NewSource(13))
	ins := make([][]float64, 16)
	for i := range ins {
		v := make([]float64, db.Dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		ins[i] = v
	}
	ack, err := p.Enqueue("m", ins, nil)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if !p.WaitApplied("m", ack.Seq) {
		t.Fatal("apply did not complete")
	}

	m, ok := reg.Get("m")
	if !ok {
		t.Fatal("model gone from registry")
	}
	swapped, isLSH := m.Est.(*lshsampling.Estimator)
	if !isLSH {
		t.Fatalf("registry holds %T after refresh", m.Est)
	}
	if swapped == lsh {
		t.Fatal("refresh published the original estimator, not a clone")
	}
	if got := swapped.DataSize(); got != before+len(ins) {
		t.Fatalf("refreshed DataSize = %d, want %d", got, before+len(ins))
	}
	// The original keeps serving its pre-update view.
	if lsh.DataSize() != before {
		t.Fatalf("original estimator mutated: DataSize %d, want %d", lsh.DataSize(), before)
	}
	st := p.UpdaterStats()["m"]
	if st.Refreshed != 1 || st.Retrained != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStaticMode attaches a KDE estimator: updates apply to the
// database and journal, the published model never changes, and the
// pipeline reports the degradation honestly.
func TestStaticMode(t *testing.T) {
	db, wl, train, valid := testData(21, 150, 4, 8)
	_ = wl
	cfg := kde.DefaultConfig()
	cfg.SampleSize = 40
	k := kde.FitTuned(rand.New(rand.NewSource(22)), db, cfg, valid)
	p, reg := newPipeline(t, Config{})
	if _, err := reg.Publish("m", k, "test"); err != nil {
		t.Fatalf("publish: %v", err)
	}
	priv := db.Clone()
	if err := p.Attach("m", k, priv, train, valid); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if st := p.UpdaterStats()["m"]; st.Mode != "static" {
		t.Fatalf("mode = %q, want static", st.Mode)
	}

	gen0 := mustGet(t, reg, "m").Generation
	ins := [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}
	ack, err := p.Enqueue("m", ins, nil)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if !p.WaitApplied("m", ack.Seq) {
		t.Fatal("apply did not complete")
	}
	if priv.Size() != db.Size()+len(ins) {
		t.Fatalf("private db size = %d, want %d", priv.Size(), db.Size()+len(ins))
	}
	m := mustGet(t, reg, "m")
	if m.Generation != gen0 || m.Est != serve.Estimator(k) {
		t.Fatalf("static model was swapped: gen %d -> %d", gen0, m.Generation)
	}
	st := p.UpdaterStats()["m"]
	if st.BatchesApplied != 1 || st.InsertedVecs != 2 || st.Retrained != 0 || st.Refreshed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStaticModeNeedsNoValidation verifies static attachment works
// without validation queries — there is no δ_U check to feed.
func TestStaticModeNeedsNoValidation(t *testing.T) {
	db, _, _, valid := testData(31, 120, 4, 8)
	cfg := kde.DefaultConfig()
	cfg.SampleSize = 40
	k := kde.FitTuned(rand.New(rand.NewSource(32)), db, cfg, valid)
	p, _ := newPipeline(t, Config{})
	if err := p.Attach("m", k, db.Clone(), nil, nil); err != nil {
		t.Fatalf("attach without validation: %v", err)
	}
}

// TestStaticModeDurableSnapshot round-trips a non-SelNet model through
// the durable snapshot path: the kind-tagged codec persists the KDE
// with the database, and recovery republishes it.
func TestStaticModeDurableSnapshot(t *testing.T) {
	dir := t.TempDir()
	db, _, train, valid := testData(41, 150, 4, 8)
	cfg := kde.DefaultConfig()
	cfg.SampleSize = 40
	k := kde.FitTuned(rand.New(rand.NewSource(42)), db, cfg, valid)

	reg := serve.NewRegistry(nil)
	if _, err := reg.Publish("m", k, "test"); err != nil {
		t.Fatal(err)
	}
	p1 := New(Config{
		Registry: reg,
		Journal:  JournalConfig{Dir: dir, SnapshotEvery: 1},
	})
	if err := p1.Attach("m", k, db.Clone(), train, valid); err != nil {
		t.Fatalf("attach: %v", err)
	}
	ack, err := p1.Enqueue("m", [][]float64{{9, 9, 9, 9}}, nil)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if !p1.WaitApplied("m", ack.Seq) {
		t.Fatal("apply did not complete")
	}
	p1.Close() // drains the snapshotter

	reg2 := serve.NewRegistry(nil)
	var recovered Recovery
	p2 := New(Config{
		Registry: reg2,
		Journal:  JournalConfig{Dir: dir, OnRecover: func(_ string, r Recovery) { recovered = r }},
	})
	t.Cleanup(p2.Close)
	// Attach with a *different* model; the snapshot's KDE must win.
	if err := p2.Attach("m", tinyModel(43, db.Dim, 1), db.Clone(), train, valid); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if !recovered.RestoredModel || recovered.SnapshotSeq != ack.Seq {
		t.Fatalf("recovery = %+v", recovered)
	}
	m := mustGet(t, reg2, "m")
	got, isKDE := m.Est.(*kde.Estimator)
	if !isKDE {
		t.Fatalf("recovered %T, want *kde.Estimator", m.Est)
	}
	probe := []float64{0.1, 0.2, 0.3, 0.4}
	if a, b := got.Estimate(probe, 0.5), k.Estimate(probe, 0.5); a != b {
		t.Fatalf("recovered KDE estimates %v, original %v", a, b)
	}
	// The pipeline re-derived its mode from the recovered model.
	if st := p2.UpdaterStats()["m"]; st.Mode != "static" || st.SnapshotSeq != ack.Seq {
		t.Fatalf("post-recovery stats = %+v", st)
	}
}

func mustGet(t *testing.T, reg *serve.Registry, name string) *serve.Model {
	t.Helper()
	m, ok := reg.Get(name)
	if !ok {
		t.Fatalf("model %q not in registry", name)
	}
	return m
}
