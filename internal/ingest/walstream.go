package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file is the streaming half of the WAL: a tailer that reads a live
// log record by record so a follower replica can resume replication from
// an arbitrary sequence number. The writer side (wal.go) only ever
// appends whole records under its lock and advances its size after full
// writes, so every byte below the writer's recorded size is immutable —
// the tailer reads through an independent handle with ReadAt and treats
// anything that does not yet form an intact record (a torn frame, a CRC
// mismatch) as "not written yet" and retries on the next Next call
// without advancing. Compaction replaces the file via rename; the tailer
// detects the inode change, reopens, and re-checks that the new header's
// watermark still covers its resume position.

// ErrWALCompacted reports that the log's retained suffix starts past the
// requested resume sequence: the dropped prefix only survives in a
// snapshot, so the caller cannot catch up from the log alone and must be
// reseeded.
var ErrWALCompacted = errors.New("ingest: wal compacted past requested sequence")

// WALTailer streams ops records from a model's WAL file, resuming after
// a given sequence number. It is a read-only, single-goroutine cursor:
// Next returns newly durable entries in sequence order and returns an
// empty batch (not an error) while the writer has nothing new.
type WALTailer struct {
	path string
	f    *os.File
	off  int64
	// last is the highest sequence emitted (seeded with the resume
	// floor): records at or below it are skipped, which makes re-tailing
	// an already-replicated range idempotent.
	last uint64
}

// TailWAL opens a tailer over the log at path positioned just past the
// header, ready to emit entries with sequence > after. It fails with
// ErrWALCompacted when the log has been compacted past the resume point.
func TailWAL(path string, after uint64) (*WALTailer, error) {
	t := &WALTailer{path: path, last: after}
	if err := t.open(); err != nil {
		return nil, err
	}
	return t, nil
}

// open (re)positions the tailer at the start of the ops stream of the
// current file at t.path, validating magic and header.
func (t *WALTailer) open() error {
	f, err := os.Open(t.path)
	if err != nil {
		return err
	}
	var magic [len(walMagic)]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		f.Close()
		return fmt.Errorf("ingest: tail %s: %w", t.path, err)
	}
	if string(magic[:]) != walMagic {
		f.Close()
		return fmt.Errorf("ingest: tail %s: not a selnet WAL (bad magic)", t.path)
	}
	payload, next, ok, err := readRecordAt(f, int64(len(walMagic)))
	if err != nil {
		f.Close()
		return fmt.Errorf("ingest: tail %s: %w", t.path, err)
	}
	if !ok || payload[0] != walRecHeader {
		f.Close()
		return fmt.Errorf("ingest: tail %s: missing header record", t.path)
	}
	_, base, okH := decodeWALHeader(payload)
	if !okH {
		f.Close()
		return fmt.Errorf("ingest: tail %s: malformed header record", t.path)
	}
	if base > t.last {
		f.Close()
		return ErrWALCompacted
	}
	if t.f != nil {
		t.f.Close()
	}
	t.f = f
	t.off = next
	return nil
}

// Next returns up to max entries with sequence > the resume floor that
// are intact in the log, advancing the cursor past them. An empty result
// with a nil error means the writer has not appended (or not finished
// appending) anything new; call again later. When the underlying file
// has been replaced by compaction, the tailer transparently reopens it,
// failing with ErrWALCompacted if the new log no longer covers the
// cursor position.
func (t *WALTailer) Next(max int) ([]Entry, error) {
	if t.f == nil {
		return nil, fmt.Errorf("ingest: tail %s: closed", t.path)
	}
	if max <= 0 {
		max = 1
	}
	// Compaction swaps in a new inode via rename; stat both ends and
	// reopen when they diverge. The old handle stays readable until then,
	// so records already streamed are never lost to the swap.
	if cur, err := t.f.Stat(); err == nil {
		if disk, err := os.Stat(t.path); err == nil && !os.SameFile(cur, disk) {
			if err := t.open(); err != nil {
				return nil, err
			}
		}
	}

	var out []Entry
	for len(out) < max {
		payload, next, ok, err := readRecordAt(t.f, t.off)
		if err != nil {
			return out, fmt.Errorf("ingest: tail %s: %w", t.path, err)
		}
		if !ok {
			// Torn or absent tail: the writer has not completed this record
			// yet (or never will, and recovery will truncate it). Do not
			// advance; surface what is intact so far.
			break
		}
		if payload[0] != walRecOps {
			// Only the first record is a header; anything else is foreign.
			// Skip without emitting so a future record format does not wedge
			// the stream.
			t.off = next
			continue
		}
		e, okE := decodeWALOps(payload)
		if !okE {
			// CRC-valid but undecodable: recovery treats this as the end of
			// the trustworthy log; so does the tailer.
			break
		}
		if e.Seq <= t.last {
			// Catch-up skip: the record predates the resume floor (the
			// follower already journaled it). This is the idempotence path
			// for re-requested ranges.
			t.off = next
			continue
		}
		out = append(out, e)
		t.last = e.Seq
		t.off = next
	}
	return out, nil
}

// LastSeq reports the highest sequence the tailer has emitted (or the
// resume floor before the first emit).
func (t *WALTailer) LastSeq() uint64 { return t.last }

// Close releases the file handle. Further Next calls fail.
func (t *WALTailer) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// readRecordAt reads the framed record at off via ReadAt, reporting
// ok=false when the bytes there do not (yet) form an intact record. Real
// I/O errors other than hitting the current end of file are returned.
func readRecordAt(f *os.File, off int64) (payload []byte, next int64, ok bool, err error) {
	var hdr [8]byte
	if _, rerr := f.ReadAt(hdr[:], off); rerr != nil {
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return nil, 0, false, nil
		}
		return nil, 0, false, rerr
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n < 1 || n > maxWALRecord {
		return nil, 0, false, nil
	}
	payload = make([]byte, n)
	if _, rerr := f.ReadAt(payload, off+8); rerr != nil {
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return nil, 0, false, nil
		}
		return nil, 0, false, rerr
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false, nil
	}
	return payload, off + 8 + n, true, nil
}
