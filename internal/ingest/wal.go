package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// This file implements the durable half of the update journal: a
// length-prefixed, CRC-checksummed write-ahead log, one file per model.
// Every accepted update batch is encoded as one record and appended
// under the journal lock; the fsync is group-committed (Sync) outside
// it, so concurrent producers to the same model share one fsync and the
// HTTP 202 is only sent once the batch is on disk. On open, the log is
// scanned record by record and a truncated or corrupt tail is discarded
// by truncating the file back to the last intact record. Applied
// prefixes are dropped by Compact once a database snapshot has made
// them redundant, which keeps the log bounded.
//
// File layout:
//
//	magic "SELWAL01"
//	record*          u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Payloads begin with a type byte:
//
//	header (1)  uvarint name length, name bytes, uvarint base applied seq
//	ops    (2)  uvarint seq, varint unix-nanos, uvarint dim,
//	            uvarint #inserts, inserts (dim x float64 bits, LE),
//	            uvarint #deletes, deletes
//
// The header is always the first record; compaction rewrites it with the
// snapshot's applied sequence so recovery can detect a log whose
// discarded prefix has no surviving snapshot (an unrecoverable state
// that is reported, never silently absorbed).

const walMagic = "SELWAL01"

const (
	walRecHeader byte = 1
	walRecOps    byte = 2
)

// maxWALRecord bounds a single record; larger length prefixes are
// treated as corruption (the HTTP layer caps request bodies at 16 MiB).
const maxWALRecord = 64 << 20

// WAL is one model's write-ahead log. Append/Sync implement the
// journalStore seam; Compact and Close are driven by the pipeline.
type WAL struct {
	path string
	name string

	mu          sync.Mutex // file writes and size bookkeeping
	f           *os.File
	size        int64 // bytes written (buffered + durable)
	records     int   // ops records in the file
	baseApplied uint64
	appends     uint64
	failed      bool // a partial write poisoned the tail; refuse appends
	closed      bool

	// syncMu serializes fsyncs and orders them against compaction. Where
	// both are held, syncMu is taken before mu.
	syncMu      sync.Mutex
	synced      int64 // bytes known durable
	syncs       uint64
	compactions uint64

	// syncInterval > 0 turns Sync into a tick-based group-commit window:
	// the caller that wins the sync lock sleeps for the interval before
	// fsyncing, so every record appended meanwhile shares the same fsync.
	// Set once via SetSyncInterval before concurrent use.
	syncInterval time.Duration
}

// WALRecovered reports what OpenWAL found in an existing log.
type WALRecovered struct {
	// Entries are the ops records in file order (seqs strictly
	// increasing). Entries at or below a snapshot's applied sequence are
	// filtered by the caller.
	Entries []Entry
	// BaseApplied is the header watermark: the applied sequence the log
	// was last compacted to. Ops at or below it have been dropped and
	// must be covered by a snapshot.
	BaseApplied uint64
	// DiscardedBytes counts truncated/corrupt tail bytes dropped on open.
	DiscardedBytes int64
}

// WALStats is a point-in-time snapshot of the log's counters.
type WALStats struct {
	Path        string
	Size        int64
	Synced      int64
	Records     int
	BaseApplied uint64
	Appends     uint64
	Syncs       uint64
	Compactions uint64
}

// OpenWAL opens (or creates) the log at path for the named model,
// recovering its intact records and truncating any corrupt tail.
func OpenWAL(path, model string) (*WAL, WALRecovered, error) {
	var rec WALRecovered
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, rec, err
	}

	w := &WAL{path: path, name: model}
	if len(b) == 0 {
		// Fresh (or empty — a crash between create and the first write)
		// log: magic plus a header record at watermark zero.
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, rec, err
		}
		init := append([]byte(walMagic), frameWALRecord(encodeWALHeader(model, 0))...)
		if _, err := f.Write(init); err != nil {
			f.Close()
			return nil, rec, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, rec, err
		}
		w.f = f
		w.size = int64(len(init))
		w.synced = w.size
		return w, rec, nil
	}

	scan, err := scanWAL(b)
	if err != nil {
		return nil, rec, fmt.Errorf("ingest: %s: %w", path, err)
	}
	if scan.name == "" {
		// Valid magic but no intact header record: a crash tore the
		// initial write after the magic reached disk. Nothing was ever
		// appended (ops records cannot precede the header), so rebuild the
		// log fresh — same as the zero-byte case, one write later.
		f, err := os.OpenFile(path, os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, rec, err
		}
		init := append([]byte(walMagic), frameWALRecord(encodeWALHeader(model, 0))...)
		if _, err := f.Write(init); err != nil {
			f.Close()
			return nil, rec, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, rec, err
		}
		w.f = f
		w.size = int64(len(init))
		w.synced = w.size
		rec.DiscardedBytes = int64(len(b)) - int64(len(walMagic))
		return w, rec, nil
	}
	if scan.name != model {
		return nil, rec, fmt.Errorf("ingest: %s belongs to model %q, not %q", path, scan.name, model)
	}
	rec.Entries = scan.entries
	rec.BaseApplied = scan.baseApplied
	rec.DiscardedBytes = int64(len(b)) - scan.good

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, rec, err
	}
	if rec.DiscardedBytes > 0 {
		// Drop the corrupt tail so appends continue from the last intact
		// record instead of burying new records behind garbage.
		if err := f.Truncate(scan.good); err != nil {
			f.Close()
			return nil, rec, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, rec, err
		}
	}
	if _, err := f.Seek(scan.good, 0); err != nil {
		f.Close()
		return nil, rec, err
	}
	w.f = f
	w.size = scan.good
	w.synced = w.size
	w.records = len(scan.entries)
	w.baseApplied = scan.baseApplied
	return w, rec, nil
}

// Append buffers one ops record. The caller holds the owning journal's
// lock, which is what orders sequence assignment and file position;
// durability comes from the Sync that follows outside that lock.
func (w *WAL) Append(e Entry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.closed:
		return fmt.Errorf("ingest: wal %s is closed", w.path)
	case w.failed:
		return fmt.Errorf("ingest: wal %s is poisoned by an earlier write/sync failure", w.path)
	}
	rec := frameWALRecord(encodeWALOps(e))
	if _, err := w.f.Write(rec); err != nil {
		// A partial write leaves garbage at the tail; anything appended
		// after it would be unreachable on replay, so fail hard instead.
		w.failed = true
		return fmt.Errorf("ingest: wal append: %w", err)
	}
	w.size += int64(len(rec))
	w.records++
	w.appends++
	return nil
}

// SetSyncInterval configures the tick-based fsync window: with d > 0,
// the Sync caller that wins the group-commit lock sleeps d before
// fsyncing, so under sustained load one fsync covers every record
// appended during the window instead of one fsync per idle producer.
// Ack latency is bounded by roughly d plus one fsync. d = 0 (the
// default) keeps the immediate group-commit behavior. Call before the
// WAL sees concurrent traffic.
func (w *WAL) SetSyncInterval(d time.Duration) {
	w.mu.Lock()
	w.syncInterval = d
	w.mu.Unlock()
}

// Sync makes every previously appended record durable. Concurrent
// callers group-commit: whoever wins the sync lock fsyncs on behalf of
// every record written before it, and the rest return without another
// fsync. With SetSyncInterval the winner additionally holds the lock
// for the window, widening the group it commits.
func (w *WAL) Sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	target := w.size
	f, closed, failed, synced := w.f, w.closed, w.failed, w.synced
	interval := w.syncInterval
	w.mu.Unlock()
	switch {
	case closed:
		return fmt.Errorf("ingest: wal %s is closed", w.path)
	case failed:
		// An earlier write or fsync failed: durability of the tail is
		// unknown and must not be re-promised until Compact rebuilds the
		// log on a fresh file.
		return fmt.Errorf("ingest: wal %s is poisoned by an earlier write/sync failure", w.path)
	case synced >= target:
		return nil
	}
	if interval > 0 {
		// Fsync window: absorb the appends that arrive while we sleep so
		// they ride the same fsync. Followers queue on syncMu and find
		// their bytes already durable.
		time.Sleep(interval)
		w.mu.Lock()
		if w.size > target {
			target = w.size
		}
		closed, failed = w.closed, w.failed
		w.mu.Unlock()
		switch {
		case closed:
			return fmt.Errorf("ingest: wal %s is closed", w.path)
		case failed:
			return fmt.Errorf("ingest: wal %s is poisoned by an earlier write/sync failure", w.path)
		}
	}
	if err := f.Sync(); err != nil {
		// Latch the failure: after a reported fsync error the kernel may
		// drop the dirty pages, so a retried fsync that "succeeds" proves
		// nothing about these records. Refuse further acks instead.
		w.mu.Lock()
		w.failed = true
		w.mu.Unlock()
		return fmt.Errorf("ingest: wal sync: %w", err)
	}
	w.mu.Lock()
	if target > w.synced {
		w.synced = target
	}
	w.syncs++
	w.mu.Unlock()
	return nil
}

// Compact rewrites the log keeping only ops past the applied sequence,
// recording applied as the new header watermark. The caller must have
// made a snapshot at applied durable first — compaction deliberately
// destroys the replay history it covers.
//
// The expensive part — reading and re-encoding the stable prefix — runs
// without the append lock, so producers keep acking while the rewrite
// happens; w.mu is only held to splice in records appended meanwhile
// and swap the file handle (records below a recorded size are immutable,
// since the log is append-only and size advances only on full writes).
func (w *WAL) Compact(applied uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("ingest: wal %s is closed", w.path)
	}
	size0 := w.size
	w.mu.Unlock()

	prefix, err := readFileRange(w.path, 0, size0)
	if err != nil {
		return fmt.Errorf("ingest: wal compact: %w", err)
	}
	scan, err := scanWAL(prefix)
	if err != nil {
		return fmt.Errorf("ingest: wal compact: %w", err)
	}
	if scan.good != size0 {
		return fmt.Errorf("ingest: wal compact: %s prefix scan stopped at %d of %d bytes", w.path, scan.good, size0)
	}
	out := append([]byte(walMagic), frameWALRecord(encodeWALHeader(w.name, applied))...)
	kept := 0
	for _, e := range scan.entries {
		if e.Seq > applied {
			out = append(out, frameWALRecord(encodeWALOps(e))...)
			kept++
		}
	}

	tmp := w.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op once the rename below succeeds
	if _, err := tf.Write(out); err != nil {
		tf.Close()
		return err
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		tf.Close()
		return fmt.Errorf("ingest: wal %s is closed", w.path)
	}
	// Splice in whole records appended during the rewrite; they are
	// immutable now that the append lock is held. (Garbage past w.size
	// from a failed partial write is deliberately dropped, which also
	// clears the poison latch on a fresh, fully-synced file.)
	deltaLen := w.size - size0
	if deltaLen > 0 {
		delta, err := readFileRange(w.path, size0, deltaLen)
		if err != nil {
			tf.Close()
			return err
		}
		if _, err := tf.Write(delta); err != nil {
			tf.Close()
			return err
		}
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	newSize := int64(len(out)) + deltaLen
	if _, err := f.Seek(newSize, 0); err != nil {
		f.Close()
		return err
	}
	w.f.Close()
	w.f = f
	w.records += kept - len(scan.entries) // dropped prefix entries; delta records unchanged
	w.size = newSize
	w.synced = newSize
	w.baseApplied = applied
	w.failed = false
	w.compactions++
	return nil
}

// readFileRange reads length bytes at offset from path via an
// independent handle, without touching the writer's file position.
func readFileRange(path string, offset, length int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := make([]byte, length)
	if _, err := f.ReadAt(b, offset); err != nil {
		return nil, err
	}
	return b, nil
}

// Close fsyncs and closes the file. Further appends fail.
func (w *WAL) Close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the log's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Path:        w.path,
		Size:        w.size,
		Synced:      w.synced,
		Records:     w.records,
		BaseApplied: w.baseApplied,
		Appends:     w.appends,
		Syncs:       w.syncs,
		Compactions: w.compactions,
	}
}

// sizeBytes reports the current file size without the full Stats copy.
func (w *WAL) sizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// ----------------------------------------------------------------------------
// Record codec

// frameWALRecord wraps a payload with its length prefix and checksum.
func frameWALRecord(payload []byte) []byte {
	rec := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

func encodeWALHeader(name string, baseApplied uint64) []byte {
	b := []byte{walRecHeader}
	b = binary.AppendUvarint(b, uint64(len(name)))
	b = append(b, name...)
	b = binary.AppendUvarint(b, baseApplied)
	return b
}

func encodeWALOps(e Entry) []byte {
	dim := 0
	if len(e.Insert) > 0 {
		dim = len(e.Insert[0])
	} else if len(e.Delete) > 0 {
		dim = len(e.Delete[0])
	}
	b := make([]byte, 1, 32+8*dim*(len(e.Insert)+len(e.Delete)))
	b[0] = walRecOps
	b = binary.AppendUvarint(b, e.Seq)
	b = binary.AppendVarint(b, e.At.UnixNano())
	b = binary.AppendUvarint(b, uint64(dim))
	b = binary.AppendUvarint(b, uint64(len(e.Insert)))
	for _, v := range e.Insert {
		for _, x := range v {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(e.Delete)))
	for _, v := range e.Delete {
		for _, x := range v {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
		}
	}
	return b
}

// walScan is the result of parsing a log image.
type walScan struct {
	name        string
	baseApplied uint64
	entries     []Entry
	good        int64 // offset just past the last intact record
}

// scanWAL parses a log image, stopping at the first truncated or corrupt
// record: everything past that point is untrusted (a torn tail write, or
// real corruption) and reported via good for the caller to truncate. A
// bad magic or header is a hard error — that is not a damaged tail but
// the wrong file.
func scanWAL(b []byte) (walScan, error) {
	var s walScan
	if len(b) < len(walMagic) || string(b[:len(walMagic)]) != walMagic {
		return s, fmt.Errorf("not a selnet WAL (bad magic)")
	}
	off := int64(len(walMagic))
	first := true
	var lastSeq uint64
	for {
		payload, next, ok := nextWALRecord(b, off)
		if !ok {
			break
		}
		typ := payload[0]
		switch {
		case first:
			if typ != walRecHeader {
				return s, fmt.Errorf("first record is type %d, want header", typ)
			}
			name, base, ok := decodeWALHeader(payload)
			if !ok {
				return s, fmt.Errorf("malformed header record")
			}
			s.name, s.baseApplied = name, base
			lastSeq = base
			first = false
		case typ == walRecOps:
			e, ok := decodeWALOps(payload)
			if !ok || e.Seq <= lastSeq {
				// A CRC-valid but undecodable or out-of-order record means
				// the writer was cut off mid-stream in a way the checksum
				// happens to cover, or an overlapping historical write;
				// either way nothing past it is trustworthy.
				return finishScan(s, off), nil
			}
			lastSeq = e.Seq
			s.entries = append(s.entries, e)
		default:
			return finishScan(s, off), nil
		}
		off = next
	}
	return finishScan(s, off), nil
}

func finishScan(s walScan, good int64) walScan {
	s.good = good
	return s
}

// nextWALRecord extracts the record at off, reporting ok=false when the
// bytes there do not form an intact record (short frame, oversized
// length, CRC mismatch, empty payload).
func nextWALRecord(b []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+8 > int64(len(b)) {
		return nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(b[off : off+4]))
	crc := binary.LittleEndian.Uint32(b[off+4 : off+8])
	if n < 1 || n > maxWALRecord || off+8+n > int64(len(b)) {
		return nil, 0, false
	}
	payload = b[off+8 : off+8+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, off + 8 + n, true
}

func decodeWALHeader(p []byte) (name string, baseApplied uint64, ok bool) {
	r := walReader{b: p[1:]}
	n := r.uvarint()
	nameB := r.bytes(int(n))
	base := r.uvarint()
	if r.bad || !r.done() {
		return "", 0, false
	}
	return string(nameB), base, true
}

func decodeWALOps(p []byte) (Entry, bool) {
	r := walReader{b: p[1:]}
	var e Entry
	e.Seq = r.uvarint()
	e.At = time.Unix(0, r.varint())
	dim64 := r.uvarint()
	// Bound dim before it feeds any size arithmetic: a corrupt record
	// must fail decoding, not overflow into a huge allocation.
	if r.bad || dim64 > 1<<20 {
		return Entry{}, false
	}
	dim := int(dim64)
	e.Insert = r.vecs(dim)
	e.Delete = r.vecs(dim)
	if r.bad || !r.done() {
		return Entry{}, false
	}
	return e, true
}

// walReader is a cursor over a record payload that latches decode errors.
type walReader struct {
	b   []byte
	bad bool
}

func (r *walReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *walReader) varint() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *walReader) bytes(n int) []byte {
	if n < 0 || n > len(r.b) {
		r.bad = true
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// vecs reads a counted block of dim-wide vectors. The caller bounds dim
// (<= 1<<20); the count is bounded by the remaining payload before any
// multiplication, so a corrupt record cannot overflow the size math
// into a bogus allocation.
func (r *walReader) vecs(dim int) [][]float64 {
	cnt := r.uvarint()
	if r.bad || cnt > uint64(len(r.b)) || (cnt > 0 && dim == 0) {
		r.bad = true
		return nil
	}
	n := int(cnt)
	if uint64(n)*uint64(dim)*8 > uint64(len(r.b)) {
		r.bad = true
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[8*(i*dim+j):]))
		}
		out[i] = v
	}
	r.b = r.b[n*dim*8:]
	return out
}

func (r *walReader) done() bool { return len(r.b) == 0 }

// ----------------------------------------------------------------------------
// Durable file helpers

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
