package ingest

import (
	"errors"
	"testing"

	"selnet/internal/serve"
)

func TestJournalSequencingAndCoalescing(t *testing.T) {
	j := newJournal(8, nil)
	for i := 1; i <= 3; i++ {
		e, depth, err := j.append([][]float64{{float64(i)}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != uint64(i) || depth != i {
			t.Fatalf("append %d: seq %d depth %d", i, e.Seq, depth)
		}
	}
	got := j.claim(2)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("claim(2) = %+v", got)
	}
	if last, applied, depth := j.snapshot(); last != 3 || applied != 0 || depth != 1 {
		t.Fatalf("snapshot %d %d %d", last, applied, depth)
	}
	j.markApplied(2, 2)
	if !j.waitApplied(2) {
		t.Fatal("waitApplied(2) after markApplied")
	}
	rest := j.claim(8)
	if len(rest) != 1 || rest[0].Seq != 3 {
		t.Fatalf("claim rest = %+v", rest)
	}
	j.markApplied(3, 1)
	if last, applied, depth := j.snapshot(); last != 3 || applied != 3 || depth != 0 {
		t.Fatalf("final snapshot %d %d %d", last, applied, depth)
	}
}

func TestJournalBackpressure(t *testing.T) {
	j := newJournal(2, nil)
	for i := 0; i < 2; i++ {
		if _, _, err := j.append([][]float64{{1}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := j.append([][]float64{{1}}, nil); !errors.Is(err, serve.ErrUpdateQueueFull) {
		t.Fatalf("expected queue-full, got %v", err)
	}
	// Claiming frees capacity.
	j.claim(1)
	if _, _, err := j.append([][]float64{{1}}, nil); err != nil {
		t.Fatalf("append after claim: %v", err)
	}
}

func TestJournalCloseDrains(t *testing.T) {
	j := newJournal(8, nil)
	j.append([][]float64{{1}}, nil)
	j.append(nil, [][]float64{{2}})
	j.close()
	if _, _, err := j.append([][]float64{{3}}, nil); !errors.Is(err, serve.ErrUpdaterClosed) {
		t.Fatalf("append after close: %v", err)
	}
	// Pending entries stay claimable after close — the drain guarantee.
	got := j.claim(10)
	if len(got) != 2 {
		t.Fatalf("claim after close = %d entries", len(got))
	}
	j.markApplied(2, 2)
	if !j.waitApplied(2) {
		t.Fatal("applied entries must be waitable after close")
	}
	// A sequence that was never journaled is reported unreachable, not
	// waited on forever.
	if j.waitApplied(3) {
		t.Fatal("waitApplied(3) should fail: seq never journaled")
	}
	if got := j.claim(10); got != nil {
		t.Fatalf("claim on drained closed journal = %+v", got)
	}
}
