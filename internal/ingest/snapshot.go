package ingest

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"selnet/internal/distance"
	"selnet/internal/modelcodec"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

// A snapshot persists one model's recovery base: the pipeline's private
// database and the current model weights, stamped with the journal
// sequence they reflect. Snapshots are written to a temp file, fsynced
// and renamed into place, so a crash mid-write leaves the previous
// snapshot intact; once a snapshot is durable the WAL's prefix up to its
// sequence is redundant and Compact drops it. On boot, recovery loads
// the snapshot (or falls back to the operator-supplied database at
// sequence zero) and replays the WAL's surviving records through the
// normal ingest pipeline.

const snapMagic = "SELSNAP1"

// snapshotHeader is the gob wire form of a snapshot's metadata.
type snapshotHeader struct {
	AppliedSeq uint64
	Name       string
	Dist       int
	Dim        int
	Rows       int
	HasModel   bool
}

// modelSnapshot is an in-memory snapshot awaiting write or just loaded.
type modelSnapshot struct {
	appliedSeq uint64
	db         *vecdata.Database
	model      serve.Estimator // nil when the snapshot carries no weights
}

// writeSnapshot atomically replaces path with the snapshot.
func writeSnapshot(path, name string, s modelSnapshot) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	bw := bufio.NewWriter(f)
	h := snapshotHeader{
		AppliedSeq: s.appliedSeq,
		Name:       name,
		Dist:       int(s.db.Dist),
		Dim:        s.db.Dim,
		Rows:       s.db.Size(),
		HasModel:   s.model != nil,
	}
	if _, err := bw.WriteString(snapMagic); err != nil {
		f.Close()
		return err
	}
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		f.Close()
		return fmt.Errorf("ingest: encode snapshot header: %w", err)
	}
	if err := enc.Encode(s.db.Vecs); err != nil {
		f.Close()
		return fmt.Errorf("ingest: encode snapshot vectors: %w", err)
	}
	if s.model != nil {
		// The kind-tagged container is byte-compatible with the old
		// selnet.SaveModel stream, so pre-existing snapshots still load
		// and selnet-kind snapshots stay readable by older builds.
		if err := modelcodec.Save(bw, s.model); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// loadSnapshot reads a snapshot; ok=false when none exists.
func loadSnapshot(path, name string) (modelSnapshot, bool, error) {
	var s modelSnapshot
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return s, false, nil
	}
	if err != nil {
		return s, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapMagic {
		return s, false, fmt.Errorf("ingest: %s is not a snapshot file", path)
	}
	var h snapshotHeader
	dec := gob.NewDecoder(br)
	if err := dec.Decode(&h); err != nil {
		return s, false, fmt.Errorf("ingest: decode snapshot header: %w", err)
	}
	if h.Name != name {
		return s, false, fmt.Errorf("ingest: %s belongs to model %q, not %q", path, h.Name, name)
	}
	var vecs [][]float64
	if err := dec.Decode(&vecs); err != nil {
		return s, false, fmt.Errorf("ingest: decode snapshot vectors: %w", err)
	}
	if len(vecs) != h.Rows {
		return s, false, fmt.Errorf("ingest: snapshot %s holds %d rows, header says %d", path, len(vecs), h.Rows)
	}
	s.appliedSeq = h.AppliedSeq
	s.db = vecdata.NewDatabase(name, distance.Func(h.Dist), vecs)
	if h.HasModel {
		m, err := modelcodec.Load(br)
		if err != nil {
			return s, false, fmt.Errorf("ingest: snapshot %s model: %w", path, err)
		}
		s.model = m
	}
	return s, true, nil
}

// ----------------------------------------------------------------------------
// Journal directory layout

// journalFileBase escapes a model name into a filesystem-safe stem.
func journalFileBase(name string) string {
	return url.PathEscape(name)
}

func walPath(dir, name string) string {
	return filepath.Join(dir, journalFileBase(name)+".wal")
}

func snapshotPath(dir, name string) string {
	return filepath.Join(dir, journalFileBase(name)+".snap")
}

// JournalFileInfo describes one WAL found by ScanJournalDir.
type JournalFileInfo struct {
	Path        string
	Model       string
	Entries     int
	BaseApplied uint64
	Bytes       int64
}

// ScanJournalDir lists the WALs in a journal directory without opening
// them for writing — the daemon uses it at boot to warn about journals
// whose models are not configured for ingestion (their accepted batches
// would otherwise silently never replay).
func ScanJournalDir(dir string) ([]JournalFileInfo, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []JournalFileInfo
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".wal") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		scan, err := scanWAL(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, JournalFileInfo{
			Path:        path,
			Model:       scan.name,
			Entries:     len(scan.entries),
			BaseApplied: scan.baseApplied,
			Bytes:       int64(len(b)),
		})
	}
	return out, nil
}
