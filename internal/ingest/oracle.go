package ingest

import (
	"math"
	"math/rand"
	"sync"

	"selnet/internal/distance"
	"selnet/internal/lshsampling"
	"selnet/internal/obs"
	"selnet/internal/vecdata"
)

// DBOracle is the shadow-scoring ground-truth oracle over one model's
// live, mutating database (the pipeline's private copy — the exact
// data the serving model's answers are judged against). It implements
// obs.Oracle and runs only on the Shadow worker goroutines, never the
// serving path.
//
// Small databases are scanned exactly. Large ones are sampled: a
// uniform sample whose size follows the VC-dimension bound of
// "The VC-Dimension of Queries and Selectivity Estimation Through
// Sampling" — distance-threshold queries are balls, a range space of
// VC dimension at most dim+1, so m = (c/eps^2)(dim+1 + ln(1/delta))
// samples estimate any query's selectivity within eps*|D| with
// probability 1-delta, independent of |D|. Cosine databases instead
// reuse the lshsampling stratified estimator, whose low-Hamming strata
// concentrate samples where small-threshold matches live. Both are
// capped by the operator's per-query distance-evaluation budget.
//
// Concurrency: the ingest worker owns the database and mutates it
// inside BeginMutate/EndMutate (a write lock + version bump); oracle
// reads hold the read lock, so a ground-truth scan never observes a
// half-applied batch.
type DBOracle struct {
	cfg OracleConfig

	mu      sync.RWMutex // write: ingest worker mutations; read: oracle queries
	db      *vecdata.Database
	version uint64 // bumped by EndMutate, guarded by mu

	// lshMu serializes LSH use and rebuilds; the estimator's per-query
	// sampling state is not safe for concurrent use.
	lshMu      sync.Mutex
	lsh        *lshsampling.Estimator
	lshVersion uint64
	lshTried   bool // build attempted; a failure is not retried per query
}

// OracleConfig tunes the ground-truth oracle.
type OracleConfig struct {
	// Budget caps distance evaluations per ground-truth computation
	// (default 2000, the paper's sampling budget). Databases no larger
	// than the budget are scanned exactly.
	Budget int
	// Epsilon and Delta parameterize the VC sampling bound: the sampled
	// selectivity is within Epsilon*|D| of truth with probability
	// 1-Delta (defaults 0.05 and 0.01). The implied sample size is
	// still capped by Budget.
	Epsilon float64
	Delta   float64
}

func (c OracleConfig) withDefaults() OracleConfig {
	if c.Budget <= 0 {
		c.Budget = 2000
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.05
	}
	if c.Delta <= 0 {
		c.Delta = 0.01
	}
	return c
}

// VCSampleSize is the VC-bound sample size for an eps-approximation of
// range counts over a range space of VC dimension vc with probability
// 1-delta: m = ceil((c/eps^2) * (vc + ln(1/delta))), c = 0.5.
func VCSampleSize(eps, delta float64, vc int) int {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 || vc < 1 {
		return 1
	}
	m := 0.5 / (eps * eps) * (float64(vc) + math.Log(1/delta))
	return int(math.Ceil(m))
}

// NewDBOracle wraps the pipeline's private database copy.
func NewDBOracle(db *vecdata.Database, cfg OracleConfig) *DBOracle {
	return &DBOracle{cfg: cfg.withDefaults(), db: db}
}

// BeginMutate takes the write lock; the ingest worker brackets every
// database mutation (journal-entry application) with BeginMutate /
// EndMutate so oracle reads see batch-atomic state.
func (o *DBOracle) BeginMutate() { o.mu.Lock() }

// EndMutate publishes the mutation: bumps the version (invalidating
// cached LSH signatures) and releases the write lock.
func (o *DBOracle) EndMutate() {
	o.version++
	o.mu.Unlock()
}

// TrueSelectivity implements obs.Oracle.
func (o *DBOracle) TrueSelectivity(x []float64, t float64) (float64, string) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n := o.db.Size()
	if n <= o.cfg.Budget {
		return o.db.Selectivity(x, t), "exact"
	}
	if o.db.Dist == distance.Cosine {
		if v, ok := o.lshSelectivity(x, t); ok {
			return v, "lsh"
		}
	}
	return o.sampleSelectivity(x, t, n), "sample"
}

// sampleSelectivity estimates by uniform sampling with replacement.
// The sample indices come from a splitmix64 stream seeded by the query
// content, so repeated scoring of the same query reuses the same
// sample (deterministic, and monotone in t like the paper's
// consistency requirement), and the steady state allocates nothing.
func (o *DBOracle) sampleSelectivity(x []float64, t float64, n int) float64 {
	m := VCSampleSize(o.cfg.Epsilon, o.cfg.Delta, o.db.Dim+1)
	if m > o.cfg.Budget {
		m = o.cfg.Budget
	}
	if m > n {
		m = n
	}
	s := queryHash(x, t)
	matched := 0
	for i := 0; i < m; i++ {
		s = obs.Mix64(s)
		v := o.db.Vecs[s%uint64(n)]
		if o.db.Dist.Distance(x, v) <= t {
			matched++
		}
	}
	return float64(n) * float64(matched) / float64(m)
}

// queryHash folds a query's float bits into a nonzero sampling seed.
func queryHash(x []float64, t float64) uint64 {
	h := obs.Mix64(math.Float64bits(t))
	for _, v := range x {
		h = obs.Mix64(h ^ math.Float64bits(v))
	}
	if h == 0 {
		h = 1
	}
	return h
}

// lshSelectivity estimates through the stratified SimHash sampler,
// (re)hashing the database lazily whenever a mutation bumped the
// version since the last build. Called with the read lock held, so the
// database cannot mutate underneath the signatures.
func (o *DBOracle) lshSelectivity(x []float64, t float64) (float64, bool) {
	o.lshMu.Lock()
	defer o.lshMu.Unlock()
	if o.lsh == nil {
		if o.lshTried {
			return 0, false
		}
		o.lshTried = true
		cfg := lshsampling.DefaultConfig()
		cfg.SampleBudget = o.cfg.Budget
		e, err := lshsampling.Build(rand.New(rand.NewSource(1)), o.db, cfg)
		if err != nil {
			return 0, false
		}
		o.lsh = e
		o.lshVersion = o.version
	}
	if o.lshVersion != o.version {
		o.lsh.Refresh()
		o.lshVersion = o.version
	}
	return o.lsh.Estimate(x, t), true
}
