package ingest

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

// TestHTTPUpdateShadowRetrainHotSwap is the end-to-end acceptance test
// for the ingest subsystem: an insert batch posted to the live update
// API must leave served estimates untouched while the shadow retrains,
// then change them exactly at the hot-swap (generation bump in /stats),
// with concurrent estimate traffic never blocking on — or observing — a
// partially retrained model. Run it under -race.
func TestHTTPUpdateShadowRetrainHotSwap(t *testing.T) {
	db, wl, train, valid := testData(30, 250, 4, 12)
	m := tinyModel(31, db.Dim, wl.TMax)
	// A few epochs lift the model off the all-zero ReLU plateau so the
	// pre/post-swap estimates are meaningfully comparable.
	tc := tinyTrain()
	tc.Epochs = 4
	m.Fit(tc, db, train, valid)

	srv := serve.NewServer(serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: 8, FlushInterval: time.Millisecond, Workers: 2},
		Cache:   serve.CacheConfig{Capacity: 256},
	})
	defer srv.Close()
	if _, err := srv.Registry().Publish("m", m, "test"); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	retraining := make(chan struct{})
	uc := forceRetrain()
	uc.MaxEpochs = 2
	pipe := New(Config{
		Registry:      srv.Registry(),
		Train:         tinyTrain(),
		Update:        uc,
		BeforeRetrain: func(string) { retraining <- struct{}{}; <-gate },
	})
	defer pipe.Close()
	if err := pipe.Attach("m", m, db.Clone(), train, valid); err != nil {
		t.Fatal(err)
	}
	srv.SetUpdater(pipe)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	probe := append([]float64(nil), db.Vecs[0]...)
	probeT := wl.TMax / 2
	estimate := func() float64 {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"model": "m", "query": probe, "t": probeT})
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("estimate: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate status %d", resp.StatusCode)
		}
		var out struct {
			Estimate float64 `json:"estimate"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Estimate
	}
	statsSnapshot := func() (gen uint64, applied uint64) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			Models []struct {
				Name       string `json:"name"`
				Generation uint64 `json:"generation"`
			} `json:"models"`
			Ingest map[string]struct {
				AppliedSeq uint64 `json:"applied_seq"`
			} `json:"ingest"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		for _, mi := range st.Models {
			if mi.Name == "m" {
				gen = mi.Generation
			}
		}
		return gen, st.Ingest["m"].AppliedSeq
	}

	before := estimate()

	// Concurrent estimate traffic for the whole lifetime of the update:
	// every response must be 200 and every value must match either the
	// old model or (after the swap) the new one — nothing in between.
	var (
		hammerWG  sync.WaitGroup
		seenMu    sync.Mutex
		seenVals  []float64
		stopHammr = make(chan struct{})
	)
	for g := 0; g < 4; g++ {
		hammerWG.Add(1)
		go func() {
			defer hammerWG.Done()
			for {
				select {
				case <-stopHammr:
					return
				default:
				}
				v := estimate()
				seenMu.Lock()
				seenVals = append(seenVals, v)
				seenMu.Unlock()
			}
		}()
	}

	// Post the insert batch over the live API.
	rng := rand.New(rand.NewSource(32))
	ins := make([][]float64, 40)
	for i := range ins {
		ins[i] = vecdata.SampleLike(rng, db, 0.05)
	}
	body, _ := json.Marshal(map[string]any{"insert": ins})
	resp, err := http.Post(ts.URL+"/v1/models/m/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.Seq != 1 {
		t.Fatalf("update status %d ack %+v", resp.StatusCode, ack)
	}

	// The worker is frozen at the retrain gate: the batch is journaled
	// and applied to the private database, but serving must still answer
	// from the generation-1 model with unchanged estimates.
	<-retraining
	if gen, applied := statsSnapshot(); gen != 1 || applied != 0 {
		t.Fatalf("before swap: generation %d applied %d, want 1, 0", gen, applied)
	}
	if v := estimate(); v != before {
		t.Fatalf("estimate changed before the swap: %v -> %v", before, v)
	}

	// Release the shadow retrain and wait for the batch to take effect.
	close(gate)
	if !pipe.WaitApplied("m", ack.Seq) {
		t.Fatal("batch never applied")
	}
	gen, applied := statsSnapshot()
	if gen != 2 || applied != 1 {
		t.Fatalf("after swap: generation %d applied %d, want 2, 1", gen, applied)
	}
	after := estimate()
	if after == before {
		t.Fatalf("estimates did not change after retrain+swap (%v)", after)
	}
	// The served value must be exactly the swapped-in shadow's estimate.
	pub, _ := srv.Registry().Get("m")
	if want := pub.Est.Estimate(probe, probeT); math.Abs(after-want) > 1e-9 {
		t.Fatalf("served %v but shadow computes %v", after, want)
	}

	close(stopHammr)
	hammerWG.Wait()
	// Every concurrently observed value corresponds to a published model:
	// the old one before the swap or the new one after — never a blend.
	for _, v := range seenVals {
		if math.Abs(v-before) > 1e-9 && math.Abs(v-after) > 1e-9 {
			t.Fatalf("observed estimate %v matching neither generation (%v / %v)", v, before, after)
		}
	}
}
