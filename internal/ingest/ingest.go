// Package ingest is the streaming update-ingestion subsystem behind
// POST /v1/models/{name}/update: it journals insert/delete batches into
// per-model append-only logs, coalesces pending batches, and runs a
// background shadow-retrain worker per model that (1) applies the
// batches to the model's private database copy, (2) runs the paper's
// Sec. 5.4 incremental-update procedure — the δ_U accuracy check and, if
// it fires, incremental training — on a shadow clone of the model, off
// the serving path, and (3) atomically hot-swaps the retrained shadow
// into the serve.Registry, bumping the model's generation so the
// estimate cache self-invalidates.
//
// Serving is never blocked or perturbed: published models are immutable,
// the shadow is private to the worker until the swap, and a swap is one
// copy-on-write registry publish. Backpressure is by journal depth
// (serve.ErrUpdateQueueFull -> HTTP 429), and Close drains every journal
// before returning, so acknowledged batches are never dropped on
// shutdown.
//
// With JournalConfig.Dir set, the journal is also crash-durable: every
// batch is appended to a per-model write-ahead log (wal.go) and fsynced
// before it is acknowledged, a background snapshotter persists the
// database and model so the log stays bounded (snapshot.go), and Attach
// replays the surviving tail on boot — acknowledged batches survive a
// SIGKILL, not just a graceful drain.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"selnet/internal/obs"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

// Updatable is the full-retrain surface of a model: the serving
// interface plus the Sec. 5.4 update procedure. *selnet.Net and
// *selnet.Partitioned both satisfy it.
type Updatable interface {
	serve.Estimator
	HandleUpdate(tc selnet.TrainConfig, uc selnet.UpdateConfig, db *vecdata.Database,
		train, valid []vecdata.Query) selnet.UpdateResult
	MAE(queries []vecdata.Query) float64
}

// Refresher is the cheaper capability of database-backed estimators
// (e.g. LSH sampling): no training procedure, but derived state can be
// rebuilt against an updated database. A cycle clones the estimator,
// binds the clone to a private copy of the updated database, refreshes,
// and hot-swaps — the same publish discipline as retraining.
type Refresher interface {
	serve.Estimator
	CloneEstimator() any
	BindDB(db *vecdata.Database) error
	Refresh()
}

// updateMode is how an attached estimator absorbs data changes; Attach
// picks the strongest capability the estimator offers and degrades
// gracefully from there.
type updateMode int

const (
	// modeRetrain: shadow clone + δ_U check + incremental training.
	modeRetrain updateMode = iota
	// modeRefresh: clone + rebind updated database + rebuild.
	modeRefresh
	// modeStatic: database apply and journaling only; the published
	// estimator never changes. Updates still matter — the database is
	// the recovery base and the shadow oracle's ground truth.
	modeStatic
)

func (m updateMode) String() string {
	switch m {
	case modeRetrain:
		return "retrain"
	case modeRefresh:
		return "refresh"
	default:
		return "static"
	}
}

// bulkApplier is the optional cluster-bookkeeping surface of partitioned
// models: inserted/deleted vectors must be registered so local labels
// and indicator balls stay sound (*selnet.Partitioned implements it;
// single models need no structural bookkeeping).
type bulkApplier interface {
	ApplyInsert(vecs [][]float64)
	ApplyDelete(vecs [][]float64)
}

// Config assembles a Pipeline.
type Config struct {
	// Registry receives retrained shadow models via hot-swap publishes.
	Registry *serve.Registry
	// QueueDepth bounds each model's pending-batch journal; appends
	// beyond it fail with serve.ErrUpdateQueueFull (default 64).
	QueueDepth int
	// CoalesceMax is the largest number of journaled batches fused into
	// one apply+retrain cycle (default 8).
	CoalesceMax int
	// RetrainWorkers caps concurrent shadow retrains across all models
	// (default 1): journaling and database application stay parallel, but
	// training is CPU-heavy and serving shares the machine.
	RetrainWorkers int
	// Train parameterizes incremental training; Update is the Sec. 5.4
	// procedure (δ_U, patience, epoch cap). The per-model baseline MAE is
	// managed by the pipeline and overrides Update.BaselineMAE.
	Train  selnet.TrainConfig
	Update selnet.UpdateConfig
	// OnCycle, if set, observes every completed apply+retrain cycle
	// (logging, tests). Called from the model's worker goroutine.
	OnCycle func(model string, c Cycle)
	// BeforeRetrain, if set, runs after a cycle's batches are coalesced
	// and applied to the private database but before the shadow clone and
	// δ_U check. Tests use it to freeze the pipeline at the point where
	// serving must still be answering from the old model.
	BeforeRetrain func(model string)
	// Shadow, if set, gets a per-model ground-truth oracle (a DBOracle
	// over the model's private database) registered at Attach, so live
	// requests sampled by the serving tap can be scored against the
	// exact data the model serves. Mutating cycles coordinate with the
	// oracle through its write lock.
	Shadow *obs.Shadow
	// Oracle tunes the shadow oracle's sampling bounds; zero values take
	// the defaults (budget 2000, eps 0.05, delta 0.01).
	Oracle OracleConfig
	// Workload, if set, receives a baseline snapshot of each model's
	// training workload at Attach, against which the live query stream
	// is compared for shift detection; the resulting divergence is
	// surfaced as retraining advice in UpdaterStats.
	Workload *obs.WorkloadMonitor
	// Drift, if set, receives an online accuracy audit after every
	// cycle: a holdout of the model's freshly relabelled validation
	// queries is scored against the *serving* estimator — the answers
	// clients are getting right now versus current ground truth — and
	// fed into the monitor's rolling q-error window. Runs on the
	// model's worker goroutine, off the serving path.
	Drift *obs.DriftMonitor
	// DriftSample caps the holdout queries scored per cycle (default 32).
	DriftSample int
	// Journal configures the durable write-ahead log; the zero value
	// keeps the journal in memory only (the pre-WAL behavior).
	Journal JournalConfig
}

// JournalConfig enables crash-durable journaling when Dir is non-empty:
// each model's accepted batches are appended to <dir>/<name>.wal and
// fsynced (group-committed across concurrent producers) before Enqueue
// acknowledges, so a batch answered 202 survives a SIGKILL. Attach then
// recovers on boot — snapshot load, tail replay through the normal
// apply+retrain pipeline — and a background snapshotter persists the
// model's private database and weights so the log's applied prefix can
// be compacted away.
type JournalConfig struct {
	// Dir is the journal directory; empty disables durability.
	Dir string
	// SnapshotEvery is the number of applied batches between snapshots
	// (default 64). Each snapshot persists the database and current model
	// and lets the WAL drop everything it covers.
	SnapshotEvery int
	// CompactBytes forces a snapshot+compaction once a model's WAL
	// exceeds this size regardless of batch count (default 4 MiB).
	CompactBytes int64
	// SyncInterval > 0 replaces the immediate per-append group commit
	// with a tick-based fsync window: the producer that wins the commit
	// lock sleeps this long before fsyncing, so sustained ingest load
	// batches many records per fsync at the cost of up to SyncInterval
	// of added ack latency. 0 (the default) fsyncs as soon as the commit
	// lock is free — the lowest-latency setting, but one fsync per idle
	// producer.
	SyncInterval time.Duration
	// OnRecover, if set, observes each model's boot-time recovery.
	OnRecover func(model string, r Recovery)
}

func (c JournalConfig) withDefaults() JournalConfig {
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 64
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 4 << 20
	}
	return c
}

// Recovery reports what Attach restored from the journal directory.
type Recovery struct {
	// SnapshotSeq is the applied sequence of the snapshot the database
	// was restored from (0 when no snapshot existed and the database is
	// the operator-supplied one).
	SnapshotSeq uint64
	// RestoredModel reports that the snapshot also carried model weights,
	// which were published to the registry in place of the caller's model.
	RestoredModel bool
	// Replayed is the number of surviving log entries queued for replay
	// through the apply+retrain pipeline.
	Replayed int
	// DiscardedBytes counts truncated/corrupt WAL tail bytes dropped.
	DiscardedBytes int64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 8
	}
	if c.RetrainWorkers <= 0 {
		c.RetrainWorkers = 1
	}
	if c.DriftSample <= 0 {
		c.DriftSample = 32
	}
	c.Journal = c.Journal.withDefaults()
	return c
}

// Cycle reports one coalesced apply+retrain cycle.
type Cycle struct {
	// FirstSeq..LastSeq are the journal sequences fused into the cycle.
	FirstSeq, LastSeq uint64
	// Batches is the number of journal entries coalesced; Inserted and
	// Deleted count vectors actually applied to the database (deletes of
	// absent vectors do not count).
	Batches, Inserted, Deleted int
	// Result is the Sec. 5.4 outcome on the shadow model.
	Result selnet.UpdateResult
	// Swapped reports whether the shadow was published; Generation is its
	// registry generation when it was.
	Swapped    bool
	Generation uint64
	// Adopted reports that an externally hot-swapped model (a manual
	// POST /v1/models/{name}) was taken over as the new shadow base.
	Adopted bool
	// Err is set when the cycle failed before the δ_U check (e.g. the
	// model could not be cloned); the batches still count as applied.
	Err error

	Duration time.Duration
}

// Pipeline fans journaled update batches into per-model shadow-retrain
// workers. All methods are safe for concurrent use.
type Pipeline struct {
	cfg Config
	sem chan struct{} // retrain permits

	// snapCh feeds the background snapshotter; snapWG tracks it. Both are
	// nil without a journal directory. snapBusy is set while a snapshot
	// is queued or being written so workers skip the (O(|D|)) clone they
	// would otherwise throw away.
	snapCh   chan snapshotRequest
	snapWG   sync.WaitGroup
	snapBusy atomic.Bool

	mu     sync.Mutex
	models map[string]*modelPipeline
	closed bool
	wg     sync.WaitGroup
}

// snapshotRequest carries one model's cloned recovery base to the
// snapshotter goroutine.
type snapshotRequest struct {
	mp   *modelPipeline
	snap modelSnapshot
}

// modelPipeline is one model's ingest state. Everything below the
// journal is owned by the worker goroutine; stats are the only shared
// state and sit behind their own mutex.
type modelPipeline struct {
	name  string
	mode  updateMode
	j     *journal
	db    *vecdata.Database
	train []vecdata.Query
	valid []vecdata.Query
	cur   serve.Estimator
	// published is the estimator this pipeline last installed in (or
	// attached to) the registry; when the registry holds something else,
	// an operator hot-swapped a model manually and the pipeline adopts it
	// as the new shadow base instead of clobbering it.
	published serve.Estimator
	// baseline is the reference MAE of the δ_U trigger: the validation
	// MAE recorded when the model was last (re)trained, so drift
	// accumulates across skipped updates (Sec. 5.4).
	baseline float64
	// wal is the model's durable log (nil without a journal directory);
	// sinceSnap counts applied batches since the last snapshot request
	// and is worker-owned.
	wal       *WAL
	sinceSnap int
	// driftOff rotates the drift holdout through the validation set so
	// consecutive cycles score different queries (worker-owned).
	driftOff int
	// oracle is the model's shadow ground-truth oracle (nil without
	// Config.Shadow); cycles bracket database mutations with its write
	// lock so concurrent ground-truth scans see batch-atomic state.
	oracle *DBOracle

	statsMu sync.Mutex
	stats   serve.UpdaterStats
}

// New builds a pipeline; cfg.Registry must be set.
func New(cfg Config) *Pipeline {
	if cfg.Registry == nil {
		panic("ingest: Config.Registry must be set")
	}
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.RetrainWorkers),
		models: make(map[string]*modelPipeline),
	}
	if cfg.Journal.Dir != "" {
		// Capacity 1 with drop-if-busy send: a snapshot in progress never
		// blocks a worker, it just defers compaction to a later cycle.
		p.snapCh = make(chan snapshotRequest, 1)
		p.snapWG.Add(1)
		go p.snapshotter()
	}
	return p
}

// Attach registers a model for streaming updates. db is the model's
// private database copy (the pipeline owns it afterwards); train and
// valid are labelled query sets whose labels are current against db —
// they are relabelled in place as updates arrive. The model must be
// published in the registry under the same name before updates arrive:
// retrained shadows are installed with a compare-and-swap against this
// pipeline's last publish, so with no registry entry (or after a manual
// Remove) they are deliberately not published. Attach starts the
// model's worker goroutine.
//
// With a journal directory configured, Attach first recovers: the
// caller's db is replaced by the latest durable snapshot when one
// exists (and the snapshot's model weights, if present, are published
// to the registry, superseding the caller's model), the WAL's corrupt
// tail is discarded, and every surviving record past the snapshot's
// applied sequence is queued for replay through the normal
// apply+retrain pipeline — so the δ_U loop resumes exactly where the
// previous process left off and every acknowledged batch takes effect.
func (p *Pipeline) Attach(name string, m serve.Estimator, db *vecdata.Database, train, valid []vecdata.Query) error {
	if name == "" {
		return fmt.Errorf("ingest: empty model name")
	}
	if m == nil || db == nil {
		return fmt.Errorf("ingest: nil model or database for %q", name)
	}
	if m.Dim() != db.Dim {
		return fmt.Errorf("ingest: model %q has dim %d but database has dim %d", name, m.Dim(), db.Dim)
	}
	mode := modeOf(m)
	if mode == modeRetrain {
		if _, err := cloneEstimator(m); err != nil {
			return fmt.Errorf("ingest: model %q: %w", name, err)
		}
		if len(valid) == 0 {
			return fmt.Errorf("ingest: model %q needs validation queries for the delta_U check", name)
		}
	}

	// Fail the cheap structural checks before recovery: recover publishes
	// the snapshot model to the live registry, which must not happen for
	// an Attach that is going to be rejected. (A concurrent duplicate
	// Attach is still caught by the authoritative re-check below.)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return serve.ErrUpdaterClosed
	}
	if _, dup := p.models[name]; dup {
		p.mu.Unlock()
		return fmt.Errorf("ingest: model %q already attached", name)
	}
	p.mu.Unlock()

	mp := &modelPipeline{
		name:  name,
		mode:  mode,
		db:    db,
		train: train,
		valid: valid,
		cur:   m,
	}
	if p.cfg.Journal.Dir != "" {
		if err := p.recover(mp); err != nil {
			return err
		}
		// Recovery may have swapped in a snapshot model of a different
		// capability class; re-derive the mode from what will serve.
		mp.mode = modeOf(mp.cur)
	}
	if mp.j == nil {
		mp.j = newJournal(p.cfg.QueueDepth, memStore{})
	}
	mp.published = mp.cur
	if mp.mode == modeRetrain {
		mp.baseline = mp.cur.(Updatable).MAE(mp.valid)
	}
	mp.stats.QueueCapacity = p.cfg.QueueDepth
	mp.stats.Mode = mp.mode.String()

	// Observability hookup: the shadow scorer gets a ground-truth oracle
	// over the (possibly just-recovered) private database, and the
	// workload monitor a baseline snapshot of the training workload.
	if p.cfg.Shadow != nil {
		mp.oracle = NewDBOracle(mp.db, p.cfg.Oracle)
		p.cfg.Shadow.SetOracle(name, mp.oracle)
	}
	if p.cfg.Workload != nil {
		qs := make([][]float64, 0, len(mp.train)+len(mp.valid))
		ts := make([]float64, 0, len(mp.train)+len(mp.valid))
		for _, set := range [][]vecdata.Query{mp.train, mp.valid} {
			for _, q := range set {
				qs = append(qs, q.X)
				ts = append(ts, q.T)
			}
		}
		p.cfg.Workload.SetBaseline(name, qs, ts)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		if mp.wal != nil {
			mp.wal.Close()
		}
		return serve.ErrUpdaterClosed
	}
	if _, dup := p.models[name]; dup {
		if mp.wal != nil {
			mp.wal.Close()
		}
		return fmt.Errorf("ingest: model %q already attached", name)
	}
	p.models[name] = mp
	p.wg.Add(1)
	go p.worker(mp)
	return nil
}

// recover restores mp's durable state from the journal directory: the
// snapshot becomes the database (and, when it carries weights, the
// model — published to the registry so serving resumes from the exact
// pre-crash state), and the WAL's surviving entries are seeded into the
// journal for replay. Labels are recomputed against the recovered
// database so the δ_U baseline is sound.
func (p *Pipeline) recover(mp *modelPipeline) error {
	cfg := p.cfg.Journal
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("ingest: journal dir: %w", err)
	}

	var rec Recovery
	snap, haveSnap, err := loadSnapshot(snapshotPath(cfg.Dir, mp.name), mp.name)
	if err != nil {
		return err
	}
	if haveSnap {
		if snap.db.Dim != mp.db.Dim {
			return fmt.Errorf("ingest: snapshot for %q has dim %d but database has dim %d",
				mp.name, snap.db.Dim, mp.db.Dim)
		}
		if snap.model != nil && snap.model.Dim() != mp.db.Dim {
			return fmt.Errorf("ingest: snapshot model for %q has dim %d but database has dim %d",
				mp.name, snap.model.Dim(), mp.db.Dim)
		}
		rec.SnapshotSeq = snap.appliedSeq
	}

	w, walRec, err := OpenWAL(walPath(cfg.Dir, mp.name), mp.name)
	if err != nil {
		return err
	}
	w.SetSyncInterval(cfg.SyncInterval)
	if walRec.BaseApplied > rec.SnapshotSeq {
		// The log was compacted past what any surviving snapshot covers:
		// the dropped prefix is unrecoverable and silently resuming would
		// serve a database missing acknowledged batches.
		w.Close()
		return fmt.Errorf("ingest: journal for %q compacted to seq %d but no snapshot covers it (snapshot seq %d)",
			mp.name, walRec.BaseApplied, rec.SnapshotSeq)
	}

	// Everything that can fail has; adopting the snapshot — including
	// the registry publish, which mutates live serving state — is safe
	// now.
	if haveSnap {
		snap.db.Name = mp.db.Name
		mp.db = snap.db
		if snap.model != nil {
			mp.cur = snap.model
			if _, err := p.cfg.Registry.Publish(mp.name, snap.model,
				fmt.Sprintf("journal: snapshot seq %d", snap.appliedSeq)); err != nil {
				w.Close()
				return err
			}
			rec.RestoredModel = true
		}
		// The caller labelled train/valid against its own database; the
		// snapshot supersedes it, so recompute.
		vecdata.Relabel(mp.train, mp.db)
		vecdata.Relabel(mp.valid, mp.db)
	}
	mp.wal = w
	mp.j = newJournal(p.cfg.QueueDepth, w)
	rec.Replayed = mp.j.restore(rec.SnapshotSeq, walRec.Entries)
	rec.DiscardedBytes = walRec.DiscardedBytes

	mp.stats.Durable = true
	mp.stats.ReplayedBatches = uint64(rec.Replayed)
	mp.stats.SnapshotSeq = rec.SnapshotSeq
	if cfg.OnRecover != nil {
		cfg.OnRecover(mp.name, rec)
	}
	return nil
}

// Enqueue journals one insert/delete batch for the named model. It
// implements serve.Updater, so the HTTP server forwards
// POST /v1/models/{name}/update here.
func (p *Pipeline) Enqueue(model string, insert, del [][]float64) (serve.UpdateAck, error) {
	mp := p.lookup(model)
	if mp == nil {
		return serve.UpdateAck{}, serve.ErrNotUpdatable
	}
	for i, v := range insert {
		if len(v) != mp.db.Dim {
			return serve.UpdateAck{}, fmt.Errorf("%w: insert %d has dim %d, model %q expects %d",
				serve.ErrInvalidUpdate, i, len(v), model, mp.db.Dim)
		}
	}
	for i, v := range del {
		if len(v) != mp.db.Dim {
			return serve.UpdateAck{}, fmt.Errorf("%w: delete %d has dim %d, model %q expects %d",
				serve.ErrInvalidUpdate, i, len(v), model, mp.db.Dim)
		}
	}
	e, depth, err := mp.j.append(insert, del)
	if err != nil {
		return serve.UpdateAck{}, err
	}
	return serve.UpdateAck{Seq: e.Seq, QueueDepth: depth}, nil
}

// Replicate journals a chunk of leader-assigned entries for the named
// model, the follower half of WAL streaming replication: entries are
// appended at their original sequence numbers (skipping any the local
// journal already holds, so re-pulled ranges replay idempotently),
// fsynced once as a group, and then flow through the same worker
// apply+retrain path as local updates. It returns how many entries were
// newly journaled; a queue-full stop after a partial chunk is not an
// error — the caller re-pulls from its new position once the worker
// drains.
func (p *Pipeline) Replicate(model string, entries []Entry) (accepted int, err error) {
	mp := p.lookup(model)
	if mp == nil {
		return 0, serve.ErrNotUpdatable
	}
	for _, e := range entries {
		for _, set := range [2][][]float64{e.Insert, e.Delete} {
			for _, v := range set {
				if len(v) != mp.db.Dim {
					return 0, fmt.Errorf("%w: replicated seq %d has dim %d, model %q expects %d",
						serve.ErrInvalidUpdate, e.Seq, len(v), model, mp.db.Dim)
				}
			}
		}
	}
	for _, e := range entries {
		ok, aerr := mp.j.appendAt(e)
		if aerr != nil {
			if errors.Is(aerr, serve.ErrUpdateQueueFull) && accepted > 0 {
				break
			}
			if accepted > 0 {
				if serr := mp.j.sync(); serr != nil {
					return accepted, serr
				}
			}
			return accepted, aerr
		}
		if ok {
			accepted++
		}
	}
	if accepted > 0 {
		if serr := mp.j.sync(); serr != nil {
			return accepted, serr
		}
	}
	return accepted, nil
}

// TailWAL opens a streaming reader over the named model's write-ahead
// log resuming after the given sequence, for serving replication pulls.
// It fails for models without a durable journal and with ErrWALCompacted
// when the log no longer reaches back to the requested position.
func (p *Pipeline) TailWAL(model string, after uint64) (*WALTailer, error) {
	mp := p.lookup(model)
	if mp == nil {
		return nil, serve.ErrNotUpdatable
	}
	if mp.wal == nil {
		return nil, fmt.Errorf("ingest: model %q has no durable journal to stream", model)
	}
	return TailWAL(mp.wal.path, after)
}

// Position reports the named model's journal position: the last assigned
// (journaled) sequence and the last applied one.
func (p *Pipeline) Position(model string) (lastSeq, applied uint64, ok bool) {
	mp := p.lookup(model)
	if mp == nil {
		return 0, 0, false
	}
	lastSeq, applied, _ = mp.j.snapshot()
	return lastSeq, applied, true
}

// WaitApplied blocks until the named model's applied sequence reaches
// seq (i.e. the batch has been applied and its retrain cycle decided).
// It returns false for unknown models or when the pipeline closes with
// seq unreachable.
func (p *Pipeline) WaitApplied(model string, seq uint64) bool {
	mp := p.lookup(model)
	if mp == nil {
		return false
	}
	return mp.j.waitApplied(seq)
}

// UpdaterStats implements serve.Updater: a snapshot of every attached
// model's ingest counters.
func (p *Pipeline) UpdaterStats() map[string]serve.UpdaterStats {
	p.mu.Lock()
	models := make([]*modelPipeline, 0, len(p.models))
	for _, mp := range p.models {
		models = append(models, mp)
	}
	p.mu.Unlock()

	out := make(map[string]serve.UpdaterStats, len(models))
	for _, mp := range models {
		lastSeq, applied, depth := mp.j.snapshot()
		mp.statsMu.Lock()
		s := mp.stats
		mp.statsMu.Unlock()
		s.NextSeq = lastSeq
		s.AppliedSeq = applied
		s.Lag = lastSeq - applied
		s.QueueDepth = depth
		if mp.wal != nil {
			ws := mp.wal.Stats()
			s.JournaledBatches = ws.Appends
			s.JournalBytes = ws.Size
			s.JournalSyncs = ws.Syncs
			s.Compactions = ws.Compactions
		}
		if p.cfg.Workload != nil {
			if ws, ok := p.cfg.Workload.ModelStats(mp.name); ok {
				s.WorkloadDivergence = ws.Divergence
				s.WorkloadShiftExceeded = ws.Exceeded
				s.RetrainAdvised = ws.ShiftAdvised
			}
		}
		out[mp.name] = s
	}
	return out
}

// Close stops accepting batches and drains: every journaled entry is
// still applied (and retrained if δ_U fires) before Close returns — the
// drain-on-shutdown guarantee. With a journal directory, pending
// snapshots finish and the WALs are fsynced and closed, so the next
// boot replays only what the drain could not absorb. Idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		p.snapWG.Wait()
		return
	}
	p.closed = true
	models := make([]*modelPipeline, 0, len(p.models))
	for _, mp := range p.models {
		models = append(models, mp)
	}
	p.mu.Unlock()
	for _, mp := range models {
		mp.j.close()
	}
	p.wg.Wait()
	if p.snapCh != nil {
		close(p.snapCh)
		p.snapWG.Wait()
	}
	for _, mp := range models {
		if mp.wal != nil {
			mp.wal.Close()
		}
	}
}

func (p *Pipeline) lookup(model string) *modelPipeline {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.models[model]
}

// worker drains one model's journal until close, one coalesced cycle at
// a time.
func (p *Pipeline) worker(mp *modelPipeline) {
	defer p.wg.Done()
	for {
		entries := mp.j.claim(p.cfg.CoalesceMax)
		if len(entries) == 0 {
			return
		}
		c := p.cycle(mp, entries)
		mp.j.markApplied(c.LastSeq, c.Batches)
		p.maybeSnapshot(mp, c)
		p.scoreDrift(mp, c)
		if p.cfg.OnCycle != nil {
			p.cfg.OnCycle(mp.name, c)
		}
	}
}

// maybeSnapshot hands the snapshotter a cloned recovery base once enough
// batches (or WAL bytes) have accumulated since the last one. The clone
// happens here, on the worker goroutine that owns db and cur, so the
// snapshot is a consistent view at exactly the applied sequence. The
// snapshot write — the expensive part, O(database + model) — happens off
// the ingest path; the WAL compaction that follows briefly stalls update
// acks (they group-commit behind it), bounded by the WAL size cap.
func (p *Pipeline) maybeSnapshot(mp *modelPipeline, c Cycle) {
	if mp.wal == nil {
		return
	}
	mp.sinceSnap += c.Batches
	if mp.sinceSnap < p.cfg.Journal.SnapshotEvery && mp.wal.sizeBytes() < p.cfg.Journal.CompactBytes {
		return
	}
	// Claim the snapshotter before cloning: the clones are O(database),
	// too expensive to produce on the apply path just to throw away when
	// a snapshot is already in flight. The counter keeps accumulating so
	// a later cycle retries.
	if !p.snapBusy.CompareAndSwap(false, true) {
		return
	}
	// Static estimators are immutable — no mutation path ever touches
	// them — so the snapshotter can serialize the live value; the other
	// modes clone so the worker's next cycle never races the write.
	model := mp.cur
	if mp.mode != modeStatic {
		var err error
		model, err = cloneEstimator(mp.cur)
		if err != nil {
			// Attach verified cloneability, so this is unreachable in
			// practice; skip the snapshot rather than wedge the worker.
			p.snapBusy.Store(false)
			return
		}
	}
	p.snapCh <- snapshotRequest{
		mp:   mp,
		snap: modelSnapshot{appliedSeq: c.LastSeq, db: mp.db.Clone(), model: model},
	}
	mp.sinceSnap = 0
}

// scoreDrift audits the serving model after a cycle: it estimates a
// rotating holdout of mp.valid — whose labels the cycle's HandleUpdate
// just recomputed against the updated database — with the estimator the
// registry is actually serving (not the fresh shadow), and feeds the
// q-errors to the drift monitor. A cycle whose retrain was skipped by
// δ_U but whose data moved shows up here as a rising quantile.
func (p *Pipeline) scoreDrift(mp *modelPipeline, c Cycle) {
	if p.cfg.Drift == nil || c.Err != nil || len(mp.valid) == 0 {
		return
	}
	est := mp.cur
	if m, ok := p.cfg.Registry.Get(mp.name); ok {
		est = m.Est
	}
	n := p.cfg.DriftSample
	if n > len(mp.valid) {
		n = len(mp.valid)
	}
	pred := make([]float64, n)
	label := make([]float64, n)
	for i := 0; i < n; i++ {
		q := mp.valid[(mp.driftOff+i)%len(mp.valid)]
		pred[i] = est.Estimate(q.X, q.T)
		label[i] = q.Y
	}
	mp.driftOff = (mp.driftOff + n) % len(mp.valid)
	p.cfg.Drift.Observe(mp.name, pred, label)
}

// snapshotter serializes snapshot writes and WAL compactions for every
// model in the pipeline.
func (p *Pipeline) snapshotter() {
	defer p.snapWG.Done()
	dir := p.cfg.Journal.Dir
	for req := range p.snapCh {
		mp := req.mp
		err := writeSnapshot(snapshotPath(dir, mp.name), mp.name, req.snap)
		if err == nil {
			err = mp.wal.Compact(req.snap.appliedSeq)
		}
		mp.statsMu.Lock()
		if err != nil {
			mp.stats.JournalErrors++
		} else {
			mp.stats.SnapshotSeq = req.snap.appliedSeq
		}
		mp.statsMu.Unlock()
		p.snapBusy.Store(false)
	}
}

// cycle runs one coalesced apply + shadow-retrain + swap pass. The
// database and query labels mutate first (they are pipeline-private);
// the serving model only changes at the final registry publish.
func (p *Pipeline) cycle(mp *modelPipeline, entries []Entry) Cycle {
	start := time.Now()
	c := Cycle{FirstSeq: entries[0].Seq, LastSeq: entries[len(entries)-1].Seq, Batches: len(entries)}
	// Entries apply in journal order (a delete only matches vectors
	// present at its position in the stream). Deletions are resolved
	// through a value index built at most once per cycle and maintained
	// across the coalesced entries, then compacted out of the database in
	// a single Delete pass.
	var inserted, deleted [][]float64
	var index *valueIndex
	var drop []int
	// With a shadow oracle attached, the mutation is bracketed by its
	// write lock so concurrent ground-truth scans never observe a
	// half-applied batch.
	if mp.oracle != nil {
		mp.oracle.BeginMutate()
	}
	for _, e := range entries {
		if len(e.Insert) > 0 {
			base := mp.db.Size()
			mp.db.Insert(e.Insert...)
			if index != nil {
				index.add(base, e.Insert)
			}
			inserted = append(inserted, e.Insert...)
		}
		for _, v := range e.Delete {
			if index == nil {
				index = newValueIndex(mp.db)
			}
			if i, ok := index.remove(v); ok {
				drop = append(drop, i)
				deleted = append(deleted, v)
			}
		}
	}
	mp.db.Delete(drop...)
	if mp.oracle != nil {
		mp.oracle.EndMutate()
	}
	c.Inserted, c.Deleted = len(inserted), len(deleted)

	if p.cfg.BeforeRetrain != nil {
		p.cfg.BeforeRetrain(mp.name)
	}

	// A static estimator is done: the database and journal carry the
	// update; the published model is immutable by construction.
	if mp.mode == modeStatic {
		c.Duration = time.Since(start)
		p.recordCycle(mp, c)
		return c
	}

	// Shadow step under the retrain semaphore: clone, register the
	// structural change, run the mode's rebuild — the δ_U check +
	// incremental training, or a database rebind + refresh.
	p.sem <- struct{}{}
	p.adoptManualSwap(mp, &c)
	shadowEst, err := cloneEstimator(mp.cur)
	if err != nil {
		<-p.sem
		c.Err = err
		c.Duration = time.Since(start)
		p.recordCycle(mp, c)
		return c
	}

	if mp.mode == modeRefresh {
		r := shadowEst.(Refresher)
		// The clone gets its own copy of the updated database so later
		// worker cycles never mutate what it serves from.
		if err := r.BindDB(mp.db.Clone()); err != nil {
			<-p.sem
			c.Err = err
			c.Duration = time.Since(start)
			p.recordCycle(mp, c)
			return c
		}
		r.Refresh()
		<-p.sem
		mp.cur = shadowEst
		m, swapped, perr := p.cfg.Registry.PublishIf(mp.name, shadowEst,
			fmt.Sprintf("ingest: refresh seq %d-%d", c.FirstSeq, c.LastSeq), mp.published)
		switch {
		case perr != nil:
			c.Err = perr
		case swapped:
			c.Swapped = true
			c.Generation = m.Generation
			mp.published = shadowEst
		}
		c.Duration = time.Since(start)
		p.recordCycle(mp, c)
		return c
	}

	shadow := shadowEst.(Updatable)
	if ba, ok := shadowEst.(bulkApplier); ok {
		if len(inserted) > 0 {
			ba.ApplyInsert(inserted)
		}
		if len(deleted) > 0 {
			ba.ApplyDelete(deleted)
		}
	}
	uc := p.cfg.Update
	uc.BaselineMAE = mp.baseline
	c.Result = shadow.HandleUpdate(p.cfg.Train, uc, mp.db, mp.train, mp.valid)
	<-p.sem

	// The shadow carries the authoritative structural state (cluster
	// membership, ball radii) even when δ_U absorbed the change, so it
	// always becomes the next cycle's base.
	mp.cur = shadow
	if c.Result.Retrained {
		// Conditional on the registry still holding what this pipeline
		// last published: if a manual load slipped in while the shadow was
		// training, the swap is abandoned and the next cycle adopts the
		// operator's model instead.
		m, swapped, perr := p.cfg.Registry.PublishIf(mp.name, shadow,
			fmt.Sprintf("ingest: seq %d-%d", c.FirstSeq, c.LastSeq), mp.published)
		switch {
		case perr != nil:
			c.Err = perr
		case swapped:
			c.Swapped = true
			c.Generation = m.Generation
			mp.published = shadow
			mp.baseline = c.Result.MAEAfter
		}
	}
	c.Duration = time.Since(start)
	p.recordCycle(mp, c)
	return c
}

// adoptManualSwap takes over an operator's manually loaded model as the
// new shadow base when it is compatible with this pipeline's mode — so
// the next publish never silently reverts a manual POST /v1/models.
// Validation labels are still pre-update here, so an adopted retrain
// baseline reflects the data the model was loaded against, exactly like
// the baseline recorded at Attach.
func (p *Pipeline) adoptManualSwap(mp *modelPipeline, c *Cycle) {
	pub, ok := p.cfg.Registry.Get(mp.name)
	if !ok || pub.Est == mp.published || pub.Est.Dim() != mp.db.Dim {
		return
	}
	if modeOf(pub.Est) != mp.mode {
		return
	}
	if _, cerr := cloneEstimator(pub.Est); cerr != nil {
		return
	}
	mp.cur, mp.published = pub.Est, pub.Est
	if mp.mode == modeRetrain {
		mp.baseline = pub.Est.(Updatable).MAE(mp.valid)
	}
	c.Adopted = true
}

// recordCycle folds a cycle into the model's stats.
func (p *Pipeline) recordCycle(mp *modelPipeline, c Cycle) {
	mp.statsMu.Lock()
	defer mp.statsMu.Unlock()
	s := &mp.stats
	s.BatchesApplied += uint64(c.Batches)
	s.InsertedVecs += uint64(c.Inserted)
	s.DeletedVecs += uint64(c.Deleted)
	if c.Err == nil {
		switch mp.mode {
		case modeRetrain:
			if c.Result.Retrained {
				s.Retrained++
			} else {
				s.Skipped++
			}
			s.LastMAEBefore = c.Result.MAEBefore
			s.LastMAEAfter = c.Result.MAEAfter
			s.LastEpochs = c.Result.EpochsRun
		case modeRefresh:
			if c.Swapped {
				s.Refreshed++
			}
		}
	}
	if c.Swapped {
		s.SwapGeneration = c.Generation
	}
}

// modeOf picks the strongest update capability an estimator offers.
// Retraining needs the Sec. 5.4 surface and cloneability; refreshing
// needs clone + rebind; everything else serves statically.
func modeOf(m serve.Estimator) updateMode {
	if _, ok := m.(Updatable); ok {
		if _, err := cloneEstimator(m); err == nil {
			return modeRetrain
		}
	}
	if _, ok := m.(Refresher); ok {
		return modeRefresh
	}
	return modeStatic
}

// cloneEstimator deep-copies a model through its CloneEstimator
// capability, for shadow retraining, refresh rebuilds and snapshots.
func cloneEstimator(m serve.Estimator) (serve.Estimator, error) {
	c, ok := m.(interface{ CloneEstimator() any })
	if !ok {
		return nil, fmt.Errorf("ingest: cannot clone model of type %T", m)
	}
	v, ok := c.CloneEstimator().(serve.Estimator)
	if !ok || v == nil {
		return nil, fmt.Errorf("ingest: clone of %T failed", m)
	}
	return v, nil
}

// valueIndex resolves delete-by-value against a database in O(1) per
// vector (absent vectors miss, so delete batches are idempotent against
// replays). Building it costs one O(|D|) pass; a cycle maintains it
// incrementally across coalesced entries so the whole apply step is
// O(|D| + inserts + deletes) instead of O(|D|·deletes).
type valueIndex struct {
	byValue map[string][]int // vector value key -> database row indices
}

func newValueIndex(db *vecdata.Database) *valueIndex {
	ix := &valueIndex{byValue: make(map[string][]int, db.Size())}
	ix.add(0, db.Vecs)
	return ix
}

// add registers vecs occupying database rows base, base+1, ...
func (ix *valueIndex) add(base int, vecs [][]float64) {
	for i, v := range vecs {
		k := vecValueKey(v)
		ix.byValue[k] = append(ix.byValue[k], base+i)
	}
}

// remove claims one row holding a vector equal to v, if any.
func (ix *valueIndex) remove(v []float64) (int, bool) {
	k := vecValueKey(v)
	left := ix.byValue[k]
	if len(left) == 0 {
		return 0, false
	}
	ix.byValue[k] = left[:len(left)-1]
	return left[len(left)-1], true
}

// vecValueKey is the exact-value identity of a vector (float bits, with
// -0.0 normalized to +0.0 so the key agrees with == comparison).
func vecValueKey(v []float64) string {
	buf := make([]byte, 0, 8*len(v))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x+0))
	}
	return string(buf)
}
