// Package dln implements the Deep Lattice Network baseline (You et al.,
// NIPS 2017 — reference [40] of the paper): interlaced calibration and
// lattice-ensemble layers with partial monotonicity. Following the paper's
// Appendix B.2, the architecture has six layers — calibrators, linear
// embedding, calibrators, ensemble of lattices, calibrator, linear output.
//
// Monotonicity in the threshold t is guaranteed structurally: t passes
// through a monotone calibrator (non-decreasing outputs via isotonic
// projection), non-negative linear weights, monotone mid calibrators,
// lattices whose vertex values are projected to be non-decreasing along
// every edge, and a final monotone path. Sec. 6.2 of the SelNet paper
// analyses why this family underfits query-dependent selectivity curves:
// the calibrator keypoints are fixed and equally spaced, so — unlike
// SelNet — DLN cannot concentrate resolution where one query's curve
// bends. This implementation retains exactly that limitation on purpose.
package dln

import (
	"math"
	"math/rand"
	"sort"

	"selnet/internal/autodiff"
	"selnet/internal/nn"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// logEps pads selectivities before the logarithm, as in the paper's loss.
const logEps = 1e-3

// Config holds the DLN hyper-parameters.
type Config struct {
	Keypoints   int // calibrator keypoints (fixed, equally spaced)
	EmbedDim    int // linear embedding width
	NumLattices int // ensemble size
	LatticeDim  int // inputs per lattice
	Epochs      int
	Batch       int
	LR          float64
	HuberDelta  float64
	Seed        int64
}

// DefaultConfig returns the harness defaults.
func DefaultConfig() Config {
	return Config{
		Keypoints: 8, EmbedDim: 8, NumLattices: 6, LatticeDim: 3,
		Epochs: 60, Batch: 128, LR: 3e-3, HuberDelta: 1.345, Seed: 1,
	}
}

// calibrator is a 1-D piece-wise linear map with fixed keypoints and
// learnable outputs. When monotone, outputs are projected to be
// non-decreasing after every optimizer step (isotonic regression).
type calibrator struct {
	keypoints []float64 // fixed, ascending
	outputs   *nn.Param // 1 x len(keypoints)
	monotone  bool
}

func newCalibrator(rng *rand.Rand, name string, lo, hi float64, k int, monotone bool) *calibrator {
	if hi <= lo {
		hi = lo + 1
	}
	c := &calibrator{
		keypoints: make([]float64, k),
		outputs:   nn.NewParam(name, 1, k),
		monotone:  monotone,
	}
	for i := 0; i < k; i++ {
		c.keypoints[i] = lo + (hi-lo)*float64(i)/float64(k-1)
		// Initialize to the identity-like ramp in [0, 1].
		c.outputs.Value.Set(0, i, float64(i)/float64(k-1))
	}
	return c
}

// apply evaluates the calibrator on the column vector x (batch x 1).
func (c *calibrator) apply(tp *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	n := x.Rows()
	kp := tp.Input(tensor.RowVector(c.keypoints))
	tau := tp.RepeatRows(kp, n)
	p := tp.RepeatRows(c.outputs.Node(tp), n)
	return tp.PWLInterp(tau, p, x)
}

// project enforces the monotone constraint (and [0,1] clamping for inner
// calibrators feeding lattices) after an optimizer step.
func (c *calibrator) project(clamp01 bool) {
	out := c.outputs.Value.Row(0)
	if c.monotone {
		isotonicProject(out)
	}
	if clamp01 {
		for i, v := range out {
			if v < 0 {
				out[i] = 0
			} else if v > 1 {
				out[i] = 1
			}
		}
	}
}

// isotonicProject replaces vals with its L2 projection onto the
// non-decreasing cone (pool adjacent violators).
func isotonicProject(vals []float64) {
	n := len(vals)
	// Blocks of pooled values: value, weight.
	type block struct {
		sum float64
		w   float64
	}
	blocks := make([]block, 0, n)
	for _, v := range vals {
		blocks = append(blocks, block{sum: v, w: 1})
		for len(blocks) > 1 {
			last := blocks[len(blocks)-1]
			prev := blocks[len(blocks)-2]
			if prev.sum/prev.w <= last.sum/last.w {
				break
			}
			blocks = blocks[:len(blocks)-1]
			blocks[len(blocks)-1] = block{sum: prev.sum + last.sum, w: prev.w + last.w}
		}
	}
	i := 0
	for _, b := range blocks {
		mean := b.sum / b.w
		for k := 0; k < int(b.w); k++ {
			vals[i] = mean
			i++
		}
	}
}

// Model is a trained DLN selectivity estimator.
type Model struct {
	cfg  Config
	dim  int
	tmax float64

	inputCals []*calibrator // one per x dim + one (monotone) for t
	embedW    *nn.Param     // (dim+1) x EmbedDim, row dim (t) kept >= 0
	embedB    *nn.Param
	midCals   []*calibrator // EmbedDim monotone calibrators onto [0,1]
	lattices  []*nn.Param   // vertex values per lattice
	wiring    [][]int       // lattice input subsets into the embedding
	outW      *nn.Param     // NumLattices x 1, kept >= 0
	outB      *nn.Param
}

// New builds a DLN for dim-dimensional queries. Ranges of the input
// calibrators are taken from the training data by Fit.
func New(rng *rand.Rand, dim int, cfg Config) *Model {
	m := &Model{cfg: cfg, dim: dim}
	m.embedW = nn.NewParam("dln.embedW", dim+1, cfg.EmbedDim)
	nn.XavierInit(rng, m.embedW.Value, dim+1, cfg.EmbedDim)
	// The t row must start non-negative for the monotone path.
	for j := 0; j < cfg.EmbedDim; j++ {
		m.embedW.Value.Set(dim, j, math.Abs(m.embedW.Value.At(dim, j)))
	}
	m.embedB = nn.NewParam("dln.embedB", 1, cfg.EmbedDim)
	for l := 0; l < cfg.NumLattices; l++ {
		verts := autodiff.LatticeVertexCount(cfg.LatticeDim)
		p := nn.NewParam("dln.lat", 1, verts)
		for c := 0; c < verts; c++ {
			p.Value.Set(0, c, float64(popcount(c))/float64(cfg.LatticeDim)+0.01*rng.NormFloat64())
		}
		m.lattices = append(m.lattices, p)
		sub := rng.Perm(cfg.EmbedDim)[:cfg.LatticeDim]
		sort.Ints(sub)
		m.wiring = append(m.wiring, sub)
	}
	m.outW = nn.NewParam("dln.outW", cfg.NumLattices, 1)
	for l := 0; l < cfg.NumLattices; l++ {
		m.outW.Value.Set(l, 0, 1/float64(cfg.NumLattices))
	}
	m.outB = nn.NewParam("dln.outB", 1, 1)
	return m
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		n += x & 1
		x >>= 1
	}
	return n
}

// Params returns all trainable tensors.
func (m *Model) Params() []*nn.Param {
	ps := []*nn.Param{m.embedW, m.embedB, m.outW, m.outB}
	for _, c := range m.inputCals {
		ps = append(ps, c.outputs)
	}
	for _, c := range m.midCals {
		ps = append(ps, c.outputs)
	}
	ps = append(ps, m.lattices...)
	return ps
}

// forwardLog computes the log-selectivity for the batch (x, t).
func (m *Model) forwardLog(tp *autodiff.Tape, x, t *autodiff.Node) *autodiff.Node {
	// Layer 1: per-dimension calibrators.
	var calibrated *autodiff.Node
	for j := 0; j < m.dim; j++ {
		cj := m.inputCals[j].apply(tp, tp.SliceCols(x, j, j+1))
		if calibrated == nil {
			calibrated = cj
		} else {
			calibrated = tp.ConcatCols(calibrated, cj)
		}
	}
	ct := m.inputCals[m.dim].apply(tp, t)
	calibrated = tp.ConcatCols(calibrated, ct)
	// Layer 2: linear embedding (t row projected >= 0 after each step).
	embed := tp.AddRow(tp.MatMul(calibrated, m.embedW.Node(tp)), m.embedB.Node(tp))
	// Layer 3: monotone calibrators squashing each channel into [0,1].
	var mid *autodiff.Node
	for j := 0; j < m.cfg.EmbedDim; j++ {
		cj := m.midCals[j].apply(tp, tp.SliceCols(embed, j, j+1))
		if mid == nil {
			mid = cj
		} else {
			mid = tp.ConcatCols(mid, cj)
		}
	}
	// Layer 4: ensemble of lattices on wired subsets.
	var lat *autodiff.Node
	for l, theta := range m.lattices {
		var in *autodiff.Node
		for _, j := range m.wiring[l] {
			col := tp.SliceCols(mid, j, j+1)
			if in == nil {
				in = col
			} else {
				in = tp.ConcatCols(in, col)
			}
		}
		out := tp.Lattice(in, theta.Node(tp))
		if lat == nil {
			lat = out
		} else {
			lat = tp.ConcatCols(lat, out)
		}
	}
	// Layers 5-6: final monotone linear combination.
	return tp.AddRow(tp.MatMul(lat, m.outW.Node(tp)), m.outB.Node(tp))
}

// project re-establishes every monotonicity constraint; called after each
// optimizer step.
func (m *Model) project() {
	// Input calibrators: only the t calibrator is monotone; it also feeds
	// the embedding, whose t row is clamped non-negative.
	for i, c := range m.inputCals {
		c.project(false)
		_ = i
	}
	for j := 0; j < m.cfg.EmbedDim; j++ {
		if v := m.embedW.Value.At(m.dim, j); v < 0 {
			m.embedW.Value.Set(m.dim, j, 0)
		}
	}
	for _, c := range m.midCals {
		c.project(true) // lattice inputs stay in [0,1]
	}
	// Lattice vertex values: a few alternating sweeps of pairwise averaging
	// approximate the projection onto the monotone cone along every dim.
	for _, theta := range m.lattices {
		row := theta.Value.Row(0)
		for sweep := 0; sweep < 3; sweep++ {
			changed := false
			for j := 0; j < m.cfg.LatticeDim; j++ {
				for _, pr := range autodiff.LatticeEdgePairs(m.cfg.LatticeDim, j) {
					lo, hi := row[pr[0]], row[pr[1]]
					if hi < lo {
						mean := (lo + hi) / 2
						row[pr[0]], row[pr[1]] = mean, mean
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}
	// Output weights non-negative.
	for l := 0; l < m.cfg.NumLattices; l++ {
		if v := m.outW.Value.At(l, 0); v < 0 {
			m.outW.Value.Set(l, 0, 0)
		}
	}
}

// Fit trains the DLN on labelled queries with the Huber-log objective.
func (m *Model) Fit(train []vecdata.Query) {
	if len(train) == 0 {
		panic("dln: no training queries")
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	// Input calibrator ranges from the data.
	dim := m.dim
	lo := make([]float64, dim+1)
	hi := make([]float64, dim+1)
	for j := range lo {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for _, q := range train {
		for j, v := range q.X {
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
		}
		lo[dim] = math.Min(lo[dim], q.T)
		hi[dim] = math.Max(hi[dim], q.T)
	}
	if hi[dim] > 0 {
		m.tmax = hi[dim]
	} else {
		m.tmax = 1
	}
	m.inputCals = nil
	for j := 0; j <= dim; j++ {
		m.inputCals = append(m.inputCals,
			newCalibrator(rng, "dln.cal", lo[j], hi[j], m.cfg.Keypoints, j == dim))
	}
	m.midCals = nil
	for j := 0; j < m.cfg.EmbedDim; j++ {
		// Mid calibrators span a generous pre-activation range.
		m.midCals = append(m.midCals, newCalibrator(rng, "dln.mid", -4, 4, m.cfg.Keypoints, true))
	}
	m.project()

	x, t, y := vecdata.Matrices(train)
	logy := tensor.Apply(y, func(v float64) float64 { return math.Log(v + logEps) })
	opt := nn.NewAdam(m.cfg.LR)
	n := len(train)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < m.cfg.Epochs; e++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < n; s += m.cfg.Batch {
			end := s + m.cfg.Batch
			if end > n {
				end = n
			}
			b := idx[s:end]
			tp := autodiff.NewTape()
			out := m.forwardLog(tp, tp.Input(tensor.GatherRows(x, b)), tp.Input(tensor.GatherRows(t, b)))
			target := tp.Input(tensor.GatherRows(logy, b))
			loss := tp.HuberResidualLoss(out, target, m.cfg.HuberDelta)
			tp.Backward(loss)
			opt.Step(m.Params())
			m.project()
		}
	}
}

// Estimate returns the predicted selectivity for (x, t).
func (m *Model) Estimate(x []float64, t float64) float64 {
	tp := autodiff.NewTape()
	xn := tp.Input(tensor.RowVector(x))
	tn := tp.Input(tensor.FromRows([][]float64{{t}}))
	z := m.forwardLog(tp, xn, tn).Scalar()
	v := math.Exp(z) - logEps
	if v < 0 {
		return 0
	}
	return v
}

// EstimateBatch runs one batched forward pass over all queries. Safe for
// concurrent use: each call owns its tape, parameters are read-only.
func (m *Model) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	tp := autodiff.NewTape()
	z := m.forwardLog(tp, tp.Input(x), tp.Input(tensor.ColVector(ts)))
	out := make([]float64, x.Rows())
	for i := range out {
		v := math.Exp(z.Value.At(i, 0)) - logEps
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// Dim returns the query dimensionality.
func (m *Model) Dim() int { return m.dim }

// TMax returns the largest threshold seen during training (the t
// calibrator's top keypoint).
func (m *Model) TMax() float64 { return m.tmax }

// SetTMax overrides the advertised threshold ceiling.
func (m *Model) SetTMax(t float64) {
	if t > 0 {
		m.tmax = t
	}
}

// Name returns the paper's model name.
func (m *Model) Name() string { return "DLN" }

// ConsistencyGuaranteed reports that monotonicity in t holds by
// construction (projected constraints).
func (m *Model) ConsistencyGuaranteed() bool { return true }
