package dln

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"selnet/internal/vecdata"
)

func makeQueries(rng *rand.Rand, n, dim int) []vecdata.Query {
	qs := make([]vecdata.Query, n)
	for i := range qs {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		tt := rng.Float64() * 2
		qs[i] = vecdata.Query{X: x, T: tt, Y: math.Max(1, 30*tt+4*x[0])}
	}
	return qs
}

func TestIsotonicProject(t *testing.T) {
	vals := []float64{3, 1, 2, 5, 4}
	isotonicProject(vals)
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1]-1e-12 {
			t.Fatalf("not isotonic: %v", vals)
		}
	}
	// PAV preserves the mean.
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-15) > 1e-9 {
		t.Fatalf("projection changed the sum: %v", sum)
	}
	// Already-sorted input is unchanged.
	sorted := []float64{1, 2, 3}
	isotonicProject(sorted)
	if sorted[0] != 1 || sorted[1] != 2 || sorted[2] != 3 {
		t.Fatalf("sorted input modified: %v", sorted)
	}
}

func TestIsotonicProjectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		cp := append([]float64(nil), vals...)
		isotonicProject(cp)
		if !sort.Float64sAreSorted(cp) {
			return false
		}
		// Projection cannot be farther from vals than the best sorted
		// candidate (e.g. the fully pooled mean vector).
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(n)
		var dProj, dMean float64
		for i := range vals {
			dProj += (cp[i] - vals[i]) * (cp[i] - vals[i])
			dMean += (mean - vals[i]) * (mean - vals[i])
		}
		return dProj <= dMean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDLNMonotoneInT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := makeQueries(rng, 300, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 15
	cfg.NumLattices = 4
	cfg.LatticeDim = 2
	cfg.EmbedDim = 4
	m := New(rng, 3, cfg)
	m.Fit(train)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		t1 := r.Float64() * 2
		t2 := t1 + r.Float64()*2
		return m.Estimate(x, t1) <= m.Estimate(x, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if !m.ConsistencyGuaranteed() || m.Name() != "DLN" {
		t.Fatalf("metadata wrong")
	}
}

func TestDLNLearnsSomething(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := makeQueries(rng, 400, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 30
	m := New(rng, 3, cfg)
	m.Fit(train)
	// After training, predictions must be positively correlated with t
	// (the dominant signal), i.e. clearly better than a constant.
	test := makeQueries(rng, 80, 3)
	var mapeModel, mapeConst, meanY float64
	for _, q := range test {
		meanY += q.Y
	}
	meanY /= float64(len(test))
	for _, q := range test {
		mapeModel += math.Abs(m.Estimate(q.X, q.T)-q.Y) / q.Y
		mapeConst += math.Abs(meanY-q.Y) / q.Y
	}
	if mapeModel >= mapeConst {
		t.Fatalf("DLN (MAPE %v) no better than constant predictor (MAPE %v)",
			mapeModel/80, mapeConst/80)
	}
}

func TestDLNEstimateNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := makeQueries(rng, 100, 2)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m := New(rng, 2, cfg)
	m.Fit(train)
	for i := 0; i < 20; i++ {
		if v := m.Estimate([]float64{rng.NormFloat64(), rng.NormFloat64()}, rng.Float64()*2); v < 0 {
			t.Fatalf("negative estimate %v", v)
		}
	}
}

func TestCalibratorKeypointsFixedAndEquallySpaced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := newCalibrator(rng, "c", 0, 10, 6, true)
	want := []float64{0, 2, 4, 6, 8, 10}
	for i, k := range c.keypoints {
		if math.Abs(k-want[i]) > 1e-12 {
			t.Fatalf("keypoint %d = %v, want %v (Sec 6.2: DLN keypoints are equally spaced)", i, k, want[i])
		}
	}
}

func TestDLNFitPanicsOnEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(rng, 2, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.Fit(nil)
}

func TestLatticeProjectionAfterFit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := makeQueries(rng, 150, 2)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m := New(rng, 2, cfg)
	m.Fit(train)
	// All lattice vertex values must be (approximately) monotone along
	// every dimension after the final projection.
	for _, theta := range m.lattices {
		row := theta.Value.Row(0)
		for j := 0; j < m.cfg.LatticeDim; j++ {
			for _, pr := range latticeEdgePairsForTest(m.cfg.LatticeDim, j) {
				if row[pr[1]] < row[pr[0]]-1e-6 {
					t.Fatalf("lattice not monotone along dim %d: %v < %v", j, row[pr[1]], row[pr[0]])
				}
			}
		}
	}
}

func latticeEdgePairsForTest(m, j int) [][2]int {
	verts := 1 << uint(m)
	var pairs [][2]int
	for c := 0; c < verts; c++ {
		if c&(1<<uint(j)) == 0 {
			pairs = append(pairs, [2]int{c, c | 1<<uint(j)})
		}
	}
	return pairs
}
