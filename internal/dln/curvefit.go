package dln

import (
	"math"
	"math/rand"

	"selnet/internal/autodiff"
	"selnet/internal/nn"
	"selnet/internal/tensor"
)

// CurveCalibrator is the "simplified DLN" of the paper's Sec. 6.2 and
// Figure 3: one calibrator layer g: [0, tmax] -> z in [0, 1] with fixed,
// equally spaced keypoints and learnable outputs, followed by a
// degenerate single lattice h(z) = (1-z)·θ0 + z·θ1 whose two parameters
// are pinned to the minimum and maximum training values. All the fitting
// capacity lives in the calibrator — whose keypoints cannot move, which
// is exactly the inflexibility Figure 3 demonstrates.
type CurveCalibrator struct {
	cal    *calibrator
	theta0 float64
	theta1 float64
	tmax   float64
}

// NewCurveCalibrator builds the simplified DLN with numPoints keypoints
// spanning [0, tmax].
func NewCurveCalibrator(rng *rand.Rand, numPoints int, tmax float64) *CurveCalibrator {
	return &CurveCalibrator{
		cal:  newCalibrator(rng, "dlncurve", 0, tmax, numPoints, true),
		tmax: tmax,
	}
}

// Fit pins θ0/θ1 to the range of ys and trains the calibrator outputs
// with MSE. It returns the final loss.
func (c *CurveCalibrator) Fit(ts, ys []float64, epochs int, lr float64) float64 {
	if len(ts) != len(ys) || len(ts) == 0 {
		panic("dln: CurveCalibrator.Fit needs matching non-empty samples")
	}
	c.theta0, c.theta1 = math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		c.theta0 = math.Min(c.theta0, y)
		c.theta1 = math.Max(c.theta1, y)
	}
	if !(c.theta1 > c.theta0) {
		c.theta1 = c.theta0 + 1
	}
	tcol := tensor.ColVector(ts)
	// Targets in calibrator space: z* = (y-θ0)/(θ1-θ0).
	zcol := tensor.New(len(ys), 1)
	for i, y := range ys {
		zcol.Set(i, 0, (y-c.theta0)/(c.theta1-c.theta0))
	}
	opt := nn.NewAdam(lr)
	params := []*nn.Param{c.cal.outputs}
	var last float64
	scale := (c.theta1 - c.theta0) * (c.theta1 - c.theta0)
	for e := 0; e < epochs; e++ {
		tp := autodiff.NewTape()
		z := c.cal.apply(tp, tp.Input(tcol))
		loss := tp.MSELoss(z, tp.Input(zcol))
		tp.Backward(loss)
		opt.Step(params)
		c.cal.project(true)
		last = loss.Scalar() * scale // report in y units
	}
	return last
}

// Eval returns the fitted curve h(g(t)).
func (c *CurveCalibrator) Eval(t float64) float64 {
	return c.theta0 + (c.theta1-c.theta0)*c.CalibratorZ(t)
}

// CalibratorZ exposes the calibrator output z in [0,1] — the dashed line
// of Figure 3(a).
func (c *CurveCalibrator) CalibratorZ(t float64) float64 {
	tp := autodiff.NewTape()
	z := c.cal.apply(tp, tp.Input(tensor.FromRows([][]float64{{t}}))).Scalar()
	if z < 0 {
		return 0
	}
	if z > 1 {
		return 1
	}
	return z
}

// Keypoints returns the fixed calibrator keypoints (equally spaced).
func (c *CurveCalibrator) Keypoints() []float64 {
	return append([]float64(nil), c.cal.keypoints...)
}
