package dln

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"selnet/internal/nn"
)

// calBlob stores a calibrator's structure; output values travel with the
// parameter blob (calibrator outputs are in Params()).
type calBlob struct {
	Keypoints []float64
	Monotone  bool
}

type modelBlob struct {
	Cfg       Config
	Dim       int
	TMax      float64
	InputCals []calBlob
	MidCals   []calBlob
	Wiring    [][]int
	Params    []byte
}

// Save serializes the trained DLN to w.
func (m *Model) Save(w io.Writer) error {
	var pb bytes.Buffer
	if err := nn.SaveParams(&pb, m.Params()); err != nil {
		return err
	}
	b := modelBlob{
		Cfg: m.cfg, Dim: m.dim, TMax: m.tmax,
		Wiring: m.wiring, Params: pb.Bytes(),
	}
	for _, c := range m.inputCals {
		b.InputCals = append(b.InputCals, calBlob{Keypoints: c.keypoints, Monotone: c.monotone})
	}
	for _, c := range m.midCals {
		b.MidCals = append(b.MidCals, calBlob{Keypoints: c.keypoints, Monotone: c.monotone})
	}
	return gob.NewEncoder(w).Encode(b)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var b modelBlob
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("dln: decode: %w", err)
	}
	if len(b.InputCals) != b.Dim+1 || len(b.MidCals) != b.Cfg.EmbedDim {
		return nil, fmt.Errorf("dln: corrupt model: %d input / %d mid calibrators for dim %d embed %d",
			len(b.InputCals), len(b.MidCals), b.Dim, b.Cfg.EmbedDim)
	}
	m := New(rand.New(rand.NewSource(1)), b.Dim, b.Cfg)
	m.tmax = b.TMax
	m.wiring = b.Wiring
	rng := rand.New(rand.NewSource(1))
	for _, cb := range b.InputCals {
		c := newCalibrator(rng, "dln.cal", 0, 1, b.Cfg.Keypoints, cb.Monotone)
		c.keypoints = cb.Keypoints
		m.inputCals = append(m.inputCals, c)
	}
	for _, cb := range b.MidCals {
		c := newCalibrator(rng, "dln.mid", 0, 1, b.Cfg.Keypoints, cb.Monotone)
		c.keypoints = cb.Keypoints
		m.midCals = append(m.midCals, c)
	}
	if err := nn.LoadParams(bytes.NewReader(b.Params), m.Params()); err != nil {
		return nil, fmt.Errorf("dln: params: %w", err)
	}
	return m, nil
}
