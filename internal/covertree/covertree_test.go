package covertree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"selnet/internal/distance"
)

func randVecs(seed int64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 2
		}
		vecs[i] = v
	}
	return vecs
}

func TestBuildInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 10, 200} {
		vecs := randVecs(int64(n), n, 4)
		tree := Build(vecs, distance.L2)
		if tree.Size() != n {
			t.Fatalf("n=%d: size %d", n, tree.Size())
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBuildInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		vecs := randVecs(seed, n, 1+rng.Intn(6))
		tree := Build(vecs, distance.L2)
		return tree.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWithDuplicatePoints(t *testing.T) {
	vecs := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	tree := Build(vecs, distance.L2)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tree.RangeCount([]float64{1, 1}, 0); got != 3 {
		t.Fatalf("RangeCount duplicates = %d, want 3", got)
	}
}

func TestRangeCountMatchesBruteForce(t *testing.T) {
	vecs := randVecs(42, 300, 5)
	tree := Build(vecs, distance.L2)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		x := vecs[rng.Intn(len(vecs))]
		threshold := rng.Float64() * 6
		want := 0
		for _, v := range vecs {
			if distance.L2(x, v) <= threshold {
				want++
			}
		}
		if got := tree.RangeCount(x, threshold); got != want {
			t.Fatalf("RangeCount(t=%v) = %d, want %d", threshold, got, want)
		}
	}
}

func TestRangeCountExtremes(t *testing.T) {
	vecs := randVecs(44, 100, 3)
	tree := Build(vecs, distance.L2)
	if got := tree.RangeCount(vecs[0], 1e9); got != 100 {
		t.Fatalf("huge range = %d", got)
	}
	if got := tree.RangeCount([]float64{100, 100, 100}, 0.001); got != 0 {
		t.Fatalf("empty range = %d", got)
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	vecs := randVecs(45, 250, 4)
	tree := Build(vecs, distance.L2)
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		k := 1 + rng.Intn(10)
		got := tree.KNN(x, k)
		// Brute force.
		idx := make([]int, len(vecs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return distance.L2(x, vecs[idx[a]]) < distance.L2(x, vecs[idx[b]])
		})
		want := idx[:k]
		if len(got) != k {
			t.Fatalf("KNN returned %d results, want %d", len(got), k)
		}
		for i := range got {
			// Compare by distance (ties may reorder indices).
			dg := distance.L2(x, vecs[got[i]])
			dw := distance.L2(x, vecs[want[i]])
			if dg != dw {
				t.Fatalf("KNN[%d] dist %v, want %v", i, dg, dw)
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	vecs := randVecs(47, 10, 2)
	tree := Build(vecs, distance.L2)
	if got := tree.KNN(vecs[0], 0); got != nil {
		t.Fatalf("k=0 should return nil")
	}
	if got := tree.KNN(vecs[0], 100); len(got) != 10 {
		t.Fatalf("k>n should return all points, got %d", len(got))
	}
	got := tree.KNN(vecs[3], 1)
	if len(got) != 1 || distance.L2(vecs[3], vecs[got[0]]) != 0 {
		t.Fatalf("nearest neighbour of an indexed point must be itself")
	}
}

func TestPartitionCoversAllPointsOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		vecs := randVecs(seed, n, 3)
		tree := Build(vecs, distance.L2)
		maxSize := 1 + rng.Intn(n)
		regions := tree.Partition(maxSize)
		seen := map[int]int{}
		for _, r := range regions {
			for _, m := range r.Members {
				seen[m]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRespectsMaxSize(t *testing.T) {
	vecs := randVecs(48, 400, 4)
	tree := Build(vecs, distance.L2)
	maxSize := 40
	regions := tree.Partition(maxSize)
	for _, r := range regions {
		if len(r.Members) > maxSize {
			t.Fatalf("region size %d exceeds max %d", len(r.Members), maxSize)
		}
	}
	if len(regions) < 400/40 {
		t.Fatalf("too few regions: %d", len(regions))
	}
}

func TestPartitionBallsContainMembers(t *testing.T) {
	vecs := randVecs(49, 300, 4)
	tree := Build(vecs, distance.L2)
	for _, r := range tree.Partition(30) {
		for _, m := range r.Members {
			if d := distance.L2(r.Center, vecs[m]); d > r.Radius+1e-9 {
				t.Fatalf("member %d at distance %v outside ball radius %v", m, d, r.Radius)
			}
		}
	}
}

func TestPartitionSingleRegionWhenMaxHuge(t *testing.T) {
	vecs := randVecs(50, 50, 3)
	tree := Build(vecs, distance.L2)
	regions := tree.Partition(1000)
	if len(regions) != 1 {
		t.Fatalf("expected 1 region, got %d", len(regions))
	}
	if len(regions[0].Members) != 50 {
		t.Fatalf("region should hold all points")
	}
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Build(nil, distance.L2)
}

func BenchmarkBuild1k(b *testing.B) {
	vecs := randVecs(51, 1000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(vecs, distance.L2)
	}
}

func BenchmarkRangeCount1k(b *testing.B) {
	vecs := randVecs(52, 1000, 8)
	tree := Build(vecs, distance.L2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RangeCount(vecs[i%len(vecs)], 2.0)
	}
}
