// Package covertree implements a simplified cover tree (in the style of
// Izbicki & Shelton, ICML'15) over a vector database. SelNet uses it to
// partition the database into ball-shaped regions (paper Sec. 5.3): the
// tree is expanded top-down until every subtree holds fewer than r*|D|
// points, and the resulting subtrees become partition regions. The tree
// also supports exact range counting and k-nearest-neighbour search with
// metric pruning, which the test-suite uses to validate ground truth.
//
// The tree requires a metric distance. Cosine workloads are handled one
// level up (package partition) via the unit-vector cosine<->Euclidean
// equivalence.
package covertree

import (
	"fmt"
	"math"
	"sort"
)

// DistFunc computes the distance between two vectors.
type DistFunc func(a, b []float64) float64

// maxLevel bounds root raising; 2^60 exceeds any realistic spread.
const maxLevel = 60

// Node is one cover-tree vertex. Every node owns exactly one point (by
// index into the tree's vector slice) and covers its descendants within
// covdist = 2^Level.
type Node struct {
	Index    int // index of the node's point
	Level    int
	Children []*Node

	size   int     // points in this subtree (including own)
	radius float64 // exact max distance from own point to any descendant point
}

// Tree is a cover tree over a fixed set of vectors.
type Tree struct {
	vecs [][]float64
	dist DistFunc
	root *Node
}

// Build constructs a cover tree over vecs by sequential insertion.
func Build(vecs [][]float64, dist DistFunc) *Tree {
	if len(vecs) == 0 {
		panic("covertree: no vectors")
	}
	t := &Tree{vecs: vecs, dist: dist}
	t.root = &Node{Index: 0, Level: 8}
	for i := 1; i < len(vecs); i++ {
		t.insert(i)
	}
	t.computeStats(t.root)
	return t
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.root.size }

// Root returns the root node (read-only use).
func (t *Tree) Root() *Node { return t.root }

func covdist(level int) float64 { return math.Pow(2, float64(level)) }

func (t *Tree) insert(idx int) {
	x := t.vecs[idx]
	d := t.dist(t.vecs[t.root.Index], x)
	// Raise the root until it covers the new point.
	for d > covdist(t.root.Level) && t.root.Level < maxLevel {
		t.root.Level++
	}
	t.insertAt(t.root, idx, x)
}

func (t *Tree) insertAt(p *Node, idx int, x []float64) {
	for {
		var next *Node
		for _, c := range p.Children {
			if t.dist(t.vecs[c.Index], x) <= covdist(c.Level) {
				next = c
				break
			}
		}
		if next == nil {
			p.Children = append(p.Children, &Node{Index: idx, Level: p.Level - 1})
			return
		}
		p = next
	}
}

// computeStats fills subtree sizes and exact subtree radii bottom-up.
func (t *Tree) computeStats(n *Node) (size int, radius float64) {
	n.size = 1
	n.radius = 0
	own := t.vecs[n.Index]
	for _, c := range n.Children {
		cs, _ := t.computeStats(c)
		n.size += cs
		// Exact radius: max over descendant points of distance to own point.
		// Walk the child subtree; cheaper bounds exist but exactness gives
		// tighter partition balls and better pruning.
		t.walk(c, func(m *Node) {
			if d := t.dist(own, t.vecs[m.Index]); d > n.radius {
				n.radius = d
			}
		})
	}
	return n.size, n.radius
}

func (t *Tree) walk(n *Node, f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		t.walk(c, f)
	}
}

// RangeCount returns the exact number of indexed points within distance
// threshold of x, using ball pruning: a subtree is counted wholesale when
// fully inside the range and skipped when fully outside.
func (t *Tree) RangeCount(x []float64, threshold float64) int {
	return t.rangeCount(t.root, x, threshold)
}

func (t *Tree) rangeCount(n *Node, x []float64, threshold float64) int {
	d := t.dist(x, t.vecs[n.Index])
	if d+n.radius <= threshold {
		return n.size // whole subtree inside
	}
	if d-n.radius > threshold {
		return 0 // whole subtree outside
	}
	count := 0
	if d <= threshold {
		count = 1
	}
	for _, c := range n.Children {
		count += t.rangeCount(c, x, threshold)
	}
	return count
}

// KNN returns the indices of the k nearest points to x, ordered by
// increasing distance. If k exceeds the tree size, all points are
// returned.
func (t *Tree) KNN(x []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	if k > t.Size() {
		k = t.Size()
	}
	h := &knnHeap{}
	t.knn(t.root, x, k, h)
	// Extract sorted ascending.
	out := make([]int, len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = h.pop().index
	}
	return out
}

func (t *Tree) knn(n *Node, x []float64, k int, h *knnHeap) {
	d := t.dist(x, t.vecs[n.Index])
	if len(h.items) < k {
		h.push(knnItem{index: n.Index, dist: d})
	} else if d < h.worst() {
		h.pop()
		h.push(knnItem{index: n.Index, dist: d})
	}
	if len(h.items) == k && d-n.radius > h.worst() {
		return // no descendant can improve the heap
	}
	// Visit children closest-first for better pruning.
	type cd struct {
		c *Node
		d float64
	}
	order := make([]cd, len(n.Children))
	for i, c := range n.Children {
		order[i] = cd{c, t.dist(x, t.vecs[c.Index])}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].d < order[j].d })
	for _, o := range order {
		if len(h.items) == k && o.d-o.c.radius > h.worst() {
			continue
		}
		t.knn(o.c, x, k, h)
	}
}

type knnItem struct {
	index int
	dist  float64
}

// knnHeap is a max-heap on distance, holding the current k best.
type knnHeap struct{ items []knnItem }

func (h *knnHeap) worst() float64 { return h.items[0].dist }

func (h *knnHeap) push(it knnItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist >= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *knnHeap) pop() knnItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.items) && h.items[l].dist > h.items[largest].dist {
			largest = l
		}
		if r < len(h.items) && h.items[r].dist > h.items[largest].dist {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}

// Region is one ball-shaped partition piece: the set of point indices in a
// truncated subtree plus its bounding ball.
type Region struct {
	Center  []float64 // the subtree root's point
	Radius  float64   // exact subtree radius
	Members []int     // indices of all points in the subtree
}

// Partition truncates the tree top-down: a subtree is expanded while it
// holds more than maxSize points, and each unexpanded subtree becomes one
// region (paper Sec. 5.3: "cover tree will not expand its nodes if the
// number of data inside is smaller than r|D|"). When an expanded node's
// own point must be emitted, it forms a singleton region.
func (t *Tree) Partition(maxSize int) []Region {
	if maxSize < 1 {
		maxSize = 1
	}
	var regions []Region
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.size <= maxSize || len(n.Children) == 0 {
			regions = append(regions, t.regionOf(n))
			return
		}
		// Expand: own point becomes a singleton region, children recurse.
		regions = append(regions, Region{
			Center:  t.vecs[n.Index],
			Radius:  0,
			Members: []int{n.Index},
		})
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.root)
	return regions
}

func (t *Tree) regionOf(n *Node) Region {
	r := Region{Center: t.vecs[n.Index], Radius: n.radius}
	t.walk(n, func(m *Node) { r.Members = append(r.Members, m.Index) })
	return r
}

// CheckInvariants validates the covering invariant (children within the
// parent's covering distance), level ordering, subtree sizes, radii, and
// that every point index appears exactly once. It returns an error
// describing the first violation found.
func (t *Tree) CheckInvariants() error {
	seen := make(map[int]bool, t.Size())
	var rec func(n *Node) (int, error)
	rec = func(n *Node) (int, error) {
		if seen[n.Index] {
			return 0, fmt.Errorf("covertree: point %d appears twice", n.Index)
		}
		seen[n.Index] = true
		size := 1
		own := t.vecs[n.Index]
		for _, c := range n.Children {
			if c.Level >= n.Level {
				return 0, fmt.Errorf("covertree: child level %d >= parent level %d", c.Level, n.Level)
			}
			if d := t.dist(own, t.vecs[c.Index]); d > covdist(n.Level)+1e-9 {
				return 0, fmt.Errorf("covertree: child %d at distance %v exceeds covdist %v", c.Index, d, covdist(n.Level))
			}
			cs, err := rec(c)
			if err != nil {
				return 0, err
			}
			size += cs
		}
		if size != n.size {
			return 0, fmt.Errorf("covertree: node %d size %d, recorded %d", n.Index, size, n.size)
		}
		var maxD float64
		t.walk(n, func(m *Node) {
			if d := t.dist(own, t.vecs[m.Index]); d > maxD {
				maxD = d
			}
		})
		if math.Abs(maxD-n.radius) > 1e-9 {
			return 0, fmt.Errorf("covertree: node %d radius %v, recorded %v", n.Index, maxD, n.radius)
		}
		return size, nil
	}
	total, err := rec(t.root)
	if err != nil {
		return err
	}
	if total != len(t.vecs) {
		return fmt.Errorf("covertree: tree holds %d points, expected %d", total, len(t.vecs))
	}
	return nil
}
