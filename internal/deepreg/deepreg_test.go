package deepreg

import (
	"math"
	"math/rand"
	"testing"

	"selnet/internal/autodiff"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// synthetic queries with y = max(1, 40t + 5*x0) — increasing in t.
func makeQueries(rng *rand.Rand, n, dim int) []vecdata.Query {
	qs := make([]vecdata.Query, n)
	for i := range qs {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		tt := rng.Float64() * 2
		qs[i] = vecdata.Query{X: x, T: tt, Y: math.Max(1, 40*tt+5*x[0])}
	}
	return qs
}

func TestTEmbedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewTEmbed(rng, "t", 8)
	if e.Dim() != 8 {
		t.Fatalf("Dim = %d", e.Dim())
	}
	tp := autodiff.NewTape()
	tcol := tp.Input(tensor.FromRows([][]float64{{0.5}, {1.5}}))
	out := e.Apply(tp, tcol)
	if out.Rows() != 2 || out.Cols() != 8 {
		t.Fatalf("embed shape %dx%d", out.Rows(), out.Cols())
	}
	for _, v := range out.Value.Data() {
		if v < 0 {
			t.Fatalf("ReLU embedding must be non-negative")
		}
	}
}

func TestHuberOnNodesMatchesClosedForm(t *testing.T) {
	tp := autodiff.NewTape()
	pred := tp.Input(tensor.FromRows([][]float64{{0}, {0}, {0}}))
	target := tp.Input(tensor.FromRows([][]float64{{0.5}, {-2}, {3}}))
	const delta = 1.0
	got := huberOnNodes(tp, pred, target, delta).Scalar()
	want := (0.5*0.5/2 + (1*2 - 0.5) + (1*3 - 0.5)) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("huber = %v, want %v", got, want)
	}
}

func TestHuberOnNodesGradient(t *testing.T) {
	// Numerical check through the mask-based construction.
	predVal := tensor.FromRows([][]float64{{0.3}, {-1.5}, {2.2}})
	target := tensor.FromRows([][]float64{{0}, {0}, {0}})
	const delta = 1.0
	grad := tensor.New(3, 1)
	tp := autodiff.NewTape()
	p := tp.Leaf(predVal, grad)
	loss := huberOnNodes(tp, p, tp.Input(target), delta)
	tp.Backward(loss)
	const h = 1e-6
	for i := 0; i < 3; i++ {
		orig := predVal.At(i, 0)
		eval := func(v float64) float64 {
			predVal.Set(i, 0, v)
			tp2 := autodiff.NewTape()
			return huberOnNodes(tp2, tp2.Input(predVal), tp2.Input(target), delta).Scalar()
		}
		num := (eval(orig+h) - eval(orig-h)) / (2 * h)
		predVal.Set(i, 0, orig)
		if math.Abs(num-grad.At(i, 0)) > 1e-5 {
			t.Fatalf("grad[%d] = %v, numerical %v", i, grad.At(i, 0), num)
		}
	}
}

func TestDNNLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := makeQueries(rng, 400, 3)
	valid := makeQueries(rng, 80, 3)
	d := NewDNN(rng, 3, []int{32, 32}, 8)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	d.Fit(cfg, train, valid)
	test := makeQueries(rng, 100, 3)
	var mape float64
	for _, q := range test {
		mape += math.Abs(d.Estimate(q.X, q.T)-q.Y) / q.Y
	}
	mape /= 100
	if mape > 0.6 {
		t.Fatalf("DNN test MAPE %v too high", mape)
	}
	if d.Name() != "DNN" {
		t.Fatalf("Name = %q", d.Name())
	}
}

func TestDNNEstimateNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDNN(rng, 2, []int{8}, 4)
	// Untrained model must still return a valid (non-negative) estimate.
	for i := 0; i < 10; i++ {
		if v := d.Estimate([]float64{rng.NormFloat64(), rng.NormFloat64()}, rng.Float64()); v < 0 {
			t.Fatalf("negative estimate %v", v)
		}
	}
}

func TestMoELearnsAndGates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := makeQueries(rng, 400, 3)
	m := NewMoE(rng, 3, []int{24}, 8, 4, 2)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 80
	m.Fit(cfg, train, nil)
	test := makeQueries(rng, 100, 3)
	var mape float64
	for _, q := range test {
		mape += math.Abs(m.Estimate(q.X, q.T)-q.Y) / q.Y
	}
	mape /= 100
	if mape > 0.8 {
		t.Fatalf("MoE test MAPE %v too high", mape)
	}
	if m.Name() != "MoE" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestMoETopKMaskSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMoE(rng, 2, []int{8}, 4, 6, 2)
	tp := autodiff.NewTape()
	x := tp.Input(tensor.New(3, 2))
	tt := tp.Input(tensor.FromRows([][]float64{{0.1}, {0.5}, {1.0}}))
	_ = m.forwardLog(tp, x, tt) // must not panic; sparsity checked below
	// Rebuild gating manually to check exactly topK survive.
	in := tp.ConcatCols(x, m.embed.Apply(tp, tt))
	gates := tp.Softmax(m.gate.Apply(tp, in))
	for i := 0; i < 3; i++ {
		row := gates.Value.Row(i)
		order := argsortDesc(row)
		if len(order) != 6 {
			t.Fatalf("argsort length %d", len(order))
		}
		if row[order[0]] < row[order[5]] {
			t.Fatalf("argsortDesc not descending")
		}
	}
}

func TestMoEPanicsOnBadTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewMoE(rng, 2, []int{8}, 4, 3, 5)
}

func TestRMILearnsAndRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := makeQueries(rng, 500, 3)
	r := NewRMI(rng, 3, []int{24}, 8, []int{1, 2, 4})
	cfg := DefaultTrainConfig()
	cfg.Epochs = 50
	r.Fit(cfg, train, nil)
	test := makeQueries(rng, 100, 3)
	var mape float64
	for _, q := range test {
		mape += math.Abs(r.Estimate(q.X, q.T)-q.Y) / q.Y
	}
	mape /= 100
	if mape > 0.8 {
		t.Fatalf("RMI test MAPE %v too high", mape)
	}
	if r.Name() != "RMI" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestRMIRouteClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := NewRMI(rng, 2, []int{8}, 4, []int{1, 4})
	r.lo[0], r.hi[0] = 0, 1
	if r.route(0, -5, 4) != 0 {
		t.Fatalf("below-range prediction must route to model 0")
	}
	if r.route(0, 99, 4) != 3 {
		t.Fatalf("above-range prediction must route to the last model")
	}
	if r.route(0, 0.6, 4) != 2 {
		t.Fatalf("mid-range routing wrong")
	}
}

func TestRMIPanicsOnBadCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewRMI(rng, 2, []int{8}, 4, []int{2, 4})
}

func TestValidationSnapshotKeepsBest(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	train := makeQueries(rng, 200, 2)
	valid := makeQueries(rng, 50, 2)
	d := NewDNN(rng, 2, []int{16}, 4)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	cfg.EvalEvery = 2
	before := validationLoss(d, cfg, valid)
	d.Fit(cfg, train, valid)
	after := validationLoss(d, cfg, valid)
	if after >= before {
		t.Fatalf("validation loss did not improve: %v -> %v", before, after)
	}
}
