package deepreg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"selnet/internal/autodiff"
	"selnet/internal/nn"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// ----------------------------------------------------------------------------
// DNN

// DNN is the vanilla feed-forward regression baseline (four hidden layers
// in the paper; sizes are configurable here).
type DNN struct {
	embed *TEmbed
	ffn   *nn.FFN
	arch  archInfo
}

// NewDNN builds the network for dim-dimensional queries with the given
// hidden sizes and threshold-embedding width.
func NewDNN(rng *rand.Rand, dim int, hidden []int, tEmbedDim int) *DNN {
	sizes := append(append([]int{dim + tEmbedDim}, hidden...), 1)
	return &DNN{
		embed: NewTEmbed(rng, "dnn", tEmbedDim),
		ffn:   nn.NewFFN(rng, "dnn", sizes, nn.ActReLU, nn.ActNone),
		arch:  archInfo{dim: dim, hidden: hidden, tEmbedDim: tEmbedDim},
	}
}

func (d *DNN) forwardLog(tp *autodiff.Tape, x, t *autodiff.Node) *autodiff.Node {
	in := tp.ConcatCols(x, d.embed.Apply(tp, t))
	return d.ffn.Apply(tp, in)
}

// Params returns all trainable tensors.
func (d *DNN) Params() []*nn.Param { return append(d.embed.Params(), d.ffn.Params()...) }

// Fit trains the model on the labelled queries.
func (d *DNN) Fit(cfg TrainConfig, train, valid []vecdata.Query) {
	d.arch.observeTMax(train)
	trainLogRegressor(d, cfg, train, valid)
}

// Estimate returns the predicted selectivity.
func (d *DNN) Estimate(x []float64, t float64) float64 { return estimateLog(d, x, t) }

// EstimateBatch runs one batched forward pass over all queries. Safe for
// concurrent use: each call owns its tape, parameters are read-only.
func (d *DNN) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	return estimateLogBatch(d, x, ts)
}

// Dim returns the query dimensionality.
func (d *DNN) Dim() int { return d.arch.dim }

// TMax returns the largest threshold seen during training.
func (d *DNN) TMax() float64 { return d.arch.tmax }

// SetTMax overrides the advertised threshold ceiling.
func (d *DNN) SetTMax(t float64) { d.arch.setTMax(t) }

// Name returns the paper's model name.
func (d *DNN) Name() string { return "DNN" }

// ----------------------------------------------------------------------------
// MoE

// MoE is the sparsely-gated mixture-of-experts baseline [29]: a gating
// network scores the experts, the top-k gates are kept and renormalized,
// and the output is the gated sum of expert predictions.
type MoE struct {
	embed   *TEmbed
	gate    *nn.FFN
	experts []*nn.FFN
	topK    int
	arch    archInfo
}

// NewMoE builds numExperts experts with the given hidden sizes and a
// linear gating network; topK experts are active per example.
func NewMoE(rng *rand.Rand, dim int, hidden []int, tEmbedDim, numExperts, topK int) *MoE {
	if topK < 1 || topK > numExperts {
		panic(fmt.Sprintf("deepreg: topK %d out of range [1, %d]", topK, numExperts))
	}
	in := dim + tEmbedDim
	m := &MoE{
		embed: NewTEmbed(rng, "moe", tEmbedDim),
		gate:  nn.NewFFN(rng, "moe.gate", []int{in, numExperts}, nn.ActNone, nn.ActNone),
		topK:  topK,
		arch:  archInfo{dim: dim, hidden: hidden, tEmbedDim: tEmbedDim},
	}
	for e := 0; e < numExperts; e++ {
		sizes := append(append([]int{in}, hidden...), 1)
		m.experts = append(m.experts, nn.NewFFN(rng, fmt.Sprintf("moe.e%d", e), sizes, nn.ActReLU, nn.ActNone))
	}
	return m
}

func (m *MoE) forwardLog(tp *autodiff.Tape, x, t *autodiff.Node) *autodiff.Node {
	in := tp.ConcatCols(x, m.embed.Apply(tp, t))
	logits := m.gate.Apply(tp, in)
	gates := tp.Softmax(logits)
	// Top-k mask from forward values (selection is non-differentiable; the
	// surviving gates keep their gradients, as in the original paper).
	mask := tensor.New(gates.Rows(), gates.Cols())
	for i := 0; i < gates.Rows(); i++ {
		row := gates.Value.Row(i)
		order := argsortDesc(row)
		for k := 0; k < m.topK; k++ {
			mask.Set(i, order[k], 1)
		}
	}
	masked := tp.Mul(gates, tp.Input(mask))
	norm := tp.RecipCol(tp.SumColsKeep(masked), 1e-12)
	gatesNorm := tp.MulColBroadcast(masked, norm)
	// Expert outputs side by side: batch x numExperts.
	outs := m.experts[0].Apply(tp, in)
	for e := 1; e < len(m.experts); e++ {
		outs = tp.ConcatCols(outs, m.experts[e].Apply(tp, in))
	}
	return tp.SumColsKeep(tp.Mul(gatesNorm, outs))
}

// Params returns all trainable tensors.
func (m *MoE) Params() []*nn.Param {
	ps := append(m.embed.Params(), m.gate.Params()...)
	for _, e := range m.experts {
		ps = append(ps, e.Params()...)
	}
	return ps
}

// Fit trains the model on the labelled queries.
func (m *MoE) Fit(cfg TrainConfig, train, valid []vecdata.Query) {
	m.arch.observeTMax(train)
	trainLogRegressor(m, cfg, train, valid)
}

// Estimate returns the predicted selectivity.
func (m *MoE) Estimate(x []float64, t float64) float64 { return estimateLog(m, x, t) }

// EstimateBatch runs one batched forward pass over all queries. Safe for
// concurrent use: each call owns its tape, parameters are read-only.
func (m *MoE) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	return estimateLogBatch(m, x, ts)
}

// Dim returns the query dimensionality.
func (m *MoE) Dim() int { return m.arch.dim }

// TMax returns the largest threshold seen during training.
func (m *MoE) TMax() float64 { return m.arch.tmax }

// SetTMax overrides the advertised threshold ceiling.
func (m *MoE) SetTMax(t float64) { m.arch.setTMax(t) }

// Name returns the paper's model name.
func (m *MoE) Name() string { return "MoE" }

func argsortDesc(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	return idx
}

// ----------------------------------------------------------------------------
// RMI

// RMI is the recursive model index baseline [20], adapted to regression as
// in the paper: a three-level hierarchy (1, B1, B2 models) where each
// level's prediction routes the example to a model of the next level, and
// models are trained stage-wise on the examples routed to them.
type RMI struct {
	embed  *TEmbed
	levels [][]*rmiModel
	// Routing normalization bounds per level (min/max of that level's
	// predictions over the training set).
	lo, hi []float64
	counts []int
	arch   archInfo
}

type rmiModel struct {
	ffn     *nn.FFN
	trained bool
}

// NewRMI builds a three-level RMI with the given per-level model counts
// (counts[0] must be 1) and hidden sizes shared by all models.
func NewRMI(rng *rand.Rand, dim int, hidden []int, tEmbedDim int, counts []int) *RMI {
	if len(counts) < 2 || counts[0] != 1 {
		panic("deepreg: RMI needs counts starting with 1")
	}
	in := dim + tEmbedDim
	r := &RMI{
		embed:  NewTEmbed(rng, "rmi", tEmbedDim),
		lo:     make([]float64, len(counts)),
		hi:     make([]float64, len(counts)),
		counts: append([]int(nil), counts...),
		arch:   archInfo{dim: dim, hidden: hidden, tEmbedDim: tEmbedDim},
	}
	for li, c := range counts {
		level := make([]*rmiModel, c)
		for mi := range level {
			sizes := append(append([]int{in}, hidden...), 1)
			level[mi] = &rmiModel{ffn: nn.NewFFN(rng, fmt.Sprintf("rmi.l%d.m%d", li, mi), sizes, nn.ActReLU, nn.ActNone)}
		}
		r.levels = append(r.levels, level)
	}
	return r
}

// rmiSingle adapts one RMI sub-model to the shared training loop.
type rmiSingle struct {
	embed *TEmbed
	ffn   *nn.FFN
}

func (s *rmiSingle) forwardLog(tp *autodiff.Tape, x, t *autodiff.Node) *autodiff.Node {
	return s.ffn.Apply(tp, tp.ConcatCols(x, s.embed.Apply(tp, t)))
}

func (s *rmiSingle) Params() []*nn.Param { return append(s.embed.Params(), s.ffn.Params()...) }

// Fit trains the hierarchy stage by stage: level 0 on everything, then
// each next-level model on the examples its parent routes to it.
func (r *RMI) Fit(cfg TrainConfig, train, valid []vecdata.Query) {
	r.arch.observeTMax(train)
	assigned := [][]vecdata.Query{train}
	for li, level := range r.levels {
		// Train every model of this level on its assigned examples.
		preds := make([]float64, 0, len(train))
		var allQ []vecdata.Query
		for mi, m := range level {
			if mi >= len(assigned) || len(assigned[mi]) == 0 {
				continue
			}
			sub := &rmiSingle{embed: r.embed, ffn: m.ffn}
			subCfg := cfg
			subCfg.Seed = cfg.Seed + int64(li*1000+mi)
			trainLogRegressor(sub, subCfg, assigned[mi], nil)
			m.trained = true
			for _, q := range assigned[mi] {
				preds = append(preds, r.predictAtLevel(li, mi, q.X, q.T))
				allQ = append(allQ, q)
			}
		}
		if li == len(r.levels)-1 {
			break
		}
		// Normalization bounds for routing to the next level.
		r.lo[li], r.hi[li] = bounds(preds)
		next := make([][]vecdata.Query, len(r.levels[li+1]))
		for i, q := range allQ {
			idx := r.route(li, preds[i], len(r.levels[li+1]))
			next[idx] = append(next[idx], q)
		}
		assigned = next
	}
	_ = valid // stage-wise training uses no global validation snapshot
}

func bounds(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	return lo, hi
}

func (r *RMI) route(level int, pred float64, nextCount int) int {
	norm := (pred - r.lo[level]) / (r.hi[level] - r.lo[level])
	idx := int(norm * float64(nextCount))
	if idx < 0 {
		idx = 0
	}
	if idx >= nextCount {
		idx = nextCount - 1
	}
	return idx
}

// predictAtLevel evaluates the log-space output of one specific model.
func (r *RMI) predictAtLevel(level, model int, x []float64, t float64) float64 {
	sub := &rmiSingle{embed: r.embed, ffn: r.levels[level][model].ffn}
	tp := autodiff.NewTape()
	xn := tp.Input(tensor.RowVector(x))
	tn := tp.Input(tensor.FromRows([][]float64{{t}}))
	return sub.forwardLog(tp, xn, tn).Scalar()
}

// Estimate routes through the hierarchy and returns the leaf model's
// prediction mapped back to selectivity space. Untrained leaves fall back
// to the deepest trained ancestor's prediction.
func (r *RMI) Estimate(x []float64, t float64) float64 {
	model := 0
	z := r.predictAtLevel(0, 0, x, t)
	for li := 0; li+1 < len(r.levels); li++ {
		next := r.route(li, z, len(r.levels[li+1]))
		if !r.levels[li+1][next].trained {
			break
		}
		model = next
		z = r.predictAtLevel(li+1, model, x, t)
	}
	v := math.Exp(z) - logEps
	if v < 0 {
		return 0
	}
	return v
}

// EstimateBatch evaluates one query per row of x. RMI routes every
// example through a data-dependent model path, so the batch loops
// per query. Safe for concurrent use: each call owns its tapes.
func (r *RMI) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	out := make([]float64, x.Rows())
	for i := range out {
		out[i] = r.Estimate(x.Row(i), ts[i])
	}
	return out
}

// Dim returns the query dimensionality.
func (r *RMI) Dim() int { return r.arch.dim }

// TMax returns the largest threshold seen during training.
func (r *RMI) TMax() float64 { return r.arch.tmax }

// SetTMax overrides the advertised threshold ceiling.
func (r *RMI) SetTMax(t float64) { r.arch.setTMax(t) }

// Name returns the paper's model name.
func (r *RMI) Name() string { return "RMI" }

// Params returns all trainable tensors of the hierarchy.
func (r *RMI) Params() []*nn.Param {
	ps := r.embed.Params()
	for _, level := range r.levels {
		for _, m := range level {
			ps = append(ps, m.ffn.Params()...)
		}
	}
	return ps
}
