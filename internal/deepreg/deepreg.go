// Package deepreg implements the paper's ordinary deep-regression
// baselines (Sec. 7.1): DNN (a vanilla feed-forward network), MoE (a
// sparsely-gated mixture of experts) and RMI (a recursive model index
// trained stage-wise). None of them guarantees consistency — they are the
// unstarred rows of Tables 1-4.
//
// Following Appendix B.2, these models cannot consume the threshold t
// directly: t is first lifted to an m-dimensional embedding ReLU(w*t)
// with a learned weight vector w, then concatenated with the query
// vector. All models regress the log-selectivity z = log(y+eps) under the
// same Huber loss used by SelNet, and report exp(z)-eps clamped at zero.
package deepreg

import (
	"math"
	"math/rand"

	"selnet/internal/autodiff"
	"selnet/internal/nn"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// logEps pads selectivities before the logarithm, as in the paper's loss.
const logEps = 1e-3

// TrainConfig holds the shared training hyper-parameters.
type TrainConfig struct {
	Epochs     int
	Batch      int
	LR         float64
	HuberDelta float64
	Seed       int64
	// EvalEvery selects the best parameters on the validation set every
	// this many epochs (0 disables snapshotting).
	EvalEvery int
}

// DefaultTrainConfig returns the harness defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 60, Batch: 128, LR: 3e-3, HuberDelta: 1.345, Seed: 1, EvalEvery: 5}
}

// TEmbed is the learned threshold embedding ReLU(w*t) of Appendix B.2.
type TEmbed struct {
	W *nn.Param
}

// NewTEmbed creates an m-dimensional threshold embedding.
func NewTEmbed(rng *rand.Rand, name string, m int) *TEmbed {
	e := &TEmbed{W: nn.NewParam(name+".tembed", 1, m)}
	nn.XavierInit(rng, e.W.Value, 1, m)
	return e
}

// Apply lifts the column vector t (batch x 1) to batch x m.
func (e *TEmbed) Apply(tp *autodiff.Tape, t *autodiff.Node) *autodiff.Node {
	return tp.ReLU(tp.MatMul(t, e.W.Node(tp)))
}

// Params returns the embedding weight.
func (e *TEmbed) Params() []*nn.Param { return []*nn.Param{e.W} }

// Dim returns the embedding width.
func (e *TEmbed) Dim() int { return e.W.Value.Cols() }

// logForward is the log-space forward pass shared by the baselines.
type logForward interface {
	forwardLog(tp *autodiff.Tape, x, t *autodiff.Node) *autodiff.Node
	Params() []*nn.Param
}

// trainLogRegressor optimizes the Huber-log objective over mini-batches,
// optionally snapshotting the best-validation parameters.
func trainLogRegressor(m logForward, cfg TrainConfig, train, valid []vecdata.Query) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	x, t, y := vecdata.Matrices(train)
	// Pre-compute log targets once.
	logy := tensor.Apply(y, func(v float64) float64 { return math.Log(v + logEps) })
	n := len(train)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var best []*tensor.Dense
	bestLoss := math.Inf(1)
	snapshot := func() {
		if len(valid) == 0 {
			return
		}
		l := validationLoss(m, cfg, valid)
		if l < bestLoss {
			bestLoss = l
			best = best[:0]
			for _, p := range m.Params() {
				best = append(best, p.Value.Clone())
			}
		}
	}
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < n; s += cfg.Batch {
			end := s + cfg.Batch
			if end > n {
				end = n
			}
			b := idx[s:end]
			tp := autodiff.NewTape()
			xb := tp.Input(tensor.GatherRows(x, b))
			tb := tp.Input(tensor.GatherRows(t, b))
			yb := tp.Input(tensor.GatherRows(logy, b))
			out := m.forwardLog(tp, xb, tb)
			loss := huberOnNodes(tp, out, yb, cfg.HuberDelta)
			tp.Backward(loss)
			opt.Step(m.Params())
		}
		if cfg.EvalEvery > 0 && (e+1)%cfg.EvalEvery == 0 {
			snapshot()
		}
	}
	snapshot()
	if best != nil {
		for i, p := range m.Params() {
			p.Value.CopyFrom(best[i])
		}
	}
}

// huberOnNodes computes the mean exact Huber(delta) loss of the residual
// (target - pred) for log-space column vectors already on the tape.
func huberOnNodes(tp *autodiff.Tape, pred, target *autodiff.Node, delta float64) *autodiff.Node {
	return tp.HuberResidualLoss(pred, target, delta)
}

func validationLoss(m logForward, cfg TrainConfig, valid []vecdata.Query) float64 {
	x, t, y := vecdata.Matrices(valid)
	logy := tensor.Apply(y, func(v float64) float64 { return math.Log(v + logEps) })
	tp := autodiff.NewTape()
	out := m.forwardLog(tp, tp.Input(x), tp.Input(t))
	return huberOnNodes(tp, out, tp.Input(logy), cfg.HuberDelta).Scalar()
}

// estimateLog runs a single-query forward pass and maps back to
// selectivity space.
func estimateLog(m logForward, x []float64, t float64) float64 {
	tp := autodiff.NewTape()
	xn := tp.Input(tensor.RowVector(x))
	tn := tp.Input(tensor.FromRows([][]float64{{t}}))
	z := m.forwardLog(tp, xn, tn).Scalar()
	v := math.Exp(z) - logEps
	if v < 0 {
		return 0
	}
	return v
}
