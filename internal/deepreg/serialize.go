package deepreg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"selnet/internal/autodiff"
	"selnet/internal/nn"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// archInfo records what the constructors need to rebuild a network at
// load time, plus the serving metadata every estimator advertises.
type archInfo struct {
	dim       int
	hidden    []int
	tEmbedDim int
	tmax      float64
}

func (a *archInfo) observeTMax(train []vecdata.Query) {
	for _, q := range train {
		if q.T > a.tmax {
			a.tmax = q.T
		}
	}
	if a.tmax == 0 {
		a.tmax = 1
	}
}

func (a *archInfo) setTMax(t float64) {
	if t > 0 {
		a.tmax = t
	}
}

// estimateLogBatch runs one forward pass over the whole batch and maps
// log predictions back to selectivity space.
func estimateLogBatch(m logForward, x *tensor.Dense, ts []float64) []float64 {
	if x.Rows() != len(ts) {
		panic(fmt.Sprintf("deepreg: batch size mismatch: %d rows, %d thresholds", x.Rows(), len(ts)))
	}
	tp := autodiff.NewTape()
	xn := tp.Input(x)
	tn := tp.Input(tensor.ColVector(ts))
	z := m.forwardLog(tp, xn, tn)
	out := make([]float64, x.Rows())
	for i := range out {
		v := math.Exp(z.Value.At(i, 0)) - logEps
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// paramBytes serializes params into a standalone byte blob so the outer
// gob stream stays single-message (no decoder stream sharing needed).
func paramBytes(params []*nn.Param) ([]byte, error) {
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, params); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func loadParamBytes(blob []byte, params []*nn.Param) error {
	return nn.LoadParams(bytes.NewReader(blob), params)
}

type dnnBlob struct {
	Dim       int
	Hidden    []int
	TEmbedDim int
	TMax      float64
	Params    []byte
}

// Save serializes the trained DNN to w.
func (d *DNN) Save(w io.Writer) error {
	pb, err := paramBytes(d.Params())
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(dnnBlob{
		Dim: d.arch.dim, Hidden: d.arch.hidden, TEmbedDim: d.arch.tEmbedDim,
		TMax: d.arch.tmax, Params: pb,
	})
}

// LoadDNN reads a DNN previously written by Save.
func LoadDNN(r io.Reader) (*DNN, error) {
	var b dnnBlob
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("deepreg: decode DNN: %w", err)
	}
	d := NewDNN(rand.New(rand.NewSource(1)), b.Dim, b.Hidden, b.TEmbedDim)
	d.arch.tmax = b.TMax
	if err := loadParamBytes(b.Params, d.Params()); err != nil {
		return nil, fmt.Errorf("deepreg: DNN params: %w", err)
	}
	return d, nil
}

type moeBlob struct {
	Dim        int
	Hidden     []int
	TEmbedDim  int
	NumExperts int
	TopK       int
	TMax       float64
	Params     []byte
}

// Save serializes the trained MoE to w.
func (m *MoE) Save(w io.Writer) error {
	pb, err := paramBytes(m.Params())
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(moeBlob{
		Dim: m.arch.dim, Hidden: m.arch.hidden, TEmbedDim: m.arch.tEmbedDim,
		NumExperts: len(m.experts), TopK: m.topK,
		TMax: m.arch.tmax, Params: pb,
	})
}

// LoadMoE reads an MoE previously written by Save.
func LoadMoE(r io.Reader) (*MoE, error) {
	var b moeBlob
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("deepreg: decode MoE: %w", err)
	}
	m := NewMoE(rand.New(rand.NewSource(1)), b.Dim, b.Hidden, b.TEmbedDim, b.NumExperts, b.TopK)
	m.arch.tmax = b.TMax
	if err := loadParamBytes(b.Params, m.Params()); err != nil {
		return nil, fmt.Errorf("deepreg: MoE params: %w", err)
	}
	return m, nil
}

type rmiBlob struct {
	Dim       int
	Hidden    []int
	TEmbedDim int
	Counts    []int
	Lo, Hi    []float64
	Trained   [][]bool
	TMax      float64
	Params    []byte
}

// Save serializes the trained RMI to w, including its routing bounds and
// which sub-models the stage-wise fit actually trained.
func (r *RMI) Save(w io.Writer) error {
	pb, err := paramBytes(r.Params())
	if err != nil {
		return err
	}
	trained := make([][]bool, len(r.levels))
	for li, level := range r.levels {
		trained[li] = make([]bool, len(level))
		for mi, m := range level {
			trained[li][mi] = m.trained
		}
	}
	return gob.NewEncoder(w).Encode(rmiBlob{
		Dim: r.arch.dim, Hidden: r.arch.hidden, TEmbedDim: r.arch.tEmbedDim,
		Counts: r.counts, Lo: r.lo, Hi: r.hi, Trained: trained,
		TMax: r.arch.tmax, Params: pb,
	})
}

// LoadRMI reads an RMI previously written by Save.
func LoadRMI(rd io.Reader) (*RMI, error) {
	var b rmiBlob
	if err := gob.NewDecoder(rd).Decode(&b); err != nil {
		return nil, fmt.Errorf("deepreg: decode RMI: %w", err)
	}
	r := NewRMI(rand.New(rand.NewSource(1)), b.Dim, b.Hidden, b.TEmbedDim, b.Counts)
	r.arch.tmax = b.TMax
	copy(r.lo, b.Lo)
	copy(r.hi, b.Hi)
	for li, level := range r.levels {
		if li >= len(b.Trained) {
			break
		}
		for mi, m := range level {
			if mi < len(b.Trained[li]) {
				m.trained = b.Trained[li][mi]
			}
		}
	}
	if err := loadParamBytes(b.Params, r.Params()); err != nil {
		return nil, fmt.Errorf("deepreg: RMI params: %w", err)
	}
	return r, nil
}
