package experiments

import (
	"math/rand"

	"selnet/internal/deepreg"
	"selnet/internal/distance"
	"selnet/internal/dln"
	"selnet/internal/gbm"
	"selnet/internal/kde"
	"selnet/internal/lshsampling"
	"selnet/internal/metrics"
	"selnet/internal/partition"
	"selnet/internal/selnet"
	"selnet/internal/umnn"
)

// BuildModel trains the named model on the environment. Model names match
// the paper's tables: LSH, KDE, LightGBM, LightGBM-m, DNN, MoE, RMI, DLN,
// UMNN, SelNet, SelNet-ct, SelNet-ad-ct. It returns nil when the model is
// inapplicable to the setting (LSH on Euclidean distance, as in Table 2).
func BuildModel(cfg Config, env *Env, name string) metrics.Estimator {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(len(name))*37))
	switch name {
	case "LSH":
		if env.DB.Dist != distance.Cosine {
			return nil // SimHash needs cosine (Table 2 omits LSH)
		}
		lcfg := lshsampling.DefaultConfig()
		lcfg.SampleBudget = cfg.SampleBudget
		est, err := lshsampling.Build(rng, env.DB, lcfg)
		if err != nil {
			return nil
		}
		return est
	case "KDE":
		kcfg := kde.DefaultConfig()
		kcfg.SampleSize = cfg.SampleBudget
		return kde.FitTuned(rng, env.DB, kcfg, env.Train)
	case "LightGBM", "LightGBM-m":
		gcfg := gbm.DefaultConfig()
		gcfg.NumTrees = cfg.GBMTrees
		return gbm.FitSelectivity(gcfg, env.Train, name == "LightGBM-m")
	case "DNN":
		m := deepreg.NewDNN(rng, env.DB.Dim, []int{96, 96, 64}, 16)
		m.Fit(deepTrainConfig(cfg), env.Train, env.Valid)
		return m
	case "MoE":
		m := deepreg.NewMoE(rng, env.DB.Dim, []int{64, 64}, 16, 6, 3)
		m.Fit(deepTrainConfig(cfg), env.Train, env.Valid)
		return m
	case "RMI":
		m := deepreg.NewRMI(rng, env.DB.Dim, []int{64, 64}, 16, []int{1, 2, 4})
		m.Fit(deepTrainConfig(cfg), env.Train, env.Valid)
		return m
	case "DLN":
		dcfg := dln.DefaultConfig()
		dcfg.Epochs = cfg.Epochs
		dcfg.Seed = cfg.Seed
		m := dln.New(rng, env.DB.Dim, dcfg)
		m.Fit(env.Train)
		return m
	case "UMNN":
		ucfg := umnn.DefaultConfig()
		ucfg.Epochs = cfg.Epochs
		ucfg.Hidden = []int{64, 64}
		ucfg.QuadPoints = 8
		ucfg.Seed = cfg.Seed
		m := umnn.New(rng, env.DB.Dim, ucfg)
		m.Fit(env.Train)
		return m
	case "SelNet":
		return BuildSelNet(cfg, env, SelNetOptions{K: 3})
	case "SelNet-ct":
		return BuildSelNetCT(cfg, env, true)
	case "SelNet-ad-ct":
		return BuildSelNetCT(cfg, env, false)
	default:
		panic("experiments: unknown model " + name)
	}
}

// deepTrainConfig derives the deep-baseline training settings.
func deepTrainConfig(cfg Config) deepreg.TrainConfig {
	tc := deepreg.DefaultTrainConfig()
	tc.Epochs = cfg.Epochs
	tc.Seed = cfg.Seed
	return tc
}

// SelNetOptions parameterizes the full SelNet builder for the sweep
// tables.
type SelNetOptions struct {
	K      int
	Method partition.Method
	L      int // interior control points; 0 = default
	Loss   selnet.LossKind
	// TrainingMode selects the Sec. 5.3 training procedure:
	// "" or "pretrain+joint" (default), "global-only", "local-only".
	TrainingMode string
	SoftmaxTau   bool
}

// selnetModelConfig derives the architecture from the experiment scale.
func selnetModelConfig(cfg Config, env *Env, opts SelNetOptions) selnet.Config {
	mc := selnet.DefaultConfig()
	mc.TMax = env.TMax
	if opts.L > 0 {
		mc.L = opts.L
	}
	mc.SoftmaxTau = opts.SoftmaxTau
	return mc
}

func selnetTrainConfig(cfg Config, opts SelNetOptions) selnet.TrainConfig {
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = cfg.Epochs
	tc.Seed = cfg.Seed
	tc.Loss = opts.Loss
	tc.AEPretrainSample = min(cfg.N, 2000)
	return tc
}

// BuildSelNet trains the full partitioned SelNet.
func BuildSelNet(cfg Config, env *Env, opts SelNetOptions) *selnet.Partitioned {
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	pcfg := selnet.DefaultPartitionedConfig()
	pcfg.Model = selnetModelConfig(cfg, env, opts)
	if opts.K > 0 {
		pcfg.K = opts.K
	}
	pcfg.Method = opts.Method
	pcfg.PretrainEpochs = max(cfg.Epochs/5, 2)
	tc := selnetTrainConfig(cfg, opts)
	switch opts.TrainingMode {
	case "global-only":
		pcfg.PretrainEpochs = 0
		pcfg.Beta = 0
	case "local-only":
		pcfg.PretrainEpochs = cfg.Epochs
		tc.Epochs = 0
	}
	p := selnet.NewPartitioned(rng, env.DB, pcfg)
	p.Fit(tc, env.DB, env.Train, env.Valid)
	return p
}

// BuildSelNetCT trains the unpartitioned ablation: SelNet-ct when
// queryDependent, SelNet-ad-ct otherwise.
func BuildSelNetCT(cfg Config, env *Env, queryDependent bool) *selnet.Net {
	rng := rand.New(rand.NewSource(cfg.Seed + 202))
	mc := selnetModelConfig(cfg, env, SelNetOptions{})
	mc.QueryDependentTau = queryDependent
	n := selnet.NewNet(rng, env.DB.Dim, mc)
	n.Fit(selnetTrainConfig(cfg, SelNetOptions{}), env.DB, env.Train, env.Valid)
	return n
}

// AllModelNames lists the models of Tables 1-4 in paper order.
var AllModelNames = []string{
	"LSH", "KDE", "LightGBM", "LightGBM-m", "DNN", "MoE", "RMI", "DLN", "UMNN", "SelNet",
}

// IsConsistent reports whether the named model is starred in the paper's
// tables (consistency guaranteed).
func IsConsistent(est metrics.Estimator) bool {
	c, ok := est.(metrics.Consistent)
	return ok && c.ConsistencyGuaranteed()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
