package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"selnet/internal/dln"
	"selnet/internal/metrics"
	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

// Figure3Result holds both models' fits of y = exp(t)/10 on [0, 10] with
// 8 control points (paper Figure 3 / Sec. 6.2).
type Figure3Result struct {
	Ts          []float64 // evaluation grid
	GroundTruth []float64
	PWLFit      []float64 // "Our Model" (b)
	DLNFit      []float64 // simplified DLN (a)
	PWLTau      []float64 // learned control point positions
	PWLP        []float64
	DLNKeys     []float64 // fixed calibrator keypoints
	PWLRMSE     float64   // range-normalized RMSE
	DLNRMSE     float64
}

// RunFigure3 fits both models to 80 random samples of the exponential
// curve and evaluates them on a dense grid.
func RunFigure3(cfg Config) Figure3Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	curve := func(t float64) float64 { return math.Exp(t) / 10 }
	const tmax = 10.0
	ts := make([]float64, 80)
	ys := make([]float64, 80)
	for i := range ts {
		ts[i] = rng.Float64() * tmax
		ys[i] = curve(ts[i])
	}
	pwl := selnet.NewCurveFitter(rng, 8, tmax)
	// Staged learning-rate decay: control-point positions settle at the
	// high rate, heights refine at the low rates.
	pwl.Fit(ts, ys, 4000, 0.1)
	pwl.Fit(ts, ys, 4000, 0.02)
	pwl.Fit(ts, ys, 4000, 0.005)
	cal := dln.NewCurveCalibrator(rng, 8, tmax)
	cal.Fit(ts, ys, 9000, 0.05)

	res := Figure3Result{DLNKeys: cal.Keypoints()}
	res.PWLTau, res.PWLP = pwl.ControlPoints()
	var sseP, sseD float64
	for t := 0.0; t <= tmax+1e-9; t += 0.1 {
		y := curve(t)
		p := pwl.Eval(t)
		d := cal.Eval(t)
		res.Ts = append(res.Ts, t)
		res.GroundTruth = append(res.GroundTruth, y)
		res.PWLFit = append(res.PWLFit, p)
		res.DLNFit = append(res.DLNFit, d)
		sseP += (p - y) * (p - y)
		sseD += (d - y) * (d - y)
	}
	n := float64(len(res.Ts))
	res.PWLRMSE = math.Sqrt(sseP/n) / curve(tmax)
	res.DLNRMSE = math.Sqrt(sseD/n) / curve(tmax)
	return res
}

// String renders the figure as a comparison table plus control points.
func (r Figure3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: fitting y = exp(t)/10 with 8 control points\n")
	fmt.Fprintf(&b, "range-normalized RMSE: our model %.4f, simplified DLN %.4f\n", r.PWLRMSE, r.DLNRMSE)
	fmt.Fprintf(&b, "our model control points (tau): %s\n", fmtFloats(r.PWLTau))
	fmt.Fprintf(&b, "DLN calibrator keypoints (fixed): %s\n", fmtFloats(r.DLNKeys))
	fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "t", "truth", "our model", "DLN")
	for i := 0; i < len(r.Ts); i += 10 {
		fmt.Fprintf(&b, "%8.1f %12.2f %12.2f %12.2f\n", r.Ts[i], r.GroundTruth[i], r.PWLFit[i], r.DLNFit[i])
	}
	return b.String()
}

// Figure4Query is the per-query data of Figure 4: the true selectivity
// curve and both variants' control points.
type Figure4Query struct {
	Grid     []float64 // thresholds
	Truth    []float64 // exact selectivity at each grid point
	CtTau    []float64 // SelNet-ct control points for this query
	CtP      []float64
	AdTau    []float64 // SelNet-ad-ct control points (same for all queries)
	AdP      []float64
	CtErrMAE float64 // MAE of each variant along the grid
	AdErrMAE float64
}

// Figure4Result reproduces Figure 4: control points learned by SelNet-ct
// and SelNet-ad-ct for two random fasttext-cos queries.
type Figure4Result struct {
	Queries []Figure4Query
}

// RunFigure4 trains the two ablations on fasttext-cos and dumps the
// control points for two random test queries. Like Table 6, it uses the
// dense-curve workload: the figure contrasts how the variants place
// control points along one query's curve.
func RunFigure4(cfg Config) Figure4Result {
	cfg = denseCurveConfig(cfg)
	env := NewEnv(cfg, "fasttext-cos")
	ct := BuildSelNetCT(cfg, env, true)
	ad := BuildSelNetCT(cfg, env, false)
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	// Collect distinct query vectors (the dense workload repeats each
	// vector once per threshold).
	var distinct [][]float64
	seen := map[string]bool{}
	for _, q := range env.Test {
		k := fmt.Sprintf("%.12g|%.12g", q.X[0], q.X[len(q.X)-1])
		if !seen[k] {
			seen[k] = true
			distinct = append(distinct, q.X)
		}
	}
	rng.Shuffle(len(distinct), func(i, j int) { distinct[i], distinct[j] = distinct[j], distinct[i] })
	var res Figure4Result
	for qi := 0; qi < 2 && qi < len(distinct); qi++ {
		x := distinct[qi]
		q := Figure4Query{}
		q.CtTau, q.CtP = ct.ControlPoints(x)
		q.AdTau, q.AdP = ad.ControlPoints(x)
		dists := env.DB.DistancesTo(x)
		for t := 0.0; t <= env.TMax+1e-9; t += env.TMax / 40 {
			truth := countWithinSorted(dists, t)
			q.Grid = append(q.Grid, t)
			q.Truth = append(q.Truth, truth)
			q.CtErrMAE += math.Abs(ct.Estimate(x, t) - truth)
			q.AdErrMAE += math.Abs(ad.Estimate(x, t) - truth)
		}
		q.CtErrMAE /= float64(len(q.Grid))
		q.AdErrMAE /= float64(len(q.Grid))
		res.Queries = append(res.Queries, q)
	}
	return res
}

func countWithinSorted(dists []float64, t float64) float64 {
	var c float64
	for _, d := range dists {
		if d <= t {
			c++
		}
	}
	return c
}

// String renders the control-point dumps.
func (r Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: learned control points on fasttext-cos\n")
	for i, q := range r.Queries {
		fmt.Fprintf(&b, "query %d:\n", i+1)
		fmt.Fprintf(&b, "  SelNet-ct    tau: %s\n", fmtFloats(q.CtTau))
		fmt.Fprintf(&b, "  SelNet-ad-ct tau: %s\n", fmtFloats(q.AdTau))
		fmt.Fprintf(&b, "  curve MAE: SelNet-ct %.2f vs SelNet-ad-ct %.2f\n", q.CtErrMAE, q.AdErrMAE)
	}
	return b.String()
}

// Figure5Point is the error after one update operation.
type Figure5Point struct {
	Op        int
	MSE       float64
	MAPE      float64
	Retrained bool
}

// Figure5Result reproduces Figure 5: error trajectory of SelNet under a
// stream of insert/delete operations with incremental learning.
type Figure5Result struct {
	Setting string
	Points  []Figure5Point
}

// RunFigure5 runs the update stream on one cosine setting (the paper uses
// face-cos and fasttext-cos; call twice to get both).
func RunFigure5(cfg Config, setting string) Figure5Result {
	env := NewEnv(cfg, setting)
	est := BuildSelNet(cfg, env, SelNetOptions{K: 3})
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = cfg.Epochs
	tc.Seed = cfg.Seed
	uc := selnet.DefaultUpdateConfig()
	uc.MaxEpochs = max(cfg.Epochs/4, 3)
	// Track drift against the MAE recorded at the last (re)training, as in
	// Sec. 5.4 ("the difference between the original MAE and the new one").
	uc.BaselineMAE = est.MAE(env.Valid)
	rng := rand.New(rand.NewSource(cfg.Seed + 55))
	res := Figure5Result{Setting: setting}
	db := env.DB
	ops := vecdata.UpdateStream(rng, cfg.UpdateOps, cfg.UpdateBatchSize, func(r *rand.Rand) []float64 {
		return vecdata.SampleLike(r, db, 0.05)
	})
	for i, op := range ops {
		// Apply to the database and register with the model's clusters.
		if len(op.Insert) > 0 {
			db.Insert(op.Insert...)
			est.ApplyInsert(op.Insert)
		} else {
			n := op.Delete
			if n > db.Size()-1 {
				n = db.Size() - 1
			}
			idx := rng.Perm(db.Size())[:n]
			deleted := make([][]float64, 0, n)
			for _, di := range idx {
				deleted = append(deleted, append([]float64(nil), db.Vecs[di]...))
			}
			db.Delete(idx...)
			est.ApplyDelete(deleted)
		}
		upd := est.HandleUpdate(tc, uc, db, env.Train, env.Valid)
		if upd.Retrained {
			uc.BaselineMAE = upd.MAEAfter
		}
		vecdata.Relabel(env.Test, db)
		errs := metrics.Evaluate(est, env.Test)
		res.Points = append(res.Points, Figure5Point{
			Op: i + 1, MSE: errs.MSE, MAPE: errs.MAPE, Retrained: upd.Retrained,
		})
	}
	return res
}

// String renders the error trajectory.
func (r Figure5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: data update on %s\n", r.Setting)
	fmt.Fprintf(&b, "%6s %14s %10s %10s\n", "op", "MSE", "MAPE", "retrained")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %14.4g %10.3f %10v\n", p.Op, p.MSE, p.MAPE, p.Retrained)
	}
	return b.String()
}

func fmtFloats(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%.3f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
