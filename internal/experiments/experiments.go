// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. 7). Each Run* function regenerates one artifact:
//
//	Tables 1-4   RunAccuracyTable        accuracy per dataset setting
//	Table 5      RunMonotonicityTable    empirical monotonicity
//	Table 6      RunAblationTable        SelNet vs SelNet-ct vs SelNet-ad-ct
//	Table 7      RunTimingTable          average estimation time
//	Table 8      RunControlPointSweep    errors vs number of control points
//	Table 9      RunPartitionSizeSweep   errors vs partition size
//	Table 10     RunPartitionMethodTable CT vs RP vs KM
//	Table 11     RunBetaWorkloadTable    Beta(3, 2.5) thresholds
//	Figure 3     RunFigure3              PWL vs simplified-DLN curve fit
//	Figure 4     RunFigure4              learned control points per query
//	Figure 5     RunFigure5              update stream error trajectory
//
// plus the design-choice ablations called out in DESIGN.md
// (RunTauTransformAblation, RunLossAblation, RunTrainingModeAblation).
//
// Experiments run at a configurable scale; QuickConfig targets seconds
// per table (used by the repository's benchmarks) and FullConfig targets
// the fidelity run of cmd/benchrunner. Absolute numbers differ from the
// paper (synthetic data, scaled sizes, pure-Go training) — EXPERIMENTS.md
// records how the paper's qualitative shape is reproduced.
package experiments

import (
	"fmt"
	"math/rand"

	"selnet/internal/distance"
	"selnet/internal/vecdata"
)

// Config scales every experiment.
type Config struct {
	Seed int64
	// Database scale.
	N   int
	Dim int
	// Workload scale: NumQueries query vectors with W thresholds each.
	NumQueries int
	W          int
	// Deep-model training budget.
	Epochs int
	// Tree count for the GBM baselines.
	GBMTrees int
	// Sample budget for KDE and LSH (the paper uses 2000).
	SampleBudget int
	// Table 5 scale.
	MonoQueries    int
	MonoThresholds int
	// Table 8 sweep values (number of interior control points L).
	LValues []int
	// Table 9 sweep values (partition sizes K).
	KValues []int
	// Figure 5 scale.
	UpdateOps       int
	UpdateBatchSize int
}

// QuickConfig returns a scale designed for seconds-per-table; the
// repository's benchmarks use it.
func QuickConfig() Config {
	return Config{
		Seed: 1, N: 2000, Dim: 16, NumQueries: 100, W: 8,
		Epochs: 30, GBMTrees: 40, SampleBudget: 64,
		MonoQueries: 10, MonoThresholds: 25,
		LValues:   []int{4, 8, 16, 24},
		KValues:   []int{1, 3, 6, 9},
		UpdateOps: 8, UpdateBatchSize: 5,
	}
}

// FullConfig returns the fidelity scale used by cmd/benchrunner.
func FullConfig() Config {
	return Config{
		Seed: 1, N: 8000, Dim: 32, NumQueries: 200, W: 10,
		Epochs: 60, GBMTrees: 80, SampleBudget: 200,
		MonoQueries: 50, MonoThresholds: 60,
		LValues:   []int{4, 10, 20, 32},
		KValues:   []int{1, 3, 6, 9},
		UpdateOps: 20, UpdateBatchSize: 5,
	}
}

// Settings lists the four dataset settings of Sec. 7.1 in table order.
var Settings = []string{"fasttext-cos", "fasttext-l2", "face-cos", "youtube-cos"}

// Env is one prepared dataset setting: the database, its workload and the
// 80/10/10 query splits.
type Env struct {
	Setting string
	DB      *vecdata.Database
	TMax    float64
	Train   []vecdata.Query
	Valid   []vecdata.Query
	Test    []vecdata.Query
}

// NewEnv builds the synthetic stand-in for a paper setting and its
// geometric-selectivity workload (Appendix B.1).
func NewEnv(cfg Config, setting string) *Env {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := buildDatabase(rng, cfg, setting)
	wl := vecdata.GeometricWorkload(rng, db, cfg.NumQueries, cfg.W)
	return newEnvFromWorkload(cfg, setting, db, wl)
}

// NewBetaEnv builds the Sec. 7.9 workload: fasttext-cos queries with
// thresholds drawn from Beta(3, 2.5), scaled to the geometric workload's
// threshold range so selectivities span the same distances.
func NewBetaEnv(cfg Config) *Env {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := buildDatabase(rng, cfg, "fasttext-cos")
	// Probe the threshold scale with a small geometric workload first.
	probe := vecdata.GeometricWorkload(rng, db, min(cfg.NumQueries, 10), cfg.W)
	wl := vecdata.BetaThresholdWorkload(rng, db, cfg.NumQueries, cfg.W, 3, 2.5, probe.TMax)
	return newEnvFromWorkload(cfg, "fasttext-cos/beta", db, wl)
}

func newEnvFromWorkload(cfg Config, setting string, db *vecdata.Database, wl *vecdata.Workload) *Env {
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	train, valid, test := wl.Split(rng)
	return &Env{
		Setting: setting,
		DB:      db,
		TMax:    wl.TMax,
		Train:   train,
		Valid:   valid,
		Test:    test,
	}
}

func buildDatabase(rng *rand.Rand, cfg Config, setting string) *vecdata.Database {
	switch setting {
	case "fasttext-cos":
		return vecdata.SyntheticFasttext(rng, cfg.N, cfg.Dim, distance.Cosine)
	case "fasttext-l2":
		return vecdata.SyntheticFasttext(rng, cfg.N, cfg.Dim, distance.Euclidean)
	case "face-cos":
		return vecdata.SyntheticFace(rng, cfg.N, cfg.Dim)
	case "youtube-cos":
		return vecdata.SyntheticYouTube(rng, cfg.N, cfg.Dim)
	default:
		panic(fmt.Sprintf("experiments: unknown setting %q", setting))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
