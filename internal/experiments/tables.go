package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"selnet/internal/metrics"
	"selnet/internal/partition"
	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

// AccuracyRow is one model's errors on the validation and test splits.
type AccuracyRow struct {
	Model      string
	Consistent bool
	Valid      metrics.Errors
	Test       metrics.Errors
	EstimateMS float64 // average per-estimate milliseconds on the test split
}

// AccuracyTable reproduces the layout of Tables 1-4 and 11.
type AccuracyTable struct {
	Title   string
	Setting string
	Rows    []AccuracyRow
}

// RunAccuracyTable trains every applicable model on the setting and
// evaluates it — the generator behind Tables 1-4.
func RunAccuracyTable(cfg Config, setting string) AccuracyTable {
	env := NewEnv(cfg, setting)
	title := map[string]string{
		"fasttext-cos": "Table 1: Accuracy on fasttext-cos",
		"fasttext-l2":  "Table 2: Accuracy on fasttext-l2",
		"face-cos":     "Table 3: Accuracy on face-cos",
		"youtube-cos":  "Table 4: Accuracy on YouTube-cos",
	}[setting]
	return runAccuracy(cfg, env, title)
}

// RunBetaWorkloadTable reproduces Table 11: fasttext-cos with thresholds
// drawn from Beta(3, 2.5).
func RunBetaWorkloadTable(cfg Config) AccuracyTable {
	env := NewBetaEnv(cfg)
	return runAccuracy(cfg, env, "Table 11: Accuracy on fasttext-cos (thresholds ~ Beta(3, 2.5))")
}

func runAccuracy(cfg Config, env *Env, title string) AccuracyTable {
	table := AccuracyTable{Title: title, Setting: env.Setting}
	for _, name := range AllModelNames {
		est := BuildModel(cfg, env, name)
		if est == nil {
			continue // inapplicable (LSH on l2)
		}
		table.Rows = append(table.Rows, AccuracyRow{
			Model:      est.Name(),
			Consistent: IsConsistent(est),
			Valid:      metrics.Evaluate(est, env.Valid),
			Test:       metrics.Evaluate(est, env.Test),
			EstimateMS: metrics.AvgEstimationTime(est, env.Test),
		})
	}
	return table
}

// String renders the table in the paper's layout.
func (t AccuracyTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %12s %10s %10s\n",
		"Model", "MSE(valid)", "MSE(test)", "MAE(valid)", "MAE(test)", "MAPE(vld)", "MAPE(tst)")
	for _, r := range t.Rows {
		name := r.Model
		if r.Consistent {
			name += " *"
		}
		fmt.Fprintf(&b, "%-14s %12.4g %12.4g %12.4g %12.4g %10.3f %10.3f\n",
			name, r.Valid.MSE, r.Test.MSE, r.Valid.MAE, r.Test.MAE, r.Valid.MAPE, r.Test.MAPE)
	}
	b.WriteString("(* = consistency guaranteed)\n")
	return b.String()
}

// MonotonicityTable reproduces Table 5.
type MonotonicityTable struct {
	Setting string
	Scores  []struct {
		Model string
		Score float64
	}
}

// RunMonotonicityTable trains every model on face-cos and measures the
// empirical monotonicity percentage (Table 5).
func RunMonotonicityTable(cfg Config) MonotonicityTable {
	env := NewEnv(cfg, "face-cos")
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	table := MonotonicityTable{Setting: env.Setting}
	queryVecs := make([][]float64, 0, len(env.Test))
	for _, q := range env.Test {
		queryVecs = append(queryVecs, q.X)
	}
	for _, name := range AllModelNames {
		est := BuildModel(cfg, env, name)
		if est == nil {
			continue
		}
		score := metrics.EmpiricalMonotonicity(rng, est, queryVecs,
			cfg.MonoQueries, cfg.MonoThresholds, env.TMax)
		table.Scores = append(table.Scores, struct {
			Model string
			Score float64
		}{est.Name(), score})
	}
	return table
}

// String renders Table 5.
func (t MonotonicityTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Empirical monotonicity (%%) on %s\n", t.Setting)
	for _, s := range t.Scores {
		fmt.Fprintf(&b, "%-14s %8.2f\n", s.Model, s.Score)
	}
	return b.String()
}

// AblationTable reproduces Table 6: the three SelNet variants across all
// four settings.
type AblationTable struct {
	Rows []struct {
		Setting string
		Model   string
		Valid   metrics.Errors
		Test    metrics.Errors
	}
}

// RunAblationTable trains SelNet, SelNet-ct and SelNet-ad-ct on every
// setting (Table 6 / Sec. 7.4). The ablation isolates curve-fitting
// flexibility, which only shows on densely sampled per-query curves, so
// the workload trades query count for thresholds per query (the paper
// itself uses w=40).
func RunAblationTable(cfg Config) AblationTable {
	cfg = denseCurveConfig(cfg)
	var table AblationTable
	for _, setting := range Settings {
		env := NewEnv(cfg, setting)
		for _, name := range []string{"SelNet", "SelNet-ct", "SelNet-ad-ct"} {
			est := BuildModel(cfg, env, name)
			table.Rows = append(table.Rows, struct {
				Setting string
				Model   string
				Valid   metrics.Errors
				Test    metrics.Errors
			}{setting, est.Name(), metrics.Evaluate(est, env.Valid), metrics.Evaluate(est, env.Test)})
		}
	}
	return table
}

// String renders Table 6.
func (t AblationTable) String() string {
	var b strings.Builder
	b.WriteString("Table 6: Ablation study\n")
	fmt.Fprintf(&b, "%-14s %-14s %12s %12s %10s %10s %8s %8s\n",
		"Dataset", "Model", "MSE(valid)", "MSE(test)", "MAE(vld)", "MAE(tst)", "MAPE(v)", "MAPE(t)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %-14s %12.4g %12.4g %10.4g %10.4g %8.3f %8.3f\n",
			r.Setting, r.Model, r.Valid.MSE, r.Test.MSE, r.Valid.MAE, r.Test.MAE, r.Valid.MAPE, r.Test.MAPE)
	}
	return b.String()
}

// denseCurveConfig reshapes the workload toward the paper's w=40 regime:
// fewer query vectors, many thresholds each, holding the total labelled
// example count roughly constant.
func denseCurveConfig(cfg Config) Config {
	if cfg.W >= 20 {
		return cfg
	}
	total := cfg.NumQueries * cfg.W
	cfg.W = 25
	// Keep enough distinct query vectors for query-dependence to be
	// learnable, even if that grows the total example count somewhat.
	cfg.NumQueries = max(total/cfg.W, 50)
	return cfg
}

// TimingTable reproduces Table 7: average estimation time in milliseconds
// per model per setting.
type TimingTable struct {
	Settings []string
	Rows     []struct {
		Model string
		MS    []float64 // aligned with Settings; NaN-free, -1 = inapplicable
	}
}

// RunTimingTable trains the full model zoo on every setting and measures
// the average per-query estimation time (Table 7). The SelNet ablations
// are included, as in the paper.
func RunTimingTable(cfg Config) TimingTable {
	names := append(append([]string{}, AllModelNames...), "SelNet-ct", "SelNet-ad-ct")
	table := TimingTable{Settings: Settings}
	times := make(map[string][]float64, len(names))
	for _, n := range names {
		times[n] = make([]float64, len(Settings))
		for i := range times[n] {
			times[n][i] = -1
		}
	}
	for si, setting := range Settings {
		env := NewEnv(cfg, setting)
		for _, name := range names {
			est := BuildModel(cfg, env, name)
			if est == nil {
				continue
			}
			times[name][si] = metrics.AvgEstimationTime(est, env.Test)
		}
	}
	for _, name := range names {
		table.Rows = append(table.Rows, struct {
			Model string
			MS    []float64
		}{name, times[name]})
	}
	return table
}

// String renders Table 7.
func (t TimingTable) String() string {
	var b strings.Builder
	b.WriteString("Table 7: Average estimation time (milliseconds)\n")
	fmt.Fprintf(&b, "%-14s", "Model")
	for _, s := range t.Settings {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Model)
		for _, ms := range r.MS {
			if ms < 0 {
				fmt.Fprintf(&b, " %14s", "-")
			} else {
				fmt.Fprintf(&b, " %14.4f", ms)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SweepTable is a generic parameter-sweep result (Tables 8-10).
type SweepTable struct {
	Title  string
	Labels []string
	Rows   []struct {
		Label  string
		Errors metrics.Errors
		EstMS  float64
	}
}

// RunControlPointSweep reproduces Table 8: SelNet errors on fasttext-l2
// versus the number of control points.
func RunControlPointSweep(cfg Config) SweepTable {
	env := NewEnv(cfg, "fasttext-l2")
	table := SweepTable{Title: "Table 8: Errors vs number of control points on fasttext-l2 (validation)"}
	for _, l := range cfg.LValues {
		est := BuildSelNet(cfg, env, SelNetOptions{K: 3, L: l})
		table.Rows = append(table.Rows, sweepRow(fmt.Sprintf("L=%d", l), est, env.Valid))
	}
	return table
}

// RunPartitionSizeSweep reproduces Table 9: SelNet errors and estimation
// time on fasttext-l2 versus partition size K.
func RunPartitionSizeSweep(cfg Config) SweepTable {
	env := NewEnv(cfg, "fasttext-l2")
	table := SweepTable{Title: "Table 9: Errors vs partition size on fasttext-l2 (validation)"}
	for _, k := range cfg.KValues {
		est := BuildSelNet(cfg, env, SelNetOptions{K: k})
		table.Rows = append(table.Rows, sweepRow(fmt.Sprintf("K=%d", k), est, env.Valid))
	}
	return table
}

// RunPartitionMethodTable reproduces Table 10: cover-tree vs random vs
// k-means partitioning with K=3 on fasttext-l2 (test split).
func RunPartitionMethodTable(cfg Config) SweepTable {
	env := NewEnv(cfg, "fasttext-l2")
	table := SweepTable{Title: "Table 10: Errors vs partitioning method on fasttext-l2 (test)"}
	for _, m := range []partition.Method{partition.CoverTree, partition.Random, partition.KMeans} {
		est := BuildSelNet(cfg, env, SelNetOptions{K: 3, Method: m})
		table.Rows = append(table.Rows, sweepRow(fmt.Sprintf("%v (3)", m), est, env.Test))
	}
	return table
}

func sweepRow(label string, est metrics.Estimator, queries []vecdata.Query) struct {
	Label  string
	Errors metrics.Errors
	EstMS  float64
} {
	return struct {
		Label  string
		Errors metrics.Errors
		EstMS  float64
	}{label, metrics.Evaluate(est, queries), metrics.AvgEstimationTime(est, queries)}
}

// String renders a sweep table.
func (t SweepTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-12s %12s %12s %10s %12s\n", "Config", "MSE", "MAE", "MAPE", "Est.Time(ms)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %12.4g %12.4g %10.3f %12.4f\n",
			r.Label, r.Errors.MSE, r.Errors.MAE, r.Errors.MAPE, r.EstMS)
	}
	return b.String()
}

// RunTauTransformAblation compares Norml2 against Softmax for generating
// the τ increments (the Sec. 5.2 design argument; DESIGN.md ablation).
func RunTauTransformAblation(cfg Config) SweepTable {
	env := NewEnv(cfg, "fasttext-l2")
	table := SweepTable{Title: "Ablation: Norml2 vs Softmax tau transform on fasttext-l2 (test)"}
	for _, softmax := range []bool{false, true} {
		label := "Norml2"
		if softmax {
			label = "Softmax"
		}
		est := BuildSelNet(cfg, env, SelNetOptions{K: 3, SoftmaxTau: softmax})
		table.Rows = append(table.Rows, sweepRow(label, est, env.Test))
	}
	return table
}

// RunLossAblation compares the Huber-log loss against plain L1/L2 on logs
// (the Sec. 5.1 design argument; DESIGN.md ablation).
func RunLossAblation(cfg Config) SweepTable {
	env := NewEnv(cfg, "fasttext-l2")
	table := SweepTable{Title: "Ablation: estimation loss on fasttext-l2 (test)"}
	for _, row := range []struct {
		label string
		kind  selnet.LossKind
	}{
		{"Huber-log", selnet.LossHuberLog},
		{"L1-log", selnet.LossL1Log},
		{"L2-log", selnet.LossL2Log},
	} {
		est := BuildSelNet(cfg, env, SelNetOptions{K: 3, Loss: row.kind})
		table.Rows = append(table.Rows, sweepRow(row.label, est, env.Test))
	}
	return table
}

// RunTrainingModeAblation compares the Sec. 5.3 training procedures:
// pretrain+joint (the paper's choice), global-only and local-only.
func RunTrainingModeAblation(cfg Config) SweepTable {
	env := NewEnv(cfg, "fasttext-l2")
	table := SweepTable{Title: "Ablation: partitioned training procedure on fasttext-l2 (test)"}
	for _, mode := range []string{"pretrain+joint", "global-only", "local-only"} {
		est := BuildSelNet(cfg, env, SelNetOptions{K: 3, TrainingMode: mode})
		table.Rows = append(table.Rows, sweepRow(mode, est, env.Test))
	}
	return table
}
