package experiments

import (
	"strings"
	"testing"
)

// microConfig is deliberately tiny: these tests check wiring, not
// fidelity.
func microConfig() Config {
	return Config{
		Seed: 1, N: 400, Dim: 8, NumQueries: 16, W: 4,
		Epochs: 3, GBMTrees: 8, SampleBudget: 80,
		MonoQueries: 4, MonoThresholds: 8,
		LValues:   []int{4, 8},
		KValues:   []int{1, 3},
		UpdateOps: 2, UpdateBatchSize: 3,
	}
}

func TestNewEnvSplitsAndTMax(t *testing.T) {
	cfg := microConfig()
	for _, s := range Settings {
		env := NewEnv(cfg, s)
		if env.Setting != s {
			t.Fatalf("setting %q", env.Setting)
		}
		if len(env.Train) == 0 || len(env.Valid) == 0 || len(env.Test) == 0 {
			t.Fatalf("%s: empty split %d/%d/%d", s, len(env.Train), len(env.Valid), len(env.Test))
		}
		if env.TMax <= 0 {
			t.Fatalf("%s: TMax %v", s, env.TMax)
		}
	}
}

func TestNewEnvUnknownSettingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewEnv(microConfig(), "nope")
}

func TestNewBetaEnv(t *testing.T) {
	env := NewBetaEnv(microConfig())
	if !strings.Contains(env.Setting, "beta") {
		t.Fatalf("setting %q", env.Setting)
	}
	if len(env.Train) == 0 {
		t.Fatalf("empty beta workload")
	}
}

func TestBuildModelAllNames(t *testing.T) {
	cfg := microConfig()
	env := NewEnv(cfg, "fasttext-cos")
	for _, name := range AllModelNames {
		est := BuildModel(cfg, env, name)
		if est == nil {
			t.Fatalf("%s: nil on cosine setting", name)
		}
		v := est.Estimate(env.Test[0].X, env.Test[0].T)
		if v < 0 {
			t.Fatalf("%s: negative estimate %v", name, v)
		}
	}
}

func TestBuildModelLSHNilOnEuclidean(t *testing.T) {
	cfg := microConfig()
	env := NewEnv(cfg, "fasttext-l2")
	if BuildModel(cfg, env, "LSH") != nil {
		t.Fatalf("LSH must be inapplicable on fasttext-l2 (as in Table 2)")
	}
}

func TestRunAccuracyTableSmoke(t *testing.T) {
	cfg := microConfig()
	table := RunAccuracyTable(cfg, "fasttext-l2")
	// Table 2 drops LSH, keeping 9 rows.
	if len(table.Rows) != len(AllModelNames)-1 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	out := table.String()
	for _, want := range []string{"Table 2", "SelNet *", "KDE *", "LightGBM-m *", "MAPE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Consistency stars must match the paper's assignment.
	for _, r := range table.Rows {
		wantStar := map[string]bool{
			"KDE": true, "LightGBM-m": true, "DLN": true, "UMNN": true, "SelNet": true,
		}[r.Model]
		if r.Consistent != wantStar {
			t.Fatalf("%s: consistent=%v, want %v", r.Model, r.Consistent, wantStar)
		}
	}
}

func TestRunMonotonicityTableSmoke(t *testing.T) {
	cfg := microConfig()
	table := RunMonotonicityTable(cfg)
	if len(table.Scores) != len(AllModelNames) {
		t.Fatalf("scores = %d", len(table.Scores))
	}
	for _, s := range table.Scores {
		if s.Score < 0 || s.Score > 100 {
			t.Fatalf("%s: score %v out of range", s.Model, s.Score)
		}
		// Consistent models must score a perfect 100 (Table 5).
		switch s.Model {
		case "LSH", "KDE", "LightGBM-m", "SelNet":
			if s.Score < 100 {
				t.Fatalf("%s: consistent model scored %v", s.Model, s.Score)
			}
		}
	}
}

func TestRunSweepTablesSmoke(t *testing.T) {
	cfg := microConfig()
	t8 := RunControlPointSweep(cfg)
	if len(t8.Rows) != len(cfg.LValues) {
		t.Fatalf("table 8 rows = %d", len(t8.Rows))
	}
	t9 := RunPartitionSizeSweep(cfg)
	if len(t9.Rows) != len(cfg.KValues) {
		t.Fatalf("table 9 rows = %d", len(t9.Rows))
	}
	for _, r := range t9.Rows {
		if r.EstMS <= 0 {
			t.Fatalf("estimation time must be positive")
		}
	}
	t10 := RunPartitionMethodTable(cfg)
	if len(t10.Rows) != 3 {
		t.Fatalf("table 10 rows = %d", len(t10.Rows))
	}
	if !strings.Contains(t10.String(), "CT (3)") {
		t.Fatalf("table 10 missing CT row:\n%s", t10)
	}
}

func TestRunFigure3Smoke(t *testing.T) {
	cfg := microConfig()
	r := RunFigure3(cfg)
	if len(r.Ts) != len(r.GroundTruth) || len(r.Ts) != len(r.PWLFit) || len(r.Ts) != len(r.DLNFit) {
		t.Fatalf("misaligned series")
	}
	if len(r.PWLTau) != 8 || len(r.DLNKeys) != 8 {
		t.Fatalf("expected 8 control points each")
	}
	// The paper's core claim: the PWL model with learned placement fits
	// better than the fixed-keypoint calibrator.
	if r.PWLRMSE >= r.DLNRMSE {
		t.Fatalf("our model RMSE %v should beat DLN %v (Figure 3)", r.PWLRMSE, r.DLNRMSE)
	}
	if !strings.Contains(r.String(), "Figure 3") {
		t.Fatalf("render missing title")
	}
}

func TestRunFigure4Smoke(t *testing.T) {
	cfg := microConfig()
	r := RunFigure4(cfg)
	if len(r.Queries) != 2 {
		t.Fatalf("queries = %d", len(r.Queries))
	}
	q := r.Queries[0]
	if len(q.CtTau) == 0 || len(q.AdTau) == 0 || len(q.Grid) == 0 {
		t.Fatalf("empty series")
	}
	// ad-ct taus must be identical across the two queries.
	for i := range q.AdTau {
		if q.AdTau[i] != r.Queries[1].AdTau[i] {
			t.Fatalf("ad-ct tau differs across queries")
		}
	}
}

func TestRunFigure5Smoke(t *testing.T) {
	cfg := microConfig()
	r := RunFigure5(cfg, "face-cos")
	if len(r.Points) != cfg.UpdateOps {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.MSE < 0 || p.MAPE < 0 {
			t.Fatalf("negative error")
		}
	}
}

func TestRunAblationRunnersSmoke(t *testing.T) {
	cfg := microConfig()
	if got := RunTauTransformAblation(cfg); len(got.Rows) != 2 {
		t.Fatalf("tau ablation rows = %d", len(got.Rows))
	}
	if got := RunLossAblation(cfg); len(got.Rows) != 3 {
		t.Fatalf("loss ablation rows = %d", len(got.Rows))
	}
	if got := RunTrainingModeAblation(cfg); len(got.Rows) != 3 {
		t.Fatalf("training ablation rows = %d", len(got.Rows))
	}
}
