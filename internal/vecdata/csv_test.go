package vecdata

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"selnet/internal/distance"
)

func TestReadCSVBasic(t *testing.T) {
	in := "1.5,2.5,3.5\n# comment\n\n-1,0,4e-2\n"
	db, err := ReadCSV(strings.NewReader(in), "test", distance.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 2 || db.Dim != 3 {
		t.Fatalf("size %d dim %d", db.Size(), db.Dim)
	}
	if db.Vecs[1][2] != 0.04 {
		t.Fatalf("scientific notation not parsed: %v", db.Vecs[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"ragged": "1,2\n1,2,3\n",
		"badnum": "1,banana\n",
		"empty":  "# only comments\n\n",
	} {
		if _, err := ReadCSV(strings.NewReader(in), "x", distance.Euclidean); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := smallDB(90, 25, 4, distance.Cosine)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, db.Name, db.Dist)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != db.Size() || got.Dim != db.Dim {
		t.Fatalf("shape mismatch")
	}
	for i := range db.Vecs {
		for j := range db.Vecs[i] {
			if got.Vecs[i][j] != db.Vecs[i][j] {
				t.Fatalf("value (%d,%d) changed: %v vs %v", i, j, got.Vecs[i][j], db.Vecs[i][j])
			}
		}
	}
}

func TestReadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vecs.csv")
	db := smallDB(91, 10, 3, distance.Euclidean)
	f, err := openForWrite(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(f, db); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path, distance.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 10 {
		t.Fatalf("size %d", got.Size())
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv"), distance.Euclidean); err == nil {
		t.Fatalf("expected error for missing file")
	}
}
