package vecdata

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"selnet/internal/distance"
)

// databaseBlob is the gob wire form of a Database.
type databaseBlob struct {
	Name string
	Dist int
	Vecs [][]float64
}

// SaveDatabase writes the database to w in gob format.
func SaveDatabase(w io.Writer, db *Database) error {
	blob := databaseBlob{Name: db.Name, Dist: int(db.Dist), Vecs: db.Vecs}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("vecdata: encode database: %w", err)
	}
	return nil
}

// LoadDatabase reads a database written by SaveDatabase.
func LoadDatabase(r io.Reader) (*Database, error) {
	var blob databaseBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("vecdata: decode database: %w", err)
	}
	if len(blob.Vecs) == 0 {
		return nil, fmt.Errorf("vecdata: decoded database is empty")
	}
	return NewDatabase(blob.Name, distance.Func(blob.Dist), blob.Vecs), nil
}

// SplitWorkload bundles the labelled query splits of one experiment.
type SplitWorkload struct {
	Setting string
	TMax    float64
	Train   []Query
	Valid   []Query
	Test    []Query
}

// SaveSplitWorkload writes the workload splits to w in gob format.
func SaveSplitWorkload(w io.Writer, s *SplitWorkload) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("vecdata: encode workload: %w", err)
	}
	return nil
}

// LoadSplitWorkload reads a workload written by SaveSplitWorkload.
func LoadSplitWorkload(r io.Reader) (*SplitWorkload, error) {
	var s SplitWorkload
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("vecdata: decode workload: %w", err)
	}
	return &s, nil
}

// SaveDatabaseFile writes the database to path.
func SaveDatabaseFile(path string, db *Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveDatabase(f, db); err != nil {
		return err
	}
	return f.Close()
}

// LoadDatabaseFile reads a database from path.
func LoadDatabaseFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDatabase(f)
}

// SaveSplitWorkloadFile writes the workload to path.
func SaveSplitWorkloadFile(path string, s *SplitWorkload) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveSplitWorkload(f, s); err != nil {
		return err
	}
	return f.Close()
}

// LoadSplitWorkloadFile reads a workload from path.
func LoadSplitWorkloadFile(path string) (*SplitWorkload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSplitWorkload(f)
}
