package vecdata

import (
	"math/rand"

	"selnet/internal/distance"
)

// This file holds the synthetic stand-ins for the paper's three embedding
// datasets (Sec. 7.1). We cannot ship fasttext/MS-Celeb/YouTube-Faces
// embeddings, so each generator produces a Gaussian-mixture point cloud
// whose relevant statistical structure matches the original:
//
//   - fasttext: unnormalized word vectors with cluster structure and
//     anisotropic spread, so both cosine and Euclidean workloads are
//     meaningful and selectivity varies by orders of magnitude.
//   - face: unit-normalized embeddings with many tight clusters
//     (images of the same identity are near-duplicates on the sphere).
//   - YouTube: unit-normalized vectors with high ambient but low intrinsic
//     dimension (the generator embeds a low-dimensional mixture through a
//     fixed random linear map before normalizing).
//
// The estimators only ever observe (x, t, selectivity) triples, so the
// behaviours the paper measures — consistency, variance across queries,
// curse of dimensionality — depend on this structure, not on the
// provenance of the vectors. Sizes and dimensions are parameters; the
// defaults used by the experiment harness are scaled down from the paper
// (documented in DESIGN.md and EXPERIMENTS.md).

// MixtureSpec configures a Gaussian-mixture generator.
type MixtureSpec struct {
	N          int     // number of vectors
	Dim        int     // ambient dimension
	Clusters   int     // mixture components
	Spread     float64 // cluster center scale
	Sigma      float64 // base within-cluster standard deviation
	Anisotropy float64 // per-dimension sigma multiplier range (1 = isotropic)
	Intrinsic  int     // if >0, generate in this dim then map up to Dim
	Normalize  bool    // project onto the unit sphere
}

// GenerateMixture produces vectors according to spec, deterministically
// for a given rng state.
func GenerateMixture(rng *rand.Rand, spec MixtureSpec) [][]float64 {
	genDim := spec.Dim
	if spec.Intrinsic > 0 && spec.Intrinsic < spec.Dim {
		genDim = spec.Intrinsic
	}
	// Cluster centers and per-cluster anisotropic scales.
	centers := make([][]float64, spec.Clusters)
	scales := make([][]float64, spec.Clusters)
	for c := range centers {
		centers[c] = make([]float64, genDim)
		scales[c] = make([]float64, genDim)
		for j := 0; j < genDim; j++ {
			centers[c][j] = rng.NormFloat64() * spec.Spread
			a := 1.0
			if spec.Anisotropy > 1 {
				a = 1 + rng.Float64()*(spec.Anisotropy-1)
			}
			scales[c][j] = spec.Sigma * a
		}
	}
	// Unequal cluster weights: a few dominant clusters plus a tail, which
	// produces the large selectivity variance the paper highlights.
	weights := make([]float64, spec.Clusters)
	var wsum float64
	for c := range weights {
		weights[c] = SampleGamma(rng, 1.2)
		wsum += weights[c]
	}
	cum := make([]float64, spec.Clusters)
	acc := 0.0
	for c := range weights {
		acc += weights[c] / wsum
		cum[c] = acc
	}

	// Optional random up-projection for low intrinsic dimension.
	var proj [][]float64
	if genDim != spec.Dim {
		proj = make([][]float64, genDim)
		for i := range proj {
			proj[i] = make([]float64, spec.Dim)
			for j := range proj[i] {
				proj[i][j] = rng.NormFloat64()
			}
		}
	}

	vecs := make([][]float64, spec.N)
	for i := range vecs {
		u := rng.Float64()
		c := 0
		for c < spec.Clusters-1 && u > cum[c] {
			c++
		}
		v := make([]float64, genDim)
		for j := 0; j < genDim; j++ {
			v[j] = centers[c][j] + rng.NormFloat64()*scales[c][j]
		}
		if proj != nil {
			up := make([]float64, spec.Dim)
			for a, va := range v {
				row := proj[a]
				for b := range up {
					up[b] += va * row[b]
				}
			}
			v = up
		}
		if spec.Normalize {
			v = distance.Normalize(v)
		}
		vecs[i] = v
	}
	return vecs
}

// SyntheticFasttext builds the unnormalized word-embedding stand-in.
func SyntheticFasttext(rng *rand.Rand, n, dim int, dist distance.Func) *Database {
	vecs := GenerateMixture(rng, MixtureSpec{
		N: n, Dim: dim, Clusters: 24,
		Spread: 1.0, Sigma: 0.45, Anisotropy: 3,
	})
	name := "fasttext-" + dist.String()
	return NewDatabase(name, dist, vecs)
}

// SyntheticFace builds the normalized face-embedding stand-in (cosine).
func SyntheticFace(rng *rand.Rand, n, dim int) *Database {
	vecs := GenerateMixture(rng, MixtureSpec{
		N: n, Dim: dim, Clusters: 48,
		Spread: 1.0, Sigma: 0.18, Anisotropy: 1.5, Normalize: true,
	})
	return NewDatabase("face-cos", distance.Cosine, vecs)
}

// SyntheticYouTube builds the normalized high-dimensional/low-intrinsic
// stand-in (cosine).
func SyntheticYouTube(rng *rand.Rand, n, dim int) *Database {
	intrinsic := dim / 8
	if intrinsic < 4 {
		intrinsic = 4
	}
	vecs := GenerateMixture(rng, MixtureSpec{
		N: n, Dim: dim, Clusters: 16,
		Spread: 1.0, Sigma: 0.35, Anisotropy: 2, Intrinsic: intrinsic, Normalize: true,
	})
	return NewDatabase("youtube-cos", distance.Cosine, vecs)
}

// SampleLike draws a fresh vector resembling db's distribution by jittering
// a random existing vector; used to generate insertions for update streams.
func SampleLike(rng *rand.Rand, db *Database, jitter float64) []float64 {
	base := db.Vecs[rng.Intn(db.Size())]
	v := make([]float64, len(base))
	for i, b := range base {
		v[i] = b + rng.NormFloat64()*jitter
	}
	if db.Dist == distance.Cosine {
		// Keep normalized datasets on the sphere.
		v = distance.Normalize(v)
	}
	return v
}
