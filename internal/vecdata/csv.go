package vecdata

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"selnet/internal/distance"
)

// ReadCSV parses a vector dataset from r: one vector per line,
// comma-separated float64 components, all lines the same width. Blank
// lines and lines starting with '#' are skipped. This lets the estimators
// run on real embedding dumps (e.g. fasttext .vec files converted to CSV)
// instead of the synthetic stand-ins.
func ReadCSV(r io.Reader, name string, dist distance.Func) (*Database, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var vecs [][]float64
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		v := make([]float64, len(parts))
		for i, p := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("vecdata: line %d component %d: %w", line, i+1, err)
			}
			v[i] = f
		}
		if len(vecs) > 0 && len(v) != len(vecs[0]) {
			return nil, fmt.Errorf("vecdata: line %d has %d components, expected %d", line, len(v), len(vecs[0]))
		}
		vecs = append(vecs, v)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("vecdata: read csv: %w", err)
	}
	if len(vecs) == 0 {
		return nil, fmt.Errorf("vecdata: csv contains no vectors")
	}
	return NewDatabase(name, dist, vecs), nil
}

// ReadCSVFile reads a CSV vector file from disk.
func ReadCSVFile(path string, dist distance.Func) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, strings.TrimSuffix(path, ".csv"), dist)
}

// WriteCSV writes the database in the format ReadCSV accepts.
func WriteCSV(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	for _, v := range db.Vecs {
		for i, x := range v {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(x, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// openForWrite creates the file at path for writing (extracted so tests
// can exercise the file round trip without duplicating os boilerplate).
func openForWrite(path string) (*os.File, error) { return os.Create(path) }
