// Package vecdata provides the data substrate for the reproduction: the
// vector database abstraction, synthetic stand-ins for the paper's three
// embedding datasets (fasttext, face, YouTube), exact ground-truth
// selectivity computation, the paper's workload generators (geometric
// selectivity sequences following Mattig et al., and Beta(3, 2.5)
// thresholds from Sec. 7.9), query splits, and insert/delete update
// streams for the incremental-learning experiments.
package vecdata

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"selnet/internal/distance"
	"selnet/internal/tensor"
)

// Database is an in-memory collection of equal-dimension vectors under a
// fixed distance function.
type Database struct {
	Name string
	Dist distance.Func
	Dim  int
	Vecs [][]float64
}

// NewDatabase wraps vecs; all vectors must share the same dimension.
func NewDatabase(name string, dist distance.Func, vecs [][]float64) *Database {
	if len(vecs) == 0 {
		panic("vecdata: empty database")
	}
	d := len(vecs[0])
	for i, v := range vecs {
		if len(v) != d {
			panic(fmt.Sprintf("vecdata: vector %d has dim %d, want %d", i, len(v), d))
		}
	}
	return &Database{Name: name, Dist: dist, Dim: d, Vecs: vecs}
}

// Size returns the number of vectors.
func (db *Database) Size() int { return len(db.Vecs) }

// Selectivity returns the exact number of database vectors within distance
// t of x — the ground-truth value function f(x, t, D) of Definition 1.
func (db *Database) Selectivity(x []float64, t float64) float64 {
	var count int
	for _, o := range db.Vecs {
		if db.Dist.Distance(x, o) <= t {
			count++
		}
	}
	return float64(count)
}

// SimilaritySelectivity returns the exact number of database vectors with
// cosine similarity at least s to x — the similarity-function variant of
// Definition 1 (sim >= s is equivalent to cosdist <= 1-s). It panics on
// non-cosine databases, where "similarity" has no canonical meaning.
func (db *Database) SimilaritySelectivity(x []float64, s float64) float64 {
	if db.Dist != distance.Cosine {
		panic("vecdata: SimilaritySelectivity requires a cosine database")
	}
	return db.Selectivity(x, 1-s)
}

// DistancesTo returns the distances from x to every database vector.
func (db *Database) DistancesTo(x []float64) []float64 {
	out := make([]float64, len(db.Vecs))
	parallelFor(len(db.Vecs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = db.Dist.Distance(x, db.Vecs[i])
		}
	})
	return out
}

// Insert appends vectors to the database.
func (db *Database) Insert(vecs ...[]float64) {
	for _, v := range vecs {
		if len(v) != db.Dim {
			panic(fmt.Sprintf("vecdata: insert dim %d, want %d", len(v), db.Dim))
		}
	}
	db.Vecs = append(db.Vecs, vecs...)
}

// Delete removes the vectors at the given indices (duplicates ignored).
func (db *Database) Delete(indices ...int) {
	if len(indices) == 0 {
		return
	}
	drop := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(db.Vecs) {
			panic(fmt.Sprintf("vecdata: delete index %d out of range %d", i, len(db.Vecs)))
		}
		drop[i] = true
	}
	kept := db.Vecs[:0]
	for i, v := range db.Vecs {
		if !drop[i] {
			kept = append(kept, v)
		}
	}
	db.Vecs = kept
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	vecs := make([][]float64, len(db.Vecs))
	for i, v := range db.Vecs {
		vecs[i] = append([]float64(nil), v...)
	}
	return &Database{Name: db.Name, Dist: db.Dist, Dim: db.Dim, Vecs: vecs}
}

// parallelFor splits [0, n) into GOMAXPROCS chunks. On a single-core box it
// degenerates to a plain loop with no goroutine overhead.
func parallelFor(n int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < 256 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ----------------------------------------------------------------------------
// Queries and workloads

// Query is one labelled training/evaluation example.
type Query struct {
	X []float64 // query vector
	T float64   // distance threshold
	Y float64   // exact selectivity f(X, T, D)
}

// Workload is a labelled query set plus the t_max the estimators must
// support.
type Workload struct {
	Queries []Query
	TMax    float64
}

// Matrices converts the workload to (X, t, y) dense matrices for batch
// model evaluation: X is n x dim, t and y are n x 1.
func Matrices(queries []Query) (x, t, y *tensor.Dense) {
	if len(queries) == 0 {
		return tensor.New(0, 0), tensor.New(0, 1), tensor.New(0, 1)
	}
	d := len(queries[0].X)
	x = tensor.New(len(queries), d)
	t = tensor.New(len(queries), 1)
	y = tensor.New(len(queries), 1)
	for i, q := range queries {
		copy(x.Row(i), q.X)
		t.Set(i, 0, q.T)
		y.Set(i, 0, q.Y)
	}
	return x, t, y
}

// GeometricWorkload generates the paper's default workload (Appendix B.1):
// numQueries query vectors are drawn from the database; for each, w
// selectivity values form a geometric sequence in [1, |D|/100] and are
// converted to thresholds via the query's sorted distance profile. Labels
// are exact.
func GeometricWorkload(rng *rand.Rand, db *Database, numQueries, w int) *Workload {
	if numQueries > db.Size() {
		numQueries = db.Size()
	}
	maxSel := float64(db.Size()) / 100
	if maxSel < 2 {
		maxSel = 2
	}
	ratio := math.Pow(maxSel, 1/float64(w-1))
	queryIdx := rng.Perm(db.Size())[:numQueries]
	var wl Workload
	for _, qi := range queryIdx {
		x := db.Vecs[qi]
		dists := db.DistancesTo(x)
		sort.Float64s(dists)
		sel := 1.0
		for j := 0; j < w; j++ {
			k := int(math.Round(sel))
			if k < 1 {
				k = 1
			}
			if k > len(dists) {
				k = len(dists)
			}
			t := dists[k-1] // k-th smallest distance: exactly >= k objects within t
			y := countWithin(dists, t)
			wl.Queries = append(wl.Queries, Query{X: x, T: t, Y: y})
			if t > wl.TMax {
				wl.TMax = t
			}
			sel *= ratio
		}
	}
	// Small headroom so estimators can extrapolate slightly beyond the
	// largest training threshold.
	wl.TMax *= 1.05
	return &wl
}

// BackgroundWorkload augments training with out-of-distribution queries:
// numQueries vectors produced by gen (e.g. uniform noise) each labelled at
// the given fractions of tMax. Applications that probe sparse regions —
// density estimation, outlier detection — need the training distribution
// to cover them, since database-sampled queries rarely do.
func BackgroundWorkload(rng *rand.Rand, db *Database, numQueries int, fractions []float64, tMax float64,
	gen func(rng *rand.Rand) []float64) []Query {
	var out []Query
	for i := 0; i < numQueries; i++ {
		x := gen(rng)
		dists := db.DistancesTo(x)
		sort.Float64s(dists)
		for _, f := range fractions {
			t := tMax * f
			out = append(out, Query{X: x, T: t, Y: countWithin(dists, t)})
		}
	}
	return out
}

// BetaThresholdWorkload generates the Sec. 7.9 workload: queries are drawn
// from the database, and thresholds are sampled from Beta(alpha, beta)
// scaled by tScale. Labels are exact.
func BetaThresholdWorkload(rng *rand.Rand, db *Database, numQueries, perQuery int, alpha, beta, tScale float64) *Workload {
	if numQueries > db.Size() {
		numQueries = db.Size()
	}
	queryIdx := rng.Perm(db.Size())[:numQueries]
	var wl Workload
	for _, qi := range queryIdx {
		x := db.Vecs[qi]
		dists := db.DistancesTo(x)
		sort.Float64s(dists)
		for j := 0; j < perQuery; j++ {
			t := SampleBeta(rng, alpha, beta) * tScale
			y := countWithin(dists, t)
			wl.Queries = append(wl.Queries, Query{X: x, T: t, Y: y})
			if t > wl.TMax {
				wl.TMax = t
			}
		}
	}
	wl.TMax *= 1.05
	return &wl
}

// countWithin counts values <= t in the sorted slice dists.
func countWithin(dists []float64, t float64) float64 {
	return float64(sort.SearchFloat64s(dists, math.Nextafter(t, math.Inf(1))))
}

// Split divides the workload 80:10:10 into train/validation/test *by
// query vector* (Appendix B.1): all thresholds of one query land in the
// same split, so test queries are never seen in training.
func (wl *Workload) Split(rng *rand.Rand) (train, valid, test []Query) {
	// Group queries by their vector identity (first element address is not
	// stable across copies, so group by value key).
	type group struct {
		key     string
		queries []Query
	}
	byKey := map[string]*group{}
	var order []*group
	for _, q := range wl.Queries {
		k := vecKey(q.X)
		g, ok := byKey[k]
		if !ok {
			g = &group{key: k}
			byKey[k] = g
			order = append(order, g)
		}
		g.queries = append(g.queries, q)
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	nTrain := len(order) * 8 / 10
	nValid := len(order) / 10
	for i, g := range order {
		switch {
		case i < nTrain:
			train = append(train, g.queries...)
		case i < nTrain+nValid:
			valid = append(valid, g.queries...)
		default:
			test = append(test, g.queries...)
		}
	}
	return train, valid, test
}

func vecKey(v []float64) string {
	// Hash-free key: the first few coordinates at full precision identify a
	// query vector with overwhelming probability in our synthetic data.
	n := len(v)
	if n > 4 {
		n = 4
	}
	s := ""
	for i := 0; i < n; i++ {
		s += fmt.Sprintf("%x|", math.Float64bits(v[i]))
	}
	return s
}

// Relabel recomputes the exact selectivity of every query against db,
// used after database updates (Sec. 5.4).
func Relabel(queries []Query, db *Database) {
	parallelFor(len(queries), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			queries[i].Y = db.Selectivity(queries[i].X, queries[i].T)
		}
	})
}

// ----------------------------------------------------------------------------
// Beta / Gamma sampling (stdlib math/rand has no beta distribution)

// SampleGamma draws from Gamma(shape, 1) using Marsaglia–Tsang, valid for
// any shape > 0.
func SampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic("vecdata: gamma shape must be positive")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		return SampleGamma(rng, shape+1) * math.Pow(rng.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// SampleBeta draws from Beta(alpha, beta) via two gamma variates.
func SampleBeta(rng *rand.Rand, alpha, beta float64) float64 {
	a := SampleGamma(rng, alpha)
	b := SampleGamma(rng, beta)
	return a / (a + b)
}

// ----------------------------------------------------------------------------
// Update streams (Sec. 7.6)

// UpdateOp is one insertion or deletion batch in an update stream.
type UpdateOp struct {
	Insert [][]float64 // vectors to insert (nil for deletions)
	Delete int         // number of random vectors to delete (0 for insertions)
}

// UpdateStream generates numOps operations, each inserting or deleting
// batchSize records with equal probability, matching the Sec. 7.6 setup
// (100 operations of 5 records each). Inserted vectors are drawn by gen.
func UpdateStream(rng *rand.Rand, numOps, batchSize int, gen func(rng *rand.Rand) []float64) []UpdateOp {
	ops := make([]UpdateOp, numOps)
	for i := range ops {
		if rng.Intn(2) == 0 {
			vecs := make([][]float64, batchSize)
			for j := range vecs {
				vecs[j] = gen(rng)
			}
			ops[i] = UpdateOp{Insert: vecs}
		} else {
			ops[i] = UpdateOp{Delete: batchSize}
		}
	}
	return ops
}

// Apply executes the operation against db, deleting uniformly random rows
// for deletion ops.
func (op UpdateOp) Apply(rng *rand.Rand, db *Database) {
	if len(op.Insert) > 0 {
		db.Insert(op.Insert...)
		return
	}
	n := op.Delete
	if n > db.Size()-1 {
		n = db.Size() - 1
	}
	idx := rng.Perm(db.Size())[:n]
	db.Delete(idx...)
}
