package vecdata

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"selnet/internal/distance"
)

func TestDatabaseSaveLoadRoundTrip(t *testing.T) {
	db := smallDB(70, 50, 4, distance.Cosine)
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != db.Name || got.Dist != db.Dist || got.Dim != db.Dim || got.Size() != db.Size() {
		t.Fatalf("metadata mismatch")
	}
	for i := range db.Vecs {
		for j := range db.Vecs[i] {
			if got.Vecs[i][j] != db.Vecs[i][j] {
				t.Fatalf("vector %d differs", i)
			}
		}
	}
}

func TestLoadDatabaseRejectsGarbage(t *testing.T) {
	if _, err := LoadDatabase(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatalf("expected error")
	}
}

func TestSplitWorkloadRoundTrip(t *testing.T) {
	db := smallDB(71, 200, 3, distance.Euclidean)
	rng := rand.New(rand.NewSource(72))
	wl := GeometricWorkload(rng, db, 10, 4)
	train, valid, test := wl.Split(rng)
	s := &SplitWorkload{Setting: "test", TMax: wl.TMax, Train: train, Valid: valid, Test: test}
	var buf bytes.Buffer
	if err := SaveSplitWorkload(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSplitWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Setting != "test" || got.TMax != wl.TMax {
		t.Fatalf("metadata mismatch")
	}
	if len(got.Train) != len(train) || len(got.Valid) != len(valid) || len(got.Test) != len(test) {
		t.Fatalf("split sizes mismatch")
	}
	if got.Train[0].Y != train[0].Y || got.Train[0].T != train[0].T {
		t.Fatalf("query values mismatch")
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	db := smallDB(73, 30, 3, distance.Euclidean)
	dbPath := filepath.Join(dir, "db.gob")
	if err := SaveDatabaseFile(dbPath, db); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDatabaseFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 30 {
		t.Fatalf("size %d", got.Size())
	}
	rng := rand.New(rand.NewSource(74))
	wl := GeometricWorkload(rng, db, 5, 3)
	train, valid, test := wl.Split(rng)
	wlPath := filepath.Join(dir, "wl.gob")
	s := &SplitWorkload{Setting: "t", TMax: wl.TMax, Train: train, Valid: valid, Test: test}
	if err := SaveSplitWorkloadFile(wlPath, s); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadSplitWorkloadFile(wlPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Train) != len(train) {
		t.Fatalf("train size mismatch")
	}
	if _, err := LoadDatabaseFile(filepath.Join(dir, "missing.gob")); err == nil {
		t.Fatalf("expected error for missing file")
	}
}
