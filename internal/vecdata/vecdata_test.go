package vecdata

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/distance"
)

func smallDB(seed int64, n, dim int, dist distance.Func) *Database {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	return NewDatabase("test", dist, vecs)
}

func TestSelectivityMatchesNaive(t *testing.T) {
	db := smallDB(1, 200, 5, distance.Euclidean)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		x := db.Vecs[rng.Intn(db.Size())]
		threshold := rng.Float64() * 4
		var want float64
		for _, o := range db.Vecs {
			if distance.L2(x, o) <= threshold {
				want++
			}
		}
		if got := db.Selectivity(x, threshold); got != want {
			t.Fatalf("Selectivity = %v, want %v", got, want)
		}
	}
}

func TestSelectivityMonotoneInT(t *testing.T) {
	db := smallDB(3, 100, 4, distance.Euclidean)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := db.Vecs[rng.Intn(db.Size())]
		t1 := rng.Float64() * 3
		t2 := t1 + rng.Float64()*2
		return db.Selectivity(x, t1) <= db.Selectivity(x, t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistancesTo(t *testing.T) {
	db := smallDB(4, 300, 3, distance.Cosine)
	x := db.Vecs[0]
	dists := db.DistancesTo(x)
	if len(dists) != db.Size() {
		t.Fatalf("got %d distances", len(dists))
	}
	if dists[0] > 1e-12 {
		t.Fatalf("self distance = %v", dists[0])
	}
	for i, d := range dists {
		if want := distance.CosineDistance(x, db.Vecs[i]); math.Abs(d-want) > 1e-12 {
			t.Fatalf("distance %d = %v, want %v", i, d, want)
		}
	}
}

func TestInsertDelete(t *testing.T) {
	db := smallDB(5, 10, 3, distance.Euclidean)
	v := []float64{1, 2, 3}
	db.Insert(v)
	if db.Size() != 11 {
		t.Fatalf("size after insert = %d", db.Size())
	}
	db.Delete(0, 1)
	if db.Size() != 9 {
		t.Fatalf("size after delete = %d", db.Size())
	}
	db.Delete(0, 0) // duplicate indices remove one row
	if db.Size() != 8 {
		t.Fatalf("size after dup delete = %d", db.Size())
	}
}

func TestInsertDimMismatchPanics(t *testing.T) {
	db := smallDB(6, 5, 3, distance.Euclidean)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	db.Insert([]float64{1, 2})
}

func TestCloneIsDeep(t *testing.T) {
	db := smallDB(7, 5, 2, distance.Euclidean)
	c := db.Clone()
	c.Vecs[0][0] = 999
	if db.Vecs[0][0] == 999 {
		t.Fatalf("Clone shares vector storage")
	}
	c.Delete(0)
	if db.Size() != 5 {
		t.Fatalf("Clone shares slice")
	}
}

func TestGeometricWorkloadLabelsExact(t *testing.T) {
	db := smallDB(8, 400, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(9))
	wl := GeometricWorkload(rng, db, 10, 8)
	if len(wl.Queries) != 80 {
		t.Fatalf("queries = %d, want 80", len(wl.Queries))
	}
	for _, q := range wl.Queries {
		if got := db.Selectivity(q.X, q.T); got != q.Y {
			t.Fatalf("label %v != exact %v", q.Y, got)
		}
		if q.Y < 1 {
			t.Fatalf("selectivity below 1: %v", q.Y)
		}
		if q.T > wl.TMax {
			t.Fatalf("threshold %v exceeds TMax %v", q.T, wl.TMax)
		}
	}
}

func TestGeometricWorkloadSpansSelectivityRange(t *testing.T) {
	db := smallDB(10, 1000, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(11))
	wl := GeometricWorkload(rng, db, 5, 10)
	var minY, maxY = math.Inf(1), math.Inf(-1)
	for _, q := range wl.Queries {
		minY = math.Min(minY, q.Y)
		maxY = math.Max(maxY, q.Y)
	}
	if minY > 2 {
		t.Fatalf("min selectivity %v, want near 1", minY)
	}
	// Geometric sequence tops out near |D|/100 = 10.
	if maxY < 8 {
		t.Fatalf("max selectivity %v, want near 10", maxY)
	}
}

func TestBetaThresholdWorkload(t *testing.T) {
	db := smallDB(12, 300, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(13))
	wl := BetaThresholdWorkload(rng, db, 8, 5, 3, 2.5, 2.0)
	if len(wl.Queries) != 40 {
		t.Fatalf("queries = %d", len(wl.Queries))
	}
	for _, q := range wl.Queries {
		if q.T < 0 || q.T > 2.0 {
			t.Fatalf("threshold %v outside [0, 2]", q.T)
		}
		if got := db.Selectivity(q.X, q.T); got != q.Y {
			t.Fatalf("label %v != exact %v", q.Y, got)
		}
	}
}

func TestSplitProportionsAndDisjointness(t *testing.T) {
	db := smallDB(14, 300, 3, distance.Euclidean)
	rng := rand.New(rand.NewSource(15))
	wl := GeometricWorkload(rng, db, 20, 6)
	train, valid, test := wl.Split(rng)
	if len(train)+len(valid)+len(test) != len(wl.Queries) {
		t.Fatalf("split loses queries: %d+%d+%d != %d", len(train), len(valid), len(test), len(wl.Queries))
	}
	if len(train) != 16*6 || len(valid) != 2*6 || len(test) != 2*6 {
		t.Fatalf("split sizes %d/%d/%d", len(train), len(valid), len(test))
	}
	// No query vector appears in two splits.
	seen := map[string]string{}
	check := func(qs []Query, label string) {
		for _, q := range qs {
			k := vecKey(q.X)
			if prev, ok := seen[k]; ok && prev != label {
				t.Fatalf("query vector in both %s and %s", prev, label)
			}
			seen[k] = label
		}
	}
	check(train, "train")
	check(valid, "valid")
	check(test, "test")
}

func TestMatrices(t *testing.T) {
	qs := []Query{
		{X: []float64{1, 2}, T: 0.5, Y: 3},
		{X: []float64{4, 5}, T: 0.7, Y: 9},
	}
	x, tt, y := Matrices(qs)
	if x.Rows() != 2 || x.Cols() != 2 || tt.Rows() != 2 || y.Rows() != 2 {
		t.Fatalf("bad shapes")
	}
	if x.At(1, 0) != 4 || tt.At(0, 0) != 0.5 || y.At(1, 0) != 9 {
		t.Fatalf("bad values")
	}
}

func TestRelabel(t *testing.T) {
	db := smallDB(16, 100, 3, distance.Euclidean)
	rng := rand.New(rand.NewSource(17))
	wl := GeometricWorkload(rng, db, 5, 4)
	qs := append([]Query(nil), wl.Queries...)
	// Corrupt labels, then relabel against the same db.
	for i := range qs {
		qs[i].Y = -1
	}
	Relabel(qs, db)
	for i, q := range qs {
		if q.Y != wl.Queries[i].Y {
			t.Fatalf("relabel mismatch at %d", i)
		}
	}
}

func TestSampleGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	const n = 20000
	for _, shape := range []float64{0.5, 1, 3} {
		var sum float64
		for i := 0; i < n; i++ {
			v := SampleGamma(rng, shape)
			if v < 0 {
				t.Fatalf("negative gamma sample")
			}
			sum += v
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Fatalf("gamma(%v) mean = %v", shape, mean)
		}
	}
}

func TestSampleBetaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const n = 20000
	alpha, beta := 3.0, 2.5
	var sum float64
	for i := 0; i < n; i++ {
		v := SampleBeta(rng, alpha, beta)
		if v < 0 || v > 1 {
			t.Fatalf("beta sample %v outside [0,1]", v)
		}
		sum += v
	}
	want := alpha / (alpha + beta)
	if math.Abs(sum/n-want) > 0.02 {
		t.Fatalf("beta mean = %v, want %v", sum/n, want)
	}
}

func TestUpdateStreamAndApply(t *testing.T) {
	db := smallDB(20, 50, 3, distance.Euclidean)
	rng := rand.New(rand.NewSource(21))
	ops := UpdateStream(rng, 20, 5, func(r *rand.Rand) []float64 {
		return []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	})
	if len(ops) != 20 {
		t.Fatalf("ops = %d", len(ops))
	}
	var inserts, deletes int
	size := db.Size()
	for _, op := range ops {
		op.Apply(rng, db)
		if len(op.Insert) > 0 {
			inserts++
			size += len(op.Insert)
		} else {
			deletes++
			size -= op.Delete
		}
		if db.Size() != size {
			t.Fatalf("size drifted: %d vs %d", db.Size(), size)
		}
	}
	if inserts == 0 || deletes == 0 {
		t.Fatalf("stream should mix inserts (%d) and deletes (%d)", inserts, deletes)
	}
}

func TestSyntheticGeneratorsShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ft := SyntheticFasttext(rng, 100, 16, distance.Cosine)
	if ft.Size() != 100 || ft.Dim != 16 || ft.Name != "fasttext-cos" {
		t.Fatalf("fasttext: %d %d %s", ft.Size(), ft.Dim, ft.Name)
	}
	face := SyntheticFace(rng, 80, 12)
	if face.Size() != 80 || face.Dist != distance.Cosine {
		t.Fatalf("face bad")
	}
	for _, v := range face.Vecs {
		if math.Abs(distance.Norm(v)-1) > 1e-9 {
			t.Fatalf("face vector not normalized: %v", distance.Norm(v))
		}
	}
	yt := SyntheticYouTube(rng, 60, 64)
	if yt.Size() != 60 || yt.Dim != 64 {
		t.Fatalf("youtube bad")
	}
	for _, v := range yt.Vecs {
		if math.Abs(distance.Norm(v)-1) > 1e-9 {
			t.Fatalf("youtube vector not normalized")
		}
	}
}

func TestSyntheticSelectivityVariance(t *testing.T) {
	// The mixture must produce selectivities spanning orders of magnitude,
	// the property the paper's loss design targets.
	rng := rand.New(rand.NewSource(23))
	db := SyntheticFasttext(rng, 2000, 8, distance.Euclidean)
	wl := GeometricWorkload(rng, db, 20, 10)
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, q := range wl.Queries {
		lo = math.Min(lo, q.Y)
		hi = math.Max(hi, q.Y)
	}
	if hi/lo < 10 {
		t.Fatalf("selectivity range too narrow: [%v, %v]", lo, hi)
	}
}

func TestSimilaritySelectivity(t *testing.T) {
	db := smallDB(25, 200, 4, distance.Cosine)
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 10; trial++ {
		x := db.Vecs[rng.Intn(db.Size())]
		s := rng.Float64()
		if got, want := db.SimilaritySelectivity(x, s), db.Selectivity(x, 1-s); got != want {
			t.Fatalf("SimilaritySelectivity(%v) = %v, want %v", s, got, want)
		}
	}
	// Higher similarity threshold admits fewer matches.
	x := db.Vecs[0]
	if db.SimilaritySelectivity(x, 0.9) > db.SimilaritySelectivity(x, 0.1) {
		t.Fatalf("similarity selectivity must be non-increasing in s")
	}
}

func TestSimilaritySelectivityPanicsOnEuclidean(t *testing.T) {
	db := smallDB(27, 10, 3, distance.Euclidean)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	db.SimilaritySelectivity(db.Vecs[0], 0.5)
}

func TestBackgroundWorkload(t *testing.T) {
	db := smallDB(28, 300, 4, distance.Euclidean)
	rng := rand.New(rand.NewSource(29))
	fractions := []float64{0.25, 0.5, 1}
	qs := BackgroundWorkload(rng, db, 7, fractions, 2.0, func(r *rand.Rand) []float64 {
		return []float64{r.NormFloat64() * 3, r.NormFloat64() * 3, r.NormFloat64() * 3, r.NormFloat64() * 3}
	})
	if len(qs) != 7*3 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if got := db.Selectivity(q.X, q.T); got != q.Y {
			t.Fatalf("background label %v != exact %v", q.Y, got)
		}
		if q.T > 2.0 {
			t.Fatalf("threshold %v exceeds tMax", q.T)
		}
	}
}

func TestSampleLike(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	db := SyntheticFace(rng, 50, 8)
	v := SampleLike(rng, db, 0.1)
	if len(v) != 8 {
		t.Fatalf("dim %d", len(v))
	}
	if math.Abs(distance.Norm(v)-1) > 1e-9 {
		t.Fatalf("SampleLike on cosine dataset must stay normalized")
	}
}
