//go:build !race

package selnet

const raceEnabled = false
