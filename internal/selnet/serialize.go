package selnet

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"selnet/internal/distance"
	"selnet/internal/nn"
	"selnet/internal/partition"
)

// netHeader is the gob wire form of a Net's architecture.
type netHeader struct {
	Dim int
	Cfg Config
}

// Save writes the model (architecture + parameters) to w.
func (n *Net) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(netHeader{Dim: n.dim, Cfg: n.cfg}); err != nil {
		return fmt.Errorf("selnet: encode header: %w", err)
	}
	return nn.SaveParams(w, n.Params())
}

// LoadNet reads a model written by Save. The network is rebuilt from the
// stored configuration and its parameters restored, so estimates match
// the saved model exactly.
func LoadNet(r io.Reader) (*Net, error) {
	// The stream holds two consecutive gob messages (header, parameters).
	// A reader without ReadByte would be wrapped in a buffered reader by
	// each gob.Decoder independently, and the first would over-read past
	// its message; wrapping once here keeps the decoders aligned.
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var h netHeader
	if err := gob.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("selnet: decode header: %w", err)
	}
	// The RNG only seeds initial weights, which LoadParams overwrites.
	n := NewNet(rand.New(rand.NewSource(0)), h.Dim, h.Cfg)
	if err := nn.LoadParams(r, n.Params()); err != nil {
		return nil, err
	}
	return n, nil
}

// partitionedHeader is the gob wire form of a Partitioned model's
// structure: configuration, cluster geometry and member vectors.
type partitionedHeader struct {
	Dim         int
	Dist        int
	Cfg         PartitionedConfig
	Method      int
	Clusters    []partition.Cluster
	Convert     bool
	AllActive   bool
	ClusterVecs [][][]float64
}

// Save writes the partitioned model — shared autoencoder, every local
// head, the partitioning geometry and the cluster member vectors — to w.
func (p *Partitioned) Save(w io.Writer) error {
	h := partitionedHeader{
		Dim:         p.dim,
		Dist:        int(p.dist),
		Cfg:         p.pcfg,
		Method:      int(p.part.Method),
		Clusters:    p.part.Clusters,
		ClusterVecs: p.clusterVecs,
	}
	h.Convert, h.AllActive = p.part.WireFlags()
	if err := gob.NewEncoder(w).Encode(h); err != nil {
		return fmt.Errorf("selnet: encode partitioned header: %w", err)
	}
	return nn.SaveParams(w, p.Params())
}

// LoadPartitioned reads a model written by (*Partitioned).Save.
func LoadPartitioned(r io.Reader) (*Partitioned, error) {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var h partitionedHeader
	if err := gob.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("selnet: decode partitioned header: %w", err)
	}
	rng := rand.New(rand.NewSource(0))
	ae := nn.NewAutoencoder(rng, h.Dim, h.Cfg.Model.AEHidden, h.Cfg.Model.AELatent)
	p := &Partitioned{
		pcfg:        h.Cfg,
		dim:         h.Dim,
		dist:        distance.Func(h.Dist),
		ae:          ae,
		part:        partition.Restore(partition.Method(h.Method), h.Clusters, h.Convert, h.AllActive),
		clusterVecs: h.ClusterVecs,
	}
	for range h.Clusters {
		p.locals = append(p.locals, NewNetWithAE(rng, h.Dim, h.Cfg.Model, ae))
	}
	if err := nn.LoadParams(r, p.Params()); err != nil {
		return nil, err
	}
	return p, nil
}

// SaveFile writes the model to path.
func (n *Net) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadNetFile reads a model from path.
func LoadNetFile(path string) (*Net, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadNet(f)
}
