package selnet

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"selnet/internal/distance"
	"selnet/internal/nn"
	"selnet/internal/partition"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// netHeader is the gob wire form of a Net's architecture.
type netHeader struct {
	Dim int
	Cfg Config
}

// Save writes the model (architecture + parameters) to w.
func (n *Net) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(netHeader{Dim: n.dim, Cfg: n.cfg}); err != nil {
		return fmt.Errorf("selnet: encode header: %w", err)
	}
	return nn.SaveParams(w, n.Params())
}

// LoadNet reads a model written by Save. The network is rebuilt from the
// stored configuration and its parameters restored, so estimates match
// the saved model exactly.
func LoadNet(r io.Reader) (*Net, error) {
	// The stream holds two consecutive gob messages (header, parameters).
	// A reader without ReadByte would be wrapped in a buffered reader by
	// each gob.Decoder independently, and the first would over-read past
	// its message; wrapping once here keeps the decoders aligned.
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var h netHeader
	if err := gob.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("selnet: decode header: %w", err)
	}
	// The RNG only seeds initial weights, which LoadParams overwrites.
	n := NewNet(rand.New(rand.NewSource(0)), h.Dim, h.Cfg)
	if err := nn.LoadParams(r, n.Params()); err != nil {
		return nil, err
	}
	return n, nil
}

// partitionedHeader is the gob wire form of a Partitioned model's
// structure: configuration, cluster geometry and member vectors.
type partitionedHeader struct {
	Dim         int
	Dist        int
	Cfg         PartitionedConfig
	Method      int
	Clusters    []partition.Cluster
	Convert     bool
	AllActive   bool
	ClusterVecs [][][]float64
}

// Save writes the partitioned model — shared autoencoder, every local
// head, the partitioning geometry and the cluster member vectors — to w.
func (p *Partitioned) Save(w io.Writer) error {
	h := partitionedHeader{
		Dim:         p.dim,
		Dist:        int(p.dist),
		Cfg:         p.pcfg,
		Method:      int(p.part.Method),
		Clusters:    p.part.Clusters,
		ClusterVecs: p.clusterVecs,
	}
	h.Convert, h.AllActive = p.part.WireFlags()
	if err := gob.NewEncoder(w).Encode(h); err != nil {
		return fmt.Errorf("selnet: encode partitioned header: %w", err)
	}
	return nn.SaveParams(w, p.Params())
}

// LoadPartitioned reads a model written by (*Partitioned).Save.
func LoadPartitioned(r io.Reader) (*Partitioned, error) {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var h partitionedHeader
	if err := gob.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("selnet: decode partitioned header: %w", err)
	}
	rng := rand.New(rand.NewSource(0))
	ae := nn.NewAutoencoder(rng, h.Dim, h.Cfg.Model.AEHidden, h.Cfg.Model.AELatent)
	p := &Partitioned{
		pcfg:        h.Cfg,
		dim:         h.Dim,
		dist:        distance.Func(h.Dist),
		ae:          ae,
		part:        partition.Restore(partition.Method(h.Method), h.Clusters, h.Convert, h.AllActive),
		clusterVecs: h.ClusterVecs,
	}
	for range h.Clusters {
		p.locals = append(p.locals, NewNetWithAE(rng, h.Dim, h.Cfg.Model, ae))
	}
	if err := nn.LoadParams(r, p.Params()); err != nil {
		return nil, err
	}
	return p, nil
}

// SaveFile writes the model to path.
func (n *Net) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadNetFile reads a model from path.
func LoadNetFile(path string) (*Net, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadNet(f)
}

// ----------------------------------------------------------------------------
// Kind-tagged model container

// Model is the common surface of the serializable model types (*Net and
// *Partitioned): inference, metadata, and the Sec. 5.4 update procedure.
// It structurally satisfies both serve.Estimator and ingest.Updatable,
// so a model loaded through LoadModel can be served and attached for
// streaming updates without knowing its concrete type.
type Model interface {
	Name() string
	Dim() int
	TMax() float64
	Estimate(x []float64, t float64) float64
	EstimateBatch(x *tensor.Dense, ts []float64) []float64
	MAE(queries []vecdata.Query) float64
	HandleUpdate(tc TrainConfig, uc UpdateConfig, db *vecdata.Database,
		train, valid []vecdata.Query) UpdateResult
}

// modelMagic prefixes the kind-tagged container written by SaveModel.
// Files produced by the bare (*Net).Save / (*Partitioned).Save carry no
// tag; LoadModelFile falls back to sniffing those.
const modelMagic = "SELMODL1"

const (
	kindNet         = "selnet.Net"
	kindPartitioned = "selnet.Partitioned"
)

// SaveModel writes m to w in the kind-tagged container format: an 8-byte
// magic, a gob-encoded kind string, then the model's own Save stream.
func SaveModel(w io.Writer, m Model) error {
	var kind string
	switch m.(type) {
	case *Net:
		kind = kindNet
	case *Partitioned:
		kind = kindPartitioned
	default:
		return fmt.Errorf("selnet: cannot save model of type %T", m)
	}
	if _, err := io.WriteString(w, modelMagic); err != nil {
		return fmt.Errorf("selnet: write model magic: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(kind); err != nil {
		return fmt.Errorf("selnet: encode model kind: %w", err)
	}
	switch v := m.(type) {
	case *Net:
		return v.Save(w)
	case *Partitioned:
		return v.Save(w)
	}
	panic("unreachable")
}

// LoadModel reads a model written by SaveModel. The reader may sit
// mid-stream (e.g. inside a snapshot file); exactly one container is
// consumed.
func LoadModel(r io.Reader) (Model, error) {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("selnet: read model magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("selnet: bad model magic %q", magic)
	}
	var kind string
	if err := gob.NewDecoder(r).Decode(&kind); err != nil {
		return nil, fmt.Errorf("selnet: decode model kind: %w", err)
	}
	switch kind {
	case kindNet:
		return LoadNet(r)
	case kindPartitioned:
		return LoadPartitioned(r)
	}
	return nil, fmt.Errorf("selnet: unknown model kind %q", kind)
}

// SaveModelFile writes m to path in the kind-tagged container format.
func SaveModelFile(path string, m Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveModel(f, m); err != nil {
		return err
	}
	return f.Close()
}

// LoadModelFile reads a model of any supported kind from path. Tagged
// containers (SaveModelFile) dispatch on their kind; legacy untagged
// files — 'selest train' output, or a bare (*Partitioned).Save stream —
// are sniffed by attempting each decoder in turn, so the daemon loads
// single and partitioned models through one entry point.
func LoadModelFile(path string) (Model, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(b, []byte(modelMagic)) {
		return tryLoad(func() (Model, error) { return LoadModel(bytes.NewReader(b)) })
	}
	n, netErr := tryLoad(func() (Model, error) { return LoadNet(bytes.NewReader(b)) })
	if netErr == nil {
		return n, nil
	}
	p, partErr := tryLoad(func() (Model, error) { return LoadPartitioned(bytes.NewReader(b)) })
	if partErr == nil {
		return p, nil
	}
	return nil, fmt.Errorf("selnet: %s decodes as neither a single model (%w) nor a partitioned one (%w)",
		path, netErr, partErr)
}

// tryLoad converts a decoder panic into an error: sniffing a legacy
// file can feed one kind's stream to the other kind's decoder, and a
// half-matching gob header may pass decoding yet yield a nonsensical
// architecture the constructors reject by panicking. A daemon loading
// an operator-supplied path must survive that.
func tryLoad(fn func() (Model, error)) (m Model, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("selnet: model decode: %v", r)
		}
	}()
	return fn()
}
